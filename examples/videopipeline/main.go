// Video pipeline: a soft real-time frame-analysis workload (the paper's
// motivating scenario — "an application analyzing a live video feed needs
// to complete its processing by the time the next frame arrives") driven
// through the discrete-event engine.  Tunable frames are compared against
// fixed-configuration frames under increasing load.
//
//	go run ./examples/videopipeline
package main

import (
	"errors"
	"fmt"
	"log"

	"milan"
	"milan/internal/sim"
	"milan/internal/workload"
)

// frameJob models one video frame's processing: either a front-loaded
// analysis (wide sampling then light tracking) or a back-loaded one (light
// sampling then wide analysis).  The deadline is the arrival of the next
// frame plus a small pipeline depth.
func frameJob(id int, release, framePeriod float64, procs int, tunable bool) milan.Job {
	deadline1 := release + framePeriod
	deadline2 := release + 2*framePeriod // pipeline depth of 2 frames
	wide := milan.Task{Name: "sample", Procs: procs, Duration: framePeriod * 0.6, Deadline: deadline1}
	lightTrack := milan.Task{Name: "track", Procs: 2, Duration: framePeriod * 0.6, Deadline: deadline2}
	lightSample := milan.Task{Name: "sample", Procs: 2, Duration: framePeriod * 0.5, Deadline: deadline1}
	wideAnalyze := milan.Task{Name: "analyze", Procs: procs, Duration: framePeriod * 0.5, Deadline: deadline2}

	frontLoaded := milan.Chain{Name: "front", Quality: 1, Tasks: []milan.Task{wide, lightTrack}}
	backLoaded := milan.Chain{Name: "back", Quality: 1, Tasks: []milan.Task{lightSample, wideAnalyze}}
	chains := []milan.Chain{frontLoaded}
	if tunable {
		chains = append(chains, backLoaded)
	}
	return milan.Job{ID: id, Name: fmt.Sprintf("frame-%d", id), Release: release, Chains: chains}
}

func run(tunable bool, frames int, framePeriod float64, procs int) (onTime int, util float64) {
	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	// Two camera feeds interleaved: frames arrive at twice the single-feed
	// rate with jitter, so the machine is contended.
	arrivals := workload.NewUniform(framePeriod*0.25, framePeriod*0.45, 7)
	var engine sim.Engine
	var lastFinish float64

	next := 0.0
	for i := 0; i < frames; i++ {
		next += arrivals.Next()
		id, release := i, next
		engine.At(release, "frame", func() {
			arb.Observe(release)
			job := frameJob(id, release, framePeriod, procs/2, tunable)
			g, err := milan.NewAgent(job).NegotiateWith(arb)
			if errors.Is(err, milan.ErrRejected) {
				return // frame dropped: better than a late result
			}
			if err != nil {
				log.Fatal(err)
			}
			onTime++
			if f := g.Finish(); f > lastFinish {
				lastFinish = f
			}
		})
	}
	engine.Run()
	if lastFinish > 0 {
		util = arb.Utilization(0, lastFinish)
	}
	return onTime, util
}

func main() {
	const (
		frames      = 2000
		framePeriod = 33.0 // ~30 fps in milliseconds
		procs       = 8
	)
	fmt.Printf("video pipeline: %d frames from 2 feeds, %d processors, frame period %.0fms\n\n",
		frames, procs, framePeriod)

	fixedOnTime, fixedUtil := run(false, frames, framePeriod, procs)
	tunOnTime, tunUtil := run(true, frames, framePeriod, procs)

	fmt.Printf("%-22s %12s %12s\n", "system", "on-time", "utilization")
	fmt.Printf("%-22s %8d/%d %11.1f%%\n", "fixed configuration", fixedOnTime, frames, 100*fixedUtil)
	fmt.Printf("%-22s %8d/%d %11.1f%%\n", "tunable", tunOnTime, frames, 100*tunUtil)
	extra := tunOnTime - fixedOnTime
	fmt.Printf("\ntunability delivered %d additional on-time frames (%+.1f%%)\n",
		extra, 100*float64(extra)/float64(frames))
}
