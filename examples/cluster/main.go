// Cluster deployment: the QoS arbitrator serves a TCP endpoint backed by a
// resource-broker pool; QoS agents in separate goroutines (standing in for
// separate processes on cluster nodes) negotiate reservations over the
// wire, exactly as MILAN's distributed components would.
//
// The second act swaps the monolithic arbitrator for a federated admission
// plane (internal/fed): one shard per broker-registered machine, best-of-k
// routing, and a rebalancer that follows the broker — registering a new
// machine mid-run grows the plane without restarting the server.
//
// The third act federates the observability plane itself: a telemetry
// exporter streams the registry over TCP and an aggregator (milanmon's
// engine) accumulates snapshot-then-delta and renders the node-labeled
// cluster view.
//
//	go run ./examples/cluster
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"milan"
	"milan/internal/obs"
	"milan/internal/obs/telemetry"
	"milan/internal/qos/qosnet"
	"milan/internal/resbroker"
	"milan/internal/workload"
)

func main() {
	// Assemble the machine from broker-registered resources, as MILAN's
	// ResourceBroker integrates machines into the pool.
	broker := resbroker.New(resbroker.FastestFirst{})
	broker.Subscribe(func(ev resbroker.Event) {
		fmt.Printf("broker: %-12s free=%d\n", ev.Kind, ev.FreeProcs)
	})
	for _, r := range []resbroker.Resource{
		{ID: "smp-a", Procs: 8, Speed: 1.0},
		{ID: "smp-b", Procs: 8, Speed: 1.2},
		{ID: "legacy", Procs: 4, Speed: 0.6},
	} {
		if err := broker.Register(r); err != nil {
			log.Fatal(err)
		}
	}
	// The arbitrator manages the pool the broker assembled for it.
	binding, err := broker.Bind(resbroker.Request{Computation: "arbitrator", MinProcs: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arbitrator bound %d processors across %d resources\n\n", binding.Procs(), len(binding.Shares))

	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: binding.Procs()})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := qosnet.ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("arbitrator listening on %s\n\n", srv.Addr())

	// Eight client applications negotiate concurrently over TCP, each a
	// tunable Figure-4 job.
	spec := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	var wg sync.WaitGroup
	results := make([]string, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := qosnet.Dial(srv.Addr().String())
			if err != nil {
				results[i] = fmt.Sprintf("client %d: dial: %v", i, err)
				return
			}
			defer cli.Close()
			agent := milan.NewAgent(spec.Job(i, 0, workload.Tunable))
			g, err := agent.NegotiateWith(cli)
			switch {
			case errors.Is(err, milan.ErrRejected):
				results[i] = fmt.Sprintf("client %d: rejected (admission control)", i)
			case err != nil:
				results[i] = fmt.Sprintf("client %d: %v", i, err)
			default:
				results[i] = fmt.Sprintf("client %d: granted path %d, finish t=%.0f", i, g.Chain, g.Finish())
			}
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	cli, err := qosnet.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	st, err := cli.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narbitrator: %d admitted, %d rejected, chain choices %v\n",
		st.Admitted, st.Rejected, st.TunableChosen)

	fmt.Println()
	if err := federated(); err != nil {
		log.Fatal(err)
	}
}

// federated serves a sharded admission plane over the same qosnet wire
// protocol: every broker-registered machine backs one shard, and the
// rebalancer follows the broker so the plane's capacity tracks the pool.
func federated() error {
	fmt.Println("--- federated admission plane ---")
	machines := []resbroker.Resource{
		{ID: "node-0", Procs: 8, Speed: 1.0},
		{ID: "node-1", Procs: 8, Speed: 1.0},
		{ID: "node-2", Procs: 8, Speed: 1.0},
	}
	broker := resbroker.New(resbroker.FastestFirst{})
	for _, r := range machines {
		if err := broker.Register(r); err != nil {
			return err
		}
	}

	reg := obs.NewRegistry()
	plane, err := milan.NewFederatedArbitrator(milan.FedConfig{
		Procs:   broker.TotalProcs(),
		Shards:  len(machines), // one shard per machine
		ProbeK:  2,             // best-of-2 routing
		Metrics: milan.NewFedMetrics(reg),
	})
	if err != nil {
		return err
	}
	rb := plane.Rebalancer()
	rb.MinShardProcs = 4 // never shrink a shard below the widest task
	detach := rb.AttachBroker(broker, 0)
	defer detach()
	fmt.Printf("plane: %d processors across %d shards %v\n",
		plane.Procs(), len(plane.ShardProcs()), plane.ShardProcs())

	// The same qosnet server fronts the federated plane: agents cannot
	// tell a sharded arbitrator from the monolith.
	srv, err := qosnet.ListenAndServe(plane, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("federated plane listening on %s\n", srv.Addr())

	// The debug endpoint publishes the plane's health: /healthz aggregates
	// liveness with broker and shard readiness, so an orchestrator can gate
	// traffic on the plane actually holding routable capacity.
	o := obs.New(obs.Config{Registry: reg, Tracing: true})
	o.AddHealthCheck("broker", func() error {
		if broker.TotalProcs() == 0 {
			return fmt.Errorf("no registered capacity")
		}
		return nil
	})
	o.AddHealthCheck("shards", func() error {
		procs := plane.ShardProcs()
		if len(procs) == 0 {
			return fmt.Errorf("no shards")
		}
		for i, p := range procs {
			if p < rb.MinShardProcs {
				return fmt.Errorf("shard %d below minimum width (%d < %d)", i, p, rb.MinShardProcs)
			}
		}
		return nil
	})
	dbgAddr, err := srv.EnableDebug(o, "127.0.0.1:0")
	if err != nil {
		return err
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", dbgAddr))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("debug endpoint http://%s  /healthz -> %d %s\n", dbgAddr, resp.StatusCode, body)

	spec := workload.FigureJob{X: 4, T: 25, Alpha: 0.25, Laxity: 0.5}
	var wg sync.WaitGroup
	results := make([]string, 12)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := qosnet.Dial(srv.Addr().String())
			if err != nil {
				results[i] = fmt.Sprintf("client %d: dial: %v", i, err)
				return
			}
			defer cli.Close()
			agent := milan.NewAgent(spec.Job(i, 0, workload.Tunable))
			g, err := agent.NegotiateWith(cli)
			switch {
			case errors.Is(err, milan.ErrRejected):
				results[i] = fmt.Sprintf("client %d: rejected (admission control)", i)
			case err != nil:
				results[i] = fmt.Sprintf("client %d: %v", i, err)
			default:
				results[i] = fmt.Sprintf("client %d: granted path %d, finish t=%.0f", i, g.Chain, g.Finish())
			}
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	// A machine joins the cluster mid-run: the broker event resizes the
	// plane and the rebalancer spreads the new capacity to hungry shards.
	fmt.Printf("\nshard procs before join: %v (loads %.3v)\n", plane.ShardProcs(), plane.ShardLoads())
	if err := broker.Register(resbroker.Resource{ID: "node-3", Procs: 8, Speed: 1.0}); err != nil {
		return err
	}
	fmt.Printf("registered node-3:       %v procs total, shards %v\n", plane.Procs(), plane.ShardProcs())

	st := plane.Stats()
	fmt.Printf("\nplane: %d admitted, %d rejected, chain choices %v\n",
		st.Admitted, st.Rejected, st.TunableChosen)
	fmt.Println("\nfed metrics:")
	if err := reg.WriteTable(os.Stdout); err != nil {
		return err
	}
	return federatedTelemetry(reg)
}

// federatedTelemetry is the third act: the plane's registry streams over
// the telemetry wire protocol (the same exporter junctiond serves behind
// -telemetry-addr) and an aggregator — milanmon's engine — subscribes,
// accumulates snapshot-then-delta, and renders the node-labeled cluster
// view a Prometheus scraper would see.
func federatedTelemetry(reg *obs.Registry) error {
	fmt.Println("\n--- telemetry: exporter -> aggregator over TCP ---")
	exp := telemetry.NewExporter(telemetry.ExporterConfig{
		Node:     "cluster-demo",
		Interval: 50 * time.Millisecond,
	}, telemetry.Sources{Registry: reg})
	if err := exp.ListenAndServe("127.0.0.1:0"); err != nil {
		return err
	}
	defer exp.Close()

	agg := telemetry.NewAggregator(telemetry.AggregatorConfig{Nodes: []string{exp.Addr()}})
	agg.Start()
	defer agg.Close()

	// Wait for the aggregated view to converge on the live registry's
	// admission counters (snapshot + contiguous deltas, nothing lost).
	deadline := time.Now().Add(5 * time.Second)
	for {
		merged, err := agg.MergedRegistry()
		if err == nil && merged.Counters["fed_admitted"] == reg.Snapshot().Counters["fed_admitted"] {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("telemetry view did not converge: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	nodes := agg.Nodes()
	fmt.Printf("subscribed to %s: session %d, %d frames, %d deltas, %d dropped\n",
		exp.Addr(), nodes[0].Session, nodes[0].Frames, nodes[0].DeltaSeq,
		nodes[0].ExporterDroppedFrames)
	snaps, _ := agg.NodeSnapshots()
	var sb strings.Builder
	if err := telemetry.WritePromLabeled(&sb, snaps, reg.Help()); err != nil {
		return err
	}
	fmt.Println("cluster view (node-labeled Prometheus exposition, excerpt):")
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "fed_admitted") || strings.HasPrefix(line, "fed_rejected") ||
			strings.HasPrefix(line, "# HELP fed_admitted") {
			fmt.Println("  " + line)
		}
	}
	return nil
}
