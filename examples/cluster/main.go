// Cluster deployment: the QoS arbitrator serves a TCP endpoint backed by a
// resource-broker pool; QoS agents in separate goroutines (standing in for
// separate processes on cluster nodes) negotiate reservations over the
// wire, exactly as MILAN's distributed components would.
//
//	go run ./examples/cluster
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"milan"
	"milan/internal/qos/qosnet"
	"milan/internal/resbroker"
	"milan/internal/workload"
)

func main() {
	// Assemble the machine from broker-registered resources, as MILAN's
	// ResourceBroker integrates machines into the pool.
	broker := resbroker.New(resbroker.FastestFirst{})
	broker.Subscribe(func(ev resbroker.Event) {
		fmt.Printf("broker: %-12s free=%d\n", ev.Kind, ev.FreeProcs)
	})
	for _, r := range []resbroker.Resource{
		{ID: "smp-a", Procs: 8, Speed: 1.0},
		{ID: "smp-b", Procs: 8, Speed: 1.2},
		{ID: "legacy", Procs: 4, Speed: 0.6},
	} {
		if err := broker.Register(r); err != nil {
			log.Fatal(err)
		}
	}
	// The arbitrator manages the pool the broker assembled for it.
	binding, err := broker.Bind(resbroker.Request{Computation: "arbitrator", MinProcs: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arbitrator bound %d processors across %d resources\n\n", binding.Procs(), len(binding.Shares))

	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: binding.Procs()})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := qosnet.ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("arbitrator listening on %s\n\n", srv.Addr())

	// Eight client applications negotiate concurrently over TCP, each a
	// tunable Figure-4 job.
	spec := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	var wg sync.WaitGroup
	results := make([]string, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := qosnet.Dial(srv.Addr().String())
			if err != nil {
				results[i] = fmt.Sprintf("client %d: dial: %v", i, err)
				return
			}
			defer cli.Close()
			agent := milan.NewAgent(spec.Job(i, 0, workload.Tunable))
			g, err := agent.NegotiateWith(cli)
			switch {
			case errors.Is(err, milan.ErrRejected):
				results[i] = fmt.Sprintf("client %d: rejected (admission control)", i)
			case err != nil:
				results[i] = fmt.Sprintf("client %d: %v", i, err)
			default:
				results[i] = fmt.Sprintf("client %d: granted path %d, finish t=%.0f", i, g.Chain, g.Finish())
			}
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	cli, err := qosnet.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	st, err := cli.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narbitrator: %d admitted, %d rejected, chain choices %v\n",
		st.Admitted, st.Rejected, st.TunableChosen)
}
