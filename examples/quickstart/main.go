// Quickstart: express a tunable job in the tunability language, negotiate
// it with the QoS arbitrator, and inspect the granted reservation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"milan"
	"milan/internal/core"
)

// A two-step media-processing job with two execution paths: an expensive
// first pass with a cheap refinement, or a cheap first pass compensated by
// an expensive refinement — the resource-over-time tradeoff the paper calls
// tunability.
const program = `
task_control_parameters { passes; budget; }

task analyze deadline 30 params (passes) {
    config (passes = 2) require 8 procs 10 time quality 1.0;  // thorough pass
    config (passes = 1) require 2 procs 10 time quality 0.95; // quick pass
}

task_select refine {
    when (passes == 2) {
        task refineLight deadline 60 params (budget) {
            config (budget = 1) require 2 procs 10 time quality 1.0;
        }
    } finally { }
    when (passes == 1) {
        task refineHeavy deadline 60 params (budget) {
            config (budget = 4) require 8 procs 12 time quality 0.97;
        }
    } finally { }
}
`

func main() {
	graph, err := milan.ParseTunability("quickstart", program)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Occupy most of the machine early so the cheap-first path becomes the
	// attractive one for a job arriving now.
	hog := milan.Job{ID: 0, Chains: []milan.Chain{{
		Name:  "background",
		Tasks: []milan.Task{{Name: "batch", Procs: 6, Duration: 15, Deadline: 15}},
	}}}
	hogAgent := milan.NewAgent(hog)
	if _, err := hogAgent.NegotiateWith(arb); err != nil {
		log.Fatalf("background job: %v", err)
	}

	job, envs, err := graph.Job(1, 0, 0)
	if err != nil {
		log.Fatalf("materialize: %v", err)
	}
	fmt.Printf("job %q offers %d execution paths:\n", job.Name, len(job.Chains))
	for i, c := range job.Chains {
		fmt.Printf("  path %d (%s, quality %.2f):", i, c.Name, c.Quality)
		for _, t := range c.Tasks {
			fmt.Printf("  %s=%dx%.0f(dl %.0f)", t.Name, t.Procs, t.Duration, t.Deadline)
		}
		fmt.Println()
	}

	agent := milan.NewAgent(job)
	agent.Configure = func(g *milan.Grant) {
		fmt.Printf("configuring application with control parameters %v\n", envs[g.Chain])
	}
	grant, err := agent.NegotiateWith(arb)
	if err != nil {
		log.Fatalf("negotiate: %v", err)
	}

	fmt.Printf("granted path %d (quality %.2f), finishing at t=%.1f:\n", grant.Chain, grant.Quality, grant.Finish())
	for _, tp := range grant.Placement.Tasks {
		fmt.Printf("  task %d: %d procs over [%.1f, %.1f)\n", tp.Task, tp.Procs, tp.Start, tp.Finish)
	}

	// Bind every reservation (background job + this one) to concrete
	// processors and draw the schedule.
	hogGrant := hogAgent.Grant()
	asn, err := milan.AssignProcessors(8, []*milan.Placement{&hogGrant.Placement, &grant.Placement})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range asn {
		if a.JobID == job.ID {
			fmt.Printf("  task %d runs on processors %v\n", a.Task, a.Procs)
		}
	}

	fmt.Printf("machine utilization over [0, %.0f]: %.1f%%\n\n",
		grant.Finish(), 100*arb.Utilization(0, grant.Finish()))
	if err := core.RenderGantt(os.Stdout, 8, asn, 64); err != nil {
		log.Fatal(err)
	}
}
