// Junction detection end-to-end: profile the tunable image-processing
// application (Sections 3.2/4.3 of the paper), let the QoS arbitrator pick
// an execution path under load, configure the application with the granted
// control parameters, and run it on the fault-masking Calypso runtime.
//
//	go run ./examples/junction
package main

import (
	"errors"
	"fmt"
	"log"

	"milan"
	"milan/internal/calypso"
	"milan/internal/junction"
)

func main() {
	const workers = 4

	// A synthetic training scene with analytic ground truth substitutes
	// for the paper's profiling images.
	im, truth := junction.Synthesize(junction.DefaultSynthSpec())
	fine, coarse := junction.FineParams(), junction.CoarseParams()

	graph, profs, err := junction.BuildGraph(workers, im, truth, fine, coarse, 4, 2)
	if err != nil {
		log.Fatalf("profiling: %v", err)
	}
	fmt.Println("profiled configurations (work in pixels examined):")
	for i, pc := range profs {
		name := []string{"fine", "coarse"}[i]
		fmt.Printf("  %-6s g=%d sd=%-4.0f steps=[%6d %6d %6d] F1=%.3f\n",
			name, pc.Params.Granularity, pc.Params.SearchDistance,
			pc.Result.Costs[0].Work, pc.Result.Costs[1].Work, pc.Result.Costs[2].Work,
			pc.Quality)
	}

	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: workers})
	if err != nil {
		log.Fatal(err)
	}

	// Frames arrive back to back; early frames grab the machine, pushing
	// later ones onto the execution path that fits the remaining capacity.
	for frame := 0; frame < 3; frame++ {
		job, envs, err := graph.Job(frame, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		agent := milan.NewAgent(job)
		grant, err := agent.NegotiateWith(arb)
		if errors.Is(err, milan.ErrRejected) {
			// Admission control at work: no execution path of this frame
			// meets its deadlines on the remaining capacity, so the system
			// declines it up front rather than missing the deadline later.
			fmt.Printf("\nframe %d: rejected by admission control (machine saturated)\n", frame)
			continue
		}
		if err != nil {
			log.Fatalf("frame %d: %v", frame, err)
		}
		params, err := junction.ParamsForEnv(envs[grant.Chain], fine, coarse)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nframe %d: granted path %d (granularity %d), finish t=%.2f\n",
			frame, grant.Chain, params.Granularity, grant.Finish())

		// Execute on the Calypso runtime with fault injection: the
		// two-phase idempotent machinery hides crashes and retries.
		rt, err := calypso.New(calypso.Config{
			Workers: workers,
			Faults:  &calypso.FaultPlan{TransientProb: 0.1, CrashProb: 0.02, MaxCrashes: 2, Seed: int64(frame + 1)},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := junction.RunScored(rt, im, params, truth, 4)
		if err != nil {
			log.Fatal(err)
		}
		m := rt.Metrics()
		fmt.Printf("  detected %d junctions (F1 %.3f) in %d regions\n",
			len(res.Junctions), res.Quality.F1, len(res.Regions))
		fmt.Printf("  runtime: %d executions for %d tasks (%d duplicates, %d transient faults, %d crashes)\n",
			m.Executions, m.Tasks, m.Duplicates, m.Transients, m.Crashes)
	}
}
