// Churn: machines join and leave the pool while soft real-time jobs hold
// reservations.  The renegotiating arbitrator (Section 3.1's "triggers
// renegotiation on detecting a significant change in resource levels")
// follows the broker's pool, moving future tasks and aborting only what no
// longer fits; rejected jobs wait and get rescued when capacity returns.
//
//	go run ./examples/churn
package main

import (
	"errors"
	"fmt"
	"log"

	"milan"
	"milan/internal/qos"
	"milan/internal/resbroker"
)

func main() {
	arb, err := milan.NewDynamicArbitrator(8, nil)
	if err != nil {
		log.Fatal(err)
	}
	arb.OnRenegotiated = func(id int, g *milan.Grant) {
		fmt.Printf("  renegotiated: job %d now finishes at t=%.0f\n", id, g.Finish())
	}
	arb.OnAborted = func(id int) {
		fmt.Printf("  aborted: job %d no longer fits\n", id)
	}

	broker := resbroker.New(nil)
	broker.Register(resbroker.Resource{ID: "smp-a", Procs: 4, Speed: 1})
	broker.Register(resbroker.Resource{ID: "smp-b", Procs: 4, Speed: 1})
	qos.AttachBroker(arb, broker, 0)

	job := func(id int, procs int, dur, deadline float64) milan.Job {
		return milan.Job{ID: id, Chains: []milan.Chain{
			{Name: "wide", Quality: 1, Tasks: []milan.Task{
				{Name: "w", Procs: procs, Duration: dur, Deadline: deadline},
			}},
			{Name: "narrow", Quality: 1, Tasks: []milan.Task{
				{Name: "n", Procs: procs / 2, Duration: dur * 2, Deadline: deadline},
			}},
		}}
	}

	fmt.Println("pool: 8 processors (smp-a + smp-b)")
	deadlines := map[int]float64{1: 200, 2: 200, 3: 200, 4: 15}
	for id := 1; id <= 4; id++ {
		j := job(id, 4, 10, deadlines[id])
		g, err := arb.NegotiateOrWait(j, func(g *milan.Grant) {
			fmt.Printf("  rescued: job %d admitted late, finishes at t=%.0f\n", g.JobID, g.Finish())
		})
		switch {
		case errors.Is(err, milan.ErrRejected):
			fmt.Printf("job %d: rejected (deadline %.0f), waiting for capacity\n", id, deadlines[id])
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("job %d: granted %q, finishes at t=%.0f\n", id, j.Chains[g.Chain].Name, g.Finish())
		}
	}

	fmt.Println("\nsmp-b leaves the pool (capacity 8 -> 4):")
	if err := broker.Deregister("smp-b"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\na bigger machine joins (capacity 4 -> 20):")
	if err := broker.Register(resbroker.Resource{ID: "cluster-c", Procs: 16, Speed: 1.5}); err != nil {
		log.Fatal(err)
	}

	st := arb.Stats()
	fmt.Printf("\narbitrator stats: %d admitted, %d rejection events, %d renegotiated, %d aborted, %d rescued\n",
		st.Admitted, st.Rejected, st.Renegotiated, st.Aborted, st.Rescued)
}
