// DAG pipeline: a task_par program whose execution paths are precedence
// graphs — audio and video analysis run concurrently between a prep and a
// merge step.  The arbitrator schedules the fork-join on the machine,
// picking the wide or narrow video configuration by what fits, and the
// schedule is drawn as a Gantt chart.
//
//	go run ./examples/dagpipeline
package main

import (
	"fmt"
	"log"
	"os"

	"milan"
	"milan/internal/core"
	"milan/internal/qos"
)

const program = `
// Media pipeline: prep, then concurrent audio+video analysis, then merge.
task_control_parameters { mode; }

task prep deadline 20 {
    config require 2 procs 5 time;
}

task_par analyses {
    task audio deadline 60 {
        config require 2 procs 10 time;
    }
    task video deadline 60 params (mode) {
        config (mode = 1) require 6 procs 10 time quality 1.0;
        config (mode = 2) require 2 procs 25 time quality 0.9;
    }
}

task merge deadline 120 {
    config require 2 procs 5 time;
}
`

func main() {
	graph, err := milan.ParseTunability("pipeline", program)
	if err != nil {
		log.Fatal(err)
	}

	for _, procs := range []int{8, 4} {
		fmt.Printf("=== machine with %d processors ===\n", procs)
		sched := milan.NewScheduler(procs, 0, nil)
		var placements []*milan.Placement
		for id := 0; id < 2; id++ {
			job, envs, err := graph.DAGJob(id, 0, 0)
			if err != nil {
				log.Fatal(err)
			}
			agent := qos.NewDAGAgent(job)
			g, err := agent.NegotiateWith(dagSched{sched})
			if err != nil {
				fmt.Printf("job %d: rejected\n", id)
				continue
			}
			fmt.Printf("job %d: mode=%v quality=%.1f makespan=%.0f "+
				"(audio [%.0f,%.0f) ∥ video [%.0f,%.0f))\n",
				id, envs[g.Chain]["mode"], g.Quality, dagFinish(g),
				g.Placement.Tasks[1].Start, g.Placement.Tasks[1].Finish,
				g.Placement.Tasks[2].Start, g.Placement.Tasks[2].Finish)
			pl := g.Placement
			placements = append(placements, &pl)
		}
		asn, err := milan.AssignProcessors(procs, placements)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := core.RenderGantt(os.Stdout, procs, asn, 72); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

// dagSched adapts a Scheduler to the DAGNegotiator interface.
type dagSched struct{ s *milan.Scheduler }

func (d dagSched) NegotiateDAG(job milan.DAGJob) (*qos.Grant, error) {
	pl, err := d.s.AdmitDAG(job)
	if err != nil {
		return nil, err
	}
	return &qos.Grant{
		JobID:     job.ID,
		Chain:     pl.Chain,
		Quality:   job.Alts[pl.Chain].Quality,
		Placement: *pl,
	}, nil
}

func dagFinish(g *qos.Grant) float64 {
	f := 0.0
	for _, tp := range g.Placement.Tasks {
		if tp.Finish > f {
			f = tp.Finish
		}
	}
	return f
}
