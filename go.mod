module milan

go 1.22
