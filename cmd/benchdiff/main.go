// Command benchdiff gates benchmark regressions against the checked-in
// trajectory baseline.
//
// BENCH_trajectory.jsonl at the repository root records one JSON row per
// benchmark observation — name, ns/op, allocs/op, and a free-form note
// (commit, date, machine).  The file is append-only: the latest row for
// each benchmark name is the current baseline, and the history behind it
// is the performance trajectory of the project.
//
// benchdiff reads standard `go test -bench` output (a file argument, or
// stdin when the argument is "-"), strips the -GOMAXPROCS suffix from
// each name, and compares every measured benchmark against its baseline:
//
//	go test -run '^$' -bench Admit -benchmem ./internal/fed |
//	    benchdiff -baseline BENCH_trajectory.jsonl -
//
// The run fails (exit 1) when any benchmark regresses more than
// -threshold (default 15%) in ns/op, or allocates more per op than its
// baseline at all — allocation counts are deterministic, so any increase
// is a real regression, not noise.  Benchmarks with no baseline row are
// reported as new and do not fail the gate; refresh the baseline with
// -append after an intentional change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type row struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// P99NsPerOp is the p99 latency a benchmark reported via
	// b.ReportMetric(..., "p99-ns/op"); -1 means "not measured" — the
	// same unknown convention AllocsPerOp uses, so a row without the
	// metric never gates against a phantom zero.
	P99NsPerOp float64 `json:"p99_ns_per_op,omitempty"`
	Note       string  `json:"note,omitempty"`
}

// MarshalJSON omits the p99 field entirely when unknown (-1), keeping
// appended trajectory rows free of sentinel values.
func (rw row) MarshalJSON() ([]byte, error) {
	aux := struct {
		Name        string   `json:"name"`
		NsPerOp     float64  `json:"ns_per_op"`
		AllocsPerOp int64    `json:"allocs_per_op"`
		P99NsPerOp  *float64 `json:"p99_ns_per_op,omitempty"`
		Note        string   `json:"note,omitempty"`
	}{rw.Name, rw.NsPerOp, rw.AllocsPerOp, nil, rw.Note}
	if rw.P99NsPerOp >= 0 {
		aux.P99NsPerOp = &rw.P99NsPerOp
	}
	return json.Marshal(aux)
}

// parseBenchOutput extracts benchmark rows from `go test -bench` text.
// A result line looks like
//
//	BenchmarkShardedAdmit/shards=8-16   35697   12179 ns/op   867 B/op   15 allocs/op
//
// Lines that do not start with "Benchmark" (headers, PASS, ok) are
// skipped.  The trailing -N GOMAXPROCS suffix is stripped so names are
// stable across machines.
func parseBenchOutput(r io.Reader) ([]row, error) {
	var rows []row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		rw := row{Name: trimProcSuffix(fields[0]), AllocsPerOp: -1, P99NsPerOp: -1}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				rw.NsPerOp, ok = v, true
			case "allocs/op":
				rw.AllocsPerOp = int64(v)
			case "p99-ns/op":
				rw.P99NsPerOp = v
			}
		}
		if ok {
			rows = append(rows, rw)
		}
	}
	return rows, sc.Err()
}

// trimProcSuffix drops the "-N" GOMAXPROCS suffix go test appends to
// benchmark names, leaving sub-benchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// latestBaseline reads the trajectory JSONL and keeps the last row per
// benchmark name — the file is append-only history.  Rows written before
// allocation tracking existed have no allocs_per_op key at all; those
// decode as -1 ("unknown"), not 0, so an old baseline never gates a
// candidate's allocations against a phantom zero.
func latestBaseline(r io.Reader) (map[string]row, error) {
	base := make(map[string]row)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var aux struct {
			Name        string   `json:"name"`
			NsPerOp     float64  `json:"ns_per_op"`
			AllocsPerOp *int64   `json:"allocs_per_op"`
			P99NsPerOp  *float64 `json:"p99_ns_per_op"`
			Note        string   `json:"note"`
		}
		if err := json.Unmarshal([]byte(text), &aux); err != nil {
			return nil, fmt.Errorf("benchdiff: baseline line %d: %w", line, err)
		}
		if aux.Name == "" {
			return nil, fmt.Errorf("benchdiff: baseline line %d: missing name", line)
		}
		rw := row{Name: aux.Name, NsPerOp: aux.NsPerOp, AllocsPerOp: -1, P99NsPerOp: -1, Note: aux.Note}
		if aux.AllocsPerOp != nil {
			rw.AllocsPerOp = *aux.AllocsPerOp
		}
		if aux.P99NsPerOp != nil {
			rw.P99NsPerOp = *aux.P99NsPerOp
		}
		base[rw.Name] = rw
	}
	return base, sc.Err()
}

type verdict struct {
	row
	base     row
	known    bool
	nsRatio  float64
	p99Ratio float64
	regress  bool
	whyAlloc bool
	whyP99   bool
}

// compare judges each candidate against its baseline.  ns/op regresses
// when it exceeds baseline*(1+threshold); allocs/op regresses on any
// increase (allocation counts are deterministic).  A baseline recorded
// without -benchmem (allocs -1) does not gate allocations.
func compare(base map[string]row, cand []row, threshold float64) []verdict {
	out := make([]verdict, 0, len(cand))
	for _, c := range cand {
		v := verdict{row: c}
		if b, ok := base[c.Name]; ok {
			v.base, v.known = b, true
			if b.NsPerOp > 0 {
				v.nsRatio = c.NsPerOp / b.NsPerOp
				v.regress = v.nsRatio > 1+threshold
			}
			if b.AllocsPerOp >= 0 && c.AllocsPerOp > b.AllocsPerOp {
				v.regress, v.whyAlloc = true, true
			}
			// The p99 gate only arms when BOTH sides measured it: a
			// baseline written before tail tracking (or a candidate run
			// without it) decodes as -1 and never gates.
			if b.P99NsPerOp > 0 && c.P99NsPerOp >= 0 {
				v.p99Ratio = c.P99NsPerOp / b.P99NsPerOp
				if v.p99Ratio > 1+threshold {
					v.regress, v.whyP99 = true, true
				}
			}
		}
		out = append(out, v)
	}
	return out
}

func appendRows(path string, rows []row, note string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, rw := range rows {
		rw.Note = note
		if err := enc.Encode(rw); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func main() {
	baseline := flag.String("baseline", "BENCH_trajectory.jsonl", "trajectory JSONL; latest row per name is the baseline")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression before failing")
	doAppend := flag.Bool("append", false, "append the candidate rows to the baseline file instead of gating")
	note := flag.String("note", "", "note to record with -append rows")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] <bench-output-file | ->")
		os.Exit(2)
	}

	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cand, err := parseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	if len(cand) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in input"))
	}

	if *doAppend {
		if err := appendRows(*baseline, cand, *note); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: appended %d rows to %s\n", len(cand), *baseline)
		return
	}

	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := latestBaseline(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}

	failed := 0
	for _, v := range compare(base, cand, *threshold) {
		switch {
		case !v.known:
			fmt.Printf("NEW   %-48s %12.0f ns/op %6d allocs/op (no baseline)\n",
				v.Name, v.NsPerOp, v.AllocsPerOp)
		case v.regress && v.whyAlloc:
			failed++
			fmt.Printf("FAIL  %-48s %6d allocs/op, baseline %d (any increase fails)\n",
				v.Name, v.AllocsPerOp, v.base.AllocsPerOp)
		case v.regress && v.whyP99:
			failed++
			fmt.Printf("FAIL  %-48s %12.0f p99-ns/op, baseline %.0f (%+.1f%% > %.0f%% threshold)\n",
				v.Name, v.P99NsPerOp, v.base.P99NsPerOp, 100*(v.p99Ratio-1), 100**threshold)
		case v.regress:
			failed++
			fmt.Printf("FAIL  %-48s %12.0f ns/op, baseline %.0f (%+.1f%% > %.0f%% threshold)\n",
				v.Name, v.NsPerOp, v.base.NsPerOp, 100*(v.nsRatio-1), 100**threshold)
		default:
			fmt.Printf("ok    %-48s %12.0f ns/op (%+.1f%%) %6d allocs/op\n",
				v.Name, v.NsPerOp, 100*(v.nsRatio-1), v.AllocsPerOp)
		}
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed\n", failed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
