package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: milan/internal/fed
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMonolithAdmit-16         	   20000	     41000 ns/op	     900 B/op	      15 allocs/op
BenchmarkShardedAdmit/shards=8-16 	   35697	     12179 ns/op	     867 B/op	      15 allocs/op
BenchmarkNoMem-16                 	  100000	      1000 ns/op
PASS
ok  	milan/internal/fed	1.109s
`

func TestParseBenchOutput(t *testing.T) {
	rows, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3: %+v", len(rows), rows)
	}
	if rows[0].Name != "BenchmarkMonolithAdmit" || rows[0].NsPerOp != 41000 || rows[0].AllocsPerOp != 15 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Name != "BenchmarkShardedAdmit/shards=8" {
		t.Errorf("sub-benchmark name not preserved: %q", rows[1].Name)
	}
	if rows[2].AllocsPerOp != -1 {
		t.Errorf("no-benchmem row should carry allocs -1, got %d", rows[2].AllocsPerOp)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-16":             "BenchmarkX",
		"BenchmarkX":                "BenchmarkX",
		"BenchmarkX/shards=8-4":     "BenchmarkX/shards=8",
		"BenchmarkX/ledger=off-32":  "BenchmarkX/ledger=off",
		"BenchmarkX/name-with-dash": "BenchmarkX/name-with-dash",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLatestBaselineLastWins(t *testing.T) {
	in := `{"name":"BenchmarkA","ns_per_op":100,"allocs_per_op":5,"note":"seed"}

{"name":"BenchmarkA","ns_per_op":90,"allocs_per_op":4,"note":"optimized"}
{"name":"BenchmarkB","ns_per_op":10,"allocs_per_op":0}
`
	base, err := latestBaseline(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("got %d baselines, want 2", len(base))
	}
	if a := base["BenchmarkA"]; a.NsPerOp != 90 || a.AllocsPerOp != 4 {
		t.Errorf("latest row did not win: %+v", a)
	}
}

// Trajectory rows written before allocation tracking existed carry no
// allocs_per_op key at all.  Those baselines must decode as "unknown"
// (-1), not 0 — otherwise any candidate that allocates gates against a
// phantom zero-alloc baseline.
func TestLatestBaselineMissingAllocsKey(t *testing.T) {
	in := `{"name":"BenchmarkOld","ns_per_op":100,"note":"pre-benchmem row"}
{"name":"BenchmarkZero","ns_per_op":100,"allocs_per_op":0}
`
	base, err := latestBaseline(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := base["BenchmarkOld"].AllocsPerOp; got != -1 {
		t.Fatalf("absent allocs_per_op decoded as %d, want -1", got)
	}
	if got := base["BenchmarkZero"].AllocsPerOp; got != 0 {
		t.Fatalf("explicit zero allocs_per_op decoded as %d, want 0", got)
	}

	cand := []row{
		{Name: "BenchmarkOld", NsPerOp: 100, AllocsPerOp: 7},
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: 7},
	}
	vs := compare(base, cand, 0.15)
	if vs[0].regress {
		t.Errorf("candidate gated against a baseline with no allocation data: %+v", vs[0])
	}
	if !vs[1].regress || !vs[1].whyAlloc {
		t.Errorf("explicit zero-alloc baseline must still gate: %+v", vs[1])
	}
}

func TestLatestBaselineErrors(t *testing.T) {
	for name, in := range map[string]string{
		"bad json":     `{"name":`,
		"missing name": `{"ns_per_op":5}`,
	} {
		if _, err := latestBaseline(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]row{
		"Steady":   {Name: "Steady", NsPerOp: 100, AllocsPerOp: 5},
		"Slower":   {Name: "Slower", NsPerOp: 100, AllocsPerOp: 5},
		"Allocs":   {Name: "Allocs", NsPerOp: 100, AllocsPerOp: 5},
		"NoMemRef": {Name: "NoMemRef", NsPerOp: 100, AllocsPerOp: -1},
	}
	cand := []row{
		{Name: "Steady", NsPerOp: 114, AllocsPerOp: 5},   // +14% < 15%: ok
		{Name: "Slower", NsPerOp: 116, AllocsPerOp: 5},   // +16%: fail
		{Name: "Allocs", NsPerOp: 50, AllocsPerOp: 6},    // faster but +1 alloc: fail
		{Name: "NoMemRef", NsPerOp: 100, AllocsPerOp: 9}, // baseline has no alloc data: ok
		{Name: "Fresh", NsPerOp: 1, AllocsPerOp: 0},      // no baseline: new, ok
	}
	vs := compare(base, cand, 0.15)
	want := []struct {
		regress, whyAlloc, known bool
	}{
		{false, false, true},
		{true, false, true},
		{true, true, true},
		{false, false, true},
		{false, false, false},
	}
	for i, w := range want {
		v := vs[i]
		if v.regress != w.regress || v.whyAlloc != w.whyAlloc || v.known != w.known {
			t.Errorf("%s: regress=%v alloc=%v known=%v, want %+v", v.Name, v.regress, v.whyAlloc, v.known, w)
		}
	}
}

// Trajectory rows written before tail tracking carry no p99_ns_per_op
// key.  Those baselines must decode as "unknown" (-1), not 0 — and the
// gate only arms when BOTH baseline and candidate measured a p99, so
// neither a legacy baseline nor a candidate run without the metric can
// produce a phantom verdict.
func TestLatestBaselineMissingP99Key(t *testing.T) {
	in := `{"name":"BenchmarkOld","ns_per_op":100,"allocs_per_op":5}
{"name":"BenchmarkTail","ns_per_op":100,"allocs_per_op":5,"p99_ns_per_op":400}
`
	base, err := latestBaseline(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := base["BenchmarkOld"].P99NsPerOp; got != -1 {
		t.Fatalf("absent p99_ns_per_op decoded as %v, want -1", got)
	}
	if got := base["BenchmarkTail"].P99NsPerOp; got != 400 {
		t.Fatalf("p99_ns_per_op decoded as %v, want 400", got)
	}

	cand := []row{
		{Name: "BenchmarkOld", NsPerOp: 100, AllocsPerOp: 5, P99NsPerOp: 9000},
		{Name: "BenchmarkTail", NsPerOp: 100, AllocsPerOp: 5, P99NsPerOp: -1},
		{Name: "BenchmarkTail", NsPerOp: 100, AllocsPerOp: 5, P99NsPerOp: 900},
		{Name: "BenchmarkTail", NsPerOp: 100, AllocsPerOp: 5, P99NsPerOp: 410},
	}
	vs := compare(base, cand, 0.15)
	if vs[0].regress {
		t.Errorf("candidate gated against a baseline with no p99 data: %+v", vs[0])
	}
	if vs[1].regress {
		t.Errorf("candidate without a p99 measurement must not gate: %+v", vs[1])
	}
	if !vs[2].regress || !vs[2].whyP99 {
		t.Errorf("2.25x p99 regression not caught: %+v", vs[2])
	}
	if vs[3].regress {
		t.Errorf("p99 within threshold flagged: %+v", vs[3])
	}
}

func TestParseBenchOutputP99Metric(t *testing.T) {
	out := `BenchmarkTailAdmit-16   1000   100 ns/op   5400 p99-ns/op   15 allocs/op
BenchmarkPlain-16       1000   100 ns/op
`
	rows, err := parseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].P99NsPerOp != 5400 {
		t.Errorf("p99-ns/op metric not parsed: %+v", rows[0])
	}
	if rows[1].P99NsPerOp != -1 {
		t.Errorf("row without p99-ns/op should carry -1, got %v", rows[1].P99NsPerOp)
	}
}

// Appended rows must not leak the -1 "unknown" sentinel into the
// trajectory file: a later latestBaseline read would then see an
// explicit negative value instead of an absent key.
func TestRowMarshalOmitsUnknownP99(t *testing.T) {
	b, err := json.Marshal(row{Name: "B", NsPerOp: 100, AllocsPerOp: 5, P99NsPerOp: -1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "p99_ns_per_op") {
		t.Errorf("unknown p99 serialized: %s", b)
	}
	b, err = json.Marshal(row{Name: "B", NsPerOp: 100, AllocsPerOp: 5, P99NsPerOp: 420})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"p99_ns_per_op":420`) {
		t.Errorf("measured p99 not serialized: %s", b)
	}
}
