package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"milan/internal/durable"
	"milan/internal/durable/vfs"
)

// The vfs crash loop must pass on a pinned seed: every phase recovers
// prefix-exactly and both lie phases convict the lying disk.
func TestVFSModePinnedSeed(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "vfs", "-seed", "42", "-iters", "10", "-ops", "90"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "crashtest vfs ok") {
		t.Fatalf("no ok line in %q", out.String())
	}
}

func TestUnknownModeRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// genOps must be a pure function of the seed, and each op must map onto
// exactly one WAL record — the property the differential oracle's
// "recovered LSN m = committed op prefix m" equation rests on.
func TestOpsAreDeterministicAndOneToOneWithRecords(t *testing.T) {
	a, b := genOps(300, 5, 2), genOps(300, 5, 2)
	grows := 0
	for i := range a {
		if a[i].observe != b[i].observe || a[i].grow != b[i].grow || a[i].now != b[i].now || a[i].job.ID != b[i].job.ID {
			t.Fatalf("op %d drifted between generations", i)
		}
		if a[i].grow {
			grows++
		}
	}
	if grows == 0 {
		t.Fatal("sharded op stream emitted no capacity grows; KindCapacity recovery is untested")
	}

	cfg := planeCfg{procs: 16, shards: 2}
	p, _, err := openPlane(vfs.NewMem(), "wal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := driveOps(p, a, 0, len(a), nil); err != nil {
		t.Fatal(err)
	}
	if got := p.DurableLSN(); got != uint64(len(a)) {
		t.Fatalf("%d ops committed %d records; the 1:1 mapping broke", len(a), got)
	}
}

// The oracle itself must fire: corrupt a recovered state and DiffStates
// has to reject it (guards against a vacuous differential).
func TestOracleDetectsTampering(t *testing.T) {
	ops := genOps(120, 9, 2)
	cfg := planeCfg{procs: 16, shards: 2}
	want, err := referenceState(ops, len(ops), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := referenceState(ops, len(ops), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.DiffStates(&got, &want); err != nil {
		t.Fatalf("identical drives diverged: %v", err)
	}
	got.Now = math.Nextafter(got.Now, math.Inf(1))
	if err := durable.DiffStates(&got, &want); err == nil {
		t.Fatal("oracle accepted a one-ulp clock tamper")
	}
}
