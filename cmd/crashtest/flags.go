package main

import (
	"flag"
	"io"
)

type flags struct {
	fs       *flag.FlagSet
	mode     *string
	seed     *int64
	iters    *int
	ops      *int
	shards   *int
	kills    *int
	dir      *string
	artifact *string
}

func newFlags(stderr io.Writer) flags {
	fs := flag.NewFlagSet("crashtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	return flags{
		fs:       fs,
		mode:     fs.String("mode", "vfs", "vfs (in-memory fault-injected crash loop) | sigkill (real-process kill loop) | child (internal)"),
		seed:     fs.Int64("seed", 0, "run seed (0 = derive from the clock; the chosen seed is always printed)"),
		iters:    fs.Int("iters", 15, "vfs mode: crash-loop epochs (phases cycle per epoch)"),
		ops:      fs.Int("ops", 120, "vfs mode: ops per epoch (each op is one WAL record)"),
		shards:   fs.Int("shards", 2, "admission-plane shards"),
		kills:    fs.Int("kills", 5, "sigkill mode: child kill/recover cycles"),
		dir:      fs.String("dir", "", "sigkill/child mode: WAL directory (default: a temp dir)"),
		artifact: fs.String("artifact", "", "append divergence reports (JSONL) to this file for CI upload"),
	}
}
