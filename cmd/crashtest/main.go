// Command crashtest proves the durable admission plane's crash-recovery
// contract end to end.
//
// In -mode vfs (the default) it drives a seed-deterministic admission
// storm — interleaved with single-processor capacity grows on sharded
// planes, so KindCapacity records sit between decisions — against a
// durable.Plane on the fault-injecting in-memory filesystem and
// crashes it mid-storm, cycling through fault phases:
//
//	sync-always    honest disk, fsync per record: a crash may lose nothing
//	unsynced-loss  group commit (sync every 4): the unsynced tail may die
//	write-error    injected write failure poisons the plane mid-storm
//	sync-lie       fsync reports success but persists nothing
//	syncdir-lie    directory fsync lies across a snapshot compaction
//
// After every crash the differential oracle re-drives the first m ops
// (m = recovered LSN; ops map 1:1 onto WAL records) through a fresh,
// never-crashed plane and requires the recovered state to be
// bitwise-identical — profiles, stats, grants, clock.  The sync-always
// phase additionally requires zero acked-grant loss, and the two lie
// phases must each provably LOSE at least one acknowledged grant across
// the run: a lying disk that the oracle cannot convict means the oracle
// is blind, and the run fails.
//
// In -mode sigkill the same storm runs in a child process (re-exec of
// this binary) against the real filesystem; the parent SIGKILLs the
// child mid-storm, recovers the directory, and requires every grant the
// child acknowledged on stdout to survive replay.
//
// Every run is a pure function of -seed; the chosen seed is always
// printed, and any divergence is written to -artifact for CI upload.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"milan/internal/core"
	"milan/internal/durable"
	"milan/internal/durable/vfs"
	"milan/internal/qos"
	"milan/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// op is one unit of driven work.  Every op appends exactly one WAL
// record (observe -> KindObserve, negotiate -> KindAdmit or KindReject,
// grow -> KindCapacity), so op index i commits as LSN i+1 and a
// recovered LSN m means ops[0:m] are the committed prefix.  Capacity
// ops are grow-only: a single-processor grow is exactly one shard
// resize (one record) and can never fail, which keeps the mapping 1:1;
// shrinks may stop early on committed reservations and are exercised
// in the durable package's own tests instead.
type op struct {
	observe bool
	grow    bool
	now     float64
	job     core.Job
}

// genOps builds the deterministic op stream for a seed.  Capacity ops
// ride the federated rebalancer, so they are only emitted on sharded
// (shards > 1) planes; the stream is a pure function of (n, seed,
// shards).
func genOps(n int, seed int64, shards int) []op {
	tmpl := workload.FigureJob{X: 4, T: 25, Alpha: 0.25, Laxity: 0.5}
	arr := workload.NewPoisson(6, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	ops := make([]op, 0, n)
	now := 0.0
	id := 0
	for len(ops) < n {
		now += arr.Next()
		ops = append(ops, op{observe: true, now: now})
		if shards > 1 && len(ops) < n && rng.Intn(12) == 0 {
			ops = append(ops, op{grow: true, now: now})
		}
		for k := rng.Intn(2); k >= 0 && len(ops) < n; k-- {
			ops = append(ops, op{now: now, job: tmpl.Job(id, now, workload.Tunable)})
			id++
		}
	}
	return ops
}

// growsIn counts capacity ops in the committed prefix ops[0:m]: the
// recovered plane's total capacity must be the seed capacity plus
// exactly this count.
func growsIn(ops []op, m int) int {
	n := 0
	for _, o := range ops[:m] {
		if o.grow {
			n++
		}
	}
	return n
}

type planeCfg struct {
	procs, shards int
	store         durable.StoreOptions
}

func openPlane(fs vfs.FS, dir string, cfg planeCfg) (*durable.Plane, durable.Recovered, error) {
	return durable.OpenPlane(durable.Config{
		FS: fs, Dir: dir,
		Procs: cfg.procs, Shards: cfg.shards, ProbeK: 1,
		Store: cfg.store,
	})
}

// driveOps pushes ops[from:until] through the plane.  Rejections are
// normal; any other negotiate error (poisoned store, injected fault)
// stops the drive and is returned with the index reached.
func driveOps(p *durable.Plane, ops []op, from, until int, onAck func(id int, finish float64)) (int, error) {
	for i := from; i < until; i++ {
		o := ops[i]
		if o.observe {
			p.Observe(o.now)
			if err := p.Err(); err != nil {
				return i, err
			}
			continue
		}
		if o.grow {
			if _, err := p.SetTotalCapacity(p.Fed().Procs() + 1); err != nil {
				return i, err
			}
			if err := p.Err(); err != nil {
				return i, err
			}
			continue
		}
		g, err := p.Negotiate(o.job)
		switch {
		case err == nil:
			if onAck != nil {
				onAck(o.job.ID, g.Finish())
			}
		case errors.Is(err, qos.ErrRejected):
		default:
			return i, err
		}
	}
	return until, nil
}

// referenceState re-drives ops[0:m] through a fresh in-memory plane that
// never crashes and returns its exported state: the ground truth any
// recovery must match bitwise.
func referenceState(ops []op, m int, cfg planeCfg) (durable.State, error) {
	ref, _, err := openPlane(vfs.NewMem(), "ref", planeCfg{procs: cfg.procs, shards: cfg.shards})
	if err != nil {
		return durable.State{}, err
	}
	if _, err := driveOps(ref, ops, 0, m, nil); err != nil {
		return durable.State{}, fmt.Errorf("reference drive: %w", err)
	}
	return ref.ExportState(), nil
}

// divergence is the artifact written when the oracle fires.
type divergence struct {
	Mode      string `json:"mode"`
	Seed      int64  `json:"seed"`
	Phase     string `json:"phase,omitempty"`
	Iteration int    `json:"iteration"`
	CrashOp   int    `json:"crash_op"`
	Recovered uint64 `json:"recovered_lsn"`
	Torn      bool   `json:"torn"`
	Detail    string `json:"detail"`
	When      string `json:"when"`
}

func writeDivergence(path string, d divergence) {
	if path == "" {
		return
	}
	d.When = time.Now().UTC().Format(time.RFC3339)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	enc := json.NewEncoder(f)
	_ = enc.Encode(d)
	_ = f.Close()
}

type phase struct {
	name string
	// store options for this phase's epochs.
	store durable.StoreOptions
	// arm injects the phase's fault; armAt/crashAt are op offsets within
	// the epoch.
	arm func(ft *vfs.Fault, rng *rand.Rand)
	// lossAllowed: acked grants may legally die (weak sync policy).
	lossAllowed bool
	// mustLose: the phase is a conviction test — across the whole run it
	// must demonstrably lose at least one acked grant.
	mustLose bool
}

func phases() []phase {
	return []phase{
		{
			name:  "sync-always",
			store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 16},
		},
		{
			name:        "unsynced-loss",
			store:       durable.StoreOptions{Sync: durable.SyncEveryN, SyncEvery: 4, SnapshotEvery: 16},
			lossAllowed: true,
		},
		{
			name:  "write-error",
			store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 16},
			arm: func(ft *vfs.Fault, rng *rand.Rand) {
				ft.SetWriteError(errors.New("injected write error"), 5+rng.Intn(40))
			},
		},
		{
			name:  "sync-lie",
			store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 16},
			arm: func(ft *vfs.Fault, rng *rand.Rand) {
				ft.SetSyncLie(true)
			},
			lossAllowed: true,
			mustLose:    true,
		},
		{
			name:  "syncdir-lie",
			store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 16},
			arm: func(ft *vfs.Fault, rng *rand.Rand) {
				ft.SetSyncDirLie(true)
			},
			lossAllowed: true,
			mustLose:    true,
		},
	}
}

// runVFS is the in-memory crash loop: iters epochs cycling through the
// fault phases, each ending in a crash and a differential check.
func runVFS(seed int64, iters, opsPerIter, shards int, artifact string, stdout, stderr io.Writer) int {
	ph := phases()
	total := iters*opsPerIter + opsPerIter
	ops := genOps(total, seed, shards)
	cfgFor := func(p phase) planeCfg {
		return planeCfg{procs: 16, shards: shards, store: p.store}
	}

	lost := make(map[string]int) // phase -> acked grants provably lost
	crashes := 0
	fail := func(d divergence, format string, args ...any) int {
		d.Mode, d.Seed = "vfs", seed
		d.Detail = fmt.Sprintf(format, args...)
		writeDivergence(artifact, d)
		fmt.Fprintf(stderr, "crashtest: FAIL %s (phase=%s iter=%d): %s\n", d.Mode, d.Phase, d.Iteration, d.Detail)
		return 1
	}

	for iter := 0; iter < iters; iter++ {
		p := ph[iter%len(ph)]
		rng := rand.New(rand.NewSource(seed + int64(iter)*7919))
		cfg := cfgFor(p)

		// Each epoch starts from an empty disk and crash-cycles within it,
		// so every phase exercises genesis, mid-log and post-snapshot
		// recovery points.
		ft := vfs.NewFault(vfs.NewMem())
		plane, _, err := openPlane(ft, "wal", cfg)
		if err != nil {
			return fail(divergence{Phase: p.name, Iteration: iter}, "open: %v", err)
		}
		next := 0
		acked := make(map[int]float64) // jobID -> reserved finish
		for cycle := 0; cycle < 3 && next < len(ops); cycle++ {
			crashAt := next + opsPerIter/3 + rng.Intn(opsPerIter/3+1)
			if crashAt > len(ops) {
				crashAt = len(ops)
			}
			if p.arm != nil && cycle == 1 {
				// Arm the fault partway through the epoch so a clean
				// prefix exists under it.
				p.arm(ft, rng)
			}
			reached, derr := driveOps(plane, ops, next, crashAt, func(id int, fin float64) {
				acked[id] = fin
			})
			if derr != nil && p.arm == nil {
				return fail(divergence{Phase: p.name, Iteration: iter, CrashOp: reached},
					"unexpected drive error: %v", derr)
			}

			ft.Crash()
			crashes++
			// Faults do not survive the "reboot".
			ft.SetWriteError(nil, 0)
			ft.SetSyncError(nil, 0)
			ft.SetSyncLie(false)
			ft.SetSyncDirLie(false)

			var rec durable.Recovered
			plane, rec, err = reopen(ft, cfg)
			if err != nil {
				return fail(divergence{Phase: p.name, Iteration: iter, CrashOp: reached},
					"recovery: %v", err)
			}
			m := int(rec.State.LSN)
			if m > reached {
				return fail(divergence{Phase: p.name, Iteration: iter, CrashOp: reached, Recovered: rec.State.LSN, Torn: rec.Torn},
					"recovered lsn %d beyond driven op %d", m, reached)
			}

			// Differential oracle: recovered state == never-crashed
			// reference over the committed prefix, bit for bit.
			want, err := referenceState(ops, m, cfg)
			if err != nil {
				return fail(divergence{Phase: p.name, Iteration: iter, CrashOp: reached}, "%v", err)
			}
			got := plane.ExportState()
			if err := durable.DiffStates(&got, &want); err != nil {
				return fail(divergence{Phase: p.name, Iteration: iter, CrashOp: reached, Recovered: rec.State.LSN, Torn: rec.Torn},
					"recovered state diverged from reference: %v", err)
			}

			// Capacity oracle: the recovered pool must be the seed
			// capacity plus exactly the committed grow ops — a capacity
			// record lost or double-applied in replay shifts the total.
			if cfg.shards > 1 {
				wantProcs := cfg.procs + growsIn(ops, m)
				if gotProcs := plane.Fed().Procs(); gotProcs != wantProcs {
					return fail(divergence{Phase: p.name, Iteration: iter, CrashOp: reached, Recovered: rec.State.LSN, Torn: rec.Torn},
						"recovered capacity %d procs, committed prefix implies %d", gotProcs, wantProcs)
				}
			}

			// Grant-loss accounting: acked, still pending, absent.
			have := make(map[int]bool)
			for _, g := range plane.Grants() {
				have[g.JobID] = true
			}
			for id, fin := range acked {
				if fin <= plane.Now() {
					delete(acked, id)
					continue
				}
				if !have[id] {
					lost[p.name]++
					delete(acked, id)
					if !p.lossAllowed {
						return fail(divergence{Phase: p.name, Iteration: iter, CrashOp: reached, Recovered: rec.State.LSN, Torn: rec.Torn},
							"acked grant %d lost under %s", id, p.name)
					}
				}
			}
			next = m
			_ = reached
		}
		_ = plane
	}

	// Conviction: the lying-disk phases must have provably lost acked
	// grants — otherwise the oracle cannot detect a lying disk at all.
	for _, p := range ph {
		if p.mustLose && lost[p.name] == 0 {
			return fail(divergence{Phase: p.name},
				"lie phase lost no acked grants across %d crashes — oracle is blind to a lying disk", crashes)
		}
	}
	fmt.Fprintf(stdout, "crashtest vfs ok: seed=%d crashes=%d losses=%v\n", seed, crashes, lost)
	return 0
}

func reopen(fs vfs.FS, cfg planeCfg) (*durable.Plane, durable.Recovered, error) {
	return openPlane(fs, "wal", cfg)
}

// runChild is the sigkill-mode child: it recovers the directory, then
// drives the deterministic op stream against the real filesystem,
// printing "ack <jobID> <finish>" after every acknowledged grant.  It is
// killed by the parent; it never exits on its own unless the stream ends.
func runChild(dir string, seed int64, shards int, stdout io.Writer) int {
	var fs vfs.OS
	if err := fs.MkdirAll(dir); err != nil {
		fmt.Fprintf(os.Stderr, "crashtest child: %v\n", err)
		return 2
	}
	cfg := planeCfg{procs: 16, shards: shards,
		store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 32}}
	plane, rec, err := openPlane(fs, dir, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtest child: open: %v\n", err)
		return 2
	}
	ops := genOps(4096, seed, shards)
	next := int(rec.State.LSN)
	w := bufio.NewWriter(stdout)
	_, err = driveOps(plane, ops, next, len(ops), func(id int, fin float64) {
		// The ack is printed only after Negotiate returned, i.e. after
		// the admit record was fsynced: every printed line must survive.
		fmt.Fprintf(w, "ack %d %x\n", id, uint64(fin*1e6))
		w.Flush()
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtest child: drive: %v\n", err)
		return 2
	}
	return 0
}

// runSigkill crash-loops a real process: spawn the child, harvest acks,
// SIGKILL it mid-storm, recover the directory and require every
// acknowledged grant to have survived.  The final pass also runs the
// differential oracle against the in-memory reference.
func runSigkill(seed int64, kills, shards int, dir, artifact string, stdout, stderr io.Writer) int {
	if dir == "" {
		d, err := os.MkdirTemp("", "crashtest-*")
		if err != nil {
			fmt.Fprintf(stderr, "crashtest: %v\n", err)
			return 2
		}
		defer os.RemoveAll(d)
		dir = d
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "crashtest: %v\n", err)
		return 2
	}
	rng := rand.New(rand.NewSource(seed ^ 0x51ead))
	acked := make(map[int]bool)
	ops := genOps(4096, seed, shards)

	fail := func(iter int, format string, args ...any) int {
		d := divergence{Mode: "sigkill", Seed: seed, Iteration: iter, Detail: fmt.Sprintf(format, args...)}
		writeDivergence(artifact, d)
		fmt.Fprintf(stderr, "crashtest: FAIL sigkill (iter=%d): %s\n", iter, d.Detail)
		return 1
	}

	for k := 0; k < kills; k++ {
		cmd := exec.Command(exe,
			"-mode", "child", "-dir", dir,
			"-seed", strconv.FormatInt(seed, 10),
			"-shards", strconv.Itoa(shards))
		cmd.Stderr = stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			return fail(k, "pipe: %v", err)
		}
		if err := cmd.Start(); err != nil {
			return fail(k, "start: %v", err)
		}
		// Harvest a random number of acks, then SIGKILL mid-storm.
		quota := 3 + rng.Intn(20)
		sc := bufio.NewScanner(pipe)
		harvested := 0
		for harvested < quota && sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 3 || fields[0] != "ack" {
				continue
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return fail(k, "bad ack line %q", sc.Text())
			}
			acked[id] = true
			harvested++
		}
		_ = cmd.Process.Kill() // SIGKILL: no cleanup, no deferred flushes
		go io.Copy(io.Discard, pipe)
		_ = cmd.Wait()

		// Recover the real directory and check acked ⊆ recovered.
		var fs vfs.OS
		cfg := planeCfg{procs: 16, shards: shards,
			store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 32}}
		plane, rec, err := openPlane(fs, dir, cfg)
		if err != nil {
			return fail(k, "recovery: %v", err)
		}
		have := make(map[int]bool)
		for _, g := range plane.Grants() {
			have[g.JobID] = true
		}
		finishOf := make(map[int]float64)
		for _, o := range ops {
			if !o.observe && !o.grow {
				finishOf[o.job.ID] = o.now // release; conservative lower bound
			}
		}
		for id := range acked {
			if have[id] {
				continue
			}
			// The grant may have legitimately elapsed: its tasks all end
			// before the recovered clock.  Released-after-now grants can
			// never have elapsed.
			if finishOf[id] > plane.Now() {
				return fail(k, "acked grant %d missing after SIGKILL recovery (lsn %d torn=%t)",
					id, rec.State.LSN, rec.Torn)
			}
			delete(acked, id)
		}
		// Differential oracle on the real directory, same as vfs mode.
		m := int(rec.State.LSN)
		want, err := referenceState(ops, m, cfg)
		if err != nil {
			return fail(k, "%v", err)
		}
		got := plane.ExportState()
		if err := durable.DiffStates(&got, &want); err != nil {
			return fail(k, "recovered state diverged from reference at lsn %d: %v", m, err)
		}
		if shards > 1 {
			wantProcs := 16 + growsIn(ops, m)
			if gotProcs := plane.Fed().Procs(); gotProcs != wantProcs {
				return fail(k, "recovered capacity %d procs, committed prefix implies %d (lsn %d)", gotProcs, wantProcs, m)
			}
		}
		if err := plane.Close(); err != nil {
			return fail(k, "close: %v", err)
		}
	}
	fmt.Fprintf(stdout, "crashtest sigkill ok: seed=%d kills=%d acked-survived=%d\n", seed, kills, len(acked))
	return 0
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := newFlags(stderr)
	if err := fs.fs.Parse(args); err != nil {
		return 2
	}
	seed := *fs.seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	switch *fs.mode {
	case "vfs":
		fmt.Fprintf(stdout, "crashtest mode=vfs seed=%d\n", seed)
		return runVFS(seed, *fs.iters, *fs.ops, *fs.shards, *fs.artifact, stdout, stderr)
	case "sigkill":
		fmt.Fprintf(stdout, "crashtest mode=sigkill seed=%d\n", seed)
		return runSigkill(seed, *fs.kills, *fs.shards, *fs.dir, *fs.artifact, stdout, stderr)
	case "child":
		return runChild(*fs.dir, seed, *fs.shards, stdout)
	default:
		fmt.Fprintf(stderr, "crashtest: unknown -mode %q\n", *fs.mode)
		return 2
	}
}
