// Command tunesim regenerates the paper's evaluation figures on the
// synthetic task system of Section 5.3: utilization and throughput of the
// tunable vs. non-tunable task systems as arrival rate, laxity, machine
// size and job shape vary.
//
// Usage:
//
//	tunesim [flags] fig5a|fig5b|fig5c|fig5d|fig6a|fig6b|exta|extq|extr|extb|sharded|all|point|replicate|gantt
//
// The `point` subcommand runs the three systems once at the configured
// parameters and prints the raw results.  The `sharded` subcommand compares
// the monolithic arbitrator against a federated admission plane
// (-shards N -probe k) over the Figure 5(a) arrival sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"milan/internal/core"
	"milan/internal/experiments"
	"milan/internal/obs"
	"milan/internal/obs/forensics"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
	"milan/internal/workload"
)

func main() {
	cfg := experiments.DefaultConfig()
	flag.IntVar(&cfg.Procs, "procs", cfg.Procs, "machine size (processors)")
	flag.IntVar(&cfg.Job.X, "x", cfg.Job.X, "processors of task A")
	flag.Float64Var(&cfg.Job.T, "t", cfg.Job.T, "duration of task A")
	flag.Float64Var(&cfg.Job.Alpha, "alpha", cfg.Job.Alpha, "job shape parameter in (0,1], x*alpha integral")
	flag.Float64Var(&cfg.Job.Laxity, "laxity", cfg.Job.Laxity, "slack ratio in [0,1)")
	flag.Float64Var(&cfg.MeanInterarrival, "interval", cfg.MeanInterarrival, "mean Poisson interarrival gap")
	flag.IntVar(&cfg.Jobs, "jobs", cfg.Jobs, "number of job arrivals per run")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	malleable := flag.Bool("malleable", false, "use the malleable task model (Section 5.4)")
	tiebreak := flag.String("tiebreak", "paper", "chain tie-break policy: paper|firstfit|minarea|utilfirst")
	plot := flag.Bool("plot", false, "render figures as ASCII charts in addition to tables")
	csvOut := flag.Bool("csv", false, "emit figures as CSV instead of tables")
	replicas := flag.Int("replicas", 10, "seeds for the replicate subcommand")
	flag.IntVar(&shardCount, "shards", 2, "shard count for the sharded subcommand (federated admission plane)")
	flag.IntVar(&probeFanout, "probe", 0, "probe fan-out k for best-of-k routing (0 = all shards)")
	tracePath := flag.String("trace", "", "write a chrome://tracing JSON of the run to this file")
	showMetrics := flag.Bool("metrics", false, "print the final metrics registry after the run")
	sloAudit := flag.Bool("slo", false, "audit the run with the SLO engine and print the end-of-run conformance report")
	flightPath := flag.String("flight", "", "write the latest flight-recorder snapshot (JSONL) to this file after the run (implies -slo)")
	explainPath := flag.String("explain", "", "record a rejection diagnosis per failed admission and write them (JSONL) to this file after the run")
	headroomHorizon := flag.Float64("headroom", 0, "advertise and audit the capacity-headroom frontier over this horizon in simulated time units (0 disables)")
	ledgerPath := flag.String("ledger", "", "account every run on the utilization ledger and write the merged per-tenant snapshot (JSONL) to this file after the run")
	tenants := flag.String("tenants", "", "comma-separated tenant names cycled over arrivals for per-tenant ledger accounting (empty = unattributed)")
	classes := flag.Int("classes", 1, "priority classes per tenant for the -tenants cycle")
	debugAddr := flag.String("debug-addr", "", "serve the observability debug endpoint (/metrics /trace /explain ...) on this address while the run executes")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof on the debug endpoint (requires -debug-addr)")
	flag.Parse()
	replicaCount = *replicas
	plotFigures = *plot
	csvFigures = *csvOut
	cfg.Malleable = *malleable
	if *flightPath != "" {
		*sloAudit = true
	}
	if *pprofFlag && *debugAddr == "" {
		fmt.Fprintln(os.Stderr, "tunesim: -pprof requires -debug-addr (profiles are served on the debug endpoint)")
		os.Exit(2)
	}
	var observer *obs.Observer
	var auditor *slo.Engine
	var recorder *slo.Recorder
	if *tracePath != "" || *showMetrics || *sloAudit || *debugAddr != "" {
		if *sloAudit {
			recorder = slo.NewRecorder(0, 0)
		}
		observer = obs.New(obs.Config{
			KeepPlacements: *tracePath != "",
			Capacity:       cfg.Procs,
			Tracing:        *sloAudit || *tracePath != "",
			Sink:           recorder, // nil-safe: slo.Recorder no-ops on nil
			EnablePprof:    *pprofFlag,
		})
		cfg.Obs = observer
		if *sloAudit {
			recorder.Attach(observer.Tracer())
			auditor = slo.New(slo.Options{Registry: observer.Reg, Recorder: recorder})
			cfg.SLO = auditor
		}
	}
	// Admission forensics: the rejection recorder (-explain, and always on
	// when a debug endpoint serves /explain) and the headroom forecaster
	// (-headroom).  Both feed the run through Config.Forensics/Forecast.
	var forRec *forensics.Recorder
	if *explainPath != "" || *debugAddr != "" {
		forRec = forensics.NewRecorder(0)
		cfg.Forensics = forRec
		if observer != nil {
			forRec.BindMetrics(observer.Reg)
			forRec.Mount(observer)
		}
	}
	var forecaster *forensics.Forecaster
	if *headroomHorizon > 0 {
		forecaster = forensics.NewForecaster()
		cfg.Forecast = forecaster
		cfg.HeadroomHorizon = *headroomHorizon
		if observer != nil {
			forecaster.BindMetrics(observer.Reg)
		}
	}
	// Utilization ledger: per-tenant capacity accounting.  One shard
	// ledger per admission shard (the sharded subcommand needs them; a
	// monolithic run only touches shard 0), merged lock-free for the
	// /ledger endpoint and the end-of-run JSONL artifact.  Totals
	// accumulate across every run of the invocation (sweeps included).
	var ld *ledger.Sharded
	if *ledgerPath != "" || *debugAddr != "" {
		n := shardCount
		if n < 1 {
			n = 1
		}
		ld = ledger.NewSharded(ledger.Config{Capacity: cfg.Procs}, n)
		cfg.Ledger = ld
		if observer != nil {
			ld.BindMetrics(observer.Reg)
			ld.Mount(observer)
		}
	}
	if *tenants != "" {
		cfg.Tenants = &workload.TenantCycle{
			Tenants: strings.Split(*tenants, ","),
			Classes: *classes,
		}
	}
	if *debugAddr != "" {
		addr, srv, err := startDebug(observer, *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tunesim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s (/metrics /trace /spans /gantt /explain /healthz)\n\n", addr)
	}
	switch *tiebreak {
	case "paper":
	case "firstfit":
		cfg.Opts = &core.Options{TieBreak: core.TieBreakFirstFit}
	case "minarea":
		cfg.Opts = &core.Options{TieBreak: core.TieBreakMinArea}
	case "utilfirst":
		cfg.Opts = &core.Options{TieBreak: core.TieBreakUtilFirst}
	default:
		fmt.Fprintf(os.Stderr, "tunesim: unknown tiebreak %q\n", *tiebreak)
		os.Exit(2)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tunesim [flags] fig5a|fig5b|fig5c|fig5d|fig6a|fig6b|exta|extq|extr|extb|sharded|all|point|replicate|gantt")
		os.Exit(2)
	}
	if err := run(cfg, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "tunesim:", err)
		os.Exit(1)
	}
	if err := finishSLO(os.Stdout, auditor, recorder, *flightPath); err != nil {
		fmt.Fprintln(os.Stderr, "tunesim:", err)
		os.Exit(1)
	}
	if err := finishForensics(os.Stdout, forRec, forecaster, *explainPath); err != nil {
		fmt.Fprintln(os.Stderr, "tunesim:", err)
		os.Exit(1)
	}
	if err := finishLedger(os.Stdout, ld, *ledgerPath); err != nil {
		fmt.Fprintln(os.Stderr, "tunesim:", err)
		os.Exit(1)
	}
	if err := finishObs(os.Stdout, observer, *tracePath, *showMetrics); err != nil {
		fmt.Fprintln(os.Stderr, "tunesim:", err)
		os.Exit(1)
	}
	if auditor != nil && !auditor.Report().Conformant() {
		os.Exit(1) // the hard invariant broke: fail the run visibly
	}
}

// finishSLO prints the end-of-run conformance report (the -slo output) and
// writes the flight-recorder snapshot file (the -flight output).  A nil
// auditor is a no-op.
func finishSLO(out io.Writer, e *slo.Engine, rec *slo.Recorder, flightPath string) error {
	if e == nil {
		return nil
	}
	fmt.Fprintln(out)
	if err := e.WriteReport(out); err != nil {
		return err
	}
	if flightPath == "" {
		return nil
	}
	snap := rec.Last()
	if snap == nil {
		// Nothing anomalous happened: cut a manual snapshot so the
		// artifact still captures the rings at end of run.
		snap = rec.Trigger(slo.TriggerManual, 0, 0, "end-of-run snapshot (no anomaly triggered)")
	}
	f, err := os.Create(flightPath)
	if err != nil {
		return err
	}
	if err := snap.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote flight snapshot (%s, %d spans, %d events) to %s\n",
		snap.Kind, len(snap.Spans), len(snap.Events), flightPath)
	if snap.Kind != slo.TriggerManual {
		fmt.Fprintf(out, "replay verdict: %s\n", slo.Replay(snap))
	}
	return nil
}

// finishForensics prints the admission-forensics summary (the -explain and
// -headroom outputs) and writes the rejection-cause JSONL artifact.  Nil
// recorder and forecaster are a no-op.
func finishForensics(out io.Writer, rec *forensics.Recorder, fc *forensics.Forecaster, explainPath string) error {
	if rec != nil {
		var suggested, verified, refuted int
		causes := map[core.Constraint]int{}
		records := rec.Records()
		for _, r := range records {
			if r.Diag.Suggestion != nil {
				suggested++
			}
			if r.Verified != nil {
				if *r.Verified {
					verified++
				} else {
					refuted++
				}
			}
			for _, cd := range r.Diag.Chains {
				if !cd.Schedulable {
					causes[cd.Constraint]++
				}
			}
		}
		fmt.Fprintf(out, "\nadmission forensics: %d diagnoses retained (%d recorded, %d evicted)\n",
			len(records), rec.Total(), rec.Dropped())
		fmt.Fprintf(out, "  failed chains by cause: width=%d deadline=%d capacity=%d\n",
			causes[core.ConstraintWidth], causes[core.ConstraintDeadline], causes[core.ConstraintCapacity])
		fmt.Fprintf(out, "  counterfactual suggestions: %d emitted, %d verified admitting, %d refuted\n",
			suggested, verified, refuted)
		if explainPath != "" {
			f, err := os.Create(explainPath)
			if err != nil {
				return err
			}
			if err := rec.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote rejection-cause JSONL (%d records) to %s\n", len(records), explainPath)
		}
	}
	if fc != nil {
		if hr, ok := fc.Last(); ok {
			fmt.Fprintf(out, "headroom frontier at end of run: widest=%dp longest=%.1ft best rectangle=%dp x %.1ft (area %.1f) over [%.1f, %.1f)\n",
				hr.MaxProcs, hr.MaxDuration, hr.BestHole.Procs, hr.BestHole.End-hr.BestHole.Start,
				hr.MaxArea, hr.From, hr.From+hr.Horizon)
		}
	}
	return nil
}

// finishLedger prints the per-tenant accounting table and writes the
// merged ledger snapshot as JSONL (the -ledger output).  A nil ledger is
// a no-op.
func finishLedger(out io.Writer, ld *ledger.Sharded, path string) error {
	if ld == nil {
		return nil
	}
	snap := ld.Merged()
	fmt.Fprintf(out, "\nutilization ledger: util=%.4f frag=%.4f reserved=%.1f realized=%.1f waste=%.1f\n",
		snap.Utilization(), snap.Fragmentation(),
		snap.TotalReservedArea, snap.TotalRealizedArea, snap.TotalWasteArea())
	fmt.Fprintf(out, "%-16s %5s %12s %12s %12s %8s %9s %9s\n",
		"tenant", "class", "reserved", "realized", "waste", "commits", "completes", "rejects")
	for _, t := range snap.Totals {
		name := t.Tenant
		if name == "" {
			name = "(unattributed)"
		}
		fmt.Fprintf(out, "%-16s %5d %12.1f %12.1f %12.1f %8d %9d %9d\n",
			name, t.Class, t.ReservedArea, t.RealizedArea, t.Waste(),
			t.Commits, t.Completions, t.Rejections)
	}
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote ledger snapshot (%d tenant streams, %d buckets) to %s\n",
		len(snap.Totals), len(snap.Buckets), path)
	return nil
}

// startDebug serves the observer's debug handler on addr, returning the
// bound address and the server (close it to stop serving).
func startDebug(o *obs.Observer, addr string) (net.Addr, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler()}
	go srv.Serve(ln)
	return ln.Addr(), srv, nil
}

// finishObs renders the post-run observability artifacts: the metrics table
// on out when showMetrics is set and the Chrome trace file when tracePath is
// set.  A nil observer is a no-op.
func finishObs(out io.Writer, o *obs.Observer, tracePath string, showMetrics bool) error {
	if o == nil {
		return nil
	}
	if showMetrics {
		fmt.Fprintln(out, "\nmetrics:")
		if err := o.Reg.WriteTable(out); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote chrome trace to %s (load it in chrome://tracing or ui.perfetto.dev)\n", tracePath)
	}
	return nil
}

// plotFigures renders ASCII charts after each figure table when set.
var plotFigures bool

// replicaCount is the seed count for the replicate subcommand.
var replicaCount int

// csvFigures selects CSV output for figure subcommands.
var csvFigures bool

// shardCount and probeFanout configure the federated admission plane of the
// sharded subcommand.
var shardCount, probeFanout int

// ganttDemo admits a short burst of tunable jobs and draws the resulting
// processor-time schedule (holes show as dots).
func ganttDemo(out *os.File, cfg experiments.Config) error {
	n := cfg.Jobs
	if n > 12 {
		n = 12
	}
	opts := cfg.Opts
	if cfg.Obs != nil {
		opts = cfg.Obs.InstrumentOptions(cfg.Opts)
		cfg.Obs.SetCapacity(cfg.Procs)
	}
	sched := core.NewScheduler(cfg.Procs, 0, opts)
	arrivals := workload.NewPoisson(cfg.MeanInterarrival, cfg.Seed)
	var placements []*core.Placement
	release := 0.0
	admitted, rejected := 0, 0
	for i := 0; i < n; i++ {
		release += arrivals.Next()
		sched.Observe(0) // keep full history for the chart
		job := cfg.Job.Job(i, release, workload.Tunable)
		pl, err := sched.Admit(job)
		if err != nil {
			rejected++
			continue
		}
		admitted++
		placements = append(placements, pl)
	}
	asn, err := core.AssignProcessors(cfg.Procs, placements)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d arrivals: %d admitted, %d rejected (job IDs mod 10 shown)\n\n", n, admitted, rejected)
	return core.RenderGantt(out, cfg.Procs, asn, 96)
}

func run(cfg experiments.Config, what string) error {
	out := os.Stdout
	fig := func(f experiments.Figure, err error) error {
		if err != nil {
			return err
		}
		if csvFigures {
			return experiments.WriteFigureCSV(out, f)
		}
		if err := experiments.WriteFigure(out, f, cfg); err != nil {
			return err
		}
		if plotFigures {
			fmt.Fprintln(out)
			return experiments.PlotFigure(out, f)
		}
		return nil
	}
	grid := func(g experiments.Grid, err error) error {
		if err != nil {
			return err
		}
		if csvFigures {
			return experiments.WriteGridCSV(out, g)
		}
		return experiments.WriteGrid(out, g, cfg)
	}
	switch what {
	case "fig5a":
		return fig(experiments.Fig5a(cfg, nil))
	case "fig5b":
		return fig(experiments.Fig5b(cfg, nil))
	case "fig5c":
		return fig(experiments.Fig5c(cfg, nil))
	case "fig5d":
		return fig(experiments.Fig5d(cfg, nil))
	case "fig6a":
		return grid(experiments.Fig6(cfg, nil, nil, false))
	case "fig6b":
		return grid(experiments.Fig6(cfg, nil, nil, true))
	case "extr":
		results, err := experiments.ChurnRun(cfg, nil)
		if err != nil {
			return err
		}
		return experiments.WriteChurn(out, results, cfg, nil)
	case "exta":
		cmps, err := experiments.RunBursty(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteBursty(out, cmps, cfg)
	case "extb":
		be, reserved, err := experiments.BestEffortComparison(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteBestEffort(out, be, reserved, cfg)
	case "extq":
		pts, err := experiments.QualitySweep(cfg, nil, 0.5, 0.7)
		if err != nil {
			return err
		}
		return experiments.WriteQuality(out, pts, cfg)
	case "sharded":
		sf, err := experiments.Fig5aSharded(cfg, nil, shardCount, probeFanout)
		if err != nil {
			return err
		}
		return experiments.WriteSharded(out, sf)
	case "all":
		for _, w := range []string{"fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b", "extq", "extr", "extb", "exta", "sharded"} {
			if err := run(cfg, w); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	case "gantt":
		return ganttDemo(out, cfg)
	case "replicate":
		return experiments.WriteReplicated(out, cfg, replicaCount)
	case "point":
		for _, sys := range workload.Systems {
			r, err := experiments.Run(cfg, sys)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-8s admitted=%d rejected=%d util=%.3f horizon=%.1f chainShare=%v meanSlack=%.1f\n",
				sys, r.Admitted, r.Rejected, r.Utilization, r.Horizon, r.ChainShare, r.MeanLateSlack)
		}
		fmt.Fprintf(out, "offered load: %.2f\n", cfg.OfferedLoad())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
}
