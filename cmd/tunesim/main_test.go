package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"milan/internal/experiments"
	"milan/internal/obs"
	"milan/internal/obs/slo"
)

// testCfg is a tiny configuration so every subcommand runs in milliseconds.
func testCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Procs = 16
	cfg.Jobs = 60
	return cfg
}

func TestRunSubcommands(t *testing.T) {
	old := replicaCount
	replicaCount = 2
	defer func() { replicaCount = old }()
	for _, what := range []string{
		"fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b",
		"exta", "extq", "extr", "extb", "sharded", "point", "replicate", "gantt",
	} {
		if err := run(testCfg(), what); err != nil {
			t.Errorf("%s: %v", what, err)
		}
	}
}

func TestRunSubcommandsWithPlotAndCSV(t *testing.T) {
	plotFigures = true
	defer func() { plotFigures = false }()
	if err := run(testCfg(), "fig5d"); err != nil {
		t.Errorf("plot: %v", err)
	}
	plotFigures = false
	csvFigures = true
	defer func() { csvFigures = false }()
	if err := run(testCfg(), "fig5a"); err != nil {
		t.Errorf("csv fig: %v", err)
	}
	if err := run(testCfg(), "fig6a"); err != nil {
		t.Errorf("csv grid: %v", err)
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run(testCfg(), "bogus"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := testCfg()
	cfg.Job.Alpha = 0.3 // 16*0.3 not integral
	if err := run(cfg, "fig5a"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestFinishObsMetricsTable runs an instrumented point experiment and checks
// the -metrics table reports the admission counters.
func TestFinishObsMetricsTable(t *testing.T) {
	cfg := testCfg()
	o := obs.New(obs.Config{Capacity: cfg.Procs})
	cfg.Obs = o
	if err := run(cfg, "point"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := finishObs(&buf, o, "", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"metrics:", obs.MetricAdmitted, obs.MetricChainsTried, obs.MetricHolesProbed, obs.MetricSimEvents, obs.MetricDecisions} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics table missing %q:\n%s", want, out)
		}
	}
	if o.Snapshot().Counters[obs.MetricAdmitted] == 0 {
		t.Fatal("no admissions counted")
	}
}

// TestFinishObsTraceRoundTrips runs an instrumented experiment with
// placement retention and checks the -trace file parses back.
func TestFinishObsTraceRoundTrips(t *testing.T) {
	cfg := testCfg()
	cfg.Jobs = 20
	o := obs.New(obs.Config{KeepPlacements: true, Capacity: cfg.Procs})
	cfg.Obs = o
	if err := run(cfg, "point"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := finishObs(&buf, o, path, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), path) {
		t.Fatalf("output does not mention the trace file:\n%s", buf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ParseChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	var spans, instants int
	for _, ev := range evs {
		switch ev.Ph {
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if spans == 0 {
		t.Fatal("trace has no schedule spans")
	}
	if instants == 0 {
		t.Fatal("trace has no decision instants")
	}
}

// TestFinishObsNilObserver is the unobserved fast path: nothing happens.
func TestFinishObsNilObserver(t *testing.T) {
	var buf bytes.Buffer
	if err := finishObs(&buf, nil, "ignored.json", true); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil observer wrote output: %q", buf.String())
	}
	if _, err := os.Stat("ignored.json"); err == nil {
		t.Fatal("nil observer created a trace file")
	}
}

// TestFinishSLOReportAndFlight runs an audited point experiment and checks
// the -slo conformance report plus the -flight snapshot artifact.
func TestFinishSLOReportAndFlight(t *testing.T) {
	cfg := testCfg()
	rec := slo.NewRecorder(256, 256)
	o := obs.New(obs.Config{Capacity: cfg.Procs, Tracing: true, Sink: rec})
	rec.Attach(o.Tracer())
	eng := slo.New(slo.Options{Registry: o.Reg, Recorder: rec})
	cfg.Obs, cfg.SLO = o, eng
	if err := run(cfg, "point"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	var buf bytes.Buffer
	if err := finishSLO(&buf, eng, rec, path); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SLO conformance: CONFORMANT", "deadline misses=0", "wrote flight snapshot"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo output missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := slo.DecodeSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != slo.TriggerManual || len(snap.Spans) == 0 || len(snap.Events) == 0 {
		t.Fatalf("snapshot: kind=%s spans=%d events=%d", snap.Kind, len(snap.Spans), len(snap.Events))
	}
}

// TestFinishSLODetectsInjectedFault runs with a completion delay and checks
// the report flags the misses and the snapshot replays to a runtime fault.
func TestFinishSLODetectsInjectedFault(t *testing.T) {
	cfg := testCfg()
	cfg.Jobs = 30
	cfg.CompletionDelay = 1e4
	rec := slo.NewRecorder(1024, 1024)
	o := obs.New(obs.Config{Capacity: cfg.Procs, Tracing: true, Sink: rec})
	rec.Attach(o.Tracer())
	eng := slo.New(slo.Options{Registry: o.Reg, Recorder: rec})
	cfg.Obs, cfg.SLO = o, eng
	if err := run(cfg, "point"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	var buf bytes.Buffer
	if err := finishSLO(&buf, eng, rec, path); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VIOLATED", "replay verdict: fault=runtime"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo output missing %q:\n%s", want, out)
		}
	}
	if eng.Report().Conformant() {
		t.Fatal("injected fault not reported")
	}
}

// TestFinishSLONilEngine is the unaudited fast path: nothing happens.
func TestFinishSLONilEngine(t *testing.T) {
	var buf bytes.Buffer
	if err := finishSLO(&buf, nil, nil, "ignored.jsonl"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil engine wrote output: %q", buf.String())
	}
	if _, err := os.Stat("ignored.jsonl"); err == nil {
		t.Fatal("nil engine created a flight file")
	}
}

// TestGanttDemoInstrumented checks the gantt subcommand also feeds the
// observer when one is configured.
func TestGanttDemoInstrumented(t *testing.T) {
	cfg := testCfg()
	o := obs.New(obs.Config{KeepPlacements: true})
	cfg.Obs = o
	if err := run(cfg, "gantt"); err != nil {
		t.Fatal(err)
	}
	if o.Snapshot().Counters[obs.MetricAdmitted] == 0 {
		t.Fatal("gantt demo did not count admissions")
	}
	if len(o.Placements()) == 0 {
		t.Fatal("gantt demo did not retain placements")
	}
}
