package main

import (
	"testing"

	"milan/internal/experiments"
)

// testCfg is a tiny configuration so every subcommand runs in milliseconds.
func testCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Procs = 16
	cfg.Jobs = 60
	return cfg
}

func TestRunSubcommands(t *testing.T) {
	old := replicaCount
	replicaCount = 2
	defer func() { replicaCount = old }()
	for _, what := range []string{
		"fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b",
		"exta", "extq", "extr", "extb", "point", "replicate", "gantt",
	} {
		if err := run(testCfg(), what); err != nil {
			t.Errorf("%s: %v", what, err)
		}
	}
}

func TestRunSubcommandsWithPlotAndCSV(t *testing.T) {
	plotFigures = true
	defer func() { plotFigures = false }()
	if err := run(testCfg(), "fig5d"); err != nil {
		t.Errorf("plot: %v", err)
	}
	plotFigures = false
	csvFigures = true
	defer func() { csvFigures = false }()
	if err := run(testCfg(), "fig5a"); err != nil {
		t.Errorf("csv fig: %v", err)
	}
	if err := run(testCfg(), "fig6a"); err != nil {
		t.Errorf("csv grid: %v", err)
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run(testCfg(), "bogus"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := testCfg()
	cfg.Job.Alpha = 0.3 // 16*0.3 not integral
	if err := run(cfg, "fig5a"); err == nil {
		t.Fatal("invalid config accepted")
	}
}
