package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"milan/internal/campaign"
	"milan/internal/obs/slo"
)

// A fixed seed must reproduce the identical event sequence: every printed
// line — digests, decision counts, verdicts — byte for byte.
func TestFixedSeedReproducesOutput(t *testing.T) {
	args := []string{"-seed", "42", "-jobs", "120"}
	var a, b bytes.Buffer
	if code := run(args, &a, os.Stderr); code != 0 {
		t.Fatalf("first run exited %d:\n%s", code, a.String())
	}
	if code := run(args, &b, os.Stderr); code != 0 {
		t.Fatalf("second run exited %d:\n%s", code, b.String())
	}
	if a.String() != b.String() {
		t.Fatalf("same seed produced different output:\n--- first\n%s--- second\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "campaign seed=42") {
		t.Fatalf("seed not printed:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "ok: no invariant breaches") {
		t.Fatalf("benign matrix not breach-free:\n%s", a.String())
	}
}

// An injected over-admission must fail the run, persist a replayable
// artifact, and that artifact alone must localize the fault to the
// planner.
func TestInjectedFaultYieldsReplayableArtifact(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	code := run([]string{
		"-seed", "7", "-jobs", "60",
		"-scenario", "arrival-storm",
		"-inject", "over-admission",
		"-artifacts", dir,
	}, &out, os.Stderr)
	if code != 1 {
		t.Fatalf("injected fault exited %d, want 1:\n%s", code, out.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no artifacts written (err=%v):\n%s", err, out.String())
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := campaign.DecodeArtifact(f)
	if err != nil {
		t.Fatalf("artifact %s does not decode: %v", files[0], err)
	}
	if a.Seed == 0 || a.Scenario != "arrival-storm" {
		t.Fatalf("artifact lost its replay identity: %+v", a)
	}
	if v := campaign.ReplayArtifact(a); v.Fault != string(slo.FaultPlanner) {
		t.Fatalf("artifact replays to fault %q, want %q (reason %q)", v.Fault, slo.FaultPlanner, v.Reason)
	}
}

func TestListAndBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out, os.Stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, sc := range campaign.Matrix() {
		if !strings.Contains(out.String(), sc.Name) {
			t.Errorf("-list missing scenario %s:\n%s", sc.Name, out.String())
		}
	}
	var discard bytes.Buffer
	if code := run([]string{"-inject", "nope"}, &discard, &discard); code != 2 {
		t.Fatalf("bad -inject exited %d, want 2", code)
	}
	if code := run([]string{"-scenario", "no-such"}, &discard, &discard); code != 2 {
		t.Fatalf("bad -scenario exited %d, want 2", code)
	}
}
