// Command campaignrunner drives randomized adversarial campaigns against
// the admission planes and prints a re-runnable verdict for every cell of
// the scenario matrix.
//
// Every invocation prints its master seed first; re-running with
// `-seed <S>` reproduces the identical event sequence, decision digests
// and breach verdicts.  A typical CI smoke:
//
//	campaignrunner -duration 30s -jobs 150
//	campaignrunner -seed 42 -rounds 2 -artifacts /tmp/breaches
//
// The run exits 1 when any invariant breach occurred; each breach's
// replayable artifact (JSONL: campaign header plus the flight-recorder
// snapshot) is written under -artifacts, and `-inject` deliberately
// breaks one subsystem to prove the pipeline localizes the fault:
//
//	campaignrunner -seed 7 -inject over-admission -artifacts /tmp/a
//
// yields artifacts whose replay convicts the planner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"milan/internal/campaign"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaignrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", 0, "master seed (0 = derive from the clock; the chosen seed is always printed)")
		rounds    = fs.Int("rounds", 1, "campaign rounds to run (each round reseeds deterministically from the master seed)")
		duration  = fs.Duration("duration", 0, "wall-clock budget; stops starting new rounds once exceeded (0 = no budget)")
		jobs      = fs.Int("jobs", 300, "arrivals per scenario run")
		procs     = fs.Int("procs", 32, "plane capacity in processors")
		shards    = fs.Int("shards", 4, "sharded-plane partition count")
		scenario  = fs.String("scenario", "", "run only this scenario (default: the full matrix)")
		inject    = fs.String("inject", "", "deliberate fault: over-admission | completion-delay | shedder-bypass | dropped-fsync")
		artifacts = fs.String("artifacts", "", "directory for breach artifacts (JSONL, one file per breach)")
		list      = fs.Bool("list", false, "list the scenario matrix and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, sc := range campaign.Matrix() {
			planes := ""
			for i, p := range sc.Planes {
				if i > 0 {
					planes += ","
				}
				planes += string(p)
			}
			fmt.Fprintf(stdout, "%-20s [%s] %s\n", sc.Name, planes, sc.Doc)
		}
		return 0
	}

	var inj campaign.Inject
	switch *inject {
	case "":
	case "over-admission":
		inj.OverAdmission = true
	case "completion-delay":
		inj.CompletionDelay = 500
	case "shedder-bypass":
		inj.ShedderBypass = true
	case "dropped-fsync":
		inj.DroppedFsync = true
	default:
		fmt.Fprintf(stderr, "campaignrunner: unknown -inject %q\n", *inject)
		return 2
	}

	master := *seed
	if master == 0 {
		master = time.Now().UnixNano()
	}
	fmt.Fprintf(stdout, "campaign seed=%d\n", master)

	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintf(stderr, "campaignrunner: %v\n", err)
			return 2
		}
	}

	var filter []string
	if *scenario != "" {
		filter = []string{*scenario}
	}

	start := time.Now()
	breaches := 0
	for round := 1; round <= *rounds; round++ {
		if *duration > 0 && round > 1 && time.Since(start) >= *duration {
			fmt.Fprintf(stdout, "budget exhausted after %d rounds\n", round-1)
			break
		}
		rep, err := campaign.Run(campaign.Config{
			Procs:     *procs,
			Shards:    *shards,
			Jobs:      *jobs,
			Seed:      master + int64(round-1),
			Scenarios: filter,
			Inject:    inj,
		})
		if err != nil {
			fmt.Fprintf(stderr, "campaignrunner: %v\n", err)
			return 2
		}
		for _, rr := range rep.Runs {
			fmt.Fprintf(stdout, "round %d %-20s %-8s seed=%d jobs=%d admitted=%d rejected=%d shed=%d digest=%016x breaches=%d\n",
				round, rr.Scenario, rr.Plane, rr.Seed, rr.Jobs, rr.Admitted, rr.Rejected, rr.Shed, rr.Digest, len(rr.Breaches))
			for _, b := range rr.Breaches {
				fmt.Fprintf(stdout, "  BREACH %s\n", b)
				if b.Artifact != nil && *artifacts != "" {
					name := fmt.Sprintf("%03d-%s-%s-%s.jsonl", breaches, b.Scenario, b.Plane, b.Invariant)
					path := filepath.Join(*artifacts, name)
					if err := writeArtifact(path, b); err != nil {
						fmt.Fprintf(stderr, "campaignrunner: %v\n", err)
						return 2
					}
					fmt.Fprintf(stdout, "  artifact %s (replay: campaignrunner -seed %d -scenario %s)\n",
						path, master, b.Scenario)
				}
				breaches++
			}
		}
	}
	if breaches > 0 {
		fmt.Fprintf(stdout, "FAIL: %d invariant breach(es); re-run with -seed %d to reproduce\n", breaches, master)
		return 1
	}
	fmt.Fprintf(stdout, "ok: no invariant breaches\n")
	return 0
}

func writeArtifact(path string, b campaign.Breach) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Artifact.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
