package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLintTestdataPrograms(t *testing.T) {
	for _, name := range []string{"junction.tune", "pipeline.tune", "continuous.tune"} {
		path := filepath.Join("..", "..", "testdata", name)
		if err := lint(path, 256); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLintDOT(t *testing.T) {
	emitDOT = true
	defer func() { emitDOT = false }()
	if err := lint(filepath.Join("..", "..", "testdata", "pipeline.tune"), 256); err != nil {
		t.Fatal(err)
	}
}

func TestLintErrors(t *testing.T) {
	if err := lint("does-not-exist.tune", 256); err == nil {
		t.Error("missing file linted")
	}
	bad := filepath.Join(t.TempDir(), "bad.tune")
	if err := os.WriteFile(bad, []byte("task oops {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := lint(bad, 256); err == nil {
		t.Error("syntax error not reported")
	}
	// Path-limit error surfaces.
	wide := filepath.Join(t.TempDir(), "wide.tune")
	src := `task_control_parameters { g; }
task s deadline 5 params (g) { config range (g = 1 .. 100 step 1) require 1 procs 1 time; }`
	if err := os.WriteFile(wide, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := lint(wide, 10); err == nil {
		t.Error("path-limit overflow not reported")
	}
}
