// Command tunelint parses and checks tunability-language programs (the
// paper's Section-4 Calypso extensions), printing the task graph and the
// enumerated execution paths with their resource requirements and
// qualities — the same analysis the Calypso preprocessor performs to
// generate an application's QoS agent.
//
// Usage:
//
//	tunelint [-paths N] file.tune...
//	tunelint -            # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"milan/internal/tunelang"
)

func main() {
	maxPaths := flag.Int("paths", 256, "maximum execution paths to enumerate")
	dot := flag.Bool("dot", false, "emit the task graph in Graphviz DOT form instead of the listing")
	flag.Parse()
	emitDOT = *dot
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tunelint [-paths N] file.tune... (or - for stdin)")
		os.Exit(2)
	}
	exit := 0
	for _, name := range flag.Args() {
		if err := lint(name, *maxPaths); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// emitDOT switches output to Graphviz DOT.
var emitDOT bool

func lint(name string, maxPaths int) error {
	var src []byte
	var err error
	if name == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		return err
	}
	graph, err := tunelang.Parse(name, string(src))
	if err != nil {
		return err
	}
	if emitDOT {
		return graph.WriteDOT(os.Stdout)
	}
	fmt.Print(graph)
	chains, envs, err := graph.Enumerate(maxPaths)
	if err == nil {
		fmt.Printf("%d execution path(s):\n", len(chains))
		for i, c := range chains {
			total := 0.0
			for _, t := range c.Tasks {
				total += t.Area()
			}
			fmt.Printf("  path %d: quality %.3f, total %g proc-time, params %v\n",
				i, c.Quality, total, envs[i])
			for _, t := range c.Tasks {
				fmt.Printf("    %-20s %2d procs x %-8g deadline %g\n", t.Name, t.Procs, t.Duration, t.Deadline)
			}
		}
		return nil
	}
	// Programs with task_par enumerate as DAGs instead of chains.
	dags, denvs, derr := graph.EnumerateDAGs(maxPaths)
	if derr != nil {
		return err // report the original chain-enumeration error
	}
	fmt.Printf("%d execution DAG(s):\n", len(dags))
	for i, d := range dags {
		fmt.Printf("  path %d: quality %.3f, total %g proc-time, params %v\n",
			i, d.Quality, d.Area(), denvs[i])
		for ti, t := range d.Tasks {
			fmt.Printf("    [%d] %-20s %2d procs x %-8g deadline %g preds %v\n",
				ti, t.Name, t.Procs, t.Duration, t.Deadline, t.Preds)
		}
	}
	return nil
}
