// Command milanmon is the cluster-level observability aggregator: it
// subscribes to N junctiond telemetry exporters, accumulates each
// node's registry via snapshot-then-delta resync, stitches cross-process
// span trees, re-runs burn-rate alerting over the merged SLO view, and
// serves the cluster view over HTTP (/metrics with a node-labeled
// Prometheus exposition, /trace, /slo, /nodes, /state).
//
// With -drive it also exercises the cluster: it negotiates jobs against
// the listed qosnet admission endpoints with client-minted root spans,
// so the stitched trees span the client (milanmon) and server
// (junctiond) processes.  -smoke turns the run into a checked 2-node
// smoke test: it asserts node liveness, merged-counter consistency, and
// a cross-process arrival→route→plan→reserve→run span tree, writes the
// full cluster state to -state, and exits non-zero on failure.
//
// Usage:
//
//	milanmon -nodes HOST:PORT,HOST:PORT [-listen HOST:PORT]
//	         [-drive HOST:PORT,...] [-jobs N] [-procs P]
//	         [-smoke] [-timeout D] [-state FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/obs/telemetry"
	"milan/internal/qos/qosnet"
)

const monNode = "milanmon"

func main() {
	nodesFlag := flag.String("nodes", "", "comma-separated telemetry exporter addresses to subscribe to (required)")
	listen := flag.String("listen", "127.0.0.1:0", "HTTP address for the cluster view (empty disables)")
	drive := flag.String("drive", "", "comma-separated qosnet admission addresses to negotiate demo jobs against")
	jobs := flag.Int("jobs", 8, "jobs to negotiate per -drive endpoint")
	procs := flag.Int("procs", 1, "processors per driven job")
	smoke := flag.Bool("smoke", false, "assert the cluster view and exit (2-node telemetry smoke)")
	expectRegression := flag.String("expect-regression", "", "smoke: additionally require an alerting latency-regression:<phase> objective and a stitched slow-trace exemplar")
	timeout := flag.Duration("timeout", 30*time.Second, "smoke-assertion deadline")
	stateFile := flag.String("state", "", "write the final cluster state (JSON) to this file")
	flag.Parse()

	if *nodesFlag == "" {
		log.Fatal("milanmon: -nodes is required")
	}
	nodes := splitList(*nodesFlag)

	agg := telemetry.NewAggregator(telemetry.AggregatorConfig{Nodes: nodes})
	agg.Start()
	defer agg.Close()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("milanmon: listen %s: %v", *listen, err)
		}
		srv := &http.Server{Handler: agg.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("cluster view: http://%s (/metrics /trace /slo /nodes /latency /state)\n", ln.Addr())
	}

	if *drive != "" {
		if err := driveJobs(agg, splitList(*drive), *jobs, *procs); err != nil {
			fatal(agg, *stateFile, fmt.Errorf("drive: %w", err))
		}
	}

	if *smoke {
		if err := runSmoke(agg, len(nodes), *drive != "", *expectRegression, *timeout); err != nil {
			fatal(agg, *stateFile, fmt.Errorf("smoke: %w", err))
		}
		writeState(agg, *stateFile)
		fmt.Println("smoke: OK")
		return
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	writeState(agg, *stateFile)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(agg *telemetry.Aggregator, stateFile string, err error) {
	writeState(agg, stateFile)
	log.Fatalf("milanmon: %v", err)
}

// writeState dumps the full cluster view (the CI failure artifact).
func writeState(agg *telemetry.Aggregator, path string) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(agg.State(), "", "  ")
	if err != nil {
		log.Printf("milanmon: marshal state: %v", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Printf("milanmon: write state: %v", err)
	}
}

// driveJobs negotiates jobs against each admission endpoint with
// client-minted traces: milanmon seeds its own span-ID range, opens the
// arrival root span before the qosnet call, and records a run span over
// the granted reservation — the client half of the cross-process trees.
func driveJobs(agg *telemetry.Aggregator, addrs []string, jobs, procs int) error {
	tracer := obs.NewTracer(4 * jobs * len(addrs))
	tracer.SeedIDs(telemetry.NodeIDBase(monNode))
	id := 0
	for _, addr := range addrs {
		cli, err := qosnet.Dial(addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		for i := 0; i < jobs; i++ {
			id++
			job := core.Job{ID: id, Chains: []core.Chain{{
				Name: "milanmon-drive", Quality: 1, Tasks: []core.Task{
					{Name: "work", Procs: procs, Duration: 1, Deadline: 1e9},
				},
			}}}
			root := tracer.Start(tracer.NewTrace(), 0, "client.submit", obs.StageArrival, job.ID)
			job.Trace, job.Span = uint64(root.Trace()), uint64(root.ID())
			g, err := cli.Negotiate(job)
			if err == nil {
				run := tracer.StartAt(obs.TraceID(job.Trace), root.ID(), "job.run", obs.StageRun, job.ID, g.Placement.Start())
				run.SetAttr("shard", float64(g.Shard))
				run.EndAt(g.Placement.Finish())
			} else {
				root.SetErr(err.Error())
			}
			root.End()
		}
		cli.Close()
	}
	agg.InjectSpans(monNode, tracer.Spans())
	return nil
}

// runSmoke polls until the cluster view converges, then asserts it.
func runSmoke(agg *telemetry.Aggregator, wantNodes int, driven bool, expectRegression string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if lastErr = checkCluster(agg, wantNodes, driven); lastErr == nil {
			if expectRegression == "" {
				return nil
			}
			if lastErr = checkRegression(agg, expectRegression); lastErr == nil {
				return nil
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return lastErr
}

// checkRegression asserts the latency-anatomy path end to end: the
// merged SLO state carries an ALERTING latency-regression objective for
// the named phase (the sentinel tripped on a node and survived the wire
// merge), the merged exemplar ring holds the slow requests, the slowest
// exemplar's waterfall blames the same phase, and its trace stitches to
// a cross-process span tree in the cluster view.
func checkRegression(agg *telemetry.Aggregator, phase string) error {
	objective := "latency-regression:" + phase
	alerting := false
	for _, b := range agg.MergedSLO().Burns() {
		if b.Objective == objective && b.Alerting {
			alerting = true
			break
		}
	}
	if !alerting {
		return fmt.Errorf("merged SLO view has no alerting %q objective", objective)
	}
	view := agg.LatencyView(8)
	if len(view.Exemplars) == 0 {
		return fmt.Errorf("no tail exemplars in the merged latency view")
	}
	slowest := view.Exemplars[0]
	names := latency.PhaseNames()
	worst := 0
	for i, d := range slowest.Durs {
		if d > slowest.Durs[worst] {
			worst = i
		}
	}
	if phase != "e2e" && names[worst] != phase {
		return fmt.Errorf("slowest exemplar blames phase %s, expected %s", names[worst], phase)
	}
	if slowest.Trace == 0 {
		return fmt.Errorf("slowest exemplar carries no trace ID")
	}
	if _, ok := view.Traces[fmt.Sprintf("%d", slowest.Trace)]; !ok {
		return fmt.Errorf("no stitched span tree for slow trace %d", slowest.Trace)
	}
	return nil
}

func checkCluster(agg *telemetry.Aggregator, wantNodes int, driven bool) error {
	// 1. Liveness: every node connected and past its initial snapshot.
	statuses := agg.Nodes()
	connected := 0
	for _, st := range statuses {
		if st.Connected && st.Frames > 0 {
			connected++
		}
	}
	if connected != wantNodes {
		return fmt.Errorf("%d/%d nodes connected", connected, wantNodes)
	}

	// 2. Merged registry equals the per-node sum, bit-for-bit on
	// counters (recomputed here independently of MergedRegistry).
	merged, err := agg.MergedRegistry()
	if err != nil {
		return err
	}
	perNode, _ := agg.NodeSnapshots()
	if len(perNode) != wantNodes {
		return fmt.Errorf("%d/%d node snapshots accumulated", len(perNode), wantNodes)
	}
	sums := make(map[string]int64)
	for _, snap := range perNode {
		for name, v := range snap.Counters {
			sums[name] += v
		}
	}
	if len(sums) != len(merged.Counters) {
		return fmt.Errorf("merged registry has %d counters, per-node sum has %d", len(merged.Counters), len(sums))
	}
	for name, want := range sums {
		if got := merged.Counters[name]; got != want {
			return fmt.Errorf("merged counter %s = %d, per-node sum = %d", name, got, want)
		}
	}

	if !driven {
		return nil
	}

	// 3. The driven load is visible in the merged SLO view.
	if st := agg.MergedSLO(); st.Admitted+st.Rejected == 0 {
		return fmt.Errorf("merged SLO view saw no decisions")
	}

	// 4. A cross-process span tree stitches the client's arrival span to
	// the server's route→plan→reserve pipeline and the client's run
	// span: spans from at least two distinct ID ranges (= processes,
	// per SeedIDs) under one root.
	monBase := telemetry.NodeIDBase(monNode) >> 32
	for _, tree := range agg.SpanTrees() {
		if tree.FindStage(obs.StageArrival) == nil ||
			tree.FindStage(obs.StageRoute) == nil ||
			tree.FindStage(obs.StagePlan) == nil ||
			tree.FindStage(obs.StageReserve) == nil ||
			tree.FindStage(obs.StageRun) == nil {
			continue
		}
		origins := make(map[uint64]bool)
		tree.Walk(func(n *obs.SpanNode) {
			if n.ID != 0 {
				origins[uint64(n.ID)>>32] = true
			}
		})
		if len(origins) >= 2 && origins[monBase] {
			return nil
		}
	}
	return fmt.Errorf("no stitched cross-process span tree with arrival/route/plan/reserve/run from >=2 processes")
}
