package main

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"milan/internal/calypso"
	"milan/internal/junction"
	"milan/internal/obs"
	"milan/internal/qos/qosnet"
	"milan/internal/workload"
)

// TestStartDebugServesInstrumentedRun runs one junction-detection config
// with Calypso hooks attached and checks the debug endpoint reports it.
func TestStartDebugServesInstrumentedRun(t *testing.T) {
	o := obs.New(obs.Config{})
	addr, srv, err := startDebug(o, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rt, err := calypso.New(calypso.Config{Workers: 2, Hooks: o.CalypsoHooks()})
	if err != nil {
		t.Fatal(err)
	}
	im, truth := junction.Synthesize(junction.SynthSpec{W: 64, H: 64, Rectangles: 2, Noise: 0.02, Seed: 1})
	if _, err := junction.RunScored(rt, im, junction.CoarseParams(), truth, 4); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters[obs.MetricCalypsoSteps] == 0 {
		t.Fatalf("no calypso steps recorded: %v", snap.Counters)
	}
	if snap.Counters[obs.MetricCalypsoExecs] == 0 {
		t.Fatalf("no calypso executions recorded: %v", snap.Counters)
	}

	resp2, err := http.Get("http://" + addr.String() + "/trace?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var evs []obs.Event
	if err := json.NewDecoder(resp2.Body).Decode(&evs); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(evs) == 0 || len(evs) > 5 {
		t.Fatalf("/trace?n=5 returned %d events", len(evs))
	}
}

func TestStartDebugBadAddr(t *testing.T) {
	if _, _, err := startDebug(obs.New(obs.Config{}), "127.0.0.1:999999"); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestServeAdmissionRecoversGrants: the -wal-dir admission service must
// recover a committed grant across a restart, over the wire protocol.
func TestServeAdmissionRecoversGrants(t *testing.T) {
	dir := t.TempDir() + "/wal"
	o := obs.New(obs.Config{})
	cfg := admitConfig{dir: dir, addr: "127.0.0.1:0", sync: "always",
		snapshotEvery: 64, procs: 8, shards: 1}
	srv, plane, _, err := serveAdmission(o, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := qosnet.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	job := workload.FigureJob{X: 4, T: 25, Alpha: 0.25, Laxity: 0.5}.Job(1, 0, workload.Tunable)
	if err := c.Observe(0); err != nil {
		t.Fatal(err)
	}
	g, err := c.Negotiate(job)
	if err != nil {
		t.Fatalf("negotiate over the wire: %v", err)
	}
	c.Close()
	srv.Close()
	if err := plane.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, plane2, _, err := serveAdmission(nil, nil, cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Close()
	defer plane2.Close()
	grants := plane2.Grants()
	if len(grants) != 1 || grants[0].JobID != g.JobID {
		t.Fatalf("restart recovered grants %+v, want job %d", grants, g.JobID)
	}

	// The durability instruments landed in the observer's /metrics registry.
	snap := o.Reg.Snapshot()
	if snap.Counters["durable_appends"] == 0 {
		t.Fatalf("durable instruments missing from the registry: %v", snap.Counters)
	}
}

func TestServeAdmissionBadPolicy(t *testing.T) {
	if _, _, _, err := serveAdmission(nil, nil, admitConfig{dir: t.TempDir(), addr: "127.0.0.1:0",
		sync: "sometimes", snapshotEvery: 64, procs: 4, shards: 1}); err == nil {
		t.Fatal("bad sync policy accepted")
	}
}
