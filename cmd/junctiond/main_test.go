package main

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"milan/internal/calypso"
	"milan/internal/junction"
	"milan/internal/obs"
)

// TestStartDebugServesInstrumentedRun runs one junction-detection config
// with Calypso hooks attached and checks the debug endpoint reports it.
func TestStartDebugServesInstrumentedRun(t *testing.T) {
	o := obs.New(obs.Config{})
	addr, srv, err := startDebug(o, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rt, err := calypso.New(calypso.Config{Workers: 2, Hooks: o.CalypsoHooks()})
	if err != nil {
		t.Fatal(err)
	}
	im, truth := junction.Synthesize(junction.SynthSpec{W: 64, H: 64, Rectangles: 2, Noise: 0.02, Seed: 1})
	if _, err := junction.RunScored(rt, im, junction.CoarseParams(), truth, 4); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters[obs.MetricCalypsoSteps] == 0 {
		t.Fatalf("no calypso steps recorded: %v", snap.Counters)
	}
	if snap.Counters[obs.MetricCalypsoExecs] == 0 {
		t.Fatalf("no calypso executions recorded: %v", snap.Counters)
	}

	resp2, err := http.Get("http://" + addr.String() + "/trace?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var evs []obs.Event
	if err := json.NewDecoder(resp2.Body).Decode(&evs); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(evs) == 0 || len(evs) > 5 {
		t.Fatalf("/trace?n=5 returned %d events", len(evs))
	}
}

func TestStartDebugBadAddr(t *testing.T) {
	if _, _, err := startDebug(obs.New(obs.Config{}), "127.0.0.1:999999"); err == nil {
		t.Fatal("bad address accepted")
	}
}
