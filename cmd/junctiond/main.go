// Command junctiond demonstrates the tunable junction-detection
// application (Sections 3.2/4.3 of the paper) and reproduces the content of
// the paper's Figure 2: two configurations with different sampling
// granularities and search distances trading step-1 resources against
// step-3 resources at comparable output quality.
//
// With -wal-dir the process additionally serves a durable admission
// plane: committed grants are journaled to an append-only WAL in that
// directory, and a restart recovers every acknowledged reservation
// before accepting new negotiations.
//
// Usage:
//
//	junctiond [-size N] [-rects K] [-workers W] [-seed S] [-faults]
//	          [-debug-addr HOST:PORT] [-pprof]
//	          [-wal-dir DIR] [-admit-addr HOST:PORT] [-wal-sync POLICY]
//	          [-snapshot-every N] [-admit-procs P] [-admit-shards S]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"text/tabwriter"
	"time"

	"milan/internal/calypso"
	"milan/internal/core"
	"milan/internal/durable"
	"milan/internal/durable/vfs"
	"milan/internal/junction"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/obs/latency/runtimewatch"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
	"milan/internal/obs/telemetry"
	"milan/internal/qos"
	"milan/internal/qos/qosnet"
)

// lastRuntime holds the most recently constructed Calypso runtime so the
// /healthz "calypso" readiness check can inspect its worker health.
var lastRuntime atomic.Pointer[calypso.Runtime]

func main() {
	size := flag.Int("size", 256, "image width and height")
	rects := flag.Int("rects", 6, "planted rectangles (junction sources)")
	workers := flag.Int("workers", 4, "Calypso workers (processors)")
	seed := flag.Int64("seed", 1, "scene seed")
	faults := flag.Bool("faults", false, "inject worker faults to exercise eager scheduling")
	radius := flag.Float64("radius", 4, "match radius for quality scoring")
	video := flag.Int("video", 0, "process a synthetic video of N frames instead of a single image")
	debugAddr := flag.String("debug-addr", "", "serve the observability debug endpoint (/metrics, /trace, /gantt) on this address")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof on the debug endpoint (requires -debug-addr)")
	walDir := flag.String("wal-dir", "", "serve a durable admission plane journaled to this directory")
	admitAddr := flag.String("admit-addr", "127.0.0.1:0", "listen address for the durable admission service (requires -wal-dir)")
	walSync := flag.String("wal-sync", "always", "WAL sync policy: always | every-n | never (requires -wal-dir)")
	snapshotEvery := flag.Int("snapshot-every", 1024, "WAL records between snapshot compactions (requires -wal-dir)")
	admitProcs := flag.Int("admit-procs", 0, "admission-plane processors (0 = -workers)")
	admitShards := flag.Int("admit-shards", 1, "admission-plane shards")
	telemetryAddr := flag.String("telemetry-addr", "", "serve the streaming telemetry exporter on this address")
	telemetryInterval := flag.Duration("telemetry-interval", time.Second, "telemetry delta cadence (requires -telemetry-addr)")
	nodeName := flag.String("node", "", "node identity on telemetry sessions and span IDs (default junction-<pid>)")
	traceSample := flag.Float64("trace-sample", 0, "head-based trace sampling target in traces/sec (0 = trace everything)")
	latEnvelope := flag.String("latency-envelope", "", "arm the latency-regression sentinel from this BENCH_trajectory.jsonl baseline (requires -wal-dir)")
	latMatch := flag.String("latency-envelope-match", "ShardedAdmit/shards=8", "trajectory benchmark name substring the envelope derives from")
	latSlack := flag.Float64("latency-envelope-slack", 3, "envelope slack multiplier over the baseline ns/op")
	runtimeWatch := flag.Bool("runtime-watch", false, "poll Go runtime health (GC pauses, sched latency, heap, mutex/block profiles) into the registry")
	injectSlowdown := flag.String("inject-slowdown", "", "TEST HOOK: inflate every admission's given phase, e.g. probe:50ms (drives the regression-sentinel CI smoke)")
	serveFlag := flag.Bool("serve", false, "keep serving after the demo run until SIGINT/SIGTERM (multi-process clusters)")
	flag.Parse()

	if *pprofFlag && *debugAddr == "" {
		log.Fatal("junctiond: -pprof requires -debug-addr (profiles are served on the debug endpoint)")
	}
	node := *nodeName
	if node == "" {
		node = fmt.Sprintf("junction-%d", os.Getpid())
	}
	var observer *obs.Observer
	var ld *ledger.Ledger
	if *debugAddr != "" || *telemetryAddr != "" {
		observer = obs.New(obs.Config{EnablePprof: *pprofFlag, Tracing: true})
		// Utilization ledger over the pipeline's work units: each
		// configuration bills to its own tenant, each pipeline step to its
		// own class, so /ledger shows the Figure-2 trade (step-1 vs step-3
		// allocation) as per-tenant reserved area.
		ld = ledger.New(ledger.Config{Capacity: *workers})
		ld.BindMetrics(observer.Reg)
		ld.Mount(observer)
		// Readiness: the debug endpoint reports 503 until a runtime exists
		// and while every worker of the latest runtime has crashed.
		observer.AddHealthCheck("calypso", func() error {
			rt := lastRuntime.Load()
			if rt == nil {
				return fmt.Errorf("no runtime constructed yet")
			}
			if m := rt.Metrics(); *workers > 0 && m.Crashes >= *workers {
				return fmt.Errorf("all %d workers crashed", *workers)
			}
			return nil
		})
		// Cluster-unique span identity: seed the high ID bits from the
		// node name so traces from different junctiond processes merge
		// without collisions in a telemetry aggregator.
		observer.Tracer().SeedIDs(telemetry.NodeIDBase(node))
		if *traceSample > 0 {
			observer.Tracer().SetSampling(*traceSample, observer.Reg)
		}
		if *debugAddr != "" {
			addr, srv, err := startDebug(observer, *debugAddr)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			fmt.Printf("debug endpoint: http://%s (/metrics /trace /gantt /healthz)\n\n", addr)
		}
	}

	if *telemetryAddr != "" && *walDir == "" {
		log.Fatal("junctiond: -telemetry-addr requires -wal-dir (the exporter streams the admission plane's state)")
	}
	if *runtimeWatch {
		if observer == nil {
			log.Fatal("junctiond: -runtime-watch requires -debug-addr or -telemetry-addr (it publishes into the registry)")
		}
		rw := runtimewatch.New(observer.Reg)
		rw.Start(0)
		defer rw.Stop()
	}
	if *walDir != "" {
		var lp *latency.Plane
		if observer != nil {
			lp = latency.New(latency.Config{Registry: observer.Reg})
			if *latEnvelope != "" {
				env, err := latency.EnvelopeFromTrajectory(*latEnvelope, *latMatch, *latSlack)
				if err != nil {
					log.Fatalf("junctiond: latency envelope: %v", err)
				}
				lp.SetEnvelope(env)
				fmt.Printf("latency envelope: e2e %dns per phase (baseline %s x%.3g slack)\n\n", env.E2E, *latMatch, *latSlack)
			}
			observer.Handle("/latency", lp.Handler(), "admission latency anatomy: phase quantiles, envelope, tail exemplars (JSON; ?format=prom)")
			if *injectSlowdown != "" {
				ph, d, err := parseSlowdown(*injectSlowdown)
				if err != nil {
					log.Fatalf("junctiond: -inject-slowdown: %v", err)
				}
				lp.InjectSlowdown(ph, d)
				fmt.Printf("WARNING: injecting %s slowdown into the %s phase of every admission (test hook)\n\n", d, ph)
			}
		}
		srv, plane, eng, err := serveAdmission(observer, lp, admitConfig{
			dir: *walDir, addr: *admitAddr, sync: *walSync,
			snapshotEvery: *snapshotEvery,
			procs:         pickProcs(*admitProcs, *workers),
			shards:        *admitShards,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer plane.Close()
		defer srv.Close()
		if eng != nil {
			// The regression sentinel (and every other burn objective)
			// needs a periodic clock: tick the engine once a second.
			start := time.Now()
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			done := make(chan struct{})
			defer close(done)
			go func() {
				for {
					select {
					case <-tick.C:
						eng.Tick(time.Since(start).Seconds())
					case <-done:
						return
					}
				}
			}()
		}
		if *telemetryAddr != "" {
			exp, err := serveTelemetry(observer, ld, plane, eng, lp, telemetryConfig{
				addr: *telemetryAddr, node: node, interval: *telemetryInterval,
			})
			if err != nil {
				log.Fatal(err)
			}
			defer exp.Close()
			fmt.Printf("telemetry exporter: %s (node %s, cadence %s)\n\n", exp.Addr(), node, *telemetryInterval)
		}
	}

	if *video > 0 {
		if err := runVideo(*video, *workers, *seed, *radius); err != nil {
			log.Fatal(err)
		}
		return
	}

	spec := junction.SynthSpec{W: *size, H: *size, Rectangles: *rects, Noise: 0.02, Seed: *seed}
	im, truth := junction.Synthesize(spec)
	fmt.Printf("scene: %dx%d, %d rectangles, %d ground-truth junctions\n\n",
		*size, *size, *rects, len(truth))

	configs := []struct {
		name   string
		params junction.Params
	}{
		{"fine", junction.FineParams()},
		{"coarse", junction.CoarseParams()},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tgranularity\tsearch-dist\tstep1-work\tstep2-work\tstep3-work\tregions\tdetected\tprecision\trecall\tF1")
	var ledgerClock float64
	for _, c := range configs {
		var plan *calypso.FaultPlan
		if *faults {
			plan = &calypso.FaultPlan{TransientProb: 0.15, CrashProb: 0.02, MaxCrashes: *workers - 1, Seed: *seed}
		}
		cfg := calypso.Config{Workers: *workers, Faults: plan}
		if observer != nil {
			cfg.Hooks = observer.CalypsoHooks()
		}
		rt, err := calypso.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		lastRuntime.Store(rt)
		res, err := junction.RunScored(rt, im, c.params, truth, *radius)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		q := res.Quality
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.3f\n",
			c.name, c.params.Granularity, c.params.SearchDistance,
			res.Costs[0].Work, res.Costs[1].Work, res.Costs[2].Work,
			len(res.Regions), len(res.Junctions), q.Precision, q.Recall, q.F1)
		ledgerClock = recordPipeline(ld, c.name, res, *workers, ledgerClock)
		if *faults {
			m := rt.Metrics()
			defer fmt.Printf("%s runtime under faults: %d executions / %d tasks, %d duplicates, %d transients, %d crashes\n",
				c.name, m.Executions, m.Tasks, m.Duplicates, m.Transients, m.Crashes)
		}
	}
	tw.Flush()
	fmt.Println("\nFigure 2 reading: the coarse configuration spends several times less in")
	fmt.Println("the sampling step and compensates with a much larger junction-computation")
	fmt.Println("allocation, at comparable output quality.")

	if *serveFlag {
		fmt.Println("\nserving (SIGINT/SIGTERM to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// recordPipeline accounts one configuration's pipeline run on the
// utilization ledger: each step is entered as a committed-and-realized
// rectangle of workers processors lasting work/workers time units, billed
// to tenant name at class = step index.  Returns the advanced clock.  A
// nil ledger records nothing.
func recordPipeline(ld *ledger.Ledger, name string, res *junction.Result, workers int, clock float64) float64 {
	if ld == nil || workers <= 0 {
		return clock
	}
	for step, c := range res.Costs {
		d := float64(c.Work) / float64(workers)
		if d <= 0 {
			continue
		}
		pl := &core.Placement{Tasks: []core.TaskPlacement{{
			Task: step, Start: clock, Finish: clock + d, Procs: workers,
		}}}
		k := ledger.Key{Tenant: name, Class: step}
		ld.RecordCommitKeyed(k, pl)
		ld.RecordCompletion(k, pl)
		clock += d
	}
	ld.Advance(clock)
	return clock
}

// runVideo processes a moving synthetic sequence with both configurations,
// printing per-frame quality — the paper's live-feed scenario.
func runVideo(frames, workers int, seed int64, radius float64) error {
	spec := junction.DefaultVideoSpec()
	spec.Frames = frames
	spec.Seed = seed
	imgs, truths, err := junction.SynthesizeVideo(spec)
	if err != nil {
		return err
	}
	fmt.Printf("video: %d frames of %dx%d, %d moving rectangles\n\n", frames, spec.W, spec.H, spec.Rectangles)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "frame	truth	fine-F1	fine-step3	coarse-F1	coarse-step3")
	var fineSum, coarseSum float64
	for f := range imgs {
		row := []string{fmt.Sprint(f), fmt.Sprint(len(truths[f]))}
		for i, p := range []junction.Params{junction.FineParams(), junction.CoarseParams()} {
			rt, err := calypso.New(calypso.Config{Workers: workers})
			if err != nil {
				return err
			}
			res, err := junction.RunScored(rt, imgs[f], p, truths[f], radius)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", res.Quality.F1), fmt.Sprint(res.Costs[2].Work))
			if i == 0 {
				fineSum += res.Quality.F1
			} else {
				coarseSum += res.Quality.F1
			}
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Printf("\nmean F1: fine %.3f, coarse %.3f\n", fineSum/float64(frames), coarseSum/float64(frames))
	return nil
}

// parseSlowdown parses the -inject-slowdown test hook value
// ("<phase>:<duration>", e.g. "probe:50ms").
func parseSlowdown(s string) (latency.Phase, time.Duration, error) {
	name, ds, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want <phase>:<duration>, got %q", s)
	}
	i := latency.ParsePhase(name)
	if i < 0 {
		return 0, 0, fmt.Errorf("unknown phase %q (phases: %v)", name, latency.PhaseNames())
	}
	d, err := time.ParseDuration(ds)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("bad duration %q", ds)
	}
	return latency.Phase(i), d, nil
}

type admitConfig struct {
	dir, addr, sync string
	snapshotEvery   int
	procs, shards   int
}

func pickProcs(admitProcs, workers int) int {
	if admitProcs > 0 {
		return admitProcs
	}
	if workers > 0 {
		return workers
	}
	return 1
}

// serveAdmission opens (recovering) the durable admission plane on the
// real filesystem and serves it over the qosnet wire protocol.  When an
// observer is attached, the durability instruments land in its registry
// (/metrics exposes append latency, fsync counts, snapshot sizes and
// recovery replay time), admission requests are traced end to end, and
// an SLO engine audits every decision via the server's decision hook.
func serveAdmission(observer *obs.Observer, lp *latency.Plane, cfg admitConfig) (*qosnet.Server, *durable.Plane, *slo.Engine, error) {
	pol, err := durable.ParseSyncPolicy(cfg.sync)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("junctiond: %w", err)
	}
	var fs vfs.OS
	if err := fs.MkdirAll(cfg.dir); err != nil {
		return nil, nil, nil, fmt.Errorf("junctiond: wal dir: %w", err)
	}
	var met *durable.Metrics
	var tracer *obs.Tracer
	if observer != nil {
		met = durable.NewMetrics(observer.Reg)
		tracer = observer.Tracer()
	}
	plane, rec, err := durable.OpenPlane(durable.Config{
		FS: fs, Dir: cfg.dir,
		Procs: cfg.procs, Shards: cfg.shards, ProbeK: 1,
		Store:   durable.StoreOptions{Sync: pol, SnapshotEvery: cfg.snapshotEvery},
		Metrics: met,
		Tracer:  tracer,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("junctiond: open admission plane: %w", err)
	}
	srv, err := qosnet.ListenAndServe(plane, cfg.addr)
	if err != nil {
		plane.Close()
		return nil, nil, nil, fmt.Errorf("junctiond: %w", err)
	}
	var eng *slo.Engine
	if observer != nil {
		srv.SetTracer(observer.Tracer())
		srv.SetLatency(lp)
		opts := slo.Options{Registry: observer.Reg}
		if lp != nil {
			// Arm the online regression sentinel: the engine diffs the
			// plane's per-phase envelope counters each Tick and cuts a
			// flight snapshot when a phase burns its budget.
			opts.RegressionSource = lp.RegressionCounts
			opts.Recorder = slo.NewRecorder(4096, 1024)
			opts.Recorder.Attach(observer.Tracer())
		}
		eng = slo.New(opts)
		eng.Mount(observer)
		start := time.Now()
		srv.SetDecisionHook(func(j core.Job, g *qos.Grant, err error, latency time.Duration) {
			now := time.Since(start).Seconds()
			if err != nil || g == nil {
				eng.JobRejected(j.ID, j.Trace, now, latency.Seconds())
				return
			}
			deadline := 0.0
			if g.Chain >= 0 && g.Chain < len(j.Chains) {
				if tasks := j.Chains[g.Chain].Tasks; len(tasks) > 0 {
					deadline = tasks[len(tasks)-1].Deadline
				}
			}
			eng.JobAdmitted(j.ID, j.Trace, now, latency.Seconds(), deadline, g.Placement.Finish())
		})
	}
	fmt.Printf("admission plane: %s (wal %s, sync=%s, recovered lsn=%d records=%d grants=%d replay=%s)\n\n",
		srv.Addr(), cfg.dir, pol, rec.State.LSN, rec.Records, len(plane.Grants()), rec.ReplayDuration)
	return srv, plane, eng, nil
}

type telemetryConfig struct {
	addr, node string
	interval   time.Duration
}

// serveTelemetry attaches a streaming telemetry exporter to the
// admission plane's observability surfaces: registry deltas, completed
// spans, SLO objective state, the plane's headroom frontier, and the
// utilization ledger.
func serveTelemetry(observer *obs.Observer, ld *ledger.Ledger, plane *durable.Plane, eng *slo.Engine, lp *latency.Plane, cfg telemetryConfig) (*telemetry.Exporter, error) {
	const horizon = 1e6 // effectively unbounded frontier window
	headroom := func() core.Headroom {
		if f := plane.Fed(); f != nil {
			return f.Headroom(horizon)
		}
		if m := plane.Mono(); m != nil {
			return m.Headroom(horizon)
		}
		return core.Headroom{}
	}
	var ledgerFn func() *ledger.Snapshot
	if ld != nil {
		ledgerFn = ld.Snapshot
	}
	exp := telemetry.NewExporter(telemetry.ExporterConfig{
		Node:     cfg.node,
		Interval: cfg.interval,
	}, telemetry.Sources{
		Registry: observer.Reg,
		Tracer:   observer.Tracer(),
		SLO:      eng,
		Ledger:   ledgerFn,
		Headroom: headroom,
		Latency:  lp,
	})
	if err := exp.ListenAndServe(cfg.addr); err != nil {
		return nil, err
	}
	return exp, nil
}

// startDebug serves the observer's debug handler on addr, returning the
// bound address and the server (close it to stop serving).
func startDebug(o *obs.Observer, addr string) (net.Addr, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler()}
	go srv.Serve(ln)
	return ln.Addr(), srv, nil
}
