package main

import (
	"bytes"
	"strings"
	"testing"
)

// A one-second soak must complete clean on a pinned seed.
func TestSoakShortBudget(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-budget", "1s", "-seed", "7", "-crash-every", "150"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "stresstest ok") {
		t.Fatalf("no ok line in %q", out.String())
	}
	if !strings.Contains(out.String(), "cycle 1 ok") {
		t.Fatalf("budget drained without a single crash cycle: %q", out.String())
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
