// Command stresstest soaks the durable admission plane: a continuous
// seed-deterministic admission storm with periodic crash/recover cycles,
// bounded by a wall-clock budget.  Unlike cmd/crashtest (which proves
// recovery exactness against a re-driven reference on short runs), the
// soak holds one log lineage open for the whole budget and checks the
// O(1) invariant at every cycle: under SyncAlways the state exported the
// instant before a crash must be bitwise-identical to the state recovered
// after it, and no acknowledged grant may vanish.
//
//	stresstest -budget 30s -seed 7 -crash-every 500
//
// exits 0 when the budget drains with every cycle clean, 1 on the first
// divergence.  The chosen seed is always printed so any failure replays.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"milan/internal/durable"
	"milan/internal/durable/vfs"
	"milan/internal/qos"
	"milan/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stresstest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		budget     = fs.Duration("budget", 30*time.Second, "wall-clock budget; the soak stops at the first cycle boundary past it")
		seed       = fs.Int64("seed", 0, "run seed (0 = derive from the clock; the chosen seed is always printed)")
		crashEvery = fs.Int("crash-every", 400, "ops per crash/recover cycle")
		shards     = fs.Int("shards", 2, "admission-plane shards")
		procs      = fs.Int("procs", 16, "admission-plane processors")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}
	fmt.Fprintf(stdout, "stresstest seed=%d budget=%s\n", s, *budget)

	cfg := durable.Config{
		FS: nil, Dir: "wal", Procs: *procs, Shards: *shards, ProbeK: 1,
		Store: durable.StoreOptions{Sync: durable.SyncAlways, SnapshotEvery: 128},
	}
	mem := vfs.NewMem()
	cfg.FS = mem
	plane, _, err := durable.OpenPlane(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "stresstest: open: %v\n", err)
		return 2
	}

	tmpl := workload.FigureJob{X: 4, T: 25, Alpha: 0.25, Laxity: 0.5}
	arr := workload.NewPoisson(6, s)
	now := 0.0
	id := 0
	var ops, admitted, crashes int64
	start := time.Now()

	for time.Since(start) < *budget {
		// One cycle: drive crashEvery ops, then crash and recover.
		acked := make(map[int]float64)
		for i := 0; i < *crashEvery; i++ {
			now += arr.Next()
			plane.Observe(now)
			job := tmpl.Job(id, now, workload.Tunable)
			id++
			ops += 2 // observe + decision records
			g, nerr := plane.Negotiate(job)
			switch {
			case nerr == nil:
				admitted++
				acked[job.ID] = g.Finish()
			case errors.Is(nerr, qos.ErrRejected):
			default:
				fmt.Fprintf(stderr, "stresstest: job %d: %v\n", job.ID, nerr)
				return 1
			}
		}

		want := plane.ExportState()
		mem.Crash()
		crashes++
		p2, rec, err := durable.OpenPlane(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "stresstest: recovery after crash %d: %v\n", crashes, err)
			return 1
		}
		got := p2.ExportState()
		if err := durable.DiffStates(&got, &want); err != nil {
			fmt.Fprintf(stderr, "stresstest: FAIL crash %d (seed %d): recovered state diverged: %v\n",
				crashes, s, err)
			return 1
		}
		have := make(map[int]bool)
		for _, gr := range p2.Grants() {
			have[gr.JobID] = true
		}
		for jid, fin := range acked {
			if fin > p2.Now() && !have[jid] {
				fmt.Fprintf(stderr, "stresstest: FAIL crash %d (seed %d): acked grant %d lost (lsn %d)\n",
					crashes, s, jid, rec.State.LSN)
				return 1
			}
		}
		plane = p2
		fmt.Fprintf(stdout, "cycle %d ok: ops=%d admitted=%d lsn=%d replay=%s\n",
			crashes, ops, admitted, rec.State.LSN, rec.ReplayDuration.Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "stresstest ok: seed=%d cycles=%d ops=%d admitted=%d in %s\n",
		s, crashes, ops, admitted, time.Since(start).Round(time.Millisecond))
	return 0
}
