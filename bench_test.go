// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// (5a-5d, 6a, 6b, and the Figure-2 junction-detection table), plus
// ablations of the scheduler's design choices and micro-benchmarks of the
// hot paths.  Figure benches run reduced sweeps per iteration and report
// the headline quantity (throughput gain, utilization gain) as custom
// metrics; `cmd/tunesim` runs the full 10,000-job sweeps.
package milan_test

import (
	"testing"

	"milan"
	"milan/internal/calypso"
	"milan/internal/core"
	"milan/internal/experiments"
	"milan/internal/junction"
	"milan/internal/obs"
	"milan/internal/workload"
)

// benchConfig is the reduced-size configuration used inside benchmark
// iterations (same regime as the paper: machine comparable to the wide
// task).
func benchConfig(jobs int) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Procs = 16
	cfg.Jobs = jobs
	return cfg
}

func BenchmarkFig5aArrivalSweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(1000)
	intervals := []float64{10, 30, 50, 70, 85}
	var gain int
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5a(cfg, intervals)
		if err != nil {
			b.Fatal(err)
		}
		gain = 0
		for _, pt := range fig.Points {
			if g := pt.ThroughputGain(); g > gain {
				gain = g
			}
		}
	}
	b.ReportMetric(float64(gain), "peak-thr-gain")
}

func BenchmarkFig5bLaxitySweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(1000)
	laxities := []float64{0.05, 0.3, 0.5, 0.7, 0.95}
	var gain int
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5b(cfg, laxities)
		if err != nil {
			b.Fatal(err)
		}
		gain = 0
		for _, pt := range fig.Points {
			if g := pt.ThroughputGain(); g > gain {
				gain = g
			}
		}
	}
	b.ReportMetric(float64(gain), "peak-thr-gain")
}

func BenchmarkFig5cMachineSweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(1000)
	procs := []float64{16, 24, 32, 48, 64}
	var gain float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5c(cfg, procs)
		if err != nil {
			b.Fatal(err)
		}
		gain = 0
		for _, pt := range fig.Points {
			if g := pt.UtilGain(); g > gain {
				gain = g
			}
		}
	}
	b.ReportMetric(gain, "peak-util-gain")
}

func BenchmarkFig5dAlphaSweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(1000)
	alphas := []float64{0.0625, 0.25, 0.5, 0.75, 1}
	var gain int
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5d(cfg, alphas)
		if err != nil {
			b.Fatal(err)
		}
		gain = 0
		for _, pt := range fig.Points {
			if g := pt.ThroughputGain(); g > gain {
				gain = g
			}
		}
	}
	b.ReportMetric(float64(gain), "peak-thr-gain")
}

func BenchmarkFig6aBenefitGridNonMalleable(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(600)
	intervals := []float64{20, 40, 60}
	laxities := []float64{0.2, 0.5, 0.8}
	var max int
	for i := 0; i < b.N; i++ {
		grid, err := experiments.Fig6(cfg, intervals, laxities, false)
		if err != nil {
			b.Fatal(err)
		}
		max = experiments.MaxBenefit(grid.VsShape1)
		if m := experiments.MaxBenefit(grid.VsShape2); m > max {
			max = m
		}
	}
	b.ReportMetric(float64(max), "peak-benefit")
}

func BenchmarkFig6bBenefitGridMalleable(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(600)
	intervals := []float64{20, 40, 60}
	laxities := []float64{0.2, 0.5, 0.8}
	var max int
	for i := 0; i < b.N; i++ {
		grid, err := experiments.Fig6(cfg, intervals, laxities, true)
		if err != nil {
			b.Fatal(err)
		}
		max = experiments.MaxBenefit(grid.VsShape1)
		if m := experiments.MaxBenefit(grid.VsShape2); m > max {
			max = m
		}
	}
	b.ReportMetric(float64(max), "peak-benefit")
}

func BenchmarkFig2JunctionConfigs(b *testing.B) {
	b.ReportAllocs()
	im, truth := junction.Synthesize(junction.DefaultSynthSpec())
	var f1 float64
	for i := 0; i < b.N; i++ {
		for _, p := range []junction.Params{junction.FineParams(), junction.CoarseParams()} {
			rt, err := calypso.New(calypso.Config{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			res, err := junction.RunScored(rt, im, p, truth, 4)
			if err != nil {
				b.Fatal(err)
			}
			f1 = res.Quality.F1
		}
	}
	b.ReportMetric(f1, "coarse-f1")
}

// Ablations: the design choices DESIGN.md calls out, each measured against
// the paper configuration on the same workload.

func runAblation(b *testing.B, opts *core.Options) int {
	b.ReportAllocs()
	cfg := benchConfig(1500)
	cfg.Opts = opts
	var admitted int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(cfg, workload.Tunable)
		if err != nil {
			b.Fatal(err)
		}
		admitted = r.Admitted
	}
	b.ReportMetric(float64(admitted), "admitted")
	return admitted
}

func BenchmarkAblationTieBreakPaper(b *testing.B) {
	runAblation(b, nil)
}

func BenchmarkAblationTieBreakFirstFit(b *testing.B) {
	runAblation(b, &core.Options{TieBreak: core.TieBreakFirstFit})
}

func BenchmarkAblationTieBreakMinArea(b *testing.B) {
	runAblation(b, &core.Options{TieBreak: core.TieBreakMinArea})
}

func BenchmarkAblationTieBreakUtilFirst(b *testing.B) {
	runAblation(b, &core.Options{TieBreak: core.TieBreakUtilFirst})
}

func BenchmarkAblationHoleEngine(b *testing.B) {
	runAblation(b, &core.Options{Engine: core.EngineHoles})
}

func BenchmarkAblationBacktrackPlacer(b *testing.B) {
	runAblation(b, &core.Options{ChainPlacer: core.PlaceBacktrack})
}

func BenchmarkAblationMalleableEarliestFinish(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(1500)
	cfg.Malleable = true
	cfg.Opts = &core.Options{Malleable: core.MalleableEarliestFinish}
	var admitted int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(cfg, workload.Tunable)
		if err != nil {
			b.Fatal(err)
		}
		admitted = r.Admitted
	}
	b.ReportMetric(float64(admitted), "admitted")
}

// Micro-benchmarks of the scheduler's hot paths.

func BenchmarkSchedulerAdmitTunable(b *testing.B) {
	b.ReportAllocs()
	spec := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	s := core.NewScheduler(16, 0, nil)
	release := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release += 30
		s.Observe(release)
		_, _ = s.Admit(spec.Job(i, release, workload.Tunable))
	}
}

// BenchmarkAdmitNilSink is the unobserved fast path: Options carry no
// hooks, so every hook site is one nil pointer comparison.  Compare with
// BenchmarkAdmitInstrumented to measure the observability layer's cost.
func BenchmarkAdmitNilSink(b *testing.B) {
	b.ReportAllocs()
	spec := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	s := core.NewScheduler(16, 0, &core.Options{})
	release := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release += 30
		s.Observe(release)
		_, _ = s.Admit(spec.Job(i, release, workload.Tunable))
	}
}

// BenchmarkAdmitInstrumented runs the same admission stream with a full
// observer attached (registry metrics + ring-buffer tracing).
func BenchmarkAdmitInstrumented(b *testing.B) {
	b.ReportAllocs()
	spec := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	o := obs.New(obs.Config{})
	s := core.NewScheduler(16, 0, o.InstrumentOptions(nil))
	release := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release += 30
		s.Observe(release)
		_, _ = s.Admit(spec.Job(i, release, workload.Tunable))
	}
}

func BenchmarkProfileEarliestFit(b *testing.B) {
	b.ReportAllocs()
	p := core.NewProfile(64, 0)
	for i := 0; i < 200; i++ {
		s, ok := p.EarliestFit(1+i%8, 5, float64(i), core.Inf)
		if !ok {
			b.Fatal("no fit")
		}
		if err := p.Reserve(1+i%8, s, s+5); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.EarliestFit(8, 12, 0, core.Inf); !ok {
			b.Fatal("no fit")
		}
	}
}

func BenchmarkMaximalHoles(b *testing.B) {
	b.ReportAllocs()
	p := core.NewProfile(64, 0)
	for i := 0; i < 200; i++ {
		s, ok := p.EarliestFit(1+i%8, 5, float64(i), core.Inf)
		if !ok {
			b.Fatal("no fit")
		}
		if err := p.Reserve(1+i%8, s, s+5); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if holes := p.MaximalHoles(0); len(holes) == 0 {
			b.Fatal("no holes")
		}
	}
}

func BenchmarkCalypsoStep(b *testing.B) {
	b.ReportAllocs()
	rt, err := calypso.New(calypso.Config{Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = i
	}
	rt.Store().Set("data", data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := rt.Parallel(8, func(ctx *calypso.TaskCtx, w, n int) error {
			d, _ := calypso.ReadAs[[]int](ctx, "data")
			sum := 0
			for k := n; k < len(d); k += w {
				sum += d[k]
			}
			ctx.Write(benchKey(n), sum)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchKey(n int) string {
	return string(rune('a' + n))
}

func BenchmarkTunelangParse(b *testing.B) {
	src := `
task_control_parameters { g; d; c; }
task sample deadline 10 params (g) {
    config (g = 16) require 4 procs 8 time quality 1.0;
    config (g = 64) require 4 procs 2 time quality 0.95;
}
task_select mark {
    when (g == 16) { task fine deadline 14 params (d) { config (d = 2) require 2 procs 3 time; } } finally { c = 1; }
    when (g == 64) { task coarse deadline 14 params (d) { config (d = 8) require 2 procs 4 time; } } finally { c = 2; }
}
task compute deadline 40 params (c) {
    config (c = 1) require 4 procs 10 time quality 1.0;
    config (c = 2) require 8 procs 12 time quality 0.9;
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := milan.ParseTunability("bench", src)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := g.Enumerate(0); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension benchmarks: the quality-maximization and renegotiation
// experiments (EXT-Q, EXT-R in EXPERIMENTS.md) and DAG admission.

func BenchmarkExtQQualitySweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(800)
	var total float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.QualitySweep(cfg, []float64{20, 45, 85}, 0.5, 0.7)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, pt := range pts {
			for _, r := range pt.Results {
				if r.Policy == "max-quality" {
					total += r.TotalQuality
				}
			}
		}
	}
	b.ReportMetric(total, "maxq-total-quality")
}

func BenchmarkExtRChurn(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(800)
	var completed int
	for i := 0; i < b.N; i++ {
		results, err := experiments.ChurnRun(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		completed = results[0].Completed
	}
	b.ReportMetric(float64(completed), "dynamic-completed")
}

func BenchmarkDAGAdmit(b *testing.B) {
	b.ReportAllocs()
	s := core.NewScheduler(16, 0, nil)
	release := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release += 30
		s.Observe(release)
		dl := release + 200
		dag := core.DAG{Name: "diamond", Tasks: []core.DAGTask{
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: dl}},
			{Task: core.Task{Procs: 6, Duration: 10, Deadline: dl}, Preds: []int{0}},
			{Task: core.Task{Procs: 6, Duration: 10, Deadline: dl}, Preds: []int{0}},
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: dl}, Preds: []int{1, 2}},
		}}
		_, _ = s.AdmitDAG(core.DAGJob{ID: i, Release: release, Alts: []core.DAG{dag}})
	}
}
