package junction

import (
	"fmt"
	"sort"

	"milan/internal/calypso"
)

// Quality scores detections against ground truth: detections within the
// tolerance radius of a true junction count as matches (each truth point
// matches at most once).
type Quality struct {
	Truth     int
	Detected  int
	Matched   int
	Precision float64
	Recall    float64
	F1        float64
}

// Score computes detection quality with the given match radius.
func Score(truth []Point, detected []Junction, radius float64) Quality {
	q := Quality{Truth: len(truth), Detected: len(detected)}
	used := make([]bool, len(detected))
	for _, t := range truth {
		best, bestD := -1, radius
		for i, d := range detected {
			if used[i] {
				continue
			}
			if dist := t.Dist(d.P); dist <= bestD {
				best, bestD = i, dist
			}
		}
		if best >= 0 {
			used[best] = true
			q.Matched++
		}
	}
	if q.Detected > 0 {
		q.Precision = float64(q.Matched) / float64(q.Detected)
	}
	if q.Truth > 0 {
		q.Recall = float64(q.Matched) / float64(q.Truth)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// StepCost records the measured resource profile of one pipeline step: the
// amount of work (pixels examined) and the concurrency it ran with.  These
// are the profiles the QoS agent communicates to the arbitrator ("resource
// requirements ... obtained by profiling", Section 3.2).
type StepCost struct {
	Name  string
	Work  int // pixels examined
	Width int // parallel tasks used
}

// Result is the outcome of one pipeline run.
type Result struct {
	Params    Params
	Points    []Point    // step-1 interesting pixels
	Regions   []Region   // step-2 regions of interest
	Junctions []Junction // step-3 detections
	Costs     [3]StepCost
	Quality   Quality // filled by the caller via Score, or RunScored
}

// Run executes the three-step junction detection pipeline as three Calypso
// parallel steps on the runtime: sampling partitioned by row bands, region
// marking as a single task (it is cheap and global), and per-region
// junction detection fanned out across tasks.
func Run(rt *calypso.Runtime, im *Image, p Params) (*Result, error) {
	res := &Result{Params: p}
	width := rt.Workers()
	if width < 1 {
		width = 1
	}

	// Step 1: sample pixels in parallel row bands.
	band := (im.H + width - 1) / width
	if band < 1 {
		band = 1
	}
	err := rt.Parallel(width, func(ctx *calypso.TaskCtx, w, n int) error {
		lo := n * band
		hi := lo + band
		if hi > im.H {
			hi = im.H
		}
		if lo >= hi {
			ctx.Write(key("sample", n), bandResult{})
			return nil
		}
		pts, examined := SamplePixels(im, p, lo, hi)
		ctx.Write(key("sample", n), bandResult{Points: pts, Work: examined})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("junction: sample step: %w", err)
	}
	var allPts []Point
	sampleWork := 0
	for n := 0; n < width; n++ {
		br, ok := calypso.GetAs[bandResult](rt.Store(), key("sample", n))
		if !ok {
			return nil, fmt.Errorf("junction: missing sample band %d", n)
		}
		allPts = append(allPts, br.Points...)
		sampleWork += br.Work
	}
	sort.Slice(allPts, func(a, b int) bool {
		if allPts[a].Y != allPts[b].Y {
			return allPts[a].Y < allPts[b].Y
		}
		return allPts[a].X < allPts[b].X
	})
	res.Points = allPts
	res.Costs[0] = StepCost{Name: "sampleImage", Work: sampleWork, Width: width}

	// Step 2: mark regions of interest (sequential task inside a step —
	// the paper's second step is cheap bookkeeping around the clusters).
	err = rt.Parallel(1, func(ctx *calypso.TaskCtx, w, n int) error {
		regs := MarkRegions(im, p, allPts)
		ctx.Write("regions", regs)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("junction: region step: %w", err)
	}
	regs, _ := calypso.GetAs[[]Region](rt.Store(), "regions")
	res.Regions = regs
	res.Costs[1] = StepCost{Name: "markRegion", Work: len(allPts), Width: 1}

	// Step 3: detect junctions per region, fanned out across tasks.
	if len(regs) > 0 {
		fan := width
		if fan > len(regs) {
			fan = len(regs)
		}
		err = rt.Parallel(fan, func(ctx *calypso.TaskCtx, w, n int) error {
			var js []Junction
			work := 0
			for i := n; i < len(regs); i += w {
				j, examined := DetectJunctions(im, p, regs[i])
				js = append(js, j...)
				work += examined
			}
			ctx.Write(key("detect", n), detectResult{Junctions: js, Work: work})
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("junction: detect step: %w", err)
		}
		detectWork := 0
		for n := 0; n < fan; n++ {
			dr, ok := calypso.GetAs[detectResult](rt.Store(), key("detect", n))
			if !ok {
				return nil, fmt.Errorf("junction: missing detect shard %d", n)
			}
			res.Junctions = append(res.Junctions, dr.Junctions...)
			detectWork += dr.Work
		}
		sort.Slice(res.Junctions, func(a, b int) bool {
			if res.Junctions[a].P.Y != res.Junctions[b].P.Y {
				return res.Junctions[a].P.Y < res.Junctions[b].P.Y
			}
			return res.Junctions[a].P.X < res.Junctions[b].P.X
		})
		res.Costs[2] = StepCost{Name: "computeJunctions", Work: detectWork, Width: fan}
	} else {
		res.Costs[2] = StepCost{Name: "computeJunctions", Width: width}
	}
	return res, nil
}

// RunScored runs the pipeline and scores it against ground truth.
func RunScored(rt *calypso.Runtime, im *Image, p Params, truth []Point, radius float64) (*Result, error) {
	res, err := Run(rt, im, p)
	if err != nil {
		return nil, err
	}
	res.Quality = Score(truth, res.Junctions, radius)
	return res, nil
}

// bandResult and detectResult are the shard values written to the store.
type bandResult struct {
	Points []Point
	Work   int
}

type detectResult struct {
	Junctions []Junction
	Work      int
}

func key(prefix string, n int) string { return fmt.Sprintf("junction.%s.%d", prefix, n) }
