package junction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"milan/internal/calypso"
	"milan/internal/taskgraph"
)

func synth(t *testing.T) (*Image, []Point) {
	t.Helper()
	im, truth := Synthesize(DefaultSynthSpec())
	if len(truth) == 0 {
		t.Fatal("synthetic scene has no ground truth")
	}
	return im, truth
}

func TestImageBasics(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 0.7)
	if got := im.At(2, 1); got != 0.7 {
		t.Fatalf("At = %v", got)
	}
	// Border clamping.
	im.Set(0, 0, 0.3)
	if im.At(-5, -5) != 0.3 {
		t.Fatal("negative coords not clamped to origin")
	}
	if im.At(100, 100) != im.At(3, 2) {
		t.Fatal("overflow coords not clamped to max")
	}
	// Out-of-bounds writes dropped.
	im.Set(-1, 0, 9)
	im.Set(4, 0, 9)
	for _, v := range im.Pix {
		if v == 9 {
			t.Fatal("out-of-bounds write landed")
		}
	}
}

func TestNewImagePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewImage(0, 5)
}

func TestSynthesizeDeterministicAndInRange(t *testing.T) {
	a, truthA := Synthesize(DefaultSynthSpec())
	b, truthB := Synthesize(DefaultSynthSpec())
	if len(truthA) != len(truthB) {
		t.Fatal("same seed produced different truth")
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different image")
		}
		if a.Pix[i] < 0 || a.Pix[i] > 1 {
			t.Fatalf("pixel %d out of range: %v", i, a.Pix[i])
		}
	}
	for _, p := range truthA {
		if p.X < 0 || p.X >= a.W || p.Y < 0 || p.Y >= a.H {
			t.Fatalf("truth point %v outside image", p)
		}
	}
}

func TestInterestingFiresOnEdgesNotFlats(t *testing.T) {
	im := NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := 0.2
			if x >= 16 {
				v = 0.9
			}
			im.Set(x, y, v)
		}
	}
	if Interesting(im, 5, 16, 0.15) {
		t.Error("flat area marked interesting")
	}
	if !Interesting(im, 16, 16, 0.15) {
		t.Error("step edge not marked interesting")
	}
}

func TestCornerLikeDistinguishesEdgesFromCorners(t *testing.T) {
	im := NewImage(32, 32)
	// Dark square in the lower-right quadrant: corner at (16, 16).
	for y := 16; y < 32; y++ {
		for x := 16; x < 32; x++ {
			im.Set(x, y, 1)
		}
	}
	if !CornerLike(im, 16, 16, 0.05) {
		t.Error("true corner rejected")
	}
	// Pure vertical edge far from the corner has no y-gradient.
	if CornerLike(im, 16, 28, 0.05) {
		t.Error("pure edge accepted as corner")
	}
}

func TestSamplePixelsRespectsGranularity(t *testing.T) {
	im, _ := synth(t)
	p := FineParams()
	_, fineWork := SamplePixels(im, p, 0, im.H)
	c := CoarseParams()
	_, coarseWork := SamplePixels(im, c, 0, im.H)
	wantFine := (im.H + 1) / 2 * ((im.W + 1) / 2)
	if fineWork != wantFine {
		t.Errorf("fine work = %d, want %d", fineWork, wantFine)
	}
	ratio := float64(fineWork) / float64(coarseWork)
	want := float64(c.Granularity*c.Granularity) / float64(p.Granularity*p.Granularity)
	if math.Abs(ratio-want) > 1 {
		t.Errorf("work ratio = %v, want ~%v", ratio, want)
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}}
	hull := convexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull = %v, want the 4 square corners", hull)
	}
	for _, c := range []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}} {
		found := false
		for _, h := range hull {
			if h == c {
				found = true
			}
		}
		if !found {
			t.Errorf("corner %v missing from hull %v", c, hull)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := convexHull([]Point{{1, 1}}); len(got) != 1 {
		t.Errorf("single point hull = %v", got)
	}
	if got := convexHull([]Point{{1, 1}, {2, 2}}); len(got) != 2 {
		t.Errorf("two point hull = %v", got)
	}
	// Collinear points: hull is the two extremes.
	col := convexHull([]Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	if len(col) != 2 {
		t.Errorf("collinear hull = %v, want 2 extremes", col)
	}
}

// TestQuickHullContainsAllPoints: every input point lies inside (or on) the
// hull's bounding region.
func TestQuickHullContainsAllPoints(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw%30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Intn(50), rng.Intn(50)}
		}
		hull := convexHull(pts)
		reg := Region{Hull: hull, MinX: 0, MinY: 0, MaxX: 49, MaxY: 49}
		for _, p := range pts {
			if !reg.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionContains(t *testing.T) {
	reg := Region{
		Hull: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
		MinX: 0, MinY: 0, MaxX: 10, MaxY: 10,
	}
	if !reg.Contains(Point{5, 5}) {
		t.Error("interior point rejected")
	}
	if !reg.Contains(Point{0, 0}) {
		t.Error("vertex rejected")
	}
	if !reg.Contains(Point{5, 0}) {
		t.Error("edge point rejected")
	}
	if reg.Contains(Point{11, 5}) {
		t.Error("exterior point accepted")
	}
	if got := reg.Area(); got != 121 {
		t.Errorf("Area = %d, want 121", got)
	}
}

func TestMarkRegionsClustersBySearchDistance(t *testing.T) {
	im := NewImage(100, 100)
	// Two groups of points 50 apart; search distance 10 keeps them apart,
	// 60 merges them.
	pts := []Point{{10, 10}, {12, 10}, {10, 12}, {60, 60}, {62, 60}, {60, 62}}
	p := Params{SearchDistance: 10, MinCluster: 2}
	regs := MarkRegions(im, p, pts)
	if len(regs) != 2 {
		t.Fatalf("got %d regions, want 2", len(regs))
	}
	p.SearchDistance = 80
	regs = MarkRegions(im, p, pts)
	if len(regs) != 1 {
		t.Fatalf("got %d regions, want 1 merged", len(regs))
	}
	// Min cluster size filters lonely points.
	p.SearchDistance = 10
	p.MinCluster = 4
	if regs = MarkRegions(im, p, pts); len(regs) != 0 {
		t.Fatalf("got %d regions, want 0 (below min cluster)", len(regs))
	}
	if regs = MarkRegions(im, p, nil); regs != nil {
		t.Fatal("regions from no points")
	}
}

func TestDetectJunctionsFindsSquareCorner(t *testing.T) {
	im := NewImage(40, 40)
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			im.Set(x, y, 1)
		}
	}
	reg := Region{MinX: 5, MinY: 5, MaxX: 35, MaxY: 35}
	p := FineParams()
	js, examined := DetectJunctions(im, p, reg)
	if examined == 0 {
		t.Fatal("no pixels examined")
	}
	if len(js) < 4 {
		t.Fatalf("found %d junctions, want >= 4 corners", len(js))
	}
	// Every true corner matched within 2px.
	q := Score([]Point{{10, 10}, {29, 10}, {10, 29}, {29, 29}}, js, 2)
	if q.Recall < 1 {
		t.Fatalf("corner recall = %v, junctions = %v", q.Recall, js)
	}
}

func TestScore(t *testing.T) {
	truth := []Point{{0, 0}, {10, 10}}
	det := []Junction{{P: Point{1, 1}}, {P: Point{50, 50}}}
	q := Score(truth, det, 3)
	if q.Matched != 1 || q.Truth != 2 || q.Detected != 2 {
		t.Fatalf("q = %+v", q)
	}
	if q.Precision != 0.5 || q.Recall != 0.5 {
		t.Fatalf("p/r = %v/%v", q.Precision, q.Recall)
	}
	if math.Abs(q.F1-0.5) > 1e-12 {
		t.Fatalf("f1 = %v", q.F1)
	}
	// A detection matches at most one truth point.
	q = Score([]Point{{0, 0}, {1, 1}}, []Junction{{P: Point{0, 0}}}, 5)
	if q.Matched != 1 {
		t.Fatalf("double-matched one detection: %+v", q)
	}
	// Empty edge cases.
	if q := Score(nil, nil, 3); q.F1 != 0 {
		t.Fatalf("empty score = %+v", q)
	}
}

func TestPipelineFineAndCoarseTradeoff(t *testing.T) {
	im, truth := synth(t)
	rtF, _ := calypso.New(calypso.Config{Workers: 4})
	fine, err := RunScored(rtF, im, FineParams(), truth, 4)
	if err != nil {
		t.Fatal(err)
	}
	rtC, _ := calypso.New(calypso.Config{Workers: 4})
	coarse, err := RunScored(rtC, im, CoarseParams(), truth, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The tunability tradeoff (paper Figure 2): coarse sampling spends far
	// less in step 1 and compensates with a larger step-3 allocation, at
	// comparable output quality.
	if coarse.Costs[0].Work*4 > fine.Costs[0].Work {
		t.Errorf("coarse sampling work %d not far below fine %d",
			coarse.Costs[0].Work, fine.Costs[0].Work)
	}
	if coarse.Costs[2].Work < fine.Costs[2].Work*4 {
		t.Errorf("coarse analysis work %d not far above fine %d",
			coarse.Costs[2].Work, fine.Costs[2].Work)
	}
	if fine.Quality.F1 < 0.85 {
		t.Errorf("fine F1 = %v, want >= 0.85", fine.Quality.F1)
	}
	if coarse.Quality.F1 < fine.Quality.F1-0.1 {
		t.Errorf("coarse F1 = %v, not comparable to fine %v",
			coarse.Quality.F1, fine.Quality.F1)
	}
}

func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	im, truth := synth(t)
	var detections []int
	for _, workers := range []int{1, 3, 8} {
		rt, _ := calypso.New(calypso.Config{Workers: workers})
		res, err := RunScored(rt, im, FineParams(), truth, 4)
		if err != nil {
			t.Fatal(err)
		}
		detections = append(detections, len(res.Junctions))
	}
	for i := 1; i < len(detections); i++ {
		if detections[i] != detections[0] {
			t.Fatalf("worker counts changed detections: %v", detections)
		}
	}
}

func TestPipelineUnderFaults(t *testing.T) {
	im, truth := synth(t)
	rt, err := calypso.New(calypso.Config{
		Workers: 6,
		Faults:  &calypso.FaultPlan{CrashProb: 0.05, TransientProb: 0.2, MaxCrashes: 4, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScored(rt, im, FineParams(), truth, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fault masking must not change the result.
	clean, _ := calypso.New(calypso.Config{Workers: 6})
	want, err := RunScored(clean, im, FineParams(), truth, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Junctions) != len(want.Junctions) {
		t.Fatalf("faulty run found %d junctions, clean run %d", len(res.Junctions), len(want.Junctions))
	}
	if res.Quality.F1 != want.Quality.F1 {
		t.Fatalf("faulty F1 %v != clean F1 %v", res.Quality.F1, want.Quality.F1)
	}
}

func TestBuildGraphFromProfiles(t *testing.T) {
	im, truth := synth(t)
	graph, profs, err := BuildGraph(4, im, truth, FineParams(), CoarseParams(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	chains, envs, err := graph.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 {
		t.Fatalf("paths = %d, want 2", len(chains))
	}
	// Path 0 = fine: first task long (dense sampling), last task short.
	// Path 1 = coarse: opposite.
	fineChain, coarseChain := chains[0], chains[1]
	if fineChain.Tasks[0].Duration <= coarseChain.Tasks[0].Duration {
		t.Errorf("fine sampling %v not longer than coarse %v",
			fineChain.Tasks[0].Duration, coarseChain.Tasks[0].Duration)
	}
	if fineChain.Tasks[2].Duration >= coarseChain.Tasks[2].Duration {
		t.Errorf("fine analysis %v not shorter than coarse %v",
			fineChain.Tasks[2].Duration, coarseChain.Tasks[2].Duration)
	}
	// Environments round-trip to application parameters.
	pf, err := ParamsForEnv(envs[0], FineParams(), CoarseParams())
	if err != nil {
		t.Fatal(err)
	}
	if pf.Granularity != FineParams().Granularity {
		t.Errorf("env 0 params = %+v", pf)
	}
	pc, err := ParamsForEnv(envs[1], FineParams(), CoarseParams())
	if err != nil {
		t.Fatal(err)
	}
	if pc.Granularity != CoarseParams().Granularity {
		t.Errorf("env 1 params = %+v", pc)
	}
	if _, err := ParamsForEnv(taskgraphEnv(), FineParams(), CoarseParams()); err == nil {
		t.Error("empty env accepted")
	}
	// Profiled qualities are the measured F1s.
	if profs[0].Quality < 0.85 || profs[1].Quality < 0.75 {
		t.Errorf("profiled qualities = %v, %v", profs[0].Quality, profs[1].Quality)
	}
}

func TestParamsForEnvRejectsUnknownGranularity(t *testing.T) {
	env := taskgraphEnv()
	env["sampleGranularity"] = 99
	if _, err := ParamsForEnv(env, FineParams(), CoarseParams()); err == nil {
		t.Fatal("unknown granularity accepted")
	}
}

// taskgraphEnv returns an empty control-parameter environment.
func taskgraphEnv() taskgraph.Env { return taskgraph.Env{} }
