package junction

import (
	"fmt"
	"math/rand"
)

// VideoSpec parameterizes a synthetic video: rectangles drift with constant
// velocities and bounce off the frame margins, so every frame has analytic
// ground-truth junctions — the paper's "live video feed" scenario with a
// measurable answer key.
type VideoSpec struct {
	W, H       int
	Frames     int
	Rectangles int
	Noise      float64
	// MaxSpeed bounds the per-frame drift in pixels.
	MaxSpeed int
	Seed     int64
}

// DefaultVideoSpec returns a 12-frame 192x192 scene.
func DefaultVideoSpec() VideoSpec {
	return VideoSpec{W: 256, H: 256, Frames: 12, Rectangles: 6, Noise: 0.02, MaxSpeed: 4, Seed: 2}
}

// Validate checks the spec.
func (v VideoSpec) Validate() error {
	if v.W < 32 || v.H < 32 {
		return fmt.Errorf("junction: video %dx%d too small", v.W, v.H)
	}
	if v.Frames < 1 || v.Rectangles < 1 {
		return fmt.Errorf("junction: video needs frames and rectangles")
	}
	if v.MaxSpeed < 0 {
		return fmt.Errorf("junction: negative speed")
	}
	return nil
}

// SynthesizeVideo renders the sequence, returning per-frame images and
// ground truths.
func SynthesizeVideo(spec VideoSpec) ([]*Image, [][]Point, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	margin := 8
	type body struct {
		x, y, w, h int
		vx, vy     int
		v          float64
	}
	var bodies []body
	for i := 0; i < spec.Rectangles; i++ {
		w := margin*2 + rng.Intn(spec.W/3)
		h := margin*2 + rng.Intn(spec.H/3)
		v := 0.05 + rng.Float64()*0.2
		if i%2 == 1 {
			v = 0.75 + rng.Float64()*0.2
		}
		bodies = append(bodies, body{
			x: margin + rng.Intn(spec.W-w-2*margin),
			y: margin + rng.Intn(spec.H-h-2*margin),
			w: w, h: h,
			vx: rng.Intn(2*spec.MaxSpeed+1) - spec.MaxSpeed,
			vy: rng.Intn(2*spec.MaxSpeed+1) - spec.MaxSpeed,
			v:  v,
		})
	}

	var frames []*Image
	var truths [][]Point
	for f := 0; f < spec.Frames; f++ {
		im := NewImage(spec.W, spec.H)
		for i := range im.Pix {
			im.Pix[i] = 0.5
		}
		for _, b := range bodies {
			for y := b.y; y < b.y+b.h; y++ {
				for x := b.x; x < b.x+b.w; x++ {
					im.Set(x, y, b.v)
				}
			}
		}
		var truth []Point
		covered := func(p Point, after int) bool {
			for j := after + 1; j < len(bodies); j++ {
				b := bodies[j]
				if p.X >= b.x-1 && p.X <= b.x+b.w && p.Y >= b.y-1 && p.Y <= b.y+b.h {
					return true
				}
			}
			return false
		}
		for i, b := range bodies {
			for _, c := range []Point{
				{b.x, b.y}, {b.x + b.w - 1, b.y}, {b.x, b.y + b.h - 1}, {b.x + b.w - 1, b.y + b.h - 1},
			} {
				if !covered(c, i) {
					truth = append(truth, c)
				}
			}
		}
		if spec.Noise > 0 {
			for i := range im.Pix {
				im.Pix[i] += (rng.Float64()*2 - 1) * spec.Noise
				if im.Pix[i] < 0 {
					im.Pix[i] = 0
				}
				if im.Pix[i] > 1 {
					im.Pix[i] = 1
				}
			}
		}
		frames = append(frames, im)
		truths = append(truths, truth)

		// Advance bodies, bouncing at the margins.
		for i := range bodies {
			b := &bodies[i]
			b.x += b.vx
			b.y += b.vy
			if b.x < margin || b.x+b.w > spec.W-margin {
				b.vx = -b.vx
				b.x += 2 * b.vx
			}
			if b.y < margin || b.y+b.h > spec.H-margin {
				b.vy = -b.vy
				b.y += 2 * b.vy
			}
		}
	}
	return frames, truths, nil
}
