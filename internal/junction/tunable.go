package junction

import (
	"fmt"
	"math"

	"milan/internal/calypso"
	"milan/internal/taskgraph"
)

// PixelsPerUnit converts measured work (pixels examined per processor) into
// abstract schedule time units when building the QoS task graph from
// profiles.
const PixelsPerUnit = 2000.0

// ProfiledConfig is the measured resource profile and quality of one
// application configuration, obtained by a profiling run on a training
// image (the paper assumes profiles "obtained by profiling on a training
// set of representative images").
type ProfiledConfig struct {
	Params  Params
	Result  *Result
	Quality float64 // measured F1 on the training image
}

// stepDuration converts a step's measured work into schedule time for its
// processor allocation.
func stepDuration(cost StepCost) float64 {
	procs := cost.Width
	if procs < 1 {
		procs = 1
	}
	d := float64(cost.Work) / (PixelsPerUnit * float64(procs))
	if d < 0.1 {
		d = 0.1 // every step costs at least a schedulable quantum
	}
	return math.Round(d*100) / 100
}

// ProfileConfig runs one configuration on the training image and returns
// its measured profile.
func ProfileConfig(workers int, im *Image, truth []Point, p Params, radius float64) (ProfiledConfig, error) {
	rt, err := calypso.New(calypso.Config{Workers: workers})
	if err != nil {
		return ProfiledConfig{}, err
	}
	res, err := RunScored(rt, im, p, truth, radius)
	if err != nil {
		return ProfiledConfig{}, err
	}
	return ProfiledConfig{Params: p, Result: res, Quality: res.Quality.F1}, nil
}

// BuildGraph profiles the fine and coarse configurations and assembles the
// paper's Figure-3 task graph: sampleImage tunable over the granularity,
// markRegion selecting on it (and setting c), computeJunctions gated on c.
// deadlineSlack scales the cumulative step durations into task deadlines
// (relative to release).
func BuildGraph(workers int, im *Image, truth []Point, fine, coarse Params, radius, deadlineSlack float64) (*taskgraph.Graph, [2]ProfiledConfig, error) {
	var profs [2]ProfiledConfig
	var err error
	if profs[0], err = ProfileConfig(workers, im, truth, fine, radius); err != nil {
		return nil, profs, fmt.Errorf("junction: profiling fine config: %w", err)
	}
	if profs[1], err = ProfileConfig(workers, im, truth, coarse, radius); err != nil {
		return nil, profs, fmt.Errorf("junction: profiling coarse config: %w", err)
	}
	if deadlineSlack < 1 {
		deadlineSlack = 1
	}

	dur := func(pc ProfiledConfig, step int) float64 { return stepDuration(pc.Result.Costs[step]) }
	procs := func(pc ProfiledConfig, step int) int {
		w := pc.Result.Costs[step].Width
		if w < 1 {
			w = 1
		}
		return w
	}
	// Per-step deadlines from the slower configuration's cumulative time,
	// scaled by the slack factor.
	cum1 := math.Max(dur(profs[0], 0), dur(profs[1], 0))
	cum2 := cum1 + math.Max(dur(profs[0], 1), dur(profs[1], 1))
	cum3 := cum2 + math.Max(dur(profs[0], 2), dur(profs[1], 2))

	gFine := float64(fine.Granularity)
	gCoarse := float64(coarse.Granularity)

	graph := &taskgraph.Graph{
		Name: "junction-detection",
		Params: map[string]float64{
			"sampleGranularity": math.NaN(),
			"searchDistance":    math.NaN(),
			"c":                 math.NaN(),
		},
		Root: taskgraph.Seq{
			&taskgraph.TaskNode{
				Name:     "sampleImage",
				Deadline: cum1 * deadlineSlack,
				Params:   []string{"sampleGranularity"},
				Configs: []taskgraph.Config{
					{
						Assign:   map[string]float64{"sampleGranularity": gFine},
						Procs:    procs(profs[0], 0),
						Duration: dur(profs[0], 0),
						Quality:  1,
					},
					{
						Assign:   map[string]float64{"sampleGranularity": gCoarse},
						Procs:    procs(profs[1], 0),
						Duration: dur(profs[1], 0),
						Quality:  1,
					},
				},
			},
			&taskgraph.Select{
				Name: "markRegion",
				Branches: []taskgraph.Branch{
					{
						When: taskgraph.Binary{Op: taskgraph.OpEq, L: taskgraph.Ref("sampleGranularity"), R: taskgraph.Lit(gFine)},
						Body: &taskgraph.TaskNode{
							Name:     "markRegionFine",
							Deadline: cum2 * deadlineSlack,
							Params:   []string{"searchDistance"},
							Configs: []taskgraph.Config{{
								Assign:   map[string]float64{"searchDistance": fine.SearchDistance},
								Procs:    procs(profs[0], 1),
								Duration: dur(profs[0], 1),
								Quality:  1,
							}},
						},
						Finally: []taskgraph.Assign{{Param: "c", Value: taskgraph.Lit(1)}},
					},
					{
						When: taskgraph.Binary{Op: taskgraph.OpEq, L: taskgraph.Ref("sampleGranularity"), R: taskgraph.Lit(gCoarse)},
						Body: &taskgraph.TaskNode{
							Name:     "markRegionCoarse",
							Deadline: cum2 * deadlineSlack,
							Params:   []string{"searchDistance"},
							Configs: []taskgraph.Config{{
								Assign:   map[string]float64{"searchDistance": coarse.SearchDistance},
								Procs:    procs(profs[1], 1),
								Duration: dur(profs[1], 1),
								Quality:  1,
							}},
						},
						Finally: []taskgraph.Assign{{Param: "c", Value: taskgraph.Lit(2)}},
					},
				},
			},
			&taskgraph.TaskNode{
				Name:     "computeJunctions",
				Deadline: cum3 * deadlineSlack,
				Params:   []string{"c"},
				Configs: []taskgraph.Config{
					{
						Assign:   map[string]float64{"c": 1},
						Procs:    procs(profs[0], 2),
						Duration: dur(profs[0], 2),
						Quality:  profs[0].Quality,
					},
					{
						Assign:   map[string]float64{"c": 2},
						Procs:    procs(profs[1], 2),
						Duration: dur(profs[1], 2),
						Quality:  profs[1].Quality,
					},
				},
			},
		},
	}
	if err := graph.Validate(); err != nil {
		return nil, profs, fmt.Errorf("junction: built invalid graph: %w", err)
	}
	return graph, profs, nil
}

// ParamsForEnv reconstructs application parameters from a granted path's
// control-parameter environment (the QoS agent "configures the application"
// with these values).  base supplies the non-tunable thresholds.
func ParamsForEnv(env taskgraph.Env, fine, coarse Params) (Params, error) {
	g, ok := env["sampleGranularity"]
	if !ok {
		return Params{}, fmt.Errorf("junction: grant env missing sampleGranularity")
	}
	switch int(g) {
	case fine.Granularity:
		return fine, nil
	case coarse.Granularity:
		return coarse, nil
	default:
		return Params{}, fmt.Errorf("junction: grant granularity %v matches neither configuration", g)
	}
}
