// Package junction implements the paper's tunable example application
// (Sections 3.2 and 4.3): junction detection in images.  The algorithm has
// three steps — sample pixels for interest, mark regions of interest around
// clusters of interesting pixels, and run a compute-intensive junction
// operator on every pixel inside the regions — and is tunable through the
// sampling granularity and the search distance: coarser sampling makes the
// first step cheaper at the cost of larger regions (more third-step work)
// for comparable output quality.
//
// The paper runs on live imagery; this package substitutes a synthetic
// image generator with analytic ground truth (planted rectangle corners),
// so output quality is measurable exactly.
package junction

import (
	"fmt"
	"math"
	"math/rand"
)

// Image is a grayscale image with intensities in [0, 1], row-major.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage returns a black image.
func NewImage(w, h int) *Image {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("junction: bad image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y), clamping coordinates to the border.
func (im *Image) At(x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the intensity at (x, y); out-of-bounds writes are dropped.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Point is a pixel coordinate.
type Point struct{ X, Y int }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := float64(p.X-q.X), float64(p.Y-q.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// SynthSpec parameterizes the synthetic scene.
type SynthSpec struct {
	W, H       int
	Rectangles int     // number of planted rectangles
	Noise      float64 // uniform noise amplitude
	Seed       int64
}

// DefaultSynthSpec plants a busy 256x256 scene.
func DefaultSynthSpec() SynthSpec {
	return SynthSpec{W: 256, H: 256, Rectangles: 6, Noise: 0.02, Seed: 1}
}

// Synthesize generates an image of filled rectangles over a mid-gray
// background plus noise, returning the image and the ground-truth junction
// locations (the visible rectangle corners).
func Synthesize(spec SynthSpec) (*Image, []Point) {
	rng := rand.New(rand.NewSource(spec.Seed))
	im := NewImage(spec.W, spec.H)
	for i := range im.Pix {
		im.Pix[i] = 0.5
	}
	// Top-most rectangle at each pixel determines intensity, so corners of
	// later rectangles are always visible; earlier corners may be occluded.
	type rect struct {
		x0, y0, x1, y1 int
		v              float64
	}
	var rects []rect
	margin := 8
	for i := 0; i < spec.Rectangles; i++ {
		w := margin*2 + rng.Intn(spec.W/3)
		h := margin*2 + rng.Intn(spec.H/3)
		x0 := margin + rng.Intn(spec.W-w-2*margin)
		y0 := margin + rng.Intn(spec.H-h-2*margin)
		v := 0.0
		// Alternate dark and bright so adjacent rectangles keep contrast
		// against the 0.5 background.
		if i%2 == 0 {
			v = 0.05 + rng.Float64()*0.2
		} else {
			v = 0.75 + rng.Float64()*0.2
		}
		rects = append(rects, rect{x0, y0, x0 + w, y0 + h, v})
	}
	for _, r := range rects {
		for y := r.y0; y < r.y1; y++ {
			for x := r.x0; x < r.x1; x++ {
				im.Set(x, y, r.v)
			}
		}
	}
	// Ground truth: corners still on top (not covered by a later rect).
	var truth []Point
	covered := func(p Point, after int) bool {
		for j := after + 1; j < len(rects); j++ {
			r := rects[j]
			if p.X >= r.x0-1 && p.X <= r.x1 && p.Y >= r.y0-1 && p.Y <= r.y1 {
				return true
			}
		}
		return false
	}
	for i, r := range rects {
		for _, c := range []Point{{r.x0, r.y0}, {r.x1 - 1, r.y0}, {r.x0, r.y1 - 1}, {r.x1 - 1, r.y1 - 1}} {
			if !covered(c, i) {
				truth = append(truth, c)
			}
		}
	}
	// Noise.
	if spec.Noise > 0 {
		for i := range im.Pix {
			im.Pix[i] += (rng.Float64()*2 - 1) * spec.Noise
			if im.Pix[i] < 0 {
				im.Pix[i] = 0
			}
			if im.Pix[i] > 1 {
				im.Pix[i] = 1
			}
		}
	}
	return im, truth
}
