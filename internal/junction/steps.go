package junction

import (
	"math"
	"sort"
)

// Params are the application's control parameters (Section 4.3): the
// sampling granularity of step 1 and the search distance used to construct
// regions of interest in step 2, plus the fixed thresholds of the detector.
type Params struct {
	// Granularity samples every Granularity-th pixel in x and y in step 1.
	Granularity int
	// SearchDistance is the clustering radius for regions of interest; the
	// coarser the sampling, the larger it must be.
	SearchDistance float64
	// InterestThreshold is the neighborhood-contrast threshold of step 1.
	InterestThreshold float64
	// MinCluster is the minimum number of interesting pixels that form a
	// region of interest.
	MinCluster int
	// HullMargin grows each region's hull by this many pixels so junction
	// evidence just outside the sampled points is not lost.
	HullMargin int
	// CornerFilter selects the region-marking algorithm (the paper's
	// coarse-discrete tunability in step 2): when true, interesting pixels
	// are refined with a corner-selective gradient test before clustering,
	// yielding small regions tight around junction evidence.  Dense
	// sampling can afford this; sparse sampling misses the narrow corner
	// responses and must instead cluster broad contrast evidence with a
	// larger search distance, yielding larger regions.
	CornerFilter bool
	// CornerThreshold is the per-direction gradient magnitude required by
	// the corner filter.
	CornerThreshold float64
	// HarrisK and HarrisThreshold parameterize the step-3 operator.
	HarrisK         float64
	HarrisThreshold float64
}

// FineParams is the paper's fine configuration (sampleGranularity=16 analog:
// dense sampling, small search distance).
func FineParams() Params {
	return Params{
		Granularity:       2,
		SearchDistance:    8,
		InterestThreshold: 0.15,
		MinCluster:        1,
		HullMargin:        4,
		CornerFilter:      true,
		CornerThreshold:   0.05,
		HarrisK:           0.05,
		HarrisThreshold:   0.0004,
	}
}

// CoarseParams is the coarse configuration: cheap sparse sampling
// compensated by a larger search distance (larger regions, more step-3
// work).
func CoarseParams() Params {
	return Params{
		Granularity:       5,
		SearchDistance:    24,
		InterestThreshold: 0.15,
		MinCluster:        1,
		HullMargin:        10,
		HarrisK:           0.05,
		HarrisThreshold:   0.0004,
	}
}

// CornerLike reports whether the pixel has significant gradient in both
// directions (the refinement test of the fine region-marking algorithm).
func CornerLike(im *Image, x, y int, threshold float64) bool {
	gx, gy := sobel(im, x, y)
	return math.Abs(gx) > threshold && math.Abs(gy) > threshold
}

// Interesting reports whether the pixel at (x, y) passes the step-1 quick
// test: the intensity spread across its 8-neighborhood exceeds the
// threshold.
func Interesting(im *Image, x, y int, threshold float64) bool {
	min, max := math.Inf(1), math.Inf(-1)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			v := im.At(x+dx, y+dy)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return max-min > threshold
}

// SamplePixels runs step 1 over the sub-grid rows [rowLo, rowHi): it tests
// every Granularity-th pixel and returns the interesting ones plus the
// number of pixels examined (the step's work).
func SamplePixels(im *Image, p Params, rowLo, rowHi int) (points []Point, examined int) {
	g := p.Granularity
	if g < 1 {
		g = 1
	}
	for y := rowLo; y < rowHi; y += g {
		for x := 0; x < im.W; x += g {
			examined++
			if Interesting(im, x, y, p.InterestThreshold) {
				points = append(points, Point{x, y})
			}
		}
	}
	return points, examined
}

// Region is a region of interest: the convex hull (as a polygon) around a
// cluster of interesting pixels, with its bounding box for fast iteration.
type Region struct {
	Hull       []Point
	MinX, MinY int
	MaxX, MaxY int
	Support    int // number of interesting pixels in the cluster
}

// Area returns the number of pixels inside the region's bounding box (the
// step-3 work bound for the region).
func (r Region) Area() int { return (r.MaxX - r.MinX + 1) * (r.MaxY - r.MinY + 1) }

// Contains reports whether the pixel lies inside the region's convex hull
// (inclusive of edges).
func (r Region) Contains(p Point) bool {
	if p.X < r.MinX || p.X > r.MaxX || p.Y < r.MinY || p.Y > r.MaxY {
		return false
	}
	if len(r.Hull) < 3 {
		return true // degenerate hull: fall back to the bounding box
	}
	sign := 0
	n := len(r.Hull)
	for i := 0; i < n; i++ {
		a, b := r.Hull[i], r.Hull[(i+1)%n]
		cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
		switch {
		case cross == 0:
			continue
		case cross > 0:
			if sign < 0 {
				return false
			}
			sign = 1
		default:
			if sign > 0 {
				return false
			}
			sign = -1
		}
	}
	return true
}

// MarkRegions runs step 2: it clusters the interesting pixels with
// single-linkage at the search distance, keeps clusters with at least
// MinCluster members, and draws each cluster's convex hull grown by
// HullMargin.
func MarkRegions(im *Image, p Params, points []Point) []Region {
	if p.CornerFilter {
		var kept []Point
		for _, pt := range points {
			if cornerNearby(im, pt, p) {
				kept = append(kept, pt)
			}
		}
		points = kept
	}
	n := len(points)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].Dist(points[j]) <= p.SearchDistance {
				union(i, j)
			}
		}
	}
	clusters := make(map[int][]Point)
	for i, pt := range points {
		r := find(i)
		clusters[r] = append(clusters[r], pt)
	}
	var regions []Region
	for _, members := range clusters {
		if len(members) < p.MinCluster {
			continue
		}
		hull := convexHull(members)
		hull = growHull(hull, p.HullMargin, im.W, im.H)
		reg := Region{Hull: hull, Support: len(members)}
		reg.MinX, reg.MinY = im.W, im.H
		for _, pt := range hull {
			if pt.X < reg.MinX {
				reg.MinX = pt.X
			}
			if pt.Y < reg.MinY {
				reg.MinY = pt.Y
			}
			if pt.X > reg.MaxX {
				reg.MaxX = pt.X
			}
			if pt.Y > reg.MaxY {
				reg.MaxY = pt.Y
			}
		}
		regions = append(regions, reg)
	}
	// Deterministic order for reproducible pipelines.
	sort.Slice(regions, func(a, b int) bool {
		if regions[a].MinY != regions[b].MinY {
			return regions[a].MinY < regions[b].MinY
		}
		return regions[a].MinX < regions[b].MinX
	})
	return regions
}

// cornerNearby reports whether any pixel within the sampling cell of pt
// passes the corner test (the corner response is only a few pixels wide, so
// the refinement scans the cell the sample represents).
func cornerNearby(im *Image, pt Point, p Params) bool {
	r := p.Granularity / 2
	if r < 1 {
		r = 1
	}
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if CornerLike(im, pt.X+dx, pt.Y+dy, p.CornerThreshold) {
				return true
			}
		}
	}
	return false
}

// convexHull computes the convex hull with Andrew's monotone chain,
// returning vertices in counter-clockwise order.
func convexHull(pts []Point) []Point {
	if len(pts) <= 2 {
		return append([]Point(nil), pts...)
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	cross := func(o, a, b Point) int {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var lower []Point
	for _, p := range sorted {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	var upper []Point
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return append(lower[:len(lower)-1], upper[:len(upper)-1]...)
}

// growHull expands the hull outward from its centroid by margin pixels,
// clamped to the image bounds.
func growHull(hull []Point, margin, w, h int) []Point {
	if margin <= 0 || len(hull) == 0 {
		return hull
	}
	var cx, cy float64
	for _, p := range hull {
		cx += float64(p.X)
		cy += float64(p.Y)
	}
	cx /= float64(len(hull))
	cy /= float64(len(hull))
	out := make([]Point, len(hull))
	for i, p := range hull {
		dx, dy := float64(p.X)-cx, float64(p.Y)-cy
		d := math.Hypot(dx, dy)
		if d == 0 {
			d = 1
		}
		nx := int(math.Round(float64(p.X) + dx/d*float64(margin)))
		ny := int(math.Round(float64(p.Y) + dy/d*float64(margin)))
		if nx < 0 {
			nx = 0
		}
		if ny < 0 {
			ny = 0
		}
		if nx >= w {
			nx = w - 1
		}
		if ny >= h {
			ny = h - 1
		}
		out[i] = Point{nx, ny}
	}
	return out
}

// Junction holds a detected junction and its operator response.
type Junction struct {
	P        Point
	Response float64
}

// DetectJunctions runs step 3 on one region: the Harris corner operator
// (structure tensor over a 3x3 window of Sobel gradients) on every pixel of
// the region, followed by local non-maximum suppression.  It returns the
// junctions and the number of pixels examined (the step's work).
func DetectJunctions(im *Image, p Params, reg Region) (junctions []Junction, examined int) {
	resp := make(map[Point]float64)
	for y := reg.MinY; y <= reg.MaxY; y++ {
		for x := reg.MinX; x <= reg.MaxX; x++ {
			pt := Point{x, y}
			if !reg.Contains(pt) {
				continue
			}
			examined++
			r := harris(im, x, y, p.HarrisK)
			if r > p.HarrisThreshold {
				resp[pt] = r
			}
		}
	}
	// Non-maximum suppression over a 5x5 neighborhood.
	for pt, r := range resp {
		best := true
		for dy := -2; dy <= 2 && best; dy++ {
			for dx := -2; dx <= 2; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				q := Point{pt.X + dx, pt.Y + dy}
				if or, ok := resp[q]; ok && (or > r || (or == r && (q.Y < pt.Y || (q.Y == pt.Y && q.X < pt.X)))) {
					best = false
					break
				}
			}
		}
		if best {
			junctions = append(junctions, Junction{P: pt, Response: r})
		}
	}
	sort.Slice(junctions, func(a, b int) bool {
		if junctions[a].P.Y != junctions[b].P.Y {
			return junctions[a].P.Y < junctions[b].P.Y
		}
		return junctions[a].P.X < junctions[b].P.X
	})
	return junctions, examined
}

// harris computes the Harris corner response at (x, y).
func harris(im *Image, x, y int, k float64) float64 {
	var sxx, syy, sxy float64
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			gx, gy := sobel(im, x+dx, y+dy)
			sxx += gx * gx
			syy += gy * gy
			sxy += gx * gy
		}
	}
	det := sxx*syy - sxy*sxy
	trace := sxx + syy
	return det - k*trace*trace
}

// sobel returns the Sobel gradient at (x, y).
func sobel(im *Image, x, y int) (gx, gy float64) {
	gx = im.At(x+1, y-1) + 2*im.At(x+1, y) + im.At(x+1, y+1) -
		im.At(x-1, y-1) - 2*im.At(x-1, y) - im.At(x-1, y+1)
	gy = im.At(x-1, y+1) + 2*im.At(x, y+1) + im.At(x+1, y+1) -
		im.At(x-1, y-1) - 2*im.At(x, y-1) - im.At(x+1, y-1)
	return gx / 4, gy / 4
}
