package junction

import (
	"testing"

	"milan/internal/calypso"
)

func TestSynthesizeVideoBasics(t *testing.T) {
	spec := DefaultVideoSpec()
	frames, truths, err := SynthesizeVideo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != spec.Frames || len(truths) != spec.Frames {
		t.Fatalf("frames = %d truths = %d", len(frames), len(truths))
	}
	for f, im := range frames {
		for _, v := range im.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("frame %d pixel out of range: %v", f, v)
			}
		}
		if len(truths[f]) == 0 {
			t.Fatalf("frame %d has no ground truth", f)
		}
		for _, p := range truths[f] {
			if p.X < 0 || p.X >= im.W || p.Y < 0 || p.Y >= im.H {
				t.Fatalf("frame %d truth %v outside image", f, p)
			}
		}
	}
	// The scene actually moves: consecutive frames differ.
	diff := 0
	for i := range frames[0].Pix {
		if frames[0].Pix[i] != frames[1].Pix[i] {
			diff++
		}
	}
	if diff < 100 {
		t.Fatalf("frames 0 and 1 differ in only %d pixels", diff)
	}
}

func TestSynthesizeVideoValidation(t *testing.T) {
	bad := []VideoSpec{
		{W: 8, H: 192, Frames: 2, Rectangles: 1},
		{W: 192, H: 192, Frames: 0, Rectangles: 1},
		{W: 192, H: 192, Frames: 2, Rectangles: 0},
		{W: 192, H: 192, Frames: 2, Rectangles: 1, MaxSpeed: -1},
	}
	for i, s := range bad {
		if _, _, err := SynthesizeVideo(s); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestVideoTrackingQualityAcrossFrames: both tunable configurations
// sustain detection quality across a moving sequence — the property that
// makes switching between them safe for the scheduler.
func TestVideoTrackingQualityAcrossFrames(t *testing.T) {
	frames, truths, err := SynthesizeVideo(DefaultVideoSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, params := range []Params{FineParams(), CoarseParams()} {
		var sumF1 float64
		for f := range frames {
			rt, err := calypso.New(calypso.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunScored(rt, frames[f], params, truths[f], 5)
			if err != nil {
				t.Fatalf("frame %d: %v", f, err)
			}
			sumF1 += res.Quality.F1
		}
		mean := sumF1 / float64(len(frames))
		// The coarse configuration trades a little quality for its cheaper
		// sampling; both must stay usable across the whole sequence.
		if mean < 0.65 {
			t.Errorf("granularity %d: mean F1 over sequence = %.3f", params.Granularity, mean)
		}
	}
}
