package durable

import (
	"fmt"
	"testing"

	"milan/internal/durable/vfs"
	"milan/internal/resbroker"
)

// TestPlaneCapacityRequiresShards: the capacity API is federated-only.
func TestPlaneCapacityRequiresShards(t *testing.T) {
	p, _ := openPlane(t, vfs.NewMem(), 1, StoreOptions{})
	defer p.Close()
	if _, err := p.SetTotalCapacity(20); err == nil {
		t.Fatal("SetTotalCapacity on a monolithic plane must fail")
	}
	if _, err := p.Rebalance(0); err == nil {
		t.Fatal("Rebalance on a monolithic plane must fail")
	}
	if _, err := p.AttachBroker(resbroker.New(nil), 0); err == nil {
		t.Fatal("AttachBroker on a monolithic plane must fail")
	}
}

// TestPlaneSetTotalCapacityJournaled: every single-processor resize is a
// journaled record, and a reopened plane recovers the exact post-resize
// shard shapes.
func TestPlaneSetTotalCapacityJournaled(t *testing.T) {
	mem := vfs.NewMem()
	p, _ := openPlane(t, mem, 4, StoreOptions{})

	before := p.DurableLSN()
	got, err := p.SetTotalCapacity(24)
	if err != nil || got != 24 {
		t.Fatalf("SetTotalCapacity(24) = %d, %v", got, err)
	}
	if p.Fed().Procs() != 24 {
		t.Fatalf("live procs = %d, want 24", p.Fed().Procs())
	}
	// Growth from 16 to 24 is 8 single-processor resizes = 8 records.
	if appended := p.DurableLSN() - before; appended != 8 {
		t.Fatalf("grow by 8 appended %d records, want 8", appended)
	}

	// Shrink with no reservations succeeds and journals too.
	if got, err = p.SetTotalCapacity(20); err != nil || got != 20 {
		t.Fatalf("SetTotalCapacity(20) = %d, %v", got, err)
	}

	want := p.ExportState()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, _ := openPlane(t, mem, 4, StoreOptions{})
	defer p2.Close()
	if p2.Fed().Procs() != 20 {
		t.Fatalf("recovered procs = %d, want 20", p2.Fed().Procs())
	}
	gotSt := p2.ExportState()
	if err := DiffStates(&gotSt, &want); err != nil {
		t.Fatalf("recovered state diverged after capacity churn: %v", err)
	}
}

// TestPlaneBrokerCapacityRecovered: the ROADMAP-item-1 gap — broker pool
// churn must flow through the journal, so a crashed-and-recovered plane
// reports exactly the live pool's capacity.
func TestPlaneBrokerCapacityRecovered(t *testing.T) {
	mem := vfs.NewMem()
	p, _ := openPlane(t, mem, 2, StoreOptions{Sync: SyncAlways})

	broker := resbroker.New(nil)
	// Seed the pool at the plane's current size so the follower starts
	// aligned (AttachBroker tracks deltas from the attach point).
	if err := broker.Register(resbroker.Resource{ID: "seed", Procs: 16, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.AttachBroker(broker, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Churn: machines join and leave; the plane follows every change.
	for i := 0; i < 3; i++ {
		if err := broker.Register(resbroker.Resource{ID: fmt.Sprintf("m%d", i), Procs: 4, Speed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := broker.Deregister("m1"); err != nil {
		t.Fatal(err)
	}
	wantProcs := broker.TotalProcs()
	if p.Fed().Procs() != wantProcs {
		t.Fatalf("live plane procs = %d, broker pool = %d", p.Fed().Procs(), wantProcs)
	}

	// Interleave admissions so capacity records sit between decisions.
	drive(t, p.Observe, p.Negotiate, planeStream(40, 3))

	// Hard crash (no Close): recovery must reconstruct the pool-following
	// capacity from the journal alone.
	want := p.ExportState()
	mem.Crash()
	p2, _ := openPlane(t, mem, 2, StoreOptions{})
	defer p2.Close()
	if got := p2.Fed().Procs(); got != wantProcs {
		t.Fatalf("recovered capacity = %d, live broker pool = %d", got, wantProcs)
	}
	gotSt := p2.ExportState()
	if err := DiffStates(&gotSt, &want); err != nil {
		t.Fatalf("recovered state diverged from pre-crash plane: %v", err)
	}
}
