package durable

import (
	"fmt"
	"testing"

	"milan/internal/core"
)

// benchLog builds a committed event log of n records (alternating observe
// and admit, the recovery-dominant mix) plus the genesis state it applies
// to.  The log is deterministic so ns/op and allocs/op are comparable
// across runs.
func benchLog(n int) (State, []Record) {
	gen, err := Genesis(16, 2, 0)
	if err != nil {
		panic(err)
	}
	recs := make([]Record, 0, n)
	now := 0.0
	lsn := uint64(0)
	for i := 0; len(recs) < n; i++ {
		now += 0.25
		lsn++
		recs = append(recs, Record{Kind: KindObserve, LSN: lsn, Now: now})
		if len(recs) == n {
			break
		}
		lsn++
		start := now
		recs = append(recs, Record{
			Kind: KindAdmit, LSN: lsn, Shard: i % 2, JobID: i + 1,
			Chain: i % 3, Quality: 0.5 + float64(i%4)*0.125,
			Tunable: i%2 == 0, Tenant: "bench", Class: i % 3,
			// Each shard sees one admit per 1.0 time units and each job
			// spans 0.8, so the synthetic log never over-reserves.
			Tasks: []core.TaskPlacement{
				{Task: 0, Procs: 1 + i%2, Start: start, Finish: start + 0.4},
				{Task: 1, Procs: 1, Start: start + 0.4, Finish: start + 0.8},
			},
		})
	}
	return gen, recs
}

// BenchmarkReplay measures log replay — the recovery hot path — at 1k,
// 10k and 100k committed records.  Replay cost bounds restart downtime,
// so this is the number the snapshot cadence trades against.
func BenchmarkReplay(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			gen, recs := benchLog(n)
			// One untimed warmup so lazy one-time allocations don't smear
			// a +-1 jitter into allocs/op at low iteration counts.
			if _, err := replayState(gen, recs, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := replayState(gen, recs, nil)
				if err != nil {
					b.Fatal(err)
				}
				if st.LSN != recs[len(recs)-1].LSN {
					b.Fatalf("replay stopped at lsn %d", st.LSN)
				}
			}
		})
	}
}

// BenchmarkSnapshotEncode measures snapshot serialization, the other half
// of the recovery cost model (write amplification per compaction).
func BenchmarkSnapshotEncode(b *testing.B) {
	gen, recs := benchLog(10_000)
	st, err := replayState(gen, recs, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := EncodeSnapshot(&st); len(buf) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
