package durable

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"milan/internal/core"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindAdmit, LSN: 1, Shard: 2, JobID: 7, Chain: 1, Quality: 0.875, Tunable: true,
			Tenant: "acme", Class: 2, Tasks: []core.TaskPlacement{
				{Task: 0, Procs: 4, Start: 1.5, Finish: 3.25},
				{Task: 1, Procs: 8, Start: 3.25, Finish: 5.5},
			}},
		{Kind: KindObserve, LSN: 2, Now: 42.125},
		{Kind: KindCapacity, LSN: 3, Shard: 1, Procs: 9},
		{Kind: KindReject, LSN: 4, JobID: 8, Tenant: "free", Class: 0},
		{Kind: KindShed, LSN: 5, JobID: 9, Tenant: "noisy", Class: 3, Reason: "tenant-quota"},
		{Kind: KindComplete, LSN: 6, Shard: 2, JobID: 7, Finish: 5.5},
		{Kind: KindRenegotiate, LSN: 7, Shard: 0, JobID: 11, Chain: 0, Quality: 0.5,
			Tasks: []core.TaskPlacement{{Task: 0, Procs: 2, Start: 6, Finish: 8}}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		payload := EncodeRecord(&want)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

func TestRecordDecodeRejectsCorruption(t *testing.T) {
	r := sampleRecords()[0]
	payload := EncodeRecord(&r)

	// Every truncation must error, never panic.
	for n := 0; n < len(payload); n++ {
		if _, err := DecodeRecord(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	// Trailing garbage must error.
	if _, err := DecodeRecord(append(append([]byte(nil), payload...), 0xFF)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
	// Unknown kind must error.
	bad := append([]byte(nil), payload...)
	bad[0] = 200
	if _, err := DecodeRecord(bad); err == nil {
		t.Fatal("unknown kind decoded cleanly")
	}
	// An insane task count must be rejected before allocating.
	bad = append([]byte(nil), payload...)
	// Task count sits right after kind+lsn+shard+jobid+chain+quality+
	// tunable+tenant(len+4)+class.
	off := 1 + 8 + 4 + 8 + 4 + 8 + 1 + 4 + 4 + 4
	for i := 0; i < 4; i++ {
		bad[off+i] = 0xFF
	}
	if _, err := DecodeRecord(bad); err == nil || !strings.Contains(err.Error(), "task count") {
		t.Fatalf("insane task count: got %v", err)
	}
}

func TestFrameRoundTripAndTorn(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {}}
	for _, p := range payloads {
		if _, err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	r := bytes.NewReader(data)
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}

	// A frame cut mid-payload is torn, not EOF.
	r = bytes.NewReader(data[:len(data)-9-2]) // into frame 2's header
	if _, err := readFrame(r); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(r); err == nil || err == io.EOF {
		t.Fatalf("torn frame: got %v", err)
	}

	// A flipped payload bit fails the checksum.
	flipped := append([]byte(nil), data...)
	flipped[9] ^= 0x01 // first byte of frame 1's payload
	r = bytes.NewReader(flipped)
	if _, err := readFrame(r); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit flip: got %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st, err := Genesis(10, 3, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := []int{st.Shards[0].Profile.Capacity, st.Shards[1].Profile.Capacity, st.Shards[2].Profile.Capacity}; !reflect.DeepEqual(got, []int{4, 3, 3}) {
		t.Fatalf("genesis partition = %v", got)
	}
	st.LSN = 99
	st.Now = 17.25
	st.Shards[0].Stats = core.Stats{Admitted: 3, Rejected: 1, ReservedArea: 12.5, QualitySum: 2.25,
		ChainsTried: 9, HolesProbed: 40, PlanFailures: 2, TunableChosen: []int{1, 2}}
	st.Shards[1].Profile.Times = []float64{2.5, 5, 8}
	st.Shards[1].Profile.Used = []int{1, 2, 0}
	st.Shards[1].Profile.TrimmedBusy = 3.75
	st.Grants = []GrantRecord{{JobID: 4, Shard: 1, Chain: 1, Quality: 0.75, Tunable: true,
		Tenant: "t", Class: 1, Tasks: []core.TaskPlacement{{Task: 0, Procs: 2, Start: 5, Finish: 8}}}}

	payload := EncodeSnapshot(&st)
	got, err := DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("snapshot round trip:\n got %+v\nwant %+v", got, st)
	}
	if err := DiffStates(&got, &st); err != nil {
		t.Fatalf("diff of identical states: %v", err)
	}

	for n := 0; n < len(payload); n++ {
		if _, err := DecodeSnapshot(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), payload...), 1)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}

func TestGrantFinishAndPrune(t *testing.T) {
	st := State{Now: 10, Grants: []GrantRecord{
		{JobID: 3, Tasks: []core.TaskPlacement{{Finish: 9}, {Finish: 12}}},
		{JobID: 1, Tasks: []core.TaskPlacement{{Finish: 10}}},
		{JobID: 2, Tasks: []core.TaskPlacement{{Finish: 10.5}}},
	}}
	st.Prune()
	ids := make([]int, len(st.Grants))
	for i, g := range st.Grants {
		ids[i] = g.JobID
	}
	// Job 1 finished exactly at now (fully elapsed); 2 and 3 live, sorted.
	if !reflect.DeepEqual(ids, []int{2, 3}) {
		t.Fatalf("pruned grants = %v, want [2 3]", ids)
	}
	if f := st.Grants[1].Finish(); f != 12 {
		t.Fatalf("finish = %v, want 12", f)
	}
}

func TestFloatBitExactness(t *testing.T) {
	// The codec must preserve exact bits, including negative zero and
	// values that decimal round-tripping would mangle.
	vals := []float64{0, math.Copysign(0, -1), 0.1, 1.0 / 3.0, math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, v := range vals {
		r := Record{Kind: KindObserve, LSN: 1, Now: v}
		got, err := DecodeRecord(EncodeRecord(&r))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Now) != math.Float64bits(v) {
			t.Fatalf("bits differ for %v", v)
		}
	}
}
