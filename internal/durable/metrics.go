package durable

import "milan/internal/obs"

// Metrics is the durability layer's observability surface, resolved once
// against an obs.Registry under the durable_ namespace so the append path
// only touches atomics.
type Metrics struct {
	Appends       *obs.Counter // records appended to the log
	Fsyncs        *obs.Counter // file syncs issued by the append path
	AppendLatency *obs.Stat    // seconds per append (write + policy sync)

	Snapshots        *obs.Counter // snapshots written (including on open)
	SnapshotBytes    *obs.Gauge   // size of the newest snapshot file
	SnapshotDuration *obs.Stat    // seconds per snapshot compaction

	RecoveryReplay  *obs.Stat    // seconds spent replaying the log at open
	RecoveryRecords *obs.Counter // log records replayed at open
	TornTails       *obs.Counter // recoveries that stopped at a torn tail
	Poisoned        *obs.Gauge   // 1 when the store refused further writes
}

// NewMetrics resolves the durability instruments in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Appends:          reg.Counter("durable_appends"),
		Fsyncs:           reg.Counter("durable_fsyncs"),
		AppendLatency:    reg.Stat("durable_append_seconds"),
		Snapshots:        reg.Counter("durable_snapshots"),
		SnapshotBytes:    reg.Gauge("durable_snapshot_bytes"),
		SnapshotDuration: reg.Stat("durable_snapshot_seconds"),
		RecoveryReplay:   reg.Stat("durable_recovery_replay_seconds"),
		RecoveryRecords:  reg.Counter("durable_recovery_records"),
		TornTails:        reg.Counter("durable_torn_tails"),
		Poisoned:         reg.Gauge("durable_poisoned"),
	}
	reg.Describe("durable_appends", "WAL records appended")
	reg.Describe("durable_fsyncs", "file syncs issued by the WAL append path")
	reg.Describe("durable_append_seconds", "seconds per WAL append (write plus policy sync)")
	reg.Describe("durable_snapshots", "durable snapshots written (including at open)")
	reg.Describe("durable_snapshot_bytes", "size in bytes of the newest snapshot file")
	reg.Describe("durable_snapshot_seconds", "seconds per snapshot compaction")
	reg.Describe("durable_recovery_replay_seconds", "seconds replaying the WAL at open")
	reg.Describe("durable_recovery_records", "WAL records replayed at open")
	reg.Describe("durable_torn_tails", "recoveries that stopped at a torn or corrupt log tail")
	reg.Describe("durable_poisoned", "1 when the store has refused further writes after an I/O error")
	return m
}
