package durable

import (
	"errors"
	"testing"

	"milan/internal/core"
	"milan/internal/durable/vfs"
	"milan/internal/obs"
	"milan/internal/qos"
	"milan/internal/qos/qosnet"
	"milan/internal/workload"
)

// The durable plane must be a drop-in arbitrator for qosnet servers.
var _ qosnet.Arbitrator = (*Plane)(nil)

func planeStream(n int, seed int64) []core.Job {
	p := workload.FigureJob{X: 4, T: 25, Alpha: 0.25, Laxity: 0.5}
	return p.Stream(workload.NewPoisson(6, seed), n, workload.Tunable)
}

func openPlane(t *testing.T, fs vfs.FS, shards int, opts StoreOptions) (*Plane, Recovered) {
	t.Helper()
	p, rec, err := OpenPlane(Config{
		FS: fs, Dir: "log", Procs: 16, Shards: shards, ProbeK: 1,
		Store: opts,
	})
	if err != nil {
		t.Fatalf("open plane: %v", err)
	}
	return p, rec
}

// drive pushes jobs through any negotiator-shaped plane, observing each
// release first (the sim loop's discipline), and returns granted job IDs.
func drive(t *testing.T, observe func(float64), negotiate func(core.Job) (*qos.Grant, error), jobs []core.Job) []int {
	t.Helper()
	var granted []int
	for _, job := range jobs {
		observe(job.Release)
		g, err := negotiate(job)
		if err != nil {
			if !errors.Is(err, qos.ErrRejected) {
				t.Fatalf("job %d: %v", job.ID, err)
			}
			continue
		}
		granted = append(granted, g.JobID)
	}
	return granted
}

// TestPlaneMatchesUndurableArbitrator: journaling must not change a single
// decision.  The durable monolith and a plain qos.Arbitrator see the same
// stream and must end bitwise-identical.
func TestPlaneMatchesUndurableArbitrator(t *testing.T) {
	jobs := planeStream(200, 7)
	p, _ := openPlane(t, vfs.NewMem(), 1, StoreOptions{})
	ref, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	gp := drive(t, p.Observe, p.Negotiate, jobs)
	gr := drive(t, ref.Observe, ref.Negotiate, jobs)
	if len(gp) != len(gr) {
		t.Fatalf("durable granted %d, reference granted %d", len(gp), len(gr))
	}
	st := p.ExportState()
	refSt := ref.ExportState()
	want := State{Now: refSt.Now, Shards: []core.SchedulerState{refSt.Sched}, Grants: st.Grants}
	if err := DiffStates(&st, &want); err != nil {
		t.Fatalf("durable plane diverged from plain arbitrator: %v", err)
	}
}

// TestPlaneReopenIsExact: close and reopen at any point; the recovered
// plane must be bitwise-identical to the one that kept running, and must
// keep making identical decisions afterwards.
func TestPlaneReopenIsExact(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, snapEvery := range []int{4, 1 << 20} {
			jobs := planeStream(300, 11)
			mem := vfs.NewMem()
			p, _ := openPlane(t, mem, shards, StoreOptions{SnapshotEvery: snapEvery})
			ref, _, err := OpenPlane(Config{FS: vfs.NewMem(), Dir: "ref", Procs: 16, Shards: shards, ProbeK: 1,
				Store: StoreOptions{SnapshotEvery: snapEvery}})
			if err != nil {
				t.Fatal(err)
			}

			cut := 170
			drive(t, p.Observe, p.Negotiate, jobs[:cut])
			drive(t, ref.Observe, ref.Negotiate, jobs[:cut])
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			p2, rec := openPlane(t, mem, shards, StoreOptions{SnapshotEvery: snapEvery})
			got := p2.ExportState()
			want := ref.ExportState()
			if err := DiffStates(&got, &want); err != nil {
				t.Fatalf("shards=%d snapEvery=%d: recovered state diverged: %v (recovery %+v)",
					shards, snapEvery, err, rec)
			}

			// The recovered plane keeps deciding identically.
			gp := drive(t, p2.Observe, p2.Negotiate, jobs[cut:])
			gr := drive(t, ref.Observe, ref.Negotiate, jobs[cut:])
			if len(gp) != len(gr) {
				t.Fatalf("shards=%d: post-recovery grants %d vs %d", shards, len(gp), len(gr))
			}
			got, want = p2.ExportState(), ref.ExportState()
			if err := DiffStates(&got, &want); err != nil {
				t.Fatalf("shards=%d: post-recovery divergence: %v", shards, err)
			}
		}
	}
}

// TestPlaneCrashLosesNothingUnderSyncAlways: a hard crash (no Close) after
// every ack must preserve every acknowledged grant.
func TestPlaneCrashLosesNothingUnderSyncAlways(t *testing.T) {
	jobs := planeStream(150, 13)
	mem := vfs.NewMem()
	p, _ := openPlane(t, mem, 2, StoreOptions{Sync: SyncAlways, SnapshotEvery: 8})
	drive(t, p.Observe, p.Negotiate, jobs)
	want := p.ExportState()
	mem.Crash()

	p2, _ := openPlane(t, mem, 2, StoreOptions{})
	got := p2.ExportState()
	if err := DiffStates(&got, &want); err != nil {
		t.Fatalf("crash lost state under SyncAlways: %v", err)
	}
}

// TestPlaneCompletionSurvivesRecovery: completed grants leave the live set
// durably.
func TestPlaneCompletionSurvivesRecovery(t *testing.T) {
	jobs := planeStream(40, 17)
	mem := vfs.NewMem()
	p, _ := openPlane(t, mem, 1, StoreOptions{})
	granted := drive(t, p.Observe, p.Negotiate, jobs)
	if len(granted) < 2 {
		t.Fatalf("want at least 2 grants, got %d", len(granted))
	}
	done := granted[0]
	if err := p.JobCompleted(done, p.Now()); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	p2, _ := openPlane(t, mem, 1, StoreOptions{})
	for _, g := range p2.Grants() {
		if g.JobID == done {
			t.Fatalf("completed job %d reappeared as a live grant after recovery", done)
		}
	}
}

// TestShedderNeverResurrectsSheds is the shedder x recovery interlock:
// jobs refused by admission fairness are journaled as sheds and must
// never reappear as committed grants after crash recovery.
func TestShedderNeverResurrectsSheds(t *testing.T) {
	jobs := planeStream(250, 19)
	mem := vfs.NewMem()
	shed := &qos.ShedConfig{
		Capacity:     16,
		Horizon:      50,
		DefaultQuota: 0.2, // tight quota: plenty of sheds
	}
	p, _, err := OpenPlane(Config{
		FS: mem, Dir: "log", Procs: 16, Shards: 2, ProbeK: 1,
		Store: StoreOptions{SnapshotEvery: 16},
		Shed:  shed,
	})
	if err != nil {
		t.Fatal(err)
	}
	shedIDs := map[int]bool{}
	var acked []int
	for _, job := range jobs {
		p.Observe(job.Release)
		g, err := p.Negotiate(job)
		switch {
		case err == nil:
			acked = append(acked, g.JobID)
			if int(p.DurableLSN()) == 0 {
				t.Fatal("ack before anything durable")
			}
		case errors.Is(err, qos.ErrShed):
			shedIDs[job.ID] = true
		case errors.Is(err, qos.ErrRejected):
		default:
			t.Fatalf("job %d: %v", job.ID, err)
		}
	}
	if len(shedIDs) == 0 {
		t.Fatal("workload produced no sheds; tighten the quota")
	}
	want := p.ExportState()
	mem.Crash()

	p2, rec, err := OpenPlane(Config{
		FS: mem, Dir: "log", Procs: 16, Shards: 2, ProbeK: 1, Shed: shed,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := p2.ExportState()
	if err := DiffStates(&got, &want); err != nil {
		t.Fatalf("recovery diverged: %v", err)
	}
	for _, g := range p2.Grants() {
		if shedIDs[g.JobID] {
			t.Fatalf("shed job %d reappeared as a committed grant after replay", g.JobID)
		}
	}
	if rec.Torn {
		t.Fatal("unexpected torn tail under SyncAlways")
	}
}

// TestPlanePoisonedRefusesDecisions: after an append failure the plane
// fails fast instead of diverging memory from log.
func TestPlanePoisonedRefusesDecisions(t *testing.T) {
	boom := errors.New("dead disk")
	ft := vfs.NewFault(vfs.NewMem())
	p, _ := openPlane(t, ft, 1, StoreOptions{})
	jobs := planeStream(10, 23)
	drive(t, p.Observe, p.Negotiate, jobs[:3])

	ft.SetWriteError(boom, 0)
	var failedAt int
	for _, job := range jobs[3:] {
		if _, err := p.Negotiate(job); err != nil && !errors.Is(err, qos.ErrRejected) {
			failedAt = job.ID
			break
		}
	}
	if failedAt == 0 {
		t.Fatal("no negotiate failed under write fault")
	}
	if p.Err() == nil {
		t.Fatal("plane not poisoned after append failure")
	}
	if _, err := p.Negotiate(jobs[len(jobs)-1]); err == nil || errors.Is(err, qos.ErrRejected) {
		t.Fatalf("poisoned plane kept deciding: %v", err)
	}
}

// TestPlaneMetricsPopulated: the durability instruments move.
func TestPlaneMetricsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	mem := vfs.NewMem()
	p, _, err := OpenPlane(Config{
		FS: mem, Dir: "log", Procs: 16, Shards: 1,
		Store: StoreOptions{SnapshotEvery: 8}, Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, p.Observe, p.Negotiate, planeStream(60, 29))
	if met.Appends.Value() == 0 || met.Fsyncs.Value() == 0 {
		t.Fatalf("append instruments flat: appends=%d fsyncs=%d", met.Appends.Value(), met.Fsyncs.Value())
	}
	if met.Snapshots.Value() < 2 { // one at open, more from cadence
		t.Fatalf("snapshots = %d", met.Snapshots.Value())
	}
	if met.SnapshotBytes.Value() <= 0 {
		t.Fatal("snapshot size gauge flat")
	}
	mem.Crash()
	if _, _, err := OpenPlane(Config{FS: mem, Dir: "log", Procs: 16, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if met.RecoveryRecords.Value() == 0 && met.Snapshots.Value() < 3 {
		t.Fatal("recovery instruments flat")
	}
}

// TestPlaneRebalanceJournalsCapacity: a rebalancer migration on the
// wrapped federated plane lands in the journal and survives recovery.
func TestPlaneRebalanceJournalsCapacity(t *testing.T) {
	mem := vfs.NewMem()
	p, _ := openPlane(t, mem, 4, StoreOptions{})
	// Load shard-asymmetric work through the router, then move capacity.
	drive(t, p.Observe, p.Negotiate, planeStream(80, 31))
	fa := p.Fed()
	if fa == nil {
		t.Fatal("sharded plane did not wrap a federated arbitrator")
	}
	before := fa.ShardProcs()
	moved := fa.Rebalancer().RebalanceOnce()
	if !moved {
		t.Skip("no migration possible on this workload")
	}
	want := p.ExportState()
	mem.Crash()
	p2, _ := openPlane(t, mem, 4, StoreOptions{})
	got := p2.ExportState()
	if err := DiffStates(&got, &want); err != nil {
		t.Fatalf("capacity move lost in recovery: %v (procs before %v)", err, before)
	}
}
