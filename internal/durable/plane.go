package durable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"milan/internal/core"
	"milan/internal/durable/vfs"
	"milan/internal/fed"
	"milan/internal/obs"
	"milan/internal/obs/latency/phase"
	"milan/internal/qos"
	"milan/internal/resbroker"
)

// Config configures a durable admission plane.
type Config struct {
	// FS is the filesystem seam (vfs.OS{} for production).
	FS vfs.FS
	// Dir is the log directory; created if absent.
	Dir string
	// Procs is the machine size used when the directory holds no prior
	// state (required); a recovered plane keeps its recovered shape.
	Procs int
	// Shards is the number of admission shards (default 1 = monolithic
	// qos.Arbitrator; more = federated plane).
	Shards int
	// ProbeK is the federated router's probe fan-out (fed.Config.ProbeK).
	ProbeK int
	// Origin is the schedule start time for a genesis plane.
	Origin float64
	// Options is the scheduler policy (also used for replay).
	Options *core.Options
	// Store tunes the log (sync policy, snapshot cadence).
	Store StoreOptions
	// Shed, if set, wires a qos.Shedder in front of admission; shed
	// refusals are journaled so recovery can prove they never became
	// grants.
	Shed *qos.ShedConfig
	// Metrics, if set, receives durability instrumentation.
	Metrics *Metrics
	// Tracer, if set, is handed to the federated router for admission
	// spans (route/plan/reserve); the durability layer itself reports
	// through Metrics.
	Tracer *obs.Tracer
	// KeepHistory and Observer pass through to the wrapped arbitrator.
	KeepHistory bool
	Observer    func(qos.Decision)
}

// Plane is a durable admission plane: a qos.Arbitrator (one shard) or
// fed.Arbitrator (many) whose every committed decision is journaled to a
// write-ahead log before it is acknowledged.  It implements the same
// agent-facing surface (qosnet.Arbitrator), so servers and workloads run
// against it unchanged.
//
// The plane serializes decisions under one lock: the log order IS the
// decision order, which is what makes replay-on-open recovery bit-exact.
// The price is monolithic concurrency even over a sharded plane — the
// fsync on the commit path dominates anyway.
type Plane struct {
	mu    sync.Mutex
	store *Store
	mono  *qos.Arbitrator
	fed   *fed.Arbitrator
	shed  *qos.Shedder
	now   float64

	grants   map[int]GrantRecord
	lastShed qos.ShedDecision
	// rec is the in-flight latency record of the decision currently
	// holding the plane lock (decisions are serialized, so one slot
	// suffices); it lets the shedder-wrapped path reach the timer without
	// widening the qos.Negotiator interface the shedder speaks.
	rec *phase.Rec
}

// planeInner is the negotiator the shedder wraps: admission plus
// journaling, under the plane lock the caller already holds.
type planeInner struct{ p *Plane }

func (pi planeInner) Negotiate(job core.Job) (*qos.Grant, error) {
	return pi.p.negotiateLocked(job, pi.p.rec)
}

// OpenPlane recovers (or creates) a durable plane from cfg.Dir.
func OpenPlane(cfg Config) (*Plane, Recovered, error) {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	genesis, err := Genesis(cfg.Procs, shards, cfg.Origin)
	if err != nil {
		return nil, Recovered{}, err
	}
	store, rec, err := Open(OpenConfig{
		FS: cfg.FS, Dir: cfg.Dir,
		Genesis: genesis, Options: cfg.Options,
		Store: cfg.Store, Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, Recovered{}, err
	}
	st := &rec.State
	p := &Plane{store: store, now: st.Now, grants: make(map[int]GrantRecord, len(st.Grants))}
	for _, g := range st.Grants {
		p.grants[g.JobID] = g
	}
	if len(st.Shards) == 1 {
		arb, err := qos.NewArbitrator(qos.ArbitratorConfig{
			Procs: st.Shards[0].Profile.Capacity, Origin: cfg.Origin,
			Options: cfg.Options, KeepHistory: cfg.KeepHistory, Observer: cfg.Observer,
		})
		if err != nil {
			store.Close()
			return nil, Recovered{}, err
		}
		if err := arb.RestoreState(qos.ArbitratorState{Now: st.Now, Sched: st.Shards[0]}); err != nil {
			store.Close()
			return nil, Recovered{}, fmt.Errorf("durable: restore arbitrator: %w", err)
		}
		p.mono = arb
	} else {
		fa, err := fed.New(fed.Config{
			Procs: st.Procs(), Shards: len(st.Shards), ProbeK: cfg.ProbeK,
			Origin: cfg.Origin, Options: cfg.Options,
			KeepHistory: cfg.KeepHistory, Observer: cfg.Observer,
			Tracer:        cfg.Tracer,
			OnShardResize: p.onShardResize,
		})
		if err != nil {
			store.Close()
			return nil, Recovered{}, err
		}
		if err := fa.RestoreState(fed.PlaneState{Now: st.Now, Shards: st.Shards}); err != nil {
			store.Close()
			return nil, Recovered{}, fmt.Errorf("durable: restore plane: %w", err)
		}
		p.fed = fa
	}
	if cfg.Shed != nil {
		// The shedder's own accounting (in-flight areas, fairness clocks)
		// is rebuilt empty at open: it is a rate controller, not durable
		// state.  Its refusals ARE durable — each is journaled before the
		// caller sees ErrShed.
		sc := *cfg.Shed
		inner := sc.Observer
		sc.Observer = func(d qos.ShedDecision) {
			p.lastShed = d
			if inner != nil {
				inner(d)
			}
		}
		shed, err := qos.NewShedder(planeInner{p}, sc)
		if err != nil {
			store.Close()
			return nil, Recovered{}, err
		}
		p.shed = shed
	}
	return p, rec, nil
}

// onShardResize journals a rebalancer capacity move.  It fires under the
// shard lock inside a plane-locked operation, so the record lands in the
// plane's decision order.
func (p *Plane) onShardResize(shard, procs int) {
	_, _ = p.store.Append(&Record{Kind: KindCapacity, Shard: shard, Procs: procs})
}

// errMono is returned by the capacity API on a 1-shard plane: capacity
// management rides the federated rebalancer, which a monolithic plane
// does not have.
var errMono = errors.New("durable: capacity management requires a sharded plane (Shards > 1)")

// SetTotalCapacity resizes the sharded plane toward total processors
// under the plane lock, journaling one KindCapacity record per
// single-processor shard resize (the fed rebalancer's unit of work), so
// recovery reconstructs the exact post-resize shard shapes.  Growth
// always succeeds; shrink stops early when no shard can give up a
// processor without preempting a committed reservation, returning the
// achieved total alongside the shortfall error.
func (p *Plane) SetTotalCapacity(total int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fed == nil {
		return 0, errMono
	}
	if err := p.store.Poisoned(); err != nil {
		return p.fed.Procs(), fmt.Errorf("durable: plane poisoned, reopen required: %w", err)
	}
	got, err := p.fed.Rebalancer().SetTotalCapacity(total)
	p.maybeSnapshotLocked()
	return got, err
}

// Rebalance runs up to maxMoves processor migrations (len(shards) when
// maxMoves <= 0) under the plane lock; every move journals its two
// shard resizes before the plane acknowledges anything else.
func (p *Plane) Rebalance(maxMoves int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fed == nil {
		return 0, errMono
	}
	if err := p.store.Poisoned(); err != nil {
		return 0, fmt.Errorf("durable: plane poisoned, reopen required: %w", err)
	}
	moved := p.fed.Rebalancer().Rebalance(maxMoves)
	p.maybeSnapshotLocked()
	return moved, nil
}

// AttachBroker makes the durable plane's total capacity follow a
// resource broker's pool: every machine registration or deregistration
// resizes the plane to the broker's total (suppressed below threshold
// processors; 0 follows every change) and runs a rebalancing pass —
// with every resize journaled, so a crash between broker events
// recovers the exact capacity the live pool had.  The returned stop
// function detaches the subscription's effect.
func (p *Plane) AttachBroker(b *resbroker.Broker, threshold int) (stop func(), err error) {
	if p.fed == nil {
		return nil, errMono
	}
	var stopped atomic.Bool
	last := p.fed.Procs()
	b.Subscribe(func(ev resbroker.Event) {
		if stopped.Load() {
			return
		}
		if ev.Kind != resbroker.EventRegistered && ev.Kind != resbroker.EventDeregistered {
			return
		}
		procs := b.TotalProcs()
		if procs < 1 {
			return
		}
		if diff := procs - last; diff < threshold && diff > -threshold {
			return
		}
		last = procs
		if _, err := p.SetTotalCapacity(procs); err != nil {
			return // partial shrink or poisoned plane; next event retries
		}
		_, _ = p.Rebalance(0)
	})
	return func() { stopped.Store(true) }, nil
}

// Err returns the store's poison error, if any: non-nil means an append
// or snapshot failed, the in-memory plane may be ahead of the log, and
// the plane refuses further decisions until reopened.
func (p *Plane) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Poisoned()
}

// Negotiate runs admission control and journals the outcome.  A grant is
// returned only after its admit record reached the log (and stable
// storage, under SyncAlways); a failed append returns the append error
// and poisons the plane instead of acknowledging.
func (p *Plane) Negotiate(job core.Job) (*qos.Grant, error) {
	return p.NegotiateTimed(job, nil)
}

// NegotiateTimed is Negotiate with latency-phase attribution (rec may be
// nil): plane-lock acquisition counts as route, the wrapped arbitrator
// attributes its own phases, and the WAL append before acknowledgment is
// the journal phase.
func (p *Plane) NegotiateTimed(job core.Job, lrec *phase.Rec) (*qos.Grant, error) {
	p.mu.Lock()
	lrec.Mark(phase.Route)
	defer p.mu.Unlock()
	if err := p.store.Poisoned(); err != nil {
		return nil, fmt.Errorf("durable: plane poisoned, reopen required: %w", err)
	}
	if p.shed == nil {
		return p.negotiateLocked(job, lrec)
	}
	p.lastShed = qos.ShedDecision{}
	p.rec = lrec
	g, err := p.shed.Negotiate(job)
	p.rec = nil
	if err != nil && errors.Is(err, qos.ErrShed) {
		rec := &Record{
			Kind: KindShed, JobID: job.ID,
			Tenant: job.Tenant, Class: job.Class,
			Reason: string(p.lastShed.Reason),
		}
		if _, aerr := p.store.Append(rec); aerr != nil {
			return nil, aerr
		}
		lrec.Mark(phase.Journal)
		p.maybeSnapshotLocked()
	}
	return g, err
}

func (p *Plane) negotiateLocked(job core.Job, lrec *phase.Rec) (*qos.Grant, error) {
	var g *qos.Grant
	var err error
	if p.mono != nil {
		g, err = p.mono.NegotiateTimed(job, lrec)
	} else {
		g, err = p.fed.NegotiateTimed(job, lrec)
	}
	if err != nil {
		if errors.Is(err, qos.ErrRejected) {
			// Rejections count on shard 0 in the journal; per-shard
			// rejection attribution is diagnostics, not durable state
			// (the oracle compares plane-merged counters).
			rec := &Record{Kind: KindReject, JobID: job.ID, Tenant: job.Tenant, Class: job.Class}
			if _, aerr := p.store.Append(rec); aerr != nil {
				return nil, aerr
			}
			lrec.Mark(phase.Journal)
			p.maybeSnapshotLocked()
		}
		return nil, err
	}
	rec := &Record{
		Kind: KindAdmit, Shard: g.Shard,
		JobID: g.JobID, Chain: g.Chain,
		Quality: g.Quality, Tunable: job.Tunable(),
		Tenant: job.Tenant, Class: job.Class,
		Tasks: g.Placement.Tasks,
	}
	if _, aerr := p.store.Append(rec); aerr != nil {
		return nil, fmt.Errorf("durable: grant %d committed in memory but not journaled (plane poisoned, reopen required): %w", g.JobID, aerr)
	}
	lrec.Mark(phase.Journal)
	p.grants[g.JobID] = GrantRecord{
		JobID: g.JobID, Shard: g.Shard, Chain: g.Chain,
		Quality: g.Quality, Tunable: job.Tunable(),
		Tenant: job.Tenant, Class: job.Class,
		Tasks: append([]core.TaskPlacement(nil), g.Placement.Tasks...),
	}
	p.maybeSnapshotLocked()
	return g, nil
}

// NegotiateDAG runs DAG admission control, journaling grants.  DAG
// rejections are not journaled (like the planner's work counters they are
// diagnostics; replay does not reconstruct them).
func (p *Plane) NegotiateDAG(job core.DAGJob) (*qos.Grant, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.Poisoned(); err != nil {
		return nil, fmt.Errorf("durable: plane poisoned, reopen required: %w", err)
	}
	var g *qos.Grant
	var err error
	if p.mono != nil {
		g, err = p.mono.NegotiateDAG(job)
	} else {
		g, err = p.fed.NegotiateDAG(job)
	}
	if err != nil {
		return nil, err
	}
	tunable := len(job.Alts) > 1
	rec := &Record{
		Kind: KindAdmit, Shard: g.Shard,
		JobID: g.JobID, Chain: g.Chain,
		Quality: g.Quality, Tunable: tunable,
		Tasks: g.Placement.Tasks,
	}
	if _, aerr := p.store.Append(rec); aerr != nil {
		return nil, fmt.Errorf("durable: grant %d committed in memory but not journaled (plane poisoned, reopen required): %w", g.JobID, aerr)
	}
	p.grants[g.JobID] = GrantRecord{
		JobID: g.JobID, Shard: g.Shard, Chain: g.Chain,
		Quality: g.Quality, Tunable: tunable,
		Tasks: append([]core.TaskPlacement(nil), g.Placement.Tasks...),
	}
	p.maybeSnapshotLocked()
	return g, nil
}

// Observe advances the plane's clock, journaling the advance so replay
// folds elapsed history at exactly the same points the live plane did.
func (p *Plane) Observe(now float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store.Poisoned() != nil || now <= p.now {
		return
	}
	p.now = now
	// Elapsed grants leave the live set exactly as recovery's Prune drops
	// them, so the live grant set and a recovered one always agree.
	for id, g := range p.grants {
		if g.Finish() <= now {
			delete(p.grants, id)
		}
	}
	p.shed.Observe(now)
	if p.mono != nil {
		p.mono.Observe(now)
	} else {
		p.fed.Observe(now)
	}
	if _, err := p.store.Append(&Record{Kind: KindObserve, Now: now}); err != nil {
		return
	}
	p.maybeSnapshotLocked()
}

// JobCompleted journals a granted reservation's completion and releases
// the shedder's in-flight accounting.  Unknown job IDs are a no-op
// (completions can race a snapshot that already pruned the grant).
func (p *Plane) JobCompleted(jobID int, now float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.Poisoned(); err != nil {
		return err
	}
	g, ok := p.grants[jobID]
	if !ok {
		return nil
	}
	p.shed.JobCompleted(jobID, now)
	delete(p.grants, jobID)
	if _, err := p.store.Append(&Record{Kind: KindComplete, Shard: g.Shard, JobID: jobID, Finish: now}); err != nil {
		return err
	}
	p.maybeSnapshotLocked()
	return nil
}

// maybeSnapshotLocked compacts when enough records accumulated.  A
// snapshot failure poisons the store but never revokes an already
// journaled decision.
func (p *Plane) maybeSnapshotLocked() {
	if p.store.ShouldSnapshot() {
		st := p.exportStateLocked()
		_ = p.store.WriteSnapshot(&st)
	}
}

// Snapshot forces a compaction: current state written as the newest
// snapshot, log truncated behind it.
func (p *Plane) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.Poisoned(); err != nil {
		return err
	}
	st := p.exportStateLocked()
	return p.store.WriteSnapshot(&st)
}

func (p *Plane) exportStateLocked() State {
	st := State{LSN: p.store.NextLSN() - 1, Now: p.now}
	if p.mono != nil {
		as := p.mono.ExportState()
		st.Shards = []core.SchedulerState{as.Sched}
	} else {
		fs := p.fed.ExportState()
		st.Shards = fs.Shards
	}
	st.Grants = make([]GrantRecord, 0, len(p.grants))
	for _, g := range p.grants {
		st.Grants = append(st.Grants, g)
	}
	sort.Slice(st.Grants, func(i, j int) bool { return st.Grants[i].JobID < st.Grants[j].JobID })
	return st
}

// ExportState returns the plane's current durable state (tests, oracles).
func (p *Plane) ExportState() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exportStateLocked()
}

// Grants returns the live committed grants, sorted by job ID.
func (p *Plane) Grants() []GrantRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]GrantRecord, 0, len(p.grants))
	for _, g := range p.grants {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Stats returns the plane-wide scheduler counters.
func (p *Plane) Stats() core.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mono != nil {
		return p.mono.Stats()
	}
	return p.fed.Stats()
}

// Utilization returns reserved capacity as a fraction over [origin, horizon].
func (p *Plane) Utilization(origin, horizon float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mono != nil {
		return p.mono.Utilization(origin, horizon)
	}
	return p.fed.Utilization(origin, horizon)
}

// Now returns the last observed time.
func (p *Plane) Now() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.now
}

// Procs returns the plane's total processor count.
func (p *Plane) Procs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mono != nil {
		return p.mono.Procs()
	}
	return p.fed.Procs()
}

// DurableLSN returns the highest LSN known synced to stable storage.
func (p *Plane) DurableLSN() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.DurableLSN()
}

// Shedder returns the wrapped shedder, or nil.
func (p *Plane) Shedder() *qos.Shedder { return p.shed }

// Mono returns the wrapped monolithic arbitrator (nil on a sharded plane).
func (p *Plane) Mono() *qos.Arbitrator { return p.mono }

// Fed returns the wrapped federated arbitrator (nil on a 1-shard plane).
func (p *Plane) Fed() *fed.Arbitrator { return p.fed }

// Close closes the log.  Unsynced records follow the sync policy's fate;
// close does not imply fsync.
func (p *Plane) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Close()
}
