// Package durable is the admission plane's durability layer: an
// append-only write-ahead log of admission/renegotiation/release/shed
// events, periodic capacity-profile snapshots with log truncation, and
// replay-on-open recovery that reconstructs the arbitrator's committed
// state bit-exactly.  All I/O goes through the vfs seam, so the same store
// runs against the real filesystem and against the fault-injecting
// in-memory filesystem the crash-loop harness uses.
//
// The durability contract: a grant is acknowledged to the caller only
// after its admit record is appended (and synced, per the configured sync
// policy).  On an honest disk with SyncAlways, every acknowledged grant
// therefore survives any crash; recovery replays the log onto the newest
// snapshot and yields a scheduler state bitwise-identical to one that
// never crashed (cmd/crashtest proves this under injected write errors,
// unsynced-data loss and fsync/rename lie modes).
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"milan/internal/core"
)

// Kind enumerates the WAL record types.
type Kind uint8

// Record kinds.
const (
	// KindAdmit: a committed grant — the chosen chain and the reservation
	// of every task, verbatim.  Replay re-reserves the placement; it never
	// re-plans, so recovery is exact even if the planner's heuristics
	// change between versions.
	KindAdmit Kind = 1
	// KindObserve: the plane's clock advanced; replay folds elapsed
	// history exactly as the live TrimBefore did.
	KindObserve Kind = 2
	// KindCapacity: a shard was resized (rebalancer migration or operator
	// action).
	KindCapacity Kind = 3
	// KindReject: admission control refused the job (no feasible chain).
	KindReject Kind = 4
	// KindShed: the fairness shedder refused the job before the
	// arbitrator saw it.  Shed jobs must never reappear as grants.
	KindShed Kind = 5
	// KindComplete: a granted reservation finished; the grant leaves the
	// live set.
	KindComplete Kind = 6
	// KindRenegotiate: an in-flight grant's remaining tasks were re-placed
	// (capacity renegotiation); the placement replaces the grant's.
	KindRenegotiate Kind = 7
)

func (k Kind) String() string {
	switch k {
	case KindAdmit:
		return "admit"
	case KindObserve:
		return "observe"
	case KindCapacity:
		return "capacity"
	case KindReject:
		return "reject"
	case KindShed:
		return "shed"
	case KindComplete:
		return "complete"
	case KindRenegotiate:
		return "renegotiate"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one WAL entry.  Which fields are meaningful depends on Kind;
// times and qualities are serialized as raw float64 bits, so replay
// reproduces the exact committed arithmetic.
type Record struct {
	LSN  uint64
	Kind Kind

	Now     float64 // KindObserve
	Shard   int     // KindAdmit/Capacity/Reject/Complete/Renegotiate
	Procs   int     // KindCapacity
	JobID   int     // KindAdmit/Reject/Shed/Complete/Renegotiate
	Chain   int     // KindAdmit/Renegotiate
	Quality float64 // KindAdmit
	Tunable bool    // KindAdmit
	Tenant  string  // KindAdmit/Reject/Shed
	Class   int     // KindAdmit/Reject/Shed
	Reason  string  // KindShed
	Finish  float64 // KindComplete

	Tasks []core.TaskPlacement // KindAdmit/Renegotiate
}

// Decoder hardening limits: a corrupt length or count must produce an
// error, never an allocation stampede or a panic.
const (
	maxFramePayload = 16 << 20
	maxTasks        = 1 << 16
	maxStringLen    = 4096
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendUint64 and friends build payloads in little-endian order.
func appendUint64(b []byte, v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return append(b, buf[:]...)
}

func appendUint32(b []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return append(b, buf[:]...)
}

func appendFloat(b []byte, v float64) []byte { return appendUint64(b, math.Float64bits(v)) }

func appendString(b []byte, s string) []byte {
	if len(s) > maxStringLen {
		s = s[:maxStringLen]
	}
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendTasks(b []byte, tasks []core.TaskPlacement) []byte {
	b = appendUint32(b, uint32(len(tasks)))
	for _, tp := range tasks {
		b = appendUint32(b, uint32(tp.Task))
		b = appendUint32(b, uint32(tp.Procs))
		b = appendFloat(b, tp.Start)
		b = appendFloat(b, tp.Finish)
	}
	return b
}

// EncodeRecord serializes the record payload (no framing).
func EncodeRecord(r *Record) []byte {
	b := make([]byte, 0, 64+32*len(r.Tasks))
	b = append(b, byte(r.Kind))
	b = appendUint64(b, r.LSN)
	switch r.Kind {
	case KindObserve:
		b = appendFloat(b, r.Now)
	case KindCapacity:
		b = appendUint32(b, uint32(r.Shard))
		b = appendUint32(b, uint32(r.Procs))
	case KindAdmit, KindRenegotiate:
		b = appendUint32(b, uint32(r.Shard))
		b = appendUint64(b, uint64(int64(r.JobID)))
		b = appendUint32(b, uint32(r.Chain))
		b = appendFloat(b, r.Quality)
		b = appendBool(b, r.Tunable)
		b = appendString(b, r.Tenant)
		b = appendUint32(b, uint32(int32(r.Class)))
		b = appendTasks(b, r.Tasks)
	case KindReject:
		b = appendUint32(b, uint32(r.Shard))
		b = appendUint64(b, uint64(int64(r.JobID)))
		b = appendString(b, r.Tenant)
		b = appendUint32(b, uint32(int32(r.Class)))
	case KindShed:
		b = appendUint64(b, uint64(int64(r.JobID)))
		b = appendString(b, r.Tenant)
		b = appendUint32(b, uint32(int32(r.Class)))
		b = appendString(b, r.Reason)
	case KindComplete:
		b = appendUint32(b, uint32(r.Shard))
		b = appendUint64(b, uint64(int64(r.JobID)))
		b = appendFloat(b, r.Finish)
	}
	return b
}

// cursor is a bounds-checked little-endian payload reader.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.fail("durable: truncated payload (want %d bytes at %d of %d)", n, c.off, len(c.b))
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// boolean accepts only the canonical encodings 0 and 1, so every cleanly
// decoded payload re-encodes to the exact same bytes.
func (c *cursor) boolean() bool {
	b := c.u8()
	if b > 1 {
		c.fail("durable: non-canonical bool byte %#x", b)
	}
	return b == 1
}

func (c *cursor) str() string {
	n := c.u32()
	if n > maxStringLen {
		c.fail("durable: string length %d exceeds limit %d", n, maxStringLen)
		return ""
	}
	b := c.take(int(n))
	return string(b)
}

func (c *cursor) tasks() []core.TaskPlacement {
	n := c.u32()
	if n > maxTasks {
		c.fail("durable: task count %d exceeds limit %d", n, maxTasks)
		return nil
	}
	// Each task costs 24 bytes; reject counts the remaining bytes cannot
	// hold before allocating.
	if c.err == nil && int(n)*24 > len(c.b)-c.off {
		c.fail("durable: task count %d exceeds remaining payload", n)
		return nil
	}
	out := make([]core.TaskPlacement, 0, n)
	for i := uint32(0); i < n && c.err == nil; i++ {
		out = append(out, core.TaskPlacement{
			Task:   int(int32(c.u32())),
			Procs:  int(c.u32()),
			Start:  c.f64(),
			Finish: c.f64(),
		})
	}
	return out
}

// DecodeRecord parses a record payload.  Truncated, oversized or
// trailing-garbage payloads return an error; no input may panic (the fuzz
// target pins this).
func DecodeRecord(payload []byte) (Record, error) {
	c := &cursor{b: payload}
	var r Record
	r.Kind = Kind(c.u8())
	r.LSN = c.u64()
	switch r.Kind {
	case KindObserve:
		r.Now = c.f64()
	case KindCapacity:
		r.Shard = int(int32(c.u32()))
		r.Procs = int(int32(c.u32()))
	case KindAdmit, KindRenegotiate:
		r.Shard = int(int32(c.u32()))
		r.JobID = int(int64(c.u64()))
		r.Chain = int(int32(c.u32()))
		r.Quality = c.f64()
		r.Tunable = c.boolean()
		r.Tenant = c.str()
		r.Class = int(int32(c.u32()))
		r.Tasks = c.tasks()
	case KindReject:
		r.Shard = int(int32(c.u32()))
		r.JobID = int(int64(c.u64()))
		r.Tenant = c.str()
		r.Class = int(int32(c.u32()))
	case KindShed:
		r.JobID = int(int64(c.u64()))
		r.Tenant = c.str()
		r.Class = int(int32(c.u32()))
		r.Reason = c.str()
	case KindComplete:
		r.Shard = int(int32(c.u32()))
		r.JobID = int(int64(c.u64()))
		r.Finish = c.f64()
	default:
		return Record{}, fmt.Errorf("durable: unknown record kind %d", uint8(r.Kind))
	}
	if c.err != nil {
		return Record{}, c.err
	}
	if c.off != len(payload) {
		return Record{}, fmt.Errorf("durable: %d trailing bytes after %s record", len(payload)-c.off, r.Kind)
	}
	return r, nil
}

// writeFrame writes one length-prefixed, checksummed frame:
// [len u32][crc32c u32][payload].
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if n, err := w.Write(hdr[:]); err != nil {
		return n, err
	}
	n, err := w.Write(payload)
	return 8 + n, err
}

// readFrame reads one frame from r.  io.EOF means a clean end; any other
// error (truncation mid-frame, length over limit, checksum mismatch) means
// the tail is torn or corrupt.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("durable: torn frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxFramePayload {
		return nil, fmt.Errorf("durable: frame length %d exceeds limit %d", length, maxFramePayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("durable: torn frame payload: %w", err)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("durable: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	return payload, nil
}
