package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Mem is a deterministic in-memory filesystem with an explicit durability
// model for crash testing:
//
//   - every write lands in the live view immediately;
//   - File.Sync marks the file's current length as synced (and, when the
//     file's directory entry is already durable, persists the content);
//   - FS.SyncDir makes the directory's current entries durable: files
//     created, renamed or removed since the last SyncDir become permanent,
//     each with content up to its synced length;
//   - Crash discards the live view and rebuilds it from the durable view —
//     exactly what a power failure leaves on a disk that honors fsync.
type Mem struct {
	mu      sync.Mutex
	live    map[string]*memNode
	durable map[string][]byte
	dirs    map[string]bool
	crashes int
}

type memNode struct {
	data      []byte
	syncedLen int
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{
		live:    make(map[string]*memNode),
		durable: make(map[string][]byte),
		dirs:    make(map[string]bool),
	}
}

type memFile struct {
	m    *Mem
	name string
	node *memNode
	pos  int
}

func (f *memFile) Read(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.pos >= len(f.node.data) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.pos:])
	f.pos += n
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if off < 0 || off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	f.node.data = append(f.node.data, p...)
	return len(p), nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Sync() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	f.node.syncedLen = len(f.node.data)
	if _, ok := f.m.durable[f.name]; ok {
		f.m.durable[f.name] = append([]byte(nil), f.node.data...)
	}
	return nil
}

// Create creates or truncates the named file in the live view.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := &memNode{}
	m.live[name] = n
	return &memFile{m: m, name: name, node: n}, nil
}

// Open opens the named file for reading.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.live[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memFile{m: m, name: name, node: n}, nil
}

// OpenAppend opens the named existing file; writes append.
func (m *Mem) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.live[name]
	if !ok {
		return nil, &os.PathError{Op: "openappend", Path: name, Err: os.ErrNotExist}
	}
	return &memFile{m: m, name: name, node: n}, nil
}

// Remove deletes the named file from the live view (durable after SyncDir).
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.live[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.live, name)
	return nil
}

// Rename moves oldname to newname in the live view (durable after SyncDir).
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.live[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.live, oldname)
	m.live[newname] = n
	return nil
}

// MkdirAll records the directory.  Directory creation is modeled as
// immediately durable (the store creates its directory once, at open).
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// ReadDir lists the live file names directly under dir, sorted.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for p := range m.live {
		if filepath.Dir(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat returns the live size of the named file.
func (m *Mem) Stat(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.live[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(n.data)), nil
}

// SyncDir makes dir's current entries durable: every live file under dir
// persists (with content up to its synced length) and every durable entry
// no longer present under dir is forgotten.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := range m.durable {
		if filepath.Dir(p) == dir {
			if _, ok := m.live[p]; !ok {
				delete(m.durable, p)
			}
		}
	}
	for p, n := range m.live {
		if filepath.Dir(p) == dir {
			m.durable[p] = append([]byte(nil), n.data[:n.syncedLen]...)
		}
	}
	return nil
}

// Crash simulates a power failure: the live view is discarded and rebuilt
// from the durable view.  Unsynced bytes, unsynced creates and renames and
// un-SyncDir'd removes all revert.  Open handles belong to the dead
// process and must not be reused.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashes++
	m.live = make(map[string]*memNode, len(m.durable))
	for p, data := range m.durable {
		m.live[p] = &memNode{data: append([]byte(nil), data...), syncedLen: len(data)}
	}
}

// Crashes returns how many crashes have been simulated.
func (m *Mem) Crashes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashes
}

// DurableLen returns the number of bytes of name that would survive a
// crash right now (0 with false when the entry itself would not survive).
func (m *Mem) DurableLen(name string) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.durable[name]
	return int64(len(data)), ok
}
