package vfs

import (
	"os"
	"path/filepath"
	"sort"
)

// OS is the real filesystem.  The zero value is ready to use; paths are
// passed to the operating system unchanged.
type OS struct{}

type osFile struct{ f *os.File }

func (o osFile) Read(p []byte) (int, error)              { return o.f.Read(p) }
func (o osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }
func (o osFile) Write(p []byte) (int, error)             { return o.f.Write(p) }
func (o osFile) Close() error                            { return o.f.Close() }
func (o osFile) Sync() error                             { return o.f.Sync() }

// Create creates or truncates the named file.
func (OS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open opens the named file read-only.
func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenAppend opens the named file so writes append.
func (OS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove deletes the named file.
func (OS) Remove(name string) error { return os.Remove(name) }

// Rename atomically replaces newname with oldname.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// MkdirAll creates dir and any missing parents.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir lists the file names in dir, sorted.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat returns the named file's size.
func (OS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// SyncDir fsyncs the directory so entry changes (creates, renames,
// removes) reach stable storage.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
