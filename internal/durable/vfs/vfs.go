// Package vfs is the durable admission plane's filesystem seam: every byte
// the write-ahead log and snapshot machinery touches goes through the FS
// interface, so the same store code runs against the real filesystem (OS),
// a deterministic in-memory filesystem with an explicit crash/durability
// model (Mem), and a fault-injecting wrapper that simulates failing and
// lying disks (Fault).
//
// The durability model Mem implements — and the store is tested against —
// is the conservative POSIX contract:
//
//   - bytes written to a file survive a crash only up to the last
//     successful File.Sync;
//   - a created, renamed or removed directory entry survives a crash only
//     after a successful FS.SyncDir on its directory;
//   - a crash reverts everything else.
package vfs

import "io"

// File is one open file.  Writes append at the end; reads are positional
// via ReadAt or sequential via Read.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage.  Until it returns
	// successfully, written bytes may vanish in a crash.
	Sync() error
}

// FS is the filesystem surface the durable store needs.  All paths are
// slash-separated; implementations may interpret them relative to a root.
type FS interface {
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// OpenAppend opens the named existing file so subsequent writes append.
	OpenAppend(name string) (File, error)
	// Remove deletes the named file.  Like every namespace change, the
	// deletion is durable only after SyncDir on the parent directory.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's file.  Durable
	// only after SyncDir on the parent directory.
	Rename(oldname, newname string) error
	// MkdirAll creates the directory (and parents) if absent.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Stat returns the named file's size in bytes.
	Stat(name string) (int64, error)
	// SyncDir flushes dir's entries (creates, renames, removes) to stable
	// storage.
	SyncDir(dir string) error
}
