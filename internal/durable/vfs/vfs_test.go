package vfs

import (
	"errors"
	"io"
	"testing"
)

func writeStr(t *testing.T, f File, s string) {
	t.Helper()
	if _, err := f.Write([]byte(s)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, fs FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(data)
}

// TestMemUnsyncedWritesVanish pins the core durability model: bytes
// survive a crash only up to the last Sync, and a file's directory entry
// survives only after SyncDir.
func TestMemUnsyncedWritesVanish(t *testing.T) {
	m := NewMem()
	f, err := m.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeStr(t, f, "hello")

	// Neither synced nor SyncDir'd: the crash erases the file entirely.
	m.Crash()
	if _, err := m.Open("d/a"); err == nil {
		t.Fatal("unsynced, un-SyncDir'd file survived a crash")
	}

	// Synced content but no SyncDir: the entry itself is still volatile.
	f, _ = m.Create("d/a")
	writeStr(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.Open("d/a"); err == nil {
		t.Fatal("file with un-SyncDir'd entry survived a crash")
	}

	// Sync + SyncDir: durable up to the synced length.
	f, _ = m.Create("d/a")
	writeStr(t, f, "hello")
	f.Sync()
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	writeStr(t, f, " world") // unsynced tail
	m.Crash()
	if got := readAll(t, m, "d/a"); got != "hello" {
		t.Fatalf("after crash got %q, want synced prefix %q", got, "hello")
	}
}

// TestMemSyncAfterDurableEntry: once the entry is durable, later Syncs
// persist content without another SyncDir (the append-only WAL pattern).
func TestMemSyncAfterDurableEntry(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("d/wal")
	writeStr(t, f, "aa")
	f.Sync()
	m.SyncDir("d")

	writeStr(t, f, "bb")
	f.Sync() // entry already durable: content persists directly
	m.Crash()
	if got := readAll(t, m, "d/wal"); got != "aabb" {
		t.Fatalf("after crash got %q, want %q", got, "aabb")
	}
}

// TestMemRenameAndRemoveDurability: namespace changes are volatile until
// SyncDir.
func TestMemRenameAndRemoveDurability(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("d/tmp")
	writeStr(t, f, "snap")
	f.Sync()
	m.SyncDir("d")

	// Rename without SyncDir reverts on crash.
	if err := m.Rename("d/tmp", "d/final"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.Open("d/final"); err == nil {
		t.Fatal("un-SyncDir'd rename survived a crash")
	}
	if got := readAll(t, m, "d/tmp"); got != "snap" {
		t.Fatalf("rename source lost: got %q", got)
	}

	// Rename + SyncDir sticks; the old name is gone.
	m.Rename("d/tmp", "d/final")
	m.SyncDir("d")
	m.Crash()
	if got := readAll(t, m, "d/final"); got != "snap" {
		t.Fatalf("renamed file: got %q want %q", got, "snap")
	}
	if _, err := m.Open("d/tmp"); err == nil {
		t.Fatal("rename source still present after durable rename")
	}

	// Remove without SyncDir resurrects on crash; with SyncDir it sticks.
	m.Remove("d/final")
	m.Crash()
	if _, err := m.Open("d/final"); err != nil {
		t.Fatal("un-SyncDir'd remove survived a crash")
	}
	m.Remove("d/final")
	m.SyncDir("d")
	m.Crash()
	if _, err := m.Open("d/final"); err == nil {
		t.Fatal("durably removed file came back")
	}
	if m.Crashes() != 4 {
		t.Fatalf("crashes = %d, want 4", m.Crashes())
	}
}

// TestFaultInjection pins the countdown and lie modes.
func TestFaultInjection(t *testing.T) {
	boom := errors.New("boom")
	ft := NewFault(NewMem())

	f, err := ft.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	ft.SetWriteError(boom, 2)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatalf("write %d should pass the countdown: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("write after countdown: got %v, want boom", err)
	}
	ft.SetWriteError(nil, 0)

	ft.SetSyncError(boom, 0)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync: got %v, want boom", err)
	}
	ft.SetSyncError(nil, 0)

	ft.SetRenameError(boom)
	if err := ft.Rename("d/a", "d/b"); !errors.Is(err, boom) {
		t.Fatalf("rename: got %v, want boom", err)
	}
	ft.SetRenameError(nil)

	// A lying fsync claims success but the bytes stay volatile.
	ft.SetSyncLie(true)
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync should report success, got %v", err)
	}
	ft.SetSyncDirLie(true)
	if err := ft.SyncDir("d"); err != nil {
		t.Fatalf("lying syncdir should report success, got %v", err)
	}
	ft.Crash()
	if _, err := ft.Open("d/a"); err == nil {
		t.Fatal("file survived crash despite lying sync+syncdir")
	}

	c := ft.Counts()
	if c.Writes != 3 || c.Syncs != 2 || c.SyncDirs != 1 || c.Renames != 1 || c.Creates != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestOSRoundTrip sanity-checks the real-filesystem implementation.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	if err := fs.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(dir + "/sub/a")
	if err != nil {
		t.Fatal(err)
	}
	writeStr(t, f, "data")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fs, dir+"/sub/a"); got != "data" {
		t.Fatalf("got %q", got)
	}
	ap, err := fs.OpenAppend(dir + "/sub/a")
	if err != nil {
		t.Fatal(err)
	}
	writeStr(t, ap, "+more")
	ap.Close()
	if got := readAll(t, fs, dir+"/sub/a"); got != "data+more" {
		t.Fatalf("append: got %q", got)
	}
	if err := fs.Rename(dir+"/sub/a", dir+"/sub/b"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(dir + "/sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("readdir = %v", names)
	}
	if sz, err := fs.Stat(dir + "/sub/b"); err != nil || sz != 9 {
		t.Fatalf("stat = %d, %v", sz, err)
	}
	if err := fs.Remove(dir + "/sub/b"); err != nil {
		t.Fatal(err)
	}
}
