package vfs

import "sync"

// Fault wraps an FS with deterministic fault injection for crash testing:
// write and sync calls can be made to fail after a configured countdown,
// and — nastier — Sync/SyncDir can be made to lie, reporting success while
// doing nothing.  A lying fsync is the failure mode that separates
// durability layers that actually work from ones that merely call fsync:
// the crash-loop differential must detect the resulting loss.
type Fault struct {
	inner FS

	mu sync.Mutex
	// writeErr, when non-nil, is returned by every File.Write once
	// writeLeft successful writes have passed.
	writeErr  error
	writeLeft int
	// syncErr, when non-nil, is returned by every File.Sync once syncLeft
	// successful syncs have passed.
	syncErr  error
	syncLeft int
	// renameErr, when non-nil, fails the next Rename.
	renameErr error
	// syncLie makes File.Sync report success without syncing; syncDirLie
	// does the same for FS.SyncDir (so renames and creates silently stay
	// volatile).
	syncLie    bool
	syncDirLie bool

	counts Counts
}

// Counts tallies the operations that reached the fault layer (whether they
// were passed through, failed or swallowed by a lie).
type Counts struct {
	Writes   int64
	Syncs    int64
	SyncDirs int64
	Renames  int64
	Creates  int64
}

// NewFault wraps inner with fault injection; with no faults armed it is a
// transparent (counting) passthrough.
func NewFault(inner FS) *Fault { return &Fault{inner: inner} }

// SetWriteError arms err on writes: the next `after` writes succeed, every
// write after that fails.  err == nil disarms.
func (f *Fault) SetWriteError(err error, after int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr, f.writeLeft = err, after
}

// SetSyncError arms err on file syncs: the next `after` syncs succeed,
// every sync after that fails.  err == nil disarms.
func (f *Fault) SetSyncError(err error, after int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr, f.syncLeft = err, after
}

// SetRenameError arms err on renames.  err == nil disarms.
func (f *Fault) SetRenameError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameErr = err
}

// SetSyncLie makes File.Sync claim success without syncing.
func (f *Fault) SetSyncLie(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncLie = on
}

// SetSyncDirLie makes FS.SyncDir claim success without syncing the
// directory (creates, renames and removes stay volatile).
func (f *Fault) SetSyncDirLie(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncDirLie = on
}

// Counts returns the operation tallies.
func (f *Fault) Counts() Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// Crash forwards to the wrapped filesystem's crash simulation (Mem);
// wrapping a filesystem without one, it panics — crashing the real
// filesystem is the SIGKILL harness's job.
func (f *Fault) Crash() {
	f.inner.(interface{ Crash() }).Crash()
}

type faultFile struct {
	f     *Fault
	inner File
}

func (ff faultFile) Read(p []byte) (int, error)              { return ff.inner.Read(p) }
func (ff faultFile) ReadAt(p []byte, off int64) (int, error) { return ff.inner.ReadAt(p, off) }
func (ff faultFile) Close() error                            { return ff.inner.Close() }

func (ff faultFile) Write(p []byte) (int, error) {
	ff.f.mu.Lock()
	ff.f.counts.Writes++
	if ff.f.writeErr != nil {
		if ff.f.writeLeft <= 0 {
			err := ff.f.writeErr
			ff.f.mu.Unlock()
			return 0, err
		}
		ff.f.writeLeft--
	}
	ff.f.mu.Unlock()
	return ff.inner.Write(p)
}

func (ff faultFile) Sync() error {
	ff.f.mu.Lock()
	ff.f.counts.Syncs++
	if ff.f.syncErr != nil {
		if ff.f.syncLeft <= 0 {
			err := ff.f.syncErr
			ff.f.mu.Unlock()
			return err
		}
		ff.f.syncLeft--
	}
	lie := ff.f.syncLie
	ff.f.mu.Unlock()
	if lie {
		return nil
	}
	return ff.inner.Sync()
}

// Create forwards to the wrapped filesystem, wrapping the file.
func (f *Fault) Create(name string) (File, error) {
	f.mu.Lock()
	f.counts.Creates++
	f.mu.Unlock()
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return faultFile{f: f, inner: file}, nil
}

// Open forwards to the wrapped filesystem, wrapping the file.
func (f *Fault) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return faultFile{f: f, inner: file}, nil
}

// OpenAppend forwards to the wrapped filesystem, wrapping the file.
func (f *Fault) OpenAppend(name string) (File, error) {
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return faultFile{f: f, inner: file}, nil
}

// Remove forwards to the wrapped filesystem.
func (f *Fault) Remove(name string) error { return f.inner.Remove(name) }

// Rename fails when a rename error is armed, else forwards.
func (f *Fault) Rename(oldname, newname string) error {
	f.mu.Lock()
	f.counts.Renames++
	err := f.renameErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// MkdirAll forwards to the wrapped filesystem.
func (f *Fault) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// ReadDir forwards to the wrapped filesystem.
func (f *Fault) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Stat forwards to the wrapped filesystem.
func (f *Fault) Stat(name string) (int64, error) { return f.inner.Stat(name) }

// SyncDir lies or forwards.
func (f *Fault) SyncDir(dir string) error {
	f.mu.Lock()
	f.counts.SyncDirs++
	lie := f.syncDirLie
	f.mu.Unlock()
	if lie {
		return nil
	}
	return f.inner.SyncDir(dir)
}
