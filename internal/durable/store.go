package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"milan/internal/core"
	"milan/internal/durable/vfs"
)

// File format constants.  Segment files are named wal-%016x.log by their
// first LSN; snapshot files snap-%016x.snap by the last LSN they cover.
const (
	walMagic      = "MLNWAL01"
	snapMagic     = "MLNSNP01"
	formatVersion = 1
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged grant can be
	// lost by an honest disk.  The default, and the only policy under
	// which the crash-loop differential guarantees zero loss.
	SyncAlways SyncPolicy = iota
	// SyncEveryN fsyncs after every Nth append (StoreOptions.SyncEvery);
	// a crash may lose up to N-1 acknowledged records.
	SyncEveryN
	// SyncNever leaves syncing to the operating system; a crash may lose
	// any unsynced tail.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEveryN:
		return "every-n"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling of a sync policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "every-n":
		return SyncEveryN, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("durable: unknown sync policy %q (want always, every-n or never)", s)
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the append count between fsyncs under SyncEveryN
	// (default 16).
	SyncEvery int
	// SnapshotEvery is the record count between snapshots suggested by
	// ShouldSnapshot; 0 (default 4096) snapshots are still only taken
	// when the caller asks.
	SnapshotEvery int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 16
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	return o
}

// Recovered reports what Open reconstructed.
type Recovered struct {
	// State is the fully replayed state: newest valid snapshot plus every
	// contiguous, checksum-clean log record after it.
	State State
	// SnapshotLSN is the LSN of the snapshot recovery started from
	// (0 = genesis, no usable snapshot).
	SnapshotLSN uint64
	// Records is the number of log records replayed on top of it.
	Records int
	// Torn reports whether recovery stopped at a torn or corrupt log
	// tail (everything before the tear is recovered; nothing after is).
	Torn bool
	// ReplayDuration is the wall-clock time spent replaying records.
	ReplayDuration time.Duration
}

// Store is the durable admission plane's log: an append-only sequence of
// checksummed records in rotated segment files, compacted by snapshots.
// A store is single-writer; the owning plane serializes appends.
//
// Append errors poison the store: once any write or sync fails, the
// in-memory state may be ahead of the durable state, so every later
// operation fails fast with the original error and the operator must
// reopen (re-running recovery) to continue.
type Store struct {
	fs   vfs.FS
	dir  string
	opts StoreOptions
	core *core.Options
	met  *Metrics

	seg              vfs.File
	segName          string
	nextLSN          uint64
	durableLSN       uint64
	appendsSinceSync int
	recordsSinceSnap int
	poisoned         error
}

// OpenConfig configures Open.
type OpenConfig struct {
	// FS is the filesystem seam (vfs.OS{} for production).
	FS vfs.FS
	// Dir is the log directory; created if absent.
	Dir string
	// Genesis is the plane's empty state, used when the directory holds
	// no usable snapshot (see Genesis).
	Genesis State
	// Options is the scheduler policy used to rebuild shards for replay.
	Options *core.Options
	// Store holds the log's own tuning.
	Store StoreOptions
	// Metrics, when non-nil, receives durability instrumentation.
	Metrics *Metrics
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }
func snapName(lsn uint64) string  { return fmt.Sprintf("snap-%016x.snap", lsn) }
func parseName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// Open recovers the durable state from dir and returns a store positioned
// to append after it.  Recovery is idempotent: Open rewrites a fresh
// snapshot of the recovered state and truncates the log, so a crash at any
// point — including during Open itself — recovers to the same state.
func Open(cfg OpenConfig) (*Store, Recovered, error) {
	if cfg.FS == nil || cfg.Dir == "" {
		return nil, Recovered{}, fmt.Errorf("durable: open needs an FS and a directory")
	}
	if len(cfg.Genesis.Shards) == 0 {
		return nil, Recovered{}, fmt.Errorf("durable: open needs a genesis state (see Genesis)")
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, Recovered{}, fmt.Errorf("durable: create log dir: %w", err)
	}
	s := &Store{fs: cfg.FS, dir: cfg.Dir, opts: cfg.Store.withDefaults(), core: cfg.Options, met: cfg.Metrics}

	base, snapLSN, recs, torn, err := s.load(cfg.Genesis)
	if err != nil {
		return nil, Recovered{}, err
	}
	replayStart := time.Now()
	st, err := replayState(base, recs, cfg.Options)
	if err != nil {
		return nil, Recovered{}, fmt.Errorf("durable: replay: %w", err)
	}
	rec := Recovered{
		State:          st,
		SnapshotLSN:    snapLSN,
		Records:        len(recs),
		Torn:           torn,
		ReplayDuration: time.Since(replayStart),
	}
	if s.met != nil {
		s.met.RecoveryReplay.Observe(rec.ReplayDuration.Seconds())
		s.met.RecoveryRecords.Add(int64(len(recs)))
		if torn {
			s.met.TornTails.Inc()
		}
	}

	// Make recovery the new ground truth: snapshot the recovered state,
	// drop everything else, start a fresh segment.  Until the snapshot's
	// SyncDir lands, the old snapshot+log remain the durable prefix and a
	// crash replays to the identical state.
	s.nextLSN = st.LSN + 1
	s.durableLSN = st.LSN
	snapSt := st
	snapSt.Shards = append([]core.SchedulerState(nil), st.Shards...)
	snapSt.Grants = append([]GrantRecord(nil), st.Grants...)
	if err := s.compactTo(&snapSt); err != nil {
		return nil, Recovered{}, err
	}
	return s, rec, nil
}

// load finds the newest valid snapshot and the contiguous record run after
// it.  A torn or corrupt frame, an LSN gap, or a bad segment header ends
// the run: the durable prefix property says everything before is state,
// everything after is noise.
func (s *Store) load(genesis State) (base State, snapLSN uint64, recs []Record, torn bool, err error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return State{}, 0, nil, false, fmt.Errorf("durable: read log dir: %w", err)
	}
	var snaps, segs []uint64
	for _, name := range names {
		if v, ok := parseName(name, "snap-", ".snap"); ok {
			snaps = append(snaps, v)
		} else if v, ok := parseName(name, "wal-", ".log"); ok {
			segs = append(segs, v)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	base = genesis
	for _, lsn := range snaps {
		st, serr := s.readSnapshot(filepath.Join(s.dir, snapName(lsn)))
		if serr != nil || st.LSN != lsn {
			continue // corrupt or half-written snapshot: fall back to an older one
		}
		base, snapLSN = st, lsn
		break
	}

	expect := base.LSN + 1
	for _, first := range segs {
		data, serr := s.readFile(filepath.Join(s.dir, segName(first)))
		if serr != nil {
			torn = true
			break
		}
		r := bytes.NewReader(data)
		hdrFirst, serr := readSegHeader(r)
		if serr != nil || hdrFirst != first {
			torn = true
			break
		}
		if first > expect {
			torn = true // gap between segments: a whole segment is missing
			break
		}
		bad := false
		for {
			payload, ferr := readFrame(r)
			if ferr == io.EOF {
				break
			}
			if ferr != nil {
				torn, bad = true, true
				break
			}
			rec, derr := DecodeRecord(payload)
			if derr != nil {
				torn, bad = true, true
				break
			}
			if rec.LSN < expect {
				continue // already covered by the snapshot or a prior segment
			}
			if rec.LSN > expect {
				torn, bad = true, true
				break
			}
			recs = append(recs, rec)
			expect++
		}
		if bad {
			break
		}
	}
	return base, snapLSN, recs, torn, nil
}

func (s *Store) readFile(path string) ([]byte, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return data, err
}

func (s *Store) readSnapshot(path string) (State, error) {
	data, err := s.readFile(path)
	if err != nil {
		return State{}, err
	}
	r := bytes.NewReader(data)
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return State{}, fmt.Errorf("durable: truncated snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapMagic {
		return State{}, fmt.Errorf("durable: bad snapshot magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != formatVersion {
		return State{}, fmt.Errorf("durable: snapshot format version %d (want %d)", v, formatVersion)
	}
	payload, err := readFrame(r)
	if err != nil {
		return State{}, err
	}
	if r.Len() != 0 {
		return State{}, fmt.Errorf("durable: %d trailing bytes after snapshot frame", r.Len())
	}
	return DecodeSnapshot(payload)
}

func readSegHeader(r io.Reader) (uint64, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("durable: truncated segment header: %w", err)
	}
	if string(hdr[:8]) != walMagic {
		return 0, fmt.Errorf("durable: bad segment magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != formatVersion {
		return 0, fmt.Errorf("durable: segment format version %d (want %d)", v, formatVersion)
	}
	return binary.LittleEndian.Uint64(hdr[12:20]), nil
}

func writeSegHeader(f vfs.File, first uint64) error {
	var hdr [20]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], formatVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], first)
	_, err := f.Write(hdr[:])
	return err
}

// compactTo writes st as the newest snapshot, rotates to a fresh segment
// starting at nextLSN and deletes every older file.  Crash-safe: the new
// snapshot is written to a temp name, synced, renamed into place and made
// durable by SyncDir before anything old is removed.
func (s *Store) compactTo(st *State) error {
	start := time.Now()
	st.Prune()
	payload := EncodeSnapshot(st)
	name := snapName(st.LSN)
	tmp := name + ".tmp"
	f, err := s.fs.Create(filepath.Join(s.dir, tmp))
	if err != nil {
		return s.poison(fmt.Errorf("durable: create snapshot: %w", err))
	}
	var hdr [12]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], formatVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return s.poison(fmt.Errorf("durable: write snapshot: %w", err))
	}
	n, err := writeFrame(f, payload)
	if err != nil {
		f.Close()
		return s.poison(fmt.Errorf("durable: write snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return s.poison(fmt.Errorf("durable: sync snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		return s.poison(fmt.Errorf("durable: close snapshot: %w", err))
	}
	if err := s.fs.Rename(filepath.Join(s.dir, tmp), filepath.Join(s.dir, name)); err != nil {
		return s.poison(fmt.Errorf("durable: publish snapshot: %w", err))
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return s.poison(fmt.Errorf("durable: sync log dir: %w", err))
	}

	// The snapshot is durable; everything older is now garbage.
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return s.poison(fmt.Errorf("durable: read log dir: %w", err))
	}
	for _, old := range names {
		if old == name {
			continue
		}
		if _, ok := parseName(old, "snap-", ".snap"); ok {
			s.fs.Remove(filepath.Join(s.dir, old))
			continue
		}
		if _, ok := parseName(old, "wal-", ".log"); ok {
			s.fs.Remove(filepath.Join(s.dir, old))
			continue
		}
		if filepath.Ext(old) == ".tmp" {
			s.fs.Remove(filepath.Join(s.dir, old))
		}
	}

	// Fresh segment for the records after the snapshot.
	s.segName = filepath.Join(s.dir, segName(s.nextLSN))
	seg, err := s.fs.Create(s.segName)
	if err != nil {
		return s.poison(fmt.Errorf("durable: create segment: %w", err))
	}
	if err := writeSegHeader(seg, s.nextLSN); err != nil {
		seg.Close()
		return s.poison(fmt.Errorf("durable: write segment header: %w", err))
	}
	if err := seg.Sync(); err != nil {
		seg.Close()
		return s.poison(fmt.Errorf("durable: sync segment: %w", err))
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		seg.Close()
		return s.poison(fmt.Errorf("durable: sync log dir: %w", err))
	}
	s.seg = seg
	s.appendsSinceSync = 0
	s.recordsSinceSnap = 0
	if s.met != nil {
		s.met.SnapshotBytes.Set(float64(12 + n))
		s.met.SnapshotDuration.Observe(time.Since(start).Seconds())
		s.met.Snapshots.Inc()
	}
	return nil
}

func (s *Store) poison(err error) error {
	if s.poisoned == nil {
		s.poisoned = err
		if s.met != nil {
			s.met.Poisoned.Set(1)
		}
	}
	return err
}

// Poisoned returns the first append/snapshot error, or nil.  A poisoned
// store refuses all further writes; reopen to recover.
func (s *Store) Poisoned() error { return s.poisoned }

// Append assigns the record the next LSN, writes it and syncs per the
// configured policy.  On success the record is the durability point for
// its event: the caller may acknowledge.  On failure the store is
// poisoned and the caller must not acknowledge.
func (s *Store) Append(r *Record) (uint64, error) {
	if s.poisoned != nil {
		return 0, fmt.Errorf("durable: store poisoned by earlier error: %w", s.poisoned)
	}
	start := time.Now()
	r.LSN = s.nextLSN
	payload := EncodeRecord(r)
	if _, err := writeFrame(s.seg, payload); err != nil {
		return 0, s.poison(fmt.Errorf("durable: append %s record: %w", r.Kind, err))
	}
	s.nextLSN++
	s.recordsSinceSnap++
	s.appendsSinceSync++
	sync := false
	switch s.opts.Sync {
	case SyncAlways:
		sync = true
	case SyncEveryN:
		sync = s.appendsSinceSync >= s.opts.SyncEvery
	}
	if sync {
		if err := s.seg.Sync(); err != nil {
			return 0, s.poison(fmt.Errorf("durable: sync %s record: %w", r.Kind, err))
		}
		s.durableLSN = r.LSN
		s.appendsSinceSync = 0
		if s.met != nil {
			s.met.Fsyncs.Inc()
		}
	}
	if s.met != nil {
		s.met.Appends.Inc()
		s.met.AppendLatency.Observe(time.Since(start).Seconds())
	}
	return r.LSN, nil
}

// WriteSnapshot compacts the log to st, which must cover every appended
// record (st.LSN == last assigned LSN) — the plane guarantees this by
// snapshotting under its own write lock.
func (s *Store) WriteSnapshot(st *State) error {
	if s.poisoned != nil {
		return fmt.Errorf("durable: store poisoned by earlier error: %w", s.poisoned)
	}
	if st.LSN != s.nextLSN-1 {
		return fmt.Errorf("durable: snapshot at LSN %d does not cover the log head %d", st.LSN, s.nextLSN-1)
	}
	if err := s.compactTo(st); err != nil {
		return err
	}
	s.durableLSN = st.LSN
	return nil
}

// ShouldSnapshot reports whether enough records accumulated since the last
// snapshot to warrant another (per StoreOptions.SnapshotEvery).
func (s *Store) ShouldSnapshot() bool { return s.recordsSinceSnap >= s.opts.SnapshotEvery }

// NextLSN returns the LSN the next append will receive.
func (s *Store) NextLSN() uint64 { return s.nextLSN }

// DurableLSN returns the highest LSN known synced to stable storage.
func (s *Store) DurableLSN() uint64 { return s.durableLSN }

// Close closes the open segment.  It does not sync: the sync policy
// already decided what is durable.
func (s *Store) Close() error {
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// replayState rebuilds schedulers from base and applies recs in log order,
// returning the resulting state.  Replay applies committed decisions
// verbatim — it never re-plans — so the result is bit-exact.
func replayState(base State, recs []Record, opts *core.Options) (State, error) {
	scheds := make([]*core.Scheduler, len(base.Shards))
	for i, sh := range base.Shards {
		sc := core.NewScheduler(max(sh.Profile.Capacity, 1), 0, opts)
		if err := sc.RestoreState(sh); err != nil {
			return State{}, fmt.Errorf("shard %d: %w", i, err)
		}
		scheds[i] = sc
	}
	st := State{
		LSN:    base.LSN,
		Now:    base.Now,
		Grants: append([]GrantRecord(nil), base.Grants...),
	}
	for i := range recs {
		if err := applyRecord(&st, scheds, &recs[i]); err != nil {
			return State{}, fmt.Errorf("record lsn=%d kind=%s: %w", recs[i].LSN, recs[i].Kind, err)
		}
		st.LSN = recs[i].LSN
	}
	st.Shards = make([]core.SchedulerState, len(scheds))
	for i, sc := range scheds {
		st.Shards[i] = sc.ExportState()
	}
	// Mirror the live plane, which drops elapsed grants as its clock
	// advances: prune by the final recovered clock.
	st.Prune()
	return st, nil
}

func applyRecord(st *State, scheds []*core.Scheduler, r *Record) error {
	shardOK := func() error {
		if r.Shard < 0 || r.Shard >= len(scheds) {
			return fmt.Errorf("shard %d out of range (%d shards)", r.Shard, len(scheds))
		}
		return nil
	}
	switch r.Kind {
	case KindObserve:
		if r.Now > st.Now {
			for _, sc := range scheds {
				sc.Observe(r.Now)
			}
			st.Now = r.Now
		}
	case KindCapacity:
		if err := shardOK(); err != nil {
			return err
		}
		if err := scheds[r.Shard].SetCapacity(r.Procs); err != nil {
			return err
		}
	case KindAdmit, KindRenegotiate:
		if err := shardOK(); err != nil {
			return err
		}
		pl := &core.Placement{JobID: r.JobID, Chain: r.Chain, Tasks: r.Tasks}
		if err := scheds[r.Shard].ReplayCommit(pl, r.Quality, r.Tunable); err != nil {
			return err
		}
		g := GrantRecord{
			JobID: r.JobID, Shard: r.Shard, Chain: r.Chain,
			Quality: r.Quality, Tunable: r.Tunable,
			Tenant: r.Tenant, Class: r.Class,
			Tasks: append([]core.TaskPlacement(nil), r.Tasks...),
		}
		if r.Kind == KindRenegotiate {
			for i := range st.Grants {
				if st.Grants[i].JobID == r.JobID {
					st.Grants[i] = g
					return nil
				}
			}
		}
		st.Grants = append(st.Grants, g)
	case KindReject:
		if err := shardOK(); err != nil {
			return err
		}
		scheds[r.Shard].ReplayRejected()
	case KindShed:
		// Shed jobs never touched a scheduler; the record exists so
		// recovery can prove they did not reappear as grants.
	case KindComplete:
		for i := range st.Grants {
			if st.Grants[i].JobID == r.JobID {
				st.Grants = append(st.Grants[:i], st.Grants[i+1:]...)
				break
			}
		}
	default:
		return fmt.Errorf("unknown kind %d", uint8(r.Kind))
	}
	return nil
}
