package durable

import (
	"fmt"
	"math"

	"milan/internal/core"
)

// DiffStates compares two plane states over the durable contract and
// returns a description of the first divergence, or nil.  Durable state
// is: the clock, every shard's capacity profile (bitwise — raw float64
// bits, not tolerance), the replay-reconstructed admission counters
// (Admitted, Rejected, ReservedArea, QualitySum, TunableChosen — merged
// across shards, since rejection shard attribution is diagnostics), and
// the live grant set.  The planner's work counters (ChainsTried,
// HolesProbed, PlanFailures) are snapshot-carried diagnostics and are
// deliberately not compared.
func DiffStates(got, want *State) error {
	if fb(got.Now) != fb(want.Now) {
		return fmt.Errorf("now: got %v want %v", got.Now, want.Now)
	}
	if len(got.Shards) != len(want.Shards) {
		return fmt.Errorf("shard count: got %d want %d", len(got.Shards), len(want.Shards))
	}
	for i := range got.Shards {
		if err := diffProfile(got.Shards[i].Profile, want.Shards[i].Profile); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	gs, ws := mergeStats(got.Shards), mergeStats(want.Shards)
	if gs.Admitted != ws.Admitted {
		return fmt.Errorf("admitted: got %d want %d", gs.Admitted, ws.Admitted)
	}
	if gs.Rejected != ws.Rejected {
		return fmt.Errorf("rejected: got %d want %d", gs.Rejected, ws.Rejected)
	}
	if fb(gs.ReservedArea) != fb(ws.ReservedArea) {
		return fmt.Errorf("reserved area: got %v want %v", gs.ReservedArea, ws.ReservedArea)
	}
	if fb(gs.QualitySum) != fb(ws.QualitySum) {
		return fmt.Errorf("quality sum: got %v want %v", gs.QualitySum, ws.QualitySum)
	}
	if err := diffTunable(gs.TunableChosen, ws.TunableChosen); err != nil {
		return err
	}
	return diffGrants(got.Grants, want.Grants)
}

func fb(f float64) uint64 { return math.Float64bits(f) }

func diffProfile(got, want core.ProfileState) error {
	if got.Capacity != want.Capacity {
		return fmt.Errorf("capacity: got %d want %d", got.Capacity, want.Capacity)
	}
	if fb(got.TrimmedBusy) != fb(want.TrimmedBusy) {
		return fmt.Errorf("trimmed busy: got %v want %v", got.TrimmedBusy, want.TrimmedBusy)
	}
	if len(got.Times) != len(want.Times) {
		return fmt.Errorf("segment count: got %d want %d", len(got.Times), len(want.Times))
	}
	for i := range got.Times {
		if fb(got.Times[i]) != fb(want.Times[i]) {
			return fmt.Errorf("segment %d time: got %v want %v", i, got.Times[i], want.Times[i])
		}
		if got.Used[i] != want.Used[i] {
			return fmt.Errorf("segment %d used: got %d want %d", i, got.Used[i], want.Used[i])
		}
	}
	return nil
}

func mergeStats(shards []core.SchedulerState) core.Stats {
	var out core.Stats
	for _, sh := range shards {
		out.Admitted += sh.Stats.Admitted
		out.Rejected += sh.Stats.Rejected
		out.ReservedArea += sh.Stats.ReservedArea
		out.QualitySum += sh.Stats.QualitySum
		for ci, n := range sh.Stats.TunableChosen {
			for len(out.TunableChosen) <= ci {
				out.TunableChosen = append(out.TunableChosen, 0)
			}
			out.TunableChosen[ci] += n
		}
	}
	return out
}

func diffTunable(got, want []int) error {
	n := len(got)
	if len(want) > n {
		n = len(want)
	}
	at := func(s []int, i int) int {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if at(got, i) != at(want, i) {
			return fmt.Errorf("tunable chosen chain %d: got %d want %d", i, at(got, i), at(want, i))
		}
	}
	return nil
}

func diffGrants(got, want []GrantRecord) error {
	if len(got) != len(want) {
		return fmt.Errorf("grant count: got %d want %d", len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], &want[i]
		if g.JobID != w.JobID || g.Shard != w.Shard || g.Chain != w.Chain {
			return fmt.Errorf("grant %d: got job=%d shard=%d chain=%d want job=%d shard=%d chain=%d",
				i, g.JobID, g.Shard, g.Chain, w.JobID, w.Shard, w.Chain)
		}
		if fb(g.Quality) != fb(w.Quality) {
			return fmt.Errorf("grant job %d quality: got %v want %v", g.JobID, g.Quality, w.Quality)
		}
		if len(g.Tasks) != len(w.Tasks) {
			return fmt.Errorf("grant job %d task count: got %d want %d", g.JobID, len(g.Tasks), len(w.Tasks))
		}
		for t := range g.Tasks {
			gt, wt := g.Tasks[t], w.Tasks[t]
			if gt.Task != wt.Task || gt.Procs != wt.Procs || fb(gt.Start) != fb(wt.Start) || fb(gt.Finish) != fb(wt.Finish) {
				return fmt.Errorf("grant job %d task %d: got %+v want %+v", g.JobID, t, gt, wt)
			}
		}
	}
	return nil
}
