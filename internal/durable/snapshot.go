package durable

import (
	"fmt"
	"sort"

	"milan/internal/core"
)

// GrantRecord is one live committed grant in the durable state: everything
// needed to account for the grant after recovery (and to prove none was
// lost).  The reservation itself lives in the shard profiles; the grant
// set is bookkeeping over it.
type GrantRecord struct {
	JobID   int
	Shard   int
	Chain   int
	Quality float64
	Tunable bool
	Tenant  string
	Class   int
	Tasks   []core.TaskPlacement
}

// Finish returns the grant's reservation finish time (the latest task
// finish).
func (g *GrantRecord) Finish() float64 {
	var f float64
	for i, tp := range g.Tasks {
		if i == 0 || tp.Finish > f {
			f = tp.Finish
		}
	}
	return f
}

// State is the complete durable state of an admission plane at one log
// position: the clock, every shard's scheduler state and the set of live
// grants (committed reservations that have not completed).
type State struct {
	// LSN is the last log record reflected in this state (0 = genesis).
	LSN uint64
	// Now is the plane's observed clock.
	Now float64
	// Shards holds one scheduler state per shard (one entry for the
	// monolith).
	Shards []core.SchedulerState
	// Grants is the live grant set, sorted by job ID.
	Grants []GrantRecord
}

// Genesis returns the empty state of a plane with procs processors split
// across `shards` partitions from time origin — exactly fed.New's
// partition (the first procs mod shards shards hold one extra), so a
// recovered plane and a fresh one agree on shard shapes.
func Genesis(procs, shards int, origin float64) (State, error) {
	if procs < 1 {
		return State{}, fmt.Errorf("durable: genesis needs at least 1 processor, got %d", procs)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > procs {
		return State{}, fmt.Errorf("durable: %d shards for %d processors", shards, procs)
	}
	st := State{Shards: make([]core.SchedulerState, shards), Now: origin}
	base, rem := procs/shards, procs%shards
	for i := 0; i < shards; i++ {
		p := base
		if i < rem {
			p++
		}
		st.Shards[i] = core.SchedulerState{Profile: core.ProfileState{
			Capacity: p,
			Times:    []float64{origin},
			Used:     []int{0},
		}}
	}
	return st, nil
}

// Prune drops grants whose reservations have fully elapsed (finish at or
// before Now) and sorts the survivors by job ID.  Called before every
// snapshot so the grant set stays bounded by concurrency, not by history.
func (s *State) Prune() {
	live := s.Grants[:0]
	for _, g := range s.Grants {
		if g.Finish() > s.Now {
			live = append(live, g)
		}
	}
	s.Grants = live
	sort.Slice(s.Grants, func(i, j int) bool { return s.Grants[i].JobID < s.Grants[j].JobID })
}

// Procs returns the plane's total processor count.
func (s *State) Procs() int {
	total := 0
	for _, sh := range s.Shards {
		total += sh.Profile.Capacity
	}
	return total
}

const (
	maxShards   = 1 << 12
	maxSegments = 1 << 22
	maxGrants   = 1 << 22
)

// EncodeSnapshot serializes a state as a snapshot payload (no framing, no
// file header — the store frames it).
func EncodeSnapshot(st *State) []byte {
	b := make([]byte, 0, 256)
	b = appendUint64(b, st.LSN)
	b = appendFloat(b, st.Now)
	b = appendUint32(b, uint32(len(st.Shards)))
	for _, sh := range st.Shards {
		b = appendUint32(b, uint32(sh.Profile.Capacity))
		b = appendFloat(b, sh.Profile.TrimmedBusy)
		b = appendUint32(b, uint32(len(sh.Profile.Times)))
		for _, t := range sh.Profile.Times {
			b = appendFloat(b, t)
		}
		for _, u := range sh.Profile.Used {
			b = appendUint32(b, uint32(u))
		}
		b = appendUint64(b, uint64(int64(sh.Stats.Admitted)))
		b = appendUint64(b, uint64(int64(sh.Stats.Rejected)))
		b = appendFloat(b, sh.Stats.ReservedArea)
		b = appendFloat(b, sh.Stats.QualitySum)
		b = appendUint64(b, uint64(int64(sh.Stats.ChainsTried)))
		b = appendUint64(b, uint64(int64(sh.Stats.HolesProbed)))
		b = appendUint64(b, uint64(int64(sh.Stats.PlanFailures)))
		b = appendUint32(b, uint32(len(sh.Stats.TunableChosen)))
		for _, n := range sh.Stats.TunableChosen {
			b = appendUint64(b, uint64(int64(n)))
		}
	}
	b = appendUint32(b, uint32(len(st.Grants)))
	for i := range st.Grants {
		g := &st.Grants[i]
		b = appendUint32(b, uint32(g.Shard))
		b = appendUint64(b, uint64(int64(g.JobID)))
		b = appendUint32(b, uint32(g.Chain))
		b = appendFloat(b, g.Quality)
		b = appendBool(b, g.Tunable)
		b = appendString(b, g.Tenant)
		b = appendUint32(b, uint32(int32(g.Class)))
		b = appendTasks(b, g.Tasks)
	}
	return b
}

// DecodeSnapshot parses a snapshot payload.  Any corruption — truncation,
// insane counts, trailing bytes — returns an error; no input may panic
// (the fuzz target pins this).  Structural validity of the profiles is
// checked later, by core.ProfileFromState, when the state is restored.
func DecodeSnapshot(payload []byte) (State, error) {
	c := &cursor{b: payload}
	var st State
	st.LSN = c.u64()
	st.Now = c.f64()
	nsh := c.u32()
	if nsh > maxShards {
		return State{}, fmt.Errorf("durable: snapshot shard count %d exceeds limit", nsh)
	}
	for i := uint32(0); i < nsh && c.err == nil; i++ {
		var sh core.SchedulerState
		sh.Profile.Capacity = int(int32(c.u32()))
		sh.Profile.TrimmedBusy = c.f64()
		nseg := c.u32()
		if nseg > maxSegments || (c.err == nil && int(nseg)*12 > len(c.b)-c.off) {
			return State{}, fmt.Errorf("durable: snapshot segment count %d exceeds payload", nseg)
		}
		sh.Profile.Times = make([]float64, 0, nseg)
		for j := uint32(0); j < nseg && c.err == nil; j++ {
			sh.Profile.Times = append(sh.Profile.Times, c.f64())
		}
		sh.Profile.Used = make([]int, 0, nseg)
		for j := uint32(0); j < nseg && c.err == nil; j++ {
			sh.Profile.Used = append(sh.Profile.Used, int(int32(c.u32())))
		}
		sh.Stats.Admitted = int(int64(c.u64()))
		sh.Stats.Rejected = int(int64(c.u64()))
		sh.Stats.ReservedArea = c.f64()
		sh.Stats.QualitySum = c.f64()
		sh.Stats.ChainsTried = int(int64(c.u64()))
		sh.Stats.HolesProbed = int(int64(c.u64()))
		sh.Stats.PlanFailures = int(int64(c.u64()))
		ntc := c.u32()
		if ntc > maxStringLen || (c.err == nil && int(ntc)*8 > len(c.b)-c.off) {
			return State{}, fmt.Errorf("durable: snapshot tunable-chosen count %d exceeds payload", ntc)
		}
		for j := uint32(0); j < ntc && c.err == nil; j++ {
			sh.Stats.TunableChosen = append(sh.Stats.TunableChosen, int(int64(c.u64())))
		}
		st.Shards = append(st.Shards, sh)
	}
	ng := c.u32()
	if ng > maxGrants || (c.err == nil && int(ng)*25 > len(c.b)-c.off) {
		return State{}, fmt.Errorf("durable: snapshot grant count %d exceeds payload", ng)
	}
	for i := uint32(0); i < ng && c.err == nil; i++ {
		var g GrantRecord
		g.Shard = int(int32(c.u32()))
		g.JobID = int(int64(c.u64()))
		g.Chain = int(int32(c.u32()))
		g.Quality = c.f64()
		g.Tunable = c.boolean()
		g.Tenant = c.str()
		g.Class = int(int32(c.u32()))
		g.Tasks = c.tasks()
		st.Grants = append(st.Grants, g)
	}
	if c.err != nil {
		return State{}, c.err
	}
	if c.off != len(payload) {
		return State{}, fmt.Errorf("durable: %d trailing bytes after snapshot", len(payload)-c.off)
	}
	return st, nil
}
