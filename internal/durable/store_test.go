package durable

import (
	"errors"
	"strings"
	"testing"

	"milan/internal/durable/vfs"
)

func openMem(t *testing.T, fs vfs.FS, opts StoreOptions) (*Store, Recovered) {
	t.Helper()
	gen, err := Genesis(8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, rec, err := Open(OpenConfig{FS: fs, Dir: "log", Genesis: gen, Store: opts})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s, rec
}

func appendObserve(t *testing.T, s *Store, now float64) uint64 {
	t.Helper()
	lsn, err := s.Append(&Record{Kind: KindObserve, Now: now})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return lsn
}

func TestStoreOpenGenesisAndReopen(t *testing.T) {
	mem := vfs.NewMem()
	s, rec := openMem(t, mem, StoreOptions{})
	if rec.Records != 0 || rec.Torn || rec.SnapshotLSN != 0 {
		t.Fatalf("genesis recovery = %+v", rec)
	}
	if got := rec.State.Procs(); got != 8 {
		t.Fatalf("genesis procs = %d", got)
	}
	for i := 1; i <= 5; i++ {
		if lsn := appendObserve(t, s, float64(i)); lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if s.DurableLSN() != 5 {
		t.Fatalf("durable lsn = %d", s.DurableLSN())
	}
	s.Close()

	// Clean reopen (no crash): all five records replay.
	s2, rec2 := openMem(t, mem, StoreOptions{})
	if rec2.Records != 5 || rec2.Torn {
		t.Fatalf("reopen recovery = %+v", rec2)
	}
	if rec2.State.LSN != 5 || rec2.State.Now != 5 {
		t.Fatalf("recovered state lsn=%d now=%v", rec2.State.LSN, rec2.State.Now)
	}
	if s2.NextLSN() != 6 {
		t.Fatalf("next lsn = %d", s2.NextLSN())
	}
	s2.Close()
}

func TestStoreCrashKeepsSyncedPrefix(t *testing.T) {
	mem := vfs.NewMem()
	s, _ := openMem(t, mem, StoreOptions{Sync: SyncAlways})
	for i := 1; i <= 3; i++ {
		appendObserve(t, s, float64(i))
	}
	mem.Crash() // no Close: simulated power failure

	_, rec := openMem(t, mem, StoreOptions{})
	if rec.State.LSN != 3 || rec.Records != 3 {
		t.Fatalf("SyncAlways crash lost records: %+v", rec)
	}
}

func TestStoreCrashDropsUnsyncedTail(t *testing.T) {
	mem := vfs.NewMem()
	s, _ := openMem(t, mem, StoreOptions{Sync: SyncEveryN, SyncEvery: 2})
	for i := 1; i <= 5; i++ {
		appendObserve(t, s, float64(i))
	}
	// Records 1-4 synced (two batches of 2); record 5 volatile.
	if s.DurableLSN() != 4 {
		t.Fatalf("durable lsn = %d, want 4", s.DurableLSN())
	}
	mem.Crash()

	_, rec := openMem(t, mem, StoreOptions{})
	if rec.State.LSN != 4 {
		t.Fatalf("recovered lsn = %d, want synced prefix 4", rec.State.LSN)
	}
}

func TestStoreSnapshotCompaction(t *testing.T) {
	mem := vfs.NewMem()
	s, _ := openMem(t, mem, StoreOptions{SnapshotEvery: 3})
	st := s.mustState(t)
	for i := 1; i <= 3; i++ {
		appendObserve(t, s, float64(i))
	}
	if !s.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot = false after SnapshotEvery records")
	}
	st.LSN, st.Now = 3, 3
	if err := s.WriteSnapshot(&st); err != nil {
		t.Fatal(err)
	}
	names, _ := mem.ReadDir("log")
	if len(names) != 2 {
		t.Fatalf("after compaction dir = %v, want exactly snapshot+segment", names)
	}

	// Crash after compaction: recovery starts from the snapshot.
	appendObserve(t, s, 4)
	mem.Crash()
	_, rec := openMem(t, mem, StoreOptions{})
	if rec.SnapshotLSN != 3 || rec.Records != 1 || rec.State.LSN != 4 {
		t.Fatalf("post-compaction recovery = %+v", rec)
	}
}

// mustState is a test helper building a snapshotable state matching the
// store's genesis shape.
func (s *Store) mustState(t *testing.T) State {
	t.Helper()
	st, err := Genesis(8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreWriteErrorPoisons(t *testing.T) {
	boom := errors.New("disk on fire")
	mem := vfs.NewMem()
	ft := vfs.NewFault(mem)
	s, _ := openMem(t, ft, StoreOptions{})
	appendObserve(t, s, 1)

	ft.SetWriteError(boom, 0)
	if _, err := s.Append(&Record{Kind: KindObserve, Now: 2}); !errors.Is(err, boom) {
		t.Fatalf("append under write fault: %v", err)
	}
	if s.Poisoned() == nil {
		t.Fatal("store not poisoned after failed append")
	}
	ft.SetWriteError(nil, 0)
	if _, err := s.Append(&Record{Kind: KindObserve, Now: 3}); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned store accepted an append: %v", err)
	}

	// Reopen recovers the pre-fault prefix and serves again.
	s2, rec := openMem(t, ft, StoreOptions{})
	if rec.State.LSN != 1 {
		t.Fatalf("recovered lsn = %d, want 1", rec.State.LSN)
	}
	appendObserve(t, s2, 2)
}

func TestStoreSyncErrorPoisons(t *testing.T) {
	boom := errors.New("fsync failed")
	ft := vfs.NewFault(vfs.NewMem())
	s, _ := openMem(t, ft, StoreOptions{})
	ft.SetSyncError(boom, 0)
	if _, err := s.Append(&Record{Kind: KindObserve, Now: 1}); !errors.Is(err, boom) {
		t.Fatalf("append under sync fault: %v", err)
	}
	if s.Poisoned() == nil {
		t.Fatal("store not poisoned after failed sync")
	}
}

func TestStoreBitFlipStopsReplay(t *testing.T) {
	mem := vfs.NewMem()
	s, _ := openMem(t, mem, StoreOptions{})
	for i := 1; i <= 4; i++ {
		appendObserve(t, s, float64(i))
	}
	s.Close()

	// Flip a bit in the third record's payload region.  The durable view
	// is what recovery reads after a crash, so corrupt both views.
	names, _ := mem.ReadDir("log")
	var seg string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") {
			seg = "log/" + n
		}
	}
	f, err := mem.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]byte, 4096)
	n, _ := f.ReadAt(all, 0)
	all = all[:n]
	// Header 20 bytes; each observe frame is 8 + (1+8+8) = 25 bytes.
	all[20+2*25+10] ^= 0x40
	nf, _ := mem.Create(seg)
	nf.Write(all)
	nf.Sync()
	mem.SyncDir("log")
	mem.Crash()

	_, rec := openMem(t, mem, StoreOptions{})
	if !rec.Torn {
		t.Fatal("corrupt record did not mark the tail torn")
	}
	if rec.State.LSN != 2 {
		t.Fatalf("recovered lsn = %d, want clean prefix 2", rec.State.LSN)
	}
}

func TestStoreTornTailAfterLyingSync(t *testing.T) {
	ft := vfs.NewFault(vfs.NewMem())
	s, _ := openMem(t, ft, StoreOptions{})
	appendObserve(t, s, 1)
	ft.SetSyncLie(true)
	appendObserve(t, s, 2) // acked, but the sync was a lie
	appendObserve(t, s, 3)
	if s.DurableLSN() != 3 {
		t.Fatalf("store believes lsn %d durable", s.DurableLSN())
	}
	ft.Crash()

	// The lie is exposed: only the honestly synced prefix survives.
	_, rec := openMem(t, ft, StoreOptions{})
	if rec.State.LSN != 1 {
		t.Fatalf("recovered lsn = %d, want 1 (records 2-3 were lied about)", rec.State.LSN)
	}
}
