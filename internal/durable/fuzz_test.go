package durable

import (
	"bytes"
	"testing"

	"milan/internal/core"
)

// FuzzRecordDecode: no byte sequence may panic the record decoder, and any
// payload that decodes cleanly must round-trip through encode/decode to the
// same record.  Truncated, bit-flipped and version-skewed (unknown-kind)
// inputs must come back as errors, never as crashes or silent garbage.
func FuzzRecordDecode(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(EncodeRecord(&r))
	}
	// Adversarial seeds: empty, lone kind byte, unknown kind, giant counts.
	f.Add([]byte{})
	f.Add([]byte{byte(KindAdmit)})
	f.Add([]byte{0xff, 1, 2, 3, 4, 5, 6, 7, 8})
	huge := EncodeRecord(&Record{Kind: KindAdmit, LSN: 1, Tenant: "t"})
	huge[len(huge)-4] = 0xff // inflate the task count field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		// A clean decode must re-encode to the exact input bytes: the
		// encoding is canonical, so decode(encode(decode(x))) == decode(x)
		// reduces to byte equality.
		re := EncodeRecord(&r)
		if !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", payload, re)
		}
		r2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if r2.Kind != r.Kind || r2.LSN != r.LSN || len(r2.Tasks) != len(r.Tasks) {
			t.Fatalf("re-decode drifted: %+v vs %+v", r2, r)
		}
	})
}

// FuzzSnapshotDecode: same contract for the snapshot decoder, whose inputs
// are larger and carry nested per-shard profiles and grant sets.
func FuzzSnapshotDecode(f *testing.F) {
	gen, err := Genesis(8, 2, 0)
	if err != nil {
		f.Fatal(err)
	}
	gen.LSN, gen.Now = 42, 17.5
	gen.Grants = []GrantRecord{{
		JobID: 7, Shard: 1, Chain: 2, Quality: 0.75, Tunable: true,
		Tenant: "acme", Class: 1,
		Tasks: []core.TaskPlacement{{Task: 0, Procs: 4, Start: 17.5, Finish: 21}},
	}}
	f.Add(EncodeSnapshot(&gen))
	empty, err := Genesis(1, 1, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(EncodeSnapshot(&empty))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		st, err := DecodeSnapshot(payload)
		if err != nil {
			return
		}
		re := EncodeSnapshot(&st)
		st2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if err := DiffStates(&st2, &st); err != nil {
			t.Fatalf("snapshot round-trip drifted: %v", err)
		}
	})
}
