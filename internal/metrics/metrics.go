// Package metrics provides the measurement side of the evaluation: running
// statistics, histograms, confidence intervals and a processor-utilization
// integrator, all allocation-light so they can sit inside the simulation's
// hot loop.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in one pass (Welford's algorithm),
// numerically stable for the long experiment runs (10,000 arrivals per
// point).
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under the normal approximation.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}

// Merge folds another accumulator into this one (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); observations
// outside the range land in saturated edge buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	under   int
	over    int
	n       int
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || !(hi > lo) {
		panic(fmt.Sprintf("metrics: bad histogram range [%v,%v) x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) { // guard float rounding at the upper edge
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// N returns the number of observations, including out-of-range ones.
func (h *Histogram) N() int { return h.n }

// OutOfRange returns counts below Lo and at or above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Quantile returns an approximate q-quantile (q in [0,1]) assuming
// observations are uniform within buckets; out-of-range observations clamp
// to the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return h.Lo
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}

// UtilizationTracker integrates "processors in use" over simulated time
// against a fixed capacity, tolerating out-of-order interval reports (the
// scheduler reserves into the future).
type UtilizationTracker struct {
	capacity int
	busy     float64 // processor-time integral
	start    float64
	end      float64
	started  bool
}

// NewUtilizationTracker returns a tracker for `capacity` processors.
func NewUtilizationTracker(capacity int) *UtilizationTracker {
	if capacity < 1 {
		panic(fmt.Sprintf("metrics: capacity %d must be >= 1", capacity))
	}
	return &UtilizationTracker{capacity: capacity}
}

// AddInterval records procs processors busy over [start, finish).
func (u *UtilizationTracker) AddInterval(procs int, start, finish float64) {
	if finish <= start {
		return
	}
	u.busy += float64(procs) * (finish - start)
	if !u.started || start < u.start {
		u.start = start
		u.started = true
	}
	if finish > u.end {
		u.end = finish
	}
}

// Busy returns the accumulated processor-time integral.
func (u *UtilizationTracker) Busy() float64 { return u.busy }

// Span returns the [earliest start, latest finish] seen so far.
func (u *UtilizationTracker) Span() (float64, float64) { return u.start, u.end }

// Utilization returns busy / (capacity * (horizon - origin)).
func (u *UtilizationTracker) Utilization(origin, horizon float64) float64 {
	if horizon <= origin {
		return 0
	}
	return u.busy / (float64(u.capacity) * (horizon - origin))
}

// UtilizationAuto returns utilization over the observed span.
func (u *UtilizationTracker) UtilizationAuto() float64 {
	return u.Utilization(u.start, u.end)
}

// Series is a labeled sequence of (x, y) points, the unit the experiment
// harness hands to table printers.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the y value for the given x (within eps), or NaN.
func (s *Series) YAt(x float64) float64 {
	for i, xv := range s.X {
		if math.Abs(xv-x) < 1e-9 {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Max returns the maximum y value (NaN if empty).
func (s *Series) Max() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y > m {
			m = y
		}
	}
	return m
}

// ArgMax returns the x at which y is maximal (NaN if empty).
func (s *Series) ArgMax() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	best, bx := s.Y[0], s.X[0]
	for i, y := range s.Y[1:] {
		if y > best {
			best, bx = y, s.X[i+1]
		}
	}
	return bx
}

// Median returns the median of a copy of xs (NaN if empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
