package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// seriesMarks cycles through plot symbols for overlaid series.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// PlotOptions configures Plot.
type PlotOptions struct {
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	YMin   float64
	YMax   float64 // YMax <= YMin means autoscale
}

// Plot renders the series as an ASCII chart, one symbol per series, with a
// legend — the terminal rendition of the paper's figures.  All series
// share the x axis (their own x values; columns are interpolated).
func Plot(w io.Writer, title string, series []*Series, opts PlotOptions) error {
	if len(series) == 0 {
		return fmt.Errorf("metrics: nothing to plot")
	}
	width, height := opts.Width, opts.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) == 0 {
			return fmt.Errorf("metrics: series %q is empty", s.Label)
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if opts.YMax > opts.YMin {
		ymin, ymax = opts.YMin, opts.YMax
	}
	if ymax-ymin < 1e-12 {
		ymax = ymin + 1
	}
	if xmax-xmin < 1e-12 {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Linear interpolation between consecutive points so the plot
		// reads as a line, not scattered dots.
		for i := 0; i+1 < len(s.X); i++ {
			c0, c1 := col(s.X[i]), col(s.X[i+1])
			if c1 < c0 {
				c0, c1 = c1, c0
			}
			for c := c0; c <= c1; c++ {
				var frac float64
				if c1 > c0 {
					frac = float64(c-c0) / float64(c1-c0)
				}
				y := s.Y[i] + (s.Y[i+1]-s.Y[i])*frac
				grid[row(y)][c] = mark
			}
		}
		if len(s.X) == 1 {
			grid[row(s.Y[0])][col(s.X[0])] = mark
		}
	}

	if title != "" {
		fmt.Fprintln(w, title)
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", ymax)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", ymin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%9.3g ", (ymax+ymin)/2)
		}
		fmt.Fprintf(w, "%s|%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%s+%s+\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-*.4g%*.4g\n", strings.Repeat(" ", 11), width/2, xmin, width-width/2, xmax)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Label))
	}
	fmt.Fprintf(w, "%s%s\n", strings.Repeat(" ", 11), strings.Join(legend, "   "))
	return nil
}
