package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirectComputation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if got, want := w.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
	if got, want := w.Var(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, want)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CI95() != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 {
		t.Error("single observation: mean 42, var 0 expected")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Errorf("merged var %v != %v", a.Var(), all.Var())
	}
	// Merging empties is identity.
	var empty Welford
	before := a
	a.Merge(empty)
	if a != before {
		t.Error("merging empty changed accumulator")
	}
	empty.Merge(a)
	if empty != a {
		t.Error("merging into empty did not copy")
	}
}

func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.Float64()*1000 - 500
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var sq float64
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		variance := sq / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-variance) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsAndOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 50} {
		h.Add(x)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range = (%d, %d), want (1, 2)", under, over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Errorf("bucket 1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Errorf("bucket 4 = %d, want 1", h.Buckets[4])
	}
	if h.N() != 7 {
		t.Errorf("N = %d, want 7", h.N())
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 0, 5) },
		func() { NewHistogram(3, 3, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0); q < 0 || q > 1 {
		t.Errorf("q0 = %v", q)
	}
	empty := NewHistogram(0, 1, 4)
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want Lo", q)
	}
}

func TestUtilizationTracker(t *testing.T) {
	u := NewUtilizationTracker(4)
	u.AddInterval(2, 0, 10) // 20
	u.AddInterval(4, 5, 6)  // 4
	u.AddInterval(1, 3, 3)  // empty, ignored
	if got := u.Busy(); math.Abs(got-24) > 1e-12 {
		t.Errorf("Busy = %v, want 24", got)
	}
	if got := u.Utilization(0, 10); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Utilization(0,10) = %v, want 0.6", got)
	}
	lo, hi := u.Span()
	if lo != 0 || hi != 10 {
		t.Errorf("Span = (%v, %v), want (0, 10)", lo, hi)
	}
	if got := u.UtilizationAuto(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("UtilizationAuto = %v, want 0.6", got)
	}
	if got := u.Utilization(5, 5); got != 0 {
		t.Errorf("empty window utilization = %v", got)
	}
}

func TestUtilizationTrackerPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewUtilizationTracker(0)
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "util"
	s.Add(1, 0.5)
	s.Add(2, 0.9)
	s.Add(3, 0.7)
	if got := s.YAt(2); got != 0.9 {
		t.Errorf("YAt(2) = %v", got)
	}
	if !math.IsNaN(s.YAt(99)) {
		t.Error("YAt(miss) not NaN")
	}
	if got := s.Max(); got != 0.9 {
		t.Errorf("Max = %v", got)
	}
	if got := s.ArgMax(); got != 2 {
		t.Errorf("ArgMax = %v", got)
	}
	var empty Series
	if !math.IsNaN(empty.Max()) || !math.IsNaN(empty.ArgMax()) {
		t.Error("empty series extrema not NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median not NaN")
	}
	// Input must not be mutated.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated input")
	}
}
