package metrics

import (
	"strings"
	"testing"
)

func lineSeries(label string, pts ...[2]float64) *Series {
	s := &Series{Label: label}
	for _, p := range pts {
		s.Add(p[0], p[1])
	}
	return s
}

func TestPlotBasicStructure(t *testing.T) {
	s1 := lineSeries("up", [2]float64{0, 0}, [2]float64{10, 1})
	s2 := lineSeries("down", [2]float64{0, 1}, [2]float64{10, 0})
	var sb strings.Builder
	err := Plot(&sb, "test chart", []*Series{s1, s2}, PlotOptions{Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 rows + axis + x labels + legend.
	if len(lines) != 14 {
		t.Fatalf("got %d lines, want 14:\n%s", len(lines), out)
	}
	// Both marks appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
	// Axis labels include min and max y.
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Error("y labels missing")
	}
}

func TestPlotInterpolatesBetweenPoints(t *testing.T) {
	// A line from (0,0) to (100,1) with only two points must still paint
	// every column.
	s := lineSeries("line", [2]float64{0, 0}, [2]float64{100, 1})
	var sb strings.Builder
	if err := Plot(&sb, "", []*Series{s}, PlotOptions{Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(sb.String(), "\n")
	stars := 0
	for _, r := range rows {
		stars += strings.Count(r, "*")
	}
	if stars < 30 {
		t.Fatalf("only %d marks for a 30-column line", stars)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	if err := Plot(&strings.Builder{}, "", nil, PlotOptions{}); err == nil {
		t.Error("empty series list plotted")
	}
	empty := &Series{Label: "e"}
	if err := Plot(&strings.Builder{}, "", []*Series{empty}, PlotOptions{}); err == nil {
		t.Error("empty series plotted")
	}
	// Single point, flat series: must not divide by zero.
	single := lineSeries("pt", [2]float64{5, 3})
	var sb strings.Builder
	if err := Plot(&sb, "", []*Series{single}, PlotOptions{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("single point not drawn")
	}
}

func TestPlotFixedYRangeClamps(t *testing.T) {
	s := lineSeries("spike", [2]float64{0, 0}, [2]float64{1, 100})
	var sb strings.Builder
	err := Plot(&sb, "", []*Series{s}, PlotOptions{Width: 10, Height: 5, YMin: 0, YMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The off-scale value clamps to the top row rather than panicking.
	top := strings.Split(sb.String(), "\n")[0]
	if !strings.Contains(top, "*") {
		t.Errorf("clamped point missing from top row: %q", top)
	}
}
