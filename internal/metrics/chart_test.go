package metrics

import (
	"strings"
	"testing"
)

func lineSeries(label string, pts ...[2]float64) *Series {
	s := &Series{Label: label}
	for _, p := range pts {
		s.Add(p[0], p[1])
	}
	return s
}

func TestPlotBasicStructure(t *testing.T) {
	s1 := lineSeries("up", [2]float64{0, 0}, [2]float64{10, 1})
	s2 := lineSeries("down", [2]float64{0, 1}, [2]float64{10, 0})
	var sb strings.Builder
	err := Plot(&sb, "test chart", []*Series{s1, s2}, PlotOptions{Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 rows + axis + x labels + legend.
	if len(lines) != 14 {
		t.Fatalf("got %d lines, want 14:\n%s", len(lines), out)
	}
	// Both marks appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
	// Axis labels include min and max y.
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Error("y labels missing")
	}
}

func TestPlotInterpolatesBetweenPoints(t *testing.T) {
	// A line from (0,0) to (100,1) with only two points must still paint
	// every column.
	s := lineSeries("line", [2]float64{0, 0}, [2]float64{100, 1})
	var sb strings.Builder
	if err := Plot(&sb, "", []*Series{s}, PlotOptions{Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(sb.String(), "\n")
	stars := 0
	for _, r := range rows {
		stars += strings.Count(r, "*")
	}
	if stars < 30 {
		t.Fatalf("only %d marks for a 30-column line", stars)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	if err := Plot(&strings.Builder{}, "", nil, PlotOptions{}); err == nil {
		t.Error("empty series list plotted")
	}
	empty := &Series{Label: "e"}
	if err := Plot(&strings.Builder{}, "", []*Series{empty}, PlotOptions{}); err == nil {
		t.Error("empty series plotted")
	}
	// Single point, flat series: must not divide by zero.
	single := lineSeries("pt", [2]float64{5, 3})
	var sb strings.Builder
	if err := Plot(&sb, "", []*Series{single}, PlotOptions{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("single point not drawn")
	}
}

func TestPlotFixedYRangeClamps(t *testing.T) {
	s := lineSeries("spike", [2]float64{0, 0}, [2]float64{1, 100})
	var sb strings.Builder
	err := Plot(&sb, "", []*Series{s}, PlotOptions{Width: 10, Height: 5, YMin: 0, YMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The off-scale value clamps to the top row rather than panicking.
	top := strings.Split(sb.String(), "\n")[0]
	if !strings.Contains(top, "*") {
		t.Errorf("clamped point missing from top row: %q", top)
	}
}

func TestPlotSymbolCyclingPastMarkSet(t *testing.T) {
	// Eight overlaid series exceed the six plot symbols: the seventh and
	// eighth wrap around to the first two marks.
	var series []*Series
	for i := 0; i < 8; i++ {
		series = append(series, lineSeries(
			string(rune('a'+i)),
			[2]float64{0, float64(i)},
			[2]float64{10, float64(i) + 1},
		))
	}
	var sb strings.Builder
	if err := Plot(&sb, "cycling", series, PlotOptions{Width: 30, Height: 12}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Every series appears in the legend with its (possibly reused) mark.
	for i, want := range []string{"* a", "o b", "+ c", "x d", "# e", "@ f", "* g", "o h"} {
		if !strings.Contains(out, want) {
			t.Errorf("legend entry %d missing %q:\n%s", i, want, out)
		}
	}
}

func TestPlotSinglePointSeriesDegenerateRanges(t *testing.T) {
	// All series share one x and one y: both axes have zero span and must
	// be widened rather than divided by.
	a := lineSeries("a", [2]float64{2, 7})
	b := lineSeries("b", [2]float64{2, 7})
	var sb strings.Builder
	if err := Plot(&sb, "flat", []*Series{a, b}, PlotOptions{Width: 12, Height: 5}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") && !strings.Contains(out, "o") {
		t.Fatalf("no marks drawn:\n%s", out)
	}
	for _, r := range out {
		if r == 'N' { // NaN leaking into axis labels
			t.Fatalf("NaN in output:\n%s", out)
		}
	}
	// A single-point series overlaid on a long line keeps its own mark.
	long := lineSeries("long", [2]float64{0, 0}, [2]float64{100, 10})
	pt := lineSeries("pt", [2]float64{50, 5})
	sb.Reset()
	if err := Plot(&sb, "", []*Series{long, pt}, PlotOptions{Width: 20, Height: 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "o pt") {
		t.Fatalf("single-point series missing from legend:\n%s", sb.String())
	}
}
