package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteFigureCSV(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 100
	fig, err := Fig5a(cfg, []float64{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFigureCSV(&sb, fig); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 points x 3 systems.
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	if rows[0][0] != "figure" || rows[1][0] != "5a" {
		t.Fatalf("rows = %v", rows[:2])
	}
}

func TestWriteGridCSV(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 80
	grid, err := Fig6(cfg, []float64{30, 60}, []float64{0.3, 0.7}, false)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteGridCSV(&sb, grid); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // header + 2x2 grid
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}
