package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"milan/internal/core"
	"milan/internal/sim"
	"milan/internal/workload"
)

// BestEffortResult summarizes a best-effort run: every job executes
// eventually, but nothing guarantees it executes on time.
type BestEffortResult struct {
	System        workload.System
	OnTime        int
	Late          int
	MeanTardiness float64 // mean (finish - deadline) over late jobs
	MaxTardiness  float64
	Utilization   float64
}

// RunBestEffort simulates the classical best-effort parallel scheduler the
// paper's introduction argues against: no admission control, tasks
// dispatched in EDF order (with skipping: a ready task that does not fit
// lets smaller later-deadline tasks through) onto free processors.  "A
// specific application can experience arbitrary delay which may grow with
// the number of applications contending for the resources" — this run
// measures that delay.
//
// Jobs use one fixed chain (best effort has no path-selection machinery);
// pass Shape1 or Shape2.
func RunBestEffort(cfg Config, sys workload.System) (BestEffortResult, error) {
	if err := cfg.Validate(); err != nil {
		return BestEffortResult{}, err
	}
	if sys == workload.Tunable {
		return BestEffortResult{}, fmt.Errorf("experiments: best effort needs a fixed shape")
	}

	type readyTask struct {
		job   int
		index int
		task  core.Task
	}
	var (
		engine    sim.Engine
		free      = cfg.Procs
		ready     []readyTask
		res       = BestEffortResult{System: sys}
		busy      float64
		lastEvent float64
		jobs      = make(map[int]core.Job)
	)
	arrivals := workload.NewPoisson(cfg.MeanInterarrival, cfg.Seed)

	var dispatch func()
	finishTask := func(rt readyTask) {
		free += rt.task.Procs
		job := jobs[rt.job]
		chain := job.Chains[0]
		now := engine.Now()
		if rt.index+1 < len(chain.Tasks) {
			ready = append(ready, readyTask{job: rt.job, index: rt.index + 1, task: chain.Tasks[rt.index+1]})
		} else {
			deadline := chain.Tasks[len(chain.Tasks)-1].Deadline
			if now <= deadline+1e-9 {
				res.OnTime++
			} else {
				res.Late++
				tard := now - deadline
				res.MeanTardiness += tard
				if tard > res.MaxTardiness {
					res.MaxTardiness = tard
				}
			}
			delete(jobs, rt.job)
		}
		dispatch()
	}

	dispatch = func() {
		// EDF with skipping over the ready queue.
		sort.SliceStable(ready, func(a, b int) bool {
			if ready[a].task.Deadline != ready[b].task.Deadline {
				return ready[a].task.Deadline < ready[b].task.Deadline
			}
			return ready[a].job < ready[b].job
		})
		var rest []readyTask
		for _, rt := range ready {
			if rt.task.Procs <= free {
				free -= rt.task.Procs
				busy += float64(rt.task.Procs) * rt.task.Duration
				rt := rt
				finish := engine.Now() + rt.task.Duration
				if finish > lastEvent {
					lastEvent = finish
				}
				engine.At(finish, "finish", func() { finishTask(rt) })
			} else {
				rest = append(rest, rt)
			}
		}
		ready = rest
	}

	var scheduleArrival func(id int)
	scheduleArrival = func(id int) {
		if id >= cfg.Jobs {
			return
		}
		engine.After(arrivals.Next(), "arrival", func() {
			job := cfg.Job.Job(id, engine.Now(), sys)
			jobs[id] = job
			ready = append(ready, readyTask{job: id, index: 0, task: job.Chains[0].Tasks[0]})
			dispatch()
			scheduleArrival(id + 1)
		})
	}
	scheduleArrival(0)
	engine.Run()

	if res.Late > 0 {
		res.MeanTardiness /= float64(res.Late)
	}
	if lastEvent > 0 {
		res.Utilization = busy / (float64(cfg.Procs) * lastEvent)
	}
	return res, nil
}

// BestEffortComparison is the EXT-B extension: best-effort EDF execution of
// each fixed shape against the reservation-based tunable system at the
// same load.
func BestEffortComparison(cfg Config) ([]BestEffortResult, RunResult, error) {
	var out []BestEffortResult
	for _, sys := range []workload.System{workload.Shape1, workload.Shape2} {
		r, err := RunBestEffort(cfg, sys)
		if err != nil {
			return nil, RunResult{}, err
		}
		out = append(out, r)
	}
	reserved, err := Run(cfg, workload.Tunable)
	if err != nil {
		return nil, RunResult{}, err
	}
	return out, reserved, nil
}

// WriteBestEffort renders the EXT-B comparison.
func WriteBestEffort(w io.Writer, be []BestEffortResult, reserved RunResult, cfg Config) error {
	fmt.Fprintf(w, "Extension EXT-B: best-effort EDF vs admission control (x=%d t=%g alpha=%g laxity=%g M=%d interval=%g jobs=%d seed=%d)\n",
		cfg.Job.X, cfg.Job.T, cfg.Job.Alpha, cfg.Job.Laxity, cfg.Procs, cfg.MeanInterarrival, cfg.Jobs, cfg.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\ton-time\tlate\tmean tardiness\tmax tardiness\tutil")
	for _, r := range be {
		fmt.Fprintf(tw, "best-effort EDF (%s)\t%d\t%d\t%.1f\t%.1f\t%.3f\n",
			r.System, r.OnTime, r.Late, r.MeanTardiness, r.MaxTardiness, r.Utilization)
	}
	fmt.Fprintf(tw, "reservation (tunable)\t%d\t0\t0.0\t0.0\t%.3f\n",
		reserved.Throughput(), reserved.Utilization)
	return tw.Flush()
}
