package experiments

import (
	"strings"
	"testing"

	"milan/internal/workload"
)

func TestRunBurstyComparesProcesses(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 600
	cmps, err := RunBursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 2 || cmps[0].Process != "poisson" || cmps[1].Process != "bursty" {
		t.Fatalf("cmps = %+v", cmps)
	}
	for _, c := range cmps {
		for _, sys := range workload.Systems {
			r := c.Results[sys]
			if r.Admitted+r.Rejected != cfg.Jobs {
				t.Errorf("%s/%s: %d+%d != %d", c.Process, sys, r.Admitted, r.Rejected, cfg.Jobs)
			}
		}
		// Tunability helps under both processes at this load.
		if c.Gain() <= 0 {
			t.Errorf("%s: gain = %d, want positive", c.Process, c.Gain())
		}
	}
}

func TestArrivalFactoryOverride(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 200
	fixedGap := cfg.MeanInterarrival
	cfg.ArrivalFactory = func(seed int64) workload.Arrivals {
		return workload.Fixed{Gap: fixedGap}
	}
	a, err := Run(cfg, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic arrivals: identical runs regardless of seed handling.
	if a.Admitted != b.Admitted || a.Horizon != b.Horizon {
		t.Fatalf("fixed arrivals diverged: %+v vs %+v", a, b)
	}
	// Horizon matches the deterministic release schedule.
	if a.Horizon < fixedGap*float64(cfg.Jobs) {
		t.Fatalf("horizon = %v", a.Horizon)
	}
}

func TestWriteBursty(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 150
	cmps, err := RunBursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBursty(&sb, cmps, cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXT-A", "poisson", "bursty", "gain vs best"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
