package experiments

import (
	"fmt"
	"io"

	"milan/internal/metrics"
	"milan/internal/workload"
)

// FigureSeries converts a figure sweep into plottable series: one
// utilization and one throughput series per task system.
func FigureSeries(fig Figure) (util, thr []*metrics.Series) {
	for _, sys := range workload.Systems {
		u := &metrics.Series{Label: sys.String()}
		th := &metrics.Series{Label: sys.String()}
		for _, pt := range fig.Points {
			r := pt.Results[sys]
			u.Add(pt.Param, r.Utilization)
			th.Add(pt.Param, float64(r.Throughput()))
		}
		util = append(util, u)
		thr = append(thr, th)
	}
	return util, thr
}

// PlotFigure renders the figure's two graphs (utilization left, throughput
// right in the paper; stacked here) as ASCII charts.
func PlotFigure(w io.Writer, fig Figure) error {
	util, thr := FigureSeries(fig)
	title := fmt.Sprintf("Figure %s: utilization vs %s", fig.ID, fig.ParamName)
	if err := metrics.Plot(w, title, util, metrics.PlotOptions{YMin: 0, YMax: 1}); err != nil {
		return err
	}
	fmt.Fprintln(w)
	title = fmt.Sprintf("Figure %s: throughput vs %s", fig.ID, fig.ParamName)
	return metrics.Plot(w, title, thr, metrics.PlotOptions{})
}
