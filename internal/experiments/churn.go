package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"milan/internal/qos"
	"milan/internal/sim"
	"milan/internal/workload"
)

// CapacityEvent changes the machine size at a point in simulated time.
type CapacityEvent struct {
	At    float64
	Procs int
}

// ChurnResult summarizes one run under a capacity trace.
type ChurnResult struct {
	Label     string
	Admitted  int
	Rejected  int
	Aborted   int // evicted by capacity loss
	Rescued   int // waiting jobs admitted after capacity growth
	Completed int // admitted minus aborted: jobs that actually met deadlines
}

// ChurnRun is the EXT-R extension experiment: the machine's size follows a
// trace of join/leave events (the metacomputing scenario of Section 3.1)
// while tunable jobs arrive.  The renegotiating arbitrator is compared
// against static arbitrators provisioned at the trace's minimum and
// maximum capacity.
func ChurnRun(cfg Config, trace []CapacityEvent) ([]ChurnResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(trace) == 0 {
		trace = []CapacityEvent{
			{At: 0.25, Procs: cfg.Procs / 2},
			{At: 0.5, Procs: cfg.Procs * 2},
			{At: 0.75, Procs: cfg.Procs},
		}
		// Fractions of the run horizon; scaled below.
		horizon := float64(cfg.Jobs) * cfg.MeanInterarrival
		for i := range trace {
			trace[i].At *= horizon
		}
	}
	min, max := cfg.Procs, cfg.Procs
	for _, ev := range trace {
		if ev.Procs < min {
			min = ev.Procs
		}
		if ev.Procs > max {
			max = ev.Procs
		}
	}

	dyn, err := runChurnDynamic(cfg, trace)
	if err != nil {
		return nil, err
	}
	declared, err := runChurnStatic(cfg, trace)
	if err != nil {
		return nil, err
	}
	results := []ChurnResult{dyn, declared}
	for _, static := range []struct {
		label string
		procs int
	}{
		{"static-min (conservative)", min},
		{"static-max (oracle bound)", max},
	} {
		scfg := cfg
		scfg.Procs = static.procs
		r, err := Run(scfg, workload.Tunable)
		if err != nil {
			return nil, err
		}
		results = append(results, ChurnResult{
			Label:     static.label,
			Admitted:  r.Admitted,
			Rejected:  r.Rejected,
			Completed: r.Admitted,
		})
	}
	return results, nil
}

// runChurnStatic models an arbitrator that ignores churn: it schedules
// against the declared size M0 while the machine actually follows the
// trace.  Afterwards, every instant where committed usage exceeds the true
// capacity marks all jobs holding reservations at that instant as failed —
// the predictability loss renegotiation exists to avoid.
func runChurnStatic(cfg Config, trace []CapacityEvent) (ChurnResult, error) {
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: cfg.Procs, Options: cfg.Opts})
	if err != nil {
		return ChurnResult{}, err
	}
	arrivals := workload.NewPoisson(cfg.MeanInterarrival, cfg.Seed)
	res := ChurnResult{Label: "static-declared (ignores churn)"}

	type span struct {
		job           int
		start, finish float64
		procs         int
	}
	var spans []span
	release := 0.0
	for id := 0; id < cfg.Jobs; id++ {
		release += arrivals.Next()
		arb.Observe(release)
		job := cfg.Job.Job(id, release, workload.Tunable)
		if cfg.Malleable {
			job = job.MakeMalleable()
		}
		g, err := qos.NewAgent(job).NegotiateWith(arb)
		if err != nil {
			res.Rejected++
			continue
		}
		res.Admitted++
		for _, tp := range g.Placement.Tasks {
			spans = append(spans, span{job: id, start: tp.Start, finish: tp.Finish, procs: tp.Procs})
		}
	}

	// Event sweep against the true capacity: at every boundary, if the
	// committed usage exceeds what the machine really has, every job with
	// an active reservation misses its guarantee.
	type event struct {
		at    float64
		procs int // usage delta; 0 for capacity events
		job   int
		cap   int // new capacity for capacity events, -1 otherwise
	}
	var events []event
	for _, s := range spans {
		events = append(events, event{at: s.start, procs: s.procs, job: s.job, cap: -1})
		events = append(events, event{at: s.finish, procs: -s.procs, job: s.job, cap: -1})
	}
	for _, ev := range trace {
		events = append(events, event{at: ev.At, cap: ev.Procs})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Releases before acquisitions at the same instant (half-open
		// intervals), capacity changes in between.
		return events[i].procs < events[j].procs
	})

	capacity := cfg.Procs
	usage := 0
	active := make(map[int]int) // job -> active reserved procs
	failed := make(map[int]bool)
	checkOverload := func() {
		if usage > capacity {
			for job := range active {
				failed[job] = true
			}
		}
	}
	for _, ev := range events {
		if ev.cap >= 0 {
			capacity = ev.cap
		} else {
			usage += ev.procs
			active[ev.job] += ev.procs
			if active[ev.job] <= 0 {
				delete(active, ev.job)
			}
		}
		checkOverload()
	}
	res.Aborted = len(failed)
	res.Completed = res.Admitted - res.Aborted
	return res, nil
}

// runChurnDynamic drives the renegotiating arbitrator through the trace.
func runChurnDynamic(cfg Config, trace []CapacityEvent) (ChurnResult, error) {
	d, err := qos.NewDynamicArbitrator(cfg.Procs, cfg.Opts)
	if err != nil {
		return ChurnResult{}, err
	}
	arrivals := workload.NewPoisson(cfg.MeanInterarrival, cfg.Seed)
	var engine sim.Engine
	res := ChurnResult{Label: "dynamic (renegotiating)"}

	for _, ev := range trace {
		procs := ev.Procs
		engine.At(ev.At, "capacity", func() {
			d.Observe(engine.Now())
			if _, err := d.SetCapacity(procs); err != nil {
				panic(err) // validated trace; programming error
			}
		})
	}

	var scheduleArrival func(id int)
	scheduleArrival = func(id int) {
		if id >= cfg.Jobs {
			return
		}
		engine.After(arrivals.Next(), "arrival", func() {
			now := engine.Now()
			d.Observe(now)
			job := cfg.Job.Job(id, now, workload.Tunable)
			if cfg.Malleable {
				job = job.MakeMalleable()
			}
			if _, err := d.NegotiateOrWait(job, nil); err == nil {
				res.Admitted++
			} else {
				res.Rejected++
			}
			scheduleArrival(id + 1)
		})
	}
	scheduleArrival(0)
	engine.Run()

	st := d.Stats()
	res.Admitted = st.Admitted // includes rescued waiters
	res.Aborted = st.Aborted
	res.Rescued = st.Rescued
	res.Rejected = cfg.Jobs - (st.Admitted - st.Rescued) // arrivals not admitted on first try
	res.Completed = st.Admitted - st.Aborted
	return res, nil
}

// WriteChurn renders the EXT-R comparison.
func WriteChurn(w io.Writer, results []ChurnResult, cfg Config, trace []CapacityEvent) error {
	fmt.Fprintf(w, "Extension EXT-R: renegotiation under capacity churn (x=%d t=%g alpha=%g laxity=%g M0=%d jobs=%d seed=%d)\n",
		cfg.Job.X, cfg.Job.T, cfg.Job.Alpha, cfg.Job.Laxity, cfg.Procs, cfg.Jobs, cfg.Seed)
	if len(trace) > 0 {
		fmt.Fprint(w, "capacity trace:")
		for _, ev := range trace {
			fmt.Fprintf(w, " t=%.0f->%d", ev.At, ev.Procs)
		}
		fmt.Fprintln(w)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tadmitted\trejected\taborted\trescued\tcompleted-on-time")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Label, r.Admitted, r.Rejected, r.Aborted, r.Rescued, r.Completed)
	}
	return tw.Flush()
}
