package experiments

import (
	"fmt"
	"io"

	"milan/internal/fed"
	"milan/internal/obs"
	"milan/internal/obs/slo"
	"milan/internal/workload"
)

// SpreadBound is the documented balance guarantee of the sharded admission
// plane under the Figure-4 workload: with best-of-k routing and a
// rebalancing pass per observed arrival, the per-shard utilization spread
// (max minus min shard utilization over the run horizon) stays within this
// bound.  The sharded Fig 5(a) entry asserts it against the obs gauges.
const SpreadBound = 0.30

// ShardedStats carries the plane-level figures a sharded run adds on top
// of RunResult.
type ShardedStats struct {
	Shards     int
	ProbeK     int
	Spread     float64 // max-min per-shard utilization over [0, horizon]
	LoadSpread float64 // final max-min cached load signal (obs gauge)
	Migrations int64   // processors moved by the rebalancer (obs counter)
	Races      int64   // optimistic-commit fallbacks (obs counter)
}

// rebalancingPlane adapts a federated plane to the simulation loop's
// admitter surface, running one rebalancer move after every clock
// observation so capacity follows the workload during the run.  When an
// SLO engine audits the run, each observation also feeds it the plane's
// cumulative commit-race and migration counters so commit-race spikes and
// rebalance storms trip the flight recorder.
type rebalancingPlane struct {
	*fed.Arbitrator
	rb      *fed.Rebalancer
	slo     *slo.Engine
	metrics *fed.Metrics
}

func (p rebalancingPlane) Observe(now float64) {
	p.Arbitrator.Observe(now)
	p.rb.Rebalance(1)
	if p.slo != nil && p.metrics != nil {
		p.slo.ObserveRouter(now, p.metrics.CommitRaces.Value(), p.metrics.Migrations.Value())
	}
}

// RunSharded simulates one task system against a federated admission plane
// with the given shard count and probe fan-out, rebalancing as the clock
// advances.  The monolithic counterpart of the same configuration is
// Run(cfg, sys).
func RunSharded(cfg Config, sys workload.System, shards, probeK int) (RunResult, ShardedStats, error) {
	if err := cfg.Validate(); err != nil {
		return RunResult{}, ShardedStats{}, err
	}
	if cfg.Ledger != nil && cfg.Ledger.Shards() < shards {
		return RunResult{}, ShardedStats{}, fmt.Errorf(
			"experiments: ledger has %d shards, plane needs %d", cfg.Ledger.Shards(), shards)
	}
	reg := obs.NewRegistry()
	metrics := fed.NewMetrics(reg)
	fedCfg := fed.Config{
		Procs:   cfg.Procs,
		Shards:  shards,
		ProbeK:  probeK,
		Options: cfg.Opts,
		Metrics: metrics,
		// Per-shard utilization ledgers: the plane records every commit,
		// rejection, clock advance and resize on the deciding shard's
		// ledger under that shard's lock (see fed/shard.go); the run loop
		// routes completions back via the grant's Shard stamp.
		Ledger: cfg.Ledger,
		// The plane stamps each diagnosis with the deciding shard before
		// handing it to the run's composed sink (recorder + forecaster).
		Diagnosis: cfg.diagnosisSink(),
	}
	if cfg.Forecast != nil {
		// Event-driven frontier refresh: every committed mutation of a
		// shard re-advertises the merged plane-wide headroom, so the
		// forecaster's gauges track the plane between arrivals too.
		fedCfg.HeadroomHorizon = cfg.headroomHorizon()
		fedCfg.HeadroomSink = cfg.Forecast.Advertise
	}
	if cfg.Obs != nil {
		fedCfg.Tracer = cfg.Obs.Tracer()
	}
	plane, err := fed.New(fedCfg)
	if err != nil {
		return RunResult{}, ShardedStats{}, err
	}
	rb := plane.Rebalancer()
	// A shard shrunk below the workload's widest task can never host it
	// again, so its load signal pins at zero and capacity would drain
	// away monotonically.  The operator knows the task width; floor the
	// shards there.
	if cfg.Job.X > rb.MinShardProcs {
		rb.MinShardProcs = cfg.Job.X
	}
	res, err := runLoop(cfg, sys, rebalancingPlane{plane, rb, cfg.SLO, metrics})
	if err != nil {
		return RunResult{}, ShardedStats{}, err
	}
	st := ShardedStats{
		Shards:     plane.Shards(),
		ProbeK:     plane.ProbeK(),
		LoadSpread: metrics.LoadSpread.Value(),
		Migrations: metrics.Migrations.Value(),
		Races:      metrics.CommitRaces.Value(),
	}
	if res.Horizon > 0 {
		st.Spread = plane.UtilizationSpread(0, res.Horizon)
	}
	return res, st, nil
}

// ShardedPoint is one arrival-interval value of the sharded-vs-monolith
// comparison.
type ShardedPoint struct {
	Interval float64
	Monolith RunResult
	Sharded  RunResult
	Stats    ShardedStats
}

// MissRate returns the rejected fraction of a run.
func MissRate(r RunResult) float64 {
	total := r.Admitted + r.Rejected
	if total == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(total)
}

// ShardedFigure is the sharded-vs-monolith Figure 5(a) arrival sweep: the
// same tunable workload admitted by the monolithic arbitrator and by a
// federated plane of equal total capacity.
type ShardedFigure struct {
	Shards int
	ProbeK int
	Points []ShardedPoint
}

// Fig5aSharded sweeps the mean arrival interval (Figure 5(a)'s domain),
// comparing monolithic and sharded admission on the tunable task system.
// shards/probeK <= 0 select 2 shards with full fan-out — the smallest
// plane whose shards still fit the x = 16 wide task of the default
// configuration.
func Fig5aSharded(base Config, intervals []float64, shards, probeK int) (ShardedFigure, error) {
	if intervals == nil {
		intervals = DefaultIntervals()
	}
	if shards <= 0 {
		shards = 2
	}
	if probeK <= 0 {
		probeK = shards
	}
	fig := ShardedFigure{Shards: shards, ProbeK: probeK}
	for _, v := range intervals {
		cfg := base
		cfg.MeanInterarrival = v
		mono, err := Run(cfg, workload.Tunable)
		if err != nil {
			return ShardedFigure{}, fmt.Errorf("experiments: sharded 5a monolith at interval %v: %w", v, err)
		}
		shr, st, err := RunSharded(cfg, workload.Tunable, shards, probeK)
		if err != nil {
			return ShardedFigure{}, fmt.Errorf("experiments: sharded 5a plane at interval %v: %w", v, err)
		}
		fig.Points = append(fig.Points, ShardedPoint{Interval: v, Monolith: mono, Sharded: shr, Stats: st})
	}
	return fig, nil
}

// WriteSharded renders the comparison as a text table.
func WriteSharded(w io.Writer, fig ShardedFigure) error {
	if _, err := fmt.Fprintf(w, "sharded admission plane vs monolith (shards=%d probe=%d, tunable system)\n",
		fig.Shards, fig.ProbeK); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s %10s %10s %10s %10s %8s %8s %6s\n",
		"interval", "mono-util", "shard-util", "mono-miss", "shard-miss", "spread", "moves", "races"); err != nil {
		return err
	}
	for _, pt := range fig.Points {
		if _, err := fmt.Fprintf(w, "%10.1f %10.4f %10.4f %10.4f %10.4f %8.4f %8d %6d\n",
			pt.Interval,
			pt.Monolith.Utilization, pt.Sharded.Utilization,
			MissRate(pt.Monolith), MissRate(pt.Sharded),
			pt.Stats.Spread, pt.Stats.Migrations, pt.Stats.Races); err != nil {
			return err
		}
	}
	return nil
}
