package experiments

import (
	"strings"
	"testing"

	"milan/internal/workload"
)

func TestBestEffortAccountsEveryJob(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 400
	r, err := RunBestEffort(cfg, workload.Shape2)
	if err != nil {
		t.Fatal(err)
	}
	if r.OnTime+r.Late != cfg.Jobs {
		t.Fatalf("on-time %d + late %d != %d (best effort must run everything)",
			r.OnTime, r.Late, cfg.Jobs)
	}
	if r.Late > 0 && r.MeanTardiness <= 0 {
		t.Fatalf("late jobs with zero tardiness: %+v", r)
	}
	if r.MaxTardiness < r.MeanTardiness {
		t.Fatalf("max %v < mean %v", r.MaxTardiness, r.MeanTardiness)
	}
	if r.Utilization <= 0 || r.Utilization > 1+1e-9 {
		t.Fatalf("utilization = %v", r.Utilization)
	}
}

func TestBestEffortRejectsTunable(t *testing.T) {
	cfg := testConfig()
	if _, err := RunBestEffort(cfg, workload.Tunable); err == nil {
		t.Fatal("tunable system accepted by best-effort runner")
	}
}

// TestBestEffortUnderloadedMeetsDeadlines: with a nearly idle machine, EDF
// best effort is fine — the pathology the paper targets appears only under
// contention.
func TestBestEffortUnderloadedMeetsDeadlines(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 200
	cfg.MeanInterarrival = 300 // offered load ~0.17
	r, err := RunBestEffort(cfg, workload.Shape2)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r.OnTime) < 0.9*float64(cfg.Jobs) {
		t.Fatalf("underloaded best effort on-time = %d of %d", r.OnTime, cfg.Jobs)
	}
}

// TestBestEffortOverloadDelaysGrow reproduces the motivation claim: under
// overload, best-effort delay grows with contention while the
// reservation-based system keeps every admitted job on time.
func TestBestEffortOverloadDelaysGrow(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 600 // offered load ~1.67
	be, reserved, err := BestEffortComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range be {
		if r.OnTime > reserved.Throughput()/2 {
			t.Errorf("best-effort %s on-time %d not far below reservation %d",
				r.System, r.OnTime, reserved.Throughput())
		}
		if r.MeanTardiness < 100 {
			t.Errorf("best-effort %s tardiness %v suspiciously small under overload",
				r.System, r.MeanTardiness)
		}
	}
	// Delay grows with contention: twice the jobs, larger max tardiness.
	bigger := cfg
	bigger.Jobs = 1200
	r2, err := RunBestEffort(bigger, workload.Shape2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunBestEffort(cfg, workload.Shape2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MaxTardiness <= r1.MaxTardiness {
		t.Errorf("max tardiness did not grow with contention: %v -> %v",
			r1.MaxTardiness, r2.MaxTardiness)
	}
}

func TestWriteBestEffort(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 120
	be, reserved, err := BestEffortComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBestEffort(&sb, be, reserved, cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXT-B", "best-effort EDF", "reservation (tunable)", "tardiness"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
