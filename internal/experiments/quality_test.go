package experiments

import (
	"strings"
	"testing"
)

func TestQualitySweepBasicShape(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 600
	pts, err := QualitySweep(cfg, []float64{20, 60}, 0.5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if len(pt.Results) != 3 {
			t.Fatalf("policies = %d", len(pt.Results))
		}
		for _, r := range pt.Results {
			if r.Admitted+r.Rejected != cfg.Jobs {
				t.Errorf("%s at %v: %d+%d != %d", r.Policy, pt.Interval, r.Admitted, r.Rejected, cfg.Jobs)
			}
			if r.MeanQuality < 0.69 || r.MeanQuality > 1.0001 {
				t.Errorf("%s at %v: mean quality %v out of range", r.Policy, pt.Interval, r.MeanQuality)
			}
			if r.DegradedShare < 0 || r.DegradedShare > 1 {
				t.Errorf("%s: degraded share %v", r.Policy, r.DegradedShare)
			}
		}
	}
	byPolicy := func(pt QualityPoint, name string) QualityResult {
		for _, r := range pt.Results {
			if strings.HasPrefix(r.Policy, name) {
				return r
			}
		}
		t.Fatalf("policy %q missing", name)
		return QualityResult{}
	}
	light := pts[1] // interval 60: light load
	// Under light load, the quality-maximizing policy achieves higher mean
	// quality than the paper's earliest-finish objective, and min-area
	// pins quality at the degraded level.
	paper := byPolicy(light, "earliest-finish")
	maxq := byPolicy(light, "max-quality")
	mina := byPolicy(light, "min-area")
	if maxq.MeanQuality <= paper.MeanQuality {
		t.Errorf("max-quality mean %v not above paper %v at light load", maxq.MeanQuality, paper.MeanQuality)
	}
	if mina.MeanQuality > 0.71 {
		t.Errorf("min-area mean quality %v, want pinned at degraded 0.7", mina.MeanQuality)
	}
	// Min-area admits the most jobs (each takes half the work).
	if mina.Admitted < paper.Admitted {
		t.Errorf("min-area admitted %d < paper %d", mina.Admitted, paper.Admitted)
	}
}

func TestQualitySweepRejectsBadParams(t *testing.T) {
	cfg := testConfig()
	if _, err := QualitySweep(cfg, nil, 0, 0.7); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := QualitySweep(cfg, nil, 0.5, 1.5); err == nil {
		t.Error("quality 1.5 accepted")
	}
}

func TestWriteQuality(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 120
	pts, err := QualitySweep(cfg, []float64{30}, 0.5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteQuality(&sb, pts, cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXT-Q", "mean-quality", "max-quality", "min-area"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
