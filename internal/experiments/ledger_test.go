package experiments

import (
	"math"
	"reflect"
	"testing"

	"milan/internal/fed"
	"milan/internal/obs/ledger"
	"milan/internal/qos"
	"milan/internal/workload"
)

// TestLedgerProfileDifferentialMonolith is the correctness closed loop
// for the monolithic plane: after every committed admission, the
// ledger's integrated reserved area must equal the scheduler profile's
// ReservedArea counter bit-identically — both accumulate the same
// pl.Area() values, under the same lock, in the same order.
func TestLedgerProfileDifferentialMonolith(t *testing.T) {
	led := ledger.NewSharded(ledger.Config{Capacity: 32}, 1)
	lg := led.Shard(0)
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{
		Procs:    32,
		Observer: lg.DecisionObserver(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	arrivals := workload.NewPoisson(20, 3)
	release := 0.0
	commits := 0
	for id := 0; id < 300; id++ {
		release += arrivals.Next()
		arb.Observe(release)
		job := p.Job(id, release, workload.Tunable)
		job.Tenant = []string{"a", "b"}[id%2]
		if _, err := arb.Negotiate(job); err == nil {
			commits++
		}
		if got, want := lg.TotalReservedArea(), arb.Stats().ReservedArea; got != want {
			t.Fatalf("after job %d: ledger reserved %v != profile reserved %v (diff %g)",
				id, got, want, got-want)
		}
	}
	if commits == 0 {
		t.Fatal("no job was admitted; differential vacuous")
	}
	if got := led.Merged().Commits; got != int64(commits) {
		t.Fatalf("ledger commits = %d, want %d", got, commits)
	}
}

// TestLedgerProfileDifferentialSharded runs the same differential on an
// 8-shard federated plane: every shard's ledger must track its own
// scheduler's ReservedArea bit-identically at every commit, including
// optimistic-commit fallbacks and DAG admissions.
func TestLedgerProfileDifferentialSharded(t *testing.T) {
	const shards = 8
	led := ledger.NewSharded(ledger.Config{}, shards)
	plane, err := fed.New(fed.Config{Procs: 128, Shards: shards, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		for i := 0; i < shards; i++ {
			got := led.Shard(i).TotalReservedArea()
			want := plane.Shard(i).Stats().ReservedArea
			if got != want {
				t.Fatalf("%s: shard %d ledger reserved %v != profile reserved %v",
					step, i, got, want)
			}
		}
	}
	p := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	arrivals := workload.NewPoisson(8, 5)
	release := 0.0
	admitted := 0
	for id := 0; id < 400; id++ {
		release += arrivals.Next()
		plane.Observe(release)
		job := p.Job(id, release, workload.Tunable)
		job.Tenant = []string{"a", "b", "c"}[id%3]
		g, err := plane.Negotiate(job)
		if err == nil {
			admitted++
			if g.Shard < 0 || g.Shard >= shards {
				t.Fatalf("grant stamped with out-of-range shard %d", g.Shard)
			}
		}
		check("negotiate")
	}
	if admitted == 0 {
		t.Fatal("no job was admitted; differential vacuous")
	}
	m := led.Merged()
	var planeReserved float64
	for i := 0; i < shards; i++ {
		planeReserved += plane.Shard(i).Stats().ReservedArea
	}
	if m.TotalReservedArea != planeReserved {
		t.Fatalf("merged reserved %v != plane-wide profile sum %v", m.TotalReservedArea, planeReserved)
	}
	if len(m.Shards) != shards {
		t.Fatalf("merged shard stamps = %v, want %d shards", m.Shards, shards)
	}
}

// TestLedgerShardCountValidation pins the configuration errors: a plane
// (or RunSharded) must refuse a ledger with fewer shards than the plane.
func TestLedgerShardCountValidation(t *testing.T) {
	led := ledger.NewSharded(ledger.Config{}, 2)
	if _, err := fed.New(fed.Config{Procs: 64, Shards: 4, Ledger: led}); err == nil {
		t.Fatal("fed.New accepted a 2-shard ledger for a 4-shard plane")
	}
	cfg := DefaultConfig()
	cfg.Jobs = 10
	cfg.Ledger = led
	if _, _, err := RunSharded(cfg, workload.Tunable, 4, 0); err == nil {
		t.Fatal("RunSharded accepted a 2-shard ledger for a 4-shard plane")
	}
}

// TestLedgerGroundTruthAccuracy closes the loop against the simulation's
// ground truth: after a full run, the ledger's exact totals must match
// the run's admission counts and the workload's per-job area, the
// realized area must equal the reserved area (every admitted job
// completed inside the simulation), and the time-bucketed view must
// integrate back to the exact totals.
func TestLedgerGroundTruthAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 500
	cfg.Ledger = ledger.NewSharded(ledger.Config{}, 1)
	cfg.Tenants = &workload.TenantCycle{Tenants: []string{"acme", "globex"}, Classes: 2}
	res, err := Run(cfg, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Ledger.Merged()
	if s.Commits != int64(res.Admitted) || s.Rejections != int64(res.Rejected) {
		t.Fatalf("ledger commits/rejections = %d/%d, run = %d/%d",
			s.Commits, s.Rejections, res.Admitted, res.Rejected)
	}
	if s.Completions != s.Commits {
		t.Fatalf("completions %d != commits %d (simulation ran to quiescence)", s.Completions, s.Commits)
	}
	// Every chain of the Figure-4 job reserves exactly 2·x·t = 800
	// processor-time units, an integer-valued float: the sum is exact.
	wantArea := cfg.Job.Area() * float64(res.Admitted)
	if s.TotalReservedArea != wantArea {
		t.Fatalf("reserved area %v, want %v (= %v x %d admitted)",
			s.TotalReservedArea, wantArea, cfg.Job.Area(), res.Admitted)
	}
	if s.TotalRealizedArea != wantArea {
		t.Fatalf("realized area %v, want %v", s.TotalRealizedArea, wantArea)
	}
	if s.TotalWasteArea() != 0 {
		t.Fatalf("waste %v after quiescence, want 0", s.TotalWasteArea())
	}
	relErr := math.Abs(s.BucketedReservedArea()-s.TotalReservedArea) / s.TotalReservedArea
	if relErr > 1e-9 {
		t.Fatalf("bucketed series drifted from exact total by %v", relErr)
	}
	// All four (tenant, class) cells must have traffic, and their exact
	// totals must sum back to the whole.
	if len(s.Totals) != 4 {
		t.Fatalf("got %d accounting keys, want 4: %+v", len(s.Totals), s.Totals)
	}
	var sum float64
	for _, tt := range s.Totals {
		if tt.Commits == 0 {
			t.Errorf("key %s/%d saw no commits", tt.Tenant, tt.Class)
		}
		sum += tt.ReservedArea
	}
	if sum != s.TotalReservedArea {
		t.Fatalf("per-key reserved sums to %v, total is %v", sum, s.TotalReservedArea)
	}
	if got := s.Capacity; got != cfg.Procs {
		t.Fatalf("snapshot capacity %d, want %d", got, cfg.Procs)
	}
}

// TestDefaultRunUnchangedByLedger pins the zero-interference contract:
// attaching a ledger (and tenant stamping) must not change a run's
// admission decisions or reported results, monolithic or sharded.
func TestDefaultRunUnchangedByLedger(t *testing.T) {
	base := DefaultConfig()
	base.Jobs = 800

	plain, err := Run(base, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	with := base
	with.Ledger = ledger.NewSharded(ledger.Config{}, 1)
	with.Tenants = &workload.TenantCycle{Tenants: []string{"a", "b", "c"}, Classes: 3}
	ledgered, err := Run(with, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ledgered) {
		t.Fatalf("ledger changed the monolithic run:\nplain    %+v\nledgered %+v", plain, ledgered)
	}

	plainSh, plainSt, err := RunSharded(base, workload.Tunable, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	withSh := base
	withSh.Ledger = ledger.NewSharded(ledger.Config{}, 2)
	withSh.Tenants = with.Tenants
	ledgeredSh, ledgeredSt, err := RunSharded(withSh, workload.Tunable, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainSh, ledgeredSh) || !reflect.DeepEqual(plainSt, ledgeredSt) {
		t.Fatalf("ledger changed the sharded run:\nplain    %+v %+v\nledgered %+v %+v",
			plainSh, plainSt, ledgeredSh, ledgeredSt)
	}
}

// TestTenantCycleDeterminism pins the round-robin assignment the
// reproducibility story depends on.
func TestTenantCycleDeterminism(t *testing.T) {
	tc := &workload.TenantCycle{Tenants: []string{"a", "b"}, Classes: 2}
	want := []struct {
		tenant string
		class  int
	}{
		{"a", 0}, {"b", 0}, {"a", 1}, {"b", 1}, {"a", 0}, {"b", 0},
	}
	for id, w := range want {
		tenant, class := tc.Assign(id)
		if tenant != w.tenant || class != w.class {
			t.Errorf("Assign(%d) = %s/%d, want %s/%d", id, tenant, class, w.tenant, w.class)
		}
	}
	var nilCycle *workload.TenantCycle
	if tenant, class := nilCycle.Assign(5); tenant != "" || class != 0 {
		t.Errorf("nil cycle assigned %q/%d", tenant, class)
	}
}
