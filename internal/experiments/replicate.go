package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"milan/internal/metrics"
	"milan/internal/workload"
)

// Replicated aggregates a run's headline metrics over independent seeds:
// the evaluation-hygiene layer the paper's single-seed graphs lack.
type Replicated struct {
	System      workload.System
	Replicas    int
	Throughput  metrics.Welford
	Utilization metrics.Welford
}

// RunReplicated runs the configuration `replicas` times with seeds
// cfg.Seed, cfg.Seed+1, ... and aggregates throughput and utilization.
func RunReplicated(cfg Config, sys workload.System, replicas int) (Replicated, error) {
	if replicas < 1 {
		return Replicated{}, fmt.Errorf("experiments: replicas = %d", replicas)
	}
	out := Replicated{System: sys, Replicas: replicas}
	for r := 0; r < replicas; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		res, err := Run(c, sys)
		if err != nil {
			return Replicated{}, err
		}
		out.Throughput.Add(float64(res.Throughput()))
		out.Utilization.Add(res.Utilization)
	}
	return out, nil
}

// WriteReplicated renders mean ± 95% CI for all three systems at one
// operating point.
func WriteReplicated(w io.Writer, cfg Config, replicas int) error {
	fmt.Fprintf(w, "Replicated point (%d seeds from %d): x=%d t=%g alpha=%g laxity=%g M=%d interval=%g jobs=%d\n",
		replicas, cfg.Seed, cfg.Job.X, cfg.Job.T, cfg.Job.Alpha, cfg.Job.Laxity,
		cfg.Procs, cfg.MeanInterarrival, cfg.Jobs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tthroughput (mean ± 95% CI)\tutilization (mean ± 95% CI)")
	for _, sys := range workload.Systems {
		rep, err := RunReplicated(cfg, sys, replicas)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.0f ± %.0f\t%.3f ± %.3f\n",
			sys, rep.Throughput.Mean(), rep.Throughput.CI95(),
			rep.Utilization.Mean(), rep.Utilization.CI95())
	}
	return tw.Flush()
}
