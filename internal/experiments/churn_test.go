package experiments

import (
	"strings"
	"testing"

	"milan/internal/workload"
)

func TestChurnRunCoreInvariants(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 600
	trace := []CapacityEvent{
		{At: 3000, Procs: 20},
		{At: 9000, Procs: 12},
		{At: 15000, Procs: 16},
	}
	results, err := ChurnRun(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byLabel := func(prefix string) ChurnResult {
		for _, r := range results {
			if strings.HasPrefix(r.Label, prefix) {
				return r
			}
		}
		t.Fatalf("missing %q", prefix)
		return ChurnResult{}
	}
	dyn := byLabel("dynamic")
	declared := byLabel("static-declared")
	min := byLabel("static-min")
	max := byLabel("static-max")

	// The renegotiating arbitrator keeps its guarantees: aborts are rare
	// relative to the churn-blind system's broken reservations.
	if dyn.Aborted >= declared.Aborted {
		t.Errorf("dynamic aborted %d, not below churn-blind %d", dyn.Aborted, declared.Aborted)
	}
	// And it completes more jobs on time than the churn-blind system.
	if dyn.Completed <= declared.Completed {
		t.Errorf("dynamic completed %d, churn-blind %d", dyn.Completed, declared.Completed)
	}
	// Bounds: conservative provisioning is a lower bound, the oracle an
	// upper bound.
	if dyn.Completed < min.Completed {
		t.Errorf("dynamic %d below conservative bound %d", dyn.Completed, min.Completed)
	}
	if dyn.Completed > max.Completed {
		t.Errorf("dynamic %d above oracle bound %d", dyn.Completed, max.Completed)
	}
	// Accounting sanity.
	for _, r := range results {
		if r.Completed != r.Admitted-r.Aborted {
			t.Errorf("%s: completed %d != admitted %d - aborted %d", r.Label, r.Completed, r.Admitted, r.Aborted)
		}
		if r.Admitted < 0 || r.Rejected < 0 || r.Aborted < 0 {
			t.Errorf("%s: negative counters %+v", r.Label, r)
		}
	}
}

func TestChurnRunDefaultTrace(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 200
	results, err := ChurnRun(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestChurnNoEventsMatchesStatic(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 400
	// A "trace" that never changes capacity: dynamic == static-declared ==
	// plain Run, and nothing aborts.
	trace := []CapacityEvent{{At: 1, Procs: cfg.Procs}}
	results, err := ChurnRun(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	dyn, declared := results[0], results[1]
	if dyn.Aborted != 0 || declared.Aborted != 0 {
		t.Fatalf("aborts without churn: %+v %+v", dyn, declared)
	}
	if dyn.Admitted != declared.Admitted {
		t.Fatalf("dynamic admitted %d != static %d without churn", dyn.Admitted, declared.Admitted)
	}
	plain, err := Run(cfg, testSystem())
	if err != nil {
		t.Fatal(err)
	}
	if declared.Admitted != plain.Admitted {
		t.Fatalf("static-declared %d != plain run %d", declared.Admitted, plain.Admitted)
	}
}

func TestChurnRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Procs = 0
	if _, err := ChurnRun(cfg, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestWriteChurn(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 100
	trace := []CapacityEvent{{At: 500, Procs: 20}}
	results, err := ChurnRun(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteChurn(&sb, results, cfg, trace); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXT-R", "capacity trace", "dynamic", "oracle"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// testSystem returns the tunable task system (helper shared with other
// experiment tests).
func testSystem() workload.System { return workload.Tunable }
