package experiments

import (
	"strings"
	"testing"

	"milan/internal/workload"
)

func TestRunReplicatedAggregates(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 300
	rep, err := RunReplicated(cfg, workload.Tunable, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput.N() != 5 || rep.Utilization.N() != 5 {
		t.Fatalf("N = %d/%d", rep.Throughput.N(), rep.Utilization.N())
	}
	if rep.Throughput.Mean() <= 0 || rep.Throughput.Mean() > float64(cfg.Jobs) {
		t.Fatalf("mean throughput = %v", rep.Throughput.Mean())
	}
	// Different seeds must actually vary the result (nonzero CI).
	if rep.Throughput.CI95() == 0 {
		t.Fatal("zero variance across seeds: seeds not applied")
	}
	if _, err := RunReplicated(cfg, workload.Tunable, 0); err == nil {
		t.Fatal("0 replicas accepted")
	}
}

func TestReplicatedTunableDominatesWithConfidence(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 500
	tun, err := RunReplicated(cfg, workload.Tunable, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunReplicated(cfg, workload.Shape2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The gap exceeds the sum of the confidence half-widths: the headline
	// result is not seed noise.
	gap := tun.Throughput.Mean() - s2.Throughput.Mean()
	if gap <= tun.Throughput.CI95()+s2.Throughput.CI95() {
		t.Fatalf("gap %v within noise (%v + %v)", gap, tun.Throughput.CI95(), s2.Throughput.CI95())
	}
}

func TestWriteReplicated(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 150
	var sb strings.Builder
	if err := WriteReplicated(&sb, cfg, 3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Replicated point", "95% CI", "tunable", "shape2"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
