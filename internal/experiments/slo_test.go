package experiments

import (
	"bytes"
	"testing"

	"milan/internal/obs"
	"milan/internal/obs/slo"
	"milan/internal/workload"
)

// auditedConfig returns a small audited configuration: tracing observer,
// SLO engine, flight recorder.
func auditedConfig(jobs int) (Config, *slo.Engine, *slo.Recorder, *obs.Observer) {
	o := obs.New(obs.Config{Tracing: true, SpanRingSize: 1 << 14})
	rec := slo.NewRecorder(1<<12, 1<<12)
	rec.Attach(o.Tracer())
	eng := slo.New(slo.Options{Registry: o.Reg, Recorder: rec})
	cfg := DefaultConfig()
	cfg.Jobs = jobs
	cfg.Obs = o
	cfg.SLO = eng
	return cfg, eng, rec, o
}

// TestAuditedRunConformant is the paper's hard invariant, end to end: a
// faithful runtime (completions exactly at the reserved finish) must
// produce zero deadline misses and zero over-admissions — admitted
// implies met.
func TestAuditedRunConformant(t *testing.T) {
	cfg, eng, rec, o := auditedConfig(400)
	res, err := Run(cfg, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Report()
	if !r.Conformant() {
		t.Fatalf("faithful run violated SLO: %+v", r.Violations)
	}
	if r.Admitted != int64(res.Admitted) || r.Rejected != int64(res.Rejected) {
		t.Fatalf("SLO counters diverge from run result: slo=%+v run=%+v", r, res)
	}
	if r.Completed != r.Admitted || r.InFlight != 0 {
		t.Fatalf("completions missing: %+v", r)
	}
	if rec.Len() != 0 {
		t.Fatalf("flight recorder triggered on a conformant run: %d snapshots", rec.Len())
	}
	if o.Tracer().Total() == 0 {
		t.Fatal("no spans recorded on a traced run")
	}
	// Every admitted job's trace carries arrival, plan and run stages.
	trees := obs.BuildSpanTrees(o.Tracer().Spans())
	checked := 0
	for _, tree := range trees {
		if tree.FindStage(obs.StageArrival) == nil {
			t.Fatalf("trace %d missing arrival span", tree.Trace)
		}
		if run := tree.FindStage(obs.StageRun); run != nil {
			if _, ok := run.Attrs["deadline"]; !ok {
				t.Fatalf("run span missing deadline attr: %+v", run.SpanRec)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no run spans found in any trace")
	}
}

// TestInjectedRuntimeFaultLocalizes forces the simulated runtime to finish
// every job far past its reservation.  The SLO engine must flag the misses,
// the flight recorder must cut a snapshot, and differential replay of that
// snapshot must convict the runtime stage — not the planner or router.
func TestInjectedRuntimeFaultLocalizes(t *testing.T) {
	cfg, eng, rec, _ := auditedConfig(60)
	cfg.CompletionDelay = 1e4 // far beyond any deadline slack
	res, err := Run(cfg, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Fatal("nothing admitted; fault injection untested")
	}
	r := eng.Report()
	if r.Conformant() || r.DeadlineMisses == 0 {
		t.Fatalf("injected fault not detected: %+v", r)
	}
	if rec.Len() == 0 {
		t.Fatal("flight recorder did not trigger")
	}
	snap := rec.Snapshots()[0]
	if snap.Kind != slo.TriggerDeadlineMiss {
		t.Fatalf("snapshot kind = %s", snap.Kind)
	}
	v := slo.Replay(snap)
	if v.Fault != slo.FaultRuntime {
		t.Fatalf("replay verdict = %+v, want runtime", v)
	}
	if v.ActualFinish <= v.ReservedFinish {
		t.Fatalf("replay numbers inconsistent: %+v", v)
	}

	// The snapshot survives a JSONL round trip with the same verdict —
	// the production workflow: download /flight, replay offline.
	var buf bytes.Buffer
	if err := snap.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := slo.DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2 := slo.Replay(got); v2 != v {
		t.Fatalf("verdict drifted across JSONL: %+v vs %+v", v2, v)
	}
}

// TestInjectedPlannerFaultLocalizes feeds the SLO engine a reservation
// already past its deadline (bypassing the real planner, which never emits
// one): the over-admission trigger must localize to the planner.
func TestInjectedPlannerFaultLocalizes(t *testing.T) {
	rec := slo.NewRecorder(64, 64)
	eng := slo.New(slo.Options{Recorder: rec})
	eng.JobAdmitted(1, 77, 1.0, 1e-3, 10.0, 12.0)
	if rec.Len() != 1 {
		t.Fatal("over-admission did not trigger")
	}
	if v := slo.Replay(rec.Last()); v.Fault != slo.FaultPlanner {
		t.Fatalf("verdict = %+v, want planner", v)
	}
}

// TestShardedAuditedRunZeroMisses is the acceptance gate: a full sharded
// run under audit reports zero deadline-miss violations.
func TestShardedAuditedRunZeroMisses(t *testing.T) {
	cfg, eng, rec, _ := auditedConfig(600)
	res, st, err := RunSharded(cfg, workload.Tunable, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Report()
	if !r.Conformant() || r.DeadlineMisses != 0 {
		t.Fatalf("sharded run violated SLO: %+v", r.Violations)
	}
	if r.Completed != int64(res.Admitted) {
		t.Fatalf("completions %d != admitted %d", r.Completed, res.Admitted)
	}
	if st.Shards != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if rec.Len() != 0 {
		// Router anomalies may legitimately trigger under contention, but
		// the tiny 2-shard run must stay quiet.
		t.Fatalf("unexpected flight snapshots: %d (%s)", rec.Len(), rec.Last().Kind)
	}
	if got := eng.Report(); got.OverAdmissions != 0 {
		t.Fatalf("over-admissions: %d", got.OverAdmissions)
	}
}

// TestDefaultRunUnchangedByAuditKnobs pins the zero-cost contract: the
// same seed with and without auditing produces bit-identical RunResults.
func TestDefaultRunUnchangedByAuditKnobs(t *testing.T) {
	base := DefaultConfig()
	base.Jobs = 300
	plain, err := Run(base, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	audited, eng, _, _ := auditedConfig(300)
	got, err := Run(audited, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Admitted != got.Admitted || plain.Rejected != got.Rejected ||
		plain.Utilization != got.Utilization || plain.Horizon != got.Horizon ||
		plain.MeanLateSlack != got.MeanLateSlack {
		t.Fatalf("auditing changed the run:\nplain   %+v\naudited %+v", plain, got)
	}
	if eng.Report().Admitted == 0 {
		t.Fatal("audit engine saw nothing")
	}
}
