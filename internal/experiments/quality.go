package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"milan/internal/core"
	"milan/internal/qos"
	"milan/internal/sim"
	"milan/internal/workload"
)

// QualityResult summarizes one quality-workload run under one policy.
type QualityResult struct {
	Policy        string
	Admitted      int
	Rejected      int
	MeanQuality   float64 // over admitted jobs
	TotalQuality  float64 // sum over admitted jobs (0 credit for rejections)
	DegradedShare float64 // fraction of admitted jobs granted a degraded path
	Utilization   float64
}

// QualityPoint compares policies at one arrival interval.
type QualityPoint struct {
	Interval float64
	Results  []QualityResult
}

// QualitySweep is the EXT-Q extension experiment: jobs offer full-quality
// and degraded execution paths (different total work, different quality —
// the setting Section 5.1 describes but does not evaluate) and the sweep
// compares the paper's earliest-finish objective against the
// quality-maximizing objective as load varies.
func QualitySweep(base Config, intervals []float64, degradedScale, degradedQuality float64) ([]QualityPoint, error) {
	if intervals == nil {
		intervals = []float64{10, 20, 30, 45, 60, 85}
	}
	spec := workload.QualityJob{
		Base:            base.Job,
		DegradedScale:   degradedScale,
		DegradedQuality: degradedQuality,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	policies := []struct {
		name string
		opts *core.Options
	}{
		{"earliest-finish (paper)", nil},
		{"max-quality", &core.Options{TieBreak: core.TieBreakMaxQuality}},
		{"min-area (greedy cheap)", &core.Options{TieBreak: core.TieBreakMinArea}},
	}
	var out []QualityPoint
	for _, iv := range intervals {
		pt := QualityPoint{Interval: iv}
		for _, pol := range policies {
			cfg := base
			cfg.MeanInterarrival = iv
			cfg.Opts = pol.opts
			r, err := runQuality(cfg, spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: quality sweep at %v/%s: %w", iv, pol.name, err)
			}
			r.Policy = pol.name
			pt.Results = append(pt.Results, r)
		}
		out = append(out, pt)
	}
	return out, nil
}

// runQuality drives one quality-workload simulation.
func runQuality(cfg Config, spec workload.QualityJob) (QualityResult, error) {
	if err := cfg.Validate(); err != nil {
		return QualityResult{}, err
	}
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: cfg.Procs, Options: cfg.Opts})
	if err != nil {
		return QualityResult{}, err
	}
	arrivals := workload.NewPoisson(cfg.MeanInterarrival, cfg.Seed)
	var engine sim.Engine
	var res QualityResult
	var lastFinish, lastRelease float64
	degraded := 0

	var scheduleArrival func(id int)
	scheduleArrival = func(id int) {
		if id >= cfg.Jobs {
			return
		}
		engine.After(arrivals.Next(), "arrival", func() {
			now := engine.Now()
			lastRelease = now
			arb.Observe(now)
			job := spec.Job(id, now)
			g, err := qos.NewAgent(job).NegotiateWith(arb)
			if err == nil {
				res.Admitted++
				res.TotalQuality += g.Quality
				if g.Quality < 1 {
					degraded++
				}
				if f := g.Finish(); f > lastFinish {
					lastFinish = f
				}
			} else {
				res.Rejected++
			}
			scheduleArrival(id + 1)
		})
	}
	scheduleArrival(0)
	engine.Run()

	if res.Admitted > 0 {
		res.MeanQuality = res.TotalQuality / float64(res.Admitted)
		res.DegradedShare = float64(degraded) / float64(res.Admitted)
	}
	horizon := lastFinish
	if lastRelease > horizon {
		horizon = lastRelease
	}
	if horizon > 0 {
		res.Utilization = arb.Utilization(0, horizon)
	}
	return res, nil
}

// WriteQuality renders the EXT-Q comparison table.
func WriteQuality(w io.Writer, pts []QualityPoint, cfg Config) error {
	fmt.Fprintf(w, "Extension EXT-Q: quality maximization (x=%d t=%g alpha=%g laxity=%g M=%d jobs=%d seed=%d)\n",
		cfg.Job.X, cfg.Job.T, cfg.Job.Alpha, cfg.Job.Laxity, cfg.Procs, cfg.Jobs, cfg.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "interval\tpolicy\tadmitted\tmean-quality\ttotal-quality\tdegraded-share\tutil")
	for _, pt := range pts {
		for _, r := range pt.Results {
			fmt.Fprintf(tw, "%g\t%s\t%d\t%.3f\t%.0f\t%.2f\t%.3f\n",
				pt.Interval, r.Policy, r.Admitted, r.MeanQuality, r.TotalQuality, r.DegradedShare, r.Utilization)
		}
	}
	return tw.Flush()
}
