package experiments

import (
	"strings"
	"testing"

	"milan/internal/workload"
)

// shardedTestConfig is a reduced sweep (fewer jobs) in the paper's regime.
func shardedTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Jobs = 800
	return cfg
}

// TestFig5aShardedComparableToMonolith runs the sharded-vs-monolith Figure
// 5(a) entry on a reduced sweep and pins the plane's quality and balance:
// the sharded utilization and miss-rate stay close to the monolith's, and
// the rebalancer keeps the per-shard utilization spread within the
// documented SpreadBound (read back through the obs gauges).
func TestFig5aShardedComparableToMonolith(t *testing.T) {
	cfg := shardedTestConfig()
	intervals := []float64{15, 30, 50, 70}
	fig, err := Fig5aSharded(cfg, intervals, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != len(intervals) {
		t.Fatalf("points = %d", len(fig.Points))
	}
	for _, pt := range fig.Points {
		if pt.Monolith.Admitted == 0 || pt.Sharded.Admitted == 0 {
			t.Fatalf("interval %v: degenerate run (mono %d, sharded %d admitted)",
				pt.Interval, pt.Monolith.Admitted, pt.Sharded.Admitted)
		}
		// A shard is half the machine, so the plane cannot beat the
		// monolith; it must stay within a modest utilization gap.
		if gap := pt.Monolith.Utilization - pt.Sharded.Utilization; gap > 0.15 {
			t.Errorf("interval %v: utilization gap %v too wide (mono %v, sharded %v)",
				pt.Interval, gap, pt.Monolith.Utilization, pt.Sharded.Utilization)
		}
		if gap := MissRate(pt.Sharded) - MissRate(pt.Monolith); gap > 0.15 {
			t.Errorf("interval %v: miss-rate gap %v too wide", pt.Interval, gap)
		}
		if pt.Stats.Spread > SpreadBound {
			t.Errorf("interval %v: per-shard utilization spread %v exceeds documented bound %v",
				pt.Interval, pt.Stats.Spread, SpreadBound)
		}
		if pt.Stats.Shards != 2 || pt.Stats.ProbeK != 2 {
			t.Errorf("stats plane shape = %+v", pt.Stats)
		}
	}
	var sb strings.Builder
	if err := WriteSharded(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shards=2") {
		t.Fatalf("table missing header:\n%s", sb.String())
	}
	t.Logf("\n%s", sb.String())
}

// TestRunShardedSingleShardMatchesRun is the experiments-level face of the
// differential guarantee: a 1-shard plane with probe fan-out 1 reproduces
// the monolithic run exactly.
func TestRunShardedSingleShardMatchesRun(t *testing.T) {
	cfg := shardedTestConfig()
	mono, err := Run(cfg, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	shr, st, err := RunSharded(cfg, workload.Tunable, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Admitted != shr.Admitted || mono.Rejected != shr.Rejected {
		t.Fatalf("throughput differs: mono %d/%d, sharded %d/%d",
			mono.Admitted, mono.Rejected, shr.Admitted, shr.Rejected)
	}
	if mono.Utilization != shr.Utilization {
		t.Fatalf("utilization differs: %v vs %v", mono.Utilization, shr.Utilization)
	}
	if st.Spread != 0 {
		t.Fatalf("1-shard spread = %v", st.Spread)
	}
}
