package experiments

import (
	"reflect"
	"testing"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/workload"
)

// TestFig5aReplayIndexOnOff replays the Figure 5(a) arrival-interval sweep
// end to end — all three task systems, the full admission/negotiation loop —
// with the profile index enabled (the default) and disabled, and requires
// the resulting figures to be identical in every field: admissions,
// rejections, utilization, horizon, chain shares, and mean slack.  The
// index is a pure accelerator; it must never change a decision.
func TestFig5aReplayIndexOnOff(t *testing.T) {
	intervals := []float64{10, 25, 55, 85}

	on := testConfig()
	on.Jobs = 400 // keep the 2x sweep affordable in -race runs
	off := on
	off.Opts = &core.Options{ProfileIndex: core.ProfileIndexOff}

	figOn, err := Fig5a(on, intervals)
	if err != nil {
		t.Fatalf("Fig5a indexed: %v", err)
	}
	figOff, err := Fig5a(off, intervals)
	if err != nil {
		t.Fatalf("Fig5a linear: %v", err)
	}

	if len(figOn.Points) != len(intervals) || len(figOff.Points) != len(intervals) {
		t.Fatalf("point counts: indexed %d, linear %d, want %d",
			len(figOn.Points), len(figOff.Points), len(intervals))
	}
	for i := range figOn.Points {
		pOn, pOff := figOn.Points[i], figOff.Points[i]
		if pOn.Param != pOff.Param {
			t.Fatalf("point %d: params diverge: %v vs %v", i, pOn.Param, pOff.Param)
		}
		for _, sys := range workload.Systems {
			rOn, rOff := pOn.Results[sys], pOff.Results[sys]
			if !reflect.DeepEqual(rOn, rOff) {
				t.Errorf("interval %v system %s: results diverge:\nindexed: %+v\nlinear:  %+v",
					pOn.Param, sys, rOn, rOff)
			}
		}
	}
}

// TestRunRecordsIndexWork checks the observability side of the replay: a
// default (indexed) run under an Observer exports non-trivial index gauges,
// and a ProfileIndexOff run exports none.
func TestRunRecordsIndexWork(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 200
	cfg.Obs = obs.New(obs.Config{Capacity: cfg.Procs})
	if _, err := Run(cfg, workload.Tunable); err != nil {
		t.Fatalf("indexed run: %v", err)
	}
	snap := cfg.Obs.Snapshot()
	if snap.Gauges[obs.MetricIndexRebuilds] == 0 || snap.Gauges[obs.MetricIndexDescents] == 0 {
		t.Fatalf("indexed run exported no index work: %+v", snap.Gauges)
	}
	if d := snap.Gauges[obs.MetricIndexMeanDepth]; d <= 0 {
		t.Fatalf("mean descent depth = %v, want > 0", d)
	}

	cfg.Obs = obs.New(obs.Config{Capacity: cfg.Procs})
	cfg.Opts = &core.Options{ProfileIndex: core.ProfileIndexOff}
	if _, err := Run(cfg, workload.Tunable); err != nil {
		t.Fatalf("linear run: %v", err)
	}
	snap = cfg.Obs.Snapshot()
	if v, ok := snap.Gauges[obs.MetricIndexDescents]; ok && v != 0 {
		t.Fatalf("linear run exported index descents: %v", v)
	}
}
