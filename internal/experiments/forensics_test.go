package experiments

import (
	"reflect"
	"testing"

	"milan/internal/obs"
	"milan/internal/obs/forensics"
	"milan/internal/obs/slo"
	"milan/internal/workload"
)

// forensicsConfig is a small overloaded run: plenty of rejections so the
// explainer, the closed-loop verifier and the forecaster all get work.
func forensicsConfig() Config {
	cfg := DefaultConfig()
	cfg.Jobs = 400
	cfg.MeanInterarrival = 12 // offered load ~2.1
	return cfg
}

// TestRunForensicsClosedLoop is the tentpole's acceptance property at the
// harness level: every rejection of a monolithic run is diagnosed, and
// every diagnosis's suggested relaxation — replayed through the
// arbitrator's side-effect-free WhatIf probe — flips the job to admitted.
func TestRunForensicsClosedLoop(t *testing.T) {
	cfg := forensicsConfig()
	reg := obs.NewRegistry()
	rec := forensics.NewRecorder(cfg.Jobs) // retain everything
	rec.BindMetrics(reg)
	fc := forensics.NewForecaster()
	fc.BindMetrics(reg)
	cfg.Forensics = rec
	cfg.Forecast = fc
	cfg.SLO = slo.New(slo.Options{})

	res, err := Run(cfg, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 || res.Admitted == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if got := rec.Total(); got != int64(res.Rejected) {
		t.Fatalf("recorded %d diagnoses for %d rejections", got, res.Rejected)
	}

	suggested, verified := 0, 0
	for _, r := range rec.Records() {
		if r.Diag.Suggestion == nil {
			continue
		}
		suggested++
		if r.Verified == nil {
			t.Fatalf("job %d: suggestion never replayed", r.Diag.JobID)
		}
		if !*r.Verified {
			t.Fatalf("job %d: suggestion %+v refuted on replay", r.Diag.JobID, *r.Diag.Suggestion)
		}
		verified++
	}
	if suggested == 0 {
		t.Fatal("no rejection carried a suggestion")
	}
	if verified != suggested {
		t.Fatalf("verified %d of %d suggestions", verified, suggested)
	}
	if v := reg.Counter(forensics.MetricWhatIfVerified).Value(); v != int64(verified) {
		t.Fatalf("verified counter = %d, want %d", v, verified)
	}

	// The forecaster advertised and audited; its audit reached the SLO
	// engine's forecast objective.
	if _, ok := fc.Last(); !ok {
		t.Fatal("forecaster never advertised")
	}
	checks := reg.Counter(forensics.MetricForecastChecks).Value()
	if checks == 0 {
		t.Fatal("forecaster audited no rejections")
	}
	if r := cfg.SLO.Report(); r.ForecastChecks != checks {
		t.Fatalf("SLO forecast checks = %d, forecaster counted %d", r.ForecastChecks, checks)
	}
}

// TestRunShardedForensics runs the federated plane under the same
// forensics wiring: diagnoses carry real shard stamps, the closed loop
// verifies against the plane, and the forecaster's frontier follows the
// plane's event-driven headroom sink.
func TestRunShardedForensics(t *testing.T) {
	cfg := forensicsConfig()
	cfg.Jobs = 300
	rec := forensics.NewRecorder(0)
	fc := forensics.NewForecaster()
	cfg.Forensics = rec
	cfg.Forecast = fc

	res, _, err := RunSharded(cfg, workload.Tunable, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatalf("degenerate sharded run: %+v", res)
	}
	// The plane diagnoses every losing probe, so there is at least one
	// record per rejection, each stamped with the deciding shard.
	if rec.Total() < int64(res.Rejected) {
		t.Fatalf("recorded %d diagnoses for %d rejections", rec.Total(), res.Rejected)
	}
	refuted := 0
	for _, r := range rec.Records() {
		if r.Diag.Shard < 0 || r.Diag.Shard >= 2 {
			t.Fatalf("job %d: shard stamp %d", r.Diag.JobID, r.Diag.Shard)
		}
		if r.Verified != nil && !*r.Verified {
			refuted++
		}
	}
	if refuted != 0 {
		t.Fatalf("%d suggestions refuted on plane replay", refuted)
	}
	if hr, ok := fc.Last(); !ok || hr.Horizon != cfg.headroomHorizon() {
		t.Fatalf("forecaster frontier = %+v (ok=%v)", hr, ok)
	}
}

// TestForensicsDoNotPerturbResults is the zero-interference guarantee:
// the identical configuration produces bitwise identical results with and
// without the forensics instrumentation, because diagnosis fires only on
// the failure path and every probe replans on a fork.
func TestForensicsDoNotPerturbResults(t *testing.T) {
	base := forensicsConfig()
	plain, err := Run(base, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}

	instr := base
	instr.Forensics = forensics.NewRecorder(0)
	instr.Forecast = forensics.NewForecaster()
	probed, err := Run(instr, workload.Tunable)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, probed) {
		t.Fatalf("forensics perturbed the run\nplain:  %+v\nprobed: %+v", plain, probed)
	}

	// Same guarantee on the sharded plane.
	plainShard, _, err := RunSharded(base, workload.Tunable, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	probedShard, _, err := RunSharded(instr, workload.Tunable, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainShard, probedShard) {
		t.Fatalf("forensics perturbed the sharded run\nplain:  %+v\nprobed: %+v", plainShard, probedShard)
	}
}
