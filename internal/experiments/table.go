package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"milan/internal/workload"
)

// WriteFigure renders a single-parameter figure as the two tables the paper
// plots: system utilization (left graph) and throughput (right graph) for
// the tunable, shape-1 and shape-2 task systems.
func WriteFigure(w io.Writer, fig Figure, cfg Config) error {
	fmt.Fprintf(w, "Figure %s: sweep of %s (x=%d t=%g alpha=%g laxity=%g M=%d mean-gap=%g jobs=%d seed=%d)\n",
		fig.ID, fig.ParamName, cfg.Job.X, cfg.Job.T, cfg.Job.Alpha, cfg.Job.Laxity,
		cfg.Procs, cfg.MeanInterarrival, cfg.Jobs, cfg.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tutil(tunable)\tutil(shape1)\tutil(shape2)\tthr(tunable)\tthr(shape1)\tthr(shape2)\tthr-gain\n", fig.ParamName)
	for _, pt := range fig.Points {
		t := pt.Results[workload.Tunable]
		s1 := pt.Results[workload.Shape1]
		s2 := pt.Results[workload.Shape2]
		fmt.Fprintf(tw, "%g\t%.3f\t%.3f\t%.3f\t%d\t%d\t%d\t%+d\n",
			pt.Param, t.Utilization, s1.Utilization, s2.Utilization,
			t.Throughput(), s1.Throughput(), s2.Throughput(), pt.ThroughputGain())
	}
	return tw.Flush()
}

// WriteGrid renders a Figure-6 benefit surface: one row per arrival
// interval, one column per laxity, entries are tunable-minus-shape
// throughput.
func WriteGrid(w io.Writer, g Grid, cfg Config) error {
	model := "non-malleable"
	if g.Malleable {
		model = "malleable"
	}
	fmt.Fprintf(w, "Figure %s: throughput benefit of tunability, %s model (x=%d t=%g alpha=%g M=%d jobs=%d seed=%d)\n",
		g.ID, model, cfg.Job.X, cfg.Job.T, cfg.Job.Alpha, cfg.Procs, cfg.Jobs, cfg.Seed)
	surfaces := []struct {
		name string
		grid [][]int
	}{
		{"benefit over shape 1", g.VsShape1},
		{"benefit over shape 2", g.VsShape2},
	}
	for _, s := range surfaces {
		name, grid := s.name, s.grid
		fmt.Fprintf(w, "\n%s:\n", name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "interval\\laxity")
		for _, lax := range g.Laxities {
			fmt.Fprintf(tw, "\t%g", lax)
		}
		fmt.Fprintln(tw)
		for i, iv := range g.Intervals {
			fmt.Fprintf(tw, "%g", iv)
			for j := range g.Laxities {
				fmt.Fprintf(tw, "\t%+d", grid[i][j])
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\nmax benefit vs shape1: %d, vs shape2: %d; mean vs shape1: %.1f, vs shape2: %.1f\n",
		MaxBenefit(g.VsShape1), MaxBenefit(g.VsShape2), MeanBenefit(g.VsShape1), MeanBenefit(g.VsShape2))
	return nil
}
