// Package experiments regenerates the paper's evaluation (Section 5): for
// each figure it sweeps the relevant parameter of the synthetic task system
// over the three task systems (tunable, shape 1, shape 2), runs the full
// stack — workload generator → QoS agent → QoS arbitrator → greedy
// scheduler — inside the discrete-event engine, and reports utilization and
// throughput.
package experiments

import (
	"fmt"
	"math"
	"time"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/forensics"
	"milan/internal/obs/ledger"
	"milan/internal/obs/slo"
	"milan/internal/qos"
	"milan/internal/sim"
	"milan/internal/workload"
)

// Config parameterizes one simulation run.  DefaultConfig matches the
// paper's fixed values (x = 16, t = 25, 10,000 arrivals) with the
// held-constant sweep parameters recorded in EXPERIMENTS.md.
type Config struct {
	Procs            int // machine size M
	Job              workload.FigureJob
	MeanInterarrival float64 // Poisson mean gap
	Jobs             int     // number of arrivals
	Seed             int64
	Malleable        bool          // Section 5.4: tasks become malleable
	Opts             *core.Options // scheduler policy; nil = paper defaults
	// ArrivalFactory, if set, overrides the Poisson arrival process (the
	// mean interarrival still describes the intended load for reporting).
	ArrivalFactory func(seed int64) workload.Arrivals
	// Obs, if set, observes every run driven by this configuration: the
	// scheduler's admission pipeline (via core hook adapters), the
	// arbitrator's decision stream and the sim engine's fired events.
	// While a run executes, the observer's clock follows the simulation
	// clock.  When the observer traces (obs.Config.Tracing), the run loop
	// mints one trace per arrival and records arrival/run spans around the
	// stages the lower layers produce.  nil (the default) costs nothing.
	Obs *obs.Observer
	// SLO, if set, audits the run: every admission decision feeds the
	// engine's latency objective and in-flight set, and every admitted
	// job's completion is checked against its deadline (the hard
	// "admitted implies met" invariant).  Completions are simulated as
	// discrete events at the reservation finish plus CompletionDelay.
	// nil (the default) costs nothing and schedules no extra events.
	SLO *slo.Engine
	// CompletionDelay shifts every admitted job's simulated completion
	// past its reservation finish — a fault-injection knob: a positive
	// delay makes the runtime break reservations it was granted, which
	// the SLO engine must flag as deadline misses and the flight
	// recorder's replay must localize to the runtime stage.  Zero (the
	// default) completes jobs exactly when their reservation promised.
	CompletionDelay float64
	// Forensics, if set, retains a rejection diagnosis for every failed
	// admission of the run and closes the loop: after each rejection the
	// diagnosis's verified suggestion is replayed through the arbitrator's
	// side-effect-free WhatIf probe and the outcome recorded
	// (forensics.Recorder.MarkVerified).  nil (the default) costs nothing
	// — the planner's diagnosis path stays un-instrumented.
	Forensics *forensics.Recorder
	// Forecast, if set, advertises the arbitrator's headroom frontier over
	// HeadroomHorizon before every arrival and audits each rejection
	// against the advertised frontier; forecast misses additionally feed
	// the SLO engine's headroom-forecast objective when SLO is set.
	Forecast *forensics.Forecaster
	// HeadroomHorizon is the forecaster's sliding window in simulated time
	// units; non-positive selects DefaultHeadroomHorizon.
	HeadroomHorizon float64
	// Ledger, if set, accounts the run per tenant and priority class:
	// every commit is recorded in admission order (shard 0 for the
	// monolith; the granting shard for a sharded plane), every admitted
	// job's completion realizes its reserved area, and the clock advances
	// the ledger's retention.  Attach a fresh ledger per run — totals are
	// cumulative.  nil (the default) schedules the same events and makes
	// the same decisions as no ledger at all.
	Ledger *ledger.Sharded
	// Tenants, if set (with Ledger), stamps each arrival with a tenant
	// and class before negotiation.
	Tenants *workload.TenantCycle
}

// DefaultHeadroomHorizon is the forecaster's window when the
// configuration leaves HeadroomHorizon unset: four times the default
// task duration, comfortably covering the deadline window of the
// paper's synthetic jobs.
const DefaultHeadroomHorizon = 100.0

// headroomHorizon resolves the forecast window.
func (c Config) headroomHorizon() float64 {
	if c.HeadroomHorizon > 0 {
		return c.HeadroomHorizon
	}
	return DefaultHeadroomHorizon
}

// diagnosisSink composes the run's diagnosis consumers — the forensics
// recorder, the headroom forecaster's rejection audit and (through it)
// the SLO engine's forecast objective — into one core.Options.Diagnosis
// callback.  It returns nil when no consumer is configured, preserving
// the planner's zero-cost default path.
func (c Config) diagnosisSink() func(*core.PlanDiagnosis) {
	if c.Forensics == nil && c.Forecast == nil {
		return nil
	}
	rec, fc, eng := c.Forensics, c.Forecast, c.SLO
	return func(d *core.PlanDiagnosis) {
		rec.Record(d) // nil-safe
		if fc != nil {
			miss := fc.NoteRejection(d)
			if eng != nil {
				// The diagnosis carries the rejected job's release time,
				// which is the simulation clock at decision time.
				eng.ObserveForecast(d.Release, miss)
			}
		}
	}
}

// schedulerOptions returns the effective scheduler options for a run:
// the configured policies plus, when forensics consumers are present,
// the composed diagnosis sink.  The configured Options value is never
// mutated.
func (c Config) schedulerOptions() *core.Options {
	sink := c.diagnosisSink()
	if sink == nil {
		return c.Opts
	}
	var o core.Options
	if c.Opts != nil {
		o = *c.Opts
	}
	if prev := o.Diagnosis; prev != nil {
		o.Diagnosis = func(d *core.PlanDiagnosis) {
			prev(d)
			sink(d)
		}
	} else {
		o.Diagnosis = sink
	}
	return &o
}

// DefaultConfig returns the baseline configuration: M = 32 processors,
// x = 16, t = 25, alpha = 0.25, laxity = 0.5, mean interarrival 30,
// 10,000 jobs.
func DefaultConfig() Config {
	return Config{
		Procs:            32,
		Job:              workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5},
		MeanInterarrival: 30,
		Jobs:             10000,
		Seed:             1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("experiments: procs = %d", c.Procs)
	}
	if c.Jobs < 1 {
		return fmt.Errorf("experiments: jobs = %d", c.Jobs)
	}
	if c.MeanInterarrival <= 0 {
		return fmt.Errorf("experiments: mean interarrival = %v", c.MeanInterarrival)
	}
	return c.Job.Validate()
}

// OfferedLoad returns the mean offered load of the configuration: job work
// divided by machine capacity times the mean interarrival gap.  Values
// above 1 mean the system is overloaded on average.
func (c Config) OfferedLoad() float64 {
	return c.Job.Area() / (float64(c.Procs) * c.MeanInterarrival)
}

// RunResult summarizes one simulation run of one task system.
type RunResult struct {
	System        workload.System
	Admitted      int // jobs admitted = jobs finishing on time (throughput)
	Rejected      int
	Utilization   float64 // reserved capacity fraction over [0, horizon]
	Horizon       float64 // max(last reservation finish, last release)
	ChainShare    []int   // how often each chain of the tunable job was chosen
	MeanLateSlack float64 // mean (deadline - finish) over admitted jobs
}

// Throughput returns the number of on-time jobs (every admitted job meets
// its deadlines by construction of the reservation).
func (r RunResult) Throughput() int { return r.Admitted }

// admitter is the arbitration surface the simulation loop drives: the
// monolithic qos.Arbitrator and the federated fed.Arbitrator (see
// sharded.go) both satisfy it.  The forensics surface (WhatIf probes and
// the headroom frontier) rides along so the loop can close the rejection
// loop and refresh the forecaster against either plane.
type admitter interface {
	qos.Negotiator
	Observe(now float64)
	Utilization(origin, horizon float64) float64
	IndexStats() core.IndexStats
	WhatIf(job core.Job, d core.WhatIfDelta) (*core.Placement, bool)
	Headroom(horizon float64) core.Headroom
}

// Run simulates one task system under the configuration, driving arrivals
// through the event engine and negotiating each job via a QoS agent against
// the arbitrator.
func Run(cfg Config, sys workload.System) (RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	arbCfg := qos.ArbitratorConfig{Procs: cfg.Procs, Options: cfg.schedulerOptions()}
	if cfg.Obs != nil {
		arbCfg = cfg.Obs.InstrumentArbitratorConfig(arbCfg)
	}
	if cfg.Ledger != nil {
		// The monolith accounts on shard 0; the arbitrator invokes its
		// observer under its own lock right after each scheduler commit,
		// so ledger recording happens in commit order.
		lg := cfg.Ledger.Shard(0)
		lg.SetCapacity(cfg.Procs, 0)
		arbCfg.Observer = lg.DecisionObserver(arbCfg.Observer)
	}
	arb, err := qos.NewArbitrator(arbCfg)
	if err != nil {
		return RunResult{}, err
	}
	return runLoop(cfg, sys, arb)
}

// runLoop drives the discrete-event simulation of one task system against
// an already-built arbitrator.
func runLoop(cfg Config, sys workload.System, arb admitter) (RunResult, error) {
	var arrivals workload.Arrivals
	if cfg.ArrivalFactory != nil {
		arrivals = cfg.ArrivalFactory(cfg.Seed)
	} else {
		arrivals = workload.NewPoisson(cfg.MeanInterarrival, cfg.Seed)
	}
	res := RunResult{System: sys}
	var engine sim.Engine
	if cfg.Obs != nil {
		engine.OnEvent = cfg.Obs.BindEngine(&engine)
		cfg.Obs.SetCapacity(cfg.Procs)
		defer cfg.Obs.SetClock(nil) // back to wall time after the run
	}
	var tracer *obs.Tracer
	if cfg.Obs != nil {
		tracer = cfg.Obs.Tracer()
	}
	if cfg.Forensics != nil {
		// Stamp retained diagnoses with the simulation clock, not wall time.
		cfg.Forensics.SetClock(engine.Now)
	}
	// Auditing (tracing or SLO accounting) adds completion events to the
	// simulation and wall-clock latency timing around each negotiation;
	// the default path schedules and measures nothing extra.
	auditing := cfg.SLO != nil || tracer != nil
	forecastHorizon := 0.0
	if cfg.Forecast != nil {
		forecastHorizon = cfg.headroomHorizon()
	}
	var lastFinish, lastRelease float64
	var slackSum float64

	var scheduleArrival func(id int)
	scheduleArrival = func(id int) {
		if id >= cfg.Jobs {
			return
		}
		gap := arrivals.Next()
		engine.After(gap, "arrival", func() {
			now := engine.Now()
			lastRelease = now
			arb.Observe(now)
			// Ledger retention follows the clock.  (A sharded plane's
			// Observe already advanced its shard ledgers; Advance is
			// monotone, so the second call is a no-op there.)
			cfg.Ledger.Advance(now)
			if cfg.Forecast != nil {
				// Refresh the advertised frontier at decision time, so the
				// rejection audit below judges a forecast the plane could
				// actually have served this arrival.
				cfg.Forecast.Advertise(arb.Headroom(forecastHorizon))
			}
			job := cfg.Job.Job(id, now, sys)
			if cfg.Malleable {
				job = job.MakeMalleable()
			}
			if cfg.Tenants != nil {
				job.Tenant, job.Class = cfg.Tenants.Assign(id)
			}
			var root *obs.ActiveSpan
			if tracer != nil {
				tr := tracer.NewTrace()
				root = tracer.StartAt(tr, 0, "job.admit", obs.StageArrival, id, now)
				job.Trace = uint64(tr)
				job.Span = uint64(root.ID())
			}
			var wallStart time.Time
			if auditing {
				wallStart = time.Now()
			}
			ag := qos.NewAgent(job)
			g, err := ag.NegotiateWith(arb)
			var latency float64
			if auditing {
				latency = time.Since(wallStart).Seconds()
			}
			if err == nil {
				res.Admitted++
				if f := g.Finish(); f > lastFinish {
					lastFinish = f
				}
				chain := job.Chains[g.Chain]
				deadline := chain.Tasks[len(chain.Tasks)-1].Deadline
				slackSum += deadline - g.Finish()
				for len(res.ChainShare) <= g.Chain {
					res.ChainShare = append(res.ChainShare, 0)
				}
				res.ChainShare[g.Chain]++
				if auditing {
					root.SetAttr("chain", float64(g.Chain))
					root.EndAt(now)
				}
				if auditing || cfg.Ledger != nil {
					finish := g.Finish() + cfg.CompletionDelay
					if finish < now {
						finish = now
					}
					var run *obs.ActiveSpan
					if auditing {
						run = tracer.StartAt(obs.TraceID(job.Trace), obs.SpanID(job.Span),
							"job.run", obs.StageRun, id, g.Placement.Start())
						run.SetAttr("deadline", deadline)
						run.SetAttr("reserved_finish", g.Finish())
						cfg.SLO.JobAdmitted(id, job.Trace, now, latency, deadline, g.Finish())
						cfg.SLO.Tick(now)
					}
					jobID := id
					// Completion realizes the reserved area on the shard
					// that granted it (qos.Grant.Shard; 0 for the monolith).
					led := cfg.Ledger.Shard(g.Shard)
					key := ledger.KeyOf(&job)
					pl := g.Placement
					ev := engine.At(finish, "complete", func() {
						// End the run span before the completion lands in
						// the SLO engine so a triggered flight snapshot
						// already holds the span that convicts the stage.
						run.EndAt(finish)
						cfg.SLO.JobCompleted(jobID, finish)
						led.RecordCompletion(key, &pl)
					})
					ev.Trace = job.Trace
				}
			} else {
				res.Rejected++
				if cfg.Forensics != nil {
					// Close the loop: replay the diagnosis's suggested
					// relaxation through the side-effect-free WhatIf probe
					// and record whether it flips the job to admitted.
					if rec, ok := cfg.Forensics.LastFor(job.ID); ok && rec.Diag.Suggestion != nil {
						_, admitted := arb.WhatIf(job, *rec.Diag.Suggestion)
						cfg.Forensics.MarkVerified(job.ID, admitted)
					}
				}
				if auditing {
					root.SetErr("rejected")
					root.EndAt(now)
					cfg.SLO.JobRejected(id, job.Trace, now, latency)
					cfg.SLO.Tick(now)
				}
			}
			scheduleArrival(id + 1)
		})
	}
	scheduleArrival(0)
	engine.Run()

	if cfg.Obs != nil {
		cfg.Obs.RecordProfileIndex(arb.IndexStats())
	}
	res.Horizon = math.Max(lastFinish, lastRelease)
	if res.Horizon > 0 {
		res.Utilization = arb.Utilization(0, res.Horizon)
	}
	if res.Admitted > 0 {
		res.MeanLateSlack = slackSum / float64(res.Admitted)
	}
	return res, nil
}

// Point is one x-value of a figure with the three systems' results.
type Point struct {
	Param   float64
	Results map[workload.System]RunResult
}

// UtilGain returns tunable utilization minus the best non-tunable one.
func (p Point) UtilGain() float64 {
	t := p.Results[workload.Tunable].Utilization
	best := math.Max(p.Results[workload.Shape1].Utilization, p.Results[workload.Shape2].Utilization)
	return t - best
}

// ThroughputGain returns tunable throughput minus the best non-tunable one.
func (p Point) ThroughputGain() int {
	t := p.Results[workload.Tunable].Throughput()
	best := p.Results[workload.Shape1].Throughput()
	if b := p.Results[workload.Shape2].Throughput(); b > best {
		best = b
	}
	return t - best
}

// Figure is a complete single-parameter sweep (Figures 5a-5d).
type Figure struct {
	ID        string
	ParamName string
	Points    []Point
}

// sweep runs all three systems at every parameter value.
func sweep(id, paramName string, params []float64, mk func(float64) Config) (Figure, error) {
	fig := Figure{ID: id, ParamName: paramName}
	for _, v := range params {
		cfg := mk(v)
		pt := Point{Param: v, Results: make(map[workload.System]RunResult, 3)}
		for _, sys := range workload.Systems {
			r, err := Run(cfg, sys)
			if err != nil {
				return Figure{}, fmt.Errorf("experiments: %s at %s=%v system %s: %w", id, paramName, v, sys, err)
			}
			pt.Results[sys] = r
		}
		fig.Points = append(fig.Points, pt)
	}
	return fig, nil
}

// DefaultIntervals is the Figure 5(a) sweep domain (the paper varies the
// mean arrival interval from 10 to 85 with t = 25).
func DefaultIntervals() []float64 {
	var out []float64
	for v := 10.0; v <= 85; v += 5 {
		out = append(out, v)
	}
	return out
}

// DefaultLaxities is the Figure 5(b) sweep domain (0.05 to 0.95).
func DefaultLaxities() []float64 {
	var out []float64
	for v := 0.05; v <= 0.951; v += 0.05 {
		out = append(out, math.Round(v*100)/100)
	}
	return out
}

// DefaultProcs is the Figure 5(c) sweep domain (16 to 64 processors).
func DefaultProcs() []float64 {
	var out []float64
	for v := 16; v <= 64; v += 4 {
		out = append(out, float64(v))
	}
	return out
}

// Fig5a sweeps the mean arrival interval.
func Fig5a(base Config, intervals []float64) (Figure, error) {
	if intervals == nil {
		intervals = DefaultIntervals()
	}
	return sweep("5a", "arrival-interval", intervals, func(v float64) Config {
		cfg := base
		cfg.MeanInterarrival = v
		return cfg
	})
}

// Fig5b sweeps the laxity.
func Fig5b(base Config, laxities []float64) (Figure, error) {
	if laxities == nil {
		laxities = DefaultLaxities()
	}
	return sweep("5b", "laxity", laxities, func(v float64) Config {
		cfg := base
		cfg.Job.Laxity = v
		return cfg
	})
}

// Fig5c sweeps the machine size.
func Fig5c(base Config, procs []float64) (Figure, error) {
	if procs == nil {
		procs = DefaultProcs()
	}
	return sweep("5c", "processors", procs, func(v float64) Config {
		cfg := base
		cfg.Procs = int(v)
		return cfg
	})
}

// Fig5d sweeps the job shape alpha over all values keeping x*alpha integral.
func Fig5d(base Config, alphas []float64) (Figure, error) {
	if alphas == nil {
		alphas = workload.ValidAlphas(base.Job.X)
	}
	return sweep("5d", "alpha", alphas, func(v float64) Config {
		cfg := base
		cfg.Job.Alpha = v
		return cfg
	})
}

// Grid is a two-parameter benefit surface (Figures 6a and 6b): tunable
// throughput minus each non-tunable shape's throughput over the arrival
// interval x laxity grid.
type Grid struct {
	ID        string
	Malleable bool
	Intervals []float64
	Laxities  []float64
	// VsShape1[i][j] is the benefit at Intervals[i], Laxities[j].
	VsShape1 [][]int
	VsShape2 [][]int
	// Tunable[i][j] is the tunable system's absolute throughput.
	Tunable [][]int
}

// Fig6 builds the benefit grid; malleable selects Figure 6(b)'s task model.
func Fig6(base Config, intervals, laxities []float64, malleable bool) (Grid, error) {
	if intervals == nil {
		intervals = []float64{10, 20, 30, 40, 55, 70, 85}
	}
	if laxities == nil {
		laxities = []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}
	}
	id := "6a"
	if malleable {
		id = "6b"
	}
	g := Grid{ID: id, Malleable: malleable, Intervals: intervals, Laxities: laxities}
	g.VsShape1 = make([][]int, len(intervals))
	g.VsShape2 = make([][]int, len(intervals))
	g.Tunable = make([][]int, len(intervals))
	for i, iv := range intervals {
		g.VsShape1[i] = make([]int, len(laxities))
		g.VsShape2[i] = make([]int, len(laxities))
		g.Tunable[i] = make([]int, len(laxities))
		for j, lax := range laxities {
			cfg := base
			cfg.MeanInterarrival = iv
			cfg.Job.Laxity = lax
			cfg.Malleable = malleable
			var thr [3]int
			for k, sys := range workload.Systems {
				r, err := Run(cfg, sys)
				if err != nil {
					return Grid{}, fmt.Errorf("experiments: %s at (%v, %v) system %s: %w", id, iv, lax, sys, err)
				}
				thr[k] = r.Throughput()
			}
			g.Tunable[i][j] = thr[0]
			g.VsShape1[i][j] = thr[0] - thr[1]
			g.VsShape2[i][j] = thr[0] - thr[2]
		}
	}
	return g, nil
}

// MaxBenefit returns the largest entry of the grid slice.
func MaxBenefit(grid [][]int) int {
	best := math.MinInt32
	for _, row := range grid {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	return best
}

// MeanBenefit returns the mean entry of the grid slice.
func MeanBenefit(grid [][]int) float64 {
	var sum, n float64
	for _, row := range grid {
		for _, v := range row {
			sum += float64(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
