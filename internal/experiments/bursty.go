package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"milan/internal/workload"
)

// BurstyComparison is the EXT-A extension: the same offered load delivered
// as a Poisson stream versus a bursty (Markov-modulated) stream.  Live
// media workloads arrive in bursts; the comparison shows how much of the
// tunability benefit survives — or grows — when contention is episodic
// rather than smooth.
type BurstyComparison struct {
	Process string
	Results map[workload.System]RunResult
}

// RunBursty runs all three task systems under Poisson and bursty arrivals
// with the same mean gap.  The bursty process spends equal expected counts
// in busy and idle phases with gaps at 1/4 and 7/4 of the mean, keeping
// the long-run mean gap equal to cfg.MeanInterarrival.
func RunBursty(cfg Config) ([]BurstyComparison, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mk := []struct {
		name    string
		factory func(seed int64) workload.Arrivals
	}{
		{"poisson", nil},
		{"bursty", func(seed int64) workload.Arrivals {
			return workload.NewBursty(cfg.MeanInterarrival/4, cfg.MeanInterarrival*7/4, 20, seed)
		}},
	}
	var out []BurstyComparison
	for _, m := range mk {
		c := cfg
		c.ArrivalFactory = m.factory
		cmpr := BurstyComparison{Process: m.name, Results: make(map[workload.System]RunResult, 3)}
		for _, sys := range workload.Systems {
			r, err := Run(c, sys)
			if err != nil {
				return nil, fmt.Errorf("experiments: bursty %s/%s: %w", m.name, sys, err)
			}
			cmpr.Results[sys] = r
		}
		out = append(out, cmpr)
	}
	return out, nil
}

// Gain returns tunable throughput minus the best fixed shape's.
func (b BurstyComparison) Gain() int {
	t := b.Results[workload.Tunable].Throughput()
	best := b.Results[workload.Shape1].Throughput()
	if s2 := b.Results[workload.Shape2].Throughput(); s2 > best {
		best = s2
	}
	return t - best
}

// WriteBursty renders the EXT-A comparison.
func WriteBursty(w io.Writer, cmps []BurstyComparison, cfg Config) error {
	fmt.Fprintf(w, "Extension EXT-A: arrival burstiness (x=%d t=%g alpha=%g laxity=%g M=%d mean-gap=%g jobs=%d seed=%d)\n",
		cfg.Job.X, cfg.Job.T, cfg.Job.Alpha, cfg.Job.Laxity, cfg.Procs, cfg.MeanInterarrival, cfg.Jobs, cfg.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "process\tthr(tunable)\tthr(shape1)\tthr(shape2)\tgain vs best\tutil(tunable)")
	for _, c := range cmps {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%+d\t%.3f\n",
			c.Process,
			c.Results[workload.Tunable].Throughput(),
			c.Results[workload.Shape1].Throughput(),
			c.Results[workload.Shape2].Throughput(),
			c.Gain(),
			c.Results[workload.Tunable].Utilization)
	}
	return tw.Flush()
}
