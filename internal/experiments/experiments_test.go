package experiments

import (
	"math"
	"strings"
	"testing"

	"milan/internal/workload"
)

// testConfig is a reduced-size configuration in the regime the paper
// evaluates (machine size comparable to the wide task's width).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Procs = 16
	cfg.Jobs = 800
	return cfg
}

func mustRun(t *testing.T, cfg Config, sys workload.System) RunResult {
	t.Helper()
	r, err := Run(cfg, sys)
	if err != nil {
		t.Fatalf("Run(%v): %v", sys, err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Procs = 0
	if bad.Validate() == nil {
		t.Error("procs=0 accepted")
	}
	bad = DefaultConfig()
	bad.Jobs = 0
	if bad.Validate() == nil {
		t.Error("jobs=0 accepted")
	}
	bad = DefaultConfig()
	bad.MeanInterarrival = 0
	if bad.Validate() == nil {
		t.Error("interval=0 accepted")
	}
	bad = DefaultConfig()
	bad.Job.Alpha = 0.3 // 16*0.3 not integral
	if bad.Validate() == nil {
		t.Error("bad alpha accepted")
	}
}

func TestOfferedLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 16
	cfg.MeanInterarrival = 50
	// Job area 2*16*25 = 800; capacity rate 16*50 = 800 per arrival.
	if got := cfg.OfferedLoad(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("OfferedLoad = %v, want 1.0", got)
	}
}

func TestRunBasicAccounting(t *testing.T) {
	cfg := testConfig()
	r := mustRun(t, cfg, workload.Tunable)
	if r.Admitted+r.Rejected != cfg.Jobs {
		t.Fatalf("admitted %d + rejected %d != jobs %d", r.Admitted, r.Rejected, cfg.Jobs)
	}
	if r.Admitted == 0 {
		t.Fatal("no jobs admitted at moderate load")
	}
	if r.Utilization <= 0 || r.Utilization > 1+1e-9 {
		t.Fatalf("utilization = %v outside (0, 1]", r.Utilization)
	}
	if r.Horizon <= 0 {
		t.Fatalf("horizon = %v", r.Horizon)
	}
	if r.Throughput() != r.Admitted {
		t.Fatal("throughput must equal admitted (reservations guarantee deadlines)")
	}
	var share int
	for _, c := range r.ChainShare {
		share += c
	}
	if share != r.Admitted {
		t.Fatalf("chain shares %v sum to %d, want %d", r.ChainShare, share, r.Admitted)
	}
	if r.MeanLateSlack < 0 {
		t.Fatalf("mean slack %v negative: some admitted job finished past its deadline", r.MeanLateSlack)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 300
	a := mustRun(t, cfg, workload.Tunable)
	b := mustRun(t, cfg, workload.Tunable)
	if a.Admitted != b.Admitted || a.Utilization != b.Utilization || a.Horizon != b.Horizon {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Seed = 2
	c := mustRun(t, cfg, workload.Tunable)
	if c.Admitted == a.Admitted && c.Horizon == a.Horizon {
		t.Fatal("different seed produced identical run (suspicious)")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Procs = -1
	if _, err := Run(cfg, workload.Tunable); err == nil {
		t.Fatal("invalid config ran")
	}
}

// TestTunableDominatesAtModerateLoad reproduces the headline claim at the
// default operating point: the tunable system admits at least as many jobs
// and utilizes the machine at least as well as both non-tunable systems.
func TestTunableDominatesAtModerateLoad(t *testing.T) {
	cfg := testConfig()
	tun := mustRun(t, cfg, workload.Tunable)
	s1 := mustRun(t, cfg, workload.Shape1)
	s2 := mustRun(t, cfg, workload.Shape2)
	if tun.Throughput() < s1.Throughput() || tun.Throughput() < s2.Throughput() {
		t.Fatalf("tunable throughput %d below shapes (%d, %d)",
			tun.Throughput(), s1.Throughput(), s2.Throughput())
	}
	if tun.Utilization < s1.Utilization-1e-9 || tun.Utilization < s2.Utilization-1e-9 {
		t.Fatalf("tunable utilization %.3f below shapes (%.3f, %.3f)",
			tun.Utilization, s1.Utilization, s2.Utilization)
	}
	// The benefit is substantial at this operating point, not a rounding
	// artifact (the paper reports up to 30% more on-time jobs).
	if gain := tun.Throughput() - s1.Throughput(); gain < cfg.Jobs/10 {
		t.Errorf("gain over shape1 = %d, want >= %d", gain, cfg.Jobs/10)
	}
}

// TestTunableUsesBothChains: at moderate load the scheduler really
// exercises tunability (both execution paths are chosen many times).
func TestTunableUsesBothChains(t *testing.T) {
	cfg := testConfig()
	r := mustRun(t, cfg, workload.Tunable)
	if len(r.ChainShare) < 2 {
		t.Fatalf("chain share = %v", r.ChainShare)
	}
	for i, c := range r.ChainShare {
		if c < cfg.Jobs/20 {
			t.Errorf("chain %d chosen only %d times of %d", i, c, r.Admitted)
		}
	}
}

// TestNonTunableSystemsUseSingleChain: sanity — shape systems never report
// a second chain.
func TestNonTunableSystemsUseSingleChain(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 200
	for _, sys := range []workload.System{workload.Shape1, workload.Shape2} {
		r := mustRun(t, cfg, sys)
		if len(r.ChainShare) > 1 {
			t.Errorf("%v chain share = %v", sys, r.ChainShare)
		}
	}
}

func TestFig5aShape(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 400
	fig, err := Fig5a(cfg, []float64{10, 40, 70})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "5a" || len(fig.Points) != 3 {
		t.Fatalf("fig = %+v", fig)
	}
	// Under extreme overload (interval 10) the tunable gain is negligible
	// relative to the mid-range gain (interval 40): the paper's claim that
	// tunability matters most at moderate overload.
	overload := fig.Points[0].ThroughputGain()
	mid := fig.Points[1].ThroughputGain()
	if mid <= overload {
		t.Errorf("mid-range gain %d not above overload gain %d", mid, overload)
	}
	// Throughput of every system increases with the arrival interval.
	for _, sys := range workload.Systems {
		prev := -1
		for _, pt := range fig.Points {
			cur := pt.Results[sys].Throughput()
			if cur < prev {
				t.Errorf("%v throughput decreased from %d to %d as load fell", sys, prev, cur)
			}
			prev = cur
		}
	}
}

func TestFig5bShape(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 400
	fig, err := Fig5b(cfg, []float64{0.2, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Shape 2 catches up with the tunable system at high laxity: the
	// benefit over shape 2 shrinks.
	gainOverShape2 := func(p Point) int {
		return p.Results[workload.Tunable].Throughput() - p.Results[workload.Shape2].Throughput()
	}
	lo, hi := gainOverShape2(fig.Points[0]), gainOverShape2(fig.Points[1])
	if hi >= lo {
		t.Errorf("gain over shape2 did not shrink with laxity: %d -> %d", lo, hi)
	}
	// Shape 1 remains handicapped even with loose deadlines (its first
	// task needs the whole machine).
	s1 := fig.Points[1].Results[workload.Shape1]
	tun := fig.Points[1].Results[workload.Tunable]
	if s1.Throughput() >= tun.Throughput() {
		t.Errorf("shape1 (%d) caught up with tunable (%d) at laxity 0.9", s1.Throughput(), tun.Throughput())
	}
}

func TestFig5dAlphaOneNoBenefit(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 300
	fig, err := Fig5d(cfg, []float64{0.25, 1})
	if err != nil {
		t.Fatal(err)
	}
	// At alpha = 1 the two shapes coincide, so tunability is worthless.
	last := fig.Points[len(fig.Points)-1]
	if g := last.ThroughputGain(); g != 0 {
		t.Errorf("alpha=1 throughput gain = %d, want 0", g)
	}
	if g := last.UtilGain(); math.Abs(g) > 1e-9 {
		t.Errorf("alpha=1 utilization gain = %v, want 0", g)
	}
	if g := fig.Points[0].ThroughputGain(); g <= 0 {
		t.Errorf("alpha=0.25 throughput gain = %d, want positive", g)
	}
}

func TestFig5cRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 200
	fig, err := Fig5c(cfg, []float64{16, 24})
	if err != nil {
		t.Fatal(err)
	}
	// More processors -> more admitted jobs for every system.
	for _, sys := range workload.Systems {
		a := fig.Points[0].Results[sys].Throughput()
		b := fig.Points[1].Results[sys].Throughput()
		if b < a {
			t.Errorf("%v: throughput fell from %d to %d with more processors", sys, a, b)
		}
	}
}

func TestFig6MalleableBenefitSmaller(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 500
	intervals := []float64{30}
	laxities := []float64{0.5}
	nonMall, err := Fig6(cfg, intervals, laxities, false)
	if err != nil {
		t.Fatal(err)
	}
	mall, err := Fig6(cfg, intervals, laxities, true)
	if err != nil {
		t.Fatal(err)
	}
	if nonMall.ID != "6a" || mall.ID != "6b" || !mall.Malleable {
		t.Fatalf("grid ids: %s %s", nonMall.ID, mall.ID)
	}
	// Section 5.4: malleability shrinks the benefit of tunability over
	// shape 1 but does not eliminate it at moderate overload and laxity.
	if mall.VsShape1[0][0] >= nonMall.VsShape1[0][0] {
		t.Errorf("malleable benefit vs shape1 (%d) not below non-malleable (%d)",
			mall.VsShape1[0][0], nonMall.VsShape1[0][0])
	}
	if mall.VsShape1[0][0] <= 0 {
		t.Errorf("malleable benefit vs shape1 = %d, want still positive", mall.VsShape1[0][0])
	}
}

func TestGridHelpers(t *testing.T) {
	g := [][]int{{1, -5}, {9, 3}}
	if got := MaxBenefit(g); got != 9 {
		t.Errorf("MaxBenefit = %d", got)
	}
	if got := MeanBenefit(g); got != 2 {
		t.Errorf("MeanBenefit = %v", got)
	}
	if got := MeanBenefit(nil); got != 0 {
		t.Errorf("MeanBenefit(nil) = %v", got)
	}
}

func TestDefaultSweepDomains(t *testing.T) {
	iv := DefaultIntervals()
	if iv[0] != 10 || iv[len(iv)-1] != 85 {
		t.Errorf("intervals = %v, want 10..85", iv)
	}
	lx := DefaultLaxities()
	if lx[0] != 0.05 || lx[len(lx)-1] != 0.95 {
		t.Errorf("laxities = %v, want 0.05..0.95", lx)
	}
	pc := DefaultProcs()
	if pc[0] != 16 || pc[len(pc)-1] != 64 {
		t.Errorf("procs = %v, want 16..64", pc)
	}
}

func TestWriteFigureAndGrid(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 100
	fig, err := Fig5a(cfg, []float64{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFigure(&sb, fig, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 5a", "util(tunable)", "thr(shape2)", "20", "40"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	grid, err := Fig6(cfg, []float64{30}, []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteGrid(&sb, grid, cfg); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	for _, want := range []string{"Figure 6a", "benefit over shape 1", "benefit over shape 2", "non-malleable"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q:\n%s", want, out)
		}
	}
}
