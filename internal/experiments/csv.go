package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"milan/internal/workload"
)

// WriteFigureCSV emits a figure sweep as CSV (one row per parameter value
// and system) for downstream plotting tools.
func WriteFigureCSV(w io.Writer, fig Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"figure", fig.ParamName, "system", "admitted", "rejected", "utilization", "horizon",
	}); err != nil {
		return err
	}
	for _, pt := range fig.Points {
		for _, sys := range workload.Systems {
			r := pt.Results[sys]
			if err := cw.Write([]string{
				fig.ID,
				strconv.FormatFloat(pt.Param, 'g', -1, 64),
				sys.String(),
				strconv.Itoa(r.Admitted),
				strconv.Itoa(r.Rejected),
				strconv.FormatFloat(r.Utilization, 'f', 6, 64),
				strconv.FormatFloat(r.Horizon, 'f', 3, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteGridCSV emits a Figure-6 benefit grid as CSV.
func WriteGridCSV(w io.Writer, g Grid) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "interval", "laxity", "tunable", "benefit_vs_shape1", "benefit_vs_shape2"}); err != nil {
		return err
	}
	for i, iv := range g.Intervals {
		for j, lax := range g.Laxities {
			if err := cw.Write([]string{
				g.ID,
				strconv.FormatFloat(iv, 'g', -1, 64),
				strconv.FormatFloat(lax, 'g', -1, 64),
				strconv.Itoa(g.Tunable[i][j]),
				strconv.Itoa(g.VsShape1[i][j]),
				strconv.Itoa(g.VsShape2[i][j]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: grid csv: %w", err)
	}
	return nil
}
