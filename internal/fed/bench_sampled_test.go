package fed

import (
	"fmt"
	"testing"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/telemetry"
)

// Sampling and exporter-attachment cost benchmarks.  BENCH_slo.json
// records full tracing at ~15-25% over the untraced 8-shard baseline;
// head-based sampling (obs.Tracer.SetSampling) bounds that cost by
// admitting a fixed trace budget per second and routing the rest down
// the untraced fast path.  The telemetry exporter's contract is that
// merely being attached (OnEnd hook installed, zero subscribers) adds
// one atomic load and zero allocations to the traced hot path — gated
// by benchdiff's allocs/op rule against BENCH_trajectory.jsonl.

// BenchmarkShardedAdmitSampled is the traced 8-shard plane with the
// sampler holding admissions to 100 traces/sec: nearly every negotiate
// runs the sampled-out path (NewTrace -> 0, every Start a no-op), so
// ns/op and allocs/op should sit near the untraced baseline, not the
// traced one.
func BenchmarkShardedAdmitSampled(b *testing.B) {
	for _, target := range []float64{100} {
		b.Run(fmt.Sprintf("target=%g", target), func(b *testing.B) {
			tr := obs.NewTracer(1 << 14)
			tr.SetSampling(target, nil)
			plane := benchPlane(b, 8, tr)
			admitLoop(b,
				func(j core.Job) error { _, err := plane.Negotiate(j); return err },
				plane.Observe)
		})
	}
}

// BenchmarkShardedAdmitExporterIdle is BenchmarkShardedAdmitTraced with
// a telemetry exporter attached to the tracer but no subscribers
// connected: the nil-hook contract's "attached but idle" case.  Its
// allocs/op must equal the plain traced benchmark's.
func BenchmarkShardedAdmitExporterIdle(b *testing.B) {
	tr := obs.NewTracer(1 << 14)
	exp := telemetry.NewExporter(telemetry.ExporterConfig{Node: "bench"}, telemetry.Sources{Tracer: tr})
	defer exp.Close()
	b.Run("shards=8", func(b *testing.B) {
		plane := benchPlane(b, 8, tr)
		admitLoop(b,
			func(j core.Job) error { _, err := plane.Negotiate(j); return err },
			plane.Observe)
	})
}
