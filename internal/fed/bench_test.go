package fed

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"milan/internal/core"
	"milan/internal/qos"
)

// The admission-throughput benchmarks measure the cost the sharded plane
// exists to remove: every negotiation on the monolithic arbitrator
// serializes on one mutex, while the plane spreads admissions over
// independent per-shard locks.  The workload is a steady stream of small
// single-chain jobs at moderate offered load, with the clock advanced
// (and elapsed history folded) every few hundred admissions so the
// profiles stay small and per-op cost is steady-state.

const (
	benchProcs   = 64
	benchGap     = 0.5 // mean inter-arrival: ~50% offered load
	benchTask    = 2
	benchDur     = 8.0
	benchLaxity  = 1024.0
	benchTrimEvr = 256
)

func benchJob(i int64) core.Job {
	r := float64(i) * benchGap
	return core.Job{ID: int(i), Release: r, Chains: []core.Chain{{
		Quality: 1,
		Tasks: []core.Task{
			{Procs: benchTask, Duration: benchDur, Deadline: r + benchLaxity, Quality: 1},
		},
	}}}
}

// admitLoop drives negotiations from all benchmark goroutines through the
// given arbitrator functions.
func admitLoop(b *testing.B, negotiate func(core.Job) error, observe func(float64)) {
	var idx atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := idx.Add(1)
			job := benchJob(i)
			_ = negotiate(job)
			if i%benchTrimEvr == 0 {
				observe(job.Release - 2*benchLaxity)
			}
		}
	})
}

func BenchmarkMonolithAdmit(b *testing.B) {
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: benchProcs})
	if err != nil {
		b.Fatal(err)
	}
	admitLoop(b,
		func(j core.Job) error { _, err := arb.Negotiate(j); return err },
		arb.Observe)
}

func BenchmarkShardedAdmit(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			plane, err := New(Config{Procs: benchProcs, Shards: shards, ProbeK: 2})
			if err != nil {
				b.Fatal(err)
			}
			admitLoop(b,
				func(j core.Job) error { _, err := plane.Negotiate(j); return err },
				plane.Observe)
		})
	}
}

// TestWriteBenchFed regenerates BENCH_fed.json at the repository root when
// WRITE_BENCH_FED=1 (CI's bench job, or a developer refreshing the
// checked-in numbers).  It records ns/op for the monolith and for each
// shard count, plus the headline speedup of the 8-shard plane over the
// monolith.
func TestWriteBenchFed(t *testing.T) {
	if os.Getenv("WRITE_BENCH_FED") == "" {
		t.Skip("set WRITE_BENCH_FED=1 to regenerate BENCH_fed.json")
	}
	type entry struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	var out struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		Procs      int     `json:"pool_procs"`
		ProbeK     int     `json:"probe_k"`
		Monolith   entry   `json:"monolith"`
		Sharded    []entry `json:"sharded"`
		Speedup8   float64 `json:"speedup_8_shards"`
	}
	out.GoMaxProcs = runtime.GOMAXPROCS(0)
	out.Procs = benchProcs
	out.ProbeK = 2

	mono := testing.Benchmark(BenchmarkMonolithAdmit)
	out.Monolith = entry{Name: "BenchmarkMonolithAdmit", NsPerOp: float64(mono.NsPerOp()), AllocsPerOp: mono.AllocsPerOp()}

	var ns8 float64
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		r := testing.Benchmark(func(b *testing.B) {
			plane, err := New(Config{Procs: benchProcs, Shards: shards, ProbeK: 2})
			if err != nil {
				b.Fatal(err)
			}
			admitLoop(b,
				func(j core.Job) error { _, err := plane.Negotiate(j); return err },
				plane.Observe)
		})
		e := entry{Name: fmt.Sprintf("BenchmarkShardedAdmit/shards=%d", shards), NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
		out.Sharded = append(out.Sharded, e)
		if shards == 8 {
			ns8 = e.NsPerOp
		}
	}
	if ns8 > 0 {
		out.Speedup8 = out.Monolith.NsPerOp / ns8
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile("../../BENCH_fed.json", data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("monolith %.0f ns/op, 8 shards %.0f ns/op, speedup %.2fx", out.Monolith.NsPerOp, ns8, out.Speedup8)
}
