package fed

import (
	"reflect"
	"sync"
	"testing"

	"milan/internal/core"
)

// TestFedDiagnosisStampsShardAndClosesLoop drives an overloaded plane
// with a diagnosis sink installed and checks the forensics contract:
// every rejection produces at least one diagnosis, every diagnosis is
// stamped with a real shard id, and replaying a rejected job's suggested
// relaxation through the plane's side-effect-free WhatIf admits it.
func TestFedDiagnosisStampsShardAndClosesLoop(t *testing.T) {
	const procs, shards = 8, 2
	var mu sync.Mutex
	var diags []*core.PlanDiagnosis
	plane, err := New(Config{
		Procs:  procs,
		Shards: shards,
		Diagnosis: func(d *core.PlanDiagnosis) {
			mu.Lock()
			diags = append(diags, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	jobs := smallStream(200, 3, 7) // heavy overload: plenty of rejections
	rejected := make(map[int]core.Job)
	for _, job := range jobs {
		plane.Observe(job.Release)
		if _, err := plane.Negotiate(job); err != nil {
			rejected[job.ID] = job
		}
	}
	if len(rejected) == 0 {
		t.Fatal("degenerate stream: nothing rejected")
	}
	if len(diags) < len(rejected) {
		t.Fatalf("%d diagnoses for %d rejections", len(diags), len(rejected))
	}
	seen := make(map[int]bool)
	for _, d := range diags {
		if d.Shard < 0 || d.Shard >= shards {
			t.Fatalf("diagnosis for job %d carries shard %d (plane has %d)", d.JobID, d.Shard, shards)
		}
		seen[d.JobID] = true
	}
	for id := range rejected {
		if !seen[id] {
			t.Fatalf("rejected job %d has no diagnosis", id)
		}
	}

	// Closed loop at the plane level: Diagnose explains, WhatIf confirms.
	verified := 0
	for id, job := range rejected {
		d := plane.Diagnose(job)
		if d == nil || d.Suggestion == nil {
			continue
		}
		if _, ok := plane.WhatIf(job, *d.Suggestion); !ok {
			t.Fatalf("job %d: verified suggestion %+v did not admit on replay", id, *d.Suggestion)
		}
		verified++
		if verified >= 10 {
			break
		}
	}
	if verified == 0 {
		t.Fatal("no rejected job carried a suggestion to verify")
	}
	if err := plane.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFedHeadroomForecast checks the plane's live headroom signal: the
// sink is fed on construction and on committed mutations, each shard's
// lock-free cached frontier matches a live recompute when the plane is
// quiescent, and the plane-wide frontier is the per-axis merge of the
// shard frontiers.
func TestFedHeadroomForecast(t *testing.T) {
	const procs, shards, horizon = 8, 2, 200.0
	var mu sync.Mutex
	var published []core.Headroom
	plane, err := New(Config{
		Procs:           procs,
		Shards:          shards,
		HeadroomHorizon: horizon,
		HeadroomSink: func(h core.Headroom) {
			mu.Lock()
			published = append(published, h)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Construction advertises the empty plane: each shard offers its full
	// width over the whole window.
	if len(published) == 0 {
		t.Fatal("no frontier advertised at construction")
	}
	if first := published[0]; first.MaxProcs != procs/shards {
		t.Fatalf("empty-plane frontier MaxProcs = %d, want %d", first.MaxProcs, procs/shards)
	}

	admitted := 0
	for _, job := range smallStream(60, 10, 3) {
		plane.Observe(job.Release)
		if _, err := plane.Negotiate(job); err == nil {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("degenerate stream: nothing admitted")
	}
	mu.Lock()
	n := len(published)
	mu.Unlock()
	// Every admission and observation republished the frontier at least
	// once (plus the rejects); just require the signal to be live.
	if n < admitted {
		t.Fatalf("only %d advertisements for %d admissions", n, admitted)
	}

	// Quiescent now: cached per-shard signals must equal live recomputes,
	// and the plane merge must fold them in shard order.
	var want core.Headroom
	for i := 0; i < plane.Shards(); i++ {
		sh := plane.Shard(i)
		cached, ok := sh.HeadroomSignal()
		if !ok {
			t.Fatalf("shard %d has no cached frontier", i)
		}
		live := sh.HeadroomLive(horizon)
		if !reflect.DeepEqual(cached, live) {
			t.Fatalf("shard %d cached frontier %+v != live %+v", i, cached, live)
		}
		if i == 0 {
			want = live
		} else {
			want = want.Merge(live)
		}
	}
	if got := plane.Headroom(horizon); !reflect.DeepEqual(got, want) {
		t.Fatalf("plane frontier %+v != merged shard frontiers %+v", got, want)
	}
	if got, ok := plane.cachedHeadroom(); !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("cached plane frontier %+v (ok=%v) != merged live %+v", got, ok, want)
	}
}

// TestConcurrentWhatIfProbesDoNotPerturbAdmissions is the isolation
// property under -race: a plane hammered by concurrent WhatIf probes,
// Diagnose calls and headroom reads while it sequentially admits the
// Figure-4 stream must produce bitwise the same decision history and
// statistics as an unprobed plane replaying the same stream.
func TestConcurrentWhatIfProbesDoNotPerturbAdmissions(t *testing.T) {
	const procs, shards = 16, 4
	jobs := smallStream(300, 5, 11)

	clean, err := New(Config{Procs: procs, Shards: shards, KeepHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs {
		clean.Observe(job.Release)
		clean.Negotiate(job)
	}

	probed, err := New(Config{Procs: procs, Shards: shards, KeepHistory: true, HeadroomHorizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			probes := smallStream(40, 5, seed)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				job := probes[i%len(probes)]
				probed.WhatIf(job, core.WhatIfDelta{ExtraProcs: 2})
				probed.WhatIf(job, core.WhatIfDelta{ExtraDeadline: 50, OnlyChain: 1})
				probed.Diagnose(job)
				probed.Headroom(100)
				if i%8 == 0 {
					for s := 0; s < probed.Shards(); s++ {
						probed.Shard(s).HeadroomSignal()
					}
				}
			}
		}(int64(100 + w))
	}
	for _, job := range jobs {
		probed.Observe(job.Release)
		probed.Negotiate(job)
	}
	close(stop)
	wg.Wait()

	if cs, ps := clean.Stats(), probed.Stats(); !reflect.DeepEqual(cs, ps) {
		t.Fatalf("stats diverged under probes\nclean:  %+v\nprobed: %+v", cs, ps)
	}
	ch, ph := clean.History(), probed.History()
	if len(ch) != len(ph) {
		t.Fatalf("history lengths differ: clean %d, probed %d", len(ch), len(ph))
	}
	for i := range ch {
		if !reflect.DeepEqual(ch[i], ph[i]) {
			t.Fatalf("decision %d diverged under probes\nclean:  %+v\nprobed: %+v", i, ch[i], ph[i])
		}
	}
	if err := probed.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
