package fed

import (
	"fmt"

	"milan/internal/core"
)

// PlaneState is the federated plane's durable state: the observed clock
// plus every shard's committed scheduler state, in shard order.  Routing
// caches (load signals, headroom frontiers) are derived and rebuilt on
// restore; decision history, ledgers and observers are not state.
type PlaneState struct {
	Now    float64
	Shards []core.SchedulerState
}

// ExportState exports the plane's committed state, taking each shard's
// lock in turn.  The durable plane calls this under its own write lock,
// with no admissions in flight, so the export is a consistent cut.
func (a *Arbitrator) ExportState() PlaneState {
	st := PlaneState{Now: a.Now(), Shards: make([]core.SchedulerState, len(a.shards))}
	for i, sh := range a.shards {
		sh.mu.Lock()
		st.Shards[i] = sh.sched.ExportState()
		sh.mu.Unlock()
	}
	return st
}

// RestoreState replaces every shard's scheduler state and the plane clock
// with an exported state, bit-exactly, and rebuilds the derived routing
// caches.  The shard count must match the plane's — durable recovery
// reconstructs the same partition before restoring.
func (a *Arbitrator) RestoreState(st PlaneState) error {
	if len(st.Shards) != len(a.shards) {
		return fmt.Errorf("fed: restore state has %d shards, plane has %d", len(st.Shards), len(a.shards))
	}
	for i, sh := range a.shards {
		sh.mu.Lock()
		if err := sh.sched.RestoreState(st.Shards[i]); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("fed: restore shard %d: %w", i, err)
		}
		sh.now = st.Now
		sh.version++
		sh.refreshLoadLocked()
		sh.mu.Unlock()
	}
	a.nowBits.Store(floatBits(st.Now))
	if a.metrics != nil {
		a.publishMetrics()
	}
	a.publishHeadroom()
	return nil
}
