package fed

import (
	"testing"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
)

// Latency-plane overhead benchmarks: the phase timers ride the hottest
// path in the system, so the acceptance bar is explicit — recording on
// must cost <= 5% ns/op and ZERO extra allocs/op over recording off on
// the 8-shard plane, and recording off (nil record through
// NegotiateTimed, the plane-unset production configuration) must match
// the plain Negotiate path it wraps.  Both land in
// BENCH_trajectory.jsonl under the benchdiff gate.

// BenchmarkShardedAdmitLatencyOff is the nil-record contract: the
// boundary calls NegotiateTimed with no latency plane configured, so
// every Mark must be a nil-receiver no-op.
func BenchmarkShardedAdmitLatencyOff(b *testing.B) {
	b.Run("shards=8", func(b *testing.B) {
		plane := benchPlane(b, 8, nil)
		admitLoop(b,
			func(j core.Job) error { _, err := plane.NegotiateTimed(j, nil); return err },
			plane.Observe)
	})
}

// BenchmarkShardedAdmitLatencyOn runs the full record lifecycle the
// qosnet boundary runs: Start, phase marks inside the arbitrator, End
// into the histograms and the exemplar ring.
func BenchmarkShardedAdmitLatencyOn(b *testing.B) {
	b.Run("shards=8", func(b *testing.B) {
		plane := benchPlane(b, 8, nil)
		lp := latency.New(latency.Config{Registry: obs.NewRegistry()})
		admitLoop(b,
			func(j core.Job) error {
				rec := lp.Start(0, int64(j.ID))
				_, err := plane.NegotiateTimed(j, &rec)
				rec.End()
				return err
			},
			plane.Observe)
	})
}
