package fed

import (
	"fmt"

	"milan/internal/obs"
)

// Metrics bundles the admission plane's observability surface: router
// counters (probes, admissions, rejections, optimistic-concurrency races,
// migrations) plus per-shard gauges (processor count, cached load signal)
// and the plane-wide load spread, all resolved once against an
// obs.Registry so the hot admission path only touches atomics.
type Metrics struct {
	Probes         *obs.Counter // planning probes issued by the router
	Admitted       *obs.Counter // jobs granted across the plane
	Rejected       *obs.Counter // jobs rejected across the plane
	CommitRaces    *obs.Counter // commits that found a stale shard version
	NonBestCommits *obs.Counter // grants that fell back past the best probe
	Migrations     *obs.Counter // processors moved by the rebalancer

	LoadSpread *obs.Gauge // max-min cached shard load
	ProcSpread *obs.Gauge // max-min shard processor count

	reg        *obs.Registry
	shardProcs []*obs.Gauge
	shardLoad  []*obs.Gauge
}

// NewMetrics resolves the plane's instruments in reg under the fed_
// namespace.  Per-shard gauges are bound when the Arbitrator is built
// (the shard count is not known here).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Probes:         reg.Counter("fed_probes"),
		Admitted:       reg.Counter("fed_admitted"),
		Rejected:       reg.Counter("fed_rejected"),
		CommitRaces:    reg.Counter("fed_commit_races"),
		NonBestCommits: reg.Counter("fed_nonbest_commits"),
		Migrations:     reg.Counter("fed_migrations"),
		LoadSpread:     reg.Gauge("fed_load_spread"),
		ProcSpread:     reg.Gauge("fed_proc_spread"),
		reg:            reg,
	}
}

// bindShards resolves one procs gauge and one load gauge per shard.
func (m *Metrics) bindShards(n int) {
	m.shardProcs = make([]*obs.Gauge, n)
	m.shardLoad = make([]*obs.Gauge, n)
	for i := 0; i < n; i++ {
		m.shardProcs[i] = m.reg.Gauge(fmt.Sprintf("fed_shard_%d_procs", i))
		m.shardLoad[i] = m.reg.Gauge(fmt.Sprintf("fed_shard_%d_load", i))
	}
}

// publishMetrics refreshes the per-shard gauges and the spread gauges from
// the shards' lock-free load caches and their current sizes.
func (a *Arbitrator) publishMetrics() {
	m := a.metrics
	if m == nil || len(m.shardProcs) != len(a.shards) {
		return
	}
	var loLoad, hiLoad float64
	loProc, hiProc := 0, 0
	for i, sh := range a.shards {
		procs := sh.Procs()
		load := sh.Load()
		m.shardProcs[i].Set(float64(procs))
		m.shardLoad[i].Set(load)
		if i == 0 || load < loLoad {
			loLoad = load
		}
		if i == 0 || load > hiLoad {
			hiLoad = load
		}
		if i == 0 || procs < loProc {
			loProc = procs
		}
		if i == 0 || procs > hiProc {
			hiProc = procs
		}
	}
	m.LoadSpread.Set(hiLoad - loLoad)
	m.ProcSpread.Set(float64(hiProc - loProc))
}
