package fed

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"milan/internal/core"
	"milan/internal/obs"
)

// Tracing-cost benchmarks for the predictability auditor.  The contract
// is that the span plumbing is free when off — a sharded plane with no
// tracer bound pays exactly one nil pointer comparison per negotiation —
// and cheap when on (one root + route span and a plan/reserve span per
// probe/commit, all landing in a fixed-size ring).
//
// BenchmarkShardedAdmit (bench_test.go) is the untraced baseline; the
// acceptance bar is that its ns/op stays within 3% of the numbers
// recorded in BENCH_fed.json before the auditor existed.
// BenchmarkShardedAdmitTraced quantifies the opt-in cost.

func benchPlane(b *testing.B, shards int, tr *obs.Tracer) *Arbitrator {
	b.Helper()
	plane, err := New(Config{Procs: benchProcs, Shards: shards, ProbeK: 2, Tracer: tr})
	if err != nil {
		b.Fatal(err)
	}
	return plane
}

func BenchmarkShardedAdmitTraced(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			plane := benchPlane(b, shards, obs.NewTracer(1<<14))
			admitLoop(b,
				func(j core.Job) error { _, err := plane.Negotiate(j); return err },
				plane.Observe)
		})
	}
}

// TestWriteBenchSLO regenerates BENCH_slo.json at the repository root
// when WRITE_BENCH_SLO=1: the untraced 8-shard admission cost (to
// compare against BENCH_fed.json's pre-auditor numbers — the <3%
// regression bar) next to the traced cost and the resulting overhead.
func TestWriteBenchSLO(t *testing.T) {
	if os.Getenv("WRITE_BENCH_SLO") == "" {
		t.Skip("set WRITE_BENCH_SLO=1 to regenerate BENCH_slo.json")
	}
	run := func(tr *obs.Tracer) (float64, int64) {
		r := testing.Benchmark(func(b *testing.B) {
			plane := benchPlane(b, 8, tr)
			admitLoop(b,
				func(j core.Job) error { _, err := plane.Negotiate(j); return err },
				plane.Observe)
		})
		return float64(r.NsPerOp()), r.AllocsPerOp()
	}
	var out struct {
		GoMaxProcs         int     `json:"gomaxprocs"`
		Procs              int     `json:"pool_procs"`
		Shards             int     `json:"shards"`
		UntracedNsPerOp    float64 `json:"untraced_ns_per_op"`
		UntracedAllocsOp   int64   `json:"untraced_allocs_per_op"`
		TracedNsPerOp      float64 `json:"traced_ns_per_op"`
		TracedAllocsPerOp  int64   `json:"traced_allocs_per_op"`
		TracingOverhead    float64 `json:"tracing_overhead"`
		SampledNsPerOp     float64 `json:"sampled_ns_per_op"`
		SampledAllocsPerOp int64   `json:"sampled_allocs_per_op"`
		SampledOverhead    float64 `json:"sampled_overhead"`
		SampleTargetPerSec float64 `json:"sample_target_per_sec"`
	}
	out.GoMaxProcs = runtime.GOMAXPROCS(0)
	out.Procs = benchProcs
	out.Shards = 8
	out.UntracedNsPerOp, out.UntracedAllocsOp = run(nil)
	out.TracedNsPerOp, out.TracedAllocsPerOp = run(obs.NewTracer(1 << 14))
	if out.UntracedNsPerOp > 0 {
		out.TracingOverhead = out.TracedNsPerOp/out.UntracedNsPerOp - 1
	}
	// Head-based sampling at 100 traces/sec: the sampled-out fast path
	// should land near the untraced baseline.
	out.SampleTargetPerSec = 100
	sampled := obs.NewTracer(1 << 14)
	sampled.SetSampling(out.SampleTargetPerSec, nil)
	out.SampledNsPerOp, out.SampledAllocsPerOp = run(sampled)
	if out.UntracedNsPerOp > 0 {
		out.SampledOverhead = out.SampledNsPerOp/out.UntracedNsPerOp - 1
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile("../../BENCH_slo.json", data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("untraced %.0f ns/op, traced %.0f ns/op (%.1f%%), sampled@%g/s %.0f ns/op (%.1f%%)",
		out.UntracedNsPerOp, out.TracedNsPerOp, 100*out.TracingOverhead,
		out.SampleTargetPerSec, out.SampledNsPerOp, 100*out.SampledOverhead)
}
