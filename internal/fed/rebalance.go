package fed

import (
	"fmt"

	"milan/internal/resbroker"
)

// Rebalancer migrates whole processors between a plane's shards: it grows
// the hungriest shard (highest cached load) out of the coldest shard's
// uncommitted headroom, one processor per move, and never preempts a
// committed reservation (a shard only shrinks within
// capacity - peak committed usage, enforced by core.Profile.SetCapacity).
// It also follows a resource broker's pool, so machines registered or
// deregistered at the broker grow or shrink the plane's total capacity.
//
// Moves are sequential — shrink the donor, then grow the receiver — so the
// rebalancer never holds two shard locks and cannot deadlock against
// concurrent admissions.  Between the two steps the plane briefly runs one
// processor small, which is safe (admission against a smaller machine is
// only more conservative).
type Rebalancer struct {
	arb *Arbitrator
	// MinShardProcs is the floor below which a shard is never shrunk
	// (default 1: a shard always keeps one processor so it can still
	// admit).
	MinShardProcs int
	// MinGap is the minimum load-signal gap (receiver minus donor) that
	// justifies a migration; at or below it the plane is considered
	// balanced.  The default 0 migrates on any positive gap.
	MinGap float64
}

// NewRebalancer returns a rebalancer over the plane.
func NewRebalancer(a *Arbitrator) *Rebalancer {
	return &Rebalancer{arb: a, MinShardProcs: 1}
}

// Rebalancer returns the plane's lazily-created rebalancer with default
// policy knobs.
func (a *Arbitrator) Rebalancer() *Rebalancer {
	a.rbMu.Lock()
	defer a.rbMu.Unlock()
	if a.rebal == nil {
		a.rebal = NewRebalancer(a)
	}
	return a.rebal
}

// shardState is one shard's migration-relevant snapshot.
type shardState struct {
	sh       *Shard
	procs    int
	headroom int
	load     float64
}

func (r *Rebalancer) snapshot() []shardState {
	out := make([]shardState, len(r.arb.shards))
	for i, sh := range r.arb.shards {
		out[i] = shardState{
			sh:       sh,
			procs:    sh.Procs(),
			headroom: sh.Headroom(),
			load:     sh.Load(),
		}
	}
	return out
}

// RebalanceOnce attempts a single one-processor migration from the coldest
// shard with spare headroom to the hungriest shard, reporting whether a
// processor moved.  It returns false when the plane is balanced (no pair
// exceeds MinGap) or no donor can shrink without touching a reservation.
func (r *Rebalancer) RebalanceOnce() bool {
	minProcs := r.MinShardProcs
	if minProcs < 1 {
		minProcs = 1
	}
	states := r.snapshot()
	recv := -1
	for i, st := range states {
		if recv < 0 || st.load > states[recv].load {
			recv = i
		}
	}
	donor := -1
	for i, st := range states {
		if i == recv || st.headroom < 1 || st.procs <= minProcs {
			continue
		}
		if donor < 0 || st.load < states[donor].load {
			donor = i
		}
	}
	if recv < 0 || donor < 0 {
		return false
	}
	if states[recv].load-states[donor].load <= r.MinGap {
		return false
	}
	// Stability: the move must not leave the donor hungrier than the
	// receiver (load is area per processor, so shrinking raises the
	// donor's signal).  Without this check the router and the rebalancer
	// chase each other — capacity drains monotonically toward whichever
	// shard saw the first arrival.
	if states[donor].procs > 1 {
		donorAfter := states[donor].load * float64(states[donor].procs) / float64(states[donor].procs-1)
		recvAfter := states[recv].load * float64(states[recv].procs) / float64(states[recv].procs+1)
		if donorAfter > recvAfter {
			return false
		}
	}
	// Shrink first; a concurrent admission may have consumed the headroom
	// we saw, in which case the move is abandoned (never preempt).
	if err := states[donor].sh.resize(states[donor].procs - 1); err != nil {
		return false
	}
	if err := states[recv].sh.resize(states[recv].procs + 1); err != nil {
		// Growth cannot fail (capacity only increases); restore on the
		// impossible path anyway so capacity is never lost.
		_ = states[donor].sh.resize(states[donor].procs)
		return false
	}
	r.noteMoved(1)
	return true
}

// Rebalance performs up to maxMoves migrations (len(shards) when
// maxMoves <= 0), returning how many processors moved.
func (r *Rebalancer) Rebalance(maxMoves int) int {
	if maxMoves <= 0 {
		maxMoves = len(r.arb.shards)
	}
	moved := 0
	for moved < maxMoves && r.RebalanceOnce() {
		moved++
	}
	return moved
}

// SetTotalCapacity grows or shrinks the plane toward total processors,
// one processor at a time: growth lands on the hungriest shard, shrink
// comes out of the coldest shard's headroom.  Shrink stops early when no
// shard can give up a processor without preempting a reservation; the
// achieved total is returned alongside an error describing the shortfall.
func (r *Rebalancer) SetTotalCapacity(total int) (int, error) {
	minProcs := r.MinShardProcs
	if minProcs < 1 {
		minProcs = 1
	}
	if total < minProcs*len(r.arb.shards) {
		return r.arb.Procs(), fmt.Errorf("fed: total capacity %d below floor %d (%d shards x %d)",
			total, minProcs*len(r.arb.shards), len(r.arb.shards), minProcs)
	}
	cur := r.arb.Procs()
	for cur < total {
		states := r.snapshot()
		recv := 0
		for i, st := range states {
			if st.load > states[recv].load {
				recv = i
			}
		}
		if err := states[recv].sh.resize(states[recv].procs + 1); err != nil {
			return cur, err
		}
		r.noteMoved(1)
		cur++
	}
	for cur > total {
		states := r.snapshot()
		donor := -1
		for i, st := range states {
			if st.headroom < 1 || st.procs <= minProcs {
				continue
			}
			if donor < 0 || st.load < states[donor].load {
				donor = i
			}
		}
		if donor < 0 {
			return cur, fmt.Errorf("fed: cannot shrink below %d procs without preempting reservations (target %d)", cur, total)
		}
		if err := states[donor].sh.resize(states[donor].procs - 1); err != nil {
			// Headroom raced away between snapshot and resize; re-snapshot.
			continue
		}
		r.noteMoved(1)
		cur--
	}
	return cur, nil
}

// AttachBroker makes the plane's total capacity follow a resource
// broker's pool, mirroring qos.AttachBroker's convention: every machine
// registration or deregistration resizes the plane to the broker's total
// and runs a rebalancing pass; bindings of computations do not change the
// plane.  threshold suppresses resizes smaller than the given processor
// count; 0 follows every change.  The returned stop function detaches the
// subscription's effect.
func (r *Rebalancer) AttachBroker(b *resbroker.Broker, threshold int) (stop func()) {
	stopped := false
	last := r.arb.Procs()
	b.Subscribe(func(ev resbroker.Event) {
		if stopped {
			return
		}
		if ev.Kind != resbroker.EventRegistered && ev.Kind != resbroker.EventDeregistered {
			return
		}
		procs := b.TotalProcs()
		if procs < 1 {
			return
		}
		if diff := procs - last; diff < threshold && diff > -threshold {
			return
		}
		last = procs
		_, _ = r.SetTotalCapacity(procs)
		r.Rebalance(0)
	})
	return func() { stopped = true }
}

func (r *Rebalancer) noteMoved(n int64) {
	if m := r.arb.metrics; m != nil {
		m.Migrations.Add(n)
		r.arb.publishMetrics()
	}
	r.arb.publishHeadroom()
}
