// Package fed implements a sharded admission plane: the machine's
// processor pool is partitioned across N shards, each wrapping its own
// core.Scheduler behind its own lock, and a router admits tunable jobs via
// best-of-k probing.  Candidate shards are pre-filtered by a cheap cached
// load signal (reserved area over a sliding horizon, per processor — the
// classic power-of-k-choices trick), a real plan is computed on each of the
// k probed shards, and the job commits to the winner under the paper's
// cross-shard tie-break: earliest finish, then higher utilization over
// [release, finish], then lexicographically smaller cumulative resource
// prefix.
//
// The federated Arbitrator implements the same agent-facing surface as
// qos.Arbitrator (Negotiate/NegotiateDAG/Observe/Stats/Utilization/...),
// returning qos.Grant and qos.ErrRejected, so qosnet servers and sim
// workloads run against it unchanged.  With a single shard and k = 1 the
// plane performs exactly the monolithic arbitrator's scheduler calls in
// exactly its order, so decisions and statistics are bitwise identical —
// the differential test in fed_test.go pins that equivalence.
//
// Capacity moves between shards only through the Rebalancer (rebalance.go),
// which migrates whole processors from cold shards with uncommitted
// headroom to hungry ones and never preempts a committed reservation.
package fed

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency/phase"
	"milan/internal/obs/ledger"
	"milan/internal/qos"
)

// Config configures a federated admission plane.
type Config struct {
	// Procs is the total machine size, partitioned across the shards
	// (required).
	Procs int
	// Shards is the number of partitions (default 1).  Each shard must
	// hold at least one processor, so Shards <= Procs.
	Shards int
	// ProbeK is how many least-loaded shards receive a real planning probe
	// per negotiation (default 2, clamped to [1, Shards]).
	ProbeK int
	// Origin is the schedule start time.
	Origin float64
	// Options is the per-shard scheduler policy; nil means the paper's
	// defaults.
	Options *core.Options
	// Horizon is the sliding window of the cached load signal: a shard's
	// load is its reserved area over [now, now+Horizon] per processor.
	// Zero means all future reserved work.
	Horizon float64
	// KeepHistory retains every qos.Decision for inspection.
	KeepHistory bool
	// Observer, if set, is called synchronously with every decision, in
	// commit order.
	Observer func(qos.Decision)
	// Metrics, if set, receives router and per-shard gauges/counters
	// (see metrics.go).
	Metrics *Metrics
	// Tracer, if set, records route/plan/reserve spans for every traced
	// negotiation (jobs carrying a core.Job.Trace, or all jobs — the
	// router mints a root trace for untraced ones).  nil keeps the hot
	// path span-free: the only cost is one pointer comparison.
	Tracer *obs.Tracer
	// Diagnosis, if set, receives a rejection explanation for every failed
	// planning pass on every shard, stamped with the shard id (it may be
	// called concurrently from different shards, and may fire for losing
	// probes of jobs that ultimately commit elsewhere — the per-shard
	// truth, not the router verdict).  nil keeps planning diagnosis-free.
	Diagnosis func(*core.PlanDiagnosis)
	// HeadroomHorizon, when positive, turns on live headroom forecasting:
	// every shard maintains its admissibility frontier (core.Headroom over
	// [now, now+HeadroomHorizon)) across committed mutations, and the
	// router publishes the plane-wide merge to HeadroomSink after every
	// decision and observation.  Zero (the default) keeps the commit path
	// identical to a plane without forecasting.
	HeadroomHorizon float64
	// HeadroomSink, if set (and HeadroomHorizon > 0), receives the merged
	// plane-wide frontier on every refresh — typically
	// (*forensics.Forecaster).Advertise, which publishes the headroom_*
	// gauges and audits rejections against the advertised frontier.
	HeadroomSink func(core.Headroom)
	// OnShardResize, if set, is called under the shard lock after every
	// successful shard resize (rebalancer migrations, operator actions)
	// with the shard id and its new processor count, in the shard's
	// commit order.  The durable admission plane journals capacity moves
	// through it; the callback must not call back into the plane.
	OnShardResize func(shard, procs int)
	// Ledger, if set, attaches per-tenant utilization accounting: every
	// committed reservation is recorded on the committing shard's ledger
	// under the shard lock, in commit order (so per-shard ledger totals
	// are bit-identical to per-shard scheduler accounting — the
	// differential test pins it), clock advances and capacity resizes
	// flow through, and rejections are counted on the deciding shard.
	// The Sharded ledger needs at least Shards shard ledgers.  nil keeps
	// the admission path ledger-free: one pointer comparison per commit.
	Ledger *ledger.Sharded
}

// planKey is the cross-shard tie-break key for a planned placement: the
// shard-local chainKey fields that are comparable across shards (quality
// and area are already folded into the per-shard chain choice; across
// shards the paper ordering is finish, then utilization, then resource
// prefix).
type planKey struct {
	finish float64
	util   float64
	prefix []float64
}

// betterKey reports whether a strictly beats b under the paper's ordering,
// with the same Eps-tolerant comparisons the monolithic scheduler uses.
// On full ties the incumbent wins, so iterating candidates in load order
// deterministically favors the less-loaded shard.
func betterKey(a, b planKey) bool {
	if !feq(a.finish, b.finish) {
		return a.finish < b.finish
	}
	if !feq(a.util, b.util) {
		return a.util > b.util
	}
	return comparePrefix(a.prefix, b.prefix) < 0
}

func feq(a, b float64) bool {
	d := a - b
	return d <= core.Eps && d >= -core.Eps
}

// comparePrefix mirrors core's cumulative-resource prefix order.
func comparePrefix(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !feq(a[i], b[i]) {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Arbitrator is the federated QoS arbitrator: a router over shards.  It is
// safe for concurrent use; admissions that land on different shards
// proceed in parallel.
type Arbitrator struct {
	shards  []*Shard
	probeK  int
	origin  float64
	nowBits atomic.Uint64

	histMu   sync.Mutex
	history  []qos.Decision
	keepHist bool
	observer func(qos.Decision)

	metrics *Metrics
	tracer  *obs.Tracer

	headroomHorizon float64
	headroomSink    func(core.Headroom)

	rebal *Rebalancer // lazily created by Rebalance/AttachBroker
	rbMu  sync.Mutex
}

// New builds a federated arbitrator partitioning cfg.Procs processors
// evenly across cfg.Shards shards (the first Procs mod Shards shards hold
// one extra).
func New(cfg Config) (*Arbitrator, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("fed: plane needs at least 1 processor, got %d", cfg.Procs)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 || shards > cfg.Procs {
		return nil, fmt.Errorf("fed: %d shards for %d processors (need 1 <= shards <= procs)", shards, cfg.Procs)
	}
	if cfg.Ledger != nil && cfg.Ledger.Shards() < shards {
		return nil, fmt.Errorf("fed: ledger has %d shard ledgers for %d shards", cfg.Ledger.Shards(), shards)
	}
	k := cfg.ProbeK
	if k == 0 {
		k = 2
	}
	if k < 1 {
		k = 1
	}
	if k > shards {
		k = shards
	}
	a := &Arbitrator{
		probeK:          k,
		origin:          cfg.Origin,
		keepHist:        cfg.KeepHistory,
		observer:        cfg.Observer,
		metrics:         cfg.Metrics,
		tracer:          cfg.Tracer,
		headroomHorizon: cfg.HeadroomHorizon,
		headroomSink:    cfg.HeadroomSink,
	}
	a.nowBits.Store(floatBits(cfg.Origin))
	base, rem := cfg.Procs/shards, cfg.Procs%shards
	for i := 0; i < shards; i++ {
		procs := base
		if i < rem {
			procs++
		}
		opts := cfg.Options
		if cfg.Diagnosis != nil {
			// Wrap the plane-wide diagnosis sink per shard so every
			// emitted diagnosis carries the shard it was computed on.
			var o core.Options
			if opts != nil {
				o = *opts
			}
			shardID, inner, sink := i, o.Diagnosis, cfg.Diagnosis
			o.Diagnosis = func(d *core.PlanDiagnosis) {
				d.Shard = shardID
				if inner != nil {
					inner(d)
				}
				sink(d)
			}
			opts = &o
		}
		sh := newShard(i, procs, cfg.Origin, opts, cfg.Horizon, cfg.HeadroomHorizon)
		sh.resizeHook = cfg.OnShardResize
		if cfg.Ledger != nil {
			sh.led = cfg.Ledger.Shard(i)
			sh.led.SetCapacity(procs, cfg.Origin)
		}
		sh.mu.Lock()
		sh.refreshLoadLocked()
		sh.mu.Unlock()
		a.shards = append(a.shards, sh)
	}
	if a.metrics != nil {
		a.metrics.bindShards(len(a.shards))
		a.publishMetrics()
	}
	a.publishHeadroom()
	return a, nil
}

// Shards returns the number of shards in the plane.
func (a *Arbitrator) Shards() int { return len(a.shards) }

// ProbeK returns the effective probe fan-out.
func (a *Arbitrator) ProbeK() int { return a.probeK }

// Shard returns the i-th shard for inspection (tests, the rebalancer, obs
// gauges).
func (a *Arbitrator) Shard(i int) *Shard { return a.shards[i] }

// Procs returns the total machine size across all shards.
func (a *Arbitrator) Procs() int {
	total := 0
	for _, sh := range a.shards {
		total += sh.Procs()
	}
	return total
}

// candidates returns the indices of the k least-loaded shards, by the
// cached lock-free load signal, ties broken by shard id (deterministic: a
// strict-less insertion over ascending ids keeps the lower id first).
// One O(shards * k) selection scan, no sort, no closure allocations — this
// runs on every negotiation.
func (a *Arbitrator) candidates() []int {
	k := a.probeK
	cands := make([]int, 0, k)
	loads := make([]float64, 0, k)
	for i, sh := range a.shards {
		l := sh.Load()
		pos := len(cands)
		for pos > 0 && l < loads[pos-1] {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(cands) < k {
			cands = append(cands, 0)
			loads = append(loads, 0)
		}
		copy(cands[pos+1:], cands[pos:])
		copy(loads[pos+1:], loads[pos:])
		cands[pos], loads[pos] = i, l
	}
	return cands
}

// probeResult is one successful planning probe.
type probeResult struct {
	shard *Shard
	pl    *core.Placement
	key   planKey
	ver   uint64
}

// Negotiate runs federated admission control: probe the k least-loaded
// shards with a real plan, commit to the best probe under the paper's
// tie-break, and fall back down the probe order if a commit races with a
// concurrent mutation and the re-admission is rejected.  Returns the grant
// or qos.ErrRejected.
func (a *Arbitrator) Negotiate(job core.Job) (*qos.Grant, error) {
	return a.NegotiateTimed(job, nil)
}

// NegotiateTimed is Negotiate with latency-phase attribution (rec may be
// nil): candidate selection is route, planning probes are probe, and the
// winning commit is reserve.  A commit attempt that loses its version
// race is attributed to probe — the capacity the probe saw was stale, so
// race retries surface as probe-phase inflation, which is exactly the
// contention signal the regression sentinel watches for.
func (a *Arbitrator) NegotiateTimed(job core.Job, rec *phase.Rec) (*qos.Grant, error) {
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("fed: negotiate: %w", err)
	}
	// Span plumbing: with a tracer bound, the router opens a route span
	// under the request's root span (minting a root of its own when the
	// request arrived untraced) plus one plan span per probe and one
	// reserve span per commit attempt.  With no tracer the only cost on
	// this hot path is the t != nil comparisons.
	t := a.tracer
	var root, route *obs.ActiveSpan
	if t != nil {
		if job.Trace == 0 {
			tr := t.NewTrace()
			root = t.Start(tr, 0, "fed.negotiate", obs.StageArrival, job.ID)
			job.Trace, job.Span = uint64(tr), uint64(root.ID())
		}
		route = t.Start(obs.TraceID(job.Trace), obs.SpanID(job.Span), "fed.route", obs.StageRoute, job.ID)
	}
	cands := a.candidates()
	rec.Mark(phase.Route)
	probes := make([]probeResult, 0, len(cands))
	for _, ci := range cands {
		sh := a.shards[ci]
		var ps *obs.ActiveSpan
		if t != nil {
			ps = t.Start(obs.TraceID(job.Trace), route.ID(), "fed.probe", obs.StagePlan, job.ID)
			ps.SetAttr("shard", float64(sh.ID()))
		}
		pl, key, ver, ok := sh.probe(job)
		if ok {
			probes = append(probes, probeResult{shard: sh, pl: pl, key: key, ver: ver})
		}
		if t != nil {
			if ok {
				ps.SetAttr("finish", key.finish)
			} else {
				ps.SetErr("infeasible")
			}
			ps.End()
		}
	}
	if a.metrics != nil {
		a.metrics.Probes.Add(int64(len(cands)))
	}
	rec.Mark(phase.Probe)
	if len(probes) == 0 {
		// No shard can schedule any chain.  Mirror the monolith's
		// rejection bookkeeping on the least-loaded candidate (each
		// probed shard already counted its own planning work).
		a.shards[cands[0]].noteRejected(job)
		a.finishReject(job)
		if t != nil {
			route.SetErr("rejected")
			route.End()
			root.SetErr("rejected")
			root.End()
		}
		return nil, qos.ErrRejected
	}
	// Order probes best-first: stable insertion on strict betterKey, so
	// the incumbent wins ties and the load-order position breaks full
	// ties toward the less-loaded shard.  k is tiny; no sort machinery.
	for i := 1; i < len(probes); i++ {
		for j := i; j > 0 && betterKey(probes[j].key, probes[j-1].key); j-- {
			probes[j], probes[j-1] = probes[j-1], probes[j]
		}
	}
	var lastErr error
	for i, pr := range probes {
		var rs *obs.ActiveSpan
		if t != nil {
			rs = t.Start(obs.TraceID(job.Trace), route.ID(), "fed.commit", obs.StageReserve, job.ID)
			rs.SetAttr("shard", float64(pr.shard.ID()))
			rs.SetAttr("rank", float64(i))
		}
		pl, raced, err := pr.shard.commitPlanned(job, pr.pl, pr.ver)
		if raced {
			if a.metrics != nil {
				a.metrics.CommitRaces.Add(1)
			}
			rs.SetAttr("raced", 1)
		}
		if err != nil {
			// The capacity the probe saw is gone; the raced re-admission
			// already recorded the rejection on that shard.  Try the next
			// best probe.  The wasted attempt is probe time: stale probes
			// are the cause, and the sentinel should see races inflate the
			// probe phase, not the reserve phase.
			rec.Mark(phase.Probe)
			if t != nil {
				rs.SetErr("commit-race")
				rs.End()
			}
			lastErr = err
			continue
		}
		g := &qos.Grant{
			JobID:     job.ID,
			Chain:     pl.Chain,
			Quality:   job.Chains[pl.Chain].Quality,
			Placement: *pl,
			Trace:     job.Trace,
			Shard:     pr.shard.ID(),
		}
		rec.Mark(phase.Reserve)
		rec.SetShard(pr.shard.ID())
		if t != nil {
			rs.SetAttr("start", pl.Start())
			rs.SetAttr("finish", pl.Finish())
			rs.End()
			route.End()
			root.End()
		}
		a.finishAdmit(job, g, pr.shard, i)
		return g, nil
	}
	a.finishReject(job)
	if t != nil {
		route.SetErr("rejected")
		route.End()
		root.SetErr("rejected")
		root.End()
	}
	if lastErr != nil && !errors.Is(lastErr, core.ErrRejected) {
		return nil, lastErr
	}
	return nil, qos.ErrRejected
}

// NegotiateDAG runs DAG admission control, trying candidates in load
// order until one admits the job.  DAG negotiations update shard
// statistics but, like the monolith, are not recorded in the decision
// history.
func (a *Arbitrator) NegotiateDAG(job core.DAGJob) (*qos.Grant, error) {
	var lastErr error
	for _, ci := range a.candidates() {
		sh := a.shards[ci]
		pl, err := sh.admitDAG(job)
		if err == nil {
			if a.metrics != nil {
				a.metrics.Admitted.Add(1)
				a.publishMetrics()
			}
			a.publishHeadroom()
			return &qos.Grant{
				JobID:     job.ID,
				Chain:     pl.Chain,
				Quality:   job.Alts[pl.Chain].Quality,
				Placement: *pl,
				Shard:     sh.ID(),
			}, nil
		}
		lastErr = err
	}
	if a.metrics != nil {
		a.metrics.Rejected.Add(1)
	}
	if lastErr != nil && !errors.Is(lastErr, core.ErrRejected) {
		return nil, lastErr
	}
	return nil, qos.ErrRejected
}

func (a *Arbitrator) finishAdmit(job core.Job, g *qos.Grant, sh *Shard, probeRank int) {
	if a.metrics != nil {
		a.metrics.Admitted.Add(1)
		if probeRank > 0 {
			a.metrics.NonBestCommits.Add(1)
		}
		a.publishMetrics()
	}
	a.publishHeadroom()
	a.record(qos.Decision{Job: job, Grant: g, Now: a.Now()})
}

func (a *Arbitrator) finishReject(job core.Job) {
	if a.metrics != nil {
		a.metrics.Rejected.Add(1)
		a.publishMetrics()
	}
	a.publishHeadroom()
	a.record(qos.Decision{Job: job, Rejected: true, Now: a.Now()})
}

// publishHeadroom merges the shards' cached admissibility frontiers into
// the plane-wide frontier and hands it to the configured sink.  It reads
// only the shards' lock-free headroom caches; with forecasting disabled
// (HeadroomHorizon == 0) it is a single comparison.
func (a *Arbitrator) publishHeadroom() {
	if a.headroomHorizon <= 0 || a.headroomSink == nil {
		return
	}
	hr, any := a.cachedHeadroom()
	if any {
		a.headroomSink(hr)
	}
}

// cachedHeadroom merges the shards' cached frontiers (lock-free reads).
func (a *Arbitrator) cachedHeadroom() (core.Headroom, bool) {
	var out core.Headroom
	any := false
	for _, sh := range a.shards {
		hr, ok := sh.HeadroomSignal()
		if !ok {
			continue
		}
		if !any {
			out, any = hr, true
		} else {
			out = out.Merge(hr)
		}
	}
	return out, any
}

// Headroom returns the plane-wide admissibility frontier over
// [now, now+horizon), recomputed live from every shard's profile under
// its lock and merged per-axis (a job is admissible somewhere if some
// shard can take it; shards never co-schedule one rigid task).
func (a *Arbitrator) Headroom(horizon float64) core.Headroom {
	var out core.Headroom
	for i, sh := range a.shards {
		hr := sh.HeadroomLive(horizon)
		if i == 0 {
			out = hr
		} else {
			out = out.Merge(hr)
		}
	}
	return out
}

// WhatIf replays the job under a counterfactual delta against every
// shard's forked schedule (lock held only for the fork), returning the
// first admissible placement in shard order.  Like the monolithic
// counterpart it mutates nothing and emits no diagnoses; a 1-shard plane
// answers exactly what qos.Arbitrator.WhatIf answers.
func (a *Arbitrator) WhatIf(job core.Job, d core.WhatIfDelta) (*core.Placement, bool) {
	for _, sh := range a.shards {
		if pl, ok := sh.whatIf(job, d); ok {
			return pl, true
		}
	}
	return nil, false
}

// Diagnose explains why the job fails on the least-loaded candidate
// shard (the shard the router would have probed first), stamped with
// that shard's id.
func (a *Arbitrator) Diagnose(job core.Job) *core.PlanDiagnosis {
	return a.shards[a.candidates()[0]].diagnose(job)
}

func (a *Arbitrator) record(d qos.Decision) {
	a.histMu.Lock()
	if a.keepHist {
		a.history = append(a.history, d)
	}
	obs := a.observer
	a.histMu.Unlock()
	if obs != nil {
		obs(d)
	}
}

// Observe advances the plane's clock, folding elapsed history on every
// shard.
func (a *Arbitrator) Observe(now float64) {
	for {
		cur := floatFromBits(a.nowBits.Load())
		if now <= cur {
			return
		}
		if a.nowBits.CompareAndSwap(floatBits(cur), floatBits(now)) {
			break
		}
	}
	for _, sh := range a.shards {
		sh.observe(now)
	}
	if a.metrics != nil {
		a.publishMetrics()
	}
	a.publishHeadroom()
}

// Now returns the last observed time.
func (a *Arbitrator) Now() float64 { return floatFromBits(a.nowBits.Load()) }

// Utilization returns reserved capacity as a fraction of the whole plane
// over [origin, horizon]: total reserved processor-time up to horizon over
// total processors times the window.  With one shard this is exactly the
// monolithic arbitrator's utilization.
func (a *Arbitrator) Utilization(origin, horizon float64) float64 {
	if horizon <= origin {
		return 0
	}
	var busy float64
	procs := 0
	for _, sh := range a.shards {
		busy += sh.BusyUpTo(horizon)
		procs += sh.Procs()
	}
	return busy / (float64(procs) * (horizon - origin))
}

// BusyUpTo returns total reserved processor-time up to t across the plane.
func (a *Arbitrator) BusyUpTo(t float64) float64 {
	var busy float64
	for _, sh := range a.shards {
		busy += sh.BusyUpTo(t)
	}
	return busy
}

// Stats returns the plane-wide scheduler counters: the additive merge of
// every shard's core.Stats.
func (a *Arbitrator) Stats() core.Stats {
	var out core.Stats
	for _, sh := range a.shards {
		s := sh.Stats()
		out.Admitted += s.Admitted
		out.Rejected += s.Rejected
		out.ReservedArea += s.ReservedArea
		out.QualitySum += s.QualitySum
		out.ChainsTried += s.ChainsTried
		out.HolesProbed += s.HolesProbed
		out.PlanFailures += s.PlanFailures
		for ci, n := range s.TunableChosen {
			for len(out.TunableChosen) <= ci {
				out.TunableChosen = append(out.TunableChosen, 0)
			}
			out.TunableChosen[ci] += n
		}
	}
	return out
}

// IndexStats returns the additive merge of every shard's profile-index
// work counters.
func (a *Arbitrator) IndexStats() core.IndexStats {
	var out core.IndexStats
	for _, sh := range a.shards {
		s := sh.IndexStats()
		out.Enabled = out.Enabled || s.Enabled
		out.Rebuilds += s.Rebuilds
		out.LeafUpdates += s.LeafUpdates
		out.Descents += s.Descents
		out.DescentSteps += s.DescentSteps
		out.RangeQueries += s.RangeQueries
	}
	return out
}

// History returns the recorded decisions (empty unless KeepHistory), in
// commit order.
func (a *Arbitrator) History() []qos.Decision {
	a.histMu.Lock()
	defer a.histMu.Unlock()
	return append([]qos.Decision(nil), a.history...)
}

// ShardLoads returns each shard's cached load signal (tests, CLIs).
func (a *Arbitrator) ShardLoads() []float64 {
	out := make([]float64, len(a.shards))
	for i, sh := range a.shards {
		out[i] = sh.Load()
	}
	return out
}

// ShardProcs returns each shard's current processor count.
func (a *Arbitrator) ShardProcs() []int {
	out := make([]int, len(a.shards))
	for i, sh := range a.shards {
		out[i] = sh.Procs()
	}
	return out
}

// UtilizationSpread returns max-min per-shard utilization over
// [origin, horizon] — the balance figure the rebalancer drives down.
func (a *Arbitrator) UtilizationSpread(origin, horizon float64) float64 {
	if len(a.shards) == 0 || horizon <= origin {
		return 0
	}
	lo, hi := 0.0, 0.0
	for i, sh := range a.shards {
		u := sh.Utilization(origin, horizon)
		if i == 0 || u < lo {
			lo = u
		}
		if i == 0 || u > hi {
			hi = u
		}
	}
	return hi - lo
}

// CheckInvariants validates every shard's profile invariants.
func (a *Arbitrator) CheckInvariants() error {
	for _, sh := range a.shards {
		if err := sh.CheckInvariants(); err != nil {
			return fmt.Errorf("fed: shard %d: %w", sh.ID(), err)
		}
	}
	return nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
