package fed

import (
	"testing"

	"milan/internal/core"
	"milan/internal/obs/ledger"
)

// Ledger-cost benchmarks.  The contract mirrors the tracer's: a plane
// with no ledger bound pays exactly one nil pointer comparison per
// commit/rejection hook, so ledger=off must sit within noise of
// BenchmarkShardedAdmit.  ledger=on quantifies the opt-in cost of exact
// per-tenant accounting plus the time-bucketed spread on every commit.
// CI's benchdiff gate tracks both series in BENCH_trajectory.jsonl.

func benchLedgerLoop(b *testing.B, led *ledger.Sharded) {
	plane, err := New(Config{Procs: benchProcs, Shards: 8, ProbeK: 2, Ledger: led})
	if err != nil {
		b.Fatal(err)
	}
	admitLoop(b,
		func(j core.Job) error { _, err := plane.Negotiate(j); return err },
		plane.Observe)
}

func BenchmarkShardedAdmitLedgerOff(b *testing.B) {
	benchLedgerLoop(b, nil)
}

func BenchmarkShardedAdmitLedgerOn(b *testing.B) {
	benchLedgerLoop(b, ledger.NewSharded(ledger.Config{Capacity: benchProcs}, 8))
}
