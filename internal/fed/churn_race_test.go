package fed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"milan/internal/resbroker"
)

// TestRebalancerBrokerChurnRace hammers the plane from both sides at
// once: admissions negotiate a Figure-4 stream while broker churn
// goroutines flood register/withdraw events that resize the plane through
// AttachBroker.  Run under -race this is the data-race probe for the
// rebalancer's pool-following path; the post-churn assertions pin the
// structural invariants — no shard profile over-admits, capacity settles
// to exactly the surviving pool, and no shard is starved below the floor.
func TestRebalancerBrokerChurnRace(t *testing.T) {
	const (
		procs    = 32
		machines = 8
		churners = 4
		flips    = 50
	)

	plane, err := New(Config{Procs: procs, Shards: 4, ProbeK: 2})
	if err != nil {
		t.Fatal(err)
	}
	rb := plane.Rebalancer()

	broker := resbroker.New(nil)
	for i := 0; i < machines; i++ {
		if err := broker.Register(resbroker.Resource{
			ID:    fmt.Sprintf("base-%d", i),
			Procs: procs / machines,
			Speed: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	stop := rb.AttachBroker(broker, 0)
	defer stop()

	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup

	// Admission side: one clock owner negotiating a paced overload.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, job := range smallStream(400, 2, 99) {
			plane.Observe(job.Release)
			rb.Rebalance(1)
			if _, err := plane.Negotiate(job); err == nil {
				admitted.Add(1)
			} else {
				rejected.Add(1)
			}
		}
	}()

	// Churn side: transient machines flapping in and out of the pool
	// while admissions run.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < flips; i++ {
				id := fmt.Sprintf("churn-%d-%d", c, i)
				if err := broker.Register(resbroker.Resource{ID: id, Procs: 4, Speed: 1}); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				if err := broker.Deregister(id); err != nil {
					t.Errorf("deregister %s: %v", id, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	if admitted.Load() == 0 {
		t.Fatal("no job admitted during churn; the race window was never exercised")
	}
	if rejected.Load() == 0 {
		t.Fatal("no job rejected during churn; the stream did not stress capacity")
	}

	// Quiesce: every transient machine has withdrawn, so the plane must
	// settle back to exactly the base pool.  Advance past every possible
	// reservation first so shrink headroom cannot race with history.
	plane.Observe(1e9)
	want := broker.TotalProcs()
	if want != procs {
		t.Fatalf("broker pool ended at %d procs, want %d — churn leaked machines", want, procs)
	}
	if got, err := rb.SetTotalCapacity(want); err != nil || got != want {
		t.Fatalf("settle to %d procs: got %d, err %v", want, got, err)
	}

	total := 0
	for i, p := range plane.ShardProcs() {
		total += p
		if p < 1 {
			t.Errorf("shard %d starved to %d processors", i, p)
		}
	}
	if total != want {
		t.Errorf("plane holds %d processors, pool holds %d — capacity not conserved", total, want)
	}
	// CheckInvariants re-validates every shard profile: admission during
	// a shrink must never leave a shard holding more reserved work than
	// processors (the over-admission probe).
	if err := plane.CheckInvariants(); err != nil {
		t.Errorf("post-churn invariants: %v", err)
	}
}

// TestAttachBrokerStopDetaches pins the detach contract under load: after
// stop() the plane must ignore further pool changes.
func TestAttachBrokerStopDetaches(t *testing.T) {
	plane, err := New(Config{Procs: 16, Shards: 2, ProbeK: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb := plane.Rebalancer()
	broker := resbroker.New(nil)
	for i := 0; i < 2; i++ {
		if err := broker.Register(resbroker.Resource{ID: fmt.Sprintf("m%d", i), Procs: 8, Speed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	stop := rb.AttachBroker(broker, 0)
	if err := broker.Register(resbroker.Resource{ID: "grow", Procs: 8, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := plane.Procs(); got != 24 {
		t.Fatalf("attached plane at %d procs, want 24", got)
	}
	stop()
	if err := broker.Register(resbroker.Resource{ID: "late", Procs: 8, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := plane.Procs(); got != 24 {
		t.Fatalf("detached plane resized to %d procs", got)
	}
}
