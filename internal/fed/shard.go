package fed

import (
	"math"
	"sync"
	"sync/atomic"

	"milan/internal/core"
	"milan/internal/obs/ledger"
)

// Shard is one partition of the machine's processor pool: its own
// core.Scheduler behind its own lock, so admissions on different shards
// proceed concurrently.  All mutation goes through the federated router and
// the rebalancer; tests may inspect a shard through the read accessors.
type Shard struct {
	id int

	mu    sync.Mutex
	sched *core.Scheduler
	now   float64
	// version counts committed mutations (reservations, trims, resizes).
	// The router records it at probe time and may commit a planned
	// placement without re-planning when the version is unchanged — the
	// optimistic-concurrency fast path that keeps a 1-shard plane
	// bitwise-identical to the monolithic arbitrator.
	version uint64

	// horizon is the sliding load-signal window (0 = all future work).
	horizon float64
	// loadArea approximates the shard's future reserved area: it is
	// recomputed exactly from the profile on observe and resize, and
	// bumped incrementally by each commit's own area in between (a commit
	// never needs to rescan the profile for the routing signal — slight
	// staleness of the window edge is fine for a load hint).
	loadArea float64
	// loadBits caches the shard's normalized load signal (future reserved
	// area per processor) as float64 bits, so the router's
	// power-of-k-choices scan reads one atomic per shard without taking
	// any lock.
	loadBits atomic.Uint64

	// headroomHorizon, when positive, turns on incremental maintenance of
	// the shard's admissibility frontier (core.Headroom over
	// [now, now+headroomHorizon)): the cached frontier is recomputed from
	// MaximalHoles after every committed mutation and published through
	// headroomPtr for lock-free plane-wide merging.  Zero keeps the commit
	// path identical to the pre-forensics plane.
	headroomHorizon float64
	headroomPtr     atomic.Pointer[core.Headroom]

	// resizeHook, if non-nil, fires under sh.mu after every successful
	// resize with the shard id and new processor count (Config.OnShardResize).
	resizeHook func(shard, procs int)

	// led, if non-nil, is this shard's utilization ledger: commits are
	// recorded under sh.mu immediately after the scheduler commit, so
	// the ledger's running total performs the same float additions in
	// the same order as the scheduler's ReservedArea counter.  nil (the
	// default) costs one pointer comparison per commit.
	led *ledger.Ledger
}

func newShard(id, procs int, origin float64, opts *core.Options, horizon, headroomHorizon float64) *Shard {
	return &Shard{
		id:              id,
		sched:           core.NewScheduler(procs, origin, opts),
		now:             origin,
		horizon:         horizon,
		headroomHorizon: headroomHorizon,
	}
}

// ID returns the shard's index within the plane.
func (sh *Shard) ID() int { return sh.id }

// Procs returns the shard's current processor count.
func (sh *Shard) Procs() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.Procs()
}

// Load returns the cached load signal: reserved area over the sliding
// horizon, per processor.  It is refreshed after every committed mutation
// and read lock-free by the router.
func (sh *Shard) Load() float64 { return math.Float64frombits(sh.loadBits.Load()) }

// Headroom returns the number of processors the shard could give away
// without touching any committed reservation (capacity minus the peak
// committed usage over its represented future).
func (sh *Shard) Headroom() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.Procs() - sh.sched.Profile().PeakUsed()
}

// Stats returns the shard scheduler's counters.
func (sh *Shard) Stats() core.Stats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.Stats()
}

// IndexStats returns the shard's profile-index work counters.
func (sh *Shard) IndexStats() core.IndexStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.IndexStats()
}

// BusyUpTo returns the shard's reserved processor-time up to t.
func (sh *Shard) BusyUpTo(t float64) float64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.BusyUpTo(t)
}

// Utilization returns the shard's reserved-capacity fraction over
// [origin, horizon] against its own processor count.
func (sh *Shard) Utilization(origin, horizon float64) float64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.Utilization(origin, horizon)
}

// CheckInvariants validates the shard profile's structural invariants
// (usage within capacity everywhere, ordered breakpoints, clean index).
func (sh *Shard) CheckInvariants() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.Profile().CheckInvariants()
}

// refreshLoadLocked recomputes the cached load signal exactly from the
// profile.  Callers hold sh.mu.
func (sh *Shard) refreshLoadLocked() {
	p := sh.sched.Profile()
	from := sh.now
	if o := p.Origin(); o > from {
		from = o
	}
	if sh.horizon > 0 {
		sh.loadArea = p.BusyOn(from, from+sh.horizon)
	} else {
		sh.loadArea = p.BusyOn(from, p.LastBreak())
	}
	sh.publishLoadLocked()
	sh.refreshHeadroomLocked()
}

// bumpLoadLocked adds a freshly committed placement's area to the cached
// signal without rescanning the profile; the next observe or resize
// snaps the approximation back to exact.  Callers hold sh.mu.
func (sh *Shard) bumpLoadLocked(area float64) {
	sh.loadArea += area
	sh.publishLoadLocked()
	sh.refreshHeadroomLocked()
}

// refreshHeadroomLocked recomputes the shard's cached admissibility
// frontier (no-op unless the plane enables headroom forecasting).
// Callers hold sh.mu.  One refresh costs O(n log n) in committed
// reservations via MaximalHoles; it runs only on committed mutations,
// never on probes.
func (sh *Shard) refreshHeadroomLocked() {
	if sh.headroomHorizon <= 0 {
		return
	}
	hr := sh.sched.Headroom(sh.now, sh.headroomHorizon)
	sh.headroomPtr.Store(&hr)
}

// HeadroomSignal returns the shard's cached admissibility frontier (read
// lock-free) and whether headroom forecasting is enabled on this plane.
func (sh *Shard) HeadroomSignal() (core.Headroom, bool) {
	p := sh.headroomPtr.Load()
	if p == nil {
		return core.Headroom{}, false
	}
	return *p, true
}

// HeadroomLive recomputes the shard's frontier over [now, now+horizon)
// from the live profile under the shard lock (the on-demand path for
// reports; the cached signal serves the hot path).
func (sh *Shard) HeadroomLive(horizon float64) core.Headroom {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sched.Headroom(sh.now, horizon)
}

// whatIf replays the job under the delta on a fork of this shard's
// schedule.  The shard lock is held only for the fork; the counterfactual
// planning runs outside the critical section, so probes never stall
// concurrent admissions.
func (sh *Shard) whatIf(job core.Job, d core.WhatIfDelta) (*core.Placement, bool) {
	sh.mu.Lock()
	f := sh.sched.Fork()
	sh.mu.Unlock()
	return core.WhatIfOn(f, job, d)
}

// diagnose explains why the job fails on this shard, stamped with the
// shard id.  The lock is held for the analysis so the diagnosis is
// consistent with one decision point.
func (sh *Shard) diagnose(job core.Job) *core.PlanDiagnosis {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d := sh.sched.Diagnose(job)
	d.Shard = sh.id
	return d
}

func (sh *Shard) publishLoadLocked() {
	sh.loadBits.Store(math.Float64bits(sh.loadArea / float64(sh.sched.Procs())))
}

// probe plans the job on this shard without committing, returning the
// placement, its cross-shard tie-break key (the one the planner already
// computed for its own chain choice) and the shard version the plan was
// computed against.
func (sh *Shard) probe(job core.Job) (pl *core.Placement, key planKey, ver uint64, ok bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pl, pk, ok := sh.sched.PlanKeyed(job)
	if !ok {
		return nil, planKey{}, sh.version, false
	}
	return pl, planKey{finish: pk.Finish, util: pk.Util, prefix: pk.Prefix}, sh.version, true
}

// commitPlanned commits a placement planned at version ver.  When the shard
// is unchanged since the probe, the plan commits directly (the monolith's
// Plan+Commit sequence, split across two critical sections).  When another
// admission or a trim won the race, the job is re-admitted from scratch on
// this shard; raced reports that fallback.  A core.ErrRejected from the
// re-admission means the capacity the probe saw is gone.
func (sh *Shard) commitPlanned(job core.Job, pl *core.Placement, ver uint64) (out *core.Placement, raced bool, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.version == ver {
		if err := sh.sched.Commit(job, pl); err != nil {
			return nil, false, err
		}
		sh.version++
		sh.bumpLoadLocked(pl.Area())
		if sh.led != nil {
			sh.led.RecordCommit(&job, pl)
		}
		return pl, false, nil
	}
	pl2, err := sh.sched.Admit(job)
	if err != nil {
		return nil, true, err
	}
	sh.version++
	sh.bumpLoadLocked(pl2.Area())
	if sh.led != nil {
		sh.led.RecordCommit(&job, pl2)
	}
	return pl2, true, nil
}

// noteRejected records a router-level rejection on this shard, mirroring
// the monolithic Admit's rejection bookkeeping (the probes already counted
// the per-chain planning work).
func (sh *Shard) noteRejected(job core.Job) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sched.NoteRejected(&job, "no-feasible-chain")
	if sh.led != nil {
		sh.led.RecordRejection(&job)
	}
}

// admitDAG runs DAG admission control on this shard.
func (sh *Shard) admitDAG(job core.DAGJob) (*core.Placement, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pl, err := sh.sched.AdmitDAG(job)
	if err == nil {
		sh.version++
		sh.bumpLoadLocked(pl.Area())
		if sh.led != nil {
			// DAG jobs carry no tenant identity yet; account them on
			// the unattributed stream so plane totals stay complete.
			sh.led.RecordCommitKeyed(ledger.Key{}, pl)
		}
	}
	return pl, err
}

// observe advances the shard's clock, folding elapsed history.
func (sh *Shard) observe(now float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if now > sh.now {
		sh.now = now
		sh.sched.Observe(now)
		sh.version++
		sh.refreshLoadLocked()
		if sh.led != nil {
			sh.led.Advance(now)
		}
	}
}

// resize sets the shard's processor count: growth always succeeds,
// shrinking is limited to uncommitted headroom (reservations are never
// preempted).
func (sh *Shard) resize(procs int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.sched.SetCapacity(procs); err != nil {
		return err
	}
	sh.version++
	sh.refreshLoadLocked()
	if sh.led != nil {
		sh.led.SetCapacity(procs, sh.now)
	}
	if sh.resizeHook != nil {
		sh.resizeHook(sh.id, procs)
	}
	return nil
}
