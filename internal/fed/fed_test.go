package fed

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/qos"
	"milan/internal/resbroker"
	"milan/internal/workload"
)

// fig4Stream materializes n tunable Figure-4 jobs with Poisson gaps — the
// paper's workload, shared with the experiments package.
func fig4Stream(n int, meanGap float64, seed int64) []core.Job {
	p := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	return p.Stream(workload.NewPoisson(meanGap, seed), n, workload.Tunable)
}

// smallStream scales the Figure-4 shape down to x = 4 so single tasks fit
// inside small shards (a task never spans shards).
func smallStream(n int, meanGap float64, seed int64) []core.Job {
	p := workload.FigureJob{X: 4, T: 25, Alpha: 0.25, Laxity: 0.5}
	return p.Stream(workload.NewPoisson(meanGap, seed), n, workload.Tunable)
}

// TestSingleShardMatchesMonolith is the plane's differential anchor: with
// one shard and probe fan-out one, the federated arbitrator performs
// exactly the monolithic qos.Arbitrator's scheduler calls in exactly its
// order, so on a Figure-4 replay the decision histories, statistics and
// utilization figures must be bitwise identical.
func TestSingleShardMatchesMonolith(t *testing.T) {
	const procs = 32
	jobs := fig4Stream(400, 6, 41)

	mono, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: procs, KeepHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := New(Config{Procs: procs, Shards: 1, ProbeK: 1, KeepHistory: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, job := range jobs {
		mono.Observe(job.Release)
		plane.Observe(job.Release)
		gm, em := mono.Negotiate(job)
		gf, ef := plane.Negotiate(job)
		if (em == nil) != (ef == nil) {
			t.Fatalf("job %d: monolith err=%v, fed err=%v", job.ID, em, ef)
		}
		if em != nil {
			if !errors.Is(em, qos.ErrRejected) || !errors.Is(ef, qos.ErrRejected) {
				t.Fatalf("job %d: unexpected errors %v / %v", job.ID, em, ef)
			}
			continue
		}
		if !reflect.DeepEqual(gm, gf) {
			t.Fatalf("job %d: grants differ\nmonolith: %+v\nfed:      %+v", job.ID, gm, gf)
		}
	}

	hm, hf := mono.History(), plane.History()
	if len(hm) != len(hf) {
		t.Fatalf("history lengths differ: monolith %d, fed %d", len(hm), len(hf))
	}
	for i := range hm {
		if !reflect.DeepEqual(hm[i], hf[i]) {
			t.Fatalf("decision %d differs\nmonolith: %+v\nfed:      %+v", i, hm[i], hf[i])
		}
	}
	if sm, sf := mono.Stats(), plane.Stats(); !reflect.DeepEqual(sm, sf) {
		t.Fatalf("stats differ\nmonolith: %+v\nfed:      %+v", sm, sf)
	}
	if sm := mono.Stats(); sm.Admitted == 0 || sm.Rejected == 0 {
		t.Fatalf("degenerate replay (admitted=%d rejected=%d): tune the stream", sm.Admitted, sm.Rejected)
	}
	last := jobs[len(jobs)-1].Release
	if um, uf := mono.Utilization(0, last+100), plane.Utilization(0, last+100); um != uf {
		t.Fatalf("utilization differs: monolith %v, fed %v", um, uf)
	}
	if bm, bf := mono.BusyUpTo(last), plane.BusyUpTo(last); bm != bf {
		t.Fatalf("busy differs: monolith %v, fed %v", bm, bf)
	}
	if im, ifed := mono.IndexStats(), plane.IndexStats(); !reflect.DeepEqual(im, ifed) {
		t.Fatalf("index stats differ\nmonolith: %+v\nfed:      %+v", im, ifed)
	}
	if err := plane.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0}); err == nil {
		t.Fatal("accepted 0 procs")
	}
	if _, err := New(Config{Procs: 4, Shards: 8}); err == nil {
		t.Fatal("accepted more shards than procs")
	}
	a, err := New(Config{Procs: 10, Shards: 4, ProbeK: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.ProbeK() != 4 {
		t.Fatalf("probe k = %d, want clamped to 4", a.ProbeK())
	}
	if got := a.ShardProcs(); !reflect.DeepEqual(got, []int{3, 3, 2, 2}) {
		t.Fatalf("partition = %v, want [3 3 2 2]", got)
	}
	if a.Procs() != 10 {
		t.Fatalf("total procs = %d", a.Procs())
	}
}

// TestConcurrentNegotiateAcrossShards hammers an 8-shard plane from many
// goroutines (run under -race in CI): every grant must respect its
// deadlines, per-shard profiles must stay within capacity, and the
// plane-wide admitted count must match the grants handed out.
func TestConcurrentNegotiateAcrossShards(t *testing.T) {
	const shards = 8
	const workers = 16
	const perWorker = 30

	plane, err := New(Config{Procs: 8 * shards, Shards: shards, ProbeK: 2})
	if err != nil {
		t.Fatal(err)
	}

	var granted sync.Map
	var admitted, rejected int64
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			jobs := smallStream(perWorker, 10, int64(100+w))
			for _, job := range jobs {
				job.ID = w*perWorker + job.ID
				g, err := plane.Negotiate(job)
				mu.Lock()
				if err != nil {
					rejected++
				} else {
					admitted++
					granted.Store(job.ID, g)
				}
				mu.Unlock()
				if err == nil {
					// Every task of the granted chain meets its deadline.
					chain := job.Chains[g.Chain]
					for i, tp := range g.Placement.Tasks {
						if tp.Finish > chain.Tasks[i].Deadline+core.Eps {
							t.Errorf("job %d task %d finishes %v after deadline %v",
								job.ID, i, tp.Finish, chain.Tasks[i].Deadline)
						}
					}
				} else if !errors.Is(err, qos.ErrRejected) {
					t.Errorf("job %d: unexpected error %v", job.ID, err)
				}
			}
		}(w)
	}
	wg.Wait()

	if err := plane.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := plane.Stats()
	if int64(st.Admitted) != admitted {
		t.Fatalf("stats admitted %d, grants returned %d", st.Admitted, admitted)
	}
	if admitted+rejected != workers*perWorker {
		t.Fatalf("decisions %d, jobs %d", admitted+rejected, workers*perWorker)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

// loadShardDirect commits jobs straight into one shard's scheduler,
// creating the imbalance the router would normally avoid — white-box setup
// for the rebalancer tests.
func loadShardDirect(t *testing.T, sh *Shard, procs int, dur, deadline float64) {
	t.Helper()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	job := core.Job{ID: 9000 + sh.id, Chains: []core.Chain{{
		Quality: 1,
		Tasks:   []core.Task{{Procs: procs, Duration: dur, Deadline: deadline, Quality: 1}},
	}}}
	if _, err := sh.sched.Admit(job); err != nil {
		t.Fatalf("direct load of shard %d: %v", sh.id, err)
	}
	sh.version++
	sh.refreshLoadLocked()
}

func TestRebalancerMigratesHeadroomToHungryShard(t *testing.T) {
	plane, err := New(Config{Procs: 8, Shards: 2, ProbeK: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 is saturated for a long stretch; shard 1 idles.
	loadShardDirect(t, plane.Shard(0), 4, 100, 1000)

	rb := plane.Rebalancer()
	if !rb.RebalanceOnce() {
		t.Fatal("no migration despite cold headroom and a hungry shard")
	}
	if got := plane.ShardProcs(); !reflect.DeepEqual(got, []int{5, 3}) {
		t.Fatalf("after one move: %v, want [5 3]", got)
	}
	if plane.Procs() != 8 {
		t.Fatalf("total procs changed: %d", plane.Procs())
	}
	moved := rb.Rebalance(0)
	// Further moves keep flowing toward shard 0 until the donor floor.
	if got := plane.Shard(1).Procs(); got < rb.MinShardProcs {
		t.Fatalf("donor shrunk below floor: %d", got)
	}
	if plane.Procs() != 8 {
		t.Fatalf("total procs changed after %d moves: %d", moved, plane.Procs())
	}
	if err := plane.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalancerNeverPreempts(t *testing.T) {
	plane, err := New(Config{Procs: 8, Shards: 2, ProbeK: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both shards fully committed: no headroom anywhere.
	loadShardDirect(t, plane.Shard(0), 4, 100, 1000)
	loadShardDirect(t, plane.Shard(1), 4, 50, 1000)
	if plane.Rebalancer().RebalanceOnce() {
		t.Fatal("migrated a processor out of a fully committed shard")
	}
	if got := plane.ShardProcs(); !reflect.DeepEqual(got, []int{4, 4}) {
		t.Fatalf("procs changed: %v", got)
	}
}

func TestSetTotalCapacityGrowAndShrink(t *testing.T) {
	plane, err := New(Config{Procs: 8, Shards: 2, ProbeK: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb := plane.Rebalancer()

	if got, err := rb.SetTotalCapacity(12); err != nil || got != 12 {
		t.Fatalf("grow: got %d err %v", got, err)
	}
	if plane.Procs() != 12 {
		t.Fatalf("procs = %d after grow", plane.Procs())
	}
	if got, err := rb.SetTotalCapacity(8); err != nil || got != 8 {
		t.Fatalf("shrink: got %d err %v", got, err)
	}

	// Shrink stops at committed reservations instead of preempting.
	loadShardDirect(t, plane.Shard(0), plane.Shard(0).Procs(), 100, 1000)
	loadShardDirect(t, plane.Shard(1), plane.Shard(1).Procs(), 100, 1000)
	got, err := rb.SetTotalCapacity(4)
	if err == nil {
		t.Fatal("shrink below committed usage succeeded")
	}
	if got != 8 || plane.Procs() != 8 {
		t.Fatalf("capacity after refused shrink: %d (plane %d), want 8", got, plane.Procs())
	}
	if _, err := rb.SetTotalCapacity(1); err == nil {
		t.Fatal("accepted total below one proc per shard")
	}
}

func TestAttachBrokerFollowsPool(t *testing.T) {
	plane, err := New(Config{Procs: 8, Shards: 2, ProbeK: 2})
	if err != nil {
		t.Fatal(err)
	}
	broker := resbroker.New(nil)
	stop := plane.Rebalancer().AttachBroker(broker, 0)
	defer stop()

	if err := broker.Register(resbroker.Resource{ID: "m0", Procs: 8, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if plane.Procs() != 8 {
		t.Fatalf("procs = %d after matching registration", plane.Procs())
	}
	if err := broker.Register(resbroker.Resource{ID: "m1", Procs: 4, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if plane.Procs() != 12 {
		t.Fatalf("procs = %d after adding m1, want 12", plane.Procs())
	}
	if err := broker.Deregister("m1"); err != nil {
		t.Fatal(err)
	}
	if plane.Procs() != 8 {
		t.Fatalf("procs = %d after removing m1, want 8", plane.Procs())
	}
	// Bindings of computations do not resize the plane.
	if _, err := broker.Bind(resbroker.Request{Computation: "c", MinProcs: 2}); err != nil {
		t.Fatal(err)
	}
	if plane.Procs() != 8 {
		t.Fatalf("procs = %d after unrelated bind", plane.Procs())
	}
	stop()
	if err := broker.Register(resbroker.Resource{ID: "m2", Procs: 16, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if plane.Procs() != 8 {
		t.Fatalf("stopped subscription still resized the plane to %d", plane.Procs())
	}
}

func TestNegotiateDAGFederated(t *testing.T) {
	plane, err := New(Config{Procs: 8, Shards: 2, ProbeK: 2})
	if err != nil {
		t.Fatal(err)
	}
	job := core.DAGJob{ID: 1, Alts: []core.DAG{{
		Name:    "diamond",
		Quality: 0.9,
		Tasks: []core.DAGTask{
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: 100}},
			{Task: core.Task{Procs: 2, Duration: 10, Deadline: 100}, Preds: []int{0}},
			{Task: core.Task{Procs: 2, Duration: 10, Deadline: 100}, Preds: []int{0}},
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: 100}, Preds: []int{1, 2}},
		},
	}}}
	g, err := plane.NegotiateDAG(job)
	if err != nil {
		t.Fatal(err)
	}
	if g.Quality != 0.9 {
		t.Fatalf("quality = %v", g.Quality)
	}
	// An infeasible DAG is rejected with the qos sentinel.
	bad := core.DAGJob{ID: 2, Alts: []core.DAG{{
		Name:  "too-wide",
		Tasks: []core.DAGTask{{Task: core.Task{Procs: 64, Duration: 5, Deadline: 100}}},
	}}}
	if _, err := plane.NegotiateDAG(bad); !errors.Is(err, qos.ErrRejected) {
		t.Fatalf("err = %v, want qos.ErrRejected", err)
	}
}

func TestMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	plane, err := New(Config{Procs: 16, Shards: 2, ProbeK: 2, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	jobs := smallStream(40, 4, 7)
	for _, job := range jobs {
		plane.Observe(job.Release)
		_, _ = plane.Negotiate(job)
	}
	if m.Probes.Value() == 0 {
		t.Fatal("no probes counted")
	}
	st := plane.Stats()
	if m.Admitted.Value() != int64(st.Admitted) {
		t.Fatalf("metrics admitted %d, stats %d", m.Admitted.Value(), st.Admitted)
	}
	loadShardDirect(t, plane.Shard(0), plane.Shard(0).Procs(), 200, 10000)
	if n := plane.Rebalancer().Rebalance(0); n > 0 && m.Migrations.Value() != int64(n) {
		t.Fatalf("metrics migrations %d, moved %d", m.Migrations.Value(), n)
	}
	for i := 0; i < plane.Shards(); i++ {
		g := reg.Gauge(fmt.Sprintf("fed_shard_%d_procs", i))
		if g.Value() != float64(plane.Shard(i).Procs()) {
			t.Fatalf("gauge fed_shard_%d_procs = %v, shard has %d", i, g.Value(), plane.Shard(i).Procs())
		}
	}
}

// TestUtilizationSpread exercises the balance figure the experiments
// report: after a rebalancing pass on an imbalanced plane the spread must
// not widen.
func TestUtilizationSpread(t *testing.T) {
	plane, err := New(Config{Procs: 16, Shards: 4, ProbeK: 1})
	if err != nil {
		t.Fatal(err)
	}
	loadShardDirect(t, plane.Shard(0), 4, 50, 1000)
	before := plane.UtilizationSpread(0, 50)
	plane.Rebalancer().Rebalance(0)
	after := plane.UtilizationSpread(0, 50)
	if after > before+core.Eps {
		t.Fatalf("rebalance widened utilization spread: %v -> %v", before, after)
	}
}
