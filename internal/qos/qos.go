// Package qos implements the two components of the MILAN resource
// management architecture (Section 3 of the paper): per-application QoS
// agents, which describe an application's real-time constraints, resource
// requirements and tunability as a set of alternative execution paths, and
// the system-wide QoS arbitrator, which performs admission control and
// returns a resource allocation profile for one of those paths.
//
// The negotiation model is the static one evaluated in the paper: the agent
// communicates all possible execution paths up front and receives either a
// grant (chosen path plus a start time and processor count for every task)
// or a rejection.  Renegotiation hooks exist for capacity changes reported
// by the resource broker.
package qos

import (
	"errors"
	"fmt"
	"sync"

	"milan/internal/core"
	"milan/internal/obs/latency/phase"
)

// ErrRejected is returned by Negotiate when admission control fails: no
// execution path of the application can be scheduled to meet its deadlines.
var ErrRejected = errors.New("qos: request rejected by admission control")

// Grant is the arbitrator's answer to a successful negotiation: the chosen
// execution path and the reservation for each of its tasks.  The agent uses
// Chain to configure the application (e.g. set its control parameters) and
// the placement to know when each parallel step may run.
type Grant struct {
	JobID     int
	Chain     int     // index of the chosen execution path
	Quality   float64 // output quality of the chosen path
	Placement core.Placement

	// Trace echoes the request's trace identity (core.Job.Trace) so the
	// caller can correlate the grant — and the reservation's eventual
	// completion — with the admission spans.  Zero means "untraced".
	Trace uint64

	// Shard identifies which admission shard committed the reservation
	// when the grant came from a sharded plane (internal/fed); the
	// monolithic arbitrator always reports shard 0.  Completion events
	// must be delivered back to the same shard's accounting (the
	// utilization ledger keys realized area by shard).
	Shard int
}

// Finish returns the completion time of the granted reservation.
func (g *Grant) Finish() float64 { return g.Placement.Finish() }

// Negotiator is anything an agent can negotiate with: the in-process
// arbitrator or a qosnet client speaking to a remote one.
type Negotiator interface {
	Negotiate(job core.Job) (*Grant, error)
}

// TimedNegotiator is a Negotiator that can attribute its admission time
// to latency phases (internal/obs/latency/phase).  rec may be nil (or inert):
// implementations call its nil-safe Mark methods unconditionally, so the
// untimed path costs nothing beyond a nil check.
type TimedNegotiator interface {
	Negotiator
	NegotiateTimed(job core.Job, rec *phase.Rec) (*Grant, error)
}

// Decision records one admission decision for observers.
type Decision struct {
	Job      core.Job
	Grant    *Grant // nil when rejected
	Rejected bool
	Now      float64
}

// Arbitrator is the system-wide QoS arbitrator: it owns the machine's
// capacity profile and serializes admission decisions.  It is safe for
// concurrent use (agents negotiate from many goroutines; decisions are
// ordered by lock acquisition).
type Arbitrator struct {
	mu       sync.Mutex
	sched    *core.Scheduler
	now      float64
	observer func(Decision)
	history  []Decision
	keepHist bool
}

// ArbitratorConfig configures a new arbitrator.
type ArbitratorConfig struct {
	Procs   int           // machine size (required)
	Origin  float64       // schedule start time
	Options *core.Options // scheduler policy; nil means the paper's defaults
	// KeepHistory retains every Decision for inspection (tests, CLIs).
	KeepHistory bool
	// Observer, if set, is called synchronously with every decision.
	Observer func(Decision)
}

// NewArbitrator returns an arbitrator managing cfg.Procs processors.
func NewArbitrator(cfg ArbitratorConfig) (*Arbitrator, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("qos: arbitrator needs at least 1 processor, got %d", cfg.Procs)
	}
	return &Arbitrator{
		sched:    core.NewScheduler(cfg.Procs, cfg.Origin, cfg.Options),
		now:      cfg.Origin,
		observer: cfg.Observer,
		keepHist: cfg.KeepHistory,
	}, nil
}

// Procs returns the machine size.
func (a *Arbitrator) Procs() int { return a.sched.Procs() }

// Negotiate runs admission control for the job: it evaluates every execution
// path, reserves the best schedulable one (per the greedy heuristic's
// tie-breaking rules) and returns the grant, or ErrRejected.
func (a *Arbitrator) Negotiate(job core.Job) (*Grant, error) {
	return a.NegotiateTimed(job, nil)
}

// NegotiateTimed is Negotiate with latency-phase attribution: lock
// acquisition counts as route (decision serialization), the scheduler's
// admission descent as plan, and decision bookkeeping as reserve.  rec
// may be nil.
func (a *Arbitrator) NegotiateTimed(job core.Job, rec *phase.Rec) (*Grant, error) {
	a.mu.Lock()
	rec.Mark(phase.Route)
	defer a.mu.Unlock()

	pl, err := a.sched.Admit(job)
	rec.Mark(phase.Plan)
	if err != nil {
		if errors.Is(err, core.ErrRejected) {
			a.record(Decision{Job: job, Rejected: true, Now: a.now})
			rec.Mark(phase.Reserve)
			return nil, ErrRejected
		}
		return nil, err
	}
	g := &Grant{
		JobID:     job.ID,
		Chain:     pl.Chain,
		Quality:   job.Chains[pl.Chain].Quality,
		Placement: *pl,
		Trace:     job.Trace,
	}
	a.record(Decision{Job: job, Grant: g, Now: a.now})
	rec.Mark(phase.Reserve)
	return g, nil
}

// NegotiateDAG runs admission control for a DAG job (an application whose
// execution paths are precedence graphs rather than chains).  DAG
// negotiations update scheduler statistics but are not recorded in the
// decision history.
func (a *Arbitrator) NegotiateDAG(job core.DAGJob) (*Grant, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pl, err := a.sched.AdmitDAG(job)
	if err != nil {
		if errors.Is(err, core.ErrRejected) {
			return nil, ErrRejected
		}
		return nil, err
	}
	return &Grant{
		JobID:     job.ID,
		Chain:     pl.Chain,
		Quality:   job.Alts[pl.Chain].Quality,
		Placement: *pl,
	}, nil
}

// Observe informs the arbitrator that time has advanced (the simulation
// clock, or wall-clock progress in a live deployment), letting it compact
// its bookkeeping.
func (a *Arbitrator) Observe(now float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if now > a.now {
		a.now = now
		a.sched.Observe(now)
	}
}

// Now returns the last observed time.
func (a *Arbitrator) Now() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.now
}

// Utilization returns reserved capacity as a fraction over [origin, horizon].
func (a *Arbitrator) Utilization(origin, horizon float64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.Utilization(origin, horizon)
}

// BusyUpTo returns total reserved processor-time up to t.
func (a *Arbitrator) BusyUpTo(t float64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.BusyUpTo(t)
}

// Stats returns scheduler counters (admitted, rejected, chain choices).
func (a *Arbitrator) Stats() core.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.Stats()
}

// IndexStats returns the scheduler's profile-index work counters (zero
// value when the index is disabled via Options.ProfileIndex).
func (a *Arbitrator) IndexStats() core.IndexStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.IndexStats()
}

// WhatIf replays the job on a fork of the arbitrator's schedule under a
// counterfactual delta (extra processors, extra deadline, width cap,
// single chain), answering "what would it have taken to admit this job?"
// without mutating any live state.  The arbitrator's lock is held only
// for the fork; the replanning runs outside the critical section, so
// concurrent negotiations are not stalled by operator probes.
func (a *Arbitrator) WhatIf(job core.Job, d core.WhatIfDelta) (*core.Placement, bool) {
	a.mu.Lock()
	f := a.sched.Fork()
	a.mu.Unlock()
	return core.WhatIfOn(f, job, d)
}

// Diagnose explains why the job is (or would be) rejected: per-chain
// failure analysis with a replay-verified minimal-slack suggestion.  It
// never mutates the schedule; the lock is held for the analysis so the
// diagnosis is consistent with one decision point.
func (a *Arbitrator) Diagnose(job core.Job) *core.PlanDiagnosis {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.Diagnose(job)
}

// Headroom returns the machine's admissibility frontier over
// [now, now+horizon): the largest job the arbitrator could still admit
// without queueing behind existing reservations.
func (a *Arbitrator) Headroom(horizon float64) core.Headroom {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.Headroom(a.now, horizon)
}

// History returns the recorded decisions (empty unless KeepHistory).
func (a *Arbitrator) History() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Decision(nil), a.history...)
}

func (a *Arbitrator) record(d Decision) {
	if a.keepHist {
		a.history = append(a.history, d)
	}
	if a.observer != nil {
		a.observer(d)
	}
}

// Agent is the application-side QoS agent.  It carries the application's
// task system (all execution paths with resource requirements, deadlines
// and qualities — in the full system this is generated from the tunability
// language by the preprocessor) and a Configure callback through which the
// granted path's control-parameter assignment is pushed into the
// application.
type Agent struct {
	Job core.Job
	// Configure, if set, is invoked once with the grant so the application
	// can set its control parameters before execution (Section 3.2: "the
	// QoS agent then configures the application to execute along that
	// path").
	Configure func(*Grant)

	grant *Grant
}

// NewAgent returns an agent for the given application task system.
func NewAgent(job core.Job) *Agent { return &Agent{Job: job} }

// NegotiateWith submits the agent's task system to the negotiator.  On
// success the grant is retained and the Configure callback runs.
func (ag *Agent) NegotiateWith(n Negotiator) (*Grant, error) {
	if err := ag.Job.Validate(); err != nil {
		return nil, fmt.Errorf("qos: agent job invalid: %w", err)
	}
	g, err := n.Negotiate(ag.Job)
	if err != nil {
		return nil, err
	}
	ag.grant = g
	if ag.Configure != nil {
		ag.Configure(g)
	}
	return g, nil
}

// Grant returns the grant from the last successful negotiation, or nil.
func (ag *Agent) Grant() *Grant { return ag.grant }

// ChosenChain returns the granted execution path, or an error before a
// successful negotiation.
func (ag *Agent) ChosenChain() (core.Chain, error) {
	if ag.grant == nil {
		return core.Chain{}, errors.New("qos: agent has no grant")
	}
	return ag.Job.Chains[ag.grant.Chain], nil
}

// DAGAgent is the QoS agent for applications whose execution paths are
// precedence graphs (task_par programs): the DAG counterpart of Agent.
type DAGAgent struct {
	Job core.DAGJob
	// Configure, if set, runs once with the grant so the application can
	// set its control parameters before execution.
	Configure func(*Grant)

	grant *Grant
}

// DAGNegotiator is anything a DAG agent can negotiate with: the in-process
// arbitrator or a qosnet client.
type DAGNegotiator interface {
	NegotiateDAG(job core.DAGJob) (*Grant, error)
}

// NewDAGAgent returns an agent for a DAG task system.
func NewDAGAgent(job core.DAGJob) *DAGAgent { return &DAGAgent{Job: job} }

// NegotiateWith submits the DAG task system to the negotiator.
func (ag *DAGAgent) NegotiateWith(n DAGNegotiator) (*Grant, error) {
	if err := ag.Job.Validate(); err != nil {
		return nil, fmt.Errorf("qos: dag agent job invalid: %w", err)
	}
	g, err := n.NegotiateDAG(ag.Job)
	if err != nil {
		return nil, err
	}
	ag.grant = g
	if ag.Configure != nil {
		ag.Configure(g)
	}
	return g, nil
}

// Grant returns the grant from the last successful negotiation, or nil.
func (ag *DAGAgent) Grant() *Grant { return ag.grant }
