package qos

import (
	"milan/internal/resbroker"
)

// AttachBroker makes the dynamic arbitrator's machine size follow a
// resource broker's pool: every registration or deregistration triggers a
// renegotiation at the arbitrator's current time (the MILAN arbitrator
// "monitors system resources and triggers renegotiation on detecting a
// significant change in resource levels").
//
// threshold suppresses renegotiation for changes smaller than the given
// number of processors ("a significant change"); 0 renegotiates on every
// change.  The returned stop function detaches the subscription's effect
// (the broker offers no unsubscribe, so detach is by flag).
func AttachBroker(d *DynamicArbitrator, b *resbroker.Broker, threshold int) (stop func()) {
	stopped := false
	last := d.Procs()
	b.Subscribe(func(ev resbroker.Event) {
		if stopped {
			return
		}
		if ev.Kind != resbroker.EventRegistered && ev.Kind != resbroker.EventDeregistered {
			return // bindings of other computations do not change our pool
		}
		procs := b.TotalProcs()
		if procs < 1 {
			return // an empty pool cannot be renegotiated onto
		}
		if diff := procs - last; diff < threshold && diff > -threshold {
			return
		}
		last = procs
		// Aborted jobs are surfaced through d.OnAborted.
		_, _ = d.SetCapacity(procs)
	})
	return func() { stopped = true }
}
