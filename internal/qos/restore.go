package qos

import "milan/internal/core"

// ArbitratorState is the monolithic arbitrator's durable state: the
// observed clock plus the scheduler's committed state.  Decision history
// and observers are not state — a restored arbitrator starts with the
// history and callbacks it was constructed with.
type ArbitratorState struct {
	Now   float64
	Sched core.SchedulerState
}

// ExportState exports the arbitrator's committed state under its lock.
func (a *Arbitrator) ExportState() ArbitratorState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArbitratorState{Now: a.now, Sched: a.sched.ExportState()}
}

// RestoreState replaces the arbitrator's clock and scheduler state with an
// exported state, bit-exactly (see core.Scheduler.RestoreState).  The
// durable admission plane calls this once at open, before serving.
func (a *Arbitrator) RestoreState(st ArbitratorState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.sched.RestoreState(st.Sched); err != nil {
		return err
	}
	a.now = st.Now
	return nil
}
