package qos

import (
	"errors"
	"testing"

	"milan/internal/core"
)

// TestDynamicObserverSeesEveryDecision checks the DynamicArbitrator's
// Observer callback mirrors the admission decision stream, including
// rejections and retried waiting jobs.
func TestDynamicObserverSeesEveryDecision(t *testing.T) {
	d := newDyn(t, 4)
	var decisions []Decision
	d.Observer = func(dec Decision) { decisions = append(decisions, dec) }

	if _, err := d.Negotiate(core.Job{ID: 1, Chains: []core.Chain{
		{Quality: 1, Tasks: []core.Task{{Procs: 4, Duration: 10, Deadline: 100}}},
	}}); err != nil {
		t.Fatal(err)
	}
	// Impossible deadline: a rejected decision.
	if _, err := d.Negotiate(core.Job{ID: 2, Chains: []core.Chain{
		{Quality: 1, Tasks: []core.Task{{Procs: 4, Duration: 10, Deadline: 5}}},
	}}); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}

	if len(decisions) != 2 {
		t.Fatalf("decisions = %d, want 2", len(decisions))
	}
	if decisions[0].Rejected || decisions[0].Job.ID != 1 || decisions[0].Grant == nil {
		t.Fatalf("decision[0] = %+v", decisions[0])
	}
	if !decisions[1].Rejected || decisions[1].Job.ID != 2 {
		t.Fatalf("decision[1] = %+v", decisions[1])
	}
}

// TestDynamicObserverSeesRetriedWaiters checks queued rejections replayed
// after capacity growth also flow through the Observer.
func TestDynamicObserverSeesRetriedWaiters(t *testing.T) {
	d := newDyn(t, 2)
	var decisions []Decision
	d.Observer = func(dec Decision) { decisions = append(decisions, dec) }

	// Needs 8 processors: waits on a 2-processor machine.
	granted := 0
	if _, err := d.NegotiateOrWait(core.Job{ID: 1, Chains: []core.Chain{
		{Quality: 1, Tasks: []core.Task{{Procs: 8, Duration: 10, Deadline: 1e6}}},
	}}, func(*Grant) { granted++ }); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected (queued)", err)
	}
	if d.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1", d.Waiting())
	}
	if _, err := d.SetCapacity(8); err != nil {
		t.Fatal(err)
	}
	if granted != 1 {
		t.Fatalf("onGrant fired %d times, want 1", granted)
	}
	// One rejected decision, then one granted decision from the retry.
	if len(decisions) != 2 {
		t.Fatalf("decisions = %d, want 2: %+v", len(decisions), decisions)
	}
	if !decisions[0].Rejected || decisions[1].Rejected || decisions[1].Grant == nil {
		t.Fatalf("decision stream = %+v", decisions)
	}
}
