package qos

import (
	"fmt"
	"sync"

	"milan/internal/core"
)

// Shedder is the admission-fairness layer in front of a negotiator: it
// enforces per-tenant quotas on in-flight reserved capacity and, when the
// plane saturates, weighted-fair shedding across priority classes, so a
// flood of low-priority arrivals from one tenant cannot FIFO-starve
// everyone else out of the arbitrator's queue.
//
// The accounting identity is the utilization ledger's (tenant, class) key
// on core.Job (obs/ledger books under the same pair; the ledger imports
// qos, so the shedder keys off the job directly).  Class 0 is the most
// important; at saturation each class's cumulative admitted area is held
// near its configured weight by stride-style scheduling: an arrival is
// shed when its class's normalized service (served area over weight) has
// run FairnessBurst ahead of the most-starved active class.  Below the
// saturation threshold every class admits freely — fairness only prices
// capacity that is actually scarce.
//
// Guarantees, checkable from the decision stream:
//
//   - a tenant's in-flight reserved area never exceeds its quota (plus
//     at most the job that reached it);
//   - at saturation, cumulative admitted area per class tracks the
//     configured weights within FairnessBurst;
//   - sheds hit the most-over-served (lowest-weight) classes first;
//   - no under-quota tenant is denied by class fairness for longer than
//     StarvationWindow — such a request is forced through to the
//     arbitrator instead (Starved decisions).
type Shedder struct {
	mu    sync.Mutex
	inner Negotiator
	cfg   ShedConfig
	now   float64

	inflight   map[int]jobCharge  // jobID -> charge held until completion
	inflightA  float64            // total in-flight reserved area (kept incrementally so load is independent of map iteration order)
	tenantArea map[string]float64 // in-flight reserved area per tenant
	served     []float64          // cumulative admitted area per class
	lastOffer  []float64          // last arrival time per class
	lastOK     map[string]float64 // last admission (or first sighting) per tenant
	stats      ShedStats
}

type jobCharge struct {
	tenant string
	area   float64
}

// ShedKey is the accounting identity a shed decision is keyed by — the
// same (tenant, priority class) pair the utilization ledger books under.
type ShedKey struct {
	Tenant string
	Class  int
}

// ShedReason classifies why a request was (or would have been) shed.
type ShedReason string

// Shed reasons.
const (
	// ShedTenantQuota: the tenant's in-flight reserved area had reached
	// its quota.
	ShedTenantQuota ShedReason = "tenant-quota"
	// ShedClassFairness: the plane was saturated and the class had run
	// past its weighted fair share.
	ShedClassFairness ShedReason = "class-fairness"
)

// ErrShed is returned when the shedder refuses a job before the
// arbitrator sees it.  It wraps ErrRejected, so call sites that only
// distinguish admit from reject keep working; errors.Is(err, ErrShed)
// separates fairness sheds from capacity rejections.
var ErrShed = fmt.Errorf("%w (shed by admission fairness)", ErrRejected)

// ShedConfig configures a Shedder.
type ShedConfig struct {
	// Capacity is the plane's processor count (required): quotas and the
	// saturation threshold are fractions of Capacity*Horizon
	// processor-time.
	Capacity int
	// Horizon is the accounting window in clock units (default 100, the
	// default headroom horizon).
	Horizon float64
	// SaturationThreshold is the in-flight load fraction at which class
	// fairness engages (default 0.85).  Load is total in-flight reserved
	// area over Capacity*Horizon.
	SaturationThreshold float64
	// ClassWeights gives each priority class's fair share of admitted
	// capacity at saturation; class 0 is the most important.  Classes
	// beyond the slice reuse the last weight; empty weighs every class 1.
	ClassWeights []float64
	// FairnessBurst is how far a class's normalized service (admitted
	// area over weight) may run ahead of the most-starved active class
	// before its arrivals are shed (default Capacity*Horizon/8).
	FairnessBurst float64
	// TenantQuota caps a tenant's in-flight reserved area as a fraction
	// of Capacity*Horizon; tenants not listed get DefaultQuota.  Values
	// outside (0, 1) mean unlimited.
	TenantQuota map[string]float64
	// DefaultQuota is the quota fraction for unlisted tenants; values
	// outside (0, 1) mean unlimited (the default).
	DefaultQuota float64
	// StarvationWindow bounds how long class fairness may deny an
	// under-quota tenant before a request is forced through to the
	// arbitrator (default 4*Horizon).  Quota sheds are never forced.
	StarvationWindow float64
	// Bypass disables shedding while still classifying every decision —
	// the campaign harness's fault-injection knob: the fairness
	// invariants the shedder would have enforced are left to break.
	Bypass bool
	// Observer, if set, receives every decision synchronously.
	Observer func(ShedDecision)
}

// ShedDecision records one admission-fairness decision.
type ShedDecision struct {
	JobID int
	Key   ShedKey
	Now   float64
	// Shed reports whether the request was refused.  A non-empty Reason
	// with Shed false means the shed was bypassed (Bypass injection) or
	// forced through (Starved).
	Shed   bool
	Reason ShedReason
	// DeniedAge is how long the tenant had gone without an admission
	// when the decision was taken.
	DeniedAge float64
	// Load is the in-flight reserved area over Capacity*Horizon at
	// decision time.
	Load float64
	// Starved marks an admission forced through class fairness by the
	// starvation guard.
	Starved bool
}

// ShedStats aggregates the decision stream per class.
type ShedStats struct {
	Offered      []int64   // arrivals per class
	Admitted     []int64   // requests forwarded and granted, per class
	Shed         []int64   // requests refused by the shedder, per class
	AdmittedArea []float64 // granted reserved area per class
	QuotaShed    int64
	ClassShed    int64
	Starved      int64 // starvation-guard forced admissions
}

func (c ShedConfig) withDefaults() ShedConfig {
	if c.Horizon <= 0 {
		c.Horizon = 100
	}
	if c.SaturationThreshold <= 0 {
		c.SaturationThreshold = 0.85
	}
	if c.FairnessBurst <= 0 {
		c.FairnessBurst = float64(c.Capacity) * c.Horizon / 8
	}
	if c.StarvationWindow <= 0 {
		c.StarvationWindow = 4 * c.Horizon
	}
	return c
}

// NewShedder wraps inner with quota and weighted-fair admission control.
func NewShedder(inner Negotiator, cfg ShedConfig) (*Shedder, error) {
	if inner == nil {
		return nil, fmt.Errorf("qos: shedder needs an inner negotiator")
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("qos: shedder capacity = %d", cfg.Capacity)
	}
	for i, w := range cfg.ClassWeights {
		if w <= 0 {
			return nil, fmt.Errorf("qos: class %d weight = %v", i, w)
		}
	}
	return &Shedder{
		inner:      inner,
		cfg:        cfg.withDefaults(),
		inflight:   make(map[int]jobCharge),
		tenantArea: make(map[string]float64),
		lastOK:     make(map[string]float64),
	}, nil
}

// weight returns class c's fair-share weight.
func (s *Shedder) weight(c int) float64 {
	w := s.cfg.ClassWeights
	if len(w) == 0 {
		return 1
	}
	if c >= len(w) {
		return w[len(w)-1]
	}
	if c < 0 {
		c = 0
	}
	return w[c]
}

// capArea is the capacity window quotas and load are fractions of.
func (s *Shedder) capArea() float64 { return float64(s.cfg.Capacity) * s.cfg.Horizon }

// quota returns the tenant's in-flight area cap, ok=false when unlimited.
func (s *Shedder) quota(tenant string) (float64, bool) {
	q, ok := s.cfg.TenantQuota[tenant]
	if !ok {
		q = s.cfg.DefaultQuota
	}
	if q <= 0 || q >= 1 {
		return 0, false
	}
	return q * s.capArea(), true
}

// estArea is the cheapest execution path's reserved area — the most
// modest request the arbitrator could grant.
func estArea(job core.Job) float64 {
	best := 0.0
	for i, ch := range job.Chains {
		a := 0.0
		for _, t := range ch.Tasks {
			a += float64(t.Procs) * t.Duration
		}
		if i == 0 || a < best {
			best = a
		}
	}
	return best
}

func (s *Shedder) loadLocked() float64 { return s.inflightA / s.capArea() }

func (s *Shedder) growClass(c int) {
	for len(s.served) <= c {
		s.served = append(s.served, 0)
		s.lastOffer = append(s.lastOffer, 0)
	}
}

// classAheadLocked reports whether class c's normalized service has run
// more than FairnessBurst ahead of the most-starved class that is still
// actively arriving (stale classes don't hold the floor down forever).
func (s *Shedder) classAheadLocked(c int, now float64) bool {
	ns := s.served[c] / s.weight(c)
	min, seen := 0.0, false
	for i := range s.served {
		if now-s.lastOffer[i] > s.cfg.Horizon {
			continue
		}
		v := s.served[i] / s.weight(i)
		if !seen || v < min {
			min, seen = v, true
		}
	}
	if !seen {
		return false
	}
	return ns-min > s.cfg.FairnessBurst
}

// Observe advances the shedder's clock (the simulation clock, or
// wall-clock progress in a live deployment).
func (s *Shedder) Observe(now float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if now > s.now {
		s.now = now
	}
	s.mu.Unlock()
}

// JobCompleted releases the job's in-flight charge; call it when the
// granted reservation finishes.
func (s *Shedder) JobCompleted(jobID int, now float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if now > s.now {
		s.now = now
	}
	if c, ok := s.inflight[jobID]; ok {
		delete(s.inflight, jobID)
		if s.inflightA -= c.area; s.inflightA < 0 {
			s.inflightA = 0
		}
		if a := s.tenantArea[c.tenant] - c.area; a > 0 {
			s.tenantArea[c.tenant] = a
		} else {
			delete(s.tenantArea, c.tenant)
		}
	}
	s.mu.Unlock()
}

// Negotiate applies quota and fairness policy, then forwards surviving
// requests to the inner negotiator.
func (s *Shedder) Negotiate(job core.Job) (*Grant, error) {
	s.mu.Lock()
	if job.Release > s.now {
		s.now = job.Release
	}
	now := s.now
	key := ShedKey{Tenant: job.Tenant, Class: job.Class}
	class := job.Class
	if class < 0 {
		class = 0
	}
	s.growClass(class)
	s.lastOffer[class] = now
	s.stats.grow(class)
	s.stats.Offered[class]++
	if _, ok := s.lastOK[job.Tenant]; !ok {
		s.lastOK[job.Tenant] = now
	}

	d := ShedDecision{
		JobID:     job.ID,
		Key:       key,
		Now:       now,
		Load:      s.loadLocked(),
		DeniedAge: now - s.lastOK[job.Tenant],
	}
	overQuota := false
	if limit, ok := s.quota(job.Tenant); ok && s.tenantArea[job.Tenant]+estArea(job) > limit+core.Eps {
		d.Reason, overQuota = ShedTenantQuota, true
	} else if d.Load >= s.cfg.SaturationThreshold && s.classAheadLocked(class, now) {
		d.Reason = ShedClassFairness
	}
	d.Shed = d.Reason != ""
	if d.Shed && d.Reason == ShedClassFairness && !overQuota && d.DeniedAge > s.cfg.StarvationWindow {
		// The starvation bound: an under-quota tenant denied past the
		// window goes through to the arbitrator regardless of class.
		d.Shed, d.Starved = false, true
		s.stats.Starved++
	}
	if s.cfg.Bypass {
		d.Shed = false
	}
	if d.Shed {
		s.stats.Shed[class]++
		switch d.Reason {
		case ShedTenantQuota:
			s.stats.QuotaShed++
		case ShedClassFairness:
			s.stats.ClassShed++
		}
		s.mu.Unlock()
		s.observe(d)
		return nil, ErrShed
	}
	s.mu.Unlock()

	g, err := s.inner.Negotiate(job)

	s.mu.Lock()
	if err == nil {
		area := g.Placement.Area()
		s.inflight[job.ID] = jobCharge{tenant: job.Tenant, area: area}
		s.inflightA += area
		s.tenantArea[job.Tenant] += area
		s.growClass(class)
		s.served[class] += area
		s.stats.grow(class)
		s.stats.Admitted[class]++
		s.stats.AdmittedArea[class] += area
		s.lastOK[job.Tenant] = now
	}
	s.mu.Unlock()
	s.observe(d)
	return g, err
}

func (s *Shedder) observe(d ShedDecision) {
	if s.cfg.Observer != nil {
		s.cfg.Observer(d)
	}
}

// Stats returns a copy of the per-class counters.
func (s *Shedder) Stats() ShedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShedStats{
		Offered:      append([]int64(nil), s.stats.Offered...),
		Admitted:     append([]int64(nil), s.stats.Admitted...),
		Shed:         append([]int64(nil), s.stats.Shed...),
		AdmittedArea: append([]float64(nil), s.stats.AdmittedArea...),
		QuotaShed:    s.stats.QuotaShed,
		ClassShed:    s.stats.ClassShed,
		Starved:      s.stats.Starved,
	}
}

// InFlight returns the tenant's current in-flight reserved area.
func (s *Shedder) InFlight(tenant string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantArea[tenant]
}

func (st *ShedStats) grow(class int) {
	for len(st.Offered) <= class {
		st.Offered = append(st.Offered, 0)
		st.Admitted = append(st.Admitted, 0)
		st.Shed = append(st.Shed, 0)
		st.AdmittedArea = append(st.AdmittedArea, 0)
	}
}
