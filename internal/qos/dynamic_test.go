package qos

import (
	"errors"
	"testing"

	"milan/internal/core"
)

func newDyn(t *testing.T, procs int) *DynamicArbitrator {
	t.Helper()
	d, err := NewDynamicArbitrator(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func chainJob(id int, release float64, tasks ...core.Task) core.Job {
	return core.Job{ID: id, Release: release, Chains: []core.Chain{
		{Name: "only", Quality: 1, Tasks: tasks},
	}}
}

func rect(procs int, dur, deadline float64) core.Task {
	return core.Task{Procs: procs, Duration: dur, Deadline: deadline}
}

func TestDynamicRejectsBadConfig(t *testing.T) {
	if _, err := NewDynamicArbitrator(0, nil); err == nil {
		t.Fatal("0-proc arbitrator created")
	}
	d := newDyn(t, 4)
	if _, err := d.SetCapacity(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestDynamicBasicAdmission(t *testing.T) {
	d := newDyn(t, 4)
	g, err := d.Negotiate(chainJob(1, 0, rect(4, 10, 20)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Finish() != 10 {
		t.Fatalf("finish = %v", g.Finish())
	}
	if _, err := d.Negotiate(chainJob(1, 0, rect(1, 1, 100))); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
	if _, err := d.Negotiate(chainJob(2, 0, rect(4, 5, 12))); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if got := d.Active(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("active = %v", got)
	}
}

func TestDynamicObserveRetiresFinishedJobs(t *testing.T) {
	d := newDyn(t, 4)
	d.Negotiate(chainJob(1, 0, rect(2, 10, 100)))
	d.Negotiate(chainJob(2, 0, rect(2, 50, 100)))
	d.Observe(20)
	if got := d.Active(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("active = %v, want [2]", got)
	}
	// Stale observations are ignored.
	d.Observe(5)
	if len(d.Active()) != 1 {
		t.Fatal("stale observe changed state")
	}
}

func TestGrowthMovesFutureTasksEarlier(t *testing.T) {
	d := newDyn(t, 4)
	// Job 1 fills the machine [0, 10); job 2's task must wait until 10.
	d.Negotiate(chainJob(1, 0, rect(4, 10, 100)))
	g2, err := d.Negotiate(chainJob(2, 0, rect(4, 10, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Placement.Tasks[0].Start != 10 {
		t.Fatalf("job 2 starts at %v, want 10", g2.Placement.Tasks[0].Start)
	}
	var renegotiated []int
	d.OnRenegotiated = func(id int, g *Grant) { renegotiated = append(renegotiated, id) }

	// The machine doubles at t=2: job 2's future task can start immediately.
	d.Observe(2)
	aborted, err := d.SetCapacity(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 0 {
		t.Fatalf("aborted = %v", aborted)
	}
	if len(renegotiated) != 1 || renegotiated[0] != 2 {
		t.Fatalf("renegotiated = %v, want [2]", renegotiated)
	}
	if got := g2.Placement.Tasks[0].Start; got != 2 {
		t.Fatalf("job 2 now starts at %v, want 2", got)
	}
	st := d.Stats()
	if st.Renegotiated != 1 || st.CapacityEvents != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShrinkKeepsRunningTaskAndMovesRest(t *testing.T) {
	d := newDyn(t, 8)
	// Job 1: 4 procs [0,10) then 4 procs [10,20). Job 2: 4 procs [0,10).
	g1, err := d.Negotiate(chainJob(1, 0, rect(4, 10, 50), rect(4, 10, 60)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Negotiate(chainJob(2, 0, rect(4, 10, 50))); err != nil {
		t.Fatal(err)
	}
	// At t=5 the machine shrinks to 4: only one of the two running tasks
	// can keep its processors.  Job 1 was admitted first, so it survives;
	// job 2 aborts.
	d.Observe(5)
	aborted, err := d.SetCapacity(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 1 || aborted[0] != 2 {
		t.Fatalf("aborted = %v, want [2]", aborted)
	}
	// Job 1's second task still fits after its first.
	if g1.Placement.Tasks[1].Start < 10 {
		t.Fatalf("job 1 task 2 start = %v", g1.Placement.Tasks[1].Start)
	}
	st := d.Stats()
	if st.Aborted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShrinkAbortsJobsWhoseDeadlinesBreak(t *testing.T) {
	d := newDyn(t, 8)
	// Two jobs, each 4 procs x 10, deadlines tight at 10.
	d.Negotiate(chainJob(1, 0, rect(4, 10, 10)))
	d.Negotiate(chainJob(2, 0, rect(4, 10, 10)))
	// Before anything runs, the machine halves: both jobs' tasks are in
	// the future, only one fits by its deadline.
	aborted, err := d.SetCapacity(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 1 || aborted[0] != 2 {
		t.Fatalf("aborted = %v, want [2] (admission order preserved)", aborted)
	}
	var gone []int
	d.OnAborted = func(id int) { gone = append(gone, id) }
	if _, err := d.SetCapacity(2); err != nil {
		t.Fatal(err)
	}
	if len(gone) != 1 || gone[0] != 1 {
		t.Fatalf("gone = %v, want [1]", gone)
	}
}

func TestWaitingJobRescuedOnGrowth(t *testing.T) {
	d := newDyn(t, 4)
	d.Negotiate(chainJob(1, 0, rect(4, 30, 30)))
	var rescuedGrant *Grant
	_, err := d.NegotiateOrWait(chainJob(2, 0, rect(4, 10, 25)), func(g *Grant) { rescuedGrant = g })
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if d.Waiting() != 1 {
		t.Fatalf("waiting = %d", d.Waiting())
	}
	// Growth rescues the waiter.
	if _, err := d.SetCapacity(8); err != nil {
		t.Fatal(err)
	}
	if rescuedGrant == nil {
		t.Fatal("waiter not rescued")
	}
	if rescuedGrant.Finish() > 25 {
		t.Fatalf("rescued grant misses deadline: finish %v", rescuedGrant.Finish())
	}
	if d.Waiting() != 0 {
		t.Fatalf("waiting = %d after rescue", d.Waiting())
	}
	if st := d.Stats(); st.Rescued != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWaitingJobExpiresWithTime(t *testing.T) {
	d := newDyn(t, 4)
	d.Negotiate(chainJob(1, 0, rect(4, 30, 30)))
	d.NegotiateOrWait(chainJob(2, 0, rect(4, 10, 25)), nil)
	// By t=26 the waiter's deadline has passed; it is dropped, and growth
	// does not resurrect it.
	d.Observe(26)
	if d.Waiting() != 0 {
		t.Fatalf("waiting = %d, want 0 (expired)", d.Waiting())
	}
	if _, err := d.SetCapacity(16); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Rescued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShrinkNeverOvercommits(t *testing.T) {
	d := newDyn(t, 8)
	for i := 0; i < 6; i++ {
		d.Negotiate(chainJob(i, 0,
			rect(1+i%3, 10, 200),
			rect(2, 10, 400)))
	}
	d.Observe(5)
	if _, err := d.SetCapacity(5); err != nil {
		t.Fatal(err)
	}
	// Validate the surviving schedule by binding it to concrete processors
	// on the shrunken machine: any overcommit would make this fail.
	var placements []*core.Placement
	for _, id := range d.Active() {
		f := d.active[id]
		// Only the portion from t=5 on is actually reserved.
		pl := &core.Placement{JobID: id}
		for _, tp := range f.grant.Placement.Tasks {
			if tp.Finish <= 5 {
				continue
			}
			clipped := tp
			if clipped.Start < 5 {
				clipped.Start = 5
			}
			pl.Tasks = append(pl.Tasks, clipped)
		}
		placements = append(placements, pl)
	}
	if _, err := core.AssignProcessors(5, placements); err != nil {
		t.Fatalf("renegotiated schedule overcommits: %v", err)
	}
}

func TestGrowthUtilizationAccounting(t *testing.T) {
	d := newDyn(t, 4)
	d.Negotiate(chainJob(1, 0, rect(4, 10, 100)))
	d.Observe(5)
	if _, err := d.SetCapacity(8); err != nil {
		t.Fatal(err)
	}
	// After renegotiation the schedule is rebuilt from t=5: the running
	// task holds 4 of 8 processors over [5, 10).
	if got := d.Utilization(5, 10); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

// TestMalleableReplayRechoosesProcessorCounts: a malleable job's future
// task is renegotiated onto the new capacity with a different processor
// count (renegotiation composes with malleability).
func TestMalleableReplayRechoosesProcessorCounts(t *testing.T) {
	d := newDyn(t, 4)
	g, err := d.Negotiate(core.Job{ID: 1, Chains: []core.Chain{{
		Name: "m", Quality: 1, Tasks: []core.Task{
			{Name: "a", Procs: 4, Duration: 10, Deadline: 100},
			{Name: "b", Malleable: true, Work: 32, MaxProcs: 16, Deadline: 200},
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// On 4 procs the malleable task got 4 (duration 8).
	if g.Placement.Tasks[1].Procs != 4 {
		t.Fatalf("initial malleable procs = %d", g.Placement.Tasks[1].Procs)
	}
	// Mid-first-task the machine quadruples: the future malleable task is
	// re-placed at its full degree of concurrency.
	d.Observe(5)
	if _, err := d.SetCapacity(16); err != nil {
		t.Fatal(err)
	}
	tp := g.Placement.Tasks[1]
	if tp.Procs != 16 {
		t.Fatalf("renegotiated malleable procs = %d, want 16", tp.Procs)
	}
	if tp.Finish-tp.Start != 2 {
		t.Fatalf("renegotiated duration = %v, want 32/16", tp.Finish-tp.Start)
	}
}
