package qos

import (
	"errors"
	"sync"
	"testing"

	"milan/internal/core"
	"milan/internal/workload"
)

func newArb(t *testing.T, procs int, keepHist bool) *Arbitrator {
	t.Helper()
	arb, err := NewArbitrator(ArbitratorConfig{Procs: procs, KeepHistory: keepHist})
	if err != nil {
		t.Fatal(err)
	}
	return arb
}

func simpleJob(id int, release float64, procs int, dur, deadline float64) core.Job {
	return core.Job{ID: id, Release: release, Chains: []core.Chain{
		{Name: "only", Quality: 1, Tasks: []core.Task{
			{Name: "t", Procs: procs, Duration: dur, Deadline: deadline},
		}},
	}}
}

func TestNewArbitratorRejectsBadConfig(t *testing.T) {
	if _, err := NewArbitrator(ArbitratorConfig{Procs: 0}); err == nil {
		t.Fatal("0-processor arbitrator created")
	}
}

func TestNegotiateGrantAndReject(t *testing.T) {
	arb := newArb(t, 4, true)
	g, err := arb.Negotiate(simpleJob(1, 0, 4, 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if g.JobID != 1 || g.Chain != 0 || g.Quality != 1 {
		t.Fatalf("grant = %+v", g)
	}
	if got := g.Finish(); got != 10 {
		t.Fatalf("Finish = %v, want 10", got)
	}
	// Machine is busy [0,10); an urgent full-width job must be rejected.
	_, err = arb.Negotiate(simpleJob(2, 0, 4, 5, 12))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	st := arb.Stats()
	if st.Admitted != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	hist := arb.History()
	if len(hist) != 2 || hist[0].Rejected || !hist[1].Rejected {
		t.Fatalf("history = %+v", hist)
	}
}

func TestNegotiatePicksBestPathOfTunableJob(t *testing.T) {
	arb := newArb(t, 8, false)
	p := workload.FigureJob{X: 8, T: 10, Alpha: 0.5, Laxity: 0.5}
	job := p.Job(1, 0, workload.Tunable)
	g, err := arb.Negotiate(job)
	if err != nil {
		t.Fatal(err)
	}
	// Empty machine: shape1 (8 procs x 10 then 4 x 20) finishes at 30;
	// shape2 (4 x 20 then 8 x 10) also finishes at 30.  Tie broken by
	// utilization (equal) then resource prefix: shape2's first task uses
	// 4x20=80 = shape1's 8x10=80 — full tie, so chain 0.
	if g.Chain != 0 {
		t.Fatalf("chain = %d, want 0 on full tie", g.Chain)
	}
}

func TestObserverCallback(t *testing.T) {
	var got []Decision
	arb, err := NewArbitrator(ArbitratorConfig{
		Procs:    4,
		Observer: func(d Decision) { got = append(got, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	arb.Negotiate(simpleJob(1, 0, 4, 10, 20))
	arb.Negotiate(simpleJob(2, 0, 4, 10, 15)) // rejected
	if len(got) != 2 {
		t.Fatalf("observer saw %d decisions, want 2", len(got))
	}
	if got[0].Rejected || got[0].Grant == nil {
		t.Errorf("first decision = %+v", got[0])
	}
	if !got[1].Rejected || got[1].Grant != nil {
		t.Errorf("second decision = %+v", got[1])
	}
}

func TestObserveAdvancesAndCompacts(t *testing.T) {
	arb := newArb(t, 4, false)
	arb.Negotiate(simpleJob(1, 0, 2, 10, 100))
	arb.Observe(50)
	if got := arb.Now(); got != 50 {
		t.Fatalf("Now = %v, want 50", got)
	}
	arb.Observe(20) // going backwards is ignored
	if got := arb.Now(); got != 50 {
		t.Fatalf("Now after stale observe = %v, want 50", got)
	}
	// Utilization accounting survives compaction.
	if got := arb.Utilization(0, 10); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if got := arb.BusyUpTo(10); got != 20 {
		t.Fatalf("BusyUpTo = %v, want 20", got)
	}
}

func TestConcurrentNegotiationsAreSafeAndConsistent(t *testing.T) {
	arb := newArb(t, 16, false)
	var wg sync.WaitGroup
	const n = 200
	results := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = arb.Negotiate(simpleJob(i, 0, 4, 10, 1e6))
		}(i)
	}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("job %d: %v (deadline 1e6 must always be admissible)", i, err)
		}
	}
	st := arb.Stats()
	if st.Admitted != n {
		t.Fatalf("admitted = %d, want %d", st.Admitted, n)
	}
}

func TestAgentNegotiationAndConfigure(t *testing.T) {
	arb := newArb(t, 8, false)
	job := core.Job{ID: 7, Chains: []core.Chain{
		{Name: "fine", Quality: 1.0, Tasks: []core.Task{{Name: "a", Procs: 8, Duration: 5, Deadline: 100}}},
		{Name: "coarse", Quality: 0.8, Tasks: []core.Task{{Name: "b", Procs: 2, Duration: 20, Deadline: 100}}},
	}}
	ag := NewAgent(job)
	var configured *Grant
	ag.Configure = func(g *Grant) { configured = g }

	if _, err := ag.ChosenChain(); err == nil {
		t.Fatal("ChosenChain before negotiation succeeded")
	}
	g, err := ag.NegotiateWith(arb)
	if err != nil {
		t.Fatal(err)
	}
	if configured != g {
		t.Fatal("Configure callback not invoked with the grant")
	}
	if ag.Grant() != g {
		t.Fatal("Grant() not retained")
	}
	chain, err := ag.ChosenChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain.Name != "fine" { // earliest finish: 8x5 beats 2x20
		t.Fatalf("chosen chain = %s, want fine", chain.Name)
	}
	if g.Quality != 1.0 {
		t.Fatalf("quality = %v, want 1.0", g.Quality)
	}
}

func TestAgentRejectsInvalidJob(t *testing.T) {
	arb := newArb(t, 4, false)
	ag := NewAgent(core.Job{ID: 1}) // no chains
	if _, err := ag.NegotiateWith(arb); err == nil {
		t.Fatal("invalid job negotiated")
	}
}

func TestAgentPropagatesRejection(t *testing.T) {
	arb := newArb(t, 2, false)
	ag := NewAgent(simpleJob(1, 0, 4, 1, 100)) // wants more procs than exist
	_, err := ag.NegotiateWith(arb)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if ag.Grant() != nil {
		t.Fatal("grant retained after rejection")
	}
}

func TestDAGAgentNegotiation(t *testing.T) {
	arb := newArb(t, 8, false)
	job := core.DAGJob{ID: 1, Alts: []core.DAG{{
		Name:    "diamond",
		Quality: 0.9,
		Tasks: []core.DAGTask{
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: 100}},
			{Task: core.Task{Procs: 4, Duration: 10, Deadline: 100}, Preds: []int{0}},
			{Task: core.Task{Procs: 4, Duration: 10, Deadline: 100}, Preds: []int{0}},
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: 100}, Preds: []int{1, 2}},
		},
	}}}
	ag := NewDAGAgent(job)
	var configured *Grant
	ag.Configure = func(g *Grant) { configured = g }
	g, err := ag.NegotiateWith(arb)
	if err != nil {
		t.Fatal(err)
	}
	if configured != g || ag.Grant() != g {
		t.Fatal("grant not retained/configured")
	}
	if g.Quality != 0.9 {
		t.Fatalf("quality = %v", g.Quality)
	}
	if g.Placement.Tasks[1].Start != g.Placement.Tasks[2].Start {
		t.Fatal("branches not concurrent")
	}
	// Invalid job rejected before hitting the wire.
	if _, err := NewDAGAgent(core.DAGJob{ID: 2}).NegotiateWith(arb); err == nil {
		t.Fatal("invalid DAG job negotiated")
	}
	// Admission rejection propagates.
	tight := job
	tight.ID = 3
	tight.Alts = append([]core.DAG(nil), job.Alts...)
	tight.Alts[0].Tasks = append([]core.DAGTask(nil), job.Alts[0].Tasks...)
	for i := range tight.Alts[0].Tasks {
		tight.Alts[0].Tasks[i].Deadline = 12
	}
	if _, err := NewDAGAgent(tight).NegotiateWith(arb); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}
