package qos

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"testing"

	"milan/internal/workload"
)

// shedSim drives a deterministic synthetic overload through a Shedder in
// front of a real (oversized) arbitrator: arrivals every `gap` time
// units, classes round-robin, tenants alternating within each class, and
// completions landing exactly at each granted reservation's finish.  The
// inner arbitrator is big enough to admit everything the shedder
// forwards, so the admitted stream is shaped by the shedder alone.
type shedSim struct {
	t     *testing.T
	sh    *Shedder
	job   workload.FigureJob
	gap   float64
	done  finishHeap
	peak  map[string]float64 // observed in-flight peak per tenant
	alive map[string]float64
}

type finishEvent struct {
	at     float64
	id     int
	tenant string
	area   float64
}

type finishHeap []finishEvent

func (h finishHeap) Len() int            { return len(h) }
func (h finishHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h finishHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x interface{}) { *h = append(*h, x.(finishEvent)) }
func (h *finishHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newShedSim(t *testing.T, cfg ShedConfig, gap float64) *shedSim {
	t.Helper()
	inner, err := NewArbitrator(ArbitratorConfig{Procs: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShedder(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &shedSim{
		t:     t,
		sh:    sh,
		job:   workload.FigureJob{X: 4, T: 10, Alpha: 0.5, Laxity: 0.5},
		gap:   gap,
		peak:  make(map[string]float64),
		alive: make(map[string]float64),
	}
}

// offer releases one arrival at now for (tenant, class) and retires every
// reservation that finished by then, mirroring the campaign loop's
// completion events.
func (s *shedSim) offer(id int, now float64, tenant string, class int) (admitted bool) {
	for s.done.Len() > 0 && s.done[0].at <= now {
		ev := heap.Pop(&s.done).(finishEvent)
		s.sh.JobCompleted(ev.id, ev.at)
		s.alive[ev.tenant] -= ev.area
	}
	s.sh.Observe(now)
	job := s.job.Job(id, now, workload.Tunable)
	job.Tenant, job.Class = tenant, class
	g, err := s.sh.Negotiate(job)
	if err != nil {
		if !errors.Is(err, ErrRejected) {
			s.t.Fatalf("job %d: %v", id, err)
		}
		return false
	}
	area := g.Placement.Area()
	s.alive[tenant] += area
	if s.alive[tenant] > s.peak[tenant] {
		s.peak[tenant] = s.alive[tenant]
	}
	heap.Push(&s.done, finishEvent{at: g.Finish(), id: id, tenant: tenant, area: area})
	return true
}

// Under sustained synthetic overload, the admitted area share per class
// must converge to the configured weights, sheds must hit the lowest
// (highest-index) classes hardest, and no decision may starve a tenant
// past the window.
func TestShedderSharesConvergeToWeights(t *testing.T) {
	weights := []float64{3, 2, 1}
	var decisions []ShedDecision
	cfg := ShedConfig{
		Capacity:            32,
		Horizon:             100,
		SaturationThreshold: 0.3,
		ClassWeights:        weights,
		FairnessBurst:       400,
		StarvationWindow:    300,
		Observer:            func(d ShedDecision) { decisions = append(decisions, d) },
	}
	// Job area 80, lifetime ~30; one arrival every 0.5 units is ~5x the
	// shedder's configured capacity window — saturated throughout.
	sim := newShedSim(t, cfg, 0.5)
	const n = 6000
	tenants := []string{"alba", "brig", "cora", "dane", "elia", "fern"}
	for i := 0; i < n; i++ {
		now := float64(i) * sim.gap
		class := i % 3
		tenant := tenants[(class+2*(i/3))%len(tenants)]
		sim.offer(i, now, tenant, class)
	}

	st := sim.sh.Stats()
	if len(st.AdmittedArea) < 3 {
		t.Fatalf("stats cover %d classes, want 3", len(st.AdmittedArea))
	}
	total := 0.0
	for _, a := range st.AdmittedArea {
		total += a
	}
	if total == 0 {
		t.Fatal("nothing admitted")
	}
	sumW := 0.0
	for _, w := range weights {
		sumW += w
	}
	for c, w := range weights {
		share := st.AdmittedArea[c] / total
		want := w / sumW
		if math.Abs(share-want) > 0.06 {
			t.Errorf("class %d admitted share %.3f, want %.3f +- 0.06 (stats %+v)", c, share, want, st)
		}
	}

	// Shed-lowest-first: the shed fraction must not decrease with class
	// index.
	prev := -1.0
	for c := range weights {
		frac := float64(st.Shed[c]) / float64(st.Offered[c])
		if frac < prev-0.02 {
			t.Errorf("class %d shed fraction %.3f below class %d's %.3f — lowest class not shed first",
				c, frac, c-1, prev)
		}
		prev = frac
	}
	if st.ClassShed == 0 {
		t.Fatal("overload produced no class-fairness sheds; the test exercised nothing")
	}

	// Starvation bound: class fairness never denies a tenant past the
	// window (quota sheds are exempt by contract, but none occur here).
	for _, d := range decisions {
		if d.Shed && d.Reason == ShedClassFairness && d.DeniedAge > cfg.StarvationWindow+1e-9 {
			t.Fatalf("tenant %s starved %.1f units (window %.1f): %+v",
				d.Key.Tenant, d.DeniedAge, cfg.StarvationWindow, d)
		}
	}
}

// A tenant's in-flight reserved area must never exceed its quota by more
// than the single job that reached it, and other tenants must keep
// admitting while the hog is clamped.
func TestShedderEnforcesTenantQuota(t *testing.T) {
	cfg := ShedConfig{
		Capacity:            32,
		Horizon:             100,
		SaturationThreshold: 0.99, // keep class fairness out of the way
		TenantQuota:         map[string]float64{"hog": 0.15},
	}
	sim := newShedSim(t, cfg, 0.5)
	hogAdmits, otherAdmits := 0, 0
	for i := 0; i < 3000; i++ {
		now := float64(i) * sim.gap
		tenant := "calm"
		if i%2 == 0 {
			tenant = "hog"
		}
		if sim.offer(i, now, tenant, 0) {
			if tenant == "hog" {
				hogAdmits++
			} else {
				otherAdmits++
			}
		}
	}
	limit := 0.15*float64(cfg.Capacity)*100 + sim.job.Area()
	if sim.peak["hog"] > limit+1e-9 {
		t.Fatalf("hog in-flight peak %.1f exceeds quota bound %.1f", sim.peak["hog"], limit)
	}
	if st := sim.sh.Stats(); st.QuotaShed == 0 {
		t.Fatal("quota never shed anything; the test exercised nothing")
	}
	if hogAdmits == 0 || otherAdmits == 0 {
		t.Fatalf("admissions hog=%d other=%d — quota must clamp, not blackhole", hogAdmits, otherAdmits)
	}
	if sim.peak["calm"] <= sim.peak["hog"] {
		t.Fatalf("unquota'd tenant peaked at %.1f, below the clamped hog's %.1f",
			sim.peak["calm"], sim.peak["hog"])
	}
}

// Bypass must stop all shedding (the campaign's fault injection) while
// still classifying decisions, and ErrShed must read as a rejection to
// existing call sites.
func TestShedderBypassAndErrShed(t *testing.T) {
	if !errors.Is(ErrShed, ErrRejected) {
		t.Fatal("ErrShed must wrap ErrRejected")
	}
	var wouldShed int
	cfg := ShedConfig{
		Capacity:            32,
		SaturationThreshold: 0.3,
		ClassWeights:        []float64{3, 2, 1},
		FairnessBurst:       400,
		Bypass:              true,
		Observer: func(d ShedDecision) {
			if d.Reason != "" && !d.Shed {
				wouldShed++
			}
		},
	}
	sim := newShedSim(t, cfg, 0.5)
	for i := 0; i < 3000; i++ {
		tenant := fmt.Sprintf("t%d", i%4)
		if !sim.offer(i, float64(i)*sim.gap, tenant, i%3) {
			t.Fatalf("bypassed shedder refused job %d", i)
		}
	}
	if st := sim.sh.Stats(); st.QuotaShed+st.ClassShed != 0 {
		t.Fatalf("bypass still shed: %+v", st)
	}
	if wouldShed == 0 {
		t.Fatal("bypass classified no would-be sheds; injection would be invisible")
	}
}
