package qos

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"milan/internal/core"
)

// DynamicArbitrator extends the arbitrator with the renegotiation behavior
// Section 3.1 describes but the paper's evaluation holds fixed: "the QoS
// arbitrator also monitors system resources, and triggers renegotiation on
// detecting a significant change in resource levels (e.g., on a fault, or
// when new resources become available)".
//
// It tracks every in-flight grant.  When capacity changes it rebuilds the
// schedule at the current time: tasks already running keep their slots
// verbatim (non-preemptive) or their jobs abort; future tasks of admitted
// jobs are re-placed, possibly moving; jobs whose remaining tasks no
// longer meet their deadlines abort.  Jobs rejected at admission may opt
// to wait; capacity growth retries them while their deadlines still allow.
type DynamicArbitrator struct {
	mu     sync.Mutex
	procs  int
	now    float64
	opts   *core.Options
	sched  *core.Scheduler
	active map[int]*flight
	order  []int // admission order of active jobs (renegotiation priority)
	wait   []waiting
	stats  DynamicStats

	// OnRenegotiated, if set, is called (outside internal locks held by
	// callers, inside the arbitrator's own lock) for every job whose
	// placement moved during a capacity change.
	OnRenegotiated func(jobID int, g *Grant)
	// OnAborted is called for every job evicted by a capacity change.
	OnAborted func(jobID int)
	// Observer, if set, is called synchronously with every admission
	// decision (the dynamic counterpart of ArbitratorConfig.Observer);
	// retried waiting jobs produce a fresh decision on success.
	Observer func(Decision)
}

// flight is one admitted, unfinished job.
type flight struct {
	job   core.Job
	grant *Grant
}

// waiting is a rejected job that asked to be retried on capacity growth.
type waiting struct {
	job   core.Job
	agent func(*Grant) // completion callback, may be nil
}

// DynamicStats counts renegotiation events.
type DynamicStats struct {
	Admitted       int
	Rejected       int // rejection events, including failed retries of waiting jobs
	CapacityEvents int
	Renegotiated   int // placements moved by a capacity change
	Aborted        int // jobs evicted by a capacity change
	Rescued        int // waiting jobs admitted after capacity growth
}

// NewDynamicArbitrator returns a renegotiating arbitrator.
func NewDynamicArbitrator(procs int, opts *core.Options) (*DynamicArbitrator, error) {
	if procs < 1 {
		return nil, fmt.Errorf("qos: dynamic arbitrator needs >= 1 processor, got %d", procs)
	}
	return &DynamicArbitrator{
		procs:  procs,
		opts:   opts,
		sched:  core.NewScheduler(procs, 0, opts),
		active: make(map[int]*flight),
	}, nil
}

// Procs returns the current machine size.
func (d *DynamicArbitrator) Procs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.procs
}

// Stats returns a copy of the renegotiation counters.
func (d *DynamicArbitrator) Stats() DynamicStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Negotiate admits the job or returns ErrRejected (implements Negotiator).
func (d *DynamicArbitrator) Negotiate(job core.Job) (*Grant, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.negotiateLocked(job)
}

func (d *DynamicArbitrator) negotiateLocked(job core.Job) (*Grant, error) {
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("qos: dynamic negotiate: %w", err)
	}
	if _, dup := d.active[job.ID]; dup {
		return nil, fmt.Errorf("qos: job %d already active", job.ID)
	}
	pl, err := d.sched.Admit(job)
	if err != nil {
		if errors.Is(err, core.ErrRejected) {
			d.stats.Rejected++
			if d.Observer != nil {
				d.Observer(Decision{Job: job, Rejected: true, Now: d.now})
			}
			return nil, ErrRejected
		}
		return nil, err
	}
	g := &Grant{JobID: job.ID, Chain: pl.Chain, Quality: job.Chains[pl.Chain].Quality, Placement: *pl, Trace: job.Trace}
	d.active[job.ID] = &flight{job: job, grant: g}
	d.order = append(d.order, job.ID)
	d.stats.Admitted++
	if d.Observer != nil {
		d.Observer(Decision{Job: job, Grant: g, Now: d.now})
	}
	return g, nil
}

// NegotiateOrWait admits the job, or enqueues it for retry on the next
// capacity growth.  The callback (if non-nil) runs when a later retry
// succeeds.
func (d *DynamicArbitrator) NegotiateOrWait(job core.Job, onGrant func(*Grant)) (*Grant, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	g, err := d.negotiateLocked(job)
	if errors.Is(err, ErrRejected) {
		d.wait = append(d.wait, waiting{job: job, agent: onGrant})
	}
	return g, err
}

// Observe advances time: grants whose last task finished are retired and
// the schedule history is compacted.
func (d *DynamicArbitrator) Observe(now float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if now <= d.now {
		return
	}
	d.now = now
	d.sched.Observe(now)
	for id, f := range d.active {
		if f.grant.Finish() <= now {
			delete(d.active, id)
		}
	}
	d.compactOrder()
	// Expired waiters (their first deadline can no longer be met even by
	// an instant start) are dropped.
	kept := d.wait[:0]
	for _, w := range d.wait {
		if earliestDeadline(w.job) > now {
			kept = append(kept, w)
		}
	}
	d.wait = kept
}

// Active returns the IDs of in-flight jobs, in admission order.
func (d *DynamicArbitrator) Active() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.active))
	for _, id := range d.order {
		if _, ok := d.active[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Waiting returns the number of queued rejected jobs.
func (d *DynamicArbitrator) Waiting() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.wait)
}

// Utilization reports reserved capacity over [origin, horizon] against the
// *current* machine size.
func (d *DynamicArbitrator) Utilization(origin, horizon float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sched.Utilization(origin, horizon)
}

// SetCapacity renegotiates the whole schedule for a new machine size at
// the current time.  In-flight tasks keep their reservations verbatim
// where possible; future tasks are re-placed in admission order; jobs that
// no longer fit abort.  On growth, waiting jobs are retried.  It returns
// the IDs of aborted jobs.
func (d *DynamicArbitrator) SetCapacity(procs int) ([]int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if procs < 1 {
		return nil, fmt.Errorf("qos: capacity %d must be >= 1", procs)
	}
	d.stats.CapacityEvents++
	grew := procs > d.procs
	d.procs = procs
	fresh := core.NewScheduler(procs, d.now, d.opts)

	var aborted []int
	for _, id := range d.orderedActive() {
		f := d.active[id]
		ok, moved := d.replay(fresh, f)
		if !ok {
			aborted = append(aborted, id)
			delete(d.active, id)
			d.stats.Aborted++
			if d.OnAborted != nil {
				d.OnAborted(id)
			}
			continue
		}
		if moved {
			d.stats.Renegotiated++
			if d.OnRenegotiated != nil {
				d.OnRenegotiated(id, f.grant)
			}
		}
	}
	d.sched = fresh
	d.compactOrder()

	if grew {
		d.retryWaitingLocked()
	}
	sort.Ints(aborted)
	return aborted, nil
}

// replay re-admits one in-flight job onto the fresh scheduler.  It returns
// (survived, placementMoved).
func (d *DynamicArbitrator) replay(fresh *core.Scheduler, f *flight) (bool, bool) {
	chain := f.job.Chains[f.grant.Chain]
	old := f.grant.Placement
	moved := false
	newTasks := make([]core.TaskPlacement, 0, len(old.Tasks))
	prevFinish := d.now

	for i, tp := range old.Tasks {
		switch {
		case tp.Finish <= d.now:
			// Already completed: keep for the record, no reservation.
			newTasks = append(newTasks, tp)
			prevFinish = tp.Finish
		case tp.Start < d.now:
			// Running: non-preemptive, so it keeps its processors for its
			// remaining span or the job dies.
			if err := fresh.ReserveSlot(tp.Procs, d.now, tp.Finish); err != nil {
				return false, false
			}
			newTasks = append(newTasks, tp)
			prevFinish = tp.Finish
		default:
			// Future: re-place the remaining suffix of the chain.
			suffix := core.Chain{Name: chain.Name, Quality: chain.Quality, Tasks: chain.Tasks[i:]}
			placed, ok := fresh.PlaceChain(suffix, maxFloat(prevFinish, d.now))
			if !ok {
				return false, false
			}
			for k, p := range placed {
				p.Task = i + k
				if !almostEq(p.Start, old.Tasks[i+k].Start) {
					moved = true
				}
				newTasks = append(newTasks, p)
			}
			pl := &core.Placement{JobID: f.job.ID, Chain: f.grant.Chain, Tasks: placed}
			if err := fresh.ReservePlacement(pl); err != nil {
				return false, false
			}
			f.grant.Placement = core.Placement{JobID: f.job.ID, Chain: f.grant.Chain, Tasks: newTasks}
			return true, moved
		}
	}
	// No future tasks: everything was running or done.
	f.grant.Placement = core.Placement{JobID: f.job.ID, Chain: f.grant.Chain, Tasks: newTasks}
	return true, moved
}

// retryWaitingLocked retries queued rejections after capacity growth.
func (d *DynamicArbitrator) retryWaitingLocked() {
	remaining := d.wait[:0]
	for _, w := range d.wait {
		g, err := d.negotiateLocked(w.job)
		if err != nil {
			remaining = append(remaining, w)
			continue
		}
		// negotiateLocked counted this as a fresh admission and rejection
		// bookkeeping already happened at the original attempt.
		d.stats.Rescued++
		if w.agent != nil {
			w.agent(g)
		}
	}
	d.wait = remaining
}

// orderedActive returns active job IDs in admission order.
func (d *DynamicArbitrator) orderedActive() []int {
	out := make([]int, 0, len(d.active))
	for _, id := range d.order {
		if _, ok := d.active[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

func (d *DynamicArbitrator) compactOrder() {
	kept := d.order[:0]
	for _, id := range d.order {
		if _, ok := d.active[id]; ok {
			kept = append(kept, id)
		}
	}
	d.order = kept
}

func earliestDeadline(job core.Job) float64 {
	best := 0.0
	for i, c := range job.Chains {
		d := c.Tasks[0].Deadline
		if i == 0 || d > best {
			best = d // the most permissive chain keeps the job alive
		}
	}
	return best
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func almostEq(a, b float64) bool {
	const eps = 1e-9
	diff := a - b
	return diff < eps && diff > -eps
}
