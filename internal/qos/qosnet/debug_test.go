package qosnet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"milan/internal/obs"
	"milan/internal/qos"
)

// startDebugServer runs a qosnet server whose arbitrator is instrumented by
// an observer, with the HTTP debug endpoint enabled.
func startDebugServer(t *testing.T) (*obs.Observer, *Server, *Client, string) {
	t.Helper()
	o := obs.New(obs.Config{KeepPlacements: true, Capacity: 4})
	arb, err := qos.NewArbitrator(o.InstrumentArbitratorConfig(qos.ArbitratorConfig{Procs: 4}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr, err := srv.EnableDebug(o, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return o, srv, cli, "http://" + addr.String()
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestEnableDebugServesMetricsAndTrace(t *testing.T) {
	_, srv, cli, base := startDebugServer(t)
	if srv.DebugAddr() == nil {
		t.Fatal("DebugAddr = nil after EnableDebug")
	}
	if _, err := cli.Negotiate(job(1, 2, 10, 100)); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters[obs.MetricAdmitted] != 1 || snap.Counters[obs.MetricDecisions] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}

	code, body = httpGet(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var evs []obs.Event
	if err := json.Unmarshal(body, &evs); err != nil || len(evs) == 0 {
		t.Fatalf("/trace = %d events, err %v", len(evs), err)
	}

	code, body = httpGet(t, base+"/gantt")
	if code != http.StatusOK {
		t.Fatalf("/gantt status = %d", code)
	}
	if _, err := obs.ParseChromeTrace(bytes.NewReader(body)); err != nil {
		t.Fatalf("/gantt not a chrome trace: %v", err)
	}
}

func TestEnableDebugTwiceFails(t *testing.T) {
	o, srv, _, _ := startDebugServer(t)
	if _, err := srv.EnableDebug(o, "127.0.0.1:0"); err == nil {
		t.Fatal("second EnableDebug succeeded")
	}
}

func TestEnableDebugNeedsObserver(t *testing.T) {
	srv, _ := startServer(t, 4)
	if _, err := srv.EnableDebug(nil, "127.0.0.1:0"); err == nil {
		t.Fatal("EnableDebug(nil) succeeded")
	}
	if srv.DebugAddr() != nil {
		t.Fatal("DebugAddr set without a debug server")
	}
}

func TestCloseStopsDebugServer(t *testing.T) {
	_, srv, _, base := startDebugServer(t)
	srv.Close()
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("debug endpoint still serving after Close")
	}
	if _, err := srv.EnableDebug(obs.New(obs.Config{}), "127.0.0.1:0"); err == nil {
		t.Fatal("EnableDebug on a closed server succeeded")
	}
}
