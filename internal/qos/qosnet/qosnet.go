// Package qosnet puts the QoS negotiation protocol on the wire: a TCP
// server wrapping a qos.Arbitrator and a client that implements
// qos.Negotiator, so QoS agents in other processes (or on other machines of
// the cluster) can negotiate resource reservations.  Messages are
// gob-encoded request/response pairs over a persistent connection.
package qosnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/obs/latency"
	"milan/internal/qos"
)

type op int

const (
	opNegotiate op = iota + 1
	opObserve
	opStats
	opUtilization
	opPing
	opNegotiateDAG
	opSetCapacity
	opDynStats
	opWaiting
)

// request is the wire envelope sent by clients.
type request struct {
	Op      op
	Job     core.Job
	DAGJob  core.DAGJob
	Now     float64
	Origin  float64
	Horizon float64
	Procs   int
}

// response is the wire envelope returned by the server.
type response struct {
	Grant    *qos.Grant
	Rejected bool
	Err      string
	Stats    core.Stats
	DynStats qos.DynamicStats
	Aborted  []int
	Value    float64
	Count    int
}

// Arbitrator is the admission surface a server can export: everything the
// static negotiation protocol needs.  Both the monolithic qos.Arbitrator
// and the federated fed.Arbitrator satisfy it, so a sharded admission
// plane drops in behind the same wire protocol unchanged.
type Arbitrator interface {
	Negotiate(job core.Job) (*qos.Grant, error)
	NegotiateDAG(job core.DAGJob) (*qos.Grant, error)
	Observe(now float64)
	Stats() core.Stats
	Utilization(origin, horizon float64) float64
}

// Server exposes an arbitrator over a listener.  Each accepted connection
// is served by its own goroutine; the arbitrator itself serializes
// decisions.
type Server struct {
	arb Arbitrator
	dyn *qos.DynamicArbitrator
	ln  net.Listener

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	debug   *http.Server // optional observability endpoint (EnableDebug)
	debugLn net.Listener

	// tracer, when set, makes the server the trace ingress: every
	// negotiation request arriving without a trace identity gets a root
	// span minted here, so downstream spans (route/plan/reserve) hang off
	// one tree per request.  Read lock-free on the hot path.
	tracer atomic.Pointer[obs.Tracer]
	// onDecision, when set, observes every negotiation outcome with its
	// server-side wall latency (the SLO engine's admission-latency feed).
	onDecision atomic.Pointer[func(job core.Job, g *qos.Grant, err error, latency time.Duration)]
	// latency, when set, times every negotiation through its admission
	// phases (route/probe/plan/reserve/journal/ack): the server is the
	// Rec lifecycle owner, arbitrators that implement qos.TimedNegotiator
	// attribute their phases into it.  Read lock-free on the hot path.
	latency atomic.Pointer[latency.Plane]
}

// Serve starts serving the arbitrator on ln and returns immediately.
func Serve(arb Arbitrator, ln net.Listener) *Server {
	s := &Server{arb: arb, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves the
// arbitrator on it.
func ListenAndServe(arb Arbitrator, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("qosnet: listen %s: %w", addr, err)
	}
	return Serve(arb, ln), nil
}

// ServeDynamic serves a renegotiating arbitrator: in addition to the
// negotiation ops, clients may change the machine size (the path a remote
// resource broker or operator uses) and read renegotiation statistics.
func ServeDynamic(dyn *qos.DynamicArbitrator, ln net.Listener) *Server {
	s := &Server{dyn: dyn, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// ListenAndServeDynamic listens on addr and serves the dynamic arbitrator.
func ListenAndServeDynamic(dyn *qos.DynamicArbitrator, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("qosnet: listen %s: %w", addr, err)
	}
	return ServeDynamic(dyn, ln), nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// SetTracer installs (or, with nil, removes) the span tracer that makes
// this server a trace ingress.  Safe to call while serving.
func (s *Server) SetTracer(t *obs.Tracer) {
	if t == nil {
		s.tracer.Store(nil)
		return
	}
	s.tracer.Store(t)
}

// SetDecisionHook installs (or, with nil, removes) a callback observing
// every negotiation outcome and its server-side wall latency.  Safe to
// call while serving.
func (s *Server) SetDecisionHook(fn func(job core.Job, g *qos.Grant, err error, latency time.Duration)) {
	if fn == nil {
		s.onDecision.Store(nil)
		return
	}
	s.onDecision.Store(&fn)
}

// SetLatency installs (or, with nil, removes) the admission latency
// plane.  Safe to call while serving.
func (s *Server) SetLatency(p *latency.Plane) {
	if p == nil {
		s.latency.Store(nil)
		return
	}
	s.latency.Store(p)
}

// negotiate runs one negotiation through the installed tracer, latency
// plane and decision hook.  With none installed it is a direct call plus
// three atomic loads.
func (s *Server) negotiate(n qos.Negotiator, job core.Job) (*qos.Grant, error) {
	t := s.tracer.Load()
	hook := s.onDecision.Load()
	lp := s.latency.Load()
	if t == nil && hook == nil && lp == nil {
		return n.Negotiate(job)
	}
	var began time.Time
	if hook != nil {
		began = time.Now()
	}
	rec := lp.Start(job.Trace, int64(job.ID))
	var root *obs.ActiveSpan
	if t != nil && job.Trace == 0 {
		tr := t.NewTrace()
		root = t.Start(tr, 0, "qosnet.negotiate", obs.StageArrival, job.ID)
		job.Trace, job.Span = uint64(tr), uint64(root.ID())
		rec.SetTrace(job.Trace)
	}
	var g *qos.Grant
	var err error
	if tn, ok := n.(qos.TimedNegotiator); ok && rec.Active() {
		g, err = tn.NegotiateTimed(job, &rec)
	} else {
		g, err = n.Negotiate(job)
	}
	if g != nil {
		rec.SetShard(g.Shard)
	}
	if root != nil {
		if err != nil {
			root.SetErr(err.Error())
		}
		root.End()
	}
	if hook != nil {
		(*hook)(job, g, err, time.Since(began))
	}
	rec.End()
	return g, err
}

// Close stops accepting, closes all connections (and the debug endpoint,
// when enabled) and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	if s.debug != nil {
		s.debug.Close()
		s.debug = nil
		s.debugLn = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) response {
	if s.dyn != nil {
		return s.dispatchDynamic(req)
	}
	switch req.Op {
	case opNegotiate:
		g, err := s.negotiate(s.arb, req.Job)
		switch {
		case errors.Is(err, qos.ErrRejected):
			return response{Rejected: true}
		case err != nil:
			return response{Err: err.Error()}
		default:
			return response{Grant: g}
		}
	case opNegotiateDAG:
		g, err := s.arb.NegotiateDAG(req.DAGJob)
		switch {
		case errors.Is(err, qos.ErrRejected):
			return response{Rejected: true}
		case err != nil:
			return response{Err: err.Error()}
		default:
			return response{Grant: g}
		}
	case opObserve:
		s.arb.Observe(req.Now)
		return response{}
	case opStats:
		return response{Stats: s.arb.Stats()}
	case opUtilization:
		return response{Value: s.arb.Utilization(req.Origin, req.Horizon)}
	case opPing:
		return response{}
	default:
		return response{Err: fmt.Sprintf("qosnet: unknown op %d", req.Op)}
	}
}

// dispatchDynamic serves requests against the renegotiating arbitrator.
func (s *Server) dispatchDynamic(req request) response {
	switch req.Op {
	case opNegotiate:
		g, err := s.negotiate(s.dyn, req.Job)
		switch {
		case errors.Is(err, qos.ErrRejected):
			return response{Rejected: true}
		case err != nil:
			return response{Err: err.Error()}
		default:
			return response{Grant: g}
		}
	case opObserve:
		s.dyn.Observe(req.Now)
		return response{}
	case opSetCapacity:
		aborted, err := s.dyn.SetCapacity(req.Procs)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Aborted: aborted}
	case opDynStats:
		return response{DynStats: s.dyn.Stats()}
	case opWaiting:
		return response{Count: s.dyn.Waiting()}
	case opUtilization:
		return response{Value: s.dyn.Utilization(req.Origin, req.Horizon)}
	case opPing:
		return response{}
	default:
		return response{Err: fmt.Sprintf("qosnet: op %d not supported by dynamic arbitrator", req.Op)}
	}
}

// Client speaks the protocol over one persistent TCP connection.  It is
// safe for concurrent use; requests are serialized on the connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

var _ qos.Negotiator = (*Client)(nil)

// Dial connects to a qosnet server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("qosnet: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("qosnet: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("qosnet: receive: %w", err)
	}
	if resp.Err != "" {
		return response{}, errors.New(resp.Err)
	}
	return resp, nil
}

// Negotiate submits a job's task system to the remote arbitrator.
func (c *Client) Negotiate(job core.Job) (*qos.Grant, error) {
	resp, err := c.roundTrip(request{Op: opNegotiate, Job: job})
	if err != nil {
		return nil, err
	}
	if resp.Rejected {
		return nil, qos.ErrRejected
	}
	if resp.Grant == nil {
		return nil, errors.New("qosnet: malformed response: no grant")
	}
	return resp.Grant, nil
}

// NegotiateDAG submits a DAG job to the remote arbitrator.
func (c *Client) NegotiateDAG(job core.DAGJob) (*qos.Grant, error) {
	resp, err := c.roundTrip(request{Op: opNegotiateDAG, DAGJob: job})
	if err != nil {
		return nil, err
	}
	if resp.Rejected {
		return nil, qos.ErrRejected
	}
	if resp.Grant == nil {
		return nil, errors.New("qosnet: malformed response: no grant")
	}
	return resp.Grant, nil
}

// Observe reports clock progress to the remote arbitrator.
func (c *Client) Observe(now float64) error {
	_, err := c.roundTrip(request{Op: opObserve, Now: now})
	return err
}

// Stats fetches the remote arbitrator's counters.
func (c *Client) Stats() (core.Stats, error) {
	resp, err := c.roundTrip(request{Op: opStats})
	return resp.Stats, err
}

// Utilization fetches reserved-capacity fraction over [origin, horizon].
func (c *Client) Utilization(origin, horizon float64) (float64, error) {
	resp, err := c.roundTrip(request{Op: opUtilization, Origin: origin, Horizon: horizon})
	return resp.Value, err
}

// Ping verifies connectivity.
func (c *Client) Ping() error {
	_, err := c.roundTrip(request{Op: opPing})
	return err
}

// SetCapacity renegotiates a dynamic server's machine size, returning the
// IDs of aborted jobs.
func (c *Client) SetCapacity(procs int) ([]int, error) {
	resp, err := c.roundTrip(request{Op: opSetCapacity, Procs: procs})
	return resp.Aborted, err
}

// DynStats fetches a dynamic server's renegotiation counters.
func (c *Client) DynStats() (qos.DynamicStats, error) {
	resp, err := c.roundTrip(request{Op: opDynStats})
	return resp.DynStats, err
}

// Waiting fetches a dynamic server's queued-rejection count.
func (c *Client) Waiting() (int, error) {
	resp, err := c.roundTrip(request{Op: opWaiting})
	return resp.Count, err
}
