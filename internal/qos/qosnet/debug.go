package qosnet

import (
	"fmt"
	"net"
	"net/http"

	"milan/internal/obs"
)

// EnableDebug starts an HTTP debug server on addr (e.g. "127.0.0.1:0")
// exposing the observer's /metrics, /trace and /gantt endpoints alongside
// the gob negotiation protocol.  The debug server is shut down by Close.
// It returns the bound address.
//
// The observer is expected to already be wired into the arbitrator this
// server fronts (obs.Observer.InstrumentArbitratorConfig or
// InstrumentOptions + InstrumentDynamic); EnableDebug only publishes it.
// When the observer traces spans (obs.Config.Tracing), the server becomes
// the trace ingress: untraced negotiation requests get a root span minted
// here (see SetTracer).
func (s *Server) EnableDebug(o *obs.Observer, addr string) (net.Addr, error) {
	if o == nil {
		return nil, fmt.Errorf("qosnet: debug server needs an observer")
	}
	if t := o.Tracer(); t != nil {
		s.SetTracer(t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("qosnet: server closed")
	}
	if s.debugLn != nil {
		return nil, fmt.Errorf("qosnet: debug server already enabled on %s", s.debugLn.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("qosnet: debug listen %s: %w", addr, err)
	}
	s.debugLn = ln
	s.debug = &http.Server{Handler: o.Handler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.debug.Serve(ln) // returns on Close
	}()
	return ln.Addr(), nil
}

// DebugAddr returns the debug server's address, or nil when disabled.
func (s *Server) DebugAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.debugLn == nil {
		return nil
	}
	return s.debugLn.Addr()
}
