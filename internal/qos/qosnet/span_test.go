package qosnet

import (
	"sync"
	"testing"
	"time"

	"milan/internal/core"
	"milan/internal/obs"
	"milan/internal/qos"
)

// TestServerMintsRootSpanForUntracedRequests: the server is the trace
// ingress — a request arriving without a trace identity gets a root span,
// and the grant echoes the minted trace back across the wire.
func TestServerMintsRootSpanForUntracedRequests(t *testing.T) {
	srv, cli := startServer(t, 8)
	tr := obs.NewTracer(64)
	srv.SetTracer(tr)

	g, err := cli.Negotiate(job(1, 4, 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if g.Trace == 0 {
		t.Fatal("grant carries no trace identity")
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "qosnet.negotiate" || spans[0].Stage != obs.StageArrival {
		t.Fatalf("spans = %+v", spans)
	}
	if uint64(spans[0].Trace) != g.Trace {
		t.Fatalf("span trace %d != grant trace %d", spans[0].Trace, g.Trace)
	}

	// A rejection still closes the root span, marked failed.
	if _, err := cli.Negotiate(job(2, 64, 10, 20)); err == nil {
		t.Fatal("oversized job admitted")
	}
	spans = tr.Spans()
	if len(spans) != 2 || spans[1].Err == "" {
		t.Fatalf("rejection span = %+v", spans)
	}
}

// TestPreTracedRequestKeepsItsIdentity: a job already carrying a trace
// (minted upstream, e.g. by a federated router in another tier) must not
// get a second root span; its identity round-trips through the gob
// envelope untouched.
func TestPreTracedRequestKeepsItsIdentity(t *testing.T) {
	srv, cli := startServer(t, 8)
	tr := obs.NewTracer(64)
	srv.SetTracer(tr)

	j := job(3, 4, 10, 20)
	j.Trace, j.Span = 777, 13
	g, err := cli.Negotiate(j)
	if err != nil {
		t.Fatal(err)
	}
	if g.Trace != 777 {
		t.Fatalf("grant trace = %d, want 777 (propagated, not reminted)", g.Trace)
	}
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("server minted %d root spans for a pre-traced request", n)
	}
}

// TestSpanPropagationConcurrentRoundTrips hammers one traced server from
// many clients — run under -race in CI.  Every grant must carry a unique
// nonzero trace, and the tracer must hold exactly one root span per
// request.
func TestSpanPropagationConcurrentRoundTrips(t *testing.T) {
	const clients, perClient = 8, 25
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := obs.NewTracer(clients * perClient * 2)
	srv.SetTracer(tr)
	var decisions int64
	var decMu sync.Mutex
	srv.SetDecisionHook(func(j core.Job, g *qos.Grant, err error, latency time.Duration) {
		decMu.Lock()
		decisions++
		decMu.Unlock()
		if j.Trace == 0 {
			t.Error("decision hook saw an untraced job")
		}
		if latency < 0 {
			t.Error("negative latency")
		}
	})

	var wg sync.WaitGroup
	traces := make(chan uint64, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < perClient; i++ {
				// Immediate deadline pressure keeps a mix of grants and
				// rejections flowing.
				g, err := cli.Negotiate(job(c*1000+i, 2, 1, 1e9))
				if err != nil {
					continue
				}
				traces <- g.Trace
			}
		}(c)
	}
	wg.Wait()
	close(traces)
	seen := make(map[uint64]bool)
	for tc := range traces {
		if tc == 0 {
			t.Fatal("zero trace on a granted request")
		}
		if seen[tc] {
			t.Fatalf("trace %d reused across requests", tc)
		}
		seen[tc] = true
	}
	if got := tr.Total(); got != clients*perClient {
		t.Fatalf("root spans = %d, want %d", got, clients*perClient)
	}
	decMu.Lock()
	defer decMu.Unlock()
	if decisions != clients*perClient {
		t.Fatalf("decision hook saw %d, want %d", decisions, clients*perClient)
	}
}

// TestSetTracerRemovable: installing nil restores the zero-overhead path.
func TestSetTracerRemovable(t *testing.T) {
	srv, cli := startServer(t, 8)
	tr := obs.NewTracer(8)
	srv.SetTracer(tr)
	srv.SetTracer(nil)
	srv.SetDecisionHook(nil)
	if _, err := cli.Negotiate(job(1, 4, 10, 20)); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 0 {
		t.Fatal("removed tracer still recording")
	}
}
