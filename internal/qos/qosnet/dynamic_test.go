package qosnet

import (
	"errors"
	"testing"

	"milan/internal/core"
	"milan/internal/qos"
)

func startDynamic(t *testing.T, procs int) (*qos.DynamicArbitrator, *Client) {
	t.Helper()
	dyn, err := qos.NewDynamicArbitrator(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServeDynamic(dyn, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return dyn, cli
}

func TestDynamicServerNegotiateAndSetCapacity(t *testing.T) {
	_, cli := startDynamic(t, 8)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	g1, err := cli.Negotiate(job(1, 4, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Finish() != 10 {
		t.Fatalf("finish = %v", g1.Finish())
	}
	if _, err := cli.Negotiate(job(2, 4, 10, 10)); err != nil {
		t.Fatal(err)
	}
	// A remote operator halves the machine: one job aborts.
	aborted, err := cli.SetCapacity(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 1 || aborted[0] != 2 {
		t.Fatalf("aborted = %v", aborted)
	}
	st, err := cli.DynStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted != 1 || st.CapacityEvents != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := cli.SetCapacity(0); err == nil {
		t.Fatal("capacity 0 accepted over the wire")
	}
}

func TestDynamicServerObserveAndWaiting(t *testing.T) {
	dyn, cli := startDynamic(t, 4)
	if _, err := cli.Negotiate(job(1, 4, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Observe(50); err != nil {
		t.Fatal(err)
	}
	if len(dyn.Active()) != 0 {
		t.Fatal("finished job still active after remote observe")
	}
	n, err := cli.Waiting()
	if err != nil || n != 0 {
		t.Fatalf("waiting = (%d, %v)", n, err)
	}
	u, err := cli.Utilization(0, 10)
	if err != nil || u != 1 {
		t.Fatalf("utilization = (%v, %v)", u, err)
	}
}

func TestDynamicServerRejectsUnsupportedOps(t *testing.T) {
	_, cli := startDynamic(t, 4)
	if _, err := cli.Stats(); err == nil {
		t.Fatal("static stats op accepted by dynamic server")
	}
	if _, err := cli.NegotiateDAG(core.DAGJob{ID: 1}); err == nil {
		t.Fatal("DAG op accepted by dynamic server")
	}
	if _, err := cli.Negotiate(job(1, 8, 1, 100)); !errors.Is(err, qos.ErrRejected) {
		t.Fatalf("err = %v, want rejection (job too wide)", err)
	}
}
