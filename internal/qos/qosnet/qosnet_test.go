package qosnet

import (
	"errors"
	"sync"
	"testing"

	"milan/internal/core"
	"milan/internal/qos"
	"milan/internal/workload"
)

// startServer returns a running server on a loopback port and a connected
// client, both cleaned up with the test.
func startServer(t *testing.T, procs int) (*Server, *Client) {
	t.Helper()
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func job(id int, procs int, dur, deadline float64) core.Job {
	return core.Job{ID: id, Chains: []core.Chain{
		{Name: "c", Quality: 1, Tasks: []core.Task{
			{Name: "t", Procs: procs, Duration: dur, Deadline: deadline},
		}},
	}}
}

func TestPing(t *testing.T) {
	_, cli := startServer(t, 4)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiateOverTCP(t *testing.T) {
	_, cli := startServer(t, 4)
	g, err := cli.Negotiate(job(1, 4, 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if g.JobID != 1 || len(g.Placement.Tasks) != 1 {
		t.Fatalf("grant = %+v", g)
	}
	if g.Placement.Tasks[0].Start != 0 || g.Placement.Tasks[0].Finish != 10 {
		t.Fatalf("placement = %+v", g.Placement.Tasks[0])
	}
}

func TestRejectionCrossesTheWire(t *testing.T) {
	_, cli := startServer(t, 4)
	if _, err := cli.Negotiate(job(1, 4, 10, 20)); err != nil {
		t.Fatal(err)
	}
	_, err := cli.Negotiate(job(2, 4, 10, 15))
	if !errors.Is(err, qos.ErrRejected) {
		t.Fatalf("err = %v, want qos.ErrRejected", err)
	}
}

func TestAgentNegotiatesThroughClient(t *testing.T) {
	_, cli := startServer(t, 16)
	p := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	ag := qos.NewAgent(p.Job(1, 0, workload.Tunable))
	g, err := ag.NegotiateWith(cli)
	if err != nil {
		t.Fatal(err)
	}
	if g.Chain != 0 && g.Chain != 1 {
		t.Fatalf("chain = %d", g.Chain)
	}
}

func TestObserveStatsUtilizationOps(t *testing.T) {
	_, cli := startServer(t, 4)
	if _, err := cli.Negotiate(job(1, 2, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Observe(50); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	u, err := cli.Utilization(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestMultipleClientsShareOneSchedule(t *testing.T) {
	srv, cli1 := startServer(t, 4)
	cli2, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli1.Negotiate(job(1, 4, 10, 20)); err != nil {
		t.Fatal(err)
	}
	// Client 2 sees client 1's reservation.
	if _, err := cli2.Negotiate(job(2, 4, 10, 15)); !errors.Is(err, qos.ErrRejected) {
		t.Fatalf("err = %v, want rejection due to shared schedule", err)
	}
	g, err := cli2.Negotiate(job(3, 4, 10, 25))
	if err != nil {
		t.Fatal(err)
	}
	if g.Placement.Tasks[0].Start != 10 {
		t.Fatalf("start = %v, want 10 (queued behind client 1)", g.Placement.Tasks[0].Start)
	}
}

func TestConcurrentClientRequests(t *testing.T) {
	_, cli := startServer(t, 64)
	var wg sync.WaitGroup
	errs := make([]error, 100)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cli.Negotiate(job(i, 1, 5, 1e9))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 100 {
		t.Fatalf("admitted = %d, want 100", st.Admitted)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, cli := startServer(t, 4)
	srv.Close()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping succeeded after server close")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
