package qosnet

import (
	"errors"
	"sync"
	"testing"

	"milan/internal/core"
	"milan/internal/fed"
	"milan/internal/qos"
)

// The federated arbitrator must satisfy the server-side interface so it
// drops in behind the wire protocol unchanged.
var _ Arbitrator = (*fed.Arbitrator)(nil)
var _ Arbitrator = (*qos.Arbitrator)(nil)

// runConcurrentClients hammers one server with many goroutine agents, each
// on its own connection, and checks the global capacity invariant: the
// admitted reservations can never exceed the machine's processor-time,
// no matter how the concurrent negotiations interleave.
func runConcurrentClients(t *testing.T, srv *Server, stats func() core.Stats, util func(o, h float64) float64, procs int) {
	t.Helper()
	const (
		clients  = 8
		perAgent = 25
		taskSize = 2
		taskDur  = 10.0
		deadline = 100.0
	)
	var admitted, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr().String())
			if err != nil {
				t.Errorf("client %d: dial: %v", c, err)
				return
			}
			defer cli.Close()
			for i := 0; i < perAgent; i++ {
				id := c*perAgent + i
				g, err := cli.Negotiate(job(id, taskSize, taskDur, deadline))
				mu.Lock()
				switch {
				case err == nil:
					admitted++
				case errors.Is(err, qos.ErrRejected):
					rejected++
				default:
					t.Errorf("job %d: %v", id, err)
				}
				mu.Unlock()
				if err == nil && g.Finish() > deadline+core.Eps {
					t.Errorf("job %d granted past its deadline: %v", id, g.Finish())
				}
			}
		}(c)
	}
	wg.Wait()

	if admitted+rejected != clients*perAgent {
		t.Fatalf("decisions %d, jobs %d", admitted+rejected, clients*perAgent)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	st := stats()
	if int64(st.Admitted) != admitted {
		t.Fatalf("server stats admitted %d, clients saw %d grants", st.Admitted, admitted)
	}
	// Total admitted capacity never exceeds the pool: reserved area is
	// bounded by procs x deadline window, i.e. utilization <= 1.
	poolArea := float64(procs) * deadline
	if st.ReservedArea > poolArea+core.Eps {
		t.Fatalf("reserved area %v exceeds pool processor-time %v", st.ReservedArea, poolArea)
	}
	if u := util(0, deadline); u > 1+core.Eps {
		t.Fatalf("utilization %v exceeds 1", u)
	}
	// The workload saturates the pool, so the bound must be tight enough
	// to prove rejections came from capacity, not from races.
	if maxJobs := int64(poolArea / (taskSize * taskDur)); admitted > maxJobs {
		t.Fatalf("admitted %d jobs, pool fits at most %d", admitted, maxJobs)
	}
}

// TestConcurrentClientsMonolith runs N goroutine agents against one
// monolithic arbitrator server.
func TestConcurrentClientsMonolith(t *testing.T) {
	const procs = 8
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	runConcurrentClients(t, srv, arb.Stats, arb.Utilization, procs)
}

// TestConcurrentClientsFederated runs the same workload against a sharded
// admission plane served over the identical wire protocol — the drop-in
// the fed package promises.
func TestConcurrentClientsFederated(t *testing.T) {
	const procs = 8
	plane, err := fed.New(fed.Config{Procs: procs, Shards: 4, ProbeK: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(plane, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	runConcurrentClients(t, srv, plane.Stats, plane.Utilization, procs)
	if err := plane.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plane.Shards(); i++ {
		if got := plane.Shard(i).Procs(); got < 1 {
			t.Fatalf("shard %d has %d procs", i, got)
		}
	}
}
