package qosnet

import (
	"errors"
	"testing"

	"milan/internal/core"
	"milan/internal/qos"
)

func dagJob(id int, deadline float64) core.DAGJob {
	return core.DAGJob{ID: id, Alts: []core.DAG{{
		Name: "diamond",
		Tasks: []core.DAGTask{
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: deadline}},
			{Task: core.Task{Procs: 2, Duration: 10, Deadline: deadline}, Preds: []int{0}},
			{Task: core.Task{Procs: 2, Duration: 10, Deadline: deadline}, Preds: []int{0}},
			{Task: core.Task{Procs: 2, Duration: 5, Deadline: deadline}, Preds: []int{1, 2}},
		},
	}}}
}

func TestNegotiateDAGOverTCP(t *testing.T) {
	_, cli := startServer(t, 4)
	g, err := cli.NegotiateDAG(dagJob(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Placement.Tasks) != 4 {
		t.Fatalf("placement = %+v", g.Placement)
	}
	// Both middle tasks run concurrently on the 4-proc machine.
	if g.Placement.Tasks[1].Start != g.Placement.Tasks[2].Start {
		t.Fatalf("branches not concurrent across the wire: %+v", g.Placement.Tasks)
	}
}

func TestNegotiateDAGRejectionOverTCP(t *testing.T) {
	_, cli := startServer(t, 4)
	_, err := cli.NegotiateDAG(dagJob(1, 15)) // makespan 20 > 15
	if !errors.Is(err, qos.ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}

func TestNegotiateDAGInvalidJobOverTCP(t *testing.T) {
	_, cli := startServer(t, 4)
	if _, err := cli.NegotiateDAG(core.DAGJob{ID: 1}); err == nil {
		t.Fatal("invalid DAG job accepted")
	}
}
