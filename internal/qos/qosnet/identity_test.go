package qosnet

import (
	"testing"

	"milan/internal/core"
	"milan/internal/qos"
)

// shardStamper wraps an arbitrator and stamps every grant with a fixed
// shard, standing in for a federated plane behind the wire.
type shardStamper struct {
	*qos.Arbitrator
	shard int
}

func (s shardStamper) Negotiate(job core.Job) (*qos.Grant, error) {
	g, err := s.Arbitrator.Negotiate(job)
	if g != nil {
		g.Shard = s.shard
	}
	return g, err
}

// TestIdentityRoundTrip pins that the accounting identity — the job's
// Tenant and Class on the request, the granting Shard on the response —
// survives the gob wire format in both directions.
func TestIdentityRoundTrip(t *testing.T) {
	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{
		Procs:       8,
		KeepHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(shardStamper{arb, 3}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	j := job(7, 2, 10, 100)
	j.Tenant = "acme"
	j.Class = 2
	g, err := cli.Negotiate(j)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shard != 3 {
		t.Errorf("grant shard = %d, want 3 (lost on the wire)", g.Shard)
	}
	// The server-side arbitrator must have seen the tenant identity: the
	// ledger keys accounting off the decision's job.
	hist := arb.History()
	if len(hist) != 1 {
		t.Fatalf("history has %d decisions, want 1", len(hist))
	}
	if got := hist[0].Job; got.Tenant != "acme" || got.Class != 2 {
		t.Errorf("server saw tenant %q class %d, want acme/2", got.Tenant, got.Class)
	}
}
