package qos

import (
	"testing"

	"milan/internal/resbroker"
)

func TestAttachBrokerFollowsPool(t *testing.T) {
	d := newDyn(t, 4)
	b := resbroker.New(nil)
	stop := AttachBroker(d, b, 0)
	defer stop()

	if err := b.Register(resbroker.Resource{ID: "a", Procs: 4, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := d.Procs(); got != 4 {
		t.Fatalf("procs = %d, want 4", got)
	}
	if err := b.Register(resbroker.Resource{ID: "b", Procs: 8, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := d.Procs(); got != 12 {
		t.Fatalf("procs = %d, want 12 after join", got)
	}
	if err := b.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	if got := d.Procs(); got != 8 {
		t.Fatalf("procs = %d, want 8 after leave", got)
	}
	if st := d.Stats(); st.CapacityEvents != 3 {
		t.Fatalf("capacity events = %d, want 3", st.CapacityEvents)
	}
}

func TestAttachBrokerThresholdSuppressesSmallChanges(t *testing.T) {
	d := newDyn(t, 16)
	b := resbroker.New(nil)
	b.Register(resbroker.Resource{ID: "base", Procs: 16, Speed: 1})
	AttachBroker(d, b, 4) // only "significant" changes (>= 4 procs) renegotiate

	b.Register(resbroker.Resource{ID: "tiny", Procs: 2, Speed: 1})
	if got := d.Procs(); got != 16 {
		t.Fatalf("procs = %d: small change triggered renegotiation", got)
	}
	b.Register(resbroker.Resource{ID: "big", Procs: 8, Speed: 1})
	if got := d.Procs(); got != 26 {
		t.Fatalf("procs = %d, want 26 after significant change", got)
	}
}

func TestAttachBrokerIgnoresBindingsAndEmptyPool(t *testing.T) {
	d := newDyn(t, 4)
	b := resbroker.New(nil)
	AttachBroker(d, b, 0)
	b.Register(resbroker.Resource{ID: "a", Procs: 8, Speed: 1})
	if got := d.Procs(); got != 8 {
		t.Fatalf("procs = %d", got)
	}
	// Binding capacity to another computation is not a pool-size change.
	if _, err := b.Bind(resbroker.Request{Computation: "other", MinProcs: 4}); err != nil {
		t.Fatal(err)
	}
	if got := d.Procs(); got != 8 {
		t.Fatalf("procs = %d: bind event changed arbitrator capacity", got)
	}
	// Draining the pool entirely must not leave a 0-processor arbitrator.
	if err := b.Release("other"); err != nil {
		t.Fatal(err)
	}
	if err := b.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	if got := d.Procs(); got != 8 {
		t.Fatalf("procs = %d: empty pool should leave capacity unchanged", got)
	}
}

func TestAttachBrokerStopDetaches(t *testing.T) {
	d := newDyn(t, 4)
	b := resbroker.New(nil)
	stop := AttachBroker(d, b, 0)
	stop()
	b.Register(resbroker.Resource{ID: "a", Procs: 32, Speed: 1})
	if got := d.Procs(); got != 4 {
		t.Fatalf("procs = %d: detached subscription still firing", got)
	}
}

func TestAttachBrokerAbortsSurfaceThroughCallback(t *testing.T) {
	d := newDyn(t, 8)
	var aborted []int
	d.OnAborted = func(id int) { aborted = append(aborted, id) }
	b := resbroker.New(nil)
	b.Register(resbroker.Resource{ID: "a", Procs: 4, Speed: 1})
	b.Register(resbroker.Resource{ID: "b", Procs: 4, Speed: 1})
	AttachBroker(d, b, 0) // pool total 8 = current capacity... events already fired
	// Two 4-proc jobs fill the machine.
	if _, err := d.Negotiate(chainJob(1, 0, rect(4, 10, 10))); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Negotiate(chainJob(2, 0, rect(4, 10, 10))); err != nil {
		t.Fatal(err)
	}
	// Machine "b" leaves: half the capacity disappears before anything
	// has observed time passing, so one job must abort.
	if err := b.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 1 || aborted[0] != 2 {
		t.Fatalf("aborted = %v, want [2]", aborted)
	}
}
