// Package integration exercises full-stack paths across the repository's
// modules: language -> task graph -> negotiation (in-process and over TCP)
// -> processor assignment -> Calypso execution, and the experiment harness
// driven through the wire protocol.
package integration

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"milan"
	"milan/internal/calypso"
	"milan/internal/core"
	"milan/internal/junction"
	"milan/internal/qos"
	"milan/internal/qos/qosnet"
	"milan/internal/resbroker"
	"milan/internal/workload"
)

// TestLanguageToExecutionOverTCP drives the complete pipeline: the paper's
// junction program in the tunability language, parsed to a task graph,
// negotiated with a remote arbitrator over TCP, bound to concrete
// processors, and executed step by step on a fault-injecting Calypso
// runtime.
func TestLanguageToExecutionOverTCP(t *testing.T) {
	src, err := os.ReadFile("../../testdata/junction.tune")
	if err != nil {
		t.Fatal(err)
	}
	graph, err := milan.ParseTunability("junction", string(src))
	if err != nil {
		t.Fatal(err)
	}

	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := qosnet.ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := qosnet.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	job, envs, err := graph.Job(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	agent := milan.NewAgent(job)
	grant, err := agent.NegotiateWith(cli)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Chain < 0 || grant.Chain >= len(job.Chains) {
		t.Fatalf("grant chain %d out of range", grant.Chain)
	}
	env := envs[grant.Chain]
	if _, ok := env["sampleGranularity"]; !ok {
		t.Fatalf("granted env %v missing control parameter", env)
	}

	// Bind to processors.
	asn, err := milan.AssignProcessors(8, []*milan.Placement{&grant.Placement})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn) != len(job.Chains[grant.Chain].Tasks) {
		t.Fatalf("assignments = %d", len(asn))
	}

	// Execute the granted chain: each task becomes one Calypso parallel
	// step of its granted width, under fault injection.
	rt, err := calypso.New(calypso.Config{
		Workers: 8,
		Faults:  &calypso.FaultPlan{TransientProb: 0.2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range grant.Placement.Tasks {
		step := i
		err := rt.Parallel(tp.Procs, func(ctx *calypso.TaskCtx, w, n int) error {
			ctx.Write(fmt.Sprintf("step%d.%d", step, n), n)
			return nil
		})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	// Every step's every task committed exactly once.
	want := 0
	for _, tp := range grant.Placement.Tasks {
		want += tp.Procs
	}
	if got := rt.Store().Len(); got != want {
		t.Fatalf("store has %d results, want %d", got, want)
	}
}

// TestExperimentThroughWireMatchesInProcess runs the same arrival sequence
// against an in-process arbitrator and a TCP-served one: decisions must be
// identical.
func TestExperimentThroughWireMatchesInProcess(t *testing.T) {
	spec := workload.FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5}
	jobs := spec.Stream(workload.NewPoisson(30, 11), 300, workload.Tunable)

	runLocal := func() []int {
		arb, _ := qos.NewArbitrator(qos.ArbitratorConfig{Procs: 16})
		var out []int
		for _, j := range jobs {
			arb.Observe(j.Release)
			g, err := arb.Negotiate(j)
			if err != nil {
				out = append(out, -1)
			} else {
				out = append(out, g.Chain)
			}
		}
		return out
	}

	runWire := func() []int {
		arb, _ := qos.NewArbitrator(qos.ArbitratorConfig{Procs: 16})
		srv, err := qosnet.ListenAndServe(arb, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cli, err := qosnet.Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		var out []int
		for _, j := range jobs {
			if err := cli.Observe(j.Release); err != nil {
				t.Fatal(err)
			}
			g, err := cli.Negotiate(j)
			switch {
			case errors.Is(err, qos.ErrRejected):
				out = append(out, -1)
			case err != nil:
				t.Fatal(err)
			default:
				out = append(out, g.Chain)
			}
		}
		return out
	}

	local, wire := runLocal(), runWire()
	for i := range local {
		if local[i] != wire[i] {
			t.Fatalf("job %d: local chose %d, wire chose %d", i, local[i], wire[i])
		}
	}
}

// TestBrokerChurnScenario scripts a full broker-driven renegotiation: jobs
// admitted on a two-machine pool survive one machine leaving, with the
// final schedule still bindable to the remaining processors.
func TestBrokerChurnScenario(t *testing.T) {
	arb, err := milan.NewDynamicArbitrator(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	broker := resbroker.New(nil)
	broker.Register(resbroker.Resource{ID: "a", Procs: 8, Speed: 1})
	broker.Register(resbroker.Resource{ID: "b", Procs: 4, Speed: 1})
	qos.AttachBroker(arb, broker, 0)
	if arb.Procs() != 12 {
		t.Fatalf("procs = %d", arb.Procs())
	}

	var grants []*qos.Grant
	for i := 0; i < 4; i++ {
		g, err := arb.Negotiate(core.Job{ID: i, Chains: []core.Chain{
			{Name: "c", Quality: 1, Tasks: []core.Task{
				{Procs: 3, Duration: 10, Deadline: 100},
				{Procs: 2, Duration: 10, Deadline: 200},
			}},
		}})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		grants = append(grants, g)
	}

	if err := broker.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	if arb.Procs() != 8 {
		t.Fatalf("procs after leave = %d", arb.Procs())
	}
	// All four jobs still fit (deadlines were generous); the final
	// schedule binds onto 8 processors.
	if got := len(arb.Active()); got != 4 {
		t.Fatalf("active = %d, want 4 survivors", got)
	}
	var placements []*core.Placement
	for _, g := range grants {
		pl := g.Placement
		placements = append(placements, &pl)
	}
	if _, err := core.AssignProcessors(8, placements); err != nil {
		t.Fatalf("post-churn schedule unbindable: %v", err)
	}
}

// TestJunctionFullStack: profile the tunable application, schedule frames
// against a small machine, execute each granted configuration and check
// that measured quality matches the profiled quality.
func TestJunctionFullStack(t *testing.T) {
	im, truth := junction.Synthesize(junction.DefaultSynthSpec())
	fine, coarse := junction.FineParams(), junction.CoarseParams()
	graph, profs, err := junction.BuildGraph(4, im, truth, fine, coarse, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	arb, err := milan.NewArbitrator(milan.ArbitratorConfig{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sawPaths := map[int]bool{}
	for frame := 0; frame < 2; frame++ {
		job, envs, err := graph.Job(frame, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		g, err := milan.NewAgent(job).NegotiateWith(arb)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		sawPaths[g.Chain] = true
		params, err := junction.ParamsForEnv(envs[g.Chain], fine, coarse)
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := calypso.New(calypso.Config{Workers: 4})
		res, err := junction.RunScored(rt, im, params, truth, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Quality.F1 != profs[g.Chain].Quality {
			t.Fatalf("frame %d: measured F1 %v != profiled %v", frame, res.Quality.F1, profs[g.Chain].Quality)
		}
	}
	// Under contention the two frames took different paths (tunability).
	if len(sawPaths) != 2 {
		t.Fatalf("paths used = %v, want both", sawPaths)
	}
}

// TestParLanguageToDAGSchedulingOverTCP: a task_par program becomes a DAG
// job, negotiates over the wire, and the granted placement binds to
// concrete processors with its branches overlapping.
func TestParLanguageToDAGSchedulingOverTCP(t *testing.T) {
	src, err := os.ReadFile("../../testdata/pipeline.tune")
	if err != nil {
		t.Fatal(err)
	}
	graph, err := milan.ParseTunability("pipeline", string(src))
	if err != nil {
		t.Fatal(err)
	}
	job, envs, err := graph.DAGJob(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	arb, err := qos.NewArbitrator(qos.ArbitratorConfig{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := qosnet.ListenAndServe(arb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := qosnet.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	g, err := cli.NegotiateDAG(job)
	if err != nil {
		t.Fatal(err)
	}
	if envs[g.Chain]["mode"] != 1 {
		t.Fatalf("granted env = %v, want mode 1 on the wide machine", envs[g.Chain])
	}
	// audio (task 1) and video (task 2) overlap.
	audio, video := g.Placement.Tasks[1], g.Placement.Tasks[2]
	if audio.Start != video.Start {
		t.Fatalf("branches not concurrent: %+v %+v", audio, video)
	}
	pl := g.Placement
	if _, err := core.AssignProcessors(8, []*core.Placement{&pl}); err != nil {
		t.Fatalf("DAG grant unbindable: %v", err)
	}
}
