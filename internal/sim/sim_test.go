package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	var e Engine
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, "tick", func() { got = append(got, at) })
	}
	if n := e.Run(); n != 5 {
		t.Fatalf("Run fired %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, "same", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order: %v", got)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	var trace []string
	e.At(1, "a", func() {
		trace = append(trace, "a")
		e.After(2, "b", func() { trace = append(trace, "b") })
		e.After(0.5, "c", func() { trace = append(trace, "c") })
	})
	e.Run()
	want := []string{"a", "c", "b"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(1, "x", func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	e.Cancel(nil) // must not panic
}

func TestEngineStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), "tick", func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d, want 3 (stopped)", n)
	}
	if n := e.Run(); n != 7 {
		t.Fatalf("second Run fired %d, want remaining 7", n)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, "tick", func() { fired = append(fired, at) })
	}
	if n := e.RunUntil(3); n != 3 {
		t.Fatalf("RunUntil(3) fired %d, want 3", n)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if n := e.RunUntil(10); n != 2 {
		t.Fatalf("RunUntil(10) fired %d, want 2", n)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want clock advanced to 10", e.Now())
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	var e Engine
	e.At(5, "x", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.At(1, "late", func() {})
}

func TestEnginePendingExcludesCancelled(t *testing.T) {
	var e Engine
	a := e.At(1, "a", func() {})
	e.At(2, "b", func() {})
	e.Cancel(a)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

// TestQuickClockMonotoneAndComplete: random schedules always fire every
// uncancelled event exactly once, in nondecreasing time order.
func TestQuickClockMonotoneAndComplete(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		n := 1 + int(nRaw%100)
		var fired []float64
		cancelled := 0
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			ev := e.At(at, "t", func() { fired = append(fired, at) })
			if rng.Intn(4) == 0 {
				e.Cancel(ev)
				cancelled++
			}
		}
		e.Run()
		if len(fired) != n-cancelled {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
