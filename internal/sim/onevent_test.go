package sim

import "testing"

func TestOnEventObservesEveryFiring(t *testing.T) {
	var e Engine
	type fired struct {
		name string
		t    float64
	}
	var log []fired
	e.OnEvent = func(name string, now float64) {
		log = append(log, fired{name, now})
		if e.Now() != now {
			t.Fatalf("OnEvent time %v != engine clock %v", now, e.Now())
		}
	}
	e.At(3, "c", func() {})
	e.At(1, "a", func() {
		e.At(2, "b", func() {}) // scheduled from inside a callback
	})
	if n := e.Run(); n != 3 {
		t.Fatalf("processed = %d, want 3", n)
	}
	want := []fired{{"a", 1}, {"b", 2}, {"c", 3}}
	if len(log) != len(want) {
		t.Fatalf("log = %+v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %+v, want %+v", i, log[i], want[i])
		}
	}
}

func TestOnEventSkipsCancelled(t *testing.T) {
	var e Engine
	var count int
	e.OnEvent = func(string, float64) { count++ }
	ev := e.At(1, "gone", func() { t.Fatal("cancelled event ran") })
	e.At(2, "kept", func() {})
	e.Cancel(ev)
	e.Run()
	if count != 1 {
		t.Fatalf("OnEvent fired %d times, want 1", count)
	}
}

func TestNilOnEventIsFastPath(t *testing.T) {
	var e Engine // OnEvent nil
	e.At(1, "x", func() {})
	if n := e.Run(); n != 1 {
		t.Fatalf("processed = %d, want 1", n)
	}
}
