// Package sim is a small discrete-event simulation engine: a clock and a
// time-ordered event heap with deterministic tie-breaking.  The experiment
// harness drives job arrivals, QoS negotiations and completion callbacks
// through it (Section 5.3's synthetic task system).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback.  Events fire in (time, schedule-order)
// order; two events at the same instant fire in the order they were
// scheduled, making runs reproducible.
type Event struct {
	Time float64
	Name string

	// Trace optionally ties the event to a span-propagated request trace
	// (obs.TraceID as a plain integer, so sim stays observability-free).
	// Callers set it on the handle returned by At/After; a traced engine
	// forwards it to OnEventTraced.  Zero means "untraced".
	Trace uint64

	fn        func()
	seq       int64
	index     int // heap index, -1 when fired or cancelled
	cancelled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine owns the clock and the pending-event heap.  The zero value is
// ready to use and starts at time 0.
type Engine struct {
	now     float64
	events  eventHeap
	seq     int64
	stopped bool

	// Processed counts events fired since creation.
	Processed int

	// OnEvent, if non-nil, observes every fired event just before its
	// callback runs, with the event's name and time.  The nil default
	// costs a single pointer comparison per event (the observability
	// layer's zero-cost contract; see internal/obs).
	OnEvent func(name string, t float64)

	// OnEventTraced, if non-nil, additionally observes fired events that
	// carry a request-trace identity (Event.Trace != 0), letting the
	// observability layer stamp simulation events into span trees.  Same
	// zero-cost contract as OnEvent.
	OnEventTraced func(name string, t float64, trace uint64)
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t (>= Now) and returns the event
// handle for cancellation.  Scheduling into the past panics: it indicates a
// causality bug in the model, not a recoverable condition.
func (e *Engine) At(t float64, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, e.now))
	}
	if math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling %q at NaN", name))
	}
	ev := &Event{Time: t, Name: name, fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d time units from now.
func (e *Engine) After(d float64, name string, fn func()) *Event {
	return e.At(e.now+d, name, fn)
}

// Cancel removes a pending event; firing it becomes a no-op.  Cancelling an
// already-fired event is harmless.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.cancelled = true
	}
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.Time
		e.Processed++
		if e.OnEvent != nil {
			e.OnEvent(ev.Name, ev.Time)
		}
		if e.OnEventTraced != nil && ev.Trace != 0 {
			e.OnEventTraced(ev.Name, ev.Time, ev.Trace)
		}
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the heap is empty or Stop is called, returning the
// number of events fired by this call.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

// RunUntil fires events with Time <= t, then advances the clock to t (if t
// is later than the last event fired).  It returns the number fired.
func (e *Engine) RunUntil(t float64) int {
	e.stopped = false
	n := 0
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		if e.Step() {
			n++
		}
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
	return n
}

// peek returns the time of the next uncancelled event.
func (e *Engine) peek() (float64, bool) {
	for e.events.Len() > 0 {
		if e.events[0].cancelled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].Time, true
	}
	return 0, false
}

// eventHeap orders by (Time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	ev.index = -1
	*h = old[:n-1]
	return ev
}
