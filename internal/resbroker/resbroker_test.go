package resbroker

import (
	"strings"
	"sync"
	"testing"
)

func res(id string, procs int, speed float64) Resource {
	return Resource{ID: id, Procs: procs, Speed: speed}
}

func newPool(t *testing.T, policy Policy) *Broker {
	t.Helper()
	b := New(policy)
	for _, r := range []Resource{
		res("smp1", 8, 1.0),
		res("smp2", 4, 2.0),
		res("node3", 16, 0.5),
	} {
		if err := b.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestResourceValidate(t *testing.T) {
	if err := res("a", 4, 1).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Resource{
		{ID: "", Procs: 4, Speed: 1},
		{ID: "a", Procs: 0, Speed: 1},
		{ID: "a", Procs: 4, Speed: 0},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRegisterDeregister(t *testing.T) {
	b := newPool(t, nil)
	if got := b.TotalProcs(); got != 28 {
		t.Fatalf("TotalProcs = %d, want 28", got)
	}
	if err := b.Register(res("smp1", 2, 1)); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := b.Deregister("smp2"); err != nil {
		t.Fatal(err)
	}
	if got := b.TotalProcs(); got != 24 {
		t.Fatalf("TotalProcs after deregister = %d", got)
	}
	if err := b.Deregister("ghost"); err == nil {
		t.Error("deregistering unknown resource succeeded")
	}
}

func TestBindFirstFitPacksInRegistrationOrder(t *testing.T) {
	b := newPool(t, nil)
	bd, err := b.Bind(Request{Computation: "job1", MinProcs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Procs() != 10 {
		t.Fatalf("binding procs = %d, want 10", bd.Procs())
	}
	// First fit: all of smp1 (8), then 2 from smp2.
	if len(bd.Shares) != 2 || bd.Shares[0].ResourceID != "smp1" || bd.Shares[0].Procs != 8 ||
		bd.Shares[1].ResourceID != "smp2" || bd.Shares[1].Procs != 2 {
		t.Fatalf("shares = %+v", bd.Shares)
	}
	if got := b.FreeProcs(); got != 18 {
		t.Fatalf("FreeProcs = %d, want 18", got)
	}
}

func TestBindFastestFirstPrefersFastResources(t *testing.T) {
	b := newPool(t, FastestFirst{})
	bd, err := b.Bind(Request{Computation: "job1", MinProcs: 6})
	if err != nil {
		t.Fatal(err)
	}
	// smp2 (speed 2) first: 4 procs, then smp1 (speed 1): 2 procs.
	if bd.Shares[0].ResourceID != "smp2" || bd.Shares[0].Procs != 4 {
		t.Fatalf("shares = %+v", bd.Shares)
	}
}

func TestBindRespectsTags(t *testing.T) {
	b := New(nil)
	b.Register(Resource{ID: "x86", Procs: 8, Speed: 1, Tags: map[string]string{"arch": "x86"}})
	b.Register(Resource{ID: "arm", Procs: 8, Speed: 1, Tags: map[string]string{"arch": "arm"}})
	bd, err := b.Bind(Request{Computation: "j", MinProcs: 4, RequireTags: map[string]string{"arch": "arm"}})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Shares[0].ResourceID != "arm" {
		t.Fatalf("shares = %+v", bd.Shares)
	}
	_, err = b.Bind(Request{Computation: "j2", MinProcs: 4, RequireTags: map[string]string{"arch": "sparc"}})
	if err == nil {
		t.Fatal("bound on nonexistent tag")
	}
}

func TestBindFailuresLeavePoolUnchanged(t *testing.T) {
	b := newPool(t, nil)
	if _, err := b.Bind(Request{Computation: "", MinProcs: 1}); err == nil {
		t.Error("unnamed computation bound")
	}
	if _, err := b.Bind(Request{Computation: "j", MinProcs: 0}); err == nil {
		t.Error("zero-proc request bound")
	}
	if _, err := b.Bind(Request{Computation: "big", MinProcs: 100}); err == nil {
		t.Error("oversized request bound")
	}
	if got := b.FreeProcs(); got != 28 {
		t.Fatalf("failed binds changed free capacity: %d", got)
	}
	if _, err := b.Bind(Request{Computation: "j", MinProcs: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Bind(Request{Computation: "j", MinProcs: 2}); err == nil {
		t.Error("double binding accepted")
	}
}

func TestBindMaxProcsTakesUpToMax(t *testing.T) {
	b := newPool(t, nil)
	bd, err := b.Bind(Request{Computation: "elastic", MinProcs: 4, MaxProcs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Procs() != 20 {
		t.Fatalf("procs = %d, want 20 (max)", bd.Procs())
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	b := newPool(t, nil)
	if _, err := b.Bind(Request{Computation: "j", MinProcs: 28}); err != nil {
		t.Fatal(err)
	}
	if b.FreeProcs() != 0 {
		t.Fatal("pool not exhausted")
	}
	if err := b.Release("j"); err != nil {
		t.Fatal(err)
	}
	if b.FreeProcs() != 28 {
		t.Fatal("release did not return capacity")
	}
	if err := b.Release("j"); err == nil {
		t.Error("double release succeeded")
	}
}

func TestDeregisterBlockedWhileCommitted(t *testing.T) {
	b := newPool(t, nil)
	if _, err := b.Bind(Request{Computation: "j", MinProcs: 8}); err != nil {
		t.Fatal(err)
	}
	err := b.Deregister("smp1")
	if err == nil || !strings.Contains(err.Error(), "committed") {
		t.Fatalf("err = %v, want committed-procs refusal", err)
	}
	if err := b.Release("j"); err != nil {
		t.Fatal(err)
	}
	if err := b.Deregister("smp1"); err != nil {
		t.Fatal(err)
	}
}

func TestEventsDriveRenegotiation(t *testing.T) {
	b := New(nil)
	var events []Event
	b.Subscribe(func(ev Event) { events = append(events, ev) })
	b.Register(res("a", 4, 1))
	b.Bind(Request{Computation: "j", MinProcs: 2})
	b.Release("j")
	b.Deregister("a")
	kinds := []EventKind{EventRegistered, EventBound, EventReleased, EventDeregistered}
	if len(events) != len(kinds) {
		t.Fatalf("events = %+v", events)
	}
	for i, k := range kinds {
		if events[i].Kind != k {
			t.Errorf("event %d = %v, want %v", i, events[i].Kind, k)
		}
	}
	// FreeProcs trail: 4 after register, 2 after bind, 4 after release, 0
	// after deregister.
	wantFree := []int{4, 2, 4, 0}
	for i, w := range wantFree {
		if events[i].FreeProcs != w {
			t.Errorf("event %d free = %d, want %d", i, events[i].FreeProcs, w)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestBindingsSnapshot(t *testing.T) {
	b := newPool(t, nil)
	b.Bind(Request{Computation: "zeta", MinProcs: 2})
	b.Bind(Request{Computation: "alpha", MinProcs: 2})
	bds := b.Bindings()
	if len(bds) != 2 || bds[0].Computation != "alpha" || bds[1].Computation != "zeta" {
		t.Fatalf("bindings = %+v", bds)
	}
}

func TestConcurrentBindRelease(t *testing.T) {
	b := New(nil)
	b.Register(res("big", 64, 1))
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a'+i%26)) + string(rune('0'+i/26))
			if _, err := b.Bind(Request{Computation: name, MinProcs: 2}); err != nil {
				t.Errorf("bind %s: %v", name, err)
				return
			}
			b.Release(name)
		}(i)
	}
	wg.Wait()
	if b.FreeProcs() != 64 {
		t.Fatalf("free = %d after all released", b.FreeProcs())
	}
}
