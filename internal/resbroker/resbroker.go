// Package resbroker implements the MILAN ResourceBroker (Section 2): a
// registry of machines that dynamically associates resources with parallel
// computations according to user-specified policies, and notifies
// subscribers (such as the QoS arbitrator) when capacity changes so they
// can trigger renegotiation.
package resbroker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Resource is one machine contributed to the pool.
type Resource struct {
	ID    string
	Procs int
	// Speed is a relative performance factor (1.0 = baseline); policies
	// may weight allocations by it.
	Speed float64
	// Tags carry user attributes for policy matching (e.g. "arch", "site").
	Tags map[string]string
}

// Validate checks the resource description.
func (r Resource) Validate() error {
	if r.ID == "" {
		return errors.New("resbroker: resource needs an ID")
	}
	if r.Procs < 1 {
		return fmt.Errorf("resbroker: resource %s has %d procs", r.ID, r.Procs)
	}
	if r.Speed <= 0 {
		return fmt.Errorf("resbroker: resource %s has speed %v", r.ID, r.Speed)
	}
	return nil
}

// Share is a slice of one resource granted to a computation.
type Share struct {
	ResourceID string
	Procs      int
}

// Request asks the broker for capacity on behalf of a computation.
type Request struct {
	Computation string
	MinProcs    int
	MaxProcs    int // 0 means MinProcs
	// RequireTags restricts eligible resources to those carrying every
	// listed tag value.
	RequireTags map[string]string
}

// EventKind classifies capacity-change notifications.
type EventKind int

// Event kinds.
const (
	EventRegistered EventKind = iota
	EventDeregistered
	EventBound
	EventReleased
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRegistered:
		return "registered"
	case EventDeregistered:
		return "deregistered"
	case EventBound:
		return "bound"
	case EventReleased:
		return "released"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event describes one capacity change.
type Event struct {
	Kind        EventKind
	Resource    string
	Computation string
	// FreeProcs is the pool's total uncommitted capacity after the event;
	// the arbitrator uses it to decide whether renegotiation is worthwhile.
	FreeProcs int
}

// Policy decides how a request maps onto eligible resources.
type Policy interface {
	// Allocate returns shares covering at least req.MinProcs (and at most
	// req.MaxProcs) from the eligible resources, each annotated with its
	// free capacity.  It must not return shares exceeding free capacity.
	Allocate(req Request, eligible []Availability) ([]Share, error)
	// Name identifies the policy in errors and logs.
	Name() string
}

// Availability pairs a resource with its current free processor count.
type Availability struct {
	Resource Resource
	Free     int
}

// FirstFit packs the request onto the fewest resources in registration
// order — the default policy.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Allocate implements Policy.
func (FirstFit) Allocate(req Request, eligible []Availability) ([]Share, error) {
	want := req.MaxProcs
	if want < req.MinProcs {
		want = req.MinProcs
	}
	var shares []Share
	got := 0
	for _, a := range eligible {
		if got >= want {
			break
		}
		take := want - got
		if take > a.Free {
			take = a.Free
		}
		if take <= 0 {
			continue
		}
		shares = append(shares, Share{ResourceID: a.Resource.ID, Procs: take})
		got += take
	}
	if got < req.MinProcs {
		return nil, fmt.Errorf("resbroker: first-fit: %d procs available, need %d", got, req.MinProcs)
	}
	return shares, nil
}

// FastestFirst prefers resources with the highest speed factor, spreading
// the request over the quickest machines.
type FastestFirst struct{}

// Name implements Policy.
func (FastestFirst) Name() string { return "fastest-first" }

// Allocate implements Policy.
func (FastestFirst) Allocate(req Request, eligible []Availability) ([]Share, error) {
	sorted := append([]Availability(nil), eligible...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Resource.Speed > sorted[j].Resource.Speed
	})
	return FirstFit{}.Allocate(req, sorted)
}

// Binding records the shares currently granted to a computation.
type Binding struct {
	Computation string
	Shares      []Share
}

// Procs returns the binding's total processor count.
func (b Binding) Procs() int {
	total := 0
	for _, s := range b.Shares {
		total += s.Procs
	}
	return total
}

// Broker is the resource broker.  It is safe for concurrent use.
type Broker struct {
	mu        sync.Mutex
	policy    Policy
	resources map[string]Resource
	order     []string       // registration order for deterministic allocation
	committed map[string]int // per-resource procs committed
	bindings  map[string]Binding
	subs      []func(Event)
	// pending is the FIFO of events enqueued (under mu, in the same
	// critical section as the state change they describe) but not yet
	// delivered; delivering marks that some goroutine is draining it.
	// Together they guarantee subscribers observe events in state-change
	// order even when mutations race on different goroutines.
	pending    []Event
	delivering bool
}

// New returns a broker using the given policy (nil means FirstFit).
func New(policy Policy) *Broker {
	if policy == nil {
		policy = FirstFit{}
	}
	return &Broker{
		policy:    policy,
		resources: make(map[string]Resource),
		committed: make(map[string]int),
		bindings:  make(map[string]Binding),
	}
}

// Subscribe registers a capacity-change observer; it is called
// synchronously, in order, with every event, after the broker's lock is
// released (so observers may call back into the broker).
func (b *Broker) Subscribe(fn func(Event)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, fn)
}

// Register adds a resource to the pool.
func (b *Broker) Register(r Resource) error {
	if err := r.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	if _, dup := b.resources[r.ID]; dup {
		b.mu.Unlock()
		return fmt.Errorf("resbroker: resource %s already registered", r.ID)
	}
	b.resources[r.ID] = r
	b.order = append(b.order, r.ID)
	notify := b.notifyLocked(Event{Kind: EventRegistered, Resource: r.ID, FreeProcs: b.freeLocked()})
	b.mu.Unlock()
	notify()
	return nil
}

// Deregister removes a resource.  Removal fails while a computation still
// holds a share of it (the caller must release bindings first, mirroring
// the non-preemptive allocation model).
func (b *Broker) Deregister(id string) error {
	b.mu.Lock()
	if _, ok := b.resources[id]; !ok {
		b.mu.Unlock()
		return fmt.Errorf("resbroker: resource %s not registered", id)
	}
	if b.committed[id] > 0 {
		err := fmt.Errorf("resbroker: resource %s has %d committed procs", id, b.committed[id])
		b.mu.Unlock()
		return err
	}
	delete(b.resources, id)
	delete(b.committed, id)
	for i, oid := range b.order {
		if oid == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	notify := b.notifyLocked(Event{Kind: EventDeregistered, Resource: id, FreeProcs: b.freeLocked()})
	b.mu.Unlock()
	notify()
	return nil
}

// Bind allocates capacity for a computation under the broker's policy.
func (b *Broker) Bind(req Request) (Binding, error) {
	if req.Computation == "" {
		return Binding{}, errors.New("resbroker: request needs a computation name")
	}
	if req.MinProcs < 1 {
		return Binding{}, fmt.Errorf("resbroker: request needs MinProcs >= 1, got %d", req.MinProcs)
	}
	b.mu.Lock()
	if _, dup := b.bindings[req.Computation]; dup {
		b.mu.Unlock()
		return Binding{}, fmt.Errorf("resbroker: computation %s already bound", req.Computation)
	}
	var eligible []Availability
	for _, id := range b.order {
		r := b.resources[id]
		if !tagsMatch(r.Tags, req.RequireTags) {
			continue
		}
		free := r.Procs - b.committed[id]
		if free > 0 {
			eligible = append(eligible, Availability{Resource: r, Free: free})
		}
	}
	shares, err := b.policy.Allocate(req, eligible)
	if err != nil {
		b.mu.Unlock()
		return Binding{}, err
	}
	// Validate the policy's answer before committing.
	for _, s := range shares {
		r, ok := b.resources[s.ResourceID]
		if !ok {
			b.mu.Unlock()
			return Binding{}, fmt.Errorf("resbroker: policy %s allocated unknown resource %s", b.policy.Name(), s.ResourceID)
		}
		if s.Procs < 1 || b.committed[s.ResourceID]+s.Procs > r.Procs {
			b.mu.Unlock()
			return Binding{}, fmt.Errorf("resbroker: policy %s overcommitted resource %s", b.policy.Name(), s.ResourceID)
		}
	}
	for _, s := range shares {
		b.committed[s.ResourceID] += s.Procs
	}
	binding := Binding{Computation: req.Computation, Shares: shares}
	b.bindings[req.Computation] = binding
	notify := b.notifyLocked(Event{Kind: EventBound, Computation: req.Computation, FreeProcs: b.freeLocked()})
	b.mu.Unlock()
	notify()
	return binding, nil
}

// Release returns a computation's shares to the pool.
func (b *Broker) Release(computation string) error {
	b.mu.Lock()
	binding, ok := b.bindings[computation]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("resbroker: computation %s not bound", computation)
	}
	for _, s := range binding.Shares {
		b.committed[s.ResourceID] -= s.Procs
		if b.committed[s.ResourceID] < 0 {
			b.committed[s.ResourceID] = 0
		}
	}
	delete(b.bindings, computation)
	notify := b.notifyLocked(Event{Kind: EventReleased, Computation: computation, FreeProcs: b.freeLocked()})
	b.mu.Unlock()
	notify()
	return nil
}

// TotalProcs returns the pool's registered capacity.
func (b *Broker) TotalProcs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, r := range b.resources {
		total += r.Procs
	}
	return total
}

// FreeProcs returns the pool's uncommitted capacity.
func (b *Broker) FreeProcs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.freeLocked()
}

// Bindings returns a snapshot of current bindings, sorted by computation.
func (b *Broker) Bindings() []Binding {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Binding, 0, len(b.bindings))
	for _, bd := range b.bindings {
		out = append(out, bd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Computation < out[j].Computation })
	return out
}

func (b *Broker) freeLocked() int {
	free := 0
	for id, r := range b.resources {
		free += r.Procs - b.committed[id]
	}
	return free
}

// notifyLocked enqueues the event in the delivery FIFO — still inside the
// critical section that performed the state change, so queue order equals
// state-change order — and returns the drain entry point to be called
// after the lock is released, so observers may call back into the broker
// without deadlocking.
//
// Delivery ordering: the returned closure used to carry its event
// directly, which let two racing mutations deliver out of order (A
// commits, B commits, B's goroutine delivers first).  The FIFO plus the
// delivering flag close that race: exactly one goroutine drains at a
// time, in queue order, and reentrant broker calls from inside a
// subscriber simply enqueue — the active drainer picks them up next.
func (b *Broker) notifyLocked(ev Event) func() {
	b.pending = append(b.pending, ev)
	return b.drain
}

// drain delivers pending events in order.  If another goroutine is
// already draining (including the caller's own stack, when a subscriber
// reentered the broker), it returns immediately — the active drainer owns
// the queue until it is empty.
func (b *Broker) drain() {
	b.mu.Lock()
	if b.delivering {
		b.mu.Unlock()
		return
	}
	b.delivering = true
	for len(b.pending) > 0 {
		ev := b.pending[0]
		b.pending = b.pending[1:]
		subs := make([]func(Event), len(b.subs))
		copy(subs, b.subs)
		b.mu.Unlock()
		for _, fn := range subs {
			fn(ev)
		}
		b.mu.Lock()
	}
	b.delivering = false
	b.mu.Unlock()
}

func tagsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}
