package resbroker

import (
	"fmt"
	"sync"
	"testing"
)

// TestEventDeliveryOrderedUnderConcurrentBind pins the subscription
// contract: subscribers observe events in state-change order, even when
// the mutations race on many goroutines.  Each event carries the pool's
// FreeProcs snapshot taken inside the mutation's critical section, so the
// delivered sequence of FreeProcs values must replay exactly — every Bound
// event drops free capacity by exactly its binding's size relative to the
// previous event, every Released raises it back.  Before delivery was
// FIFO-queued this failed: two racing Binds could deliver their events in
// the opposite order to their commits.
func TestEventDeliveryOrderedUnderConcurrentBind(t *testing.T) {
	const procs = 64
	const workers = 16
	const rounds = 25

	b := New(nil)

	var evMu sync.Mutex
	var events []Event
	b.Subscribe(func(ev Event) {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
	})

	if err := b.Register(Resource{ID: "m0", Procs: procs, Speed: 1}); err != nil {
		t.Fatalf("register: %v", err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("c%d-%d", w, r)
				if _, err := b.Bind(Request{Computation: name, MinProcs: 1}); err != nil {
					t.Errorf("bind %s: %v", name, err)
					return
				}
				if err := b.Release(name); err != nil {
					t.Errorf("release %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	evMu.Lock()
	defer evMu.Unlock()

	want := 1 + 2*workers*rounds // register + (bind+release) per round
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
	if events[0].Kind != EventRegistered || events[0].FreeProcs != procs {
		t.Fatalf("first event = %+v, want registered with %d free", events[0], procs)
	}

	// Replay: every binding is 1 processor, so in delivery order each
	// Bound must read exactly one less free than the previous event and
	// each Released exactly one more.  Any reordering of two racing
	// mutations breaks the chain.
	free := procs
	for i, ev := range events[1:] {
		switch ev.Kind {
		case EventBound:
			free--
		case EventReleased:
			free++
		default:
			t.Fatalf("event %d: unexpected kind %v", i+1, ev.Kind)
		}
		if ev.FreeProcs != free {
			t.Fatalf("event %d (%v): FreeProcs=%d, replay expects %d — delivery out of state-change order",
				i+1, ev.Kind, ev.FreeProcs, free)
		}
	}
	if free != procs {
		t.Fatalf("replay ends at %d free, want %d", free, procs)
	}
}

// TestEventDeliveryReentrant pins that a subscriber may call back into the
// broker from inside its callback: the nested mutation's event is queued
// and delivered (in order) by the active drainer rather than deadlocking
// or recursing.
func TestEventDeliveryReentrant(t *testing.T) {
	b := New(nil)
	var kinds []EventKind
	b.Subscribe(func(ev Event) {
		kinds = append(kinds, ev.Kind)
		// On the first registration, bind from inside the callback.
		if ev.Kind == EventRegistered && ev.Resource == "m0" {
			if _, err := b.Bind(Request{Computation: "nested", MinProcs: 1}); err != nil {
				t.Errorf("nested bind: %v", err)
			}
		}
	})
	if err := b.Register(Resource{ID: "m0", Procs: 4, Speed: 1}); err != nil {
		t.Fatalf("register: %v", err)
	}
	wantKinds := []EventKind{EventRegistered, EventBound}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("got %d events %v, want %v", len(kinds), kinds, wantKinds)
	}
	for i, k := range wantKinds {
		if kinds[i] != k {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], k)
		}
	}
}
