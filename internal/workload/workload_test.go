package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"milan/internal/core"
)

func fig(alpha, laxity float64) FigureJob {
	return FigureJob{X: 16, T: 25, Alpha: alpha, Laxity: laxity}
}

func TestFigureJobValidate(t *testing.T) {
	if err := fig(0.25, 0.5).Validate(); err != nil {
		t.Errorf("paper defaults invalid: %v", err)
	}
	bad := []FigureJob{
		{X: 0, T: 25, Alpha: 0.25, Laxity: 0.5},
		{X: 16, T: 0, Alpha: 0.25, Laxity: 0.5},
		{X: 16, T: 25, Alpha: 0, Laxity: 0.5},
		{X: 16, T: 25, Alpha: 1.5, Laxity: 0.5},
		{X: 16, T: 25, Alpha: 0.25, Laxity: 1},
		{X: 16, T: 25, Alpha: 0.25, Laxity: -0.1},
		{X: 16, T: 25, Alpha: 0.3, Laxity: 0.5}, // 16*0.3 = 4.8 not integral
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: %+v accepted", i, p)
		}
	}
	// Every alpha from ValidAlphas must validate.
	for _, a := range ValidAlphas(16) {
		p := fig(a, 0.5)
		if err := p.Validate(); err != nil {
			t.Errorf("alpha %v: %v", a, err)
		}
	}
}

func TestFigureJobShapes(t *testing.T) {
	p := fig(0.25, 0.5)
	if got := p.ProcsB(); got != 4 {
		t.Errorf("ProcsB = %d, want 4", got)
	}
	if got := p.DurationB(); got != 100 {
		t.Errorf("DurationB = %v, want 100", got)
	}
	if got := p.Area(); got != 800 {
		t.Errorf("Area = %v, want 2*16*25 = 800", got)
	}
}

func TestFigureJobTasksConserveWork(t *testing.T) {
	for _, a := range ValidAlphas(16) {
		p := fig(a, 0.5)
		j := p.Job(1, 0, Tunable)
		for _, c := range j.Chains {
			if got := c.Area(); math.Abs(got-p.Area()) > 1e-9 {
				t.Errorf("alpha %v chain %s area = %v, want %v", a, c.Name, got, p.Area())
			}
		}
	}
}

func TestFigureJobDeadlineFormulas(t *testing.T) {
	p := fig(0.25, 0.5)
	r := 100.0
	d1, d2 := p.Deadlines(r)
	// max(t, t/alpha) = 100; (t + t/alpha) = 125; divided by (1-0.5) = 2x.
	if math.Abs(d1-(r+200)) > 1e-9 {
		t.Errorf("d1 = %v, want %v", d1, r+200)
	}
	if math.Abs(d2-(r+250)) > 1e-9 {
		t.Errorf("d2 = %v, want %v", d2, r+250)
	}
	// Zero laxity: deadlines equal the pure processing times.
	p0 := fig(0.25, 0)
	d1, d2 = p0.Deadlines(0)
	if math.Abs(d1-100) > 1e-9 || math.Abs(d2-125) > 1e-9 {
		t.Errorf("zero-laxity deadlines = (%v, %v), want (100, 125)", d1, d2)
	}
}

func TestFigureJobSystems(t *testing.T) {
	p := fig(0.25, 0.5)
	tun := p.Job(1, 0, Tunable)
	if len(tun.Chains) != 2 || !tun.Tunable() {
		t.Fatalf("tunable job chains = %d", len(tun.Chains))
	}
	s1 := p.Job(1, 0, Shape1)
	if len(s1.Chains) != 1 || s1.Chains[0].Tasks[0].Procs != 16 {
		t.Fatalf("shape1 first task = %+v", s1.Chains[0].Tasks[0])
	}
	s2 := p.Job(1, 0, Shape2)
	if len(s2.Chains) != 1 || s2.Chains[0].Tasks[0].Procs != 4 {
		t.Fatalf("shape2 first task = %+v", s2.Chains[0].Tasks[0])
	}
	// The tunable job's chains are exactly shape1 and shape2.
	if tun.Chains[0].Tasks[0].Procs != 16 || tun.Chains[1].Tasks[0].Procs != 4 {
		t.Error("tunable chain order: want shape1 then shape2")
	}
	// All generated jobs pass core validation.
	for _, j := range []core.Job{tun, s1, s2} {
		if err := j.Validate(); err != nil {
			t.Errorf("job %s: %v", j.Name, err)
		}
	}
}

func TestFigureJobAlphaOneShapesCoincide(t *testing.T) {
	p := fig(1, 0.5)
	j := p.Job(1, 0, Tunable)
	a, b := j.Chains[0], j.Chains[1]
	for i := range a.Tasks {
		if a.Tasks[i].Procs != b.Tasks[i].Procs || a.Tasks[i].Duration != b.Tasks[i].Duration {
			t.Fatalf("alpha=1: chains differ at task %d", i)
		}
	}
}

func TestValidAlphas(t *testing.T) {
	as := ValidAlphas(4)
	want := []float64{0.25, 0.5, 0.75, 1}
	if len(as) != len(want) {
		t.Fatalf("ValidAlphas(4) = %v", as)
	}
	for i := range want {
		if math.Abs(as[i]-want[i]) > 1e-12 {
			t.Errorf("alpha[%d] = %v, want %v", i, as[i], want[i])
		}
	}
}

func TestPoissonMean(t *testing.T) {
	p := NewPoisson(30, 42)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := sum / float64(n)
	if math.Abs(mean-30) > 0.5 {
		t.Errorf("empirical mean %v, want ~30", mean)
	}
}

func TestPoissonDeterministicBySeed(t *testing.T) {
	a, b := NewPoisson(10, 7), NewPoisson(10, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPoissonPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPoisson(0, 1)
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(2, 5, 1)
	for i := 0; i < 1000; i++ {
		g := u.Next()
		if g < 2 || g >= 5 {
			t.Fatalf("gap %v outside [2, 5)", g)
		}
	}
}

func TestUniformPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewUniform(5, 2, 1)
}

func TestFixedAndTrace(t *testing.T) {
	f := Fixed{Gap: 3}
	if f.Next() != 3 || f.Next() != 3 {
		t.Error("fixed gap varies")
	}
	tr := &Trace{Gaps: []float64{1, 2}}
	got := []float64{tr.Next(), tr.Next(), tr.Next()}
	if got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("trace = %v, want cycle [1 2 1]", got)
	}
}

func TestTracePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Trace{}).Next()
}

func TestStreamReleasesAreIncreasing(t *testing.T) {
	p := fig(0.25, 0.5)
	jobs := p.Stream(NewPoisson(10, 3), 500, Tunable)
	if len(jobs) != 500 {
		t.Fatalf("len = %d", len(jobs))
	}
	prev := 0.0
	for i, j := range jobs {
		if j.Release < prev {
			t.Fatalf("job %d released at %v before %v", i, j.Release, prev)
		}
		if j.ID != i {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		prev = j.Release
	}
}

// TestQuickGeneratedJobsAlwaysValid: for all valid parameters and systems,
// generated jobs pass core validation and both chains carry equal work.
func TestQuickGeneratedJobsAlwaysValid(t *testing.T) {
	f := func(aIdx uint8, laxRaw uint8, rRaw uint16, sysRaw uint8) bool {
		alphas := ValidAlphas(16)
		p := FigureJob{
			X:      16,
			T:      25,
			Alpha:  alphas[int(aIdx)%len(alphas)],
			Laxity: float64(laxRaw%95) / 100,
		}
		if p.Validate() != nil {
			return false
		}
		sys := Systems[int(sysRaw)%len(Systems)]
		j := p.Job(1, float64(rRaw), sys)
		if j.Validate() != nil {
			return false
		}
		for _, c := range j.Chains {
			if math.Abs(c.Area()-p.Area()) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomJobValid(t *testing.T) {
	rng := newTestRand(5)
	for i := 0; i < 100; i++ {
		j := RandomJob(rng, i, float64(i)*3, 8, 0.5)
		if err := j.Validate(); err != nil {
			t.Fatalf("random job %d invalid: %v", i, err)
		}
	}
}

// newTestRand returns a deterministic *rand.Rand for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestBurstyAlternatesPhases(t *testing.T) {
	b := NewBursty(1, 100, 10, 3)
	var gaps []float64
	for i := 0; i < 5000; i++ {
		g := b.Next()
		if g < 0 {
			t.Fatal("negative gap")
		}
		gaps = append(gaps, g)
	}
	// The mixture must contain both short-burst gaps and long idle gaps.
	short, long := 0, 0
	for _, g := range gaps {
		switch {
		case g < 5:
			short++
		case g > 50:
			long++
		}
	}
	if short < 1000 {
		t.Errorf("only %d short gaps: busy phase missing", short)
	}
	if long < 50 {
		t.Errorf("only %d long gaps: idle phase missing", long)
	}
	// Overall mean sits between the two phase means.
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if mean < 1 || mean > 100 {
		t.Errorf("mean gap %v outside (1, 100)", mean)
	}
}

func TestBurstyPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBursty(0, 1, 2, 1)
}
