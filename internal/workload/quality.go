package workload

import (
	"fmt"
	"math"

	"milan/internal/core"
)

// QualityJob generalizes the Figure-4 job to the situation Section 5.1
// points at but does not evaluate: "task chains of a tunable application
// are likely to have different overall resource requirements and output
// qualities: the issue then is of maximizing the achieved job quality."
//
// Each job offers a full-quality path (the Figure-4 shapes at their normal
// size) and a degraded path whose tasks are scaled down by DegradedScale in
// processor count (less total work) at output quality DegradedQuality.
type QualityJob struct {
	Base FigureJob
	// DegradedScale shrinks the degraded path's processor counts; must
	// leave at least one processor per task.  Typical: 0.5.
	DegradedScale float64
	// DegradedQuality is the degraded path's output quality in (0, 1).
	DegradedQuality float64
}

// Validate checks the parameters.
func (q QualityJob) Validate() error {
	if err := q.Base.Validate(); err != nil {
		return err
	}
	if !(q.DegradedScale > 0 && q.DegradedScale < 1) {
		return fmt.Errorf("workload: degraded scale %v must be in (0, 1)", q.DegradedScale)
	}
	if !(q.DegradedQuality > 0 && q.DegradedQuality < 1) {
		return fmt.Errorf("workload: degraded quality %v must be in (0, 1)", q.DegradedQuality)
	}
	if q.scaled(q.Base.X) < 1 || q.scaled(q.Base.ProcsB()) < 1 {
		return fmt.Errorf("workload: degraded scale %v leaves a task with no processors", q.DegradedScale)
	}
	return nil
}

func (q QualityJob) scaled(procs int) int {
	return int(math.Max(1, math.Round(float64(procs)*q.DegradedScale)))
}

// Job materializes a tunable job with four chains: the two full-quality
// Figure-4 shapes and their two degraded counterparts.
func (q QualityJob) Job(id int, release float64) core.Job {
	full := q.Base.Chains(release, Tunable)
	var chains []core.Chain
	for _, c := range full {
		c.Quality = 1
		for i := range c.Tasks {
			c.Tasks[i].Quality = 1
		}
		chains = append(chains, c)
	}
	for _, c := range full {
		d := core.Chain{Name: c.Name + "-degraded", Quality: q.DegradedQuality,
			Tasks: append([]core.Task(nil), c.Tasks...)}
		for i := range d.Tasks {
			d.Tasks[i].Procs = q.scaled(d.Tasks[i].Procs)
			d.Tasks[i].Quality = q.DegradedQuality
		}
		chains = append(chains, d)
	}
	return core.Job{
		ID:      id,
		Name:    fmt.Sprintf("quality-%d", id),
		Release: release,
		Chains:  chains,
	}
}

// DegradedArea returns the total work of one degraded path.
func (q QualityJob) DegradedArea() float64 {
	return float64(q.scaled(q.Base.X))*q.Base.T + float64(q.scaled(q.Base.ProcsB()))*q.Base.DurationB()
}
