// Package workload generates the synthetic task system of Section 5.3: a
// parameterizable tunable job (the paper's Figure 4) released by a Poisson
// arrival process, plus generic random job generators for stress tests.
//
// The parameterizable job consists of two chains of two tasks each.  Task A
// requires x processors for t time units; task B requires x*alpha processors
// for t/alpha time units (the same total work, a different shape).  Shape 1
// runs A then B; shape 2 runs B then A; the tunable job offers both.  For a
// job released at r with slack ratio `laxity`:
//
//	d1 = r + max(t, t/alpha)/(1-laxity)        (deadline of the first task)
//	d2 = r + (t + t/alpha)/(1-laxity)          (deadline of the second task)
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"milan/internal/core"
)

// System selects which task system a generated job belongs to.
type System int

const (
	// Tunable jobs carry both chains (shape 1 and shape 2).
	Tunable System = iota
	// Shape1 jobs run task A (x procs for t) before task B.
	Shape1
	// Shape2 jobs run task B (x*alpha procs for t/alpha) before task A.
	Shape2
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case Tunable:
		return "tunable"
	case Shape1:
		return "shape1"
	case Shape2:
		return "shape2"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems lists all three task systems in presentation order.
var Systems = []System{Tunable, Shape1, Shape2}

// FigureJob holds the parameters of the Figure-4 job.
type FigureJob struct {
	X      int     // processors of task A (the paper fixes X = 16)
	T      float64 // duration of task A (the paper fixes T = 25)
	Alpha  float64 // shape parameter in (0, 1]; X*Alpha must be integral
	Laxity float64 // slack ratio in [0, 1)
}

// Validate checks the parameter ranges and the integrality of X*Alpha.
func (p FigureJob) Validate() error {
	if p.X < 1 {
		return fmt.Errorf("workload: x = %d must be >= 1", p.X)
	}
	if p.T <= 0 {
		return fmt.Errorf("workload: t = %v must be positive", p.T)
	}
	if !(p.Alpha > 0 && p.Alpha <= 1) {
		return fmt.Errorf("workload: alpha = %v must be in (0, 1]", p.Alpha)
	}
	if p.Laxity < 0 || p.Laxity >= 1 {
		return fmt.Errorf("workload: laxity = %v must be in [0, 1)", p.Laxity)
	}
	xa := float64(p.X) * p.Alpha
	if math.Abs(xa-math.Round(xa)) > 1e-9 || math.Round(xa) < 1 {
		return fmt.Errorf("workload: x*alpha = %v must be a positive integer", xa)
	}
	return nil
}

// ProcsB returns task B's processor count, x*alpha.
func (p FigureJob) ProcsB() int { return int(math.Round(float64(p.X) * p.Alpha)) }

// DurationB returns task B's duration, t/alpha.
func (p FigureJob) DurationB() float64 { return p.T / p.Alpha }

// Deadlines returns (d1, d2) for a job released at r.
func (p FigureJob) Deadlines(r float64) (d1, d2 float64) {
	tb := p.DurationB()
	d1 = r + math.Max(p.T, tb)/(1-p.Laxity)
	d2 = r + (p.T+tb)/(1-p.Laxity)
	return d1, d2
}

// Chains returns the chain set of a job released at r for the given system.
func (p FigureJob) Chains(r float64, sys System) []core.Chain {
	d1, d2 := p.Deadlines(r)
	taskA := func(dl float64) core.Task {
		return core.Task{Name: "A", Procs: p.X, Duration: p.T, Deadline: dl, Quality: 1}
	}
	taskB := func(dl float64) core.Task {
		return core.Task{Name: "B", Procs: p.ProcsB(), Duration: p.DurationB(), Deadline: dl, Quality: 1}
	}
	shape1 := core.Chain{Name: "shape1", Quality: 1, Tasks: []core.Task{taskA(d1), taskB(d2)}}
	shape2 := core.Chain{Name: "shape2", Quality: 1, Tasks: []core.Task{taskB(d1), taskA(d2)}}
	switch sys {
	case Shape1:
		return []core.Chain{shape1}
	case Shape2:
		return []core.Chain{shape2}
	default:
		return []core.Chain{shape1, shape2}
	}
}

// Job materializes a job with the given id and release time.
func (p FigureJob) Job(id int, release float64, sys System) core.Job {
	return core.Job{
		ID:      id,
		Name:    fmt.Sprintf("fig4-%s-%d", sys, id),
		Release: release,
		Chains:  p.Chains(release, sys),
	}
}

// Area returns the total work of one job (both tasks), 2*x*t.
func (p FigureJob) Area() float64 { return 2 * float64(p.X) * p.T }

// ValidAlphas returns every alpha in (0, 1] for which x*alpha is integral,
// ascending — the sweep domain of Figure 5(d).
func ValidAlphas(x int) []float64 {
	var out []float64
	for k := 1; k <= x; k++ {
		out = append(out, float64(k)/float64(x))
	}
	return out
}

// Arrivals produces job release times.
type Arrivals interface {
	// Next returns the next interarrival gap (> 0).
	Next() float64
}

// Poisson generates exponentially distributed interarrival gaps with the
// given mean (a Poisson arrival process, as in the paper's evaluation).
type Poisson struct {
	Mean float64
	Rng  *rand.Rand
}

// NewPoisson returns a Poisson arrival process with the given mean gap and
// seed.
func NewPoisson(mean float64, seed int64) *Poisson {
	if mean <= 0 {
		panic(fmt.Sprintf("workload: poisson mean %v must be positive", mean))
	}
	return &Poisson{Mean: mean, Rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next exponential gap.
func (p *Poisson) Next() float64 { return p.Rng.ExpFloat64() * p.Mean }

// Uniform generates gaps uniform in [Lo, Hi) — a low-variance alternative
// used by tests and the video-pipeline example (fixed frame rate with
// jitter).
type Uniform struct {
	Lo, Hi float64
	Rng    *rand.Rand
}

// NewUniform returns a uniform arrival process.
func NewUniform(lo, hi float64, seed int64) *Uniform {
	if lo < 0 || hi <= lo {
		panic(fmt.Sprintf("workload: bad uniform range [%v, %v)", lo, hi))
	}
	return &Uniform{Lo: lo, Hi: hi, Rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next uniform gap.
func (u *Uniform) Next() float64 { return u.Lo + u.Rng.Float64()*(u.Hi-u.Lo) }

// Bursty is a two-phase Markov-modulated arrival process: gaps alternate
// between a busy phase (short exponential gaps) and an idle phase (long
// ones), with geometric phase lengths.  Live workloads are bursty, not
// Poisson; tunability should help most inside the bursts.
type Bursty struct {
	BusyMean  float64 // mean gap inside a burst
	IdleMean  float64 // mean gap between bursts
	MeanPhase float64 // mean arrivals per phase (geometric)
	Rng       *rand.Rand
	inBusy    bool
	phaseLeft int
}

// NewBursty returns a bursty arrival process.
func NewBursty(busyMean, idleMean, meanPhase float64, seed int64) *Bursty {
	if busyMean <= 0 || idleMean <= 0 || meanPhase < 1 {
		panic(fmt.Sprintf("workload: bad bursty params (%v, %v, %v)", busyMean, idleMean, meanPhase))
	}
	return &Bursty{
		BusyMean:  busyMean,
		IdleMean:  idleMean,
		MeanPhase: meanPhase,
		Rng:       rand.New(rand.NewSource(seed)),
		inBusy:    true,
	}
}

// Next returns the next gap, advancing phases geometrically.
func (b *Bursty) Next() float64 {
	if b.phaseLeft <= 0 {
		b.inBusy = !b.inBusy
		b.phaseLeft = 1 + int(b.Rng.ExpFloat64()*(b.MeanPhase-1))
	}
	b.phaseLeft--
	mean := b.BusyMean
	if !b.inBusy {
		mean = b.IdleMean
	}
	return b.Rng.ExpFloat64() * mean
}

// Fixed generates constant gaps (deterministic frame cadence).
type Fixed struct{ Gap float64 }

// Next returns the constant gap.
func (f Fixed) Next() float64 { return f.Gap }

// Trace replays a recorded gap sequence, then repeats it.
type Trace struct {
	Gaps []float64
	i    int
}

// Next returns the next recorded gap, cycling at the end.
func (t *Trace) Next() float64 {
	if len(t.Gaps) == 0 {
		panic("workload: empty trace")
	}
	g := t.Gaps[t.i]
	t.i = (t.i + 1) % len(t.Gaps)
	return g
}

// Stream materializes n jobs of the given system with gaps drawn from a;
// the first job is released after one gap from time 0.
func (p FigureJob) Stream(a Arrivals, n int, sys System) []core.Job {
	jobs := make([]core.Job, n)
	r := 0.0
	for i := range jobs {
		r += a.Next()
		jobs[i] = p.Job(i, r, sys)
	}
	return jobs
}

// RandomJob builds an arbitrary feasible-by-construction random job for
// stress and property tests: 1-3 tasks per chain, 1-2 chains, deadlines with
// the given laxity.
func RandomJob(rng *rand.Rand, id int, release float64, maxProcs int, laxity float64) core.Job {
	nChains := 1 + rng.Intn(2)
	chains := make([]core.Chain, nChains)
	for c := range chains {
		nTasks := 1 + rng.Intn(3)
		tasks := make([]core.Task, nTasks)
		cum := 0.0
		for i := range tasks {
			dur := 1 + rng.Float64()*10
			cum += dur
			tasks[i] = core.Task{
				Name:     fmt.Sprintf("j%d.c%d.t%d", id, c, i),
				Procs:    1 + rng.Intn(maxProcs),
				Duration: dur,
				Deadline: release + cum/(1-laxity),
			}
		}
		chains[c] = core.Chain{Name: fmt.Sprintf("chain%d", c), Tasks: tasks}
	}
	return core.Job{ID: id, Release: release, Chains: chains}
}

// TenantCycle deterministically assigns accounting identity (tenant and
// priority class) to a stream of arrivals: job i bills to tenant
// Tenants[i mod len] at class (i / len) mod Classes.  Round-robin keeps
// multi-tenant runs reproducible — the same seed and arrival process
// always yield the same per-tenant ledger — and spreads classes across
// tenants so every (tenant, class) cell sees traffic.
type TenantCycle struct {
	Tenants []string
	Classes int // priority classes per tenant; <= 1 means a single class 0
}

// Assign returns the tenant and class for arrival id.  A nil cycle or an
// empty tenant list assigns the unattributed identity ("", 0).
func (tc *TenantCycle) Assign(id int) (tenant string, class int) {
	if tc == nil || len(tc.Tenants) == 0 {
		return "", 0
	}
	if id < 0 {
		id = -id
	}
	tenant = tc.Tenants[id%len(tc.Tenants)]
	if tc.Classes > 1 {
		class = (id / len(tc.Tenants)) % tc.Classes
	}
	return tenant, class
}

// SkewedTenants assigns tenants with a deterministic hot spot: HotPer of
// every Per consecutive arrivals bill to the Hot tenant, the rest cycle
// through Cold.  This is the identity skew an arrival storm needs — one
// tenant dominating the stream — while staying a pure function of the
// arrival id, so campaign runs replay bit-identically from their seed.
type SkewedTenants struct {
	Hot     string
	Cold    []string
	HotPer  int // arrivals per window billed to Hot (default 3)
	Per     int // window length (default 4)
	Classes int
}

// Assign returns the tenant and class for arrival id.
func (s *SkewedTenants) Assign(id int) (tenant string, class int) {
	if s == nil {
		return "", 0
	}
	if id < 0 {
		id = -id
	}
	per, hot := s.Per, s.HotPer
	if per < 1 {
		per = 4
	}
	if hot < 1 {
		hot = 3
	}
	if hot > per {
		hot = per
	}
	if s.Classes > 1 {
		class = id % s.Classes
	}
	pos := id % per
	if pos < hot || len(s.Cold) == 0 {
		return s.Hot, class
	}
	cold := (id/per)*(per-hot) + (pos - hot)
	return s.Cold[cold%len(s.Cold)], class
}
