package workload

import (
	"math"
	"testing"
)

func qjob() QualityJob {
	return QualityJob{
		Base:            FigureJob{X: 16, T: 25, Alpha: 0.25, Laxity: 0.5},
		DegradedScale:   0.5,
		DegradedQuality: 0.7,
	}
}

func TestQualityJobValidate(t *testing.T) {
	if err := qjob().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := qjob()
	bad.DegradedScale = 0
	if bad.Validate() == nil {
		t.Error("scale 0 accepted")
	}
	bad = qjob()
	bad.DegradedScale = 1
	if bad.Validate() == nil {
		t.Error("scale 1 accepted (not degraded)")
	}
	bad = qjob()
	bad.DegradedQuality = 1
	if bad.Validate() == nil {
		t.Error("quality 1 accepted (not degraded)")
	}
	bad = qjob()
	bad.Base.Alpha = 0.3
	if bad.Validate() == nil {
		t.Error("invalid base accepted")
	}
}

func TestQualityJobChains(t *testing.T) {
	j := qjob().Job(3, 100)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Chains) != 4 {
		t.Fatalf("chains = %d, want 4 (two shapes x two quality levels)", len(j.Chains))
	}
	// First two chains: full quality, full size.
	for i := 0; i < 2; i++ {
		if j.Chains[i].Quality != 1 {
			t.Errorf("chain %d quality = %v", i, j.Chains[i].Quality)
		}
	}
	// Last two: degraded quality, half the processors, hence half the work.
	for i := 2; i < 4; i++ {
		c := j.Chains[i]
		if c.Quality != 0.7 {
			t.Errorf("chain %d quality = %v", i, c.Quality)
		}
		full := j.Chains[i-2]
		for k := range c.Tasks {
			if c.Tasks[k].Procs != full.Tasks[k].Procs/2 {
				t.Errorf("chain %d task %d procs = %d, want %d", i, k, c.Tasks[k].Procs, full.Tasks[k].Procs/2)
			}
			if c.Tasks[k].Duration != full.Tasks[k].Duration {
				t.Errorf("chain %d task %d duration changed", i, k)
			}
			if c.Tasks[k].Deadline != full.Tasks[k].Deadline {
				t.Errorf("chain %d task %d deadline changed", i, k)
			}
		}
		if got, want := c.Area(), full.Area()/2; math.Abs(got-want) > 1e-9 {
			t.Errorf("chain %d area = %v, want %v", i, got, want)
		}
	}
	if got, want := qjob().DegradedArea(), 400.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("DegradedArea = %v, want %v", got, want)
	}
}

func TestQualityJobScaledNeverZeroProcs(t *testing.T) {
	q := QualityJob{
		Base:            FigureJob{X: 16, T: 25, Alpha: 0.0625, Laxity: 0.5}, // task B has 1 proc
		DegradedScale:   0.5,
		DegradedQuality: 0.7,
	}
	j := q.Job(1, 0)
	for _, c := range j.Chains {
		for _, task := range c.Tasks {
			if task.Procs < 1 {
				t.Fatalf("task with %d procs", task.Procs)
			}
		}
	}
}
