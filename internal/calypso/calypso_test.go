package calypso

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newRT(t *testing.T, workers int, faults *FaultPlan) *Runtime {
	t.Helper()
	rt, err := New(Config{Workers: workers, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Fatal("0-worker runtime created")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("x"); ok {
		t.Fatal("empty store has x")
	}
	s.Set("x", 42)
	v, ok := s.Get("x")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = (%v, %v)", v, ok)
	}
	if got, ok := GetAs[int](s, "x"); !ok || got != 42 {
		t.Fatalf("GetAs[int] = (%v, %v)", got, ok)
	}
	if _, ok := GetAs[string](s, "x"); ok {
		t.Fatal("GetAs with wrong type succeeded")
	}
	if _, ok := GetAs[int](s, "missing"); ok {
		t.Fatal("GetAs on missing key succeeded")
	}
	s.Set("y", "hello")
	if s.Len() != 2 || len(s.Keys()) != 2 {
		t.Fatalf("Len = %d, Keys = %v", s.Len(), s.Keys())
	}
	s.Delete("x")
	if _, ok := s.Get("x"); ok {
		t.Fatal("deleted key still present")
	}
}

// TestParallelSum: the canonical Calypso computation — partition an array
// over width tasks, each writes its partial result, sequential code reduces.
func TestParallelSum(t *testing.T) {
	rt := newRT(t, 4, nil)
	data := make([]int, 1000)
	total := 0
	for i := range data {
		data[i] = i * 3
		total += data[i]
	}
	rt.Store().Set("data", data)

	const width = 8
	err := rt.Parallel(width, func(ctx *TaskCtx, w, n int) error {
		d, _ := ReadAs[[]int](ctx, "data")
		chunk := (len(d) + w - 1) / w
		lo, hi := n*chunk, (n+1)*chunk
		if hi > len(d) {
			hi = len(d)
		}
		sum := 0
		for _, v := range d[lo:hi] {
			sum += v
		}
		ctx.Write(fmt.Sprintf("partial.%d", n), sum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for n := 0; n < width; n++ {
		p, ok := GetAs[int](rt.Store(), fmt.Sprintf("partial.%d", n))
		if !ok {
			t.Fatalf("partial %d missing", n)
		}
		got += p
	}
	if got != total {
		t.Fatalf("sum = %d, want %d", got, total)
	}
	m := rt.Metrics()
	if m.Steps != 1 || m.Tasks != width {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestCREWReadsSeePreStepState: a task's writes are invisible within the
// step, both to other tasks and to its own reads.
func TestCREWReadsSeePreStepState(t *testing.T) {
	rt := newRT(t, 4, nil)
	rt.Store().Set("v", 1)
	err := rt.Parallel(8, func(ctx *TaskCtx, w, n int) error {
		v, ok := ReadAs[int](ctx, "v")
		if !ok || v != 1 {
			return fmt.Errorf("task %d read v = %v (want pre-step value 1)", n, v)
		}
		if n == 0 {
			ctx.Write("v", 2)
		}
		// Even the writer still sees the snapshot.
		if again, _ := ReadAs[int](ctx, "v"); again != 1 {
			return fmt.Errorf("task %d read-own-write leaked: %v", n, again)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := GetAs[int](rt.Store(), "v"); v != 2 {
		t.Fatalf("v after step = %v, want 2", v)
	}
}

func TestExclusiveWriteConflictDetected(t *testing.T) {
	rt := newRT(t, 4, nil)
	err := rt.Parallel(2, func(ctx *TaskCtx, w, n int) error {
		ctx.Write("same", n)
		return nil
	})
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	// Conflicting steps must not corrupt the store.
	if _, ok := rt.Store().Get("same"); ok {
		t.Fatal("conflicted write leaked into store")
	}
}

func TestMultipleRoutinesInOneStep(t *testing.T) {
	rt := newRT(t, 4, nil)
	step := rt.ParBegin()
	step.Routine(3, func(ctx *TaskCtx, w, n int) error {
		if w != 3 {
			return fmt.Errorf("width = %d, want 3", w)
		}
		ctx.Write(fmt.Sprintf("a.%d", n), n)
		return nil
	})
	step.Routine(2, func(ctx *TaskCtx, w, n int) error {
		if w != 2 {
			return fmt.Errorf("width = %d, want 2", w)
		}
		ctx.Write(fmt.Sprintf("b.%d", n), n*10)
		return nil
	})
	if err := step.End(); err != nil {
		t.Fatal(err)
	}
	if rt.Store().Len() != 5 {
		t.Fatalf("store has %d keys, want 5", rt.Store().Len())
	}
	if m := rt.Metrics(); m.Tasks != 5 {
		t.Fatalf("tasks = %d, want 5", m.Tasks)
	}
}

func TestStepBuildErrors(t *testing.T) {
	rt := newRT(t, 2, nil)
	if err := rt.ParBegin().End(); err == nil {
		t.Error("empty step executed")
	}
	if err := rt.ParBegin().Routine(0, func(*TaskCtx, int, int) error { return nil }).End(); err == nil {
		t.Error("zero-width routine accepted")
	}
	if err := rt.ParBegin().Routine(1, nil).End(); err == nil {
		t.Error("nil routine accepted")
	}
	s := rt.ParBegin().Routine(1, func(*TaskCtx, int, int) error { return nil })
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err == nil {
		t.Error("step ended twice")
	}
}

func TestRoutineErrorAbortsStep(t *testing.T) {
	rt := newRT(t, 4, nil)
	boom := errors.New("boom")
	err := rt.Parallel(4, func(ctx *TaskCtx, w, n int) error {
		if n == 2 {
			return boom
		}
		ctx.Write(fmt.Sprintf("k%d", n), 1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if rt.Store().Len() != 0 {
		t.Fatal("failed step leaked writes")
	}
}

func TestPanicBecomesError(t *testing.T) {
	rt := newRT(t, 2, nil)
	err := rt.Parallel(2, func(ctx *TaskCtx, w, n int) error {
		if n == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", err)
	}
}

// TestEagerSchedulingDuplicates: with far more workers than tasks and a
// slow straggler, idle workers re-execute the straggler and the step
// completes with exactly-once commit semantics.
func TestEagerSchedulingDuplicates(t *testing.T) {
	rt := newRT(t, 8, nil)
	var executions int32
	start := time.Now()
	err := rt.Parallel(2, func(ctx *TaskCtx, w, n int) error {
		c := atomic.AddInt32(&executions, 1)
		// The first execution of task 1 stalls; re-executions return
		// immediately, so the step finishes long before the stall ends.
		if n == 1 && c <= 2 {
			time.Sleep(300 * time.Millisecond)
		}
		ctx.Write(fmt.Sprintf("done.%d", n), int(c))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 290*time.Millisecond {
		t.Errorf("step took %v: eager scheduling must finish before the 300ms straggler", elapsed)
	}
	m := rt.Metrics()
	if m.Executions <= m.Tasks {
		t.Fatalf("metrics = %+v: expected duplicated executions", m)
	}
	// Exactly-once: both keys present exactly once each (map semantics),
	// and the committed value is from some single execution.
	for n := 0; n < 2; n++ {
		if _, ok := rt.Store().Get(fmt.Sprintf("done.%d", n)); !ok {
			t.Fatalf("task %d result missing", n)
		}
	}
}

// TestCrashMaskingCompletesStep: workers crash mid-step; eager scheduling
// finishes the work on the survivors.
func TestCrashMaskingCompletesStep(t *testing.T) {
	faults := &FaultPlan{CrashProb: 0.3, MaxCrashes: 6, Seed: 42}
	rt := newRT(t, 8, faults)
	const width = 32
	err := rt.Parallel(width, func(ctx *TaskCtx, w, n int) error {
		ctx.Write(fmt.Sprintf("r.%d", n), n*n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < width; n++ {
		v, ok := GetAs[int](rt.Store(), fmt.Sprintf("r.%d", n))
		if !ok || v != n*n {
			t.Fatalf("r.%d = (%v, %v), want %d", n, v, ok, n*n)
		}
	}
	m := rt.Metrics()
	if m.Crashes == 0 {
		t.Fatal("fault plan injected no crashes (seed-dependent; adjust seed)")
	}
	if rt.Alive() != 8-m.Crashes {
		t.Fatalf("alive = %d, want %d", rt.Alive(), 8-m.Crashes)
	}
}

// TestTransientFaultMasking: abandoned executions are retried until they
// commit.
func TestTransientFaultMasking(t *testing.T) {
	faults := &FaultPlan{TransientProb: 0.4, Seed: 7}
	rt := newRT(t, 4, faults)
	const width = 40
	err := rt.Parallel(width, func(ctx *TaskCtx, w, n int) error {
		ctx.Write(fmt.Sprintf("t.%d", n), 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.Transients == 0 {
		t.Fatal("no transient faults injected (seed-dependent; adjust seed)")
	}
	if rt.Store().Len() != width {
		t.Fatalf("store has %d keys, want %d", rt.Store().Len(), width)
	}
}

// TestAllWorkersCrashFailsStep: when the fault plan is allowed to kill
// every worker, the step reports ErrNoWorkers instead of hanging.
func TestAllWorkersCrashFailsStep(t *testing.T) {
	faults := &FaultPlan{CrashProb: 1, MaxCrashes: 4, Seed: 1}
	rt := newRT(t, 4, faults)
	err := rt.Parallel(16, func(ctx *TaskCtx, w, n int) error {
		ctx.Write("x", 1)
		return nil
	})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	// The runtime is permanently dead.
	if rt.Alive() != 0 {
		t.Fatalf("alive = %d, want 0", rt.Alive())
	}
	if err := rt.Parallel(1, func(*TaskCtx, int, int) error { return nil }); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("next step err = %v, want ErrNoWorkers", err)
	}
}

// TestCrashesPersistAcrossSteps: a worker lost in step 1 is not back for
// step 2.
func TestCrashesPersistAcrossSteps(t *testing.T) {
	faults := &FaultPlan{CrashProb: 1, MaxCrashes: 3, Seed: 5}
	rt := newRT(t, 4, faults)
	if err := rt.Parallel(8, func(ctx *TaskCtx, w, n int) error {
		ctx.Write(fmt.Sprintf("a.%d", n), n)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Alive() != 1 {
		t.Fatalf("alive after step 1 = %d, want 1 (3 crashes allowed)", rt.Alive())
	}
	// Step 2 still completes on the lone survivor.
	if err := rt.Parallel(4, func(ctx *TaskCtx, w, n int) error {
		ctx.Write(fmt.Sprintf("b.%d", n), n)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Store().Len() != 12 {
		t.Fatalf("store len = %d, want 12", rt.Store().Len())
	}
}

// TestDuplicateExecutionsCommitOnce: force heavy duplication and verify a
// counter incremented through the store (not the ctx) observes every
// execution, while committed state reflects exactly one.
func TestDuplicateExecutionsCommitOnce(t *testing.T) {
	rt := newRT(t, 16, nil)
	var sideEffects int32
	err := rt.Parallel(2, func(ctx *TaskCtx, w, n int) error {
		atomic.AddInt32(&sideEffects, 1) // deliberately non-idempotent side effect
		if atomic.LoadInt32(&sideEffects) < 4 {
			time.Sleep(20 * time.Millisecond) // invite duplication
		}
		ctx.Write(fmt.Sprintf("k.%d", n), n+100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		v, _ := GetAs[int](rt.Store(), fmt.Sprintf("k.%d", n))
		if v != n+100 {
			t.Fatalf("k.%d = %v", n, v)
		}
	}
	m := rt.Metrics()
	if m.Executions < m.Tasks {
		t.Fatalf("metrics = %+v: fewer executions than tasks", m)
	}
	// The non-idempotent side effect ran more than once per task (that is
	// exactly why Calypso routines must confine effects to ctx writes),
	// yet the committed state reflects a single execution per task.
	if atomic.LoadInt32(&sideEffects) < 2 {
		t.Fatalf("side effects = %d", sideEffects)
	}
}

// TestQuickParallelSumMatchesSerial: property — under random fault plans
// the parallel computation always produces the serial answer.
func TestQuickParallelSumMatchesSerial(t *testing.T) {
	f := func(seed int64, nRaw, widthRaw, workerRaw uint8, crash, transient bool) bool {
		workers := 2 + int(workerRaw%6)
		width := 1 + int(widthRaw%12)
		n := 1 + int(nRaw)
		plan := &FaultPlan{Seed: seed}
		if crash {
			plan.CrashProb = 0.2
			plan.MaxCrashes = workers - 1
		}
		if transient {
			plan.TransientProb = 0.3
		}
		rt, err := New(Config{Workers: workers, Faults: plan})
		if err != nil {
			return false
		}
		data := make([]int, n)
		want := 0
		for i := range data {
			data[i] = i ^ int(seed)
			want += data[i]
		}
		rt.Store().Set("data", data)
		err = rt.Parallel(width, func(ctx *TaskCtx, w, num int) error {
			d, _ := ReadAs[[]int](ctx, "data")
			sum := 0
			for i := num; i < len(d); i += w {
				sum += d[i]
			}
			ctx.Write(fmt.Sprintf("p.%d", num), sum)
			return nil
		})
		if err != nil {
			return false
		}
		got := 0
		for i := 0; i < width; i++ {
			p, ok := GetAs[int](rt.Store(), fmt.Sprintf("p.%d", i))
			if !ok {
				return false
			}
			got += p
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultPlanDecideRespectsMaxCrashes(t *testing.T) {
	plan := &FaultPlan{CrashProb: 1, MaxCrashes: 2, Seed: 3}
	plan.init()
	crashes := 0
	for i := 0; i < 10; i++ {
		if plan.decide(8) == outcomeCrash {
			crashes++
		}
	}
	if crashes != 2 {
		t.Fatalf("crashes = %d, want 2 (capped)", crashes)
	}
	if plan.Crashes() != 2 {
		t.Fatalf("Crashes() = %d", plan.Crashes())
	}
	var nilPlan *FaultPlan
	if nilPlan.decide(4) != outcomeOK {
		t.Fatal("nil plan injected a fault")
	}
}

func TestSlowFaultDelays(t *testing.T) {
	plan := &FaultPlan{SlowProb: 1, SlowDelay: 30 * time.Millisecond, Seed: 1}
	rt := newRT(t, 1, plan)
	start := time.Now()
	if err := rt.Parallel(1, func(ctx *TaskCtx, w, n int) error {
		ctx.Write("x", 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("slow fault did not delay execution")
	}
}
