package calypso

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// hookLog captures TraceHooks callbacks under a mutex (workers call
// TaskExec and WorkerFault concurrently).
type hookLog struct {
	mu         sync.Mutex
	starts     []int // tasks per step
	dones      []int // step ids
	execs      int
	committed  int
	faults     map[string]int
	lastStepID int
}

func (l *hookLog) hooks() TraceHooks {
	return TraceHooks{
		StepStart: func(step, tasks int) {
			l.mu.Lock()
			l.starts = append(l.starts, tasks)
			l.lastStepID = step
			l.mu.Unlock()
		},
		StepDone: func(step int, d time.Duration, err error) {
			l.mu.Lock()
			l.dones = append(l.dones, step)
			l.mu.Unlock()
		},
		TaskExec: func(step, worker, task, attempt int, start time.Time, d time.Duration, committed bool) {
			l.mu.Lock()
			l.execs++
			if committed {
				l.committed++
			}
			l.mu.Unlock()
		},
		WorkerFault: func(step, worker int, kind string) {
			l.mu.Lock()
			if l.faults == nil {
				l.faults = map[string]int{}
			}
			l.faults[kind]++
			l.mu.Unlock()
		},
	}
}

func TestTraceHooksFireOnCleanRun(t *testing.T) {
	var log hookLog
	rt, err := New(Config{Workers: 3, Hooks: log.hooks()})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if err := rt.Parallel(5, func(ctx *TaskCtx, width, number int) error {
			ctx.Write(fmt.Sprintf("s%dk%d", s, number), number)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.starts) != 2 || len(log.dones) != 2 {
		t.Fatalf("starts/dones = %v/%v, want 2 each", log.starts, log.dones)
	}
	if log.starts[0] != 5 || log.starts[1] != 5 {
		t.Fatalf("task counts = %v, want [5 5]", log.starts)
	}
	if log.dones[0] == log.dones[1] {
		t.Fatalf("step ids not unique: %v", log.dones)
	}
	if log.execs < 10 {
		t.Fatalf("execs = %d, want >= 10", log.execs)
	}
	// Exactly-once semantics: one commit per task.
	if log.committed != 10 {
		t.Fatalf("committed = %d, want 10", log.committed)
	}
	if len(log.faults) != 0 {
		t.Fatalf("faults on a clean run: %v", log.faults)
	}
}

func TestTraceHooksObserveFaults(t *testing.T) {
	var log hookLog
	rt, err := New(Config{
		Workers: 4,
		Faults:  &FaultPlan{TransientProb: 0.5, CrashProb: 0.1, MaxCrashes: 2, Seed: 3},
		Hooks:   log.hooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(16, func(ctx *TaskCtx, width, number int) error {
		ctx.Write(fmt.Sprintf("k%d", number), number)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if log.committed != 16 {
		t.Fatalf("committed = %d, want 16 (exactly once despite faults)", log.committed)
	}
	// TaskExec fires only for executions that reach the commit race;
	// faulted attempts surface through WorkerFault instead.
	if log.execs < 16 {
		t.Fatalf("execs = %d, want >= 16", log.execs)
	}
	var total int
	for _, n := range log.faults {
		total += n
	}
	if total == 0 {
		t.Fatalf("no faults recorded under injection: %v", log.faults)
	}
	m := rt.Metrics()
	if int(m.Transients) != log.faults["transient"] {
		t.Fatalf("transient hook count %d != metrics %d", log.faults["transient"], m.Transients)
	}
	if int(m.Crashes) != log.faults["crash"] {
		t.Fatalf("crash hook count %d != metrics %d", log.faults["crash"], m.Crashes)
	}
}

func TestZeroHooksDisableObservation(t *testing.T) {
	rt, err := New(Config{Workers: 2}) // zero-value Hooks
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(3, func(ctx *TaskCtx, width, number int) error {
		ctx.Write(fmt.Sprintf("k%d", number), number)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
