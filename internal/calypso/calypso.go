// Package calypso reimplements the execution model of the Calypso parallel
// programming system (Section 2 of the paper) on goroutines: computations
// are sequential programs with embedded parallel steps; each step consists
// of routines expanded into tasks that run with CREW (concurrent-read,
// exclusive-write) semantics against a shared store, with updates visible
// only at the end of the step.
//
// Two execution techniques give the fault-free virtual machine:
//
//   - Two-phase idempotent execution: a task's writes are buffered
//     privately and committed atomically exactly once, so a task may be
//     executed multiple times (including partial executions) with
//     exactly-once semantics.
//   - Eager scheduling: idle workers re-execute not-yet-committed tasks, so
//     the step completes as long as at least one worker survives, masking
//     worker crashes and stragglers.
//
// Workers model processors; fault injection (crashes, transient task
// failures, slowdowns) exercises the masking machinery.
package calypso

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Value is what the shared store holds.  Values must be treated as
// immutable once written: tasks communicate only through step-boundary
// updates.
type Value interface{}

// Store is the Calypso shared memory: a name -> value map with updates
// applied at parallel-step boundaries.  Between steps it may be read and
// written freely by the sequential part of the program.
type Store struct {
	mu   sync.RWMutex
	data map[string]Value
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{data: make(map[string]Value)} }

// Get reads a shared variable.
func (s *Store) Get(key string) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Set writes a shared variable (sequential code only; within a parallel
// step use TaskCtx.Write).
func (s *Store) Set(key string, v Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = v
}

// Delete removes a shared variable.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// Len returns the number of shared variables.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Keys returns a snapshot of the variable names (unordered).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	return out
}

// snapshotApply merges a step's committed writes.
func (s *Store) snapshotApply(writes map[string]Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range writes {
		s.data[k] = v
	}
}

// GetAs reads a shared variable with a type assertion.
func GetAs[T any](s *Store, key string) (T, bool) {
	var zero T
	v, ok := s.Get(key)
	if !ok {
		return zero, false
	}
	t, ok := v.(T)
	if !ok {
		return zero, false
	}
	return t, true
}

// Metrics counts runtime events across all steps.
type Metrics struct {
	Steps        int // parallel steps executed
	Tasks        int // logical tasks (routine instances)
	Executions   int // task executions started (>= Tasks with eager scheduling)
	Duplicates   int // executions beyond the first per task
	WastedCommit int // completed executions that lost the commit race
	Crashes      int // workers lost permanently
	Transients   int // executions abandoned by injected transient faults
}

// RoutineFunc is the body of one routine: invoked with the task context,
// the routine's width (number of sibling tasks) and this task's sequence
// number in [0, width).  The body must be idempotent with respect to
// everything except its TaskCtx writes — it may run more than once.
type RoutineFunc func(ctx *TaskCtx, width, number int) error

// TraceHooks observes runtime execution.  Every field is optional; nil
// fields cost one pointer comparison at the call site (the observability
// layer's zero-cost contract).  Hooks run on worker goroutines and must be
// safe for concurrent use; TaskExec may fire after StepDone for straggler
// executions that outlive their step.
type TraceHooks struct {
	// StepStart fires when a parallel step begins executing, with the
	// step's sequence number (0-based per runtime) and its task count.
	StepStart func(step, tasks int)
	// StepDone fires when a parallel step completes or fails.
	StepDone func(step int, d time.Duration, err error)
	// TaskExec fires after each task execution attempt: the worker that
	// ran it, the attempt number (1 = first execution) and whether this
	// execution won the commit race.
	TaskExec func(step, worker, task, attempt int, start time.Time, d time.Duration, committed bool)
	// WorkerFault fires on injected faults: kind is "crash", "transient"
	// or "slow".
	WorkerFault func(step, worker int, kind string)
}

// Config configures a runtime.
type Config struct {
	// Workers is the number of worker goroutines ("processors").  Must be
	// at least 1.
	Workers int
	// Speeds optionally gives each worker a relative speed factor
	// (1 = baseline; 0.5 = half speed).  The paper's environment exhibits
	// "wide variations in processing speeds"; a slow worker's executions
	// are stretched by the reciprocal of its speed, and eager scheduling
	// routes around it.  nil means all workers run at speed 1.
	Speeds []float64
	// Faults optionally injects failures; nil disables injection.
	Faults *FaultPlan
	// MaxAttempts bounds executions per task (0 = 16*Workers, a generous
	// default that still terminates if injected fault rates are extreme).
	MaxAttempts int
	// Hooks optionally observes step and task execution (tracing); the
	// zero value disables observation.
	Hooks TraceHooks
}

// Runtime executes Calypso programs.
type Runtime struct {
	cfg     Config
	store   *Store
	metrics Metrics
	alive   int        // workers not yet crashed (crashes are permanent)
	steps   int        // step sequence numbers handed out
	mu      sync.Mutex // guards metrics, alive and steps
}

// nextStepID hands out the next step sequence number.
func (rt *Runtime) nextStepID() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	id := rt.steps
	rt.steps++
	return id
}

// New returns a runtime with the given configuration.
func New(cfg Config) (*Runtime, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("calypso: %d workers (need >= 1)", cfg.Workers)
	}
	if cfg.Speeds != nil {
		if len(cfg.Speeds) != cfg.Workers {
			return nil, fmt.Errorf("calypso: %d speeds for %d workers", len(cfg.Speeds), cfg.Workers)
		}
		for i, sp := range cfg.Speeds {
			if sp <= 0 {
				return nil, fmt.Errorf("calypso: worker %d speed %v must be positive", i, sp)
			}
		}
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 16 * cfg.Workers
	}
	rt := &Runtime{cfg: cfg, store: NewStore(), alive: cfg.Workers}
	if cfg.Faults != nil {
		cfg.Faults.init()
	}
	return rt, nil
}

// Store returns the runtime's shared memory.
func (rt *Runtime) Store() *Store { return rt.store }

// Workers returns the configured worker count.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Alive returns the number of workers that have not crashed.
func (rt *Runtime) Alive() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.alive
}

// speed returns a worker's relative speed factor.
func (rt *Runtime) speed(wid int) float64 {
	if rt.cfg.Speeds == nil || wid >= len(rt.cfg.Speeds) {
		return 1
	}
	return rt.cfg.Speeds[wid]
}

// noteCrash permanently removes one worker.
func (rt *Runtime) noteCrash() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.alive > 0 {
		rt.alive--
	}
}

// Metrics returns a copy of the accumulated counters.
func (rt *Runtime) Metrics() Metrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.metrics
}

// ErrNoWorkers is wrapped in a step error when every worker has crashed
// before the step could finish; no resource remains to mask the faults.
var ErrNoWorkers = errors.New("calypso: all workers crashed")

// ErrWriteConflict is wrapped in a step error when two different tasks of
// one step write the same shared variable, violating exclusive-write
// semantics.
var ErrWriteConflict = errors.New("calypso: concurrent write conflict")

// ErrTooManyAttempts is wrapped in a step error when a task exceeds the
// execution attempt bound without committing.
var ErrTooManyAttempts = errors.New("calypso: task exceeded attempt bound")
