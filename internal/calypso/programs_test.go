package calypso

// Realistic Calypso programs: the computations the original system was
// built for — regular data-parallel kernels written as sequences of
// parallel steps over CREW shared memory — exercised here with and without
// fault injection.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// matmulProgram multiplies two n x n matrices by row bands, one parallel
// step, width tasks.
func matmulProgram(rt *Runtime, a, b [][]float64, width int) ([][]float64, error) {
	n := len(a)
	rt.Store().Set("A", a)
	rt.Store().Set("B", b)
	err := rt.Parallel(width, func(ctx *TaskCtx, w, num int) error {
		ma, _ := ReadAs[[][]float64](ctx, "A")
		mb, _ := ReadAs[[][]float64](ctx, "B")
		band := make([][]float64, 0, n/w+1)
		var rows []int
		for i := num; i < n; i += w {
			rows = append(rows, i)
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += ma[i][k] * mb[k][j]
				}
				row[j] = sum
			}
			band = append(band, row)
		}
		ctx.Write(fmt.Sprintf("C.rows.%d", num), rows)
		ctx.Write(fmt.Sprintf("C.band.%d", num), band)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c := make([][]float64, n)
	for num := 0; num < width; num++ {
		rows, _ := GetAs[[]int](rt.Store(), fmt.Sprintf("C.rows.%d", num))
		band, _ := GetAs[[][]float64](rt.Store(), fmt.Sprintf("C.band.%d", num))
		for bi, i := range rows {
			c[i] = band[bi]
		}
	}
	return c, nil
}

func randMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	return m
}

func serialMatmul(a, b [][]float64) [][]float64 {
	n := len(a)
	c := make([][]float64, n)
	for i := 0; i < n; i++ {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}

func TestMatrixMultiplyMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 24
	a, b := randMatrix(rng, n), randMatrix(rng, n)
	want := serialMatmul(a, b)

	for _, tc := range []struct {
		name   string
		faults *FaultPlan
	}{
		{"clean", nil},
		{"faulty", &FaultPlan{TransientProb: 0.25, CrashProb: 0.05, MaxCrashes: 3, Seed: 9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := New(Config{Workers: 4, Faults: tc.faults})
			if err != nil {
				t.Fatal(err)
			}
			got, err := matmulProgram(rt, a, b, 6)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				for j := range want[i] {
					if math.Abs(got[i][j]-want[i][j]) > 1e-9 {
						t.Fatalf("C[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

// jacobiProgram runs `iters` Jacobi relaxation sweeps over a 1-D rod with
// fixed boundary values: each sweep is one parallel step (the iterative
// structure task_loop models).
func jacobiProgram(rt *Runtime, initial []float64, iters, width int) ([]float64, error) {
	rt.Store().Set("u", initial)
	n := len(initial)
	for it := 0; it < iters; it++ {
		err := rt.Parallel(width, func(ctx *TaskCtx, w, num int) error {
			u, _ := ReadAs[[]float64](ctx, "u")
			var idx []int
			var vals []float64
			for i := 1 + num; i < n-1; i += w {
				idx = append(idx, i)
				vals = append(vals, (u[i-1]+u[i+1])/2)
			}
			ctx.Write(fmt.Sprintf("j.idx.%d", num), idx)
			ctx.Write(fmt.Sprintf("j.val.%d", num), vals)
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Sequential code between steps merges the sweep (CREW: the next
		// step reads the merged state).
		u, _ := GetAs[[]float64](rt.Store(), "u")
		next := append([]float64(nil), u...)
		for num := 0; num < width; num++ {
			idx, _ := GetAs[[]int](rt.Store(), fmt.Sprintf("j.idx.%d", num))
			vals, _ := GetAs[[]float64](rt.Store(), fmt.Sprintf("j.val.%d", num))
			for k, i := range idx {
				next[i] = vals[k]
			}
		}
		rt.Store().Set("u", next)
	}
	u, _ := GetAs[[]float64](rt.Store(), "u")
	return u, nil
}

func TestJacobiConvergesToLinearProfile(t *testing.T) {
	const n = 33
	initial := make([]float64, n)
	initial[0], initial[n-1] = 0, 1 // boundary conditions
	rt, err := New(Config{
		Workers: 4,
		Faults:  &FaultPlan{TransientProb: 0.1, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := jacobiProgram(rt, initial, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state of the 1-D Laplace equation: a straight line between
	// the boundary values.
	for i := range u {
		want := float64(i) / float64(n-1)
		if math.Abs(u[i]-want) > 1e-3 {
			t.Fatalf("u[%d] = %v, want %v", i, u[i], want)
		}
	}
	m := rt.Metrics()
	if m.Steps != 2000 {
		t.Fatalf("steps = %d", m.Steps)
	}
	if m.Transients == 0 {
		t.Fatal("no transient faults injected (seed-dependent)")
	}
}

// TestJacobiDeterministicAcrossWorkerCounts: the computation commutes with
// parallelism — CREW semantics guarantee every worker count produces the
// same state.
func TestJacobiDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 17
	initial := make([]float64, n)
	initial[n-1] = 1
	var results [][]float64
	for _, workers := range []int{1, 2, 8} {
		rt, err := New(Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		u, err := jacobiProgram(rt, initial, 50, workers)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, u)
	}
	for i := 1; i < len(results); i++ {
		for k := range results[0] {
			if results[i][k] != results[0][k] {
				t.Fatalf("worker-count dependence at cell %d: %v vs %v",
					k, results[i][k], results[0][k])
			}
		}
	}
}
