package calypso

import (
	"fmt"
	"sync"
	"time"
)

// TaskCtx is the execution context of one task instance.  Reads see the
// shared store as of the beginning of the step (CREW semantics: updates are
// visible only at the end of the step); writes are buffered privately and
// committed exactly once even if the task executes several times.
type TaskCtx struct {
	// Width is the number of sibling tasks of this routine; Number is this
	// task's index in [0, Width).
	Width  int
	Number int
	// Worker identifies the worker executing this attempt (for tracing).
	Worker int

	store  *Store
	writes map[string]Value
}

// Read returns the value of a shared variable as of the step's beginning.
func (ctx *TaskCtx) Read(key string) (Value, bool) { return ctx.store.Get(key) }

// Write buffers an update to a shared variable; it becomes visible to other
// tasks only after the step ends.
func (ctx *TaskCtx) Write(key string, v Value) { ctx.writes[key] = v }

// ReadAs reads a shared variable with a type assertion.
func ReadAs[T any](ctx *TaskCtx, key string) (T, bool) { return GetAs[T](ctx.store, key) }

// routine is one routine statement of a parallel step.
type routine struct {
	width int
	fn    RoutineFunc
}

// Step is a parallel step under construction (parbegin ... parend).
type Step struct {
	rt       *Runtime
	routines []routine
	buildErr error
	ended    bool
}

// ParBegin opens a parallel step.  Add routines, then call End to execute.
func (rt *Runtime) ParBegin() *Step { return &Step{rt: rt} }

// Routine adds `width` task instances of fn to the step (the paper's
// `routine [int-exp](int width, int number)` construct).  It returns the
// step for chaining.
func (s *Step) Routine(width int, fn RoutineFunc) *Step {
	switch {
	case s.buildErr != nil:
	case width < 1:
		s.buildErr = fmt.Errorf("calypso: routine width %d (need >= 1)", width)
	case fn == nil:
		s.buildErr = fmt.Errorf("calypso: nil routine body")
	default:
		s.routines = append(s.routines, routine{width: width, fn: fn})
	}
	return s
}

// Parallel is shorthand for a single-routine step executed immediately.
func (rt *Runtime) Parallel(width int, fn RoutineFunc) error {
	return rt.ParBegin().Routine(width, fn).End()
}

// task is one expanded task instance with its commit state.
type task struct {
	id        int
	width     int
	number    int
	fn        RoutineFunc
	committed bool
	attempts  int
	writes    map[string]Value // the winning execution's buffered writes
}

// dispatcher coordinates eager scheduling of one step's tasks.
type dispatcher struct {
	mu        sync.Mutex
	tasks     []*task
	fresh     int // index of next never-attempted task
	remaining int // uncommitted task count
	failed    error
	rr        int           // round-robin cursor for duplicate selection
	done      chan struct{} // closed when the step completes or fails
	stats     stepStats
}

// stepStats counts events within one step; flushed into Runtime.Metrics
// when the step ends (events from executions that outlive the step are
// dropped).
type stepStats struct {
	execs, dups, wasted, transients, crashed int
}

// finish closes done exactly once.
func (d *dispatcher) finish() {
	select {
	case <-d.done:
	default:
		close(d.done)
	}
}

// next hands the calling worker a task to execute: fresh tasks first, then
// eager duplicates of uncommitted ones.  It returns nil when the step is
// complete or has failed.
func (d *dispatcher) next(maxAttempts int) (*task, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil || d.remaining == 0 {
		return nil, 0, d.failed
	}
	if d.fresh < len(d.tasks) {
		t := d.tasks[d.fresh]
		d.fresh++
		t.attempts++
		return t, t.attempts, nil
	}
	// Eager scheduling: duplicate an uncommitted task (round-robin so the
	// duplicates spread over the stragglers).
	n := len(d.tasks)
	for i := 0; i < n; i++ {
		t := d.tasks[(d.rr+i)%n]
		if t.committed {
			continue
		}
		d.rr = (d.rr + i + 1) % n
		t.attempts++
		if t.attempts > maxAttempts {
			d.failed = fmt.Errorf("%w: task %d after %d executions", ErrTooManyAttempts, t.id, t.attempts)
			return nil, 0, d.failed
		}
		return t, t.attempts, nil
	}
	return nil, 0, nil // raced with the last commit
}

// commit records an execution's writes; the first completer wins.
// It reports whether this execution won.
func (d *dispatcher) commit(t *task, writes map[string]Value) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t.committed || d.failed != nil {
		return false
	}
	t.committed = true
	t.writes = writes
	d.remaining--
	if d.remaining == 0 {
		d.finish()
	}
	return true
}

// fail aborts the step with the given error (first failure wins).
func (d *dispatcher) fail(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed == nil {
		d.failed = err
	}
	d.finish()
}

// End executes the step to completion: all tasks committed exactly once,
// then all writes merged into the shared store, enforcing exclusive-write
// semantics.  End returns an error if the step cannot complete (every
// worker crashed, a task kept failing, a routine returned an error or two
// tasks wrote the same variable).
func (s *Step) End() (err error) {
	if s.ended {
		return fmt.Errorf("calypso: step already ended")
	}
	s.ended = true
	if s.buildErr != nil {
		return s.buildErr
	}
	if len(s.routines) == 0 {
		return fmt.Errorf("calypso: empty parallel step")
	}
	rt := s.rt
	hooks := rt.cfg.Hooks

	d := &dispatcher{done: make(chan struct{})}
	id := 0
	for _, r := range s.routines {
		for n := 0; n < r.width; n++ {
			d.tasks = append(d.tasks, &task{id: id, width: r.width, number: n, fn: r.fn})
			id++
		}
	}
	d.remaining = len(d.tasks)

	// Crashed workers stay dead across steps: the step runs on however
	// many workers the program still has.
	workers := rt.Alive()
	if workers == 0 {
		return fmt.Errorf("%w: none alive at step start", ErrNoWorkers)
	}

	stepID := rt.nextStepID()
	if hooks.StepStart != nil {
		hooks.StepStart(stepID, len(d.tasks))
	}
	if hooks.StepDone != nil {
		stepBegan := time.Now()
		defer func() { hooks.StepDone(stepID, time.Since(stepBegan), err) }()
	}

	var aliveMu sync.Mutex
	alive := workers

	worker := func(wid int) {
		for {
			t, attempt, err := d.next(rt.cfg.MaxAttempts)
			if t == nil || err != nil {
				return
			}
			d.mu.Lock()
			d.stats.execs++
			if attempt > 1 {
				d.stats.dups++
			}
			d.mu.Unlock()

			fate := rt.cfg.Faults.decide(rt.cfg.Workers)
			switch fate {
			case outcomeCrash:
				rt.noteCrash()
				d.mu.Lock()
				d.stats.crashed++
				d.mu.Unlock()
				if hooks.WorkerFault != nil {
					hooks.WorkerFault(stepID, wid, "crash")
				}
				aliveMu.Lock()
				alive--
				dead := alive == 0
				aliveMu.Unlock()
				if dead {
					d.fail(fmt.Errorf("%w: every worker of this step crashed", ErrNoWorkers))
				}
				return // the worker is gone; its execution is lost
			case outcomeTransient:
				d.mu.Lock()
				d.stats.transients++
				d.mu.Unlock()
				if hooks.WorkerFault != nil {
					hooks.WorkerFault(stepID, wid, "transient")
				}
				continue // abandoned; eager scheduling will retry
			case outcomeSlow:
				if hooks.WorkerFault != nil {
					hooks.WorkerFault(stepID, wid, "slow")
				}
				time.Sleep(rt.cfg.Faults.SlowDelay)
			}

			ctx := &TaskCtx{
				Width:  t.width,
				Number: t.number,
				Worker: wid,
				store:  rt.store,
				writes: make(map[string]Value),
			}
			started := time.Now()
			if err := s.runBody(t, ctx); err != nil {
				d.fail(err)
				return
			}
			// A slow worker stretches its execution by 1/speed: the extra
			// time is modeled as a delay before commit, so a fast worker's
			// eager duplicate can win the race.
			if sp := rt.speed(wid); sp < 1 {
				elapsed := time.Since(started)
				time.Sleep(time.Duration(float64(elapsed) * (1/sp - 1)))
			}
			won := d.commit(t, ctx.writes)
			if !won {
				d.mu.Lock()
				d.stats.wasted++
				d.mu.Unlock()
			}
			if hooks.TaskExec != nil {
				hooks.TaskExec(stepID, wid, t.id, attempt, started, time.Since(started), won)
			}
		}
	}

	for w := 0; w < workers; w++ {
		go worker(w)
	}
	// The step ends as soon as every task has committed (or the step
	// failed) — not when every in-flight execution returns.  A stalled
	// duplicate keeps running in the background and exits on its next
	// dispatch attempt; its late stats and commit are discarded.  This is
	// the point of eager scheduling: stragglers cannot delay the step.
	<-d.done

	d.mu.Lock()
	st := d.stats
	failed := d.failed
	remaining := d.remaining
	// Snapshot the winning write buffers while holding the lock so a
	// late-committing straggler cannot race the merge below.
	taskWrites := make([]map[string]Value, len(d.tasks))
	taskIDs := make([]int, len(d.tasks))
	for i, t := range d.tasks {
		taskWrites[i] = t.writes
		taskIDs[i] = t.id
	}
	d.mu.Unlock()

	rt.mu.Lock()
	rt.metrics.Steps++
	rt.metrics.Tasks += len(d.tasks)
	rt.metrics.Executions += st.execs
	rt.metrics.Duplicates += st.dups
	rt.metrics.WastedCommit += st.wasted
	rt.metrics.Crashes += st.crashed
	rt.metrics.Transients += st.transients
	rt.mu.Unlock()

	if failed != nil {
		return failed
	}
	if remaining > 0 {
		return fmt.Errorf("%w: %d tasks uncommitted", ErrNoWorkers, remaining)
	}

	// Merge with exclusive-write checking: two distinct tasks writing one
	// variable is a CW conflict (duplicated executions of the same task
	// are fine — only the winner's buffer is kept).
	writer := make(map[string]int)
	merged := make(map[string]Value)
	for i, writes := range taskWrites {
		for k, v := range writes {
			if prev, ok := writer[k]; ok && prev != taskIDs[i] {
				return fmt.Errorf("%w: tasks %d and %d both write %q", ErrWriteConflict, prev, taskIDs[i], k)
			}
			writer[k] = taskIDs[i]
			merged[k] = v
		}
	}
	rt.store.snapshotApply(merged)
	return nil
}

// runBody invokes the routine body, converting panics into errors so a
// buggy task cannot take down the runtime.
func (s *Step) runBody(t *task, ctx *TaskCtx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("calypso: task %d panicked: %v", t.id, r)
		}
	}()
	return t.fn(ctx, t.width, t.number)
}
