package calypso

import (
	"math/rand"
	"sync"
	"time"
)

// FaultPlan injects failures into a runtime, exercising the two-phase
// idempotent execution and eager scheduling machinery.  All probabilities
// are evaluated independently per (worker, execution).
type FaultPlan struct {
	// CrashProb is the probability that a worker crashes permanently while
	// executing a task (the execution is lost; the worker takes no further
	// work).
	CrashProb float64
	// TransientProb is the probability that an execution is abandoned
	// without committing (a transient fault: the worker survives).
	TransientProb float64
	// SlowProb is the probability that an execution is delayed by
	// SlowDelay before committing (a straggler).
	SlowProb  float64
	SlowDelay time.Duration
	// MaxCrashes caps the number of workers allowed to crash (so that a
	// plan cannot kill every worker).  Zero means Workers-1.
	MaxCrashes int
	// Seed makes injection reproducible.
	Seed int64

	mu      sync.Mutex
	rng     *rand.Rand
	crashes int
}

func (f *FaultPlan) init() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
}

// outcome is the injected fate of one execution.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeTransient
	outcomeCrash
	outcomeSlow
)

// decide draws the fate of one execution.  workersAlive lets the plan
// respect MaxCrashes relative to the runtime's worker count.
func (f *FaultPlan) decide(workers int) outcome {
	if f == nil {
		return outcomeOK
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	maxCrashes := f.MaxCrashes
	if maxCrashes <= 0 {
		maxCrashes = workers - 1
	}
	switch {
	case f.CrashProb > 0 && f.crashes < maxCrashes && f.rng.Float64() < f.CrashProb:
		f.crashes++
		return outcomeCrash
	case f.TransientProb > 0 && f.rng.Float64() < f.TransientProb:
		return outcomeTransient
	case f.SlowProb > 0 && f.rng.Float64() < f.SlowProb:
		return outcomeSlow
	default:
		return outcomeOK
	}
}

// Crashes reports how many workers the plan has killed so far.
func (f *FaultPlan) Crashes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashes
}
