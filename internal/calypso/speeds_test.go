package calypso

import (
	"fmt"
	"testing"
	"time"
)

func TestSpeedsValidation(t *testing.T) {
	if _, err := New(Config{Workers: 2, Speeds: []float64{1}}); err == nil {
		t.Error("mismatched speeds length accepted")
	}
	if _, err := New(Config{Workers: 2, Speeds: []float64{1, 0}}); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := New(Config{Workers: 2, Speeds: []float64{1, 0.5}}); err != nil {
		t.Fatal(err)
	}
}

// TestSlowWorkerMaskedByEagerScheduling: one worker at 1% speed; the fast
// workers' eager duplicates win every commit race and the step finishes
// far sooner than the slow worker's stretched execution.
func TestSlowWorkerMaskedByEagerScheduling(t *testing.T) {
	rt, err := New(Config{Workers: 4, Speeds: []float64{0.01, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	const width = 8
	start := time.Now()
	err = rt.Parallel(width, func(ctx *TaskCtx, w, n int) error {
		// ~5ms of real work per execution: the slow worker would stretch
		// it to ~500ms.
		deadline := time.Now().Add(5 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		ctx.Write(fmt.Sprintf("r.%d", n), n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("step took %v: slow worker not masked", elapsed)
	}
	if rt.Store().Len() != width {
		t.Fatalf("results = %d, want %d", rt.Store().Len(), width)
	}
}

// TestUniformSpeedsNoOverhead: speed 1 everywhere adds no delay path.
func TestUniformSpeedsNoOverhead(t *testing.T) {
	rt, err := New(Config{Workers: 2, Speeds: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(4, func(ctx *TaskCtx, w, n int) error {
		ctx.Write(fmt.Sprintf("k.%d", n), n)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Store().Len() != 4 {
		t.Fatal("missing results")
	}
}

func TestSpeedLookup(t *testing.T) {
	rt, _ := New(Config{Workers: 2, Speeds: []float64{0.5, 2}})
	if rt.speed(0) != 0.5 || rt.speed(1) != 2 {
		t.Fatal("speed lookup wrong")
	}
	if rt.speed(99) != 1 {
		t.Fatal("out-of-range speed not defaulted")
	}
	plain, _ := New(Config{Workers: 2})
	if plain.speed(0) != 1 {
		t.Fatal("nil speeds not defaulted")
	}
}
