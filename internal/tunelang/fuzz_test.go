package tunelang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzParseBody is the shared property: arbitrary input must either parse
// into a graph that validates and enumerates without panicking, or return a
// positioned error — never crash or hang.
func fuzzParseBody(t *testing.T, src string) {
	if len(src) > 1<<16 {
		t.Skip()
	}
	g, err := Parse("fuzz", src)
	if err != nil {
		if perr, ok := err.(*Error); ok && perr.Line < 1 {
			t.Fatalf("unpositioned error: %v", perr)
		}
		return
	}
	// A parse success must yield a graph whose enumeration terminates
	// (bounded by the path limit) without panicking.
	g.Enumerate(64)
	g.EnumerateDAGs(64)
	_ = g.String()
}

// FuzzParse hardens the parser against pathological hand-written inputs.
func FuzzParse(f *testing.F) {
	f.Add(junctionSrc)
	f.Add(continuousSrc)
	f.Add("")
	f.Add("task a deadline 5 { config require 1 procs 1 time; }")
	f.Add("task_control_parameters { p = 1; }")
	f.Add("task_par p { task a deadline 1 { config require 1 procs 1 time; } task b deadline 1 { config require 1 procs 1 time; } }")
	f.Add("/* unterminated")
	f.Add("task a deadline 5 { config range (g = 1 .. 1e9 step 0.0001) require 1 procs 1 time; }")
	f.Add("0..1..2 .. 1.5.6")
	f.Fuzz(fuzzParseBody)
}

// FuzzTunelangParse seeds the same property with the repository's real
// task-description exemplars (testdata/*.tune at the repo root), so the
// fuzzer mutates genuine multi-section programs — ranges, junctions,
// pipelines — rather than reconstructing the grammar from scratch.  A
// checked-in seed corpus lives in testdata/fuzz/FuzzTunelangParse.
//
// Run with: go test -fuzz=FuzzTunelangParse ./internal/tunelang
func FuzzTunelangParse(f *testing.F) {
	tunes, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.tune"))
	if err != nil {
		f.Fatal(err)
	}
	if len(tunes) == 0 {
		f.Log("no testdata/*.tune exemplars found; relying on checked-in corpus only")
	}
	for _, path := range tunes {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("reading %s: %v", path, err)
		}
		f.Add(string(src))
	}
	f.Fuzz(fuzzParseBody)
}

// FuzzLexer: the tokenizer alone must terminate and either error or end
// with EOF on any input.
func FuzzLexer(f *testing.F) {
	f.Add("task a deadline 5")
	f.Add("1.2.3 .. // comment\n /* block */ @")
	f.Add(strings.Repeat("((((", 100))
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip()
		}
		toks, err := lexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream does not end with EOF")
		}
	})
}
