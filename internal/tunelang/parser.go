package tunelang

import (
	"fmt"
	"math"

	"milan/internal/taskgraph"
)

// Parse compiles tunability-language source into a task graph.  name
// becomes the graph name (typically the application or file name).
func Parse(name, src string) (*taskgraph.Graph, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	g, err := p.program(name)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(tk token, format string, args ...interface{}) *Error {
	return &Error{Line: tk.line, Col: tk.col, Msg: fmt.Sprintf(format, args...)}
}

// expectPunct consumes the given punctuation or fails.
func (p *parser) expectPunct(text string) error {
	tk := p.cur()
	if tk.kind != tokPunct || tk.text != text {
		return p.errorf(tk, "expected %q, found %s", text, tk)
	}
	p.advance()
	return nil
}

// expectKeyword consumes the given identifier-keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	tk := p.cur()
	if tk.kind != tokIdent || tk.text != kw {
		return p.errorf(tk, "expected %q, found %s", kw, tk)
	}
	p.advance()
	return nil
}

// atKeyword reports whether the current token is the identifier kw.
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && p.cur().text == kw
}

func (p *parser) expectIdent() (string, error) {
	tk := p.cur()
	if tk.kind != tokIdent {
		return "", p.errorf(tk, "expected identifier, found %s", tk)
	}
	if isReserved(tk.text) {
		return "", p.errorf(tk, "%q is a reserved word", tk.text)
	}
	p.advance()
	return tk.text, nil
}

func (p *parser) expectNumber() (float64, error) {
	neg := false
	if p.cur().kind == tokPunct && p.cur().text == "-" {
		neg = true
		p.advance()
	}
	tk := p.cur()
	if tk.kind != tokNumber {
		return 0, p.errorf(tk, "expected number, found %s", tk)
	}
	p.advance()
	if neg {
		return -tk.num, nil
	}
	return tk.num, nil
}

var reserved = map[string]bool{
	"task": true, "task_select": true, "task_loop": true,
	"task_control_parameters": true, "when": true, "finally": true,
	"config": true, "require": true, "procs": true, "time": true,
	"quality": true, "deadline": true, "params": true, "range": true,
	"task_par": true,
}

func isReserved(s string) bool { return reserved[s] }

// program = { params | step } .
func (p *parser) program(name string) (*taskgraph.Graph, error) {
	g := &taskgraph.Graph{Name: name, Params: map[string]float64{}}
	var seq taskgraph.Seq
	for p.cur().kind != tokEOF {
		switch {
		case p.atKeyword("task_control_parameters"):
			if err := p.paramsBlock(g); err != nil {
				return nil, err
			}
		default:
			n, err := p.step(g)
			if err != nil {
				return nil, err
			}
			seq = append(seq, n)
		}
	}
	if len(seq) == 0 {
		return nil, p.errorf(p.cur(), "program has no steps")
	}
	g.Root = seq
	return g, nil
}

// paramsBlock = "task_control_parameters" "{" { ident [ "=" number ] ";" } "}" .
func (p *parser) paramsBlock(g *taskgraph.Graph) error {
	p.advance() // task_control_parameters
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.at("}") {
		tk := p.cur()
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if _, dup := g.Params[name]; dup {
			return p.errorf(tk, "parameter %q declared twice", name)
		}
		val := math.NaN()
		if p.at("=") {
			p.advance()
			val, err = p.expectNumber()
			if err != nil {
				return err
			}
		}
		g.Params[name] = val
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.expectPunct("}")
}

// at reports whether the current token is the given punctuation.
func (p *parser) at(text string) bool {
	return p.cur().kind == tokPunct && p.cur().text == text
}

// step = task | select | loop .
func (p *parser) step(g *taskgraph.Graph) (taskgraph.Node, error) {
	switch {
	case p.atKeyword("task"):
		return p.task(g)
	case p.atKeyword("task_select"):
		return p.selectStep(g)
	case p.atKeyword("task_loop"):
		return p.loopStep(g)
	case p.atKeyword("task_par"):
		return p.parStep(g)
	default:
		return nil, p.errorf(p.cur(), "expected task, task_select, task_loop or task_par, found %s", p.cur())
	}
}

// parStep = "task_par" [ ident ] "{" { step } "}" — each member step is a
// concurrent branch; the group joins before the next step.
func (p *parser) parStep(g *taskgraph.Graph) (taskgraph.Node, error) {
	p.advance() // task_par
	par := &taskgraph.Par{}
	if p.cur().kind == tokIdent {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		par.Name = name
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.at("}") {
		n, err := p.step(g)
		if err != nil {
			return nil, err
		}
		par.Branches = append(par.Branches, n)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if len(par.Branches) < 2 {
		return nil, p.errorf(p.cur(), "task_par %q needs at least two concurrent branches", par.Name)
	}
	return par, nil
}

// task = "task" ident "deadline" number [ "params" "(" idents ")" ] "{" { config } "}" .
func (p *parser) task(g *taskgraph.Graph) (taskgraph.Node, error) {
	p.advance() // task
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("deadline"); err != nil {
		return nil, err
	}
	deadline, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	node := &taskgraph.TaskNode{Name: name, Deadline: deadline}
	if p.atKeyword("params") {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			tk := p.cur()
			param, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, ok := g.Params[param]; !ok {
				return nil, p.errorf(tk, "task %q uses undeclared control parameter %q", name, param)
			}
			node.Params = append(node.Params, param)
			if p.at(",") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for p.atKeyword("config") {
		cfg, err := p.config(g, node)
		if err == errRangeConfig {
			continue // attached to node.Ranges
		}
		if err != nil {
			return nil, err
		}
		node.Configs = append(node.Configs, cfg)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if len(node.Configs) == 0 && len(node.Ranges) == 0 {
		return nil, p.errorf(p.cur(), "task %q has no configurations", name)
	}
	return node, nil
}

// config = "config" [ "(" assigns ")" ] "require" number "procs" number "time"
//
//	[ "quality" number ] ";" .
func (p *parser) config(g *taskgraph.Graph, node *taskgraph.TaskNode) (taskgraph.Config, error) {
	p.advance() // config
	cfg := taskgraph.Config{Assign: map[string]float64{}}
	if p.atKeyword("range") {
		return cfg, p.rangeConfig(g, node)
	}
	if p.at("(") {
		p.advance()
		for {
			tk := p.cur()
			param, err := p.expectIdent()
			if err != nil {
				return cfg, err
			}
			if !stringsContain(node.Params, param) {
				return cfg, p.errorf(tk, "config assigns %q, not in task %q's parameter list", param, node.Name)
			}
			if err := p.expectPunct("="); err != nil {
				return cfg, err
			}
			val, err := p.expectNumber()
			if err != nil {
				return cfg, err
			}
			if _, dup := cfg.Assign[param]; dup {
				return cfg, p.errorf(tk, "config assigns %q twice", param)
			}
			cfg.Assign[param] = val
			if p.at(",") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return cfg, err
		}
	}
	if err := p.expectKeyword("require"); err != nil {
		return cfg, err
	}
	procs, err := p.expectNumber()
	if err != nil {
		return cfg, err
	}
	if procs != math.Trunc(procs) || procs < 1 {
		return cfg, p.errorf(p.cur(), "processor count %v must be a positive integer", procs)
	}
	cfg.Procs = int(procs)
	if err := p.expectKeyword("procs"); err != nil {
		return cfg, err
	}
	cfg.Duration, err = p.expectNumber()
	if err != nil {
		return cfg, err
	}
	if err := p.expectKeyword("time"); err != nil {
		return cfg, err
	}
	if p.atKeyword("quality") {
		p.advance()
		cfg.Quality, err = p.expectNumber()
		if err != nil {
			return cfg, err
		}
	}
	return cfg, p.expectPunct(";")
}

// errRangeConfig is a sentinel: a range config was parsed and attached to
// the node directly (it has no single static Config to return).
var errRangeConfig = &Error{Msg: "internal: range config parsed"}

// rangeConfig parses a fine-continuous configuration and appends it to the
// node's Ranges, returning errRangeConfig so the caller knows no static
// config was produced.
func (p *parser) rangeConfig(g *taskgraph.Graph, node *taskgraph.TaskNode) error {
	p.advance() // range
	if err := p.expectPunct("("); err != nil {
		return err
	}
	tk := p.cur()
	param, err := p.expectIdent()
	if err != nil {
		return err
	}
	if !stringsContain(node.Params, param) {
		return p.errorf(tk, "range sweeps %q, not in task %q's parameter list", param, node.Name)
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	spec := taskgraph.RangeSpec{Param: param}
	if spec.Lo, err = p.expectNumber(); err != nil {
		return err
	}
	if err := p.expectPunct(".."); err != nil {
		return err
	}
	if spec.Hi, err = p.expectNumber(); err != nil {
		return err
	}
	if err := p.expectKeyword("step"); err != nil {
		return err
	}
	if spec.Step, err = p.expectNumber(); err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectKeyword("require"); err != nil {
		return err
	}
	if spec.Procs, err = p.expr(g); err != nil {
		return err
	}
	if err := p.expectKeyword("procs"); err != nil {
		return err
	}
	if spec.Duration, err = p.expr(g); err != nil {
		return err
	}
	if err := p.expectKeyword("time"); err != nil {
		return err
	}
	if p.atKeyword("quality") {
		p.advance()
		if spec.Quality, err = p.expr(g); err != nil {
			return err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if err := spec.Validate(); err != nil {
		return p.errorf(tk, "%v", err)
	}
	node.Ranges = append(node.Ranges, spec)
	return errRangeConfig
}

// selectStep = "task_select" [ ident ] "{" { arm } "}" .
func (p *parser) selectStep(g *taskgraph.Graph) (taskgraph.Node, error) {
	p.advance() // task_select
	sel := &taskgraph.Select{}
	if p.cur().kind == tokIdent && !p.atKeyword("when") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.Name = name
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for p.atKeyword("when") {
		br, err := p.arm(g)
		if err != nil {
			return nil, err
		}
		sel.Branches = append(sel.Branches, br)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if len(sel.Branches) == 0 {
		return nil, p.errorf(p.cur(), "task_select %q has no when-arms", sel.Name)
	}
	return sel, nil
}

// arm = "when" "(" expr ")" "{" { step } "}" [ "finally" "{" { assign ";" } "}" ] .
func (p *parser) arm(g *taskgraph.Graph) (taskgraph.Branch, error) {
	p.advance() // when
	var br taskgraph.Branch
	if err := p.expectPunct("("); err != nil {
		return br, err
	}
	cond, err := p.expr(g)
	if err != nil {
		return br, err
	}
	br.When = cond
	if err := p.expectPunct(")"); err != nil {
		return br, err
	}
	if err := p.expectPunct("{"); err != nil {
		return br, err
	}
	var body taskgraph.Seq
	for !p.at("}") {
		n, err := p.step(g)
		if err != nil {
			return br, err
		}
		body = append(body, n)
	}
	if err := p.expectPunct("}"); err != nil {
		return br, err
	}
	if len(body) == 0 {
		return br, p.errorf(p.cur(), "when-arm has an empty body")
	}
	br.Body = body
	if p.atKeyword("finally") {
		p.advance()
		if err := p.expectPunct("{"); err != nil {
			return br, err
		}
		for !p.at("}") {
			tk := p.cur()
			param, err := p.expectIdent()
			if err != nil {
				return br, err
			}
			if _, ok := g.Params[param]; !ok {
				return br, p.errorf(tk, "finally assigns undeclared control parameter %q", param)
			}
			if err := p.expectPunct("="); err != nil {
				return br, err
			}
			val, err := p.expr(g)
			if err != nil {
				return br, err
			}
			br.Finally = append(br.Finally, taskgraph.Assign{Param: param, Value: val})
			if err := p.expectPunct(";"); err != nil {
				return br, err
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return br, err
		}
	}
	return br, nil
}

// loopStep = "task_loop" [ ident ] "(" expr ")" "{" { step } "}" .
func (p *parser) loopStep(g *taskgraph.Graph) (taskgraph.Node, error) {
	p.advance() // task_loop
	loop := &taskgraph.Loop{}
	if p.cur().kind == tokIdent {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		loop.Name = name
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	count, err := p.expr(g)
	if err != nil {
		return nil, err
	}
	loop.Count = count
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var body taskgraph.Seq
	for !p.at("}") {
		n, err := p.step(g)
		if err != nil {
			return nil, err
		}
		body = append(body, n)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, p.errorf(p.cur(), "task_loop %q has an empty body", loop.Name)
	}
	loop.Body = body
	return loop, nil
}

// Expression parsing: precedence climbing.
//
//	expr   = orExpr .
//	orExpr = andExpr { "||" andExpr } .
//	andExpr = cmpExpr { "&&" cmpExpr } .
//	cmpExpr = addExpr [ ("=="|"!="|"<"|"<="|">"|">=") addExpr ] .
//	addExpr = mulExpr { ("+"|"-") mulExpr } .
//	mulExpr = unary { ("*"|"/") unary } .
//	unary  = [ "!" | "-" ] primary .
//	primary = number | ident | "(" expr ")" .
func (p *parser) expr(g *taskgraph.Graph) (taskgraph.Expr, error) { return p.orExpr(g) }

func (p *parser) orExpr(g *taskgraph.Graph) (taskgraph.Expr, error) {
	l, err := p.andExpr(g)
	if err != nil {
		return nil, err
	}
	for p.at("||") {
		p.advance()
		r, err := p.andExpr(g)
		if err != nil {
			return nil, err
		}
		l = taskgraph.Binary{Op: taskgraph.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr(g *taskgraph.Graph) (taskgraph.Expr, error) {
	l, err := p.cmpExpr(g)
	if err != nil {
		return nil, err
	}
	for p.at("&&") {
		p.advance()
		r, err := p.cmpExpr(g)
		if err != nil {
			return nil, err
		}
		l = taskgraph.Binary{Op: taskgraph.OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]taskgraph.Op{
	"==": taskgraph.OpEq, "!=": taskgraph.OpNe,
	"<": taskgraph.OpLt, "<=": taskgraph.OpLe,
	">": taskgraph.OpGt, ">=": taskgraph.OpGe,
}

func (p *parser) cmpExpr(g *taskgraph.Graph) (taskgraph.Expr, error) {
	l, err := p.addExpr(g)
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.advance()
			r, err := p.addExpr(g)
			if err != nil {
				return nil, err
			}
			return taskgraph.Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr(g *taskgraph.Graph) (taskgraph.Expr, error) {
	l, err := p.mulExpr(g)
	if err != nil {
		return nil, err
	}
	for p.at("+") || p.at("-") {
		op := taskgraph.OpAdd
		if p.cur().text == "-" {
			op = taskgraph.OpSub
		}
		p.advance()
		r, err := p.mulExpr(g)
		if err != nil {
			return nil, err
		}
		l = taskgraph.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr(g *taskgraph.Graph) (taskgraph.Expr, error) {
	l, err := p.unary(g)
	if err != nil {
		return nil, err
	}
	for p.at("*") || p.at("/") {
		op := taskgraph.OpMul
		if p.cur().text == "/" {
			op = taskgraph.OpDiv
		}
		p.advance()
		r, err := p.unary(g)
		if err != nil {
			return nil, err
		}
		l = taskgraph.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary(g *taskgraph.Graph) (taskgraph.Expr, error) {
	if p.at("!") {
		p.advance()
		x, err := p.unary(g)
		if err != nil {
			return nil, err
		}
		return taskgraph.Not{X: x}, nil
	}
	if p.at("-") {
		p.advance()
		x, err := p.unary(g)
		if err != nil {
			return nil, err
		}
		return taskgraph.Neg{X: x}, nil
	}
	return p.primary(g)
}

func (p *parser) primary(g *taskgraph.Graph) (taskgraph.Expr, error) {
	tk := p.cur()
	switch {
	case tk.kind == tokNumber:
		p.advance()
		return taskgraph.Lit(tk.num), nil
	case tk.kind == tokIdent:
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, ok := g.Params[name]; !ok {
			return nil, p.errorf(tk, "expression references undeclared control parameter %q", name)
		}
		return taskgraph.Ref(name), nil
	case tk.kind == tokPunct && tk.text == "(":
		p.advance()
		e, err := p.expr(g)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf(tk, "expected expression, found %s", tk)
	}
}

func stringsContain(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
