package tunelang

import (
	"os"
	"strings"
	"testing"

	"milan/internal/core"
	"milan/internal/taskgraph"
)

func TestParseTaskPar(t *testing.T) {
	src, err := os.ReadFile("../../testdata/pipeline.tune")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse("pipeline", string(src))
	if err != nil {
		t.Fatal(err)
	}
	root := g.Root.(taskgraph.Seq)
	par, ok := root[1].(*taskgraph.Par)
	if !ok {
		t.Fatalf("second step is %T, want *Par", root[1])
	}
	if par.Name != "analyses" || len(par.Branches) != 2 {
		t.Fatalf("par = %+v", par)
	}
	dags, envs, err := g.EnumerateDAGs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 2 {
		t.Fatalf("paths = %d", len(dags))
	}
	if envs[0]["mode"] != 1 || envs[1]["mode"] != 2 {
		t.Fatalf("envs = %v", envs)
	}
	// The parsed program schedules with branch overlap on a wide machine.
	job, _, err := g.DAGJob(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewScheduler(8, 0, nil)
	pl, err := s.AdmitDAG(job)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tasks[1].Start != pl.Tasks[2].Start {
		t.Fatalf("branches not concurrent: %+v %+v", pl.Tasks[1], pl.Tasks[2])
	}
}

func TestParseTaskParErrors(t *testing.T) {
	oneBranch := `
task_par p {
    task a deadline 5 { config require 1 procs 1 time; }
}`
	if _, err := Parse("one", oneBranch); err == nil ||
		!strings.Contains(err.Error(), "at least two") {
		t.Fatalf("err = %v", err)
	}
	reserved := `task task_par deadline 5 { config require 1 procs 1 time; }`
	if _, err := Parse("reserved", reserved); err == nil {
		t.Fatal("task_par accepted as a task name")
	}
	empty := `task_par p { }`
	if _, err := Parse("empty", empty); err == nil {
		t.Fatal("empty task_par accepted")
	}
}
