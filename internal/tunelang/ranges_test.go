package tunelang

import (
	"math"
	"strings"
	"testing"

	"milan/internal/taskgraph"
)

// The paper's footnote on fine-continuous tunability: the sampling
// granularity "serves as a knob which can vary application resource
// requirements over a continuous range".
const continuousSrc = `
task_control_parameters { g; }

task sampleImage deadline 100 params (g) {
    config range (g = 4 .. 16 step 4) require (48 / g) procs (g / 2) time quality (1 - g / 100);
}
`

func TestParseRangeConfig(t *testing.T) {
	g, err := Parse("continuous", continuousSrc)
	if err != nil {
		t.Fatal(err)
	}
	task := g.Root.(taskgraph.Seq)[0].(*taskgraph.TaskNode)
	if len(task.Ranges) != 1 || len(task.Configs) != 0 {
		t.Fatalf("ranges = %d, configs = %d", len(task.Ranges), len(task.Configs))
	}
	r := task.Ranges[0]
	if r.Param != "g" || r.Lo != 4 || r.Hi != 16 || r.Step != 4 {
		t.Fatalf("range = %+v", r)
	}
	chains, envs, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 4 {
		t.Fatalf("paths = %d, want 4", len(chains))
	}
	// Symbolic expressions evaluated at each knob value.
	if chains[0].Tasks[0].Procs != 12 || chains[0].Tasks[0].Duration != 2 {
		t.Errorf("g=4: %+v", chains[0].Tasks[0])
	}
	if chains[3].Tasks[0].Procs != 3 || chains[3].Tasks[0].Duration != 8 {
		t.Errorf("g=16: %+v", chains[3].Tasks[0])
	}
	if math.Abs(chains[1].Quality-0.92) > 1e-12 {
		t.Errorf("g=8 quality = %v", chains[1].Quality)
	}
	if envs[2]["g"] != 12 {
		t.Errorf("env = %v", envs[2])
	}
}

func TestParseRangeMixedWithStaticConfigs(t *testing.T) {
	src := `
task_control_parameters { g; }
task s deadline 50 params (g) {
    config (g = 99) require 2 procs 1 time;
    config range (g = 10 .. 20 step 10) require 4 procs (g) time;
}
`
	g, err := Parse("mixed", src)
	if err != nil {
		t.Fatal(err)
	}
	chains, _, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 3 {
		t.Fatalf("paths = %d, want 3 (1 static + 2 ranged)", len(chains))
	}
}

func TestParseRangeWithSymbolicCrossParameterExpressions(t *testing.T) {
	// The range task's resources depend on an upstream parameter too.
	src := `
task_control_parameters { mode; g; }
task pick deadline 10 params (mode) {
    config (mode = 1) require 1 procs 1 time;
    config (mode = 2) require 1 procs 1 time;
}
task s deadline 50 params (g) {
    config range (g = 2 .. 4 step 2) require (g * mode) procs (g + mode) time;
}
`
	g, err := Parse("cross", src)
	if err != nil {
		t.Fatal(err)
	}
	chains, envs, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 4 {
		t.Fatalf("paths = %d, want 4 (2 modes x 2 knob values)", len(chains))
	}
	for i, c := range chains {
		mode, g := envs[i]["mode"], envs[i]["g"]
		if float64(c.Tasks[1].Procs) != g*mode {
			t.Errorf("path %d: procs %d, want %v", i, c.Tasks[1].Procs, g*mode)
		}
		if c.Tasks[1].Duration != g+mode {
			t.Errorf("path %d: duration %v, want %v", i, c.Tasks[1].Duration, g+mode)
		}
	}
}

func TestParseRangeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared range param", `
task s deadline 50 { config range (g = 1 .. 2 step 1) require 1 procs 1 time; }`,
			"not in task"},
		{"missing step", `
task_control_parameters { g; }
task s deadline 50 params (g) { config range (g = 1 .. 2) require 1 procs 1 time; }`,
			`expected "step"`},
		{"missing dots", `
task_control_parameters { g; }
task s deadline 50 params (g) { config range (g = 1 2 step 1) require 1 procs 1 time; }`,
			`expected ".."`},
		{"inverted interval", `
task_control_parameters { g; }
task s deadline 50 params (g) { config range (g = 5 .. 2 step 1) require 1 procs 1 time; }`,
			"empty interval"},
		{"zero step", `
task_control_parameters { g; }
task s deadline 50 params (g) { config range (g = 1 .. 5 step 0) require 1 procs 1 time; }`,
			"step"},
		{"range as param name", `
task_control_parameters { range; }
task s deadline 50 { config require 1 procs 1 time; }`,
			"reserved word"},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.src); err == nil {
			t.Errorf("%s: parsed", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestLexerRangeOperatorVersusNumbers(t *testing.T) {
	toks, err := lexAll("4..64 1.5 .5 a..b")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind tokKind
		text string
	}{
		{tokNumber, "4"}, {tokPunct, ".."}, {tokNumber, "64"},
		{tokNumber, "1.5"}, {tokNumber, ".5"},
		{tokIdent, "a"}, {tokPunct, ".."}, {tokIdent, "b"},
		{tokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, w := range want {
		if toks[i].kind != w.kind || (w.text != "" && toks[i].text != w.text) {
			t.Errorf("tok %d = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
}
