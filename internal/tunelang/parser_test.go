package tunelang

import (
	"math"
	"strings"
	"testing"

	"milan/internal/taskgraph"
)

// junctionSrc is the paper's Figure-3 junction detection program written in
// the tunability language.
const junctionSrc = `
// Tunable junction detection (Section 4.3 of the paper).
task_control_parameters {
    sampleGranularity;
    searchDistance;
    c;
}

task sampleImage deadline 10.0 params (sampleGranularity) {
    config (sampleGranularity = 16) require 4 procs 8.0 time quality 1.0;
    config (sampleGranularity = 64) require 4 procs 2.0 time quality 0.95;
}

task_select markRegion {
    when (sampleGranularity == 16) {
        task markRegionFine deadline 14 params (searchDistance) {
            config (searchDistance = 2) require 2 procs 3.0 time quality 1.0;
        }
    } finally { c = 1; }
    when (sampleGranularity == 64) {
        task markRegionCoarse deadline 14 params (searchDistance) {
            config (searchDistance = 8) require 2 procs 4.0 time quality 1.0;
        }
    } finally { c = 2; }
}

task computeJunctions deadline 40 params (c) {
    config (c = 1) require 4 procs 10.0 time quality 1.0;
    config (c = 2) require 8 procs 12.0 time quality 0.9;
}
`

func TestParseJunctionProgram(t *testing.T) {
	g, err := Parse("junction", junctionSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Params) != 3 {
		t.Fatalf("params = %v", g.Params)
	}
	chains, envs, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 {
		t.Fatalf("got %d execution paths, want 2", len(chains))
	}
	// Fine path: 4x8 sampling, 2x3 regions, 4x10 junctions.
	fine := chains[0]
	wantFine := [][2]float64{{4, 8}, {2, 3}, {4, 10}}
	for i, w := range wantFine {
		if float64(fine.Tasks[i].Procs) != w[0] || fine.Tasks[i].Duration != w[1] {
			t.Errorf("fine task %d = %dx%v, want %vx%v",
				i, fine.Tasks[i].Procs, fine.Tasks[i].Duration, w[0], w[1])
		}
	}
	// Coarse path compensates cheap sampling with expensive analysis.
	coarse := chains[1]
	if coarse.Tasks[0].Duration != 2 || coarse.Tasks[2].Procs != 8 {
		t.Errorf("coarse path = %+v", coarse.Tasks)
	}
	if envs[0]["c"] != 1 || envs[1]["c"] != 2 {
		t.Errorf("envs = %v", envs)
	}
	if math.Abs(coarse.Quality-0.95*0.9) > 1e-12 {
		t.Errorf("coarse quality = %v", coarse.Quality)
	}
	// Deadlines are relative until Job materialization.
	if fine.Tasks[0].Deadline != 10 || fine.Tasks[2].Deadline != 40 {
		t.Errorf("deadlines = %v, %v", fine.Tasks[0].Deadline, fine.Tasks[2].Deadline)
	}
}

func TestParseInitializedParamsAndLoop(t *testing.T) {
	src := `
task_control_parameters { iters = 2; quality_mode = 1; }
task_loop main (iters) {
    task step deadline 100 {
        config require 2 procs 5 time;
    }
}
`
	g, err := Parse("looped", src)
	if err != nil {
		t.Fatal(err)
	}
	chains, _, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 || len(chains[0].Tasks) != 2 {
		t.Fatalf("chains = %+v", chains)
	}
	// Default quality (unspecified) is treated as non-degrading.
	if chains[0].Quality != 1 {
		t.Errorf("quality = %v, want 1", chains[0].Quality)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `
task_control_parameters { a = 2; b = 3; n; }
task pick deadline 10 params (n) {
    config (n = 1) require 1 procs 1 time;
    config (n = 2) require 2 procs 1 time;
}
task_select s {
    when (a + b * 2 == 8 && !(a > b) || 0) {
        task yes deadline 20 { config require 1 procs 1 time; }
    }
    when (n >= 2) {
        task alt deadline 20 { config require 1 procs 2 time; }
    }
}
`
	g, err := Parse("prec", src)
	if err != nil {
		t.Fatal(err)
	}
	chains, _, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	// Arm 1 is true for both n-choices (2 paths); arm 2 only for n=2
	// (1 more path): 3 total.
	if len(chains) != 3 {
		t.Fatalf("got %d paths, want 3", len(chains))
	}
}

func TestParseNegativeAndFloatNumbers(t *testing.T) {
	src := `
task_control_parameters { x = -4; y = .5; }
task a deadline 12.25 {
    config require 3 procs 0.75 time quality 0.5;
}
`
	g, err := Parse("nums", src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Params["x"] != -4 || g.Params["y"] != 0.5 {
		t.Errorf("params = %v", g.Params)
	}
	task := g.Root.(taskgraph.Seq)[0].(*taskgraph.TaskNode)
	if task.Deadline != 12.25 || task.Configs[0].Duration != 0.75 {
		t.Errorf("task = %+v", task)
	}
}

func TestParseCommentsEverywhere(t *testing.T) {
	src := `
/* block
   comment */
task_control_parameters { p; } // trailing
task a deadline 5 params (p) { // comment
    config (p = 1) require 1 procs 1 time; /* inline */
}
`
	if _, err := Parse("comments", src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty program", ``, "no steps"},
		{"params only", `task_control_parameters { p; }`, "no steps"},
		{"garbage", `bananas`, "expected task"},
		{"unterminated comment", `/* oops`, "unterminated block comment"},
		{"bad char", `task a deadline 5 { config require 1 procs 1 time; } @`, "unexpected character"},
		{"task without deadline", `task a { }`, `expected "deadline"`},
		{"task without configs", `task a deadline 5 { }`, "no configurations"},
		{"undeclared param in task", `task a deadline 5 params (q) { config require 1 procs 1 time; }`,
			"undeclared control parameter"},
		{"config param not in list", `
task_control_parameters { p; q; }
task a deadline 5 params (p) { config (q = 1) require 1 procs 1 time; }`,
			"not in task"},
		{"duplicate config assign", `
task_control_parameters { p; }
task a deadline 5 params (p) { config (p = 1, p = 2) require 1 procs 1 time; }`,
			"twice"},
		{"fractional procs", `task a deadline 5 { config require 1.5 procs 1 time; }`,
			"positive integer"},
		{"zero procs", `task a deadline 5 { config require 0 procs 1 time; }`,
			"positive integer"},
		{"missing semicolon", `task a deadline 5 { config require 1 procs 1 time }`,
			`expected ";"`},
		{"empty select", `task_select s { }`, "no when-arms"},
		{"empty arm body", `
task_control_parameters { p = 1; }
task_select s { when (p == 1) { } }`, "empty body"},
		{"finally undeclared param", `
task_control_parameters { p = 1; }
task_select s {
    when (p == 1) { task a deadline 5 { config require 1 procs 1 time; } }
    finally { zzz = 1; }
}`, "undeclared control parameter"},
		{"empty loop body", `
task_control_parameters { n = 1; }
task_loop l (n) { }`, "empty body"},
		{"expr undeclared param", `
task_select s { when (mystery == 1) { task a deadline 5 { config require 1 procs 1 time; } } }`,
			"undeclared control parameter"},
		{"reserved word as name", `task when deadline 5 { config require 1 procs 1 time; }`,
			"reserved word"},
		{"duplicate param decl", `task_control_parameters { p; p; }
task a deadline 5 { config require 1 procs 1 time; }`, "declared twice"},
		{"unbalanced paren", `
task_control_parameters { p = 1; }
task_select s { when ((p == 1) { task a deadline 5 { config require 1 procs 1 time; } } }`,
			`expected ")"`},
	}
	for _, c := range cases {
		_, err := Parse(c.name, c.src)
		if err == nil {
			t.Errorf("%s: parsed successfully", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestParseErrorsArePositioned(t *testing.T) {
	src := "task a deadline 5 {\n    config require 0 procs 1 time;\n}"
	_, err := Parse("pos", src)
	if err == nil {
		t.Fatal("parsed")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2 (got %v)", perr.Line, perr)
	}
}

func TestParsedGraphMaterializesJob(t *testing.T) {
	g, err := Parse("junction", junctionSrc)
	if err != nil {
		t.Fatal(err)
	}
	job, envs, err := g.Job(3, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !job.Tunable() || job.Release != 50 {
		t.Fatalf("job = %+v", job)
	}
	if job.Chains[0].Tasks[0].Deadline != 60 {
		t.Errorf("absolute deadline = %v, want 60", job.Chains[0].Tasks[0].Deadline)
	}
	if len(envs) != 2 {
		t.Errorf("envs = %v", envs)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll(`foo 1.5 == != <= >= && || { } ( ) ; , = < > + - * / !`)
	if err != nil {
		t.Fatal(err)
	}
	// 22 tokens + EOF.
	if len(toks) != 23 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].kind != tokIdent || toks[0].text != "foo" {
		t.Errorf("tok 0 = %v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[1].num != 1.5 {
		t.Errorf("tok 1 = %v", toks[1])
	}
	if toks[2].text != "==" || toks[7].text != "||" {
		t.Errorf("operators = %v %v", toks[2], toks[7])
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lexAll("a\n  bb\n\tccc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("a at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("bb at %d:%d", toks[1].line, toks[1].col)
	}
	if toks[2].line != 3 || toks[2].col != 2 {
		t.Errorf("ccc at %d:%d", toks[2].line, toks[2].col)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Line: 3, Col: 7, Msg: "boom"}
	if got := e.Error(); got != "3:7: boom" {
		t.Errorf("Error() = %q", got)
	}
}
