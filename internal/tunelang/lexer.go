// Package tunelang implements the tunability language extensions of
// Section 4.2 — task_control_parameters, task, task_select, task_loop —
// as a standalone declarative language.  The paper embeds these constructs
// in Calypso/C++ source and derives the application's QoS agent with a
// preprocessor; here the same constructs are parsed into a
// taskgraph.Graph, from which the QoS agent enumerates execution paths.
//
// Grammar (paper syntax, with braces instead of the *end keywords):
//
//	program  = { params | step } .
//	params   = "task_control_parameters" "{" { ident [ "=" number ] ";" } "}" .
//	step     = task | select | loop | par .
//	task     = "task" ident "deadline" number [ "params" "(" idents ")" ]
//	           "{" { config } "}" .
//	config   = "config" [ "(" assigns ")" ] "require" number "procs"
//	           number "time" [ "quality" number ] ";"
//	         | "config" "range" "(" ident "=" number ".." number "step"
//	           number ")" "require" expr "procs" expr "time"
//	           [ "quality" expr ] ";" .
//	select   = "task_select" [ ident ] "{" { arm } "}" .
//	arm      = "when" "(" expr ")" "{" { step } "}"
//	           [ "finally" "{" { ident "=" expr ";" } "}" ] .
//	loop     = "task_loop" [ ident ] "(" expr ")" "{" { step } "}" .
//	par      = "task_par" [ ident ] "{" step step { step } "}" .
//
// Expressions use C syntax over constants and control parameters with
// operators || && == != < <= > >= + - * / and unary ! -.
package tunelang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single or multi-rune punctuation/operator
)

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	num  float64 // valid for tokNumber
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a positioned parse error.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// multi-rune operators, longest first.
var operators = []string{"==", "!=", "<=", ">=", "&&", "||"}

// errorf builds a positioned error at the lexer's current location.
func (l *lexer) errorf(format string, args ...interface{}) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace and // and /* */ comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			start := *l
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Line: start.line, Col: start.col, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	tk := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tk.kind = tokEOF
		return tk, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(rune(c)):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
			sb.WriteByte(l.advance())
		}
		tk.kind = tokIdent
		tk.text = sb.String()
		return tk, nil
	case c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.':
		l.advance()
		l.advance()
		tk.kind = tokPunct
		tk.text = ".."
		return tk, nil
	case c >= '0' && c <= '9' || c == '.':
		var sb strings.Builder
		seenDot := false
		for l.pos < len(l.src) {
			b := l.peekByte()
			if b == '.' {
				if seenDot || (l.pos+1 < len(l.src) && l.src[l.pos+1] == '.') {
					break // a second dot, or the ".." range operator
				}
				seenDot = true
			} else if b < '0' || b > '9' {
				break
			}
			sb.WriteByte(l.advance())
		}
		text := sb.String()
		num, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, &Error{Line: tk.line, Col: tk.col, Msg: fmt.Sprintf("bad number %q", text)}
		}
		tk.kind = tokNumber
		tk.text = text
		tk.num = num
		return tk, nil
	default:
		for _, op := range operators {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.advance()
				l.advance()
				tk.kind = tokPunct
				tk.text = op
				return tk, nil
			}
		}
		switch c {
		case '{', '}', '(', ')', ';', ',', '=', '<', '>', '+', '-', '*', '/', '!':
			l.advance()
			tk.kind = tokPunct
			tk.text = string(c)
			return tk, nil
		}
		return token{}, l.errorf("unexpected character %q", string(c))
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole input (including the trailing EOF token).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		tk, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tk)
		if tk.kind == tokEOF {
			return out, nil
		}
	}
}
