package taskgraph

import (
	"fmt"
	"strconv"
	"strings"
)

// Env binds control-parameter names to values during path enumeration.
// Parameter values are numeric (the tunability language works with integer
// and floating-point control parameters; booleans are 0/1).
type Env map[string]float64

// Clone returns an independent copy.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Expr is an expression over constants and control parameters, evaluated at
// scheduling time (the paper restricts when-exprs and loop-exprs to
// "constants and control parameters, facilitating their evaluation at
// scheduling time").
type Expr interface {
	// Eval computes the expression under the environment.  Referencing an
	// unbound parameter is an error: it means the program consults a
	// control parameter before any task has assigned it.
	Eval(env Env) (float64, error)
	// String renders the expression in source form.
	String() string
}

// Lit is a numeric literal.
type Lit float64

// Eval implements Expr.
func (l Lit) Eval(Env) (float64, error) { return float64(l), nil }

// String implements Expr.
func (l Lit) String() string { return strconv.FormatFloat(float64(l), 'g', -1, 64) }

// Ref references a control parameter.
type Ref string

// Eval implements Expr.
func (r Ref) Eval(env Env) (float64, error) {
	v, ok := env[string(r)]
	if !ok {
		return 0, fmt.Errorf("taskgraph: parameter %q unbound", string(r))
	}
	return v, nil
}

// String implements Expr.
func (r Ref) String() string { return string(r) }

// Op is a binary operator.
type Op int

// Binary operators supported in when-exprs and loop-exprs.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

// String returns the operator's source form.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Binary applies Op to two subexpressions.  Comparison and logical
// operators yield 0 or 1.
type Binary struct {
	Op   Op
	L, R Expr
}

// Eval implements Expr.
func (b Binary) Eval(env Env) (float64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	// Short-circuit logical operators.
	switch b.Op {
	case OpAnd:
		if l == 0 {
			return 0, nil
		}
		r, err := b.R.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	case OpOr:
		if l != 0 {
			return 1, nil
		}
		r, err := b.R.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("taskgraph: division by zero in %s", b)
		}
		return l / r, nil
	case OpEq:
		return boolVal(l == r), nil
	case OpNe:
		return boolVal(l != r), nil
	case OpLt:
		return boolVal(l < r), nil
	case OpLe:
		return boolVal(l <= r), nil
	case OpGt:
		return boolVal(l > r), nil
	case OpGe:
		return boolVal(l >= r), nil
	default:
		return 0, fmt.Errorf("taskgraph: unknown operator %v", b.Op)
	}
}

// String implements Expr.
func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct{ X Expr }

// Eval implements Expr.
func (n Not) Eval(env Env) (float64, error) {
	v, err := n.X.Eval(env)
	if err != nil {
		return 0, err
	}
	return boolVal(v == 0), nil
}

// String implements Expr.
func (n Not) String() string { return "!" + n.X.String() }

// Neg is arithmetic negation.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n Neg) Eval(env Env) (float64, error) {
	v, err := n.X.Eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

// String implements Expr.
func (n Neg) String() string { return "-" + n.X.String() }

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Assign sets a control parameter from an expression (a `finally` action).
type Assign struct {
	Param string
	Value Expr
}

// Apply evaluates and stores the assignment in env.
func (a Assign) Apply(env Env) error {
	v, err := a.Value.Eval(env)
	if err != nil {
		return fmt.Errorf("taskgraph: assign %s: %w", a.Param, err)
	}
	env[a.Param] = v
	return nil
}

// String renders the assignment.
func (a Assign) String() string { return a.Param + " = " + a.Value.String() }

func joinAssigns(as []Assign) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	return strings.Join(parts, "; ")
}
