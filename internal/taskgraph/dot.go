package taskgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph's structure in Graphviz DOT form: task nodes
// as boxes (one line per configuration), selects as diamonds with guarded
// edges, loops and parallel groups as labeled clusters.  It documents the
// OR graph the QoS agent negotiates with.
func (g *Graph) WriteDOT(w io.Writer) error {
	if g.Root == nil {
		return fmt.Errorf("taskgraph: graph %q has no root", g.Name)
	}
	d := &dotWriter{w: w}
	fmt.Fprintf(w, "digraph %q {\n", g.Name)
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [fontsize=10];")
	entry := d.node("entry", "oval", g.Name)
	exits := d.walk(g.Root, []string{entry})
	done := d.node("exit", "oval", "done")
	for _, e := range exits {
		d.edge(e, done, "")
	}
	fmt.Fprintln(w, "}")
	return d.err
}

type dotWriter struct {
	w   io.Writer
	n   int
	err error
}

func (d *dotWriter) node(kind, shape, label string) string {
	id := fmt.Sprintf("n%d_%s", d.n, kind)
	d.n++
	if d.err == nil {
		_, d.err = fmt.Fprintf(d.w, "  %s [shape=%s,label=%q];\n", id, shape, label)
	}
	return id
}

func (d *dotWriter) edge(from, to, label string) {
	if d.err != nil {
		return
	}
	if label != "" {
		_, d.err = fmt.Fprintf(d.w, "  %s -> %s [label=%q];\n", from, to, label)
	} else {
		_, d.err = fmt.Fprintf(d.w, "  %s -> %s;\n", from, to)
	}
}

// walk emits nodes for n, connecting from every id in `from`, and returns
// the exit node ids.
func (d *dotWriter) walk(n Node, from []string) []string {
	switch v := n.(type) {
	case *TaskNode:
		var lines []string
		lines = append(lines, fmt.Sprintf("%s (dl %g)", v.Name, v.Deadline))
		for _, c := range v.Configs {
			lines = append(lines, fmt.Sprintf("%v: %dp x %g", c.Assign, c.Procs, c.Duration))
		}
		for _, r := range v.Ranges {
			lines = append(lines, fmt.Sprintf("%s=%g..%g/%g: %s p x %s", r.Param, r.Lo, r.Hi, r.Step, r.Procs, r.Duration))
		}
		id := d.node("task", "box", strings.Join(lines, "\\n"))
		for _, f := range from {
			d.edge(f, id, "")
		}
		return []string{id}
	case Seq:
		cur := from
		for _, c := range v {
			cur = d.walk(c, cur)
		}
		return cur
	case *Select:
		id := d.node("select", "diamond", "select "+v.Name)
		for _, f := range from {
			d.edge(f, id, "")
		}
		var exits []string
		for _, br := range v.Branches {
			label := br.When.String()
			if len(br.Finally) > 0 {
				label += " / " + joinAssigns(br.Finally)
			}
			bodyExits := d.walkGuarded(br.Body, id, label)
			exits = append(exits, bodyExits...)
		}
		return exits
	case *Loop:
		id := d.node("loop", "hexagon", fmt.Sprintf("loop %s x %s", v.Name, v.Count))
		for _, f := range from {
			d.edge(f, id, "")
		}
		exits := d.walk(v.Body, []string{id})
		for _, e := range exits {
			d.edge(e, id, "repeat")
		}
		return exits
	case *Par:
		id := d.node("par", "trapezium", "par "+v.Name)
		for _, f := range from {
			d.edge(f, id, "")
		}
		joinID := d.node("join", "invtrapezium", "join "+v.Name)
		for _, br := range v.Branches {
			exits := d.walk(br, []string{id})
			for _, e := range exits {
				d.edge(e, joinID, "")
			}
		}
		return []string{joinID}
	default:
		d.node("unknown", "plaintext", fmt.Sprintf("%T", n))
		return from
	}
}

// walkGuarded is walk with a label on the entry edges.
func (d *dotWriter) walkGuarded(n Node, from, label string) []string {
	switch n.(type) {
	case Seq, *TaskNode, *Select, *Loop, *Par:
		marker := d.node("when", "point", "")
		d.edge(from, marker, label)
		return d.walk(n, []string{marker})
	default:
		return nil
	}
}
