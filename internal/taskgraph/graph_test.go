package taskgraph

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// junctionGraph builds the paper's Figure-3 junction detection program as a
// task graph: sampleImage (fine-discrete tunable), markRegion (a select on
// the sampling granularity that sets parameter c), computeJunctions (configs
// gated on c).
func junctionGraph() *Graph {
	return &Graph{
		Name: "junction-detection",
		Params: map[string]float64{
			"sampleGranularity": math.NaN(),
			"searchDistance":    math.NaN(),
			"c":                 math.NaN(),
		},
		Root: Seq{
			&TaskNode{
				Name:     "sampleImage",
				Deadline: 10,
				Params:   []string{"sampleGranularity"},
				Configs: []Config{
					{Assign: map[string]float64{"sampleGranularity": 16}, Procs: 4, Duration: 8, Quality: 1.0},
					{Assign: map[string]float64{"sampleGranularity": 64}, Procs: 4, Duration: 2, Quality: 0.95},
				},
			},
			&Select{
				Name: "markRegion",
				Branches: []Branch{
					{
						When: Binary{Op: OpEq, L: Ref("sampleGranularity"), R: Lit(16)},
						Body: &TaskNode{
							Name:     "markRegionFine",
							Deadline: 14,
							Params:   []string{"searchDistance"},
							Configs: []Config{
								{Assign: map[string]float64{"searchDistance": 2}, Procs: 2, Duration: 3, Quality: 1.0},
							},
						},
						Finally: []Assign{{Param: "c", Value: Lit(1)}},
					},
					{
						When: Binary{Op: OpEq, L: Ref("sampleGranularity"), R: Lit(64)},
						Body: &TaskNode{
							Name:     "markRegionCoarse",
							Deadline: 14,
							Params:   []string{"searchDistance"},
							Configs: []Config{
								{Assign: map[string]float64{"searchDistance": 8}, Procs: 2, Duration: 4, Quality: 1.0},
							},
						},
						Finally: []Assign{{Param: "c", Value: Lit(2)}},
					},
				},
			},
			&TaskNode{
				Name:     "computeJunctions",
				Deadline: 40,
				Params:   []string{"c"},
				Configs: []Config{
					{Assign: map[string]float64{"c": 1}, Procs: 4, Duration: 10, Quality: 1.0},
					{Assign: map[string]float64{"c": 2}, Procs: 8, Duration: 12, Quality: 0.9},
				},
			},
		},
	}
}

func TestJunctionGraphEnumeratesTwoConsistentPaths(t *testing.T) {
	g := junctionGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	chains, envs, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 {
		t.Fatalf("got %d paths, want 2 (fine and coarse)", len(chains))
	}
	fine, coarse := chains[0], chains[1]
	if len(fine.Tasks) != 3 || len(coarse.Tasks) != 3 {
		t.Fatalf("task counts: %d, %d", len(fine.Tasks), len(coarse.Tasks))
	}
	// Fine path: expensive sampling (8 time), cheap junction compute.
	if fine.Tasks[0].Duration != 8 || fine.Tasks[2].Procs != 4 {
		t.Errorf("fine path = %+v", fine.Tasks)
	}
	// Coarse path: cheap sampling (2 time), expensive junction compute —
	// the resource tradeoff over time that defines tunability.
	if coarse.Tasks[0].Duration != 2 || coarse.Tasks[2].Procs != 8 {
		t.Errorf("coarse path = %+v", coarse.Tasks)
	}
	// Parameter environments captured the configuration choices.
	if envs[0]["sampleGranularity"] != 16 || envs[0]["c"] != 1 || envs[0]["searchDistance"] != 2 {
		t.Errorf("fine env = %v", envs[0])
	}
	if envs[1]["sampleGranularity"] != 64 || envs[1]["c"] != 2 || envs[1]["searchDistance"] != 8 {
		t.Errorf("coarse env = %v", envs[1])
	}
	// Quality composes multiplicatively.
	if math.Abs(fine.Quality-1.0) > 1e-12 {
		t.Errorf("fine quality = %v", fine.Quality)
	}
	if math.Abs(coarse.Quality-0.95*0.9) > 1e-12 {
		t.Errorf("coarse quality = %v, want %v", coarse.Quality, 0.95*0.9)
	}
}

func TestJobMaterializationShiftsDeadlines(t *testing.T) {
	g := junctionGraph()
	job, _, err := g.Job(7, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != 7 || job.Release != 100 || !job.Tunable() {
		t.Fatalf("job = %+v", job)
	}
	for _, c := range job.Chains {
		if c.Tasks[0].Deadline != 110 {
			t.Errorf("first deadline = %v, want 110", c.Tasks[0].Deadline)
		}
		if c.Tasks[2].Deadline != 140 {
			t.Errorf("last deadline = %v, want 140", c.Tasks[2].Deadline)
		}
	}
}

func TestConfigGuardsPruneInconsistentPaths(t *testing.T) {
	// A task whose only config requires c=3 after a select that sets c to
	// 1 or 2: no consistent path, Enumerate must fail loudly.
	g := junctionGraph()
	g.Root = append(g.Root.(Seq), &TaskNode{
		Name:     "impossible",
		Deadline: 50,
		Params:   []string{"c"},
		Configs: []Config{
			{Assign: map[string]float64{"c": 3}, Procs: 1, Duration: 1},
		},
	})
	_, _, err := g.Enumerate(0)
	if err == nil {
		t.Fatal("graph with no consistent path enumerated successfully")
	}
	if !strings.Contains(err.Error(), "no consistent execution path") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoopExpandsBody(t *testing.T) {
	g := &Graph{
		Name:   "looped",
		Params: map[string]float64{"iters": 3},
		Root: Seq{
			&Loop{
				Name:  "main",
				Count: Ref("iters"),
				Body: &TaskNode{
					Name:     "step",
					Deadline: 100,
					Configs:  []Config{{Procs: 2, Duration: 5, Quality: 1}},
				},
			},
		},
	}
	chains, _, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 || len(chains[0].Tasks) != 3 {
		t.Fatalf("chains = %+v", chains)
	}
}

func TestLoopWithTunableBodyMultipliesPaths(t *testing.T) {
	g := &Graph{
		Name:   "looped-tunable",
		Params: map[string]float64{},
		Root: &Loop{
			Name:  "main",
			Count: Lit(2),
			Body: &TaskNode{
				Name:     "step",
				Deadline: 100,
				Params:   []string{"k"},
				Configs: []Config{
					{Assign: map[string]float64{"k": 1}, Procs: 1, Duration: 5},
					{Assign: map[string]float64{"k": 2}, Procs: 2, Duration: 3},
				},
			},
		},
	}
	chains, _, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	// The parameter guard makes the second iteration's choice consistent
	// with the first: k is bound after iteration 1, so only 2 paths (not 4).
	if len(chains) != 2 {
		t.Fatalf("got %d paths, want 2 (parameter-consistent)", len(chains))
	}
}

func TestLoopCountErrors(t *testing.T) {
	mk := func(count Expr) *Graph {
		return &Graph{
			Name: "bad-loop",
			Root: &Loop{Name: "l", Count: count, Body: &TaskNode{
				Name: "t", Deadline: 10, Configs: []Config{{Procs: 1, Duration: 1}},
			}},
		}
	}
	if _, _, err := mk(Lit(2.5)).Enumerate(0); err == nil {
		t.Error("fractional loop count accepted")
	}
	if _, _, err := mk(Lit(-1)).Enumerate(0); err == nil {
		t.Error("negative loop count accepted")
	}
	if _, _, err := mk(Ref("missing")).Enumerate(0); err == nil {
		t.Error("unbound loop count accepted")
	}
	// Zero iterations: body contributes nothing; graph has no tasks at all.
	if _, _, err := mk(Lit(0)).Enumerate(0); err == nil {
		t.Error("zero-task path accepted")
	}
}

func TestPathLimitEnforced(t *testing.T) {
	// 2^8 = 256 independent binary choices (distinct params, no guards).
	var seq Seq
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		seq = append(seq, &TaskNode{
			Name:     "t" + name,
			Deadline: 1000,
			Params:   []string{name},
			Configs: []Config{
				{Assign: map[string]float64{name: 0}, Procs: 1, Duration: 1},
				{Assign: map[string]float64{name: 1}, Procs: 1, Duration: 1},
			},
		})
	}
	g := &Graph{Name: "wide", Root: seq}
	if _, _, err := g.Enumerate(100); !errors.Is(err, ErrTooManyPaths) {
		t.Fatalf("err = %v, want ErrTooManyPaths", err)
	}
	chains, _, err := g.Enumerate(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 256 {
		t.Fatalf("got %d paths, want 256", len(chains))
	}
}

func TestSelectWhenErrors(t *testing.T) {
	g := &Graph{
		Name: "bad-select",
		Root: &Select{
			Name: "s",
			Branches: []Branch{{
				When: Ref("unbound"),
				Body: &TaskNode{Name: "t", Deadline: 10, Configs: []Config{{Procs: 1, Duration: 1}}},
			}},
		},
	}
	if _, _, err := g.Enumerate(0); err == nil {
		t.Fatal("unbound when-expr accepted")
	}
}

func TestValidateCatchesStructuralErrors(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"no root", &Graph{Name: "g"}},
		{"task without configs", &Graph{Name: "g", Root: &TaskNode{Name: "t", Deadline: 5}}},
		{"task with zero deadline", &Graph{Name: "g", Root: &TaskNode{
			Name: "t", Configs: []Config{{Procs: 1, Duration: 1}}}}},
		{"config with zero procs", &Graph{Name: "g", Root: &TaskNode{
			Name: "t", Deadline: 5, Configs: []Config{{Procs: 0, Duration: 1}}}}},
		{"config assigns undeclared param", &Graph{Name: "g", Root: &TaskNode{
			Name: "t", Deadline: 5,
			Configs: []Config{{Assign: map[string]float64{"p": 1}, Procs: 1, Duration: 1}}}}},
		{"select without branches", &Graph{Name: "g", Root: &Select{Name: "s"}}},
		{"branch without when", &Graph{Name: "g", Root: &Select{Name: "s", Branches: []Branch{{
			Body: &TaskNode{Name: "t", Deadline: 5, Configs: []Config{{Procs: 1, Duration: 1}}}}}}}},
		{"branch without body", &Graph{Name: "g", Root: &Select{Name: "s", Branches: []Branch{{
			When: Lit(1)}}}}},
		{"loop without count", &Graph{Name: "g", Root: &Loop{Name: "l", Body: &TaskNode{
			Name: "t", Deadline: 5, Configs: []Config{{Procs: 1, Duration: 1}}}}}},
		{"loop without body", &Graph{Name: "g", Root: &Loop{Name: "l", Count: Lit(1)}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := junctionGraph().Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestGraphString(t *testing.T) {
	out := junctionGraph().String()
	for _, want := range []string{"junction-detection", "sampleImage", "select markRegion", "when", "finally", "computeJunctions"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
