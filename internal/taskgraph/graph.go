// Package taskgraph represents tunable applications the way the QoS agent
// sees them (Section 3.1 of the paper): an OR task graph whose nodes are
// tasks with admissible configurations, selections among alternatives, and
// loops.  Enumerating the graph's consistent execution paths yields the
// task chains handed to the QoS arbitrator for admission control.
package taskgraph

import (
	"fmt"
	"math"
	"strings"

	"milan/internal/core"
)

// Config is one admissible configuration of a task: an assignment of values
// to the task's control parameters, the resource request it implies
// (processors for a duration — the paper's processor-time tuple), and the
// resulting output quality.
//
// A parameter in Assign that is already bound in the current environment
// acts as a guard: the configuration is admissible only if the values
// match.  This is how "only one of the computeJunctions configurations is
// allowed" based on earlier choices (Section 4.3).
type Config struct {
	Assign   map[string]float64
	Procs    int
	Duration float64
	Quality  float64
}

// Node is an element of the task graph.
type Node interface {
	// enumerate extends each partial path in `in` with this node's
	// alternatives, respecting the path limit.
	enumerate(in []*path, limit int) ([]*path, error)
	// describe renders the node for debugging/linting.
	describe(b *strings.Builder, indent string)
}

// TaskNode is a sequential or parallel step with a deadline (relative to
// job release), the control parameters it is configured by, and its
// admissible configurations.
type TaskNode struct {
	Name     string
	Deadline float64 // relative: the step and its predecessors finish within this much of release
	Params   []string
	Configs  []Config
	// Ranges are fine-continuous knobs (discretized), expanded into
	// configurations during enumeration with their symbolic resource
	// expressions evaluated under the path's parameter environment.
	Ranges []RangeSpec
}

// Seq runs nodes in order.
type Seq []Node

// Branch is one arm of a Select: taken when When is true; Finally runs
// after the arm's body, typically to set parameters consumed downstream.
type Branch struct {
	When    Expr
	Body    Node
	Finally []Assign
}

// Select models task_select: exactly the arms whose when-exprs hold under
// the current parameter environment are explorable alternatives.
type Select struct {
	Name     string
	Branches []Branch
}

// Loop models task_loop: the body repeats Count times (evaluated from the
// environment at entry).
type Loop struct {
	Name  string
	Count Expr
	Body  Node
}

// Graph is a complete tunable-application description.
type Graph struct {
	Name   string
	Params map[string]float64 // declared control parameters and initial values (NaN = uninitialized)
	Root   Node
}

// path is a partial execution path during enumeration.
type path struct {
	env     Env
	tasks   []core.Task
	quality float64
}

func (p *path) clone() *path {
	return &path{
		env:     p.env.Clone(),
		tasks:   append([]core.Task(nil), p.tasks...),
		quality: p.quality,
	}
}

// ErrTooManyPaths is wrapped by Enumerate when the OR graph has more
// consistent paths than the caller's limit.
var ErrTooManyPaths = fmt.Errorf("taskgraph: path limit exceeded")

// Enumerate lists every consistent execution path of the graph as a
// core.Chain, with task deadlines still relative to job release.  Path
// quality is the product of task qualities ("obtained by composing the
// output qualities of each of the tasks").  limit bounds the number of
// paths explored (0 means 256).
func (g *Graph) Enumerate(limit int) ([]core.Chain, []Env, error) {
	if limit <= 0 {
		limit = 256
	}
	if g.Root == nil {
		return nil, nil, fmt.Errorf("taskgraph: graph %q has no root", g.Name)
	}
	start := &path{env: Env{}, quality: 1}
	for k, v := range g.Params {
		if !math.IsNaN(v) {
			start.env[k] = v
		}
	}
	paths, err := g.Root.enumerate([]*path{start}, limit)
	if err != nil {
		return nil, nil, err
	}
	var chains []core.Chain
	var envs []Env
	for i, p := range paths {
		if len(p.tasks) == 0 {
			continue // a path with no tasks cannot be scheduled
		}
		chains = append(chains, core.Chain{
			Name:    fmt.Sprintf("%s/path%d", g.Name, i),
			Tasks:   p.tasks,
			Quality: p.quality,
		})
		envs = append(envs, p.env)
	}
	if len(chains) == 0 {
		return nil, nil, fmt.Errorf("taskgraph: graph %q has no consistent execution path", g.Name)
	}
	return chains, envs, nil
}

// Job materializes the graph into an admissible job released at `release`:
// relative deadlines become absolute and each enumerated path becomes one
// chain of the (tunable) job.
func (g *Graph) Job(id int, release float64, limit int) (core.Job, []Env, error) {
	chains, envs, err := g.Enumerate(limit)
	if err != nil {
		return core.Job{}, nil, err
	}
	for ci := range chains {
		for ti := range chains[ci].Tasks {
			chains[ci].Tasks[ti].Deadline += release
		}
	}
	job := core.Job{ID: id, Name: g.Name, Release: release, Chains: chains}
	if err := job.Validate(); err != nil {
		return core.Job{}, nil, fmt.Errorf("taskgraph: graph %q materializes invalid job: %w", g.Name, err)
	}
	return job, envs, nil
}

// Validate checks the graph's static structure.
func (g *Graph) Validate() error {
	if g.Root == nil {
		return fmt.Errorf("taskgraph: graph %q has no root", g.Name)
	}
	return validateNode(g.Root)
}

func validateNode(n Node) error {
	switch v := n.(type) {
	case *TaskNode:
		if len(v.Configs) == 0 && len(v.Ranges) == 0 {
			return fmt.Errorf("taskgraph: task %q has no configurations", v.Name)
		}
		if v.Deadline <= 0 {
			return fmt.Errorf("taskgraph: task %q has non-positive deadline %v", v.Name, v.Deadline)
		}
		for i, c := range v.Configs {
			if c.Procs < 1 || c.Duration <= 0 {
				return fmt.Errorf("taskgraph: task %q config %d: bad resource request (%d procs, %v time)",
					v.Name, i, c.Procs, c.Duration)
			}
			for name := range c.Assign {
				if !contains(v.Params, name) {
					return fmt.Errorf("taskgraph: task %q config %d assigns undeclared parameter %q",
						v.Name, i, name)
				}
			}
		}
		for i, r := range v.Ranges {
			if err := r.Validate(); err != nil {
				return fmt.Errorf("taskgraph: task %q range %d: %w", v.Name, i, err)
			}
			if !contains(v.Params, r.Param) {
				return fmt.Errorf("taskgraph: task %q range %d sweeps undeclared parameter %q",
					v.Name, i, r.Param)
			}
		}
	case Seq:
		for _, c := range v {
			if err := validateNode(c); err != nil {
				return err
			}
		}
	case *Select:
		if len(v.Branches) == 0 {
			return fmt.Errorf("taskgraph: select %q has no branches", v.Name)
		}
		for i, br := range v.Branches {
			if br.When == nil {
				return fmt.Errorf("taskgraph: select %q branch %d has no when-expr", v.Name, i)
			}
			if br.Body == nil {
				return fmt.Errorf("taskgraph: select %q branch %d has no body", v.Name, i)
			}
			if err := validateNode(br.Body); err != nil {
				return err
			}
		}
	case *Loop:
		if v.Count == nil {
			return fmt.Errorf("taskgraph: loop %q has no count", v.Name)
		}
		if v.Body == nil {
			return fmt.Errorf("taskgraph: loop %q has no body", v.Name)
		}
		return validateNode(v.Body)
	case *Par:
		if len(v.Branches) == 0 {
			return fmt.Errorf("taskgraph: par %q has no branches", v.Name)
		}
		for _, br := range v.Branches {
			if err := validateNode(br); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("taskgraph: unknown node type %T", n)
	}
	return nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// enumerate for TaskNode: each admissible configuration — static or
// expanded from a fine-continuous range — forks the path.
func (t *TaskNode) enumerate(in []*path, limit int) ([]*path, error) {
	var out []*path
	for _, p := range in {
		configs := t.Configs
		for _, r := range t.Ranges {
			expanded, err := r.expand(p.env)
			if err != nil {
				return nil, fmt.Errorf("taskgraph: task %q: %w", t.Name, err)
			}
			configs = append(append([]Config(nil), configs...), expanded...)
		}
		admitted := 0
		for _, cfg := range configs {
			if !cfg.admissible(p.env) {
				continue
			}
			admitted++
			np := p.clone()
			for k, v := range cfg.Assign {
				np.env[k] = v
			}
			q := cfg.Quality
			if q == 0 {
				q = 1 // unspecified quality does not degrade the path
			}
			np.quality *= q
			np.tasks = append(np.tasks, core.Task{
				Name:     t.Name,
				Procs:    cfg.Procs,
				Duration: cfg.Duration,
				Deadline: t.Deadline,
				Quality:  q,
			})
			out = append(out, np)
			if len(out) > limit {
				return nil, fmt.Errorf("%w: more than %d paths at task %q", ErrTooManyPaths, limit, t.Name)
			}
		}
		if admitted == 0 {
			// This prefix dies here: no configuration is consistent with
			// the parameters chosen so far.  That is legal as long as some
			// other prefix survives; Enumerate reports an error if none do.
			continue
		}
	}
	return out, nil
}

// admissible reports whether the configuration's assignments agree with the
// parameters already bound in env.
func (c Config) admissible(env Env) bool {
	for k, v := range c.Assign {
		if bound, ok := env[k]; ok && bound != v {
			return false
		}
	}
	return true
}

func (s Seq) enumerate(in []*path, limit int) ([]*path, error) {
	cur := in
	var err error
	for _, n := range s {
		cur, err = n.enumerate(cur, limit)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (s *Select) enumerate(in []*path, limit int) ([]*path, error) {
	var out []*path
	for _, p := range in {
		for bi, br := range s.Branches {
			v, err := br.When.Eval(p.env)
			if err != nil {
				return nil, fmt.Errorf("taskgraph: select %q branch %d when-expr: %w", s.Name, bi, err)
			}
			if v == 0 {
				continue
			}
			sub, err := br.Body.enumerate([]*path{p.clone()}, limit)
			if err != nil {
				return nil, err
			}
			for _, sp := range sub {
				for _, as := range br.Finally {
					if err := as.Apply(sp.env); err != nil {
						return nil, fmt.Errorf("taskgraph: select %q branch %d finally: %w", s.Name, bi, err)
					}
				}
				out = append(out, sp)
				if len(out) > limit {
					return nil, fmt.Errorf("%w: more than %d paths at select %q", ErrTooManyPaths, limit, s.Name)
				}
			}
		}
		// A prefix with no live branch simply dies, like a task whose
		// config set is inconsistent with the parameters chosen so far.
	}
	return out, nil
}

func (l *Loop) enumerate(in []*path, limit int) ([]*path, error) {
	var out []*path
	for _, p := range in {
		cv, err := l.Count.Eval(p.env)
		if err != nil {
			return nil, fmt.Errorf("taskgraph: loop %q count: %w", l.Name, err)
		}
		n := int(cv)
		if float64(n) != cv || n < 0 {
			return nil, fmt.Errorf("taskgraph: loop %q count %v is not a non-negative integer", l.Name, cv)
		}
		cur := []*path{p.clone()}
		for i := 0; i < n; i++ {
			cur, err = l.Body.enumerate(cur, limit)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, cur...)
		if len(out) > limit {
			return nil, fmt.Errorf("%w: more than %d paths at loop %q", ErrTooManyPaths, limit, l.Name)
		}
	}
	return out, nil
}

// String renders the graph structure for tunelint and debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", g.Name)
	if len(g.Params) > 0 {
		b.WriteString("  params:")
		for k, v := range g.Params {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %s", k)
			} else {
				fmt.Fprintf(&b, " %s=%g", k, v)
			}
		}
		b.WriteString("\n")
	}
	if g.Root != nil {
		g.Root.describe(&b, "  ")
	}
	return b.String()
}

func (t *TaskNode) describe(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%stask %s deadline=%g params=%v configs=%d ranges=%d\n",
		indent, t.Name, t.Deadline, t.Params, len(t.Configs), len(t.Ranges))
	for _, c := range t.Configs {
		fmt.Fprintf(b, "%s  config %v -> %d procs x %g time, quality %g\n",
			indent, c.Assign, c.Procs, c.Duration, c.Quality)
	}
	for _, r := range t.Ranges {
		q := "1"
		if r.Quality != nil {
			q = r.Quality.String()
		}
		fmt.Fprintf(b, "%s  config range %s = %g .. %g step %g -> %s procs x %s time, quality %s\n",
			indent, r.Param, r.Lo, r.Hi, r.Step, r.Procs, r.Duration, q)
	}
}

func (s Seq) describe(b *strings.Builder, indent string) {
	for _, n := range s {
		n.describe(b, indent)
	}
}

func (s *Select) describe(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sselect %s\n", indent, s.Name)
	for _, br := range s.Branches {
		fmt.Fprintf(b, "%s  when %s:\n", indent, br.When)
		br.Body.describe(b, indent+"    ")
		if len(br.Finally) > 0 {
			fmt.Fprintf(b, "%s  finally { %s }\n", indent, joinAssigns(br.Finally))
		}
	}
}

func (l *Loop) describe(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sloop %s x %s\n", indent, l.Name, l.Count)
	l.Body.describe(b, indent+"  ")
}
