package taskgraph

import (
	"math"
	"strings"
	"testing"

	"milan/internal/core"
)

// parGraph: prep, then two concurrent analyses (one tunable), then merge.
func parGraph() *Graph {
	task := func(name string, deadline float64, configs ...Config) *TaskNode {
		var params []string
		for _, c := range configs {
			for k := range c.Assign {
				if !contains(params, k) {
					params = append(params, k)
				}
			}
		}
		return &TaskNode{Name: name, Deadline: deadline, Params: params, Configs: configs}
	}
	return &Graph{
		Name: "pipeline",
		Params: map[string]float64{
			"mode": math.NaN(),
		},
		Root: Seq{
			task("prep", 10, Config{Procs: 2, Duration: 5}),
			&Par{
				Name: "analyses",
				Branches: []Node{
					task("audio", 40, Config{Procs: 2, Duration: 10}),
					task("video", 40,
						Config{Assign: map[string]float64{"mode": 1}, Procs: 6, Duration: 10, Quality: 1},
						Config{Assign: map[string]float64{"mode": 2}, Procs: 2, Duration: 25, Quality: 0.9},
					),
				},
			},
			task("merge", 100, Config{Procs: 2, Duration: 5}),
		},
	}
}

func TestParGraphEnumeratesDAGs(t *testing.T) {
	g := parGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	dags, envs, err := g.EnumerateDAGs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 2 {
		t.Fatalf("paths = %d, want 2 (video modes)", len(dags))
	}
	for i, d := range dags {
		if err := d.Validate(); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		if len(d.Tasks) != 4 {
			t.Fatalf("path %d tasks = %d", i, len(d.Tasks))
		}
		// prep has no preds; audio and video depend on prep; merge depends
		// on both analyses.
		if len(d.Tasks[0].Preds) != 0 {
			t.Errorf("prep preds = %v", d.Tasks[0].Preds)
		}
		if len(d.Tasks[1].Preds) != 1 || d.Tasks[1].Preds[0] != 0 {
			t.Errorf("audio preds = %v", d.Tasks[1].Preds)
		}
		if len(d.Tasks[2].Preds) != 1 || d.Tasks[2].Preds[0] != 0 {
			t.Errorf("video preds = %v", d.Tasks[2].Preds)
		}
		if len(d.Tasks[3].Preds) != 2 {
			t.Errorf("merge preds = %v", d.Tasks[3].Preds)
		}
	}
	if envs[0]["mode"] != 1 || envs[1]["mode"] != 2 {
		t.Errorf("envs = %v", envs)
	}
	if math.Abs(dags[1].Quality-0.9) > 1e-12 {
		t.Errorf("mode-2 quality = %v", dags[1].Quality)
	}
}

func TestParGraphSchedulesWithOverlap(t *testing.T) {
	g := parGraph()
	job, _, err := g.DAGJob(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewScheduler(8, 0, nil)
	pl, err := s.AdmitDAG(job)
	if err != nil {
		t.Fatal(err)
	}
	// Mode 1 (6+2 procs fits on 8): audio and video run concurrently.
	if pl.Chain != 0 {
		t.Fatalf("chose path %d, want 0 (earliest finish)", pl.Chain)
	}
	audio, video := pl.Tasks[1], pl.Tasks[2]
	if audio.Start != video.Start {
		t.Fatalf("analyses not concurrent: %+v %+v", audio, video)
	}
	// Makespan: 5 + 10 + 5 = 20.
	if pl.Tasks[3].Finish != 20 {
		t.Fatalf("makespan = %v, want 20", pl.Tasks[3].Finish)
	}
}

func TestParGraphFallsBackToSerializableModeOnNarrowMachine(t *testing.T) {
	g := parGraph()
	job, _, err := g.DAGJob(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// On 4 procs, mode 1 (video needs 6) is infeasible entirely; mode 2
	// (2+2) still fits with overlap.
	s := core.NewScheduler(4, 0, nil)
	pl, err := s.AdmitDAG(job)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chain != 1 {
		t.Fatalf("chose path %d, want 1 (mode 2)", pl.Chain)
	}
}

func TestParChainEnumerationRefusesCleanly(t *testing.T) {
	g := parGraph()
	_, _, err := g.Enumerate(0)
	if err == nil || !strings.Contains(err.Error(), "DAG enumeration") {
		t.Fatalf("err = %v, want DAG-enumeration hint", err)
	}
}

func TestParValidation(t *testing.T) {
	g := &Graph{Name: "bad", Root: &Par{Name: "empty"}}
	if g.Validate() == nil {
		t.Error("empty par accepted")
	}
}

func TestDAGEnumerationMatchesChainsOnLinearGraphs(t *testing.T) {
	g := junctionGraph() // no Par nodes
	chains, chainEnvs, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	dags, dagEnvs, err := g.EnumerateDAGs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != len(dags) {
		t.Fatalf("chains %d != dags %d", len(chains), len(dags))
	}
	for i := range chains {
		if len(chains[i].Tasks) != len(dags[i].Tasks) {
			t.Fatalf("path %d task counts differ", i)
		}
		for ti := range chains[i].Tasks {
			ct, dt := chains[i].Tasks[ti], dags[i].Tasks[ti]
			if ct.Procs != dt.Procs || ct.Duration != dt.Duration || ct.Deadline != dt.Deadline {
				t.Fatalf("path %d task %d: %+v vs %+v", i, ti, ct, dt)
			}
			if ti > 0 && (len(dt.Preds) != 1 || dt.Preds[0] != ti-1) {
				t.Fatalf("path %d task %d preds = %v, want linear", i, ti, dt.Preds)
			}
		}
		for k, v := range chainEnvs[i] {
			if dagEnvs[i][k] != v {
				t.Fatalf("path %d env mismatch at %q", i, k)
			}
		}
	}
}

func TestParDescribe(t *testing.T) {
	out := parGraph().String()
	if !strings.Contains(out, "par analyses") {
		t.Errorf("String() missing par node:\n%s", out)
	}
}

func TestNestedParAndLoopDAG(t *testing.T) {
	mk := func(name string, procs int) *TaskNode {
		return &TaskNode{Name: name, Deadline: 100, Configs: []Config{{Procs: procs, Duration: 5}}}
	}
	g := &Graph{
		Name: "nested",
		Root: &Loop{
			Name:  "frames",
			Count: Lit(2),
			Body: &Par{
				Name:     "split",
				Branches: []Node{mk("a", 1), mk("b", 1)},
			},
		},
	}
	dags, _, err := g.EnumerateDAGs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 1 {
		t.Fatalf("paths = %d", len(dags))
	}
	d := dags[0]
	if len(d.Tasks) != 4 {
		t.Fatalf("tasks = %d, want 4 (2 iterations x 2 branches)", len(d.Tasks))
	}
	// Second iteration's tasks depend on both first-iteration tasks.
	for _, ti := range []int{2, 3} {
		if len(d.Tasks[ti].Preds) != 2 {
			t.Fatalf("iteration-2 task %d preds = %v, want join on both", ti, d.Tasks[ti].Preds)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
