package taskgraph

import (
	"fmt"
	"math"
)

// RangeSpec is fine-continuous tunability (Section 4.1's third model): a
// control parameter sweeps a continuous interval — discretized at Step —
// and the task's resource request and quality are symbolic expressions of
// it, evaluated at scheduling time.  The paper's preprocessor leaves this
// out ("supporting fine-continuous tunability requires the preprocessor to
// handle symbolic expressions for resource requirements and deadlines");
// this implements it.
//
// The expressions may also reference previously bound control parameters,
// so a knob can depend on upstream configuration choices.
type RangeSpec struct {
	Param        string
	Lo, Hi, Step float64
	Procs        Expr // must evaluate to a positive integer
	Duration     Expr // must evaluate to a positive number
	Quality      Expr // optional; nil means quality 1
}

// Validate checks the spec's static structure.
func (r RangeSpec) Validate() error {
	if r.Param == "" {
		return fmt.Errorf("taskgraph: range config needs a parameter")
	}
	if !(r.Step > 0) {
		return fmt.Errorf("taskgraph: range %s: step %v must be positive", r.Param, r.Step)
	}
	if r.Hi < r.Lo {
		return fmt.Errorf("taskgraph: range %s: empty interval [%v, %v]", r.Param, r.Lo, r.Hi)
	}
	if n := (r.Hi - r.Lo) / r.Step; n > 4096 {
		return fmt.Errorf("taskgraph: range %s: %v values (cap 4096); coarsen the step", r.Param, math.Floor(n)+1)
	}
	if r.Procs == nil || r.Duration == nil {
		return fmt.Errorf("taskgraph: range %s: needs procs and duration expressions", r.Param)
	}
	return nil
}

// values returns the discretized knob settings; if the parameter is
// already bound in env, only the bound value (when inside the interval)
// remains admissible.
func (r RangeSpec) values(env Env) []float64 {
	if bound, ok := env[r.Param]; ok {
		if bound >= r.Lo-1e-9 && bound <= r.Hi+1e-9 {
			return []float64{bound}
		}
		return nil
	}
	var out []float64
	for v := r.Lo; v <= r.Hi+1e-9; v += r.Step {
		out = append(out, v)
	}
	return out
}

// instantiate evaluates the spec at one knob value under env.
func (r RangeSpec) instantiate(env Env, v float64) (Config, error) {
	scoped := env.Clone()
	scoped[r.Param] = v
	procsF, err := r.Procs.Eval(scoped)
	if err != nil {
		return Config{}, fmt.Errorf("taskgraph: range %s=%v procs: %w", r.Param, v, err)
	}
	procs := math.Round(procsF)
	if procs < 1 || math.Abs(procs-procsF) > 1e-6 {
		return Config{}, fmt.Errorf("taskgraph: range %s=%v: procs expression yields %v, need a positive integer",
			r.Param, v, procsF)
	}
	dur, err := r.Duration.Eval(scoped)
	if err != nil {
		return Config{}, fmt.Errorf("taskgraph: range %s=%v duration: %w", r.Param, v, err)
	}
	if dur <= 0 {
		return Config{}, fmt.Errorf("taskgraph: range %s=%v: duration %v must be positive", r.Param, v, dur)
	}
	quality := 1.0
	if r.Quality != nil {
		quality, err = r.Quality.Eval(scoped)
		if err != nil {
			return Config{}, fmt.Errorf("taskgraph: range %s=%v quality: %w", r.Param, v, err)
		}
		if quality <= 0 {
			return Config{}, fmt.Errorf("taskgraph: range %s=%v: quality %v must be positive", r.Param, v, quality)
		}
	}
	return Config{
		Assign:   map[string]float64{r.Param: v},
		Procs:    int(procs),
		Duration: dur,
		Quality:  quality,
	}, nil
}

// expand produces the admissible configurations of the spec under env.
func (r RangeSpec) expand(env Env) ([]Config, error) {
	var out []Config
	for _, v := range r.values(env) {
		cfg, err := r.instantiate(env, v)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}
