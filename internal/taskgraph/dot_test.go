package taskgraph

import (
	"strings"
	"testing"
)

func TestWriteDOTJunction(t *testing.T) {
	var sb strings.Builder
	if err := junctionGraph().WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph", "rankdir=TB", "sampleImage", "select markRegion",
		"computeJunctions", "sampleGranularity == 16", "c = 1", "done", "->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT not closed")
	}
}

func TestWriteDOTParAndLoopAndRange(t *testing.T) {
	var sb strings.Builder
	if err := parGraph().WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "par analyses") || !strings.Contains(sb.String(), "join analyses") {
		t.Errorf("par/join missing:\n%s", sb.String())
	}
	sb.Reset()
	if err := rangedGraph().WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "g=4..16/4") {
		t.Errorf("range line missing:\n%s", sb.String())
	}
	sb.Reset()
	loop := &Graph{Name: "l", Root: &Loop{Name: "main", Count: Lit(3), Body: &TaskNode{
		Name: "t", Deadline: 5, Configs: []Config{{Procs: 1, Duration: 1}},
	}}}
	if err := loop.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "loop main x 3") || !strings.Contains(sb.String(), "repeat") {
		t.Errorf("loop missing:\n%s", sb.String())
	}
}

func TestWriteDOTEmptyGraph(t *testing.T) {
	var sb strings.Builder
	if err := (&Graph{Name: "e"}).WriteDOT(&sb); err == nil {
		t.Fatal("rootless graph rendered")
	}
}
