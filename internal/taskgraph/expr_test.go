package taskgraph

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, e Expr, env Env) float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	env := Env{"x": 4, "y": 2}
	cases := []struct {
		e    Expr
		want float64
	}{
		{Lit(3.5), 3.5},
		{Ref("x"), 4},
		{Binary{OpAdd, Ref("x"), Ref("y")}, 6},
		{Binary{OpSub, Ref("x"), Ref("y")}, 2},
		{Binary{OpMul, Ref("x"), Ref("y")}, 8},
		{Binary{OpDiv, Ref("x"), Ref("y")}, 2},
		{Neg{Ref("x")}, -4},
		{Binary{OpAdd, Binary{OpMul, Lit(2), Ref("x")}, Lit(1)}, 9},
	}
	for _, c := range cases {
		if got := evalOK(t, c.e, env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprComparisonsAndLogic(t *testing.T) {
	env := Env{"x": 4, "y": 2}
	cases := []struct {
		e    Expr
		want float64
	}{
		{Binary{OpEq, Ref("x"), Lit(4)}, 1},
		{Binary{OpEq, Ref("x"), Lit(5)}, 0},
		{Binary{OpNe, Ref("x"), Lit(5)}, 1},
		{Binary{OpLt, Ref("y"), Ref("x")}, 1},
		{Binary{OpLe, Ref("x"), Ref("x")}, 1},
		{Binary{OpGt, Ref("y"), Ref("x")}, 0},
		{Binary{OpGe, Ref("x"), Lit(4)}, 1},
		{Binary{OpAnd, Lit(1), Lit(2)}, 1},
		{Binary{OpAnd, Lit(0), Lit(2)}, 0},
		{Binary{OpOr, Lit(0), Lit(0)}, 0},
		{Binary{OpOr, Lit(0), Lit(3)}, 1},
		{Not{Lit(0)}, 1},
		{Not{Lit(7)}, 0},
	}
	for _, c := range cases {
		if got := evalOK(t, c.e, env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	// The right operand references an unbound parameter; short-circuiting
	// must avoid evaluating it.
	if got := evalOK(t, Binary{OpAnd, Lit(0), Ref("unbound")}, Env{}); got != 0 {
		t.Errorf("0 && unbound = %v", got)
	}
	if got := evalOK(t, Binary{OpOr, Lit(1), Ref("unbound")}, Env{}); got != 1 {
		t.Errorf("1 || unbound = %v", got)
	}
	// Without short-circuit the unbound reference is an error.
	if _, err := (Binary{OpAnd, Lit(1), Ref("unbound")}).Eval(Env{}); err == nil {
		t.Error("1 && unbound succeeded")
	}
}

func TestExprErrors(t *testing.T) {
	if _, err := Ref("missing").Eval(Env{}); err == nil {
		t.Error("unbound ref evaluated")
	}
	if _, err := (Binary{OpDiv, Lit(1), Lit(0)}).Eval(Env{}); err == nil {
		t.Error("division by zero evaluated")
	}
	if _, err := (Binary{Op(99), Lit(1), Lit(1)}).Eval(Env{}); err == nil {
		t.Error("unknown operator evaluated")
	}
	// Errors propagate through unary wrappers.
	if _, err := (Not{Ref("m")}).Eval(Env{}); err == nil {
		t.Error("Not over unbound ref evaluated")
	}
	if _, err := (Neg{Ref("m")}).Eval(Env{}); err == nil {
		t.Error("Neg over unbound ref evaluated")
	}
}

func TestExprString(t *testing.T) {
	e := Binary{OpAnd, Binary{OpEq, Ref("g"), Lit(16)}, Not{Ref("done")}}
	got := e.String()
	for _, want := range []string{"g", "==", "16", "&&", "!done"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Errorf("unknown op string = %q", Op(99).String())
	}
}

func TestAssignApply(t *testing.T) {
	env := Env{"x": 2}
	a := Assign{Param: "y", Value: Binary{OpMul, Ref("x"), Lit(3)}}
	if err := a.Apply(env); err != nil {
		t.Fatal(err)
	}
	if env["y"] != 6 {
		t.Errorf("y = %v, want 6", env["y"])
	}
	bad := Assign{Param: "z", Value: Ref("missing")}
	if err := bad.Apply(env); err == nil {
		t.Error("assignment from unbound ref applied")
	}
	if got := a.String(); !strings.Contains(got, "y = ") {
		t.Errorf("Assign.String() = %q", got)
	}
}

func TestEnvCloneIsIndependent(t *testing.T) {
	a := Env{"x": 1}
	b := a.Clone()
	b["x"] = 2
	b["y"] = 3
	if a["x"] != 1 {
		t.Error("clone mutated original")
	}
	if _, ok := a["y"]; ok {
		t.Error("clone shares storage")
	}
}

// TestQuickComparisonsConsistent: for random operand pairs, exactly one of
// <, ==, > holds, and <= == (< or ==).
func TestQuickComparisonsConsistent(t *testing.T) {
	f := func(a, b float64) bool {
		env := Env{"a": a, "b": b}
		lt := evalQ(Binary{OpLt, Ref("a"), Ref("b")}, env)
		eq := evalQ(Binary{OpEq, Ref("a"), Ref("b")}, env)
		gt := evalQ(Binary{OpGt, Ref("a"), Ref("b")}, env)
		le := evalQ(Binary{OpLe, Ref("a"), Ref("b")}, env)
		ge := evalQ(Binary{OpGe, Ref("a"), Ref("b")}, env)
		if lt+eq+gt != 1 {
			return false
		}
		if le != boolVal(lt == 1 || eq == 1) {
			return false
		}
		return ge == boolVal(gt == 1 || eq == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func evalQ(e Expr, env Env) float64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}
