package taskgraph

import (
	"math"
	"strings"
	"testing"
)

// rangedGraph models a fine-continuous sampling knob: granularity g sweeps
// 4..16 in steps of 4; processors and time are symbolic in g.
func rangedGraph() *Graph {
	return &Graph{
		Name:   "continuous",
		Params: map[string]float64{"g": math.NaN()},
		Root: &TaskNode{
			Name:     "sample",
			Deadline: 100,
			Params:   []string{"g"},
			Ranges: []RangeSpec{{
				Param: "g", Lo: 4, Hi: 16, Step: 4,
				Procs:    Binary{OpDiv, Lit(48), Ref("g")}, // 12, 6, 4, 3
				Duration: Binary{OpDiv, Ref("g"), Lit(2)},  // 2, 4, 6, 8
				Quality:  Binary{OpSub, Lit(1), Binary{OpDiv, Ref("g"), Lit(100)}},
			}},
		},
	}
}

func TestRangeSpecValidate(t *testing.T) {
	good := RangeSpec{Param: "g", Lo: 1, Hi: 10, Step: 1, Procs: Lit(1), Duration: Lit(1)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []RangeSpec{
		{Lo: 1, Hi: 10, Step: 1, Procs: Lit(1), Duration: Lit(1)},                // no param
		{Param: "g", Lo: 1, Hi: 10, Step: 0, Procs: Lit(1), Duration: Lit(1)},    // zero step
		{Param: "g", Lo: 10, Hi: 1, Step: 1, Procs: Lit(1), Duration: Lit(1)},    // inverted
		{Param: "g", Lo: 0, Hi: 1e6, Step: 0.1, Procs: Lit(1), Duration: Lit(1)}, // too many values
		{Param: "g", Lo: 1, Hi: 10, Step: 1, Duration: Lit(1)},                   // no procs expr
		{Param: "g", Lo: 1, Hi: 10, Step: 1, Procs: Lit(1)},                      // no duration expr
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestRangeEnumeratesDiscretizedKnob(t *testing.T) {
	g := rangedGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	chains, envs, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 4 {
		t.Fatalf("paths = %d, want 4 (g in {4,8,12,16})", len(chains))
	}
	// g=4: 12 procs x 2; g=16: 3 procs x 8; quality 1-g/100.
	first, last := chains[0], chains[3]
	if first.Tasks[0].Procs != 12 || first.Tasks[0].Duration != 2 {
		t.Errorf("g=4 config = %+v", first.Tasks[0])
	}
	if last.Tasks[0].Procs != 3 || last.Tasks[0].Duration != 8 {
		t.Errorf("g=16 config = %+v", last.Tasks[0])
	}
	if math.Abs(first.Quality-0.96) > 1e-12 {
		t.Errorf("g=4 quality = %v", first.Quality)
	}
	if envs[0]["g"] != 4 || envs[3]["g"] != 16 {
		t.Errorf("envs = %v", envs)
	}
}

func TestRangeRejectsNonIntegralProcs(t *testing.T) {
	g := rangedGraph()
	// 64/g over {4, 8, 12, 16}: 64/12 is not integral.
	g.Root.(*TaskNode).Ranges[0].Procs = Binary{OpDiv, Lit(64), Ref("g")}
	_, _, err := g.Enumerate(0)
	if err == nil {
		t.Fatal("non-integral processor expression enumerated")
	}
	if !strings.Contains(err.Error(), "positive integer") {
		t.Fatalf("err = %v", err)
	}
}

func TestRangeBoundParameterActsAsGuard(t *testing.T) {
	// An upstream task binds g; the ranged task must then use exactly that
	// value (fine-continuous knobs restricted by earlier coarse choices).
	g := &Graph{
		Name:   "guarded",
		Params: map[string]float64{"g": math.NaN()},
		Root: Seq{
			&TaskNode{
				Name:     "choose",
				Deadline: 10,
				Params:   []string{"g"},
				Configs: []Config{
					{Assign: map[string]float64{"g": 8}, Procs: 1, Duration: 1},
				},
			},
			&TaskNode{
				Name:     "ranged",
				Deadline: 100,
				Params:   []string{"g"},
				Ranges: []RangeSpec{{
					Param: "g", Lo: 4, Hi: 16, Step: 4,
					Procs:    Binary{OpDiv, Lit(64), Ref("g")},
					Duration: Lit(5),
				}},
			},
		},
	}
	chains, envs, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("paths = %d, want 1 (g pinned to 8)", len(chains))
	}
	if chains[0].Tasks[1].Procs != 8 {
		t.Errorf("ranged task procs = %d, want 64/8", chains[0].Tasks[1].Procs)
	}
	if envs[0]["g"] != 8 {
		t.Errorf("env = %v", envs[0])
	}
}

func TestRangeBoundOutsideIntervalKillsPath(t *testing.T) {
	g := &Graph{
		Name:   "dead",
		Params: map[string]float64{"g": 99}, // initialized outside [4,16]
		Root: &TaskNode{
			Name:     "ranged",
			Deadline: 100,
			Params:   []string{"g"},
			Ranges: []RangeSpec{{
				Param: "g", Lo: 4, Hi: 16, Step: 4,
				Procs: Lit(2), Duration: Lit(5),
			}},
		},
	}
	if _, _, err := g.Enumerate(0); err == nil {
		t.Fatal("path with out-of-range bound parameter survived")
	}
}

func TestRangeErrorsSurfaceFromExpressions(t *testing.T) {
	mk := func(procs, dur, quality Expr) *Graph {
		return &Graph{
			Name:   "bad",
			Params: map[string]float64{"g": math.NaN()},
			Root: &TaskNode{
				Name: "t", Deadline: 10, Params: []string{"g"},
				Ranges: []RangeSpec{{Param: "g", Lo: 1, Hi: 2, Step: 1,
					Procs: procs, Duration: dur, Quality: quality}},
			},
		}
	}
	cases := []struct {
		name string
		g    *Graph
	}{
		{"unbound ref in procs", mk(Ref("missing"), Lit(1), nil)},
		{"zero procs", mk(Lit(0), Lit(1), nil)},
		{"fractional procs", mk(Lit(1.5), Lit(1), nil)},
		{"negative duration", mk(Lit(1), Lit(-2), nil)},
		{"zero quality", mk(Lit(1), Lit(1), Lit(0))},
	}
	for _, c := range cases {
		if _, _, err := c.g.Enumerate(0); err == nil {
			t.Errorf("%s: enumerated", c.name)
		}
	}
}

func TestRangeDescribe(t *testing.T) {
	out := rangedGraph().String()
	for _, want := range []string{"ranges=1", "config range g = 4 .. 16 step 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestRangeLimitStillEnforced(t *testing.T) {
	g := &Graph{
		Name:   "wide",
		Params: map[string]float64{"g": math.NaN()},
		Root: &TaskNode{
			Name: "t", Deadline: 10, Params: []string{"g"},
			Ranges: []RangeSpec{{Param: "g", Lo: 1, Hi: 100, Step: 1,
				Procs: Lit(1), Duration: Lit(1)}},
		},
	}
	if _, _, err := g.Enumerate(10); err == nil {
		t.Fatal("100-value range fit in a 10-path limit")
	}
}
