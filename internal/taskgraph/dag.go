package taskgraph

import (
	"fmt"
	"strings"

	"milan/internal/core"
)

// Par is a parallel step group: all member steps execute concurrently
// (subject to resource availability) and the group joins before the next
// node.  With Par in a graph, enumerated execution paths are DAGs rather
// than chains — the paper's "an execution path (a chain, or more
// generally, a dag)".
type Par struct {
	Name     string
	Branches []Node
}

// enumerate implements Node for the chain view: a graph containing Par has
// no chain enumeration.
func (p *Par) enumerate([]*path, int) ([]*path, error) {
	return nil, fmt.Errorf("taskgraph: par %q requires DAG enumeration (use EnumerateDAGs)", p.Name)
}

func (p *Par) describe(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%spar %s\n", indent, p.Name)
	for _, br := range p.Branches {
		br.describe(b, indent+"  ")
	}
}

// dagPath is a partial DAG during enumeration: accumulated tasks with
// dependencies, the current frontier (tasks with no successors yet), and
// the parameter environment.
type dagPath struct {
	env      Env
	tasks    []core.DAGTask
	frontier []int
	quality  float64
}

func (p *dagPath) clone() *dagPath {
	return &dagPath{
		env:      p.env.Clone(),
		tasks:    append([]core.DAGTask(nil), p.tasks...),
		frontier: append([]int(nil), p.frontier...),
		quality:  p.quality,
	}
}

// EnumerateDAGs lists every consistent execution path of the graph as a
// core.DAG (deadlines still relative to release).  For graphs without Par
// nodes the result is the set of linear DAGs equivalent to Enumerate's
// chains.
func (g *Graph) EnumerateDAGs(limit int) ([]core.DAG, []Env, error) {
	if limit <= 0 {
		limit = 256
	}
	if g.Root == nil {
		return nil, nil, fmt.Errorf("taskgraph: graph %q has no root", g.Name)
	}
	start := &dagPath{env: Env{}, quality: 1}
	for k, v := range g.Params {
		if !isNaN(v) {
			start.env[k] = v
		}
	}
	paths, err := enumerateDAG(g.Root, []*dagPath{start}, limit)
	if err != nil {
		return nil, nil, err
	}
	var dags []core.DAG
	var envs []Env
	for i, p := range paths {
		if len(p.tasks) == 0 {
			continue
		}
		dags = append(dags, core.DAG{
			Name:    fmt.Sprintf("%s/path%d", g.Name, i),
			Tasks:   p.tasks,
			Quality: p.quality,
		})
		envs = append(envs, p.env)
	}
	if len(dags) == 0 {
		return nil, nil, fmt.Errorf("taskgraph: graph %q has no consistent execution path", g.Name)
	}
	return dags, envs, nil
}

// DAGJob materializes the graph as a tunable DAG job released at `release`.
func (g *Graph) DAGJob(id int, release float64, limit int) (core.DAGJob, []Env, error) {
	dags, envs, err := g.EnumerateDAGs(limit)
	if err != nil {
		return core.DAGJob{}, nil, err
	}
	for di := range dags {
		for ti := range dags[di].Tasks {
			dags[di].Tasks[ti].Deadline += release
		}
	}
	job := core.DAGJob{ID: id, Name: g.Name, Release: release, Alts: dags}
	if err := job.Validate(); err != nil {
		return core.DAGJob{}, nil, fmt.Errorf("taskgraph: graph %q materializes invalid DAG job: %w", g.Name, err)
	}
	return job, envs, nil
}

// enumerateDAG walks the node producing DAG paths.
func enumerateDAG(n Node, in []*dagPath, limit int) ([]*dagPath, error) {
	switch v := n.(type) {
	case *TaskNode:
		return taskEnumDAG(v, in, limit)
	case Seq:
		cur := in
		var err error
		for _, c := range v {
			cur, err = enumerateDAG(c, cur, limit)
			if err != nil {
				return nil, err
			}
		}
		return cur, nil
	case *Select:
		var out []*dagPath
		for _, p := range in {
			for bi, br := range v.Branches {
				cond, err := br.When.Eval(p.env)
				if err != nil {
					return nil, fmt.Errorf("taskgraph: select %q branch %d when-expr: %w", v.Name, bi, err)
				}
				if cond == 0 {
					continue
				}
				sub, err := enumerateDAG(br.Body, []*dagPath{p.clone()}, limit)
				if err != nil {
					return nil, err
				}
				for _, sp := range sub {
					for _, as := range br.Finally {
						if err := as.Apply(sp.env); err != nil {
							return nil, fmt.Errorf("taskgraph: select %q branch %d finally: %w", v.Name, bi, err)
						}
					}
					out = append(out, sp)
					if len(out) > limit {
						return nil, fmt.Errorf("%w: more than %d paths at select %q", ErrTooManyPaths, limit, v.Name)
					}
				}
			}
		}
		return out, nil
	case *Loop:
		var out []*dagPath
		for _, p := range in {
			cv, err := v.Count.Eval(p.env)
			if err != nil {
				return nil, fmt.Errorf("taskgraph: loop %q count: %w", v.Name, err)
			}
			count := int(cv)
			if float64(count) != cv || count < 0 {
				return nil, fmt.Errorf("taskgraph: loop %q count %v is not a non-negative integer", v.Name, cv)
			}
			cur := []*dagPath{p.clone()}
			for i := 0; i < count; i++ {
				cur, err = enumerateDAG(v.Body, cur, limit)
				if err != nil {
					return nil, err
				}
			}
			out = append(out, cur...)
			if len(out) > limit {
				return nil, fmt.Errorf("%w: more than %d paths at loop %q", ErrTooManyPaths, limit, v.Name)
			}
		}
		return out, nil
	case *Par:
		return parEnumDAG(v, in, limit)
	default:
		return nil, fmt.Errorf("taskgraph: unknown node type %T", n)
	}
}

// taskEnumDAG forks a path per admissible configuration, appending a task
// that depends on the path's frontier.
func taskEnumDAG(t *TaskNode, in []*dagPath, limit int) ([]*dagPath, error) {
	var out []*dagPath
	for _, p := range in {
		configs := t.Configs
		for _, r := range t.Ranges {
			expanded, err := r.expand(p.env)
			if err != nil {
				return nil, fmt.Errorf("taskgraph: task %q: %w", t.Name, err)
			}
			configs = append(append([]Config(nil), configs...), expanded...)
		}
		for _, cfg := range configs {
			if !cfg.admissible(p.env) {
				continue
			}
			np := p.clone()
			for k, v := range cfg.Assign {
				np.env[k] = v
			}
			q := cfg.Quality
			if q == 0 {
				q = 1
			}
			np.quality *= q
			idx := len(np.tasks)
			np.tasks = append(np.tasks, core.DAGTask{
				Task: core.Task{
					Name:     t.Name,
					Procs:    cfg.Procs,
					Duration: cfg.Duration,
					Deadline: t.Deadline,
					Quality:  q,
				},
				Preds: append([]int(nil), np.frontier...),
			})
			np.frontier = []int{idx}
			out = append(out, np)
			if len(out) > limit {
				return nil, fmt.Errorf("%w: more than %d paths at task %q", ErrTooManyPaths, limit, t.Name)
			}
		}
	}
	return out, nil
}

// parEnumDAG runs every branch from the same frontier and joins: the
// group's combined frontier is the union of the branches' frontiers.
// Branch alternatives multiply (cartesian product).  Parameter
// environments thread through the branches in declaration order — control
// parameters are resolved at scheduling time, so a later branch's
// configuration guards may depend on an earlier branch's choices even
// though the tasks themselves execute concurrently.
func parEnumDAG(par *Par, in []*dagPath, limit int) ([]*dagPath, error) {
	if len(par.Branches) == 0 {
		return nil, fmt.Errorf("taskgraph: par %q has no branches", par.Name)
	}
	var out []*dagPath
	for _, p := range in {
		base := p.clone()
		combos := []*dagPath{base}
		entry := append([]int(nil), p.frontier...)
		var joined [][]int // per-combo accumulated exit frontiers
		joined = append(joined, nil)

		for _, br := range par.Branches {
			var nextCombos []*dagPath
			var nextJoined [][]int
			for ci, combo := range combos {
				// Each branch starts from the group's entry frontier but
				// builds on the combo's accumulated tasks.
				start := combo.clone()
				start.frontier = entry
				subs, err := enumerateDAG(br, []*dagPath{start}, limit)
				if err != nil {
					return nil, err
				}
				for _, sub := range subs {
					nc := sub.clone()
					nextJoined = append(nextJoined, append(append([]int(nil), joined[ci]...), sub.frontier...))
					nextCombos = append(nextCombos, nc)
					if len(nextCombos) > limit {
						return nil, fmt.Errorf("%w: more than %d paths at par %q", ErrTooManyPaths, limit, par.Name)
					}
				}
			}
			combos, joined = nextCombos, nextJoined
		}
		for ci, combo := range combos {
			combo.frontier = dedupInts(joined[ci])
			out = append(out, combo)
			if len(out) > limit {
				return nil, fmt.Errorf("%w: more than %d paths at par %q", ErrTooManyPaths, limit, par.Name)
			}
		}
	}
	return out, nil
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func isNaN(f float64) bool { return f != f }
