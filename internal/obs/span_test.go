package obs

import (
	"sync"
	"testing"
)

func TestNilTracerAndSpanSafe(t *testing.T) {
	var tr *Tracer
	if tr.NewTrace() != 0 {
		t.Fatal("nil tracer minted a trace")
	}
	sp := tr.Start(1, 0, "x", StageRun, 1)
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All span methods no-op on nil.
	sp.SetAttr("k", 1)
	sp.SetErr("e")
	sp.End()
	sp.EndAt(5)
	if sp.ID() != 0 || sp.Trace() != 0 {
		t.Fatal("nil span has identity")
	}
	tr.SetClock(nil)
	tr.OnEnd(nil)
	if tr.Spans() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors not zero")
	}
}

func TestTracerZeroTraceIsUntraced(t *testing.T) {
	tr := NewTracer(8)
	if sp := tr.Start(0, 0, "x", StageRun, 1); sp != nil {
		t.Fatal("zero trace produced a span")
	}
	if tr.Total() != 0 {
		t.Fatal("untraced path recorded a span")
	}
}

func TestSpanLifecycleAndDoubleEnd(t *testing.T) {
	tr := NewTracer(8)
	tr.SetClock(func() float64 { return 42 })
	trace := tr.NewTrace()
	sp := tr.StartAt(trace, 0, "root", StageArrival, 7, 10)
	sp.SetAttr("k", 3)
	sp.SetErr("oops")
	sp.EndAt(11)
	sp.End() // second end must not record again
	sp.EndAt(99)
	spans := tr.Spans()
	if len(spans) != 1 || tr.Total() != 1 {
		t.Fatalf("spans = %d total = %d, want 1", len(spans), tr.Total())
	}
	rec := spans[0]
	if rec.Trace != trace || rec.Name != "root" || rec.Stage != StageArrival ||
		rec.Job != 7 || rec.Start != 10 || rec.End != 11 || rec.Err != "oops" ||
		rec.Attrs["k"] != 3 {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestTracerRingDropsOldestCounted(t *testing.T) {
	tr := NewTracer(3)
	trace := tr.NewTrace()
	for i := 0; i < 8; i++ {
		sp := tr.StartAt(trace, 0, "s", StageRun, i, float64(i))
		sp.EndAt(float64(i) + 1)
	}
	spans := tr.Spans()
	if len(spans) != 3 || tr.Total() != 8 || tr.Dropped() != 5 {
		t.Fatalf("len=%d total=%d dropped=%d", len(spans), tr.Total(), tr.Dropped())
	}
	for i, want := range []int{5, 6, 7} {
		if spans[i].Job != want {
			t.Fatalf("spans[%d].Job = %d, want %d", i, spans[i].Job, want)
		}
	}
}

func TestTracerOnEndChains(t *testing.T) {
	tr := NewTracer(8)
	var got []string
	tr.OnEnd(func(SpanRec) { got = append(got, "a") })
	tr.OnEnd(func(SpanRec) { got = append(got, "b") })
	sp := tr.Start(tr.NewTrace(), 0, "x", StageRun, 1)
	sp.EndAt(1)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("observers = %v", got)
	}
}

func TestBuildSpanTrees(t *testing.T) {
	recs := []SpanRec{
		{Trace: 1, ID: 1, Name: "root", Stage: StageArrival, Start: 0, End: 5},
		{Trace: 1, ID: 3, Parent: 1, Name: "late", Stage: StageReserve, Start: 2, End: 3},
		{Trace: 1, ID: 2, Parent: 1, Name: "early", Stage: StagePlan, Start: 1, End: 2},
		{Trace: 1, ID: 4, Parent: 2, Name: "leaf", Stage: StageRun, Start: 1.5, End: 4},
		{Trace: 2, ID: 5, Name: "other", Stage: StageArrival, Start: 0, End: 1},
		{Trace: 0, ID: 6, Name: "untraced", Start: 0, End: 1}, // skipped
	}
	trees := BuildSpanTrees(recs)
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2", len(trees))
	}
	root := trees[1]
	if root.Name != "root" || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	// Children ordered by start.
	if root.Children[0].Name != "early" || root.Children[1].Name != "late" {
		t.Fatalf("child order: %s, %s", root.Children[0].Name, root.Children[1].Name)
	}
	if got := root.FindStage(StageRun); got == nil || got.Name != "leaf" {
		t.Fatalf("FindStage(run) = %+v", got)
	}
	if root.FindStage("nope") != nil {
		t.Fatal("FindStage found a missing stage")
	}
	var walked int
	root.Walk(func(*SpanNode) { walked++ })
	if walked != 4 {
		t.Fatalf("walked %d nodes, want 4", walked)
	}
}

func TestBuildSpanTreesSyntheticRootForOrphans(t *testing.T) {
	// Parent span evicted from the ring: two siblings survive and get
	// wrapped under a synthetic root spanning their extent.
	recs := []SpanRec{
		{Trace: 9, ID: 2, Parent: 1, Name: "a", Stage: StagePlan, Start: 1, End: 2},
		{Trace: 9, ID: 3, Parent: 1, Name: "b", Stage: StageRun, Start: 2, End: 7},
	}
	trees := BuildSpanTrees(recs)
	root := trees[9]
	if root == nil || root.Name != "trace" || len(root.Children) != 2 {
		t.Fatalf("synthetic root = %+v", root)
	}
	if root.Start != 1 || root.End != 7 {
		t.Fatalf("synthetic extent = [%v, %v], want [1, 7]", root.Start, root.End)
	}
}

// TestTracerConcurrent exercises concurrent span creation, attribute
// writes and ring reads — run under -race in CI.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				trace := tr.NewTrace()
				sp := tr.StartAt(trace, 0, "s", StageRun, g*1000+i, float64(i))
				sp.SetAttr("g", float64(g))
				child := tr.StartAt(trace, sp.ID(), "c", StagePlan, g*1000+i, float64(i))
				child.EndAt(float64(i) + 1)
				sp.EndAt(float64(i) + 2)
				_ = tr.Spans()
				_ = tr.Dropped()
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 8*200*2 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*200*2)
	}
	if got := int64(len(tr.Spans())) + tr.Dropped(); got != tr.Total() {
		t.Fatalf("ring accounting: spans+dropped=%d total=%d", got, tr.Total())
	}
}

// TestRegistrySnapshotMergeWhileWritersHot snapshots and merges registries
// concurrently with hot writers — run under -race in CI.
func TestRegistrySnapshotMergeWhileWritersHot(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, r := range []*Registry{a, b} {
		wg.Add(1)
		go func(r *Registry) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("jobs").Inc()
				r.Gauge("load").Set(float64(i))
				r.Histogram("lat", 0, 1, 8).Observe(0.25)
				r.Stat("slack").Observe(float64(i % 7))
			}
		}(r)
	}
	for i := 0; i < 50; i++ {
		s := a.Snapshot()
		s.Merge(b.Snapshot())
		if s.Counters["jobs"] < 0 {
			t.Fatal("impossible counter")
		}
	}
	close(stop)
	wg.Wait()
	final := a.Snapshot()
	final.Merge(b.Snapshot())
	if final.Counters["jobs"] != a.Counter("jobs").Value()+b.Counter("jobs").Value() {
		t.Fatalf("merge lost counts: %d", final.Counters["jobs"])
	}
}
