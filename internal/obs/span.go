package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span-propagated request tracing.
//
// A TraceID is minted once per admission request — by the qosnet server, the
// federated router, or the experiment loop, whichever sees the request first
// — and threaded through every stage the request touches (route → plan →
// reserve → run → finish) as plain uint64 fields on core.Job / qos.Grant, so
// no package below obs grows an obs dependency.  Each stage records a
// SpanRec into the Tracer; the full lifecycle of one job is then
// reconstructable as a span tree (BuildSpanTrees) and exportable to the
// chrome://tracing view.
//
// The whole layer honors the observability contract of this package: a nil
// *Tracer is a valid receiver for every method, all of which no-op, so an
// untraced hot path pays one pointer comparison.

// TraceID identifies one request's span tree.  Zero means "untraced".
type TraceID uint64

// SpanID identifies one span within the process.  Zero means "no span".
type SpanID uint64

// Lifecycle stage names used by the built-in plumbing (the order of a
// request's life: arrival → route → plan → reserve → run → finish).
const (
	StageArrival = "arrival" // request received / job released
	StageRoute   = "route"   // federated router choosing a shard
	StagePlan    = "plan"    // scheduler feasibility + placement planning
	StageReserve = "reserve" // committing the reservation
	StageRun     = "run"     // runtime execution of the reservation
	StageFinish  = "finish"  // completion bookkeeping
)

// SpanRec is one completed span: a named interval of one request's
// lifecycle.  Times are in the tracer's clock domain (simulation seconds
// when bound to a sim engine, wall seconds since tracer creation otherwise).
type SpanRec struct {
	Trace  TraceID            `json:"trace"`
	ID     SpanID             `json:"id"`
	Parent SpanID             `json:"parent,omitempty"`
	Name   string             `json:"name"`
	Stage  string             `json:"stage"`
	Job    int                `json:"job,omitempty"`
	Start  float64            `json:"start"`
	End    float64            `json:"end"`
	Err    string             `json:"err,omitempty"`
	Attrs  map[string]float64 `json:"attrs,omitempty"`
}

// Tracer mints trace/span IDs and retains completed spans in a bounded
// ring.  All methods are safe for concurrent use and safe on a nil
// receiver (no-ops returning zero values).
type Tracer struct {
	traces atomic.Uint64
	ids    atomic.Uint64
	smp    atomic.Pointer[sampler]

	mu    sync.Mutex
	clock func() float64
	start time.Time
	ring  *Ring[SpanRec]
	onEnd func(SpanRec)
}

// NewTracer returns a tracer retaining up to capacity completed spans
// (capacity < 1 means 8192).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 8192
	}
	return &Tracer{ring: NewRing[SpanRec](capacity), start: time.Now()}
}

// SetClock rebinds the tracer's timestamp source (e.g. a sim engine's Now).
func (t *Tracer) SetClock(clock func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// OnEnd registers fn to observe every completed span (chained after any
// previously registered observer).  The flight recorder installs itself
// here.
func (t *Tracer) OnEnd(fn func(SpanRec)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	prev := t.onEnd
	if prev == nil {
		t.onEnd = fn
	} else {
		t.onEnd = func(s SpanRec) { prev(s); fn(s) }
	}
	t.mu.Unlock()
}

func (t *Tracer) now() float64 {
	t.mu.Lock()
	clock := t.clock
	t.mu.Unlock()
	if clock != nil {
		return clock()
	}
	return time.Since(t.start).Seconds()
}

// NewTrace mints a fresh trace ID, or 0 — the untraced fast path — when
// head-based sampling (SetSampling) rejects the request.
func (t *Tracer) NewTrace() TraceID {
	if t == nil {
		return 0
	}
	if s := t.smp.Load(); s != nil && !s.admit(t.now()) {
		return 0
	}
	return TraceID(t.traces.Add(1))
}

// ActiveSpan is an in-flight span.  A nil *ActiveSpan is a valid receiver
// for every method (the untraced fast path).
type ActiveSpan struct {
	t   *Tracer
	rec SpanRec
	mu  sync.Mutex
}

// Start opens a span under the given trace and parent.  It returns nil —
// still safe to use — when the tracer is nil or trace is zero.
func (t *Tracer) Start(trace TraceID, parent SpanID, name, stage string, job int) *ActiveSpan {
	if t == nil || trace == 0 {
		return nil
	}
	return t.StartAt(trace, parent, name, stage, job, t.now())
}

// StartAt is Start with an explicit start timestamp (e.g. a reservation's
// scheduled start rather than the moment the span object was created).
func (t *Tracer) StartAt(trace TraceID, parent SpanID, name, stage string, job int, start float64) *ActiveSpan {
	if t == nil || trace == 0 {
		return nil
	}
	return &ActiveSpan{t: t, rec: SpanRec{
		Trace:  trace,
		ID:     SpanID(t.ids.Add(1)),
		Parent: parent,
		Name:   name,
		Stage:  stage,
		Job:    job,
		Start:  start,
	}}
}

// ID returns the span's ID (zero on the untraced path).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// Trace returns the span's trace ID (zero on the untraced path).
func (s *ActiveSpan) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// SetAttr records one numeric attribute on the span.
func (s *ActiveSpan) SetAttr(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]float64, 4)
	}
	s.rec.Attrs[key] = v
	s.mu.Unlock()
}

// SetErr marks the span as failed with the given reason.
func (s *ActiveSpan) SetErr(reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Err = reason
	s.mu.Unlock()
}

// End completes the span at the tracer's current clock and records it.
// Like EndAt, ending twice is a no-op.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.t
	s.mu.Unlock()
	if t == nil { // already ended
		return
	}
	s.EndAt(t.now())
}

// EndAt completes the span at an explicit timestamp and records it.
// Ending a span twice records it once (subsequent calls no-op).
func (s *ActiveSpan) EndAt(end float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.t == nil { // already ended
		s.mu.Unlock()
		return
	}
	t := s.t
	s.t = nil
	s.rec.End = end
	rec := s.rec
	s.mu.Unlock()
	t.record(rec)
}

// record appends a completed span to the ring (evicting the oldest when
// full, counted in Dropped) and forwards it to the OnEnd observer.
func (t *Tracer) record(rec SpanRec) {
	t.mu.Lock()
	t.ring.Push(rec)
	onEnd := t.onEnd
	t.mu.Unlock()
	if onEnd != nil {
		onEnd(rec)
	}
}

// Spans returns the retained completed spans in completion order (oldest
// first).  A nil tracer returns nil.
func (t *Tracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ring.Items()
}

// Total returns the number of spans ever completed.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ring.Total()
}

// Dropped returns how many completed spans were evicted from the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ring.Dropped()
}

// SpanNode is one node of a reconstructed span tree.
type SpanNode struct {
	SpanRec
	Children []*SpanNode
}

// Walk visits the node and all descendants in depth-first order.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindStage returns the first descendant (depth-first, including the
// receiver) with the given stage, or nil.
func (n *SpanNode) FindStage(stage string) *SpanNode {
	var out *SpanNode
	n.Walk(func(m *SpanNode) {
		if out == nil && m.Stage == stage {
			out = m
		}
	})
	return out
}

// BuildSpanTrees reconstructs one span tree per trace from a flat span
// record list.  Spans whose parent is missing (evicted from the ring, or
// the root itself) become roots; a trace with several roots is wrapped
// under a synthetic root carrying the trace's full time extent.  Children
// are ordered by start time, then ID.
func BuildSpanTrees(recs []SpanRec) map[TraceID]*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(recs))
	byTrace := make(map[TraceID][]*SpanNode)
	for _, r := range recs {
		if r.Trace == 0 || r.ID == 0 {
			continue
		}
		n := &SpanNode{SpanRec: r}
		nodes[r.ID] = n
		byTrace[r.Trace] = append(byTrace[r.Trace], n)
	}
	out := make(map[TraceID]*SpanNode, len(byTrace))
	for trace, ns := range byTrace {
		var roots []*SpanNode
		for _, n := range ns {
			if p, ok := nodes[n.Parent]; ok && n.Parent != 0 && p.Trace == trace && p != n {
				p.Children = append(p.Children, n)
			} else {
				roots = append(roots, n)
			}
		}
		sortNodes := func(list []*SpanNode) {
			sort.Slice(list, func(a, b int) bool {
				if list[a].Start != list[b].Start {
					return list[a].Start < list[b].Start
				}
				return list[a].ID < list[b].ID
			})
		}
		for _, n := range ns {
			sortNodes(n.Children)
		}
		sortNodes(roots)
		switch len(roots) {
		case 0:
			continue
		case 1:
			out[trace] = roots[0]
		default:
			root := &SpanNode{SpanRec: SpanRec{
				Trace: trace, Name: "trace", Stage: StageArrival,
				Start: roots[0].Start, End: roots[0].End, Job: roots[0].Job,
			}, Children: roots}
			for _, r := range roots {
				if r.End > root.End {
					root.SpanRec.End = r.End
				}
			}
			out[trace] = root
		}
	}
	return out
}
