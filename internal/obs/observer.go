package obs

import (
	"sync"
	"time"

	"milan/internal/calypso"
	"milan/internal/core"
	"milan/internal/qos"
)

// Config configures an Observer.
type Config struct {
	// RingSize is the capacity of the internal recent-events ring buffer
	// (served by the /trace debug endpoint).  0 means 4096.
	RingSize int
	// Sink, if non-nil, additionally receives every event (e.g. a
	// JSONLSink streaming to disk).
	Sink TraceSink
	// Clock supplies event timestamps.  nil means wall-clock seconds
	// since Observer creation; bind it to a sim engine's Now for
	// simulation timestamps (see SetClock).
	Clock func() float64
	// KeepPlacements retains every committed placement so the /gantt
	// endpoint and WriteChromeTrace can render the schedule.
	KeepPlacements bool
	// Capacity is the machine size used when exporting the schedule as a
	// Chrome trace; 0 infers the peak processor demand of the retained
	// placements.
	Capacity int
	// Registry, if non-nil, is used instead of a fresh one (sharing one
	// registry across several observers).
	Registry *Registry
	// Tracing enables span-propagated request tracing: the observer owns
	// a Tracer (see span.go) whose clock follows the observer's, and the
	// scheduler hooks open/close plan-stage spans for traced jobs.  Off
	// by default; when off, Tracer() returns nil and every span call
	// no-ops on the nil receiver.
	Tracing bool
	// SpanRingSize is the tracer's completed-span ring capacity (0 means
	// 8192).  Ignored unless Tracing.
	SpanRingSize int
	// EnablePprof mounts the Go runtime profiler under /debug/pprof/ on
	// the debug endpoint (see Observer.EnablePprof).  Off by default:
	// profiling endpoints perturb the hot paths they measure.
	EnablePprof bool
}

// Observer ties the metrics registry and the trace sinks together and
// adapts them to the hook points of the scheduler core, the QoS
// arbitrators, the Calypso runtime and the sim engine.  All methods are
// safe for concurrent use.
type Observer struct {
	// Reg is the observer's metrics registry.
	Reg *Registry

	mu         sync.Mutex
	ring       *RingSink
	sink       TraceSink
	clock      func() float64
	start      time.Time
	keepPl     bool
	placements []*core.Placement
	capacity   int
	spans      []Span
	admitAt    time.Time

	// tracer is non-nil iff Config.Tracing; planSpans tracks the open
	// plan-stage span per trace for the monolithic admission path (the
	// scheduler hooks open it at AdmitStart and close it at
	// Committed/Rejected).
	tracer    *Tracer
	planSpans map[TraceID]*ActiveSpan

	// Debug-endpoint extensions (http.go / health.go): extra mounted
	// handlers (e.g. the SLO engine's /slo) and the named liveness /
	// readiness checks served by /healthz.
	webMu  sync.Mutex
	extra  map[string]extraRoute
	checks []healthCheck
}

// New returns an Observer with the given configuration.
func New(cfg Config) *Observer {
	if cfg.RingSize == 0 {
		cfg.RingSize = 4096
	}
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	o := &Observer{
		Reg:      reg,
		ring:     NewRingSink(cfg.RingSize),
		sink:     cfg.Sink,
		clock:    cfg.Clock,
		start:    time.Now(),
		keepPl:   cfg.KeepPlacements,
		capacity: cfg.Capacity,
	}
	if cfg.Tracing {
		o.tracer = NewTracer(cfg.SpanRingSize)
		o.tracer.SetClock(cfg.Clock)
		o.planSpans = make(map[TraceID]*ActiveSpan)
	}
	if cfg.EnablePprof {
		o.EnablePprof()
	}
	return o
}

// Tracer returns the observer's span tracer, or nil when tracing is
// disabled (a nil *Tracer is a valid no-op receiver everywhere).
func (o *Observer) Tracer() *Tracer { return o.tracer }

// SetClock rebinds the observer's timestamp source (e.g. a sim engine's
// Now method) so events carry simulation time instead of wall time.
func (o *Observer) SetClock(clock func() float64) {
	o.mu.Lock()
	o.clock = clock
	o.mu.Unlock()
	o.tracer.SetClock(clock) // nil-safe
}

// SetCapacity records the machine size used by the Chrome-trace schedule
// export.
func (o *Observer) SetCapacity(procs int) {
	o.mu.Lock()
	o.capacity = procs
	o.mu.Unlock()
}

// now returns the current timestamp under the configured clock.
func (o *Observer) now() float64 {
	o.mu.Lock()
	clock := o.clock
	o.mu.Unlock()
	if clock != nil {
		return clock()
	}
	return time.Since(o.start).Seconds()
}

// Emit stamps the event with the observer's clock (unless it already
// carries a timestamp) and forwards it to the ring and the extra sink.
func (o *Observer) Emit(ev Event) {
	if ev.Time == 0 {
		ev.Time = o.now()
	}
	o.ring.Emit(ev)
	if o.sink != nil {
		o.sink.Emit(ev)
	}
}

// Events returns the retained recent events, oldest first.
func (o *Observer) Events() []Event { return o.ring.Events() }

// Recent returns at most n of the most recent events, oldest first
// (n <= 0 returns all retained events).
func (o *Observer) Recent(n int) []Event {
	evs := o.ring.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Placements returns the committed placements retained so far (empty
// unless KeepPlacements).
func (o *Observer) Placements() []*core.Placement {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*core.Placement(nil), o.placements...)
}

// Snapshot returns the registry's current state.
func (o *Observer) Snapshot() Snapshot { return o.Reg.Snapshot() }

// Metric names used by the built-in adapters.
const (
	MetricAdmitted      = "sched_admitted"
	MetricRejected      = "sched_rejected"
	MetricChainsTried   = "sched_chains_tried"
	MetricHolesProbed   = "sched_holes_probed"
	MetricTieBreaks     = "sched_tiebreaks"
	MetricPlanFailures  = "sched_plan_failures"
	MetricReservedArea  = "sched_reserved_area"
	MetricAdmitSeconds  = "sched_admit_seconds"
	MetricRenegotiated  = "qos_renegotiated"
	MetricAborted       = "qos_aborted"
	MetricDecisions     = "qos_decisions"
	MetricSimEvents     = "sim_events"
	MetricCalypsoSteps  = "calypso_steps"
	MetricCalypsoExecs  = "calypso_execs"
	MetricCalypsoFaults = "calypso_faults"
	MetricStepSeconds   = "calypso_step_seconds"

	// Profile-index gauges (see core.IndexStats): cumulative segment-tree
	// work counters snapshotted via RecordProfileIndex.
	MetricIndexRebuilds     = "profile_index_rebuilds"
	MetricIndexLeafUpdates  = "profile_index_leaf_updates"
	MetricIndexDescents     = "profile_index_descents"
	MetricIndexDescentSteps = "profile_index_descent_steps"
	MetricIndexRangeQueries = "profile_index_range_queries"
	MetricIndexMeanDepth    = "profile_index_mean_descent_depth"
)

// SchedulerHooks returns core scheduler hooks that translate the admission
// pipeline into trace events and registry metrics.  Install them via
// core.Options.Hooks (or InstrumentOptions).
func (o *Observer) SchedulerHooks() *core.Hooks {
	admitted := o.Reg.Counter(MetricAdmitted)
	rejected := o.Reg.Counter(MetricRejected)
	chains := o.Reg.Counter(MetricChainsTried)
	probes := o.Reg.Counter(MetricHolesProbed)
	ties := o.Reg.Counter(MetricTieBreaks)
	failures := o.Reg.Counter(MetricPlanFailures)
	area := o.Reg.Gauge(MetricReservedArea)
	latency := o.Reg.Histogram(MetricAdmitSeconds, 0, 1e-3, 60)
	return &core.Hooks{
		AdmitStart: func(job *core.Job) {
			o.mu.Lock()
			o.admitAt = time.Now()
			o.mu.Unlock()
			o.openPlanSpan(job)
			o.Emit(Event{Type: EvAdmitStart, Job: job.ID, Trace: job.Trace, Span: job.Span,
				Attrs: map[string]float64{
					"chains": float64(len(job.Chains)), "release": job.Release,
				}})
		},
		ChainTried: func(job *core.Job, chain int, ok bool, finish float64) {
			chains.Inc()
			ev := Event{Type: EvChainTried, Job: job.ID, Chain: chain, Trace: job.Trace, Span: job.Span}
			if ok {
				ev.Attrs = map[string]float64{"ok": 1, "finish": finish}
			} else {
				ev.Attrs = map[string]float64{"ok": 0}
			}
			o.Emit(ev)
		},
		HolesProbed: func(job *core.Job, chain, n int) {
			probes.Add(int64(n))
			o.Emit(Event{Type: EvHolesProbed, Job: job.ID, Chain: chain, Trace: job.Trace, Span: job.Span,
				Attrs: map[string]float64{"probes": float64(n)}})
		},
		TieBreak: func(job *core.Job, winner, over int) {
			ties.Inc()
			o.Emit(Event{Type: EvTieBreak, Job: job.ID, Chain: winner, Trace: job.Trace, Span: job.Span,
				Attrs: map[string]float64{"over": float64(over)}})
		},
		Committed: func(job *core.Job, pl *core.Placement) {
			admitted.Inc()
			area.Add(pl.Area())
			o.mu.Lock()
			if o.keepPl {
				cp := *pl
				cp.Tasks = append([]core.TaskPlacement(nil), pl.Tasks...)
				o.placements = append(o.placements, &cp)
			}
			began := o.admitAt
			o.mu.Unlock()
			if !began.IsZero() {
				latency.Observe(time.Since(began).Seconds())
			}
			o.closePlanSpan(job, func(s *ActiveSpan) {
				s.SetAttr("chain", float64(pl.Chain))
				s.SetAttr("start", pl.Start())
				s.SetAttr("finish", pl.Finish())
			})
			o.Emit(Event{Type: EvCommitted, Job: job.ID, Chain: pl.Chain, Trace: job.Trace, Span: job.Span,
				Attrs: map[string]float64{
					"start": pl.Start(), "finish": pl.Finish(), "area": pl.Area(),
					"quality": job.Chains[pl.Chain].Quality,
				}})
		},
		Rejected: func(job *core.Job, reason string) {
			rejected.Inc()
			o.mu.Lock()
			began := o.admitAt
			o.mu.Unlock()
			if !began.IsZero() {
				latency.Observe(time.Since(began).Seconds())
			}
			o.closePlanSpan(job, func(s *ActiveSpan) { s.SetErr(reason) })
			o.Emit(Event{Type: EvRejected, Job: job.ID, Reason: reason, Trace: job.Trace, Span: job.Span})
		},
		PlanFailure: func(job *core.Job) {
			failures.Inc()
		},
	}
}

// openPlanSpan starts the plan-stage span for a traced job entering the
// monolithic admission path (core.Scheduler.Admit fires AdmitStart only on
// that path; the federated router creates its own plan spans per probe).
// No-op without tracing or for untraced jobs.
func (o *Observer) openPlanSpan(job *core.Job) {
	t := o.tracer
	if t == nil || job.Trace == 0 {
		return
	}
	s := t.Start(TraceID(job.Trace), SpanID(job.Span), "sched.plan", StagePlan, job.ID)
	o.mu.Lock()
	if prev, ok := o.planSpans[TraceID(job.Trace)]; ok {
		prev.End() // stray open span for this trace: close it defensively
	}
	o.planSpans[TraceID(job.Trace)] = s
	o.mu.Unlock()
}

// closePlanSpan ends a traced job's open plan span, letting fn annotate it
// first.  No-op without tracing, for untraced jobs, or when no span is
// open for the trace.
func (o *Observer) closePlanSpan(job *core.Job, fn func(*ActiveSpan)) {
	if o.tracer == nil || job.Trace == 0 {
		return
	}
	o.mu.Lock()
	s, ok := o.planSpans[TraceID(job.Trace)]
	if ok {
		delete(o.planSpans, TraceID(job.Trace))
	}
	o.mu.Unlock()
	if !ok {
		return
	}
	if fn != nil {
		fn(s)
	}
	s.End()
}

// InstrumentOptions returns a copy of opts (or fresh zero Options when opts
// is nil) with the observer's scheduler hooks installed.
func (o *Observer) InstrumentOptions(opts *core.Options) *core.Options {
	var out core.Options
	if opts != nil {
		out = *opts
	}
	out.Hooks = o.SchedulerHooks()
	return &out
}

// RecordProfileIndex snapshots a profile index's cumulative work counters
// into the registry's gauges (rebuilds, incremental leaf updates, descents,
// nodes visited, range queries, and mean descent depth).  Call it whenever
// a fresh reading is wanted — after a run, or periodically while serving —
// with the counters from core.Scheduler.IndexStats / qos.Arbitrator.
// IndexStats.  A zero-value (index disabled) snapshot is a no-op so call
// sites need not branch.
func (o *Observer) RecordProfileIndex(st core.IndexStats) {
	if !st.Enabled {
		return
	}
	o.Reg.Gauge(MetricIndexRebuilds).Set(float64(st.Rebuilds))
	o.Reg.Gauge(MetricIndexLeafUpdates).Set(float64(st.LeafUpdates))
	o.Reg.Gauge(MetricIndexDescents).Set(float64(st.Descents))
	o.Reg.Gauge(MetricIndexDescentSteps).Set(float64(st.DescentSteps))
	o.Reg.Gauge(MetricIndexRangeQueries).Set(float64(st.RangeQueries))
	depth := 0.0
	if st.Descents > 0 {
		depth = float64(st.DescentSteps) / float64(st.Descents)
	}
	o.Reg.Gauge(MetricIndexMeanDepth).Set(depth)
}

// DecisionObserver wraps a qos Decision observer (next may be nil): every
// decision bumps the decision counter before forwarding.  The per-decision
// Committed/Rejected events come from the scheduler hooks; this wrapper
// observes the arbitrator-level stream.
func (o *Observer) DecisionObserver(next func(qos.Decision)) func(qos.Decision) {
	decisions := o.Reg.Counter(MetricDecisions)
	return func(d qos.Decision) {
		decisions.Inc()
		if next != nil {
			next(d)
		}
	}
}

// InstrumentArbitratorConfig returns a copy of cfg with the observer's
// scheduler hooks installed and its Decision stream wrapped.
func (o *Observer) InstrumentArbitratorConfig(cfg qos.ArbitratorConfig) qos.ArbitratorConfig {
	cfg.Options = o.InstrumentOptions(cfg.Options)
	cfg.Observer = o.DecisionObserver(cfg.Observer)
	return cfg
}

// InstrumentDynamic wraps a dynamic arbitrator's callback stream: placement
// moves emit Renegotiated events, evictions emit Aborted events and every
// admission decision bumps the decision counter.  Existing callbacks are
// chained, not replaced.  Call it before the arbitrator starts serving;
// note the scheduler hooks themselves must be installed via the Options
// passed to qos.NewDynamicArbitrator (see InstrumentOptions).
func (o *Observer) InstrumentDynamic(d *qos.DynamicArbitrator) {
	renegotiated := o.Reg.Counter(MetricRenegotiated)
	aborted := o.Reg.Counter(MetricAborted)
	prevR, prevA, prevObs := d.OnRenegotiated, d.OnAborted, d.Observer
	d.OnRenegotiated = func(jobID int, g *qos.Grant) {
		renegotiated.Inc()
		o.Emit(Event{Type: EvRenegotiated, Job: jobID, Chain: g.Chain, Attrs: map[string]float64{
			"finish": g.Finish(),
		}})
		if prevR != nil {
			prevR(jobID, g)
		}
	}
	d.OnAborted = func(jobID int) {
		aborted.Inc()
		o.Emit(Event{Type: EvAborted, Job: jobID, Reason: "capacity-change"})
		if prevA != nil {
			prevA(jobID)
		}
	}
	d.Observer = o.DecisionObserver(prevObs)
}

// SimEventFired is the sim.Engine.OnEvent adapter: it counts and traces
// every fired simulation event.
func (o *Observer) SimEventFired(name string, t float64) {
	o.Reg.Counter(MetricSimEvents).Inc()
	o.Emit(Event{Time: t, Type: EvEventFired, Name: name})
}

// BindEngine installs the observer on a sim engine: events are counted and
// traced, and the observer's clock follows the simulation clock.
func (o *Observer) BindEngine(e interface {
	Now() float64
}) func(name string, t float64) {
	o.SetClock(e.Now)
	return o.SimEventFired
}

// CalypsoHooks returns runtime trace hooks: steps and task executions
// become events, spans (for the Chrome-trace worker timeline) and
// registry metrics.
func (o *Observer) CalypsoHooks() calypso.TraceHooks {
	steps := o.Reg.Counter(MetricCalypsoSteps)
	execs := o.Reg.Counter(MetricCalypsoExecs)
	faults := o.Reg.Counter(MetricCalypsoFaults)
	stepSec := o.Reg.Histogram(MetricStepSeconds, 0, 1, 100)
	return calypso.TraceHooks{
		StepStart: func(step, tasks int) {
			steps.Inc()
			o.Emit(Event{Type: EvStepStart, Attrs: map[string]float64{
				"step": float64(step), "tasks": float64(tasks),
			}})
		},
		StepDone: func(step int, d time.Duration, err error) {
			stepSec.Observe(d.Seconds())
			ev := Event{Type: EvStepDone, Attrs: map[string]float64{
				"step": float64(step), "seconds": d.Seconds(),
			}}
			if err != nil {
				ev.Reason = err.Error()
			}
			o.Emit(ev)
		},
		TaskExec: func(step, worker, task, attempt int, start time.Time, d time.Duration, committed bool) {
			execs.Inc()
			won := 0.0
			if committed {
				won = 1
			}
			o.AddSpan(Span{
				PID:   PIDCalypso,
				TID:   worker,
				Name:  "task",
				Cat:   "calypso",
				Start: start.Sub(o.start).Seconds(),
				Dur:   d.Seconds(),
				Args: map[string]float64{
					"step": float64(step), "task": float64(task),
					"attempt": float64(attempt), "committed": won,
				},
			})
		},
		WorkerFault: func(step, worker int, kind string) {
			faults.Inc()
			o.Emit(Event{Type: EvWorkerFault, Worker: worker, Reason: kind,
				Attrs: map[string]float64{"step": float64(step)}})
		},
	}
}
