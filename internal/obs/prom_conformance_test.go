package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file pins the Prometheus text-exposition contract for histogram
// families: buckets are CUMULATIVE counts over strictly-increasing `le`
// bounds, the mandatory `le="+Inf"` bucket equals the total observation
// count (so out-of-range observations are not silently dropped from the
// series a scraper integrates), and every family carries _sum and _count
// with _count == the +Inf bucket.  A scraper that trusts these
// invariants computes correct quantiles; break any of them and
// histogram_quantile() silently lies.

var promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// promHistFamily is one parsed _bucket/_sum/_count family keyed by the
// full label set minus `le` (so per-node series validate independently).
type promHistFamily struct {
	les    []float64
	cums   []int64
	sum    float64
	count  int64
	hasSum bool
	hasCnt bool
}

// parsePromText scans an exposition, enforcing line-level conformance
// (every sample parses, every family has HELP+TYPE before its first
// sample) and collecting histogram families for bucket validation.
func parsePromText(t *testing.T, text string) map[string]*promHistFamily {
	t.Helper()
	typed := make(map[string]string) // family name -> TYPE
	helped := make(map[string]bool)
	hists := make(map[string]*promHistFamily)
	histFamily := func(base, labels string) *promHistFamily {
		key := base + "|" + labels
		f, ok := hists[key]
		if !ok {
			f = &promHistFamily{}
			hists[key] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[3] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid TYPE %q", ln+1, fields[3])
			}
			if !helped[fields[2]] {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, fields[2])
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparseable sample: %q", ln+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if typed[family] == "" {
			t.Fatalf("line %d: sample %s has no TYPE header", ln+1, name)
		}
		if typed[family] != "histogram" {
			if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
				t.Fatalf("line %d: bad sample value %q", ln+1, value)
			}
			continue
		}
		// Histogram sample: route by suffix, separating le from the rest
		// of the label set.
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, rest := splitLE(t, ln+1, labels)
			f := histFamily(family, rest)
			f.les = append(f.les, le)
			c, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket count %q not an integer", ln+1, value)
			}
			f.cums = append(f.cums, c)
		case strings.HasSuffix(name, "_sum"):
			f := histFamily(family, labels)
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("line %d: _sum %q not a float", ln+1, value)
			}
			f.sum, f.hasSum = v, true
		case strings.HasSuffix(name, "_count"):
			f := histFamily(family, labels)
			c, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: _count %q not an integer", ln+1, value)
			}
			f.count, f.hasCnt = c, true
		default:
			t.Fatalf("line %d: bare sample %s under histogram TYPE", ln+1, name)
		}
	}
	return hists
}

// splitLE extracts the le label value and returns the remaining labels
// (sorted, brace-stripped) as the family key.
func splitLE(t *testing.T, ln int, labels string) (float64, string) {
	t.Helper()
	if labels == "" {
		t.Fatalf("line %d: _bucket without le label", ln)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var rest []string
	le := math.NaN()
	for _, kv := range strings.Split(inner, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			t.Fatalf("line %d: malformed label %q", ln, kv)
		}
		v = strings.Trim(v, `"`)
		if k == "le" {
			if v == "+Inf" {
				le = math.Inf(1)
			} else {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("line %d: le=%q not a float", ln, v)
				}
				le = f
			}
			continue
		}
		rest = append(rest, kv)
	}
	if math.IsNaN(le) {
		t.Fatalf("line %d: _bucket labels %q carry no le", ln, labels)
	}
	sort.Strings(rest)
	return le, strings.Join(rest, ",")
}

// checkHistConformance asserts the cumulative-bucket contract on every
// parsed histogram family.
func checkHistConformance(t *testing.T, hists map[string]*promHistFamily) {
	t.Helper()
	if len(hists) == 0 {
		t.Fatal("no histogram families parsed")
	}
	for key, f := range hists {
		if !f.hasSum || !f.hasCnt {
			t.Errorf("%s: missing _sum or _count", key)
			continue
		}
		if len(f.les) == 0 {
			t.Errorf("%s: no buckets", key)
			continue
		}
		last := f.les[len(f.les)-1]
		if !math.IsInf(last, 1) {
			t.Errorf("%s: final bucket le=%v, want +Inf", key, last)
		}
		for i := 1; i < len(f.les); i++ {
			if !(f.les[i] > f.les[i-1]) {
				t.Errorf("%s: le not strictly increasing at %d: %v then %v", key, i, f.les[i-1], f.les[i])
			}
			if f.cums[i] < f.cums[i-1] {
				t.Errorf("%s: cumulative count decreased at le=%v: %d then %d", key, f.les[i], f.cums[i-1], f.cums[i])
			}
		}
		if inf := f.cums[len(f.cums)-1]; inf != f.count {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, inf, f.count)
		}
	}
}

// seedHist drives observations below, inside, and above a histogram's
// range so the exposition must fold Under into the first bucket and keep
// Over inside the +Inf bucket to stay conformant.
func seedHist(h *Hist, lo, mid, hi float64) {
	h.Observe(lo)  // under range
	h.Observe(mid) // in range
	h.Observe(mid)
	h.Observe(hi) // over range
}

func TestWritePromHistogramConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_admitted").Add(7)
	r.Gauge("queue_depth").Set(3.5)
	uniform := r.Histogram("admit_wait", 0, 100, 10)
	seedHist(uniform, -5, 42, 1e9)
	loglin := r.HistogramLogLinear("latency_admit_ns", 8, 25, 8)
	seedHist(loglin, 1, 5000, 1e18)
	r.Stat("probe_cost").Observe(2.5)
	r.Describe("admit_wait", "Admission wait.")

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	hists := parsePromText(t, sb.String())
	checkHistConformance(t, hists)

	// The fold rules in numbers: 4 observations (1 under, 2 in, 1 over).
	for key, f := range hists {
		if f.count != 4 {
			t.Errorf("%s: _count = %d, want 4", key, f.count)
		}
		if f.cums[0] < 1 {
			t.Errorf("%s: under-range observation not folded into first bucket (cum[0]=%d)", key, f.cums[0])
		}
		// Over-range observation is visible ONLY in +Inf: the last
		// finite bucket must exclude it.
		lastFinite := f.cums[len(f.cums)-2]
		if lastFinite != 3 {
			t.Errorf("%s: last finite bucket = %d, want 3 (over-range must only appear in +Inf)", key, lastFinite)
		}
	}
}

// The log-linear histogram's le bounds come from its Bounds slice, not
// the legacy uniform formula; pin that the rendered le values match
// BucketUpper exactly (a scraper reconstructs quantiles from them).
func TestWritePromLogLinearBounds(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramLogLinear("lat", 8, 4, 4)
	h.Observe(300)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	for i := range snap.Buckets {
		want := fmt.Sprintf(`lat_bucket{le="%s"}`, PromFloat(snap.BucketUpper(i)))
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, sb.String())
		}
	}
}
