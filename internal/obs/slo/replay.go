package slo

import (
	"fmt"
	"io"
	"sort"

	"milan/internal/obs"
)

// Differential replay: take a flight-recorder snapshot, rebuild the span
// tree of the trace that tripped the trigger, and localize the fault to
// the subsystem whose stage broke its contract.
//
// The contract each stage signs up for:
//
//	planner   the reservation it commits must finish by the deadline
//	          (reservedFinish <= deadline)
//	router    probe/commit must converge without livelocking on races
//	rebalancer migrations must stay below the storm threshold and
//	          conserve the plane's total capacity
//	runtime   execution must finish by the reserved finish time
//	          (actualFinish <= reservedFinish) without losing committed
//	          work
//	shedder   saturation shedding must respect the configured weights,
//	          quotas and starvation bound
//
// A deadline miss therefore decomposes: if admission already reserved past
// the deadline the planner is at fault (the miss was decided at admission
// time); otherwise if the run overran its reservation the runtime is at
// fault; otherwise, if the reserve stage shows race scars, the router.

// Fault names the subsystem a replay localizes a violation to.
const (
	FaultPlanner    = "planner"
	FaultRouter     = "router"
	FaultRebalancer = "rebalancer"
	FaultRuntime    = "runtime"
	FaultShedder    = "shedder"
	FaultDurability = "durability"
	FaultUnknown    = "unknown"
)

// Verdict is the outcome of replaying one snapshot: the subsystem at
// fault, the stage whose span evidenced it, and the reconstructed numbers
// behind the call.
type Verdict struct {
	Kind   TriggerKind `json:"kind"`
	Trace  uint64      `json:"trace,omitempty"`
	Fault  string      `json:"fault"`
	Stage  string      `json:"stage,omitempty"`
	Reason string      `json:"reason"`

	Deadline       float64 `json:"deadline,omitempty"`
	ReservedFinish float64 `json:"reserved_finish,omitempty"`
	ActualFinish   float64 `json:"actual_finish,omitempty"`

	// Spans is how many spans of the triggering trace the snapshot held.
	Spans int `json:"spans"`
}

func (v Verdict) String() string {
	s := fmt.Sprintf("fault=%s kind=%s", v.Fault, v.Kind)
	if v.Trace != 0 {
		s += fmt.Sprintf(" trace=%d", v.Trace)
	}
	if v.Stage != "" {
		s += " stage=" + v.Stage
	}
	return s + ": " + v.Reason
}

// attr reads a numeric attribute off a span node, ok=false when absent.
func attr(n *obs.SpanNode, key string) (float64, bool) {
	if n == nil || n.Attrs == nil {
		return 0, false
	}
	v, ok := n.Attrs[key]
	return v, ok
}

// Replay localizes a snapshot's trigger to a subsystem.  It is pure: the
// verdict is a function of the snapshot alone, so a snapshot written in
// production replays identically anywhere.
func Replay(s *Snapshot) Verdict {
	if s == nil {
		return Verdict{Fault: FaultUnknown, Reason: "nil snapshot"}
	}
	v := Verdict{Kind: s.Kind, Trace: s.Trace, Fault: FaultUnknown}

	trees := obs.BuildSpanTrees(s.Spans)
	var tree *obs.SpanNode
	if s.Trace != 0 {
		tree = trees[obs.TraceID(s.Trace)]
	}
	if tree != nil {
		tree.Walk(func(*obs.SpanNode) { v.Spans++ })
	}

	// Aggregate triggers localize by construction: the trigger kind names
	// the misbehaving subsystem directly.
	switch s.Kind {
	case TriggerRebalanceStorm:
		v.Fault = FaultRebalancer
		v.Reason = "processor migrations crossed the storm threshold"
		return v
	case TriggerCommitRaceSpike:
		v.Fault = FaultRouter
		v.Reason = "optimistic-commit fallbacks crossed the race threshold"
		return v
	case TriggerFairnessBreach:
		v.Fault = FaultShedder
		v.Reason = "admission shedding broke a fairness invariant"
		return v
	case TriggerCapacityDrift:
		v.Fault = FaultRebalancer
		v.Reason = "plane capacity stopped matching the resource pool"
		return v
	case TriggerMaskingLoss:
		v.Fault = FaultRuntime
		v.Reason = "fault-masking runtime lost committed work"
		return v
	case TriggerDurabilityLoss:
		v.Fault = FaultDurability
		v.Reason = "crash recovery lost acknowledged admission state"
		return v
	}

	// Per-job triggers: reconstruct deadline / reservedFinish / actual
	// finish from the trace's span attributes.
	var run, reserve, plan *obs.SpanNode
	if tree != nil {
		run = tree.FindStage(obs.StageRun)
		reserve = tree.FindStage(obs.StageReserve)
		plan = tree.FindStage(obs.StagePlan)
	}
	if d, ok := attr(run, "deadline"); ok {
		v.Deadline = d
	} else if d, ok := attr(reserve, "deadline"); ok {
		v.Deadline = d
	} else if d, ok := attr(plan, "deadline"); ok {
		v.Deadline = d
	}
	if f, ok := attr(run, "reserved_finish"); ok {
		v.ReservedFinish = f
	} else if f, ok := attr(reserve, "finish"); ok {
		v.ReservedFinish = f
	} else if f, ok := attr(plan, "finish"); ok {
		v.ReservedFinish = f
	}
	if run != nil {
		v.ActualFinish = run.End
	}

	switch s.Kind {
	case TriggerOverAdmission:
		// By construction: admission produced a reservation already past
		// the deadline.  That decision belongs to the planner.
		v.Fault = FaultPlanner
		v.Stage = obs.StagePlan
		v.Reason = "admission reserved past the deadline"
		return v

	case TriggerDeadlineMiss:
		switch {
		case v.Deadline > 0 && v.ReservedFinish > v.Deadline+eps:
			v.Fault = FaultPlanner
			v.Stage = obs.StagePlan
			v.Reason = fmt.Sprintf("reservation finish %.6g already past deadline %.6g at admission",
				v.ReservedFinish, v.Deadline)
		case v.ReservedFinish > 0 && v.ActualFinish > v.ReservedFinish+eps:
			v.Fault = FaultRuntime
			v.Stage = obs.StageRun
			v.Reason = fmt.Sprintf("execution finished %.6g, overran reservation %.6g",
				v.ActualFinish, v.ReservedFinish)
		case reserve != nil && (reserve.Err != "" || hasRaceScar(reserve)):
			v.Fault = FaultRouter
			v.Stage = obs.StageReserve
			v.Reason = "reservation shows commit-race scars"
		default:
			v.Reason = "no span evidence contradicts any stage"
		}
		return v

	case TriggerManual:
		v.Reason = "manual snapshot (no anomaly to localize)"
		return v
	}

	v.Reason = "unrecognized trigger kind"
	return v
}

// hasRaceScar reports whether a reserve span carries race evidence: a
// raced retry or a non-first-choice commit rank.
func hasRaceScar(n *obs.SpanNode) bool {
	if r, ok := attr(n, "raced"); ok && r > 0 {
		return true
	}
	if r, ok := attr(n, "rank"); ok && r > 0 {
		return true
	}
	return false
}

// WriteReplay renders a human-readable replay of the snapshot: the
// verdict, then the triggering trace's span tree (indented, with timing
// and attributes), then the tail of the decision-event log.
func WriteReplay(w io.Writer, s *Snapshot) error {
	if s == nil {
		_, err := fmt.Fprintln(w, "replay: nil snapshot")
		return err
	}
	v := Replay(s)
	if _, err := fmt.Fprintf(w, "flight snapshot kind=%s at=%.6g spans=%d events=%d\n",
		s.Kind, s.At, len(s.Spans), len(s.Events)); err != nil {
		return err
	}
	if s.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", s.Note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "verdict: %s\n", v); err != nil {
		return err
	}

	trees := obs.BuildSpanTrees(s.Spans)
	if s.Trace != 0 {
		if tree := trees[obs.TraceID(s.Trace)]; tree != nil {
			if _, err := fmt.Fprintf(w, "trace %d:\n", s.Trace); err != nil {
				return err
			}
			if err := writeTree(w, tree, 1); err != nil {
				return err
			}
		}
	}

	// Tail of the decision log (most recent last).
	const tail = 12
	evs := s.Events
	if len(evs) > tail {
		evs = evs[len(evs)-tail:]
	}
	if len(evs) > 0 {
		if _, err := fmt.Fprintf(w, "last %d decision events:\n", len(evs)); err != nil {
			return err
		}
		for _, ev := range evs {
			if _, err := fmt.Fprintf(w, "  t=%-10.6g %-12s job=%-5d %s\n",
				ev.Time, ev.Type, ev.Job, ev.Reason); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTree(w io.Writer, n *obs.SpanNode, depth int) error {
	pad := make([]byte, depth*2)
	for i := range pad {
		pad[i] = ' '
	}
	line := fmt.Sprintf("%s%s [%s] %.6g..%.6g", pad, n.Name, n.Stage, n.Start, n.End)
	if n.Err != "" {
		line += " err=" + n.Err
	}
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf(" %s=%.6g", k, n.Attrs[k])
		}
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
