package slo

import (
	"strings"
	"testing"

	"milan/internal/obs/latency"
)

// fakeCounts is a controllable RegressionSource: the test moves the
// cumulative counters and ticks the engine.
type fakeCounts struct {
	counts []latency.PhaseCount
}

func (f *fakeCounts) source() []latency.PhaseCount {
	out := make([]latency.PhaseCount, len(f.counts))
	copy(out, f.counts)
	return out
}

func newSentinelEngine(src *fakeCounts) *Engine {
	return New(Options{
		ShortWindow: 10, LongWindow: 100, Buckets: 10,
		BurnThreshold: 2, RegressionBudget: 0.01,
		RegressionSource: src.source,
		Recorder:         NewRecorder(64, 64),
	})
}

func TestRegressionSentinelTripsAndNamesPhase(t *testing.T) {
	src := &fakeCounts{counts: []latency.PhaseCount{
		{Name: "probe", Total: 0, Over: 0},
		{Name: "e2e", Total: 0, Over: 0},
	}}
	e := newSentinelEngine(src)
	e.Tick(0) // primes the cumulative baselines

	// Healthy traffic: lots of admissions, none over envelope.
	src.counts[0] = latency.PhaseCount{Name: "probe", Total: 1000, Over: 0}
	src.counts[1] = latency.PhaseCount{Name: "e2e", Total: 1000, Over: 0}
	e.Tick(1)
	if alerts := e.Report().Alerts; len(alerts) != 0 {
		t.Fatalf("healthy plane alerted: %+v", alerts)
	}

	// The probe phase regresses hard: half the next admissions over
	// budget (50x the 1% regression budget).
	src.counts[0] = latency.PhaseCount{Name: "probe", Total: 2000, Over: 500}
	src.counts[1] = latency.PhaseCount{Name: "e2e", Total: 2000, Over: 0}
	e.Tick(2)
	alerts := e.Report().Alerts
	if len(alerts) != 1 {
		t.Fatalf("want exactly one regression alert, got %+v", alerts)
	}
	if alerts[0].Objective != ObjectiveRegressionPrefix+"probe" {
		t.Fatalf("alert names %q, want the probe phase", alerts[0].Objective)
	}
	// The flight recorder cut a snapshot naming the phase.
	snap := e.Recorder().Last()
	if snap == nil || snap.Kind != TriggerLatencyRegression {
		t.Fatalf("no latency-regression flight snapshot: %+v", snap)
	}
	if !strings.Contains(snap.Note, "probe") {
		t.Fatalf("snapshot note does not name the phase: %q", snap.Note)
	}

	// Edge-triggered: still burning, no second alert.
	src.counts[0] = latency.PhaseCount{Name: "probe", Total: 2100, Over: 550}
	e.Tick(3)
	if got := len(e.Report().Alerts); got != 1 {
		t.Fatalf("alert re-fired while still burning: %d", got)
	}

	// The regression burns are visible in the report.
	var found bool
	for _, b := range e.Report().Regression {
		if b.Objective == ObjectiveRegressionPrefix+"probe" && b.Alerting {
			found = true
		}
	}
	if !found {
		t.Fatalf("probe regression missing from report: %+v", e.Report().Regression)
	}
}

// Admissions that complete before the ticker's first firing must still
// reach the windows: the baseline starts at zero, it is not primed from
// the first observation (a burst entirely between process start and the
// first tick would otherwise be absorbed and never alert).
func TestRegressionSentinelCountsPreTickTraffic(t *testing.T) {
	src := &fakeCounts{counts: []latency.PhaseCount{
		{Name: "probe", Total: 12, Over: 12},
	}}
	e := newSentinelEngine(src)
	e.Tick(0) // first tick lands after the whole burst completed
	alerts := e.Report().Alerts
	if len(alerts) != 1 || alerts[0].Objective != ObjectiveRegressionPrefix+"probe" {
		t.Fatalf("pre-tick burst not counted: %+v", alerts)
	}
}

// Counter resets (plane swap, envelope re-arm) must re-baseline, not
// feed a huge negative or bogus delta into the windows.
func TestRegressionSentinelCounterReset(t *testing.T) {
	src := &fakeCounts{counts: []latency.PhaseCount{{Name: "e2e", Total: 5000, Over: 10}}}
	e := newSentinelEngine(src)
	e.Tick(0)
	// Reset: cumulative counters fall.
	src.counts[0] = latency.PhaseCount{Name: "e2e", Total: 100, Over: 90}
	e.Tick(1)
	if alerts := e.Report().Alerts; len(alerts) != 0 {
		t.Fatalf("counter reset produced an alert: %+v", alerts)
	}
	// Over > total in a delta is equally bogus.
	src.counts[0] = latency.PhaseCount{Name: "e2e", Total: 101, Over: 99}
	e.Tick(2)
	if alerts := e.Report().Alerts; len(alerts) != 0 {
		t.Fatalf("over>total delta produced an alert: %+v", alerts)
	}
}

// Regression objectives ride EngineState: merged cluster windows
// re-alert through Burns even when no single node's engine tripped.
func TestRegressionObjectivesMergeAndRealert(t *testing.T) {
	mkState := func(total, over int64) EngineState {
		src := &fakeCounts{counts: []latency.PhaseCount{{Name: "probe", Total: 0, Over: 0}}}
		e := newSentinelEngine(src)
		e.Tick(0)
		src.counts[0] = latency.PhaseCount{Name: "probe", Total: total, Over: over}
		e.Tick(1)
		return e.ExportState()
	}
	// Each node alone: 30% over budget on probe — well past threshold
	// individually, but the point is the merged math.
	a := mkState(1000, 300)
	b := mkState(1000, 0)
	merged := MergeStates(a, b)
	var burn *ObjectiveBurn
	for i := range merged.Burns() {
		bb := merged.Burns()[i]
		if bb.Objective == ObjectiveRegressionPrefix+"probe" {
			burn = &bb
		}
	}
	if burn == nil {
		t.Fatalf("merged state lost the regression objective: %+v", merged.Objectives)
	}
	// Cluster-wide: 300 over / 2000 total = 15% over a 1% budget -> burn
	// 15, alerting at threshold 2.
	if !burn.Alerting || burn.Short < 10 || burn.Short > 20 {
		t.Fatalf("merged regression burn = %+v, want alerting at ~15", burn)
	}
}

// A nil RegressionSource keeps the sentinel fully disabled.
func TestRegressionSentinelDisabled(t *testing.T) {
	e := New(Options{ShortWindow: 10, LongWindow: 100, Buckets: 10, BurnThreshold: 2})
	e.Tick(0)
	e.Tick(1)
	if reg := e.Report().Regression; reg != nil {
		t.Fatalf("disabled sentinel reported burns: %+v", reg)
	}
	for _, o := range e.ExportState().Objectives {
		if strings.HasPrefix(o.Name, ObjectiveRegressionPrefix) {
			t.Fatalf("disabled sentinel exported %q", o.Name)
		}
	}
}
