package slo

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"milan/internal/obs"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.RecordSpan(obs.SpanRec{})
	r.Emit(obs.Event{})
	r.SetCooldown(1)
	r.Attach(nil)
	if r.Trigger(TriggerManual, 0, 0, "") != nil {
		t.Fatal("nil recorder returned a snapshot")
	}
	if r.Snapshots() != nil || r.Last() != nil || r.Len() != 0 || r.Triggers() != 0 {
		t.Fatal("nil recorder accessors not zero")
	}
}

func TestRecorderRingWrapOrdering(t *testing.T) {
	r := NewRecorder(4, 3)
	for i := 0; i < 10; i++ {
		r.RecordSpan(obs.SpanRec{Trace: 1, ID: obs.SpanID(i + 1), Start: float64(i)})
		r.Emit(obs.Event{Time: float64(i), Job: i})
	}
	snap := r.Trigger(TriggerManual, 0, 10, "wrap test")
	if len(snap.Spans) != 4 || len(snap.Events) != 3 {
		t.Fatalf("ring sizes: %d spans, %d events", len(snap.Spans), len(snap.Events))
	}
	// Oldest-first, contiguous suffix of the stream.
	for i, s := range snap.Spans {
		if want := obs.SpanID(7 + i); s.ID != want {
			t.Fatalf("span[%d].ID = %d, want %d", i, s.ID, want)
		}
	}
	for i, ev := range snap.Events {
		if want := 7 + i; ev.Job != want {
			t.Fatalf("event[%d].Job = %d, want %d", i, ev.Job, want)
		}
	}
}

func TestSnapshotJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(8, 8)
	r.RecordSpan(obs.SpanRec{Trace: 3, ID: 1, Name: "fed.negotiate", Stage: obs.StageArrival, Job: 9, Start: 1, End: 2})
	r.RecordSpan(obs.SpanRec{Trace: 3, ID: 2, Parent: 1, Name: "sched.plan", Stage: obs.StagePlan, Job: 9,
		Start: 1.1, End: 1.9, Attrs: map[string]float64{"finish": 5.5}})
	r.Emit(obs.Event{Time: 1.5, Type: obs.EvCommitted, Job: 9, Trace: 3, Span: 2})
	snap := r.Trigger(TriggerDeadlineMiss, 3, 6.0, "job 9 late")

	var buf bytes.Buffer
	if err := snap.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != snap.Kind || got.Trace != snap.Trace || got.At != snap.At || got.Note != snap.Note {
		t.Fatalf("header mismatch: %+v vs %+v", got, snap)
	}
	if !reflect.DeepEqual(got.Spans, snap.Spans) {
		t.Fatalf("spans mismatch:\n%+v\n%+v", got.Spans, snap.Spans)
	}
	if !reflect.DeepEqual(got.Events, snap.Events) {
		t.Fatalf("events mismatch:\n%+v\n%+v", got.Events, snap.Events)
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "{not json}\n",
		"bad version":  `{"v":99,"kind":"manual","at":0}` + "\n",
		"missing kind": `{"v":1,"at":0}` + "\n",
		"bad line":     `{"v":1,"kind":"manual","at":0}` + "\n{}\n",
	}
	for name, in := range cases {
		if _, err := DecodeSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in)
		}
	}
	// Blank lines are tolerated.
	ok := `{"v":1,"kind":"manual","at":1}` + "\n\n" + `{"span":{"trace":1,"id":1,"name":"x","stage":"run","start":0,"end":1}}` + "\n"
	snap, err := DecodeSnapshot(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Stage != obs.StageRun {
		t.Fatalf("decoded snapshot: %+v", snap)
	}
}

func TestRecorderCooldown(t *testing.T) {
	r := NewRecorder(4, 4)
	r.SetCooldown(10)
	if r.Trigger(TriggerDeadlineMiss, 1, 100, "") == nil {
		t.Fatal("first trigger suppressed")
	}
	if r.Trigger(TriggerDeadlineMiss, 2, 105, "") != nil {
		t.Fatal("cooldown did not suppress")
	}
	// A different kind is not suppressed.
	if r.Trigger(TriggerOverAdmission, 3, 105, "") == nil {
		t.Fatal("cooldown suppressed a different kind")
	}
	// Past the cooldown the kind fires again.
	if r.Trigger(TriggerDeadlineMiss, 4, 111, "") == nil {
		t.Fatal("trigger suppressed past cooldown")
	}
	if r.Triggers() != 3 {
		t.Fatalf("triggers = %d, want 3", r.Triggers())
	}
}

func TestRecorderAttachToTracer(t *testing.T) {
	tr := obs.NewTracer(16)
	rec := NewRecorder(16, 16)
	rec.Attach(tr)
	trace := tr.NewTrace()
	sp := tr.Start(trace, 0, "x", obs.StageRun, 1)
	sp.EndAt(2)
	snap := rec.Trigger(TriggerManual, uint64(trace), 3, "")
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "x" {
		t.Fatalf("attached recorder missed the span: %+v", snap.Spans)
	}
}

func TestRecorderRetentionBound(t *testing.T) {
	r := NewRecorder(2, 2)
	for i := 0; i < 20; i++ {
		r.Trigger(TriggerManual, uint64(i+1), float64(i), "")
	}
	if r.Len() != 16 {
		t.Fatalf("retained %d snapshots, want 16", r.Len())
	}
	snaps := r.Snapshots()
	if snaps[0].Trace != 5 || snaps[15].Trace != 20 {
		t.Fatalf("wrong snapshots retained: first=%d last=%d", snaps[0].Trace, snaps[15].Trace)
	}
	if r.Triggers() != 20 {
		t.Fatalf("triggers = %d, want 20", r.Triggers())
	}
}

func TestRecorderHandler(t *testing.T) {
	r := NewRecorder(4, 4)
	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/flight", nil))
	if rw.Code != 404 {
		t.Fatalf("empty recorder: status %d, want 404", rw.Code)
	}
	r.RecordSpan(obs.SpanRec{Trace: 1, ID: 1, Name: "x", Stage: obs.StageRun, End: 1})
	r.Trigger(TriggerManual, 1, 2, "snap")
	rw = httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/flight", nil))
	if rw.Code != 200 {
		t.Fatalf("status %d, want 200", rw.Code)
	}
	snap, err := DecodeSnapshot(rw.Body)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != TriggerManual || len(snap.Spans) != 1 {
		t.Fatalf("served snapshot: %+v", snap)
	}
}

// FuzzSnapshotDecode exercises the JSONL decoder with arbitrary input: it
// must never panic, and whatever it accepts must re-encode and re-decode
// to the same header.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(`{"v":1,"kind":"manual","at":0}` + "\n")
	f.Add(`{"v":1,"kind":"deadline-miss","trace":3,"at":6,"note":"x"}` + "\n" +
		`{"span":{"trace":3,"id":1,"name":"a","stage":"run","start":0,"end":1}}` + "\n" +
		`{"event":{"t":0.5,"type":"Committed","job":1}}` + "\n")
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"v":2,"kind":"manual","at":0}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		snap, err := DecodeSnapshot(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := snap.WriteJSONL(&buf); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		again, err := DecodeSnapshot(&buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if again.Kind != snap.Kind || again.Trace != snap.Trace ||
			len(again.Spans) != len(snap.Spans) || len(again.Events) != len(snap.Events) {
			t.Fatalf("round-trip drift: %+v vs %+v", again, snap)
		}
	})
}
