package slo

import (
	"math"
	"strings"
	"sync"
	"testing"

	"milan/internal/obs"
)

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.JobAdmitted(1, 1, 0, 0, 1, 1)
	e.JobRejected(1, 1, 0, 0)
	if e.JobCompleted(1, 0) {
		t.Fatal("nil engine reported a miss")
	}
	e.ObserveUtilization(0, 0.5)
	e.ObserveRouter(0, 0, 0)
	e.Tick(0)
	if r := e.Report(); r.Admitted != 0 || !r.Conformant() {
		t.Fatalf("nil engine report: %+v", r)
	}
	if e.Registry() != nil || e.Recorder() != nil {
		t.Fatal("nil engine accessors must return nil")
	}
}

func TestHardInvariantDeadlineMiss(t *testing.T) {
	e := New(Options{})
	e.JobAdmitted(7, 42, 1.0, 1e-3, 10.0, 9.5)
	if missed := e.JobCompleted(7, 9.9); missed {
		t.Fatal("on-time completion flagged as miss")
	}
	r := e.Report()
	if !r.Conformant() || r.Completed != 1 {
		t.Fatalf("conformant run misreported: %+v", r)
	}

	e.JobAdmitted(8, 43, 2.0, 1e-3, 10.0, 9.5)
	if missed := e.JobCompleted(8, 10.5); !missed {
		t.Fatal("late completion not flagged as miss")
	}
	r = e.Report()
	if r.Conformant() || r.DeadlineMisses != 1 {
		t.Fatalf("miss not reported: %+v", r)
	}
	if len(r.Violations) != 1 || r.Violations[0].Kind != "deadline-miss" ||
		r.Violations[0].JobID != 8 || r.Violations[0].Trace != 43 {
		t.Fatalf("violation record wrong: %+v", r.Violations)
	}

	// Unknown completions are ignored.
	if e.JobCompleted(999, 50) {
		t.Fatal("unknown job flagged as miss")
	}
}

func TestOverAdmissionTriggersImmediately(t *testing.T) {
	rec := NewRecorder(16, 16)
	e := New(Options{Recorder: rec})
	// Reservation finishing after the deadline: planner fault by construction.
	e.JobAdmitted(3, 9, 0.5, 1e-3, 10.0, 10.7)
	r := e.Report()
	if r.Conformant() || r.OverAdmissions != 1 {
		t.Fatalf("over-admission not reported: %+v", r)
	}
	if rec.Len() != 1 || rec.Last().Kind != TriggerOverAdmission {
		t.Fatalf("recorder not triggered: len=%d", rec.Len())
	}
	if rec.Last().Trace != 9 {
		t.Fatalf("snapshot trace = %d, want 9", rec.Last().Trace)
	}
}

func TestLatencyBurnAlertEdgeTriggered(t *testing.T) {
	e := New(Options{ShortWindow: 10, LongWindow: 100, Buckets: 10,
		LatencyTarget: 1e-3, LatencyBudget: 0.1, BurnThreshold: 2})
	// All admissions 10x over the latency target: error rate 1.0, budget
	// 0.1 -> burn 10 on both windows.
	for i := 0; i < 20; i++ {
		e.JobAdmitted(i, uint64(i+1), float64(i)*0.1, 10e-3, 1e9, 1e8)
	}
	e.Tick(2.0)
	r := e.Report()
	if r.LatencyBurnShort < 2 || r.LatencyBurnLong < 2 {
		t.Fatalf("burn rates not elevated: %+v", r)
	}
	if len(r.Alerts) != 1 || r.Alerts[0].Objective != "admit-latency" {
		t.Fatalf("want exactly one admit-latency alert, got %+v", r.Alerts)
	}
	// Still burning: no second alert (edge-triggered).
	e.Tick(2.5)
	if got := len(e.Report().Alerts); got != 1 {
		t.Fatalf("alert re-fired while still burning: %d", got)
	}
	// Let both windows drain (fast-forward past the long window), then
	// burn again: a second episode should alert again.
	e.Tick(500)
	e.Tick(501) // clears alertOn once burn drops below threshold
	for i := 0; i < 20; i++ {
		e.JobAdmitted(100+i, uint64(100+i), 502+float64(i)*0.1, 10e-3, 1e9, 1e8)
	}
	e.Tick(504)
	if got := len(e.Report().Alerts); got != 2 {
		t.Fatalf("second burn episode did not alert: %d alerts", got)
	}
}

func TestUtilizationObjectiveOffByDefault(t *testing.T) {
	e := New(Options{ShortWindow: 10, LongWindow: 100})
	e.ObserveUtilization(1, 0.01) // ignored: UtilTarget unset
	e.Tick(2)
	if r := e.Report(); r.UtilBurnShort != 0 || len(r.Alerts) != 0 {
		t.Fatalf("utilization objective active without target: %+v", r)
	}

	e2 := New(Options{ShortWindow: 10, LongWindow: 100, Buckets: 10,
		UtilTarget: 0.5, UtilBudget: 0.1, BurnThreshold: 2})
	for i := 0; i < 20; i++ {
		e2.ObserveUtilization(float64(i)*0.1, 0.2) // all below target
	}
	e2.Tick(2.0)
	r := e2.Report()
	if r.UtilBurnShort < 2 {
		t.Fatalf("util burn not elevated: %+v", r)
	}
	found := false
	for _, a := range r.Alerts {
		if a.Objective == "utilization" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no utilization alert: %+v", r.Alerts)
	}
}

func TestWindowBackwardClockResets(t *testing.T) {
	w := newWindow(10, 10)
	for i := 0; i < 5; i++ {
		w.add(float64(i), true)
	}
	if bad, _ := w.totals(); bad != 5 {
		t.Fatalf("bad=%d before reset", bad)
	}
	// Sweep epoch restart: clock jumps back to zero.
	w.add(0.5, false)
	if bad, total := w.totals(); bad != 0 || total != 1 {
		t.Fatalf("window did not reset on backward clock: bad=%d total=%d", bad, total)
	}
	// Far-forward jump also resets.
	w.add(1e6, true)
	if bad, total := w.totals(); bad != 1 || total != 1 {
		t.Fatalf("window did not reset on forward jump: bad=%d total=%d", bad, total)
	}
}

func TestWindowExpiry(t *testing.T) {
	w := newWindow(10, 10)
	w.add(0, true)
	w.advance(5)
	if bad, _ := w.totals(); bad != 1 {
		t.Fatalf("event expired early: bad=%d", bad)
	}
	w.advance(10.5) // past the event's bucket end by a full span? no: 10.5-1=9.5 < span
	// After a full window has passed the event is gone.
	w.advance(11.1)
	if bad, _ := w.totals(); bad != 0 {
		t.Fatalf("event survived past the window: bad=%d", bad)
	}
}

func TestBurnZeroBudgetIsInf(t *testing.T) {
	w := newWindow(10, 10)
	w.add(0, true)
	if b := w.burn(0); !math.IsInf(b, 1) {
		t.Fatalf("zero-budget burn with errors = %v, want +Inf", b)
	}
	if clampInf(math.Inf(1)) != 1e9 {
		t.Fatal("clampInf broken")
	}
}

func TestObserveRouterSpikeAndStorm(t *testing.T) {
	rec := NewRecorder(16, 16)
	e := New(Options{ShortWindow: 10, LongWindow: 100, Buckets: 10,
		RaceSpikeThreshold: 4, StormThreshold: 5, Recorder: rec})
	// First sample only seeds the cumulative counters.
	e.ObserveRouter(1, 100, 200)
	if rec.Len() != 0 {
		t.Fatal("seeding sample triggered")
	}
	// +4 races within the window: spike.
	e.ObserveRouter(2, 104, 200)
	if rec.Len() != 1 || rec.Last().Kind != TriggerCommitRaceSpike {
		t.Fatalf("race spike not triggered: len=%d", rec.Len())
	}
	// More races while above threshold: edge-triggered, no re-fire.
	e.ObserveRouter(3, 106, 200)
	if rec.Len() != 1 {
		t.Fatalf("race spike re-fired: len=%d", rec.Len())
	}
	// +5 migrations: storm.
	e.ObserveRouter(4, 106, 205)
	if rec.Len() != 2 || rec.Last().Kind != TriggerRebalanceStorm {
		t.Fatalf("storm not triggered: len=%d", rec.Len())
	}
	// Counter reset (new run) must not underflow.
	e.ObserveRouter(5, 0, 0)
}

func TestReportLatencyQuantiles(t *testing.T) {
	e := New(Options{})
	for i := 0; i < 100; i++ {
		e.JobAdmitted(i, uint64(i+1), 1, 2e-3, 1e9, 1e8)
	}
	r := e.Report()
	if r.LatencyP50 < 1e-3 || r.LatencyP50 > 4e-3 {
		t.Fatalf("p50 = %g, want ~2ms", r.LatencyP50)
	}
	if r.LatencyMean < 1e-3 || r.LatencyMean > 4e-3 {
		t.Fatalf("mean = %g, want ~2ms", r.LatencyMean)
	}
}

func TestWriteReport(t *testing.T) {
	rec := NewRecorder(8, 8)
	e := New(Options{Recorder: rec})
	e.JobAdmitted(1, 5, 0, 1e-3, 10, 9)
	e.JobCompleted(1, 11) // miss
	var sb strings.Builder
	if err := e.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"VIOLATED", "deadline misses=1", "deadline-miss", "flight snapshots=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	e2 := New(Options{})
	e2.JobAdmitted(1, 5, 0, 1e-3, 10, 9)
	e2.JobCompleted(1, 9.5)
	sb.Reset()
	if err := e2.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CONFORMANT") {
		t.Fatalf("conformant run misreported:\n%s", sb.String())
	}
}

func TestRegistryMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Registry: reg})
	e.JobAdmitted(1, 1, 0, 1e-3, 10, 9)
	e.JobRejected(2, 2, 0, 1e-3)
	e.JobCompleted(1, 11)
	e.Tick(1)
	snap := reg.Snapshot()
	wantCounters := map[string]int64{
		MetricAdmitted:       1,
		MetricRejected:       1,
		MetricCompleted:      1,
		MetricDeadlineMisses: 1,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if _, ok := snap.Histograms[MetricLatency]; !ok {
		t.Errorf("missing %s histogram", MetricLatency)
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	e := New(Options{Recorder: NewRecorder(64, 64)})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := g*1000 + i
				e.JobAdmitted(id, uint64(id), float64(i), 1e-3, float64(i)+5, float64(i)+4)
				e.JobCompleted(id, float64(i)+4.5)
				e.ObserveUtilization(float64(i), 0.7)
				e.ObserveRouter(float64(i), int64(i), int64(i))
				e.Tick(float64(i))
			}
		}(g)
	}
	wg.Wait()
	r := e.Report()
	if r.Admitted != 1600 || r.Completed != 1600 {
		t.Fatalf("lost updates: %+v", r)
	}
	if !r.Conformant() {
		t.Fatalf("spurious violations: %+v", r.Violations)
	}
}
