package slo

// Cross-process SLO federation: EngineState is the wire-exportable form
// of an engine's objective state — cumulative conformance counters plus
// the raw good/bad totals of each objective's two burn windows.  Streaming
// the window totals (rather than the derived burn rates) is what lets an
// aggregator RE-RUN burn-rate alerting over the merged cluster view: the
// merged burn of an objective is (Σ bad)/(Σ total)/budget across nodes,
// which is not derivable from per-node burn rates alone.

// ObjectiveState is one objective's exportable burn-window state.
type ObjectiveState struct {
	Name   string  `json:"name"`
	Budget float64 `json:"budget"`
	// Active reports whether the objective has been fed at all (the
	// utilization and forecast objectives activate on first sample); an
	// inactive objective never alerts.
	Active     bool  `json:"active"`
	ShortBad   int64 `json:"short_bad"`
	ShortTotal int64 `json:"short_total"`
	LongBad    int64 `json:"long_bad"`
	LongTotal  int64 `json:"long_total"`
}

// EngineState is a point-in-time export of an engine's SLO state, made to
// be merged across processes (MergeStates) and re-alerted (Burns).
type EngineState struct {
	Admitted       int64   `json:"admitted"`
	Rejected       int64   `json:"rejected"`
	Completed      int64   `json:"completed"`
	InFlight       int64   `json:"in_flight"`
	DeadlineMisses int64   `json:"deadline_misses"`
	OverAdmissions int64   `json:"over_admissions"`
	BurnThreshold  float64 `json:"burn_threshold"`

	Objectives []ObjectiveState `json:"objectives,omitempty"`
}

// Objective names used in EngineState (matching the engine's alert keys).
const (
	ObjectiveLatency     = "admit-latency"
	ObjectiveUtilization = "utilization"
	ObjectiveForecast    = "headroom-forecast"
)

// ExportState captures the engine's current SLO state for telemetry
// export.  A nil engine exports the zero state.
func (e *Engine) ExportState() EngineState {
	if e == nil {
		return EngineState{}
	}
	e.mu.Lock()
	st := EngineState{
		InFlight:      int64(len(e.inflight)),
		BurnThreshold: e.opts.BurnThreshold,
	}
	grab := func(name string, budget float64, active bool, short, long *window) {
		o := ObjectiveState{Name: name, Budget: budget, Active: active}
		o.ShortBad, o.ShortTotal = short.totals()
		o.LongBad, o.LongTotal = long.totals()
		st.Objectives = append(st.Objectives, o)
	}
	grab(ObjectiveLatency, e.opts.LatencyBudget, true, e.latShort, e.latLong)
	grab(ObjectiveUtilization, e.opts.UtilBudget, e.opts.UtilTarget > 0, e.utilShort, e.utilLong)
	grab(ObjectiveForecast, e.opts.ForecastBudget, e.fcSeen, e.fcShort, e.fcLong)
	for _, name := range e.regOrder {
		st := e.reg[name]
		grab(ObjectiveRegressionPrefix+name, e.opts.RegressionBudget, st.seen, st.short, st.long)
	}
	e.mu.Unlock()
	st.Admitted = e.admitted.Value()
	st.Rejected = e.rejected.Value()
	st.Completed = e.completed.Value()
	st.DeadlineMisses = e.misses.Value()
	st.OverAdmissions = e.overAdmissions.Value()
	return st
}

// MergeStates folds per-node engine states into one cluster state:
// counters and window totals add, an objective is active if active
// anywhere, budgets and the burn threshold take the first non-zero value
// (the fleet is expected to share one SLO config; a disagreement keeps
// the first node's — strictest-deployed — policy).
func MergeStates(states ...EngineState) EngineState {
	var out EngineState
	objs := make(map[string]*ObjectiveState)
	var order []string
	for _, st := range states {
		out.Admitted += st.Admitted
		out.Rejected += st.Rejected
		out.Completed += st.Completed
		out.InFlight += st.InFlight
		out.DeadlineMisses += st.DeadlineMisses
		out.OverAdmissions += st.OverAdmissions
		if out.BurnThreshold == 0 {
			out.BurnThreshold = st.BurnThreshold
		}
		for _, o := range st.Objectives {
			m, ok := objs[o.Name]
			if !ok {
				cp := o
				objs[o.Name] = &cp
				order = append(order, o.Name)
				continue
			}
			if m.Budget == 0 {
				m.Budget = o.Budget
			}
			m.Active = m.Active || o.Active
			m.ShortBad += o.ShortBad
			m.ShortTotal += o.ShortTotal
			m.LongBad += o.LongBad
			m.LongTotal += o.LongTotal
		}
	}
	for _, name := range order {
		out.Objectives = append(out.Objectives, *objs[name])
	}
	return out
}

// ObjectiveBurn is one objective's burn rates over a (possibly merged)
// state, with the multi-window alert predicate applied.
type ObjectiveBurn struct {
	Objective string  `json:"objective"`
	Short     float64 `json:"short_burn"`
	Long      float64 `json:"long_burn"`
	Alerting  bool    `json:"alerting"`
}

// Burns re-runs the engine's burn-rate computation over the state: for
// each active objective, burn = (bad/total)/budget per window, and
// Alerting when both windows meet the threshold — exactly the engine's
// multi-window alert rule, applied to whatever (merged) totals the state
// carries.
func (s EngineState) Burns() []ObjectiveBurn {
	thr := s.BurnThreshold
	if thr <= 0 {
		thr = 2
	}
	burn := func(bad, total int64, budget float64) float64 {
		if total == 0 {
			return 0
		}
		rate := float64(bad) / float64(total)
		if budget <= 0 {
			if bad > 0 {
				return clampInf(rate / 1e-12)
			}
			return 0
		}
		return rate / budget
	}
	var out []ObjectiveBurn
	for _, o := range s.Objectives {
		if !o.Active {
			continue
		}
		b := ObjectiveBurn{
			Objective: o.Name,
			Short:     burn(o.ShortBad, o.ShortTotal, o.Budget),
			Long:      burn(o.LongBad, o.LongTotal, o.Budget),
		}
		b.Alerting = b.Short >= thr && b.Long >= thr
		out = append(out, b)
	}
	return out
}
