// Package slo is the predictability auditor: it continuously verifies the
// paper's central promise — every admitted configuration carries a
// reservation that guarantees its deadline (Sections 3, 5.2) — against
// what the runtime actually does.
//
// Three pieces:
//
//   - Engine (this file): streaming SLO accounting.  Deadline conformance
//     is a hard invariant (error budget zero — any admitted job finishing
//     past its deadline is a violation); admission latency and
//     utilization are soft objectives tracked with multi-window burn
//     rates in the SRE style (alert when both the short and the long
//     window burn their error budget faster than a threshold).
//   - Recorder (recorder.go): an anomaly-triggered flight recorder
//     holding bounded rings of recent spans and decision events, dumped
//     to a self-contained JSONL snapshot on deadline misses,
//     over-admissions, commit-race spikes and rebalance storms.
//   - Replay (replay.go): differential replay of a snapshot that
//     localizes the violation to planner, router, rebalancer or runtime.
//
// All timestamps are in the caller's clock domain (simulation seconds in
// the experiment loop, wall seconds since start in a live server);
// admission latencies are always wall seconds.  The engine tolerates the
// clock restarting at zero — a new sweep point — by resetting its
// windows.
package slo

import (
	"fmt"
	"io"
	"math"
	"sync"

	"milan/internal/obs"
	"milan/internal/obs/latency"
)

// Metric names published to the registry.
const (
	MetricAdmitted          = "slo_admitted"
	MetricRejected          = "slo_rejected"
	MetricCompleted         = "slo_completed"
	MetricInFlight          = "slo_inflight"
	MetricDeadlineMisses    = "slo_deadline_misses"
	MetricOverAdmissions    = "slo_over_admissions"
	MetricAlerts            = "slo_alerts"
	MetricLatency           = "slo_admit_latency_seconds"
	MetricLatencyBurnShort  = "slo_latency_burn_short"
	MetricLatencyBurnLong   = "slo_latency_burn_long"
	MetricUtilBurnShort     = "slo_util_burn_short"
	MetricUtilBurnLong      = "slo_util_burn_long"
	MetricForecastBurnShort = "slo_forecast_burn_short"
	MetricForecastBurnLong  = "slo_forecast_burn_long"
)

// eps is the deadline-comparison tolerance, matching the scheduler's
// epsilon discipline: a finish within eps of the deadline conforms.
const eps = 1e-9

// Options configures an Engine.  The zero value selects the documented
// defaults.
type Options struct {
	// ShortWindow and LongWindow are the two burn-rate windows, in the
	// engine's clock domain (defaults 60 and 600).  Buckets is the
	// sliding-window resolution per window (default 30).
	ShortWindow float64
	LongWindow  float64
	Buckets     int

	// LatencyTarget is the admission-latency objective in wall seconds
	// (default 5ms); LatencyBudget is the tolerated fraction of requests
	// over target (default 0.01).
	LatencyTarget float64
	LatencyBudget float64

	// UtilTarget, when positive, turns on the utilization objective:
	// each ObserveUtilization sample below the target consumes error
	// budget.  UtilBudget is the tolerated fraction of low samples
	// (default 0.1).
	UtilTarget float64
	UtilBudget float64

	// ForecastBudget is the headroom-forecast objective's error budget:
	// the tolerated fraction of audited rejections that are forecast
	// misses — rejections whose demand the advertised capacity frontier
	// had claimed to fit (default 0.05).  The objective activates on the
	// first ObserveForecast sample; a sustained burn on both windows means
	// the headroom signal is misleading the QoS agents steering by it.
	ForecastBudget float64

	// BurnThreshold is the burn-rate multiple that, sustained on both
	// windows, raises an alert (default 2: burning the error budget at
	// twice the sustainable rate).
	BurnThreshold float64

	// RaceSpikeThreshold and StormThreshold are the commit-race and
	// rebalancer-migration counts within the short window that trigger
	// the flight recorder (defaults 16 each).
	RaceSpikeThreshold int64
	StormThreshold     int64

	// RegressionSource, if set, arms the online latency-regression
	// sentinel: each Tick pulls the cumulative per-phase envelope
	// counters (typically (*latency.Plane).RegressionCounts), diffs them
	// into burn windows, and raises an edge-triggered
	// "latency-regression:<phase>" alert — with a flight-recorder
	// snapshot — when a phase burns its budget on both windows.
	RegressionSource func() []latency.PhaseCount
	// RegressionBudget is the tolerated fraction of admissions over the
	// phase envelope (default 0.01).
	RegressionBudget float64

	// Registry receives the slo_* metrics; nil creates a private one.
	Registry *obs.Registry
	// Recorder, if set, is triggered on violations and anomalies.
	Recorder *Recorder
}

func (o Options) withDefaults() Options {
	if o.ShortWindow <= 0 {
		o.ShortWindow = 60
	}
	if o.LongWindow <= o.ShortWindow {
		o.LongWindow = 10 * o.ShortWindow
	}
	if o.Buckets < 2 {
		o.Buckets = 30
	}
	if o.LatencyTarget <= 0 {
		o.LatencyTarget = 5e-3
	}
	if o.LatencyBudget <= 0 {
		o.LatencyBudget = 0.01
	}
	if o.UtilBudget <= 0 {
		o.UtilBudget = 0.1
	}
	if o.ForecastBudget <= 0 {
		o.ForecastBudget = 0.05
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 2
	}
	if o.RaceSpikeThreshold <= 0 {
		o.RaceSpikeThreshold = 16
	}
	if o.StormThreshold <= 0 {
		o.StormThreshold = 16
	}
	if o.RegressionBudget <= 0 {
		o.RegressionBudget = 0.01
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// window is a bucketed sliding window of good/bad counts.  Time may jump
// arbitrarily forward (buckets expire) or backward (the whole window
// resets — a fresh sweep epoch).
type window struct {
	span   float64
	bspan  float64
	good   []int64
	bad    []int64
	cur    int
	curEnd float64
	primed bool
}

func newWindow(span float64, n int) *window {
	return &window{span: span, bspan: span / float64(n), good: make([]int64, n), bad: make([]int64, n)}
}

func (w *window) reset(now float64) {
	for i := range w.good {
		w.good[i], w.bad[i] = 0, 0
	}
	w.cur = 0
	w.curEnd = now + w.bspan
	w.primed = true
}

// advance rotates the window to cover now.
func (w *window) advance(now float64) {
	if !w.primed || now < w.curEnd-w.bspan-eps {
		w.reset(now)
		return
	}
	if now-w.curEnd >= w.span {
		w.reset(now)
		return
	}
	for now >= w.curEnd {
		w.cur = (w.cur + 1) % len(w.good)
		w.good[w.cur], w.bad[w.cur] = 0, 0
		w.curEnd += w.bspan
	}
}

func (w *window) add(now float64, isBad bool) {
	w.advance(now)
	if isBad {
		w.bad[w.cur]++
	} else {
		w.good[w.cur]++
	}
}

// addN bulk-adds good/bad counts into the current bucket (the regression
// sentinel consumes counter deltas covering many admissions per tick).
func (w *window) addN(now float64, good, bad int64) {
	w.advance(now)
	w.good[w.cur] += good
	w.bad[w.cur] += bad
}

func (w *window) totals() (bad, total int64) {
	for i := range w.good {
		bad += w.bad[i]
		total += w.good[i] + w.bad[i]
	}
	return bad, total
}

// burn returns the window's burn rate: observed error rate over the error
// budget.  No observations means zero; a zero budget with any error is
// +Inf (hard invariant).
func (w *window) burn(budget float64) float64 {
	bad, total := w.totals()
	if total == 0 {
		return 0
	}
	rate := float64(bad) / float64(total)
	if budget <= 0 {
		if bad > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return rate / budget
}

// flight is one admitted job awaiting completion.
type flight struct {
	trace          uint64
	deadline       float64
	reservedFinish float64
}

// Violation is one hard SLO violation: an admitted job that finished past
// its deadline (kind "deadline-miss") or was admitted with a reservation
// already past its deadline (kind "over-admission").
type Violation struct {
	Kind           string  `json:"kind"`
	JobID          int     `json:"job"`
	Trace          uint64  `json:"trace,omitempty"`
	Deadline       float64 `json:"deadline"`
	ReservedFinish float64 `json:"reserved_finish"`
	Finish         float64 `json:"finish,omitempty"`
	At             float64 `json:"at"`
}

// Alert is one burn-rate alert: both windows of an objective burned the
// error budget faster than the threshold.
type Alert struct {
	Objective string  `json:"objective"`
	Short     float64 `json:"short_burn"`
	Long      float64 `json:"long_burn"`
	At        float64 `json:"at"`
}

const maxKept = 64 // violations and alerts retained for the report

// Engine is the streaming SLO engine.  All methods are safe for
// concurrent use; a nil *Engine is a valid receiver everywhere (no-op),
// so call sites need no branching.
type Engine struct {
	opts Options

	mu         sync.Mutex
	inflight   map[int]flight
	violations []Violation
	alerts     []Alert
	latShort   *window
	latLong    *window
	utilShort  *window
	utilLong   *window
	fcShort    *window
	fcLong     *window
	fcSeen     bool
	fcChecks   int64
	fcMisses   int64
	raceWin    *window
	stormWin   *window
	lastRaces  int64
	lastMoves  int64
	routerSeen bool
	alertOn    map[string]bool
	reg        map[string]*regState
	regOrder   []string

	admitted       *obs.Counter
	rejected       *obs.Counter
	completed      *obs.Counter
	misses         *obs.Counter
	overAdmissions *obs.Counter
	alertCount     *obs.Counter
	inFlightG      *obs.Gauge
	latHist        *obs.Hist
	latBurnShort   *obs.Gauge
	latBurnLong    *obs.Gauge
	utilBurnShort  *obs.Gauge
	utilBurnLong   *obs.Gauge
	fcBurnShort    *obs.Gauge
	fcBurnLong     *obs.Gauge
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	o := opts.withDefaults()
	reg := o.Registry
	return &Engine{
		opts:           o,
		inflight:       make(map[int]flight),
		latShort:       newWindow(o.ShortWindow, o.Buckets),
		latLong:        newWindow(o.LongWindow, o.Buckets),
		utilShort:      newWindow(o.ShortWindow, o.Buckets),
		utilLong:       newWindow(o.LongWindow, o.Buckets),
		fcShort:        newWindow(o.ShortWindow, o.Buckets),
		fcLong:         newWindow(o.LongWindow, o.Buckets),
		raceWin:        newWindow(o.ShortWindow, o.Buckets),
		stormWin:       newWindow(o.ShortWindow, o.Buckets),
		alertOn:        make(map[string]bool),
		reg:            make(map[string]*regState),
		admitted:       reg.Counter(MetricAdmitted),
		rejected:       reg.Counter(MetricRejected),
		completed:      reg.Counter(MetricCompleted),
		misses:         reg.Counter(MetricDeadlineMisses),
		overAdmissions: reg.Counter(MetricOverAdmissions),
		alertCount:     reg.Counter(MetricAlerts),
		inFlightG:      reg.Gauge(MetricInFlight),
		latHist:        reg.Histogram(MetricLatency, 0, 0.05, 500),
		latBurnShort:   reg.Gauge(MetricLatencyBurnShort),
		latBurnLong:    reg.Gauge(MetricLatencyBurnLong),
		utilBurnShort:  reg.Gauge(MetricUtilBurnShort),
		utilBurnLong:   reg.Gauge(MetricUtilBurnLong),
		fcBurnShort:    reg.Gauge(MetricForecastBurnShort),
		fcBurnLong:     reg.Gauge(MetricForecastBurnLong),
	}
}

// Registry returns the registry the slo_* metrics live in.
func (e *Engine) Registry() *obs.Registry {
	if e == nil {
		return nil
	}
	return e.opts.Registry
}

// Recorder returns the attached flight recorder, or nil.
func (e *Engine) Recorder() *Recorder {
	if e == nil {
		return nil
	}
	return e.opts.Recorder
}

// JobAdmitted records an admission decision: the wall-clock admission
// latency feeds the latency objective, and the job enters the in-flight
// set awaiting JobCompleted.  deadline is the granted chain's final task
// deadline; reservedFinish is the reservation's completion time.  A
// reservation already past the deadline is an over-admission — an
// immediate hard violation (the planner emitted an infeasible grant).
func (e *Engine) JobAdmitted(jobID int, trace uint64, now, latency, deadline, reservedFinish float64) {
	if e == nil {
		return
	}
	e.admitted.Inc()
	e.latHist.Observe(latency)
	e.mu.Lock()
	e.latShort.add(now, latency > e.opts.LatencyTarget)
	e.latLong.add(now, latency > e.opts.LatencyTarget)
	e.inflight[jobID] = flight{trace: trace, deadline: deadline, reservedFinish: reservedFinish}
	n := len(e.inflight)
	var over bool
	if reservedFinish > deadline+eps {
		over = true
		e.keepViolation(Violation{
			Kind: "over-admission", JobID: jobID, Trace: trace,
			Deadline: deadline, ReservedFinish: reservedFinish, At: now,
		})
	}
	e.mu.Unlock()
	e.inFlightG.Set(float64(n))
	if over {
		e.overAdmissions.Inc()
		e.opts.Recorder.Trigger(TriggerOverAdmission, trace, now,
			fmt.Sprintf("job %d reserved finish %.6g past deadline %.6g", jobID, reservedFinish, deadline))
	}
}

// JobRejected records a rejection: only the admission latency objective
// sees it (a rejection is a correct answer, not an SLO violation).
func (e *Engine) JobRejected(jobID int, trace uint64, now, latency float64) {
	if e == nil {
		return
	}
	_ = jobID
	_ = trace
	e.rejected.Inc()
	e.latHist.Observe(latency)
	e.mu.Lock()
	e.latShort.add(now, latency > e.opts.LatencyTarget)
	e.latLong.add(now, latency > e.opts.LatencyTarget)
	e.mu.Unlock()
}

// JobCompleted closes out an admitted job at its actual completion time
// and reports whether the completion missed the deadline — the hard
// invariant: admitted implies met.  A miss triggers the flight recorder.
// Completions for unknown jobs are ignored (already completed, or
// admitted before the engine attached).
func (e *Engine) JobCompleted(jobID int, now float64) (missed bool) {
	if e == nil {
		return false
	}
	e.mu.Lock()
	fl, ok := e.inflight[jobID]
	if !ok {
		e.mu.Unlock()
		return false
	}
	delete(e.inflight, jobID)
	n := len(e.inflight)
	missed = now > fl.deadline+eps
	if missed {
		e.keepViolation(Violation{
			Kind: "deadline-miss", JobID: jobID, Trace: fl.trace,
			Deadline: fl.deadline, ReservedFinish: fl.reservedFinish,
			Finish: now, At: now,
		})
	}
	e.mu.Unlock()
	e.completed.Inc()
	e.inFlightG.Set(float64(n))
	if missed {
		e.misses.Inc()
		e.opts.Recorder.Trigger(TriggerDeadlineMiss, fl.trace, now,
			fmt.Sprintf("job %d finished %.6g past deadline %.6g (reserved %.6g)", jobID, now, fl.deadline, fl.reservedFinish))
	}
	return missed
}

// ObserveUtilization feeds one utilization sample to the utilization
// objective (no-op unless Options.UtilTarget is positive).
func (e *Engine) ObserveUtilization(now, util float64) {
	if e == nil || e.opts.UtilTarget <= 0 {
		return
	}
	e.mu.Lock()
	e.utilShort.add(now, util < e.opts.UtilTarget)
	e.utilLong.add(now, util < e.opts.UtilTarget)
	e.mu.Unlock()
}

// ObserveForecast feeds one audited rejection to the headroom-forecast
// objective: miss means the rejected demand lay inside the capacity
// frontier the plane had advertised (a forensics.Forecaster forecast
// miss — the plane said "I can take this" and then said no).  The
// objective activates on the first sample.
func (e *Engine) ObserveForecast(now float64, miss bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.fcSeen = true
	e.fcChecks++
	if miss {
		e.fcMisses++
	}
	e.fcShort.add(now, miss)
	e.fcLong.add(now, miss)
	e.mu.Unlock()
}

// ObserveRouter feeds the cumulative router-health counters (fed_
// commit races and rebalancer migrations).  Deltas land in the short
// window; crossing the spike/storm thresholds triggers the flight
// recorder once per crossing.
func (e *Engine) ObserveRouter(now float64, commitRaces, migrations int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	var dRaces, dMoves int64
	if e.routerSeen {
		dRaces, dMoves = commitRaces-e.lastRaces, migrations-e.lastMoves
		if dRaces < 0 {
			dRaces = 0 // counter reset (new run)
		}
		if dMoves < 0 {
			dMoves = 0
		}
	}
	e.routerSeen = true
	e.lastRaces, e.lastMoves = commitRaces, migrations
	for i := int64(0); i < dRaces; i++ {
		e.raceWin.add(now, true)
	}
	for i := int64(0); i < dMoves; i++ {
		e.stormWin.add(now, true)
	}
	e.raceWin.advance(now)
	e.stormWin.advance(now)
	races, _ := e.raceWin.totals()
	moves, _ := e.stormWin.totals()
	raceSpike := races >= e.opts.RaceSpikeThreshold && !e.alertOn["commit-races"]
	storm := moves >= e.opts.StormThreshold && !e.alertOn["rebalance"]
	if races < e.opts.RaceSpikeThreshold {
		e.alertOn["commit-races"] = false
	} else if raceSpike {
		e.alertOn["commit-races"] = true
	}
	if moves < e.opts.StormThreshold {
		e.alertOn["rebalance"] = false
	} else if storm {
		e.alertOn["rebalance"] = true
	}
	e.mu.Unlock()
	if raceSpike {
		e.opts.Recorder.Trigger(TriggerCommitRaceSpike, 0, now,
			fmt.Sprintf("%d commit races within the last %.3gs", races, e.opts.ShortWindow))
	}
	if storm {
		e.opts.Recorder.Trigger(TriggerRebalanceStorm, 0, now,
			fmt.Sprintf("%d processor migrations within the last %.3gs", moves, e.opts.ShortWindow))
	}
}

// Tick advances the windows to now, publishes the burn-rate gauges and
// raises multi-window alerts (edge-triggered: one alert per budget-burn
// episode per objective).
func (e *Engine) Tick(now float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.latShort.advance(now)
	e.latLong.advance(now)
	e.utilShort.advance(now)
	e.utilLong.advance(now)
	e.fcShort.advance(now)
	e.fcLong.advance(now)
	ls := e.latShort.burn(e.opts.LatencyBudget)
	ll := e.latLong.burn(e.opts.LatencyBudget)
	us := e.utilShort.burn(e.opts.UtilBudget)
	ul := e.utilLong.burn(e.opts.UtilBudget)
	fs := e.fcShort.burn(e.opts.ForecastBudget)
	fl := e.fcLong.burn(e.opts.ForecastBudget)
	fcSeen := e.fcSeen
	var fired []Alert
	check := func(objective string, short, long float64) {
		burning := short >= e.opts.BurnThreshold && long >= e.opts.BurnThreshold
		if burning && !e.alertOn[objective] {
			e.alertOn[objective] = true
			a := Alert{Objective: objective, Short: short, Long: long, At: now}
			fired = append(fired, a)
			e.alerts = append(e.alerts, a)
			if len(e.alerts) > maxKept {
				e.alerts = e.alerts[len(e.alerts)-maxKept:]
			}
		} else if !burning {
			e.alertOn[objective] = false
		}
	}
	check("admit-latency", ls, ll)
	if e.opts.UtilTarget > 0 {
		check("utilization", us, ul)
	}
	if fcSeen {
		check("headroom-forecast", fs, fl)
	}
	regFired := e.advanceRegressionLocked(now, &fired)
	e.mu.Unlock()
	e.triggerRegressions(now, regFired)
	e.latBurnShort.Set(clampInf(ls))
	e.latBurnLong.Set(clampInf(ll))
	e.utilBurnShort.Set(clampInf(us))
	e.utilBurnLong.Set(clampInf(ul))
	e.fcBurnShort.Set(clampInf(fs))
	e.fcBurnLong.Set(clampInf(fl))
	e.alertCount.Add(int64(len(fired)))
}

// clampInf maps +Inf burn (zero-budget objectives) to a large sentinel so
// the gauges stay JSON-serializable.
func clampInf(v float64) float64 {
	if math.IsInf(v, 1) {
		return 1e9
	}
	return v
}

// keepViolation appends under e.mu, bounded.
func (e *Engine) keepViolation(v Violation) {
	e.violations = append(e.violations, v)
	if len(e.violations) > maxKept {
		e.violations = e.violations[len(e.violations)-maxKept:]
	}
}

// Report is a point-in-time conformance summary.
type Report struct {
	Admitted       int64       `json:"admitted"`
	Rejected       int64       `json:"rejected"`
	Completed      int64       `json:"completed"`
	InFlight       int         `json:"in_flight"`
	DeadlineMisses int64       `json:"deadline_misses"`
	OverAdmissions int64       `json:"over_admissions"`
	Violations     []Violation `json:"violations,omitempty"`
	Alerts         []Alert     `json:"alerts,omitempty"`

	LatencyTarget float64 `json:"latency_target"`
	LatencyP50    float64 `json:"latency_p50"`
	LatencyP99    float64 `json:"latency_p99"`
	LatencyMean   float64 `json:"latency_mean"`

	LatencyBurnShort  float64 `json:"latency_burn_short"`
	LatencyBurnLong   float64 `json:"latency_burn_long"`
	UtilBurnShort     float64 `json:"util_burn_short,omitempty"`
	UtilBurnLong      float64 `json:"util_burn_long,omitempty"`
	ForecastBurnShort float64 `json:"forecast_burn_short,omitempty"`
	ForecastBurnLong  float64 `json:"forecast_burn_long,omitempty"`
	ForecastMisses    int64   `json:"forecast_misses,omitempty"`
	ForecastChecks    int64   `json:"forecast_checks,omitempty"`

	// Regression is the latency-regression sentinel's current per-phase
	// burns (empty when no RegressionSource is armed or no admissions
	// have been timed).
	Regression []ObjectiveBurn `json:"regression,omitempty"`

	Snapshots int `json:"flight_snapshots"`
}

// Conformant reports the hard invariant: no deadline misses and no
// over-admissions.
func (r Report) Conformant() bool { return r.DeadlineMisses == 0 && r.OverAdmissions == 0 }

// Report assembles the current conformance summary.
func (e *Engine) Report() Report {
	if e == nil {
		return Report{}
	}
	hist := e.latHist.Snapshot()
	e.mu.Lock()
	r := Report{
		InFlight:         len(e.inflight),
		Violations:       append([]Violation(nil), e.violations...),
		Alerts:           append([]Alert(nil), e.alerts...),
		LatencyBurnShort: clampInf(e.latShort.burn(e.opts.LatencyBudget)),
		LatencyBurnLong:  clampInf(e.latLong.burn(e.opts.LatencyBudget)),
	}
	if e.opts.UtilTarget > 0 {
		r.UtilBurnShort = clampInf(e.utilShort.burn(e.opts.UtilBudget))
		r.UtilBurnLong = clampInf(e.utilLong.burn(e.opts.UtilBudget))
	}
	if e.fcSeen {
		r.ForecastBurnShort = clampInf(e.fcShort.burn(e.opts.ForecastBudget))
		r.ForecastBurnLong = clampInf(e.fcLong.burn(e.opts.ForecastBudget))
		r.ForecastChecks = e.fcChecks
		r.ForecastMisses = e.fcMisses
	}
	r.Regression = e.regressionBurnsLocked()
	e.mu.Unlock()
	r.Admitted = e.admitted.Value()
	r.Rejected = e.rejected.Value()
	r.Completed = e.completed.Value()
	r.DeadlineMisses = e.misses.Value()
	r.OverAdmissions = e.overAdmissions.Value()
	r.LatencyTarget = e.opts.LatencyTarget
	r.LatencyP50 = hist.Quantile(0.50)
	r.LatencyP99 = hist.Quantile(0.99)
	r.LatencyMean = hist.Mean()
	if rec := e.opts.Recorder; rec != nil {
		r.Snapshots = rec.Len()
	}
	return r
}

// WriteReport renders the conformance report as a text table (the
// tunesim -slo end-of-run output).
func (e *Engine) WriteReport(w io.Writer) error {
	r := e.Report()
	verdict := "CONFORMANT (admitted => met)"
	if !r.Conformant() {
		verdict = "VIOLATED"
	}
	if _, err := fmt.Fprintf(w, "SLO conformance: %s\n", verdict); err != nil {
		return err
	}
	fmt.Fprintf(w, "  admitted=%d rejected=%d completed=%d in-flight=%d\n",
		r.Admitted, r.Rejected, r.Completed, r.InFlight)
	fmt.Fprintf(w, "  deadline misses=%d over-admissions=%d flight snapshots=%d\n",
		r.DeadlineMisses, r.OverAdmissions, r.Snapshots)
	fmt.Fprintf(w, "  admit latency: p50=%.3gms p99=%.3gms mean=%.3gms (target %.3gms)\n",
		r.LatencyP50*1e3, r.LatencyP99*1e3, r.LatencyMean*1e3, r.LatencyTarget*1e3)
	fmt.Fprintf(w, "  burn rates: latency short=%.3g long=%.3g", r.LatencyBurnShort, r.LatencyBurnLong)
	if r.UtilBurnShort != 0 || r.UtilBurnLong != 0 {
		fmt.Fprintf(w, " utilization short=%.3g long=%.3g", r.UtilBurnShort, r.UtilBurnLong)
	}
	fmt.Fprintln(w)
	if r.ForecastChecks > 0 {
		fmt.Fprintf(w, "  headroom forecast: misses=%d/%d burn short=%.3g long=%.3g\n",
			r.ForecastMisses, r.ForecastChecks, r.ForecastBurnShort, r.ForecastBurnLong)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  violation: %s job=%d trace=%d deadline=%.6g reserved=%.6g finish=%.6g\n",
			v.Kind, v.JobID, v.Trace, v.Deadline, v.ReservedFinish, v.Finish)
	}
	for _, a := range r.Alerts {
		fmt.Fprintf(w, "  alert: %s short=%.3g long=%.3g at=%.6g\n", a.Objective, a.Short, a.Long, a.At)
	}
	return nil
}
