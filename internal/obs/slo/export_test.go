package slo

import (
	"math"
	"testing"
)

// ExportState must reflect the engine's cumulative decision counters and
// carry the raw burn-window totals for the latency objective.
func TestExportStateCarriesWindowTotals(t *testing.T) {
	e := New(Options{LatencyTarget: 0.5, LatencyBudget: 0.5})
	// Three decisions: two within the latency target, one breaching it.
	e.JobAdmitted(1, 0, 0, 0.1, 100, 50)
	e.JobAdmitted(2, 0, 0, 0.9, 100, 50)
	e.JobRejected(3, 0, 0, 0.1)
	e.JobCompleted(1, 10)

	st := e.ExportState()
	if st.Admitted != 2 || st.Rejected != 1 || st.Completed != 1 {
		t.Fatalf("counters = %+v", st)
	}
	var lat *ObjectiveState
	for i := range st.Objectives {
		if st.Objectives[i].Name == ObjectiveLatency {
			lat = &st.Objectives[i]
		}
	}
	if lat == nil || !lat.Active {
		t.Fatalf("no active latency objective in %+v", st.Objectives)
	}
	if lat.ShortTotal != 3 || lat.ShortBad != 1 {
		t.Fatalf("latency window = %d bad / %d total, want 1/3", lat.ShortBad, lat.ShortTotal)
	}
	if ex := (*Engine)(nil).ExportState(); ex.Admitted != 0 || len(ex.Objectives) != 0 {
		t.Fatalf("nil engine exported %+v", ex)
	}
}

// MergeStates must add counters and window totals across nodes — and the
// merged burn must equal (Σ bad)/(Σ total)/budget, which differs from any
// average of per-node burns (the reason raw totals ride the wire).
func TestMergeStatesAndRecomputedBurns(t *testing.T) {
	a := EngineState{
		Admitted: 10, Rejected: 2, BurnThreshold: 2,
		Objectives: []ObjectiveState{
			{Name: ObjectiveLatency, Budget: 0.1, Active: true, ShortBad: 9, ShortTotal: 10, LongBad: 9, LongTotal: 10},
		},
	}
	b := EngineState{
		Admitted: 30, Rejected: 1,
		Objectives: []ObjectiveState{
			{Name: ObjectiveLatency, Budget: 0.1, Active: true, ShortBad: 0, ShortTotal: 90, LongBad: 0, LongTotal: 90},
			{Name: ObjectiveUtilization, Budget: 0.2, Active: false, ShortBad: 5, ShortTotal: 10},
		},
	}
	m := MergeStates(a, b)
	if m.Admitted != 40 || m.Rejected != 3 || m.BurnThreshold != 2 {
		t.Fatalf("merged counters = %+v", m)
	}
	if len(m.Objectives) != 2 {
		t.Fatalf("objectives = %+v", m.Objectives)
	}
	lat := m.Objectives[0]
	if lat.ShortBad != 9 || lat.ShortTotal != 100 {
		t.Fatalf("merged latency window = %d/%d, want 9/100", lat.ShortBad, lat.ShortTotal)
	}

	burns := m.Burns()
	if len(burns) != 1 {
		t.Fatalf("burns = %+v (inactive objectives must not alert)", burns)
	}
	// Merged burn: (9/100)/0.1 = 0.9 — below threshold, NOT alerting,
	// even though node a alone burns at (9/10)/0.1 = 9x.  Averaging
	// per-node burns would have alerted; merged totals must not.
	if got := burns[0].Short; math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("merged short burn = %g, want 0.9", got)
	}
	if burns[0].Alerting {
		t.Fatal("merged view alerting on a healthy cluster")
	}
	if one := MergeStates(a).Burns(); !one[0].Alerting {
		t.Fatal("single hot node must alert on its own totals")
	}
}
