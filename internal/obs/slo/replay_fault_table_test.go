package slo

import (
	"strings"
	"testing"

	"milan/internal/obs"
)

// One injected fault per subsystem, each replaying to the component's
// fault verdict — the table the campaign harness's artifacts rely on.
// Every case also round-trips through JSONL first, so the verdict is
// proven a pure function of the persisted artifact, not of in-process
// state.
func TestReplayFaultTable(t *testing.T) {
	cases := []struct {
		name string
		snap *Snapshot
		want string
	}{
		{
			// Planner: admission committed a reservation already past the
			// job's deadline.
			name: "planner/over-admission",
			snap: func() *Snapshot {
				s := missSnapshot(10, 10.6, 0, false)
				s.Kind = TriggerOverAdmission
				return s
			}(),
			want: FaultPlanner,
		},
		{
			// Planner again via the deadline-miss decomposition: the
			// reservation itself broke the deadline at admission time.
			name: "planner/reserved-past-deadline",
			snap: missSnapshot(10, 10.6, 10.6, false),
			want: FaultPlanner,
		},
		{
			// Router: optimistic-commit fallbacks crossed the spike
			// threshold.
			name: "router/commit-race-spike",
			snap: &Snapshot{Version: snapshotVersion, Kind: TriggerCommitRaceSpike, At: 3},
			want: FaultRouter,
		},
		{
			// Router via span evidence: the miss isn't explained by the
			// numbers, but the reserve span carries race scars.
			name: "router/race-scarred-miss",
			snap: missSnapshot(10, 9.5, 9.4, true),
			want: FaultRouter,
		},
		{
			// Rebalancer: migrations crossed the storm threshold.
			name: "rebalancer/storm",
			snap: &Snapshot{Version: snapshotVersion, Kind: TriggerRebalanceStorm, At: 4},
			want: FaultRebalancer,
		},
		{
			// Rebalancer: the plane's capacity drifted away from the
			// broker's pool (processors lost or duplicated by resizes).
			name: "rebalancer/capacity-drift",
			snap: &Snapshot{Version: snapshotVersion, Kind: TriggerCapacityDrift, At: 9,
				Note: "plane holds 31 procs, pool holds 32"},
			want: FaultRebalancer,
		},
		{
			// Runtime: execution overran the reservation it was granted.
			name: "runtime/reservation-overrun",
			snap: missSnapshot(10, 9.5, 10.4, false),
			want: FaultRuntime,
		},
		{
			// Runtime: the fault-masking executor lost committed work.
			name: "runtime/masking-loss",
			snap: &Snapshot{Version: snapshotVersion, Kind: TriggerMaskingLoss, At: 2,
				Note: "store missing key k17 after crash flood"},
			want: FaultRuntime,
		},
		{
			// Shedder: saturation shedding broke a fairness invariant.
			name: "shedder/fairness-breach",
			snap: &Snapshot{Version: snapshotVersion, Kind: TriggerFairnessBreach, At: 7,
				Note: "class 2 admitted share 0.33, weighted share 0.17"},
			want: FaultShedder,
		},
		{
			// Durability: crash recovery lost acknowledged admission state.
			name: "durability/recovery-loss",
			snap: &Snapshot{Version: snapshotVersion, Kind: TriggerDurabilityLoss, At: 11,
				Note: "grant 42 acked at lsn 97 missing after replay (dropped fsync)"},
			want: FaultDurability,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := tc.snap.WriteJSONL(&sb); err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeSnapshot(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatal(err)
			}
			v := Replay(decoded)
			if v.Fault != tc.want {
				t.Fatalf("fault = %q, want %q (verdict %+v)", v.Fault, tc.want, v)
			}
			if direct := Replay(tc.snap); direct.Fault != v.Fault {
				t.Fatalf("round trip changed the verdict: %q vs %q", direct.Fault, v.Fault)
			}
		})
	}
}

// The fairness-breach verdict must render through WriteReplay too (the
// human side of the campaign artifact workflow).
func TestWriteReplayFairnessBreach(t *testing.T) {
	s := &Snapshot{Version: snapshotVersion, Kind: TriggerFairnessBreach, At: 7,
		Note: "tenant hog starved 420 units past the window",
		Events: []obs.Event{
			{Time: 6.5, Type: obs.EvRejected, Job: 41, Reason: "shed"},
		}}
	var sb strings.Builder
	if err := WriteReplay(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fault=shedder", "fairness", "starved 420"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replay output missing %q:\n%s", want, out)
		}
	}
}
