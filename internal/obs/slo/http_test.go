package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"milan/internal/obs"
)

func TestEngineHandlerServesReport(t *testing.T) {
	e := New(Options{})
	e.JobAdmitted(1, 1, 0, 1e-3, 10, 9)
	rw := httptest.NewRecorder()
	e.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/slo", nil))
	if rw.Code != 200 {
		t.Fatalf("status %d", rw.Code)
	}
	var r Report
	if err := json.Unmarshal(rw.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Admitted != 1 || r.InFlight != 1 {
		t.Fatalf("report: %+v", r)
	}

	// ?now ticks the windows first; a bad value is a 400.
	rw = httptest.NewRecorder()
	e.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/slo?now=5.5", nil))
	if rw.Code != 200 {
		t.Fatalf("?now status %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	e.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/slo?now=bogus", nil))
	if rw.Code != 400 {
		t.Fatalf("bad ?now status %d", rw.Code)
	}
}

func TestMountOnObserver(t *testing.T) {
	o := obs.New(obs.Config{Tracing: true})
	rec := NewRecorder(16, 16)
	e := New(Options{Registry: o.Reg, Recorder: rec})
	e.Mount(o)
	h := o.Handler()

	// /slo serves the report.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/slo", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "deadline_misses") {
		t.Fatalf("/slo: %d %s", rw.Code, rw.Body.String())
	}

	// /flight 404s until a snapshot is cut, then serves it.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/flight", nil))
	if rw.Code != 404 {
		t.Fatalf("/flight before snapshot: %d", rw.Code)
	}
	rec.Trigger(TriggerManual, 0, 1, "op snap")
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/flight", nil))
	if rw.Code != 200 {
		t.Fatalf("/flight after snapshot: %d", rw.Code)
	}

	// /healthz is ok while conformant…
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/healthz", nil))
	if rw.Code != 200 {
		t.Fatalf("/healthz conformant: %d %s", rw.Code, rw.Body.String())
	}
	// …and 503 once the hard invariant breaks.
	e.JobAdmitted(1, 1, 0, 1e-3, 10, 9)
	e.JobCompleted(1, 11)
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/healthz", nil))
	if rw.Code != 503 || !strings.Contains(rw.Body.String(), "slo violated") {
		t.Fatalf("/healthz violated: %d %s", rw.Code, rw.Body.String())
	}

	// The index lists the mounted routes.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rw.Body.String(), "/slo") || !strings.Contains(rw.Body.String(), "/flight") {
		t.Fatalf("index missing mounted routes:\n%s", rw.Body.String())
	}

	// Mount on nil is a no-op.
	e.Mount(nil)
	(*Engine)(nil).Mount(o)
}
