package slo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"milan/internal/obs"
)

// TriggerKind names the anomaly that cut a flight-recorder snapshot.
type TriggerKind string

const (
	// TriggerDeadlineMiss: an admitted job finished past its deadline —
	// the hard invariant broke.
	TriggerDeadlineMiss TriggerKind = "deadline-miss"
	// TriggerOverAdmission: admission produced a reservation already
	// past the job's deadline (planner fault by construction).
	TriggerOverAdmission TriggerKind = "over-admission"
	// TriggerCommitRaceSpike: optimistic-commit fallbacks crossed the
	// short-window threshold (router contention).
	TriggerCommitRaceSpike TriggerKind = "commit-race-spike"
	// TriggerRebalanceStorm: processor migrations crossed the
	// short-window threshold (rebalancer thrash).
	TriggerRebalanceStorm TriggerKind = "rebalance-storm"
	// TriggerFairnessBreach: the admission shedder broke a fairness
	// invariant — weighted class shares diverged, a shed skipped a
	// higher class, or an under-quota tenant starved past the bounded
	// window (shedder fault by construction).
	TriggerFairnessBreach TriggerKind = "fairness-breach"
	// TriggerCapacityDrift: the plane's total capacity stopped matching
	// the resource pool — processors were lost or duplicated by
	// migrations or broker-driven resizes (rebalancer fault by
	// construction).
	TriggerCapacityDrift TriggerKind = "capacity-drift"
	// TriggerMaskingLoss: the fault-masking runtime lost committed work —
	// a task's writes never reached the store despite the crash budget
	// (runtime fault by construction).
	TriggerMaskingLoss TriggerKind = "masking-loss"
	// TriggerDurabilityLoss: crash recovery came back missing state the
	// plane had acknowledged as committed — a grant acked to a client did
	// not survive replay, or the recovered profile diverged from the
	// never-crashed reference.  This convicts the durability layer (WAL
	// sync policy, snapshot protocol, or a lying disk).
	TriggerDurabilityLoss TriggerKind = "durability-loss"
	// TriggerLatencyRegression: an admission phase's live latency burned
	// the committed baseline envelope on both windows — the regression
	// sentinel caught the plane getting slower than its benchmarked self.
	TriggerLatencyRegression TriggerKind = "latency-regression"
	// TriggerManual: an operator-requested snapshot.
	TriggerManual TriggerKind = "manual"
)

// Snapshot is one self-contained flight-recorder dump: the trigger plus
// every span and decision event the recorder's rings held at cut time.
// It serializes to JSONL (one header line, then one line per span and
// event) and round-trips through DecodeSnapshot, so a snapshot written in
// production replays anywhere.
type Snapshot struct {
	Version int         `json:"v"`
	Kind    TriggerKind `json:"kind"`
	Trace   uint64      `json:"trace,omitempty"`
	At      float64     `json:"at"`
	Note    string      `json:"note,omitempty"`

	Spans  []obs.SpanRec `json:"-"`
	Events []obs.Event   `json:"-"`
}

// snapshotVersion is the JSONL format version written by WriteJSONL.
const snapshotVersion = 1

// snapLine is one non-header JSONL line: exactly one of Span/Event set.
type snapLine struct {
	Span  *obs.SpanRec `json:"span,omitempty"`
	Event *obs.Event   `json:"event,omitempty"`
}

// WriteJSONL writes the snapshot as JSON lines: the header (the exported
// Snapshot fields), then spans, then events.
func (s *Snapshot) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("slo: snapshot header: %w", err)
	}
	for i := range s.Spans {
		if err := enc.Encode(snapLine{Span: &s.Spans[i]}); err != nil {
			return fmt.Errorf("slo: snapshot span: %w", err)
		}
	}
	for i := range s.Events {
		if err := enc.Encode(snapLine{Event: &s.Events[i]}); err != nil {
			return fmt.Errorf("slo: snapshot event: %w", err)
		}
	}
	return bw.Flush()
}

// DecodeSnapshot reads a JSONL snapshot back (the round-trip of
// WriteJSONL).  Blank lines are skipped; unknown versions and malformed
// lines are errors.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var snap *Snapshot
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if snap == nil {
			var s Snapshot
			if err := json.Unmarshal(b, &s); err != nil {
				return nil, fmt.Errorf("slo: snapshot line %d: %w", line, err)
			}
			if s.Version != snapshotVersion {
				return nil, fmt.Errorf("slo: snapshot version %d (want %d)", s.Version, snapshotVersion)
			}
			if s.Kind == "" {
				return nil, fmt.Errorf("slo: snapshot line %d: missing trigger kind", line)
			}
			snap = &s
			continue
		}
		var l snapLine
		if err := json.Unmarshal(b, &l); err != nil {
			return nil, fmt.Errorf("slo: snapshot line %d: %w", line, err)
		}
		switch {
		case l.Span != nil:
			snap.Spans = append(snap.Spans, *l.Span)
		case l.Event != nil:
			snap.Events = append(snap.Events, *l.Event)
		default:
			return nil, fmt.Errorf("slo: snapshot line %d: neither span nor event", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("slo: snapshot: %w", err)
	}
	if snap == nil {
		return nil, fmt.Errorf("slo: empty snapshot")
	}
	return snap, nil
}

// Recorder is the anomaly-triggered flight recorder: bounded rings of
// recent completed spans and decision events, frozen into Snapshots by
// Trigger.  It implements obs.TraceSink (events) and plugs into a
// Tracer via Attach (spans).  All methods are safe for concurrent use
// and safe on a nil receiver.
type Recorder struct {
	mu       sync.Mutex
	spans    *obs.Ring[obs.SpanRec]
	events   *obs.Ring[obs.Event]
	snaps    []*Snapshot
	maxSnaps int
	triggers int64
	// cooldown suppresses a second snapshot for the same trigger kind
	// within this many clock units of the previous one (0 = none).
	cooldown float64
	lastCut  map[TriggerKind]float64
}

// NewRecorder returns a recorder retaining up to spanCap spans and
// eventCap events (values < 1 mean 4096), and at most 16 snapshots.
func NewRecorder(spanCap, eventCap int) *Recorder {
	if spanCap < 1 {
		spanCap = 4096
	}
	if eventCap < 1 {
		eventCap = 4096
	}
	return &Recorder{
		spans:    obs.NewRing[obs.SpanRec](spanCap),
		events:   obs.NewRing[obs.Event](eventCap),
		maxSnaps: 16,
		lastCut:  make(map[TriggerKind]float64),
	}
}

// SetCooldown suppresses repeat snapshots of the same trigger kind within
// d clock units (e.g. one deadline-miss dump per minute, not one per
// missed job in a burst).
func (r *Recorder) SetCooldown(d float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cooldown = d
	r.mu.Unlock()
}

// Attach installs the recorder on a tracer: every completed span lands in
// the span ring.
func (r *Recorder) Attach(t *obs.Tracer) {
	if r == nil || t == nil {
		return
	}
	t.OnEnd(r.RecordSpan)
}

// RecordSpan adds one completed span to the ring (the Tracer.OnEnd sink).
func (r *Recorder) RecordSpan(rec obs.SpanRec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans.Push(rec)
	r.mu.Unlock()
}

// Emit adds one decision event to the ring (the obs.TraceSink surface —
// pass the recorder as obs.Config.Sink, or inside an obs.MultiSink).
func (r *Recorder) Emit(ev obs.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events.Push(ev)
	r.mu.Unlock()
}

// SpansDropped returns how many spans were evicted from the span ring
// because it wrapped (anomalies older than the retention window are no
// longer replayable).
func (r *Recorder) SpansDropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.Dropped()
}

// EventsDropped returns how many decision events were evicted from the
// event ring because it wrapped.
func (r *Recorder) EventsDropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events.Dropped()
}

// Trigger freezes the rings into a snapshot for the given anomaly.
// Returns nil on a nil recorder or when suppressed by the cooldown.
func (r *Recorder) Trigger(kind TriggerKind, trace uint64, now float64, note string) *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.cooldown > 0 {
		if last, ok := r.lastCut[kind]; ok && now-last < r.cooldown && now >= last {
			r.mu.Unlock()
			return nil
		}
	}
	r.lastCut[kind] = now
	r.triggers++
	snap := &Snapshot{
		Version: snapshotVersion,
		Kind:    kind,
		Trace:   trace,
		At:      now,
		Note:    note,
		Spans:   r.spans.Items(),
		Events:  r.events.Items(),
	}
	r.snaps = append(r.snaps, snap)
	if len(r.snaps) > r.maxSnaps {
		r.snaps = r.snaps[len(r.snaps)-r.maxSnaps:]
	}
	r.mu.Unlock()
	return snap
}

// Snapshots returns the retained snapshots, oldest first.
func (r *Recorder) Snapshots() []*Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Snapshot(nil), r.snaps...)
}

// Last returns the most recent snapshot, or nil.
func (r *Recorder) Last() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.snaps) == 0 {
		return nil
	}
	return r.snaps[len(r.snaps)-1]
}

// Len returns how many snapshots are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.snaps)
}

// Triggers returns how many snapshots were ever cut (including ones since
// evicted by the retention bound).
func (r *Recorder) Triggers() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.triggers
}

// Handler serves the latest snapshot as a JSONL download (404 when none).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Last()
		if snap == nil {
			http.Error(w, "no flight-recorder snapshot", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="flight.jsonl"`)
		snap.WriteJSONL(w)
	})
}
