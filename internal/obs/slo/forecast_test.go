package slo

import (
	"strings"
	"testing"

	"milan/internal/obs"
)

// TestForecastObjectiveOffUntilFirstSample pins the activation contract:
// the headroom-forecast objective costs nothing and alerts on nothing
// until the first ObserveForecast sample arrives.
func TestForecastObjectiveOffUntilFirstSample(t *testing.T) {
	e := New(Options{ShortWindow: 10, LongWindow: 100, Buckets: 10, BurnThreshold: 2})
	e.Tick(1)
	r := e.Report()
	if r.ForecastChecks != 0 || r.ForecastBurnShort != 0 || len(r.Alerts) != 0 {
		t.Fatalf("forecast objective active without samples: %+v", r)
	}
	var buf strings.Builder
	if err := e.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "headroom forecast") {
		t.Fatalf("report mentions forecast without samples:\n%s", buf.String())
	}
}

// TestForecastBurnAlert drives the headroom-forecast objective into a
// sustained miss burn and checks the full surface: burn gauges, the
// edge-triggered alert, report counters and the report line.
func TestForecastBurnAlert(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Registry: reg, ShortWindow: 10, LongWindow: 100, Buckets: 10,
		ForecastBudget: 0.1, BurnThreshold: 2})
	// Every audited rejection is a forecast miss: error rate 1.0 over a
	// 0.1 budget -> burn 10 on both windows.
	for i := 0; i < 20; i++ {
		e.ObserveForecast(float64(i)*0.1, true)
	}
	e.Tick(2.0)
	r := e.Report()
	if r.ForecastChecks != 20 || r.ForecastMisses != 20 {
		t.Fatalf("forecast counters wrong: %+v", r)
	}
	if r.ForecastBurnShort < 2 || r.ForecastBurnLong < 2 {
		t.Fatalf("forecast burn not elevated: %+v", r)
	}
	found := false
	for _, a := range r.Alerts {
		if a.Objective == "headroom-forecast" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no headroom-forecast alert: %+v", r.Alerts)
	}
	if g := reg.Gauge(MetricForecastBurnShort).Value(); g < 2 {
		t.Fatalf("%s gauge = %v", MetricForecastBurnShort, g)
	}
	var buf strings.Builder
	if err := e.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "headroom forecast: misses=20/20") {
		t.Fatalf("report missing forecast line:\n%s", buf.String())
	}

	// Edge-triggered: still burning, no second alert.
	e.Tick(2.5)
	n := 0
	for _, a := range e.Report().Alerts {
		if a.Objective == "headroom-forecast" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("forecast alert re-fired while burning: %d", n)
	}
}

// TestForecastAccurateFrontierStaysQuiet feeds only accurate forecasts
// (every audited rejection was predicted): the burn stays at zero and no
// alert fires.
func TestForecastAccurateFrontierStaysQuiet(t *testing.T) {
	e := New(Options{ShortWindow: 10, LongWindow: 100, Buckets: 10,
		ForecastBudget: 0.1, BurnThreshold: 2})
	for i := 0; i < 50; i++ {
		e.ObserveForecast(float64(i)*0.05, false)
	}
	e.Tick(3)
	r := e.Report()
	if r.ForecastMisses != 0 || r.ForecastChecks != 50 {
		t.Fatalf("counters wrong: %+v", r)
	}
	if r.ForecastBurnShort != 0 || r.ForecastBurnLong != 0 {
		t.Fatalf("burn on an accurate frontier: %+v", r)
	}
	for _, a := range r.Alerts {
		if a.Objective == "headroom-forecast" {
			t.Fatalf("spurious forecast alert: %+v", a)
		}
	}
}

// TestNilEngineForecastSafe extends the nil-receiver contract to the
// forecast feed.
func TestNilEngineForecastSafe(t *testing.T) {
	var e *Engine
	e.ObserveForecast(1, true) // must not panic
	if r := e.Report(); r.ForecastChecks != 0 {
		t.Fatalf("nil engine forecast counters: %+v", r)
	}
}
