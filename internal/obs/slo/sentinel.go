package slo

// The online latency-regression sentinel: each Tick pulls the latency
// plane's cumulative per-phase envelope counters (admissions timed /
// admissions over the committed baseline envelope), diffs them into the
// engine's multi-window burn machinery, and edge-triggers one
// "latency-regression:<phase>" alert per burn episode — cutting a flight
// recorder snapshot so the tail that regressed is preserved with its
// spans and decisions.
//
// The envelope itself (per-phase nanosecond budgets derived from the
// committed benchmark trajectory) lives on the latency.Plane; the engine
// only sees counts, so the sentinel works identically over live planes
// and over merged cluster state (the exported objectives ride
// EngineState like every other objective and re-alert after MergeStates).

import (
	"fmt"
	"strings"

	"milan/internal/obs/latency"
)

// ObjectiveRegressionPrefix prefixes the per-phase regression objective
// names ("latency-regression:probe", ..., "latency-regression:e2e").
const ObjectiveRegressionPrefix = "latency-regression:"

// regState is one phase's sentinel state: burn windows over the phase's
// over-envelope fraction, plus the last cumulative counters seen (the
// plane's counters are monotone; the sentinel consumes deltas).  The
// baseline starts at zero rather than priming on first sight: the plane
// and its engine are created together, so everything the counters hold
// at the first tick is traffic this sentinel should judge — priming
// would silently absorb admissions that completed before the ticker's
// first firing.
type regState struct {
	short, long *window
	lastTotal   int64
	lastOver    int64
	seen        bool // any admissions observed at all
}

// advanceRegressionLocked pulls the regression source, feeds the deltas
// into the per-phase windows and runs the engine's multi-window
// edge-triggered alert rule.  Caller holds e.mu.  Returns the alerts
// fired this tick (already appended to e.alerts and *fired).
func (e *Engine) advanceRegressionLocked(now float64, fired *[]Alert) []Alert {
	src := e.opts.RegressionSource
	if src == nil {
		return nil
	}
	counts := src()
	var out []Alert
	for _, c := range counts {
		st, ok := e.reg[c.Name]
		if !ok {
			st = &regState{
				short: newWindow(e.opts.ShortWindow, e.opts.Buckets),
				long:  newWindow(e.opts.LongWindow, e.opts.Buckets),
			}
			e.reg[c.Name] = st
			e.regOrder = append(e.regOrder, c.Name)
		}
		dTotal, dOver := c.Total-st.lastTotal, c.Over-st.lastOver
		if dTotal < 0 || dOver < 0 || dOver > dTotal {
			// Counter reset (plane swapped or envelope re-armed):
			// restart from the new baseline.
			dTotal, dOver = 0, 0
		}
		if dTotal > 0 {
			st.seen = true
			st.short.addN(now, dTotal-dOver, dOver)
			st.long.addN(now, dTotal-dOver, dOver)
		}
		st.lastTotal, st.lastOver = c.Total, c.Over
	}
	for _, name := range e.regOrder {
		st := e.reg[name]
		st.short.advance(now)
		st.long.advance(now)
		if !st.seen {
			continue
		}
		objective := ObjectiveRegressionPrefix + name
		short := st.short.burn(e.opts.RegressionBudget)
		long := st.long.burn(e.opts.RegressionBudget)
		burning := short >= e.opts.BurnThreshold && long >= e.opts.BurnThreshold
		if burning && !e.alertOn[objective] {
			e.alertOn[objective] = true
			a := Alert{Objective: objective, Short: short, Long: long, At: now}
			*fired = append(*fired, a)
			out = append(out, a)
			e.alerts = append(e.alerts, a)
			if len(e.alerts) > maxKept {
				e.alerts = e.alerts[len(e.alerts)-maxKept:]
			}
		} else if !burning {
			e.alertOn[objective] = false
		}
	}
	return out
}

// triggerRegressions cuts one flight-recorder snapshot per fired
// regression alert (outside e.mu).
func (e *Engine) triggerRegressions(now float64, alerts []Alert) {
	for _, a := range alerts {
		phase := strings.TrimPrefix(a.Objective, ObjectiveRegressionPrefix)
		e.opts.Recorder.Trigger(TriggerLatencyRegression, 0, now,
			fmt.Sprintf("phase %s latency over baseline envelope: burn short=%.3g long=%.3g", phase, a.Short, a.Long))
	}
}

// regressionBurnsLocked renders the sentinel's current burns (caller
// holds e.mu).
func (e *Engine) regressionBurnsLocked() []ObjectiveBurn {
	var out []ObjectiveBurn
	for _, name := range e.regOrder {
		st := e.reg[name]
		if !st.seen {
			continue
		}
		b := ObjectiveBurn{
			Objective: ObjectiveRegressionPrefix + name,
			Short:     clampInf(st.short.burn(e.opts.RegressionBudget)),
			Long:      clampInf(st.long.burn(e.opts.RegressionBudget)),
		}
		b.Alerting = b.Short >= e.opts.BurnThreshold && b.Long >= e.opts.BurnThreshold
		out = append(out, b)
	}
	return out
}

// interface check: the latency plane's RegressionCounts is the intended
// RegressionSource.
var _ func() []latency.PhaseCount = (*latency.Plane)(nil).RegressionCounts
