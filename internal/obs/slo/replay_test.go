package slo

import (
	"strings"
	"testing"

	"milan/internal/obs"
)

// missSnapshot builds a deadline-miss snapshot whose run span carries the
// given deadline/reservedFinish/actualFinish, with optional race scars on
// the reserve span.
func missSnapshot(deadline, reservedFinish, actualFinish float64, raced bool) *Snapshot {
	reserve := obs.SpanRec{Trace: 7, ID: 3, Parent: 1, Name: "fed.commit", Stage: obs.StageReserve,
		Job: 9, Start: 0.2, End: 0.3,
		Attrs: map[string]float64{"finish": reservedFinish}}
	if raced {
		reserve.Attrs["raced"] = 1
	}
	return &Snapshot{
		Version: snapshotVersion,
		Kind:    TriggerDeadlineMiss,
		Trace:   7,
		At:      actualFinish,
		Spans: []obs.SpanRec{
			{Trace: 7, ID: 1, Name: "fed.negotiate", Stage: obs.StageArrival, Job: 9, Start: 0, End: 0.3},
			{Trace: 7, ID: 2, Parent: 1, Name: "fed.probe", Stage: obs.StagePlan, Job: 9, Start: 0.1, End: 0.2,
				Attrs: map[string]float64{"finish": reservedFinish}},
			reserve,
			{Trace: 7, ID: 4, Parent: 1, Name: "job.run", Stage: obs.StageRun, Job: 9,
				Start: 0.3, End: actualFinish,
				Attrs: map[string]float64{"deadline": deadline, "reserved_finish": reservedFinish}},
		},
	}
}

func TestReplayLocalizesRuntime(t *testing.T) {
	// Reservation met the deadline; execution overran it.
	s := missSnapshot(10, 9.5, 10.4, false)
	v := Replay(s)
	if v.Fault != FaultRuntime || v.Stage != obs.StageRun {
		t.Fatalf("verdict: %+v", v)
	}
	if v.Deadline != 10 || v.ReservedFinish != 9.5 || v.ActualFinish != 10.4 {
		t.Fatalf("reconstructed numbers wrong: %+v", v)
	}
	if v.Spans != 4 {
		t.Fatalf("spans counted = %d, want 4", v.Spans)
	}
}

func TestReplayLocalizesPlanner(t *testing.T) {
	// Reservation itself was past the deadline: the miss was decided at
	// admission time.
	s := missSnapshot(10, 10.6, 10.6, false)
	v := Replay(s)
	if v.Fault != FaultPlanner || v.Stage != obs.StagePlan {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestReplayLocalizesRouter(t *testing.T) {
	// Numbers alone don't convict planner or runtime, but the reserve span
	// shows a commit race.
	s := missSnapshot(10, 9.5, 9.4, true)
	// Force "actual <= reserved" so the runtime rule doesn't fire, and
	// deadline-miss kind with finish numbers that don't implicate anyone.
	v := Replay(s)
	if v.Fault != FaultRouter || v.Stage != obs.StageReserve {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestReplayOverAdmissionIsPlanner(t *testing.T) {
	s := missSnapshot(10, 10.6, 0, false)
	s.Kind = TriggerOverAdmission
	v := Replay(s)
	if v.Fault != FaultPlanner {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestReplayAggregateKinds(t *testing.T) {
	if v := Replay(&Snapshot{Version: 1, Kind: TriggerRebalanceStorm}); v.Fault != FaultRebalancer {
		t.Fatalf("storm verdict: %+v", v)
	}
	if v := Replay(&Snapshot{Version: 1, Kind: TriggerCommitRaceSpike}); v.Fault != FaultRouter {
		t.Fatalf("spike verdict: %+v", v)
	}
	if v := Replay(&Snapshot{Version: 1, Kind: TriggerManual}); v.Fault != FaultUnknown {
		t.Fatalf("manual verdict: %+v", v)
	}
	if v := Replay(nil); v.Fault != FaultUnknown {
		t.Fatalf("nil verdict: %+v", v)
	}
}

func TestReplayFallbackAttrs(t *testing.T) {
	// No run span at all (evicted from the ring): deadline/reserved come
	// from the reserve span's attrs; planner still convicted when the
	// reservation was past the deadline.
	s := &Snapshot{
		Version: snapshotVersion, Kind: TriggerDeadlineMiss, Trace: 2, At: 11,
		Spans: []obs.SpanRec{
			{Trace: 2, ID: 1, Name: "fed.negotiate", Stage: obs.StageArrival, Job: 1, Start: 0, End: 0.3},
			{Trace: 2, ID: 2, Parent: 1, Name: "fed.commit", Stage: obs.StageReserve, Job: 1,
				Start: 0.1, End: 0.2,
				Attrs: map[string]float64{"deadline": 10, "finish": 10.8}},
		},
	}
	v := Replay(s)
	if v.Fault != FaultPlanner {
		t.Fatalf("verdict: %+v", v)
	}
	if v.ReservedFinish != 10.8 || v.Deadline != 10 {
		t.Fatalf("fallback attrs not used: %+v", v)
	}
}

func TestReplayUnknownWithoutEvidence(t *testing.T) {
	s := &Snapshot{Version: snapshotVersion, Kind: TriggerDeadlineMiss, Trace: 99, At: 5}
	v := Replay(s)
	if v.Fault != FaultUnknown {
		t.Fatalf("verdict without spans: %+v", v)
	}
}

func TestWriteReplayRendersTreeAndEvents(t *testing.T) {
	s := missSnapshot(10, 9.5, 10.4, false)
	s.Events = []obs.Event{
		{Time: 0.15, Type: obs.EvCommitted, Job: 9, Trace: 7},
		{Time: 10.4, Type: obs.EvStepDone, Job: 9, Trace: 7},
	}
	var sb strings.Builder
	if err := WriteReplay(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fault=runtime", "trace 7:", "fed.negotiate", "job.run", "reserved_finish=9.5",
		"decision events", "Committed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("replay output missing %q:\n%s", want, out)
		}
	}
}

func TestVerdictRoundTripsThroughJSONL(t *testing.T) {
	// A snapshot written in one process must replay identically after a
	// JSONL round trip — the production debugging workflow.
	s := missSnapshot(10, 9.5, 10.4, false)
	var sb strings.Builder
	if err := s.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := Replay(s), Replay(got)
	if v1 != v2 {
		t.Fatalf("replay diverged after round trip:\n%+v\n%+v", v1, v2)
	}
}
