package slo

import (
	"encoding/json"
	"net/http"
	"strconv"

	"milan/internal/obs"
)

// Handler serves the engine's conformance report as JSON.  ?tick=1 first
// advances the windows to the engine clock position implied by the query
// parameter now (a float, optional) — useful when no periodic Tick runs.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s := r.URL.Query().Get("now"); s != "" {
			if now, err := strconv.ParseFloat(s, 64); err == nil {
				e.Tick(now)
			} else {
				http.Error(w, "bad now parameter", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(e.Report()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Mount attaches the engine (and its flight recorder, when present) to an
// observer's debug endpoint:
//
//	/slo     the conformance report (JSON)
//	/flight  the most recent flight-recorder snapshot (JSONL download)
//
// and registers an "slo" health check that fails while the hard invariant
// is violated, so /healthz surfaces deadline misses.
func (e *Engine) Mount(o *obs.Observer) {
	if e == nil || o == nil {
		return
	}
	o.Handle("/slo", e.Handler(), "SLO conformance report (JSON)")
	if rec := e.opts.Recorder; rec != nil {
		o.Handle("/flight", rec.Handler(), "latest flight-recorder snapshot (JSONL)")
	}
	o.AddHealthCheck("slo", func() error {
		r := e.Report()
		if !r.Conformant() {
			return &violationError{misses: r.DeadlineMisses, over: r.OverAdmissions}
		}
		return nil
	})
}

// violationError reports the hard-invariant breach through /healthz.
type violationError struct {
	misses, over int64
}

func (v *violationError) Error() string {
	return "slo violated: " + strconv.FormatInt(v.misses, 10) + " deadline misses, " +
		strconv.FormatInt(v.over, 10) + " over-admissions"
}
