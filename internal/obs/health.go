package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
)

// healthCheck is one named readiness probe served by /healthz.
type healthCheck struct {
	name  string
	check func() error
}

// extraRoute is one dynamically mounted debug-endpoint extension.
type extraRoute struct {
	handler http.Handler
	help    string
}

// Handle mounts an extra handler on the observer's debug endpoint at the
// given path (e.g. "/slo"), listed in the endpoint index with the given
// one-line help.  A pattern ending in "/" matches the whole subtree
// rooted there (longest prefix wins, exact matches first) — the pprof
// mount relies on this.  Extensions may be mounted before or after
// Handler() is called; the dispatch is dynamic.  Mounting a nil handler
// removes the route.
func (o *Observer) Handle(pattern string, h http.Handler, help string) {
	o.webMu.Lock()
	defer o.webMu.Unlock()
	if h == nil {
		delete(o.extra, pattern)
		return
	}
	if o.extra == nil {
		o.extra = make(map[string]extraRoute)
	}
	o.extra[pattern] = extraRoute{handler: h, help: help}
}

// AddHealthCheck registers a named readiness check run by every /healthz
// request.  A nil error means healthy.  Checks run in registration order;
// re-registering a name replaces the check.
func (o *Observer) AddHealthCheck(name string, check func() error) {
	if check == nil {
		return
	}
	o.webMu.Lock()
	defer o.webMu.Unlock()
	for i := range o.checks {
		if o.checks[i].name == name {
			o.checks[i].check = check
			return
		}
	}
	o.checks = append(o.checks, healthCheck{name: name, check: check})
}

// HealthStatus is the /healthz response body.
type HealthStatus struct {
	Status string            `json:"status"` // "ok" or "unhealthy"
	Checks map[string]string `json:"checks,omitempty"`
}

// Health runs every registered check and reports the aggregate: liveness
// is implied by answering at all, readiness by every check passing.
func (o *Observer) Health() HealthStatus {
	o.webMu.Lock()
	checks := append([]healthCheck(nil), o.checks...)
	o.webMu.Unlock()
	st := HealthStatus{Status: "ok"}
	if len(checks) > 0 {
		st.Checks = make(map[string]string, len(checks))
	}
	for _, c := range checks {
		if err := c.check(); err != nil {
			st.Status = "unhealthy"
			st.Checks[c.name] = err.Error()
		} else {
			st.Checks[c.name] = "ok"
		}
	}
	return st
}

// healthz serves the /healthz endpoint: HTTP 200 with {"status":"ok"}
// when every registered check passes, 503 otherwise, with per-check
// detail either way.
func (o *Observer) healthz(w http.ResponseWriter, _ *http.Request) {
	st := o.Health()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

// extraRoutes returns the mounted extension paths in sorted order (for
// the endpoint index).
func (o *Observer) extraRoutes() []string {
	o.webMu.Lock()
	defer o.webMu.Unlock()
	out := make([]string, 0, len(o.extra))
	for p := range o.extra {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// lookupExtra returns the extension handler mounted at path: an exact
// match first, otherwise the longest registered "/"-terminated prefix
// covering the path (subtree mounts like /debug/pprof/).
func (o *Observer) lookupExtra(path string) (http.Handler, bool) {
	o.webMu.Lock()
	defer o.webMu.Unlock()
	if r, ok := o.extra[path]; ok {
		return r.handler, true
	}
	var (
		best    string
		handler http.Handler
	)
	for p, r := range o.extra {
		if strings.HasSuffix(p, "/") && strings.HasPrefix(path, p) && len(p) > len(best) {
			best, handler = p, r.handler
		}
	}
	return handler, handler != nil
}
