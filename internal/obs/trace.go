package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventType names a structured trace event.  The admission types mirror the
// stages of the greedy heuristic (Section 5.2 of the paper); the Step*
// types cover the Calypso runtime; EventFired covers the sim engine.
type EventType string

const (
	// EvAdmitStart marks the start of admission control for one job.
	EvAdmitStart EventType = "AdmitStart"
	// EvChainTried records one execution path's feasibility check.
	EvChainTried EventType = "ChainTried"
	// EvHolesProbed records how many placement probes (maximal-hole or
	// profile-segment queries) one chain's placement issued.
	EvHolesProbed EventType = "HolesProbed"
	// EvTieBreak records a later chain displacing the incumbent best.
	EvTieBreak EventType = "TieBreak"
	// EvCommitted records a job's reservation being committed.
	EvCommitted EventType = "Committed"
	// EvRejected records a job failing admission; Reason says why.
	EvRejected EventType = "Rejected"
	// EvRenegotiated records a placement moved by a capacity change.
	EvRenegotiated EventType = "Renegotiated"
	// EvAborted records a job evicted by a capacity change.
	EvAborted EventType = "Aborted"
	// EvStepStart marks a Calypso parallel step beginning.
	EvStepStart EventType = "StepStart"
	// EvStepDone marks a Calypso parallel step completing (or failing).
	EvStepDone EventType = "StepDone"
	// EvWorkerFault records an injected or observed worker fault.
	EvWorkerFault EventType = "WorkerFault"
	// EvEventFired records one discrete-event simulation callback firing.
	EvEventFired EventType = "EventFired"
)

// Event is one structured trace record.  Time is monotonic sim-or-wall
// time: simulation clock when the emitting Observer is bound to a sim
// engine, seconds since Observer creation otherwise.
type Event struct {
	Time   float64            `json:"t"`
	Type   EventType          `json:"type"`
	Job    int                `json:"job,omitempty"`
	Chain  int                `json:"chain,omitempty"`
	Worker int                `json:"worker,omitempty"`
	Reason string             `json:"reason,omitempty"`
	Name   string             `json:"name,omitempty"`
	Attrs  map[string]float64 `json:"attrs,omitempty"`
	// Trace/Span tie the event to the span-propagated request trace that
	// produced it (see span.go).  Zero means "untraced".
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
}

// TraceSink receives structured events.  Implementations must be safe for
// concurrent use; Emit should be cheap (callers sit on hot paths).
type TraceSink interface {
	Emit(Event)
}

// RingSink retains the most recent events in a fixed-capacity ring buffer
// (a mutex-guarded Ring[Event] — see ring.go for the eviction contract).
// When the ring wraps, the oldest events are evicted — never reordered —
// and the eviction is accounted in Dropped rather than silently
// overwritten: Events() always returns a contiguous, emission-ordered
// suffix of the full stream, and Total() == Dropped() + len(Events()).
type RingSink struct {
	mu   sync.Mutex
	ring *Ring[Event]
}

// NewRingSink returns a ring buffer holding up to n events (n >= 1).
func NewRingSink(n int) *RingSink {
	return &RingSink{ring: NewRing[Event](n)}
}

// Emit appends an event, evicting the oldest when full (counted in
// Dropped).
func (r *RingSink) Emit(ev Event) {
	r.mu.Lock()
	r.ring.Push(ev)
	r.mu.Unlock()
}

// Events returns the retained events in emission order (oldest first).
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Items()
}

// Total returns the number of events ever emitted (including evicted ones).
func (r *RingSink) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Total()
}

// Dropped returns how many events were evicted from the ring because it
// wrapped.  Total() - Dropped() equals the number of retained events.
func (r *RingSink) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Dropped()
}

// JSONLSink writes each event as one JSON line.  Writes are buffered;
// call Flush (or Close) before reading the underlying writer.
type JSONLSink struct {
	mu sync.Mutex
	bw *bufio.Writer
	c  io.Closer // optional
	e  error     // first write error, sticky
}

// NewJSONLSink returns a sink writing JSON lines to w.  If w is also an
// io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes one event line.  Errors are sticky and reported by Flush.
func (s *JSONLSink) Emit(ev Event) {
	b, err := json.Marshal(ev)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.e == nil {
			s.e = err
		}
		return
	}
	if s.e == nil {
		if _, err := s.bw.Write(append(b, '\n')); err != nil {
			s.e = err
		}
	}
}

// Flush flushes buffered lines and returns the first error seen.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.e == nil {
		s.e = err
	}
	return s.e
}

// Close flushes and closes the underlying writer when it is a Closer.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL parses a JSONL event stream back into events (the round-trip
// of JSONLSink output).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: jsonl: %w", err)
	}
	return out, nil
}

// MultiSink fans events out to every sink.
type MultiSink []TraceSink

// Emit forwards the event to every sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(ev)
		}
	}
}
