package obs

import (
	"math"
	"sync/atomic"
)

// Head-based adaptive trace sampling.  Tracing every admission costs
// ~24% on the sharded hot path (BENCH_slo.json); sampling keeps the
// span stream representative while bounding that cost.  The decision is
// made at the head (NewTrace): a sampled-out request returns trace ID 0
// and flows through the untraced fast path everywhere downstream —
// every Start on a zero trace is the nil-span no-op — so the sampled-out
// cost is one atomic pointer load plus the admission counter.

// Sampling metric names (registered when SetSampling is given a registry).
const (
	MetricTraceSampled    = "trace_sampled"
	MetricTraceSampledOut = "trace_sampled_out"
)

// sampler is one immutable sampling configuration plus its rolling
// one-second admission window.  Swapped wholesale via an atomic pointer
// so NewTrace reads a consistent (target, counters) tuple with one load.
type sampler struct {
	target     float64       // max traces admitted per window
	winStart   atomic.Uint64 // float64 bits of the current window's start
	admitted   atomic.Int64  // traces admitted in the current window
	sampled    *Counter      // optional registry accounting
	sampledOut *Counter
}

// admit decides one head sample at clock time now.
func (s *sampler) admit(now float64) bool {
	for {
		wsBits := s.winStart.Load()
		if now-math.Float64frombits(wsBits) < 1 {
			break
		}
		// Window expired: one winner resets it; losers re-read.
		if s.winStart.CompareAndSwap(wsBits, math.Float64bits(now)) {
			s.admitted.Store(0)
			break
		}
	}
	if float64(s.admitted.Add(1)) <= s.target {
		if s.sampled != nil {
			s.sampled.Inc()
		}
		return true
	}
	if s.sampledOut != nil {
		s.sampledOut.Inc()
	}
	return false
}

// SetSampling enables head-based adaptive sampling: NewTrace admits at
// most targetPerSec traces per one-second window of the tracer's clock
// and returns 0 — the untraced fast path — for the rest.  targetPerSec
// <= 0 disables sampling (every NewTrace mints a trace).  When reg is
// non-nil the decision stream is accounted in the trace_sampled /
// trace_sampled_out counters.  Safe to call concurrently with NewTrace.
func (t *Tracer) SetSampling(targetPerSec float64, reg *Registry) {
	if t == nil {
		return
	}
	if targetPerSec <= 0 {
		t.smp.Store(nil)
		return
	}
	s := &sampler{target: targetPerSec}
	s.winStart.Store(math.Float64bits(t.now()))
	if reg != nil {
		reg.Describe(MetricTraceSampled, "Traces admitted by head-based sampling.")
		reg.Describe(MetricTraceSampledOut, "Traces rejected (ID 0, untraced fast path) by head-based sampling.")
		s.sampled = reg.Counter(MetricTraceSampled)
		s.sampledOut = reg.Counter(MetricTraceSampledOut)
	}
	t.smp.Store(s)
}

// SeedIDs offsets the tracer's trace and span ID counters so IDs minted
// by different processes never collide when their spans are merged by a
// telemetry aggregator.  base must be distinct per process and leave
// room below the next seed for the per-process sequence — a node-name
// hash in the high 32 bits (e.g. fnv32(node) << 32) is the convention
// used by junctiond and milanmon.  Call before minting any IDs.
func (t *Tracer) SeedIDs(base uint64) {
	if t == nil {
		return
	}
	t.traces.Store(base)
	t.ids.Store(base)
}
